package evprop

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlightRecorderRecordsPropagations checks the engine-level integration:
// every propagation (sum-product, the MPE's max-product companion, and
// QueryOne's collect pass) lands in the recorder with its mode and the
// context's query ID.
func TestFlightRecorderRecordsPropagations(t *testing.T) {
	eng, err := Asia().Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx := WithQueryID(context.Background(), "test-query-1")
	res, err := eng.PropagateContext(ctx, Evidence{"XRay": 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.MPE(); err != nil {
		t.Fatal(err)
	}
	res.Close()
	if _, err := eng.QueryOne(Evidence{"XRay": 1}, "Lung"); err != nil {
		t.Fatal(err)
	}

	recs := eng.RecentQueries()
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3 (sum, max, collect)", len(recs))
	}
	if recs[0].Mode != "sum-product" || recs[0].ID != "test-query-1" {
		t.Errorf("record 0: %+v", recs[0])
	}
	// The MPE's lazy max-product run has no caller context; it gets an
	// auto-assigned ID.
	if recs[1].Mode != "max-product" || recs[1].ID == "" {
		t.Errorf("record 1: %+v", recs[1])
	}
	if recs[2].Mode != "collect" || !strings.HasPrefix(recs[2].ID, "q-") {
		t.Errorf("record 2: %+v", recs[2])
	}
	for i, r := range recs {
		if r.ElapsedUsec <= 0 || r.Workers != 2 || r.Tasks == 0 {
			t.Errorf("record %d missing run detail: %+v", i, r)
		}
		if r.EvidenceVars != 1 {
			t.Errorf("record %d evidence vars %d", i, r.EvidenceVars)
		}
	}

	st := eng.FlightRecorderStats()
	if !st.Enabled || st.Recorded != 3 || st.Size == 0 {
		t.Errorf("recorder stats %+v", st)
	}
}

// TestFlightRecorderSlowCaptureHasTrace pins the threshold to 1ns so every
// propagation counts as slow, and verifies each capture retained the full
// scheduler trace and per-worker report.
func TestFlightRecorderSlowCaptureHasTrace(t *testing.T) {
	eng, err := Asia().Compile(Options{Workers: 2, SlowQueryThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Propagate(Evidence{"Dysp": 1})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	caps := eng.SlowQueryCaptures()
	if len(caps) != 1 {
		t.Fatalf("%d captures, want 1", len(caps))
	}
	c := caps[0]
	if !c.Record.Slow || c.ThresholdUsec != 1e-3 {
		t.Errorf("capture record %+v threshold %v", c.Record, c.ThresholdUsec)
	}
	if len(c.Trace) == 0 {
		t.Fatal("capture has no trace events")
	}
	for _, ev := range c.Trace {
		if ev.Kind == "" || ev.EndUsec < ev.StartUsec {
			t.Errorf("bad trace event %+v", ev)
		}
	}
	if len(c.BusyPerWorkerUsec) != 2 || len(c.OverheadPerWorkerUsec) != 2 {
		t.Errorf("per-worker columns: busy %v overhead %v",
			c.BusyPerWorkerUsec, c.OverheadPerWorkerUsec)
	}
	if eng.FlightRecorderStats().SlowCaptured != 1 {
		t.Errorf("slow captured %d", eng.FlightRecorderStats().SlowCaptured)
	}
}

// TestFlightRecorderDisabled verifies the opt-out: no recorder, no records,
// and Result traces are untouched by the recorder's arming logic.
func TestFlightRecorderDisabled(t *testing.T) {
	eng, err := Asia().Compile(Options{Workers: 2, DisableFlightRecorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Propagate(Evidence{"XRay": 1})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if recs := eng.RecentQueries(); recs != nil {
		t.Errorf("disabled recorder returned %d records", len(recs))
	}
	if st := eng.FlightRecorderStats(); st.Enabled {
		t.Errorf("stats %+v", st)
	}
}

// TestFlightRecorderConcurrentPropagation drives concurrent queries while
// reading the recorder — the -race check for the full engine-to-ring path.
func TestFlightRecorderConcurrentPropagation(t *testing.T) {
	eng, err := Asia().Compile(Options{Workers: 2, FlightRecorderSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, err := eng.Propagate(Evidence{"XRay": 1})
				if err != nil {
					t.Error(err)
					return
				}
				res.Close()
				eng.RecentQueries()
				eng.SlowQueryCaptures()
			}
		}()
	}
	wg.Wait()
	if st := eng.FlightRecorderStats(); st.Recorded != 100 {
		t.Errorf("recorded %d, want 100", st.Recorded)
	}
	if got := len(eng.RecentQueries()); got != 8 {
		t.Errorf("ring holds %d, want 8", got)
	}
}

// TestQueryIDRoundTrip checks the context helpers.
func TestQueryIDRoundTrip(t *testing.T) {
	ctx := WithQueryID(context.Background(), "abc")
	if got := QueryIDFrom(ctx); got != "abc" {
		t.Errorf("QueryIDFrom = %q", got)
	}
	if got := QueryIDFrom(context.Background()); got != "" {
		t.Errorf("empty context yields %q", got)
	}
	a, b := NewQueryID(), NewQueryID()
	if a == b || !strings.HasPrefix(a, "q-") {
		t.Errorf("NewQueryID: %q, %q", a, b)
	}
}

// TestPprofLabelsOption exercises the opt-in worker-label path end to end:
// with PprofLabels on, queries run tagged (query_id/task_kind reach the
// scheduler) and still produce correct posteriors; the calling goroutine's
// own labels are untouched (workers, not callers, are tagged).
func TestPprofLabelsOption(t *testing.T) {
	for _, scheduler := range []string{SchedulerCollaborative, SchedulerWorkStealing} {
		eng, err := Asia().Compile(Options{Workers: 2, Scheduler: scheduler, PprofLabels: true})
		if err != nil {
			t.Fatal(err)
		}
		ctx := WithQueryID(context.Background(), "q-labelled-1")
		res, err := eng.PropagateContext(ctx, Evidence{"XRay": 1})
		if err != nil {
			t.Fatal(err)
		}
		post, err := res.Posteriors("Lung")
		if err != nil {
			t.Fatal(err)
		}
		if len(post["Lung"]) != 2 {
			t.Errorf("scheduler %s: posterior %v", scheduler, post)
		}
		res.Close()
		eng.Close()
	}
}

// TestFlightRecorderEvidenceCapture: every record carries the canonical
// evidence signature; the full evidence map (translated back to variable
// names) appears only on engines compiled with RecordEvidence — including
// on cache-served records, which replay needs just as much as propagated
// ones.
func TestFlightRecorderEvidenceCapture(t *testing.T) {
	eng, err := Asia().Compile(Options{Workers: 2, RecordEvidence: true, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 2; i++ { // second run is a cache hit
		res, err := eng.Propagate(Evidence{"XRay": 1, "Asia": 0})
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
	}
	res, err := eng.Propagate(Evidence{"XRay": 0})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()

	recs := eng.RecentQueries()
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	if !recs[1].Cached || recs[2].Cached {
		t.Fatalf("cached flags: %v %v", recs[1].Cached, recs[2].Cached)
	}
	for i, r := range recs {
		if r.EvidenceSig == "" {
			t.Errorf("record %d has no evidence signature", i)
		}
		if len(r.Evidence) == 0 {
			t.Errorf("record %d has no evidence map", i)
		}
	}
	if recs[0].EvidenceSig != recs[1].EvidenceSig {
		t.Error("identical queries got different signatures")
	}
	if recs[2].EvidenceSig == recs[0].EvidenceSig {
		t.Error("different queries share a signature")
	}
	want := map[string]int{"XRay": 1, "Asia": 0}
	for k, v := range want {
		if recs[0].Evidence[k] != v {
			t.Errorf("evidence[%s] = %d, want %d", k, recs[0].Evidence[k], v)
		}
	}
	if len(recs[0].Evidence) != len(want) {
		t.Errorf("evidence %v, want %v", recs[0].Evidence, want)
	}

	// Without RecordEvidence the signature is still there but the map is
	// not.
	lean, err := Asia().Compile(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lean.Close()
	res, err = lean.Propagate(Evidence{"XRay": 1})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	lr := lean.RecentQueries()
	if len(lr) != 1 || lr[0].EvidenceSig == "" {
		t.Fatalf("lean records: %+v", lr)
	}
	if lr[0].Evidence != nil {
		t.Errorf("lean engine recorded evidence: %v", lr[0].Evidence)
	}
}
