package evprop

import (
	"context"
	"maps"
	"sync"
	"testing"

	"evprop/internal/audit"
	"evprop/internal/obs/trace"
	"evprop/internal/sched"
	"evprop/internal/taskgraph"
)

// servingEngine compiles the serving-benchmark workload: a mid-size random
// network queried with fixed evidence, as a server would under load.
func servingEngine(b *testing.B) (*Engine, Evidence) {
	return servingEngineOpts(b, Options{Workers: 4})
}

func servingEngineOpts(b *testing.B, opts Options) (*Engine, Evidence) {
	b.Helper()
	net := RandomNetwork(40, 2, 3, 7)
	eng, err := net.Compile(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	vars := net.Variables()
	return eng, Evidence{vars[3]: 1, vars[17]: 0}
}

func benchConcurrentQuery(b *testing.B, eng *Engine, ev Evidence) {
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := eng.Propagate(ev)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Posteriors(); err != nil {
				b.Fatal(err)
			}
			res.Close()
		}
	})
}

// BenchmarkConcurrentQuery measures the concurrent serving path: parallel
// client goroutines share one engine with no external lock, and each query
// is one pooled propagation from which P(e) and all posteriors derive.
// Compare against BenchmarkMutexSerializedQuery, the seed server's
// request path; run with -cpu 4 (or higher) for the serving contract.
func BenchmarkConcurrentQuery(b *testing.B) {
	eng, ev := servingEngine(b)
	benchConcurrentQuery(b, eng, ev)
}

// BenchmarkConcurrentQueryNoRecorder is the control for the always-on flight
// recorder: same workload with the recorder disabled. The delta between this
// and BenchmarkConcurrentQuery is the recorder's cost — the observability
// budget caps it at 2%.
func BenchmarkConcurrentQueryNoRecorder(b *testing.B) {
	eng, ev := servingEngineOpts(b, Options{Workers: 4, DisableFlightRecorder: true})
	benchConcurrentQuery(b, eng, ev)
}

// BenchmarkConcurrentQueryTraced is BenchmarkConcurrentQuery under the
// server's default tracing configuration (-trace on, 1% head sampling):
// every query runs inside a pooled span arena with pipeline-stage spans
// (absorb, propagate, per-kind children), and tail sampling decides
// retention at Finish. The delta against BenchmarkConcurrentQuery is the
// tracing hot-path cost — the observability budget caps it at 1%.
func BenchmarkConcurrentQueryTraced(b *testing.B) {
	eng, ev := servingEngine(b)
	tracer := &trace.Tracer{SampleRate: 0.01, Store: trace.NewStore(trace.DefaultStoreSize)}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			arena, root := tracer.StartRequest("/v1/query", trace.SpanContext{})
			res, err := eng.PropagateContext(trace.ContextWith(ctx, root), ev)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Posteriors(); err != nil {
				b.Fatal(err)
			}
			res.Close()
			root.End()
			tracer.Finish(arena, root)
		}
	})
}

// BenchmarkConcurrentQueryPprofLabels is BenchmarkConcurrentQuery with the
// opt-in pprof worker labels on (as under evserve -pprof). The delta
// against BenchmarkConcurrentQuery is what profiling segmentation costs
// while the profile endpoints are exposed; the default path never pays it.
func BenchmarkConcurrentQueryPprofLabels(b *testing.B) {
	eng, ev := servingEngineOpts(b, Options{Workers: 4, PprofLabels: true})
	benchConcurrentQuery(b, eng, ev)
}

// BenchmarkConcurrentQueryAudited is BenchmarkConcurrentQuery with the full
// durable-audit pipeline attached, as under evserve -audit-dir: the engine
// records evidence maps, and every query additionally builds an audit
// record (cloned evidence + the response's posteriors) and enqueues it on
// the wait-free ring, with the drainer spilling Merkle-chained batches to
// disk in the background. The delta against BenchmarkConcurrentQuery is the
// audit pipeline's hot-path cost — budgeted at 1%.
func BenchmarkConcurrentQueryAudited(b *testing.B) {
	eng, ev := servingEngineOpts(b, Options{Workers: 4, RecordEvidence: true})
	store, err := audit.OpenFileStore(b.TempDir(), audit.FileStoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	w, err := audit.NewWriter(store, audit.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := eng.Propagate(ev)
			if err != nil {
				b.Fatal(err)
			}
			post, err := res.Posteriors()
			if err != nil {
				b.Fatal(err)
			}
			pe := res.ProbabilityOfEvidence()
			res.Close()
			w.Enqueue(&audit.Record{
				Kind:       audit.KindQuery,
				Model:      "default",
				Version:    1,
				Evidence:   maps.Clone(ev),
				PEvidence:  pe,
				Posteriors: post,
			})
		}
	})
}

// BenchmarkCachedQuery is BenchmarkConcurrentQuery with the shared-evidence
// result cache on: after the first iteration every query is a cache hit on
// the same pinned result (with memoized marginals), the skewed-traffic
// serving case the cache exists for. The ratio to BenchmarkConcurrentQuery
// is the repeated-evidence speedup.
func BenchmarkCachedQuery(b *testing.B) {
	eng, ev := servingEngineOpts(b, Options{Workers: 4, CacheSize: 1024})
	benchConcurrentQuery(b, eng, ev)
}

// BenchmarkSingleflightStorm measures the collapse path: each iteration
// empties the cache and slams 8 concurrent identical queries into the
// engine, so one propagates and the rest ride the singleflight. Compare one
// iteration against 8× a single cold propagation.
func BenchmarkSingleflightStorm(b *testing.B) {
	eng, ev := servingEngineOpts(b, Options{Workers: 4, CacheSize: 1024})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.InvalidateCache()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := eng.Propagate(ev)
				if err != nil {
					b.Error(err)
					return
				}
				if _, err := res.Posteriors(); err != nil {
					b.Error(err)
				}
				res.Close()
			}()
		}
		wg.Wait()
	}
}

// BenchmarkMutexSerializedQuery reproduces the original server's request
// path as a baseline: a global mutex serializes queries, and each query
// costs two propagations (one for P(e), one for the posteriors), each with
// freshly allocated propagation state and transiently spawned workers —
// exactly what Engine.Propagate did before pooling.
func BenchmarkMutexSerializedQuery(b *testing.B) {
	eng, ev := servingEngine(b)
	g := eng.inner.Graph()
	iev, err := eng.net.evidence(ev)
	if err != nil {
		b.Fatal(err)
	}
	threshold := eng.inner.Options().PartitionThreshold
	propagate := func() *taskgraph.State {
		st, err := g.NewStateMode(taskgraph.SumProduct)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.AbsorbEvidence(iev); err != nil {
			b.Fatal(err)
		}
		if _, err := sched.Run(st, sched.Options{Workers: 4, Threshold: threshold}); err != nil {
			b.Fatal(err)
		}
		return st
	}
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			// Propagation 1: P(e), as the seed handler's first call.
			st := propagate()
			_ = st.Clique[g.Tree.Root].Sum()
			// Propagation 2: posteriors for every non-evidence variable.
			st = propagate()
			for v := 0; v < eng.net.inner.N(); v++ {
				if _, fixed := iev[v]; fixed {
					continue
				}
				if _, err := st.Marginal(v); err != nil {
					b.Fatal(err)
				}
			}
			mu.Unlock()
		}
	})
}
