package evprop

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

// The differential correctness harness of the caching layer: over seeded
// random networks, every scheduler, and a battery of evidence configurations,
// the cached engine's cold-path posteriors must agree with an uncached
// engine and with the brute-force joint-enumeration oracle (to float
// tolerance — parallel summation order legitimately varies), and a warm hit
// must be *bit-identical* to the cold result it was cached from, because a
// hit returns the very same pinned propagation.

var diffSchedulers = []string{
	SchedulerCollaborative,
	SchedulerSerial,
	SchedulerLevelSync,
	SchedulerDataParallel,
	SchedulerCentralized,
	SchedulerWorkStealing,
}

// diffEvidences builds six deterministic evidence configurations over an
// 11-variable binary network, from empty up to three observed variables.
func diffEvidences(vars []string) []Evidence {
	return []Evidence{
		{},
		{vars[0]: 1},
		{vars[2]: 0, vars[5]: 1},
		{vars[1]: 1, vars[7]: 0},
		{vars[3]: 0, vars[6]: 1, vars[9]: 0},
		{vars[4]: 1, vars[8]: 1, vars[10]: 0},
	}
}

// allPosteriors propagates once and returns every non-evidence posterior
// along with whether the query was served from the cache.
func allPosteriors(t *testing.T, eng *Engine, ev Evidence, what string) (map[string][]float64, bool) {
	t.Helper()
	res, err := eng.Propagate(ev)
	if err != nil {
		t.Fatalf("%s: propagate: %v", what, err)
	}
	defer res.Close()
	post, err := res.Posteriors()
	if err != nil {
		t.Fatalf("%s: posteriors: %v", what, err)
	}
	return post, res.Cached()
}

func TestDifferentialCachedVsFreshVsOracle(t *testing.T) {
	const tol = 1e-9
	cases := 0
	for seed := int64(0); seed < 6; seed++ {
		net := RandomNetwork(11, 2, 3, 1000+seed)
		vars := net.Variables()
		evs := diffEvidences(vars)
		// One oracle per evidence configuration, shared across schedulers.
		oracles := make([]map[string][]float64, len(evs))
		for i, ev := range evs {
			oracles[i] = map[string][]float64{}
			for _, v := range vars {
				if _, fixed := ev[v]; fixed {
					continue
				}
				m, err := net.ExactMarginal(v, ev)
				if err != nil {
					t.Fatalf("seed %d ev %d: oracle %q: %v", seed, i, v, err)
				}
				oracles[i][v] = m
			}
		}
		for _, schedName := range diffSchedulers {
			plain, err := net.Compile(Options{Workers: 2, Scheduler: schedName})
			if err != nil {
				t.Fatal(err)
			}
			cachedEng, err := net.Compile(Options{Workers: 2, Scheduler: schedName, CacheSize: 128})
			if err != nil {
				t.Fatal(err)
			}
			for i, ev := range evs {
				what := fmt.Sprintf("seed=%d sched=%s ev=%d", seed, schedName, i)
				cases++
				fresh, cached := allPosteriors(t, plain, ev, what+" fresh")
				if cached {
					t.Fatalf("%s: uncached engine reported a cache hit", what)
				}
				cold, cached := allPosteriors(t, cachedEng, ev, what+" cold")
				if cached {
					t.Fatalf("%s: first cached-engine query reported a hit", what)
				}
				warm, cached := allPosteriors(t, cachedEng, ev, what+" warm")
				if !cached {
					t.Fatalf("%s: repeat query missed the cache", what)
				}
				for v, oracle := range oracles[i] {
					for s := range oracle {
						if d := math.Abs(fresh[v][s] - oracle[s]); d > tol {
							t.Errorf("%s: fresh %q[%d] off oracle by %g", what, v, s, d)
						}
						if d := math.Abs(cold[v][s] - oracle[s]); d > tol {
							t.Errorf("%s: cold %q[%d] off oracle by %g", what, v, s, d)
						}
						// The warm hit shares the cold run's pinned state:
						// identical bits, not merely identical to tolerance.
						if math.Float64bits(warm[v][s]) != math.Float64bits(cold[v][s]) {
							t.Errorf("%s: warm %q[%d] = %v not bit-identical to cold %v",
								what, v, s, warm[v][s], cold[v][s])
						}
					}
				}
			}
			// Every configuration propagated exactly once on the cached
			// engine: all warm queries were hits.
			if got := cachedEng.inner.Propagations(); got != int64(len(evs)) {
				t.Errorf("seed=%d sched=%s: cached engine ran %d propagations, want %d",
					seed, schedName, got, len(evs))
			}
			plain.Close()
			cachedEng.Close()
		}
	}
	if cases < 200 {
		t.Fatalf("harness covered %d cases, want >= 200", cases)
	}
}

// TestDifferentialLazySeventhColumn is the lazy engine's column of the
// differential harness: over the same seeded networks, schedulers and
// evidence battery as TestDifferentialCachedVsFreshVsOracle, a lazily
// propagating engine — pruned collect graphs, demand-driven distribution —
// must agree with the brute-force oracle to float tolerance, both uncached
// and through the shared-evidence cache, and a warm hit must remain
// bit-identical to the cold result it pinned. The engines also prove the
// pruning machinery was actually exercised: every non-empty evidence case
// must skip at least one message.
func TestDifferentialLazySeventhColumn(t *testing.T) {
	const tol = 1e-9
	cases := 0
	for seed := int64(0); seed < 6; seed++ {
		net := RandomNetwork(11, 2, 3, 1000+seed)
		vars := net.Variables()
		evs := diffEvidences(vars)
		oracles := make([]map[string][]float64, len(evs))
		for i, ev := range evs {
			oracles[i] = map[string][]float64{}
			for _, v := range vars {
				if _, fixed := ev[v]; fixed {
					continue
				}
				m, err := net.ExactMarginal(v, ev)
				if err != nil {
					t.Fatalf("seed %d ev %d: oracle %q: %v", seed, i, v, err)
				}
				oracles[i][v] = m
			}
		}
		for _, schedName := range diffSchedulers {
			plain, err := net.Compile(Options{Workers: 2, Scheduler: schedName, Lazy: true})
			if err != nil {
				t.Fatal(err)
			}
			cachedEng, err := net.Compile(Options{Workers: 2, Scheduler: schedName, Lazy: true, CacheSize: 128})
			if err != nil {
				t.Fatal(err)
			}
			for i, ev := range evs {
				what := fmt.Sprintf("lazy seed=%d sched=%s ev=%d", seed, schedName, i)
				cases++
				fresh, cached := allPosteriors(t, plain, ev, what+" fresh")
				if cached {
					t.Fatalf("%s: uncached engine reported a cache hit", what)
				}
				cold, cached := allPosteriors(t, cachedEng, ev, what+" cold")
				if cached {
					t.Fatalf("%s: first cached-engine query reported a hit", what)
				}
				warm, cached := allPosteriors(t, cachedEng, ev, what+" warm")
				if !cached {
					t.Fatalf("%s: repeat query missed the cache", what)
				}
				for v, oracle := range oracles[i] {
					for s := range oracle {
						if d := math.Abs(fresh[v][s] - oracle[s]); d > tol {
							t.Errorf("%s: fresh %q[%d] off oracle by %g", what, v, s, d)
						}
						if d := math.Abs(cold[v][s] - oracle[s]); d > tol {
							t.Errorf("%s: cold %q[%d] off oracle by %g", what, v, s, d)
						}
						if math.Float64bits(warm[v][s]) != math.Float64bits(cold[v][s]) {
							t.Errorf("%s: warm %q[%d] = %v not bit-identical to cold %v",
								what, v, s, warm[v][s], cold[v][s])
						}
					}
				}
			}
			// Every configuration cost the cached engine exactly one
			// propagation, same contract as the eager column.
			if got := cachedEng.inner.Propagations(); got != int64(len(evs)) {
				t.Errorf("lazy seed=%d sched=%s: cached engine ran %d propagations, want %d",
					seed, schedName, got, len(evs))
			}
			plain.Close()
			cachedEng.Close()
		}
	}
	if cases < 200 {
		t.Fatalf("lazy harness covered %d cases, want >= 200", cases)
	}
}

// TestLazyPruningActuallyFires guards against the lazy engine silently
// degenerating into the eager one: with partial evidence on a chain-heavy
// random network, some messages must be skipped or blocked, and repeated
// identical queries on the uncached engine must be bit-identical (the
// deterministic-replay contract the audit tooling relies on).
func TestLazyPruningActuallyFires(t *testing.T) {
	net := RandomNetwork(11, 2, 3, 1003)
	vars := net.Variables()
	eng, err := net.Compile(Options{Workers: 2, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ev := Evidence{vars[0]: 1}
	res, err := eng.Propagate(ev)
	if err != nil {
		t.Fatal(err)
	}
	post1, err := res.Posteriors()
	if err != nil {
		t.Fatal(err)
	}
	stats, ok := res.PropagationStats()
	res.Close()
	if !ok {
		t.Fatal("lazy engine returned no PropagationStats")
	}
	if stats.MessagesSkipped+stats.MessagesBlocked == 0 {
		t.Fatalf("single-variable evidence pruned nothing: %+v", stats)
	}
	if stats.Flops >= stats.FlopsFull {
		t.Fatalf("lazy flops %d not below eager %d", stats.Flops, stats.FlopsFull)
	}
	if stats.TasksRun+stats.TasksSkipped != 8*int64(len(eng.inner.Tree().Cliques)-1) {
		t.Fatalf("task accounting inconsistent: %+v", stats)
	}
	// Replay determinism: a second cold propagation of the same evidence
	// reproduces the posteriors bit for bit.
	res2, err := eng.Propagate(ev)
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Close()
	post2, err := res2.Posteriors()
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range post1 {
		for s := range p {
			if math.Float64bits(post2[v][s]) != math.Float64bits(p[s]) {
				t.Fatalf("repeat lazy propagation not bit-identical at %q[%d]", v, s)
			}
		}
	}
}

func TestCacheInsertionOrderInvariance(t *testing.T) {
	net := RandomNetwork(11, 2, 3, 42)
	vars := net.Variables()
	eng, err := net.Compile(Options{Workers: 2, CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Semantically equal evidence built in different insertion orders must
	// share one signature, and therefore one cache entry.
	ev1 := Evidence{}
	ev1[vars[1]], ev1[vars[4]], ev1[vars[8]] = 1, 0, 1
	ev2 := Evidence{}
	ev2[vars[8]], ev2[vars[1]], ev2[vars[4]] = 1, 1, 0
	s1, err := eng.EvidenceSignature(ev1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := eng.EvidenceSignature(ev2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("insertion order changed the evidence signature")
	}
	if _, cached := allPosteriors(t, eng, ev1, "first"); cached {
		t.Fatal("first query hit an empty cache")
	}
	if _, cached := allPosteriors(t, eng, ev2, "reordered"); !cached {
		t.Fatal("reordered identical evidence missed the cache")
	}
	// Soft evidence canonicalizes the same way.
	soft1 := SoftEvidence{vars[2]: {0.3, 0.7}, vars[6]: {1, 0.5}}
	soft2 := SoftEvidence{vars[6]: {1, 0.5}, vars[2]: {0.3, 0.7}}
	g1, err := eng.EvidenceSignature(ev1, soft1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := eng.EvidenceSignature(ev2, soft2)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("insertion order changed the soft-evidence signature")
	}
	if g1 == s1 {
		t.Fatal("soft evidence did not change the signature")
	}
}

func TestCacheInvalidationRepropagatesAndMatchesOracle(t *testing.T) {
	net := RandomNetwork(11, 2, 3, 99)
	vars := net.Variables()
	eng, err := net.Compile(Options{Workers: 2, CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ev := Evidence{vars[2]: 1}
	allPosteriors(t, eng, ev, "warm-up")
	eng.InvalidateCache()
	if st := eng.CacheStats(); st.Entries != 0 {
		t.Fatalf("entries after InvalidateCache = %d", st.Entries)
	}
	post, cached := allPosteriors(t, eng, ev, "post-invalidate")
	if cached {
		t.Fatal("query after InvalidateCache served from cache")
	}
	if got := eng.inner.Propagations(); got != 2 {
		t.Fatalf("Propagations = %d, want 2", got)
	}
	oracle, err := net.ExactMarginal(vars[0], ev)
	if err != nil {
		t.Fatal(err)
	}
	for s := range oracle {
		if d := math.Abs(post[vars[0]][s] - oracle[s]); d > 1e-9 {
			t.Errorf("post-invalidate posterior off oracle by %g", d)
		}
	}
}

func TestModelMutationInvalidatesCache(t *testing.T) {
	net := RandomNetwork(11, 2, 3, 7)
	vars := net.Variables()
	eng, err := net.Compile(Options{Workers: 2, CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ev := Evidence{vars[0]: 1}
	// oneQuery asks for a variable the compiled tree knows; the mutated
	// network gains a variable the engine cannot answer for, which is fine —
	// the invalidation contract is about not serving stale *cached* results.
	oneQuery := func(what string) bool {
		t.Helper()
		res, err := eng.Propagate(ev)
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		defer res.Close()
		if _, err := res.Posterior(vars[1]); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		return res.Cached()
	}
	oneQuery("miss")
	if !oneQuery("hit") {
		t.Fatal("repeat query missed the cache")
	}
	// Growing the source network bumps its version; the engine must notice
	// on the next query and drop results keyed to the old structure.
	if err := net.AddVariable("post-compile-leaf", 2, []string{vars[0]}, []float64{0.5, 0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if oneQuery("post-mutation") {
		t.Fatal("query after model mutation served a pre-mutation result")
	}
	if got := eng.inner.Propagations(); got != 2 {
		t.Fatalf("Propagations = %d, want 2 (mutation must force one re-propagation)", got)
	}
	// And the cache works again after the purge.
	if !oneQuery("re-warmed") {
		t.Fatal("cache did not re-warm after mutation purge")
	}
}

// TestSingleflightStormOneWaiterCancels is the concurrency regression test
// of the context-aware singleflight: a storm of identical queries collapses
// into few propagations, and one caller abandoning its wait does not void
// the shared run for everyone else.
func TestSingleflightStormOneWaiterCancels(t *testing.T) {
	net := RandomNetwork(40, 2, 3, 7)
	eng, err := net.Compile(Options{Workers: 2, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	vars := net.Variables()
	ev := Evidence{vars[3]: 1, vars[17]: 0}

	const callers = 16
	cancelled, cancel := context.WithCancel(context.Background())
	cancel() // caller 0 abandons its wait immediately
	var wg sync.WaitGroup
	var barrier sync.WaitGroup
	barrier.Add(1)
	posts := make([]map[string][]float64, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			barrier.Wait()
			ctx := context.Background()
			if i == 0 {
				ctx = cancelled
			}
			res, err := eng.PropagateContext(ctx, ev)
			if err != nil {
				errs[i] = err
				return
			}
			defer res.Close()
			posts[i], errs[i] = res.Posteriors()
		}(i)
	}
	barrier.Done()
	wg.Wait()

	var reference map[string][]float64
	for i := 1; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d failed: %v (a cancelled sibling must not void the shared run)", i, errs[i])
		}
		if reference == nil {
			reference = posts[i]
			continue
		}
		for v, p := range reference {
			for s := range p {
				if math.Float64bits(posts[i][v][s]) != math.Float64bits(p[s]) {
					t.Fatalf("caller %d posterior %q[%d] differs from caller 1", i, v, s)
				}
			}
		}
	}
	// Caller 0 either lost the race to its own cancellation (context error)
	// or was served before noticing it — both are legal; silent wrong
	// results are not.
	if errs[0] != nil && !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("cancelled caller returned %v, want context.Canceled or success", errs[0])
	}
	// The storm must have collapsed: far fewer propagations than callers.
	if got := eng.inner.Propagations(); got >= callers {
		t.Fatalf("Propagations = %d for %d identical queries — singleflight did not collapse", got, callers)
	}
	if st := eng.CacheStats(); st.Hits+st.Collapsed == 0 {
		t.Fatalf("CacheStats = %+v: no caller was served by the shared run", st)
	}
}
