package bif

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"evprop/internal/bayesnet"
)

// XMLBIF 0.3 support (the XML interchange format of WEKA, SamIam and the
// classic repository mirrors). Both directions go through the same
// Document model as the textual format, so every validation and
// table-layout rule is shared: TABLE values list parent configurations
// slowest (first GIVEN slowest) with the FOR variable's state fastest.

type xmlBIF struct {
	XMLName xml.Name   `xml:"BIF"`
	Version string     `xml:"VERSION,attr"`
	Network xmlNetwork `xml:"NETWORK"`
}

type xmlNetwork struct {
	Name        string          `xml:"NAME"`
	Variables   []xmlVariable   `xml:"VARIABLE"`
	Definitions []xmlDefinition `xml:"DEFINITION"`
}

type xmlVariable struct {
	Type     string   `xml:"TYPE,attr"`
	Name     string   `xml:"NAME"`
	Outcomes []string `xml:"OUTCOME"`
}

type xmlDefinition struct {
	For   string   `xml:"FOR"`
	Given []string `xml:"GIVEN"`
	Table string   `xml:"TABLE"`
}

// ParseXML reads an XMLBIF 0.3 document.
func ParseXML(r io.Reader) (*Document, error) {
	var x xmlBIF
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&x); err != nil {
		return nil, fmt.Errorf("bif: xml: %w", err)
	}
	doc := &Document{Name: strings.TrimSpace(x.Network.Name)}
	for _, v := range x.Network.Variables {
		name := strings.TrimSpace(v.Name)
		if name == "" {
			return nil, fmt.Errorf("bif: xml: variable with empty name")
		}
		if len(v.Outcomes) == 0 {
			return nil, fmt.Errorf("bif: xml: variable %q has no outcomes", name)
		}
		states := make([]string, len(v.Outcomes))
		for i, o := range v.Outcomes {
			states[i] = strings.TrimSpace(o)
		}
		doc.Variables = append(doc.Variables, Variable{Name: name, States: states})
	}
	for _, d := range x.Network.Definitions {
		b := ProbBlock{Child: strings.TrimSpace(d.For)}
		for _, g := range d.Given {
			b.Parents = append(b.Parents, strings.TrimSpace(g))
		}
		fields := strings.Fields(d.Table)
		if len(fields) == 0 {
			return nil, fmt.Errorf("bif: xml: definition of %q has an empty table", b.Child)
		}
		b.Table = make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("bif: xml: definition of %q: bad value %q", b.Child, f)
			}
			b.Table[i] = v
		}
		doc.Blocks = append(doc.Blocks, b)
	}
	return doc, nil
}

// ParseXMLNetwork reads an XMLBIF document straight into a network.
func ParseXMLNetwork(r io.Reader) (*bayesnet.Network, map[string][]string, error) {
	doc, err := ParseXML(r)
	if err != nil {
		return nil, nil, err
	}
	return doc.ToNetwork()
}

// WriteXML serializes the network as XMLBIF 0.3, with the same state-name
// handling as Write.
func WriteXML(w io.Writer, net *bayesnet.Network, name string, states map[string][]string) error {
	if err := net.Validate(); err != nil {
		return fmt.Errorf("bif: %w", err)
	}
	if name == "" {
		name = "network"
	}
	stateName := func(id, s int) string {
		if names := states[net.Name(id)]; s < len(names) {
			return names[s]
		}
		return fmt.Sprintf("s%d", s)
	}
	x := xmlBIF{Version: "0.3", Network: xmlNetwork{Name: name}}
	for id, node := range net.Nodes {
		v := xmlVariable{Type: "nature", Name: node.Name}
		for s := 0; s < node.Card; s++ {
			v.Outcomes = append(v.Outcomes, stateName(id, s))
		}
		x.Network.Variables = append(x.Network.Variables, v)
	}
	for id, node := range net.Nodes {
		d := xmlDefinition{For: node.Name}
		for _, p := range node.Parents {
			d.Given = append(d.Given, net.Nodes[p].Name)
		}
		table, err := flattenCPT(net, id)
		if err != nil {
			return err
		}
		parts := make([]string, len(table))
		for i, v := range table {
			parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		d.Table = strings.Join(parts, " ")
		x.Network.Definitions = append(x.Network.Definitions, d)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return fmt.Errorf("bif: xml: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// flattenCPT converts a node's canonical CPT potential back into AddNode
// layout: parents in declared order slowest-first, child fastest.
func flattenCPT(net *bayesnet.Network, id int) ([]float64, error) {
	node := net.Nodes[id]
	cards := make([]int, len(node.Parents))
	rows := 1
	for i, p := range node.Parents {
		cards[i] = net.Nodes[p].Card
		rows *= cards[i]
	}
	out := make([]float64, 0, rows*node.Card)
	cfg := make([]int, len(node.Parents))
	assignment := map[int]int{}
	states := make([]int, len(node.CPT.Vars))
	for r := 0; r < rows; r++ {
		rem := r
		for i := len(cfg) - 1; i >= 0; i-- {
			cfg[i] = rem % cards[i]
			rem /= cards[i]
		}
		for i, p := range node.Parents {
			assignment[p] = cfg[i]
		}
		for s := 0; s < node.Card; s++ {
			assignment[id] = s
			for pos, v := range node.CPT.Vars {
				states[pos] = assignment[v]
			}
			out = append(out, node.CPT.Data[node.CPT.IndexOf(states)])
		}
	}
	return out, nil
}
