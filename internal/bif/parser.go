package bif

import (
	"fmt"
	"io"
	"strconv"

	"evprop/internal/bayesnet"
)

// Document is the parsed form of a BIF file, preserving declaration order
// and state names.
type Document struct {
	Name      string
	Variables []Variable
	Blocks    []ProbBlock
}

// Variable is one `variable` declaration.
type Variable struct {
	Name   string
	States []string
}

// ProbBlock is one `probability` declaration. Exactly one of Table or Rows
// content is typically present; both may combine with Default.
type ProbBlock struct {
	Child   string
	Parents []string
	// Table is the flattened CPT: parent configurations vary slowest (first
	// parent slowest of all) and the child's state fastest.
	Table []float64
	// Rows maps one parent configuration (by state names, in parent order)
	// to the child's distribution.
	Rows []Row
	// Default is the child distribution for parent configurations not
	// covered by Rows (nil if absent).
	Default []float64
}

// Row is one `(states…) p, p, …;` line.
type Row struct {
	ParentStates []string
	Values       []float64
}

// parser consumes a token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return fmt.Errorf("bif: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return p.errorf(t, "expected %q, found %s", s, t)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", p.errorf(t, "expected identifier, found %s", t)
	}
	return t.text, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return p.errorf(t, "expected %q, found %s", kw, t)
	}
	return nil
}

func (p *parser) atPunct(s string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == s
}

// number parses one float literal.
func (p *parser) number() (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, p.errorf(t, "expected number, found %s", t)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errorf(t, "bad number %q: %v", t.text, err)
	}
	return v, nil
}

// numberList parses `v, v, … ;` (commas optional, as in repository files).
func (p *parser) numberList() ([]float64, error) {
	var out []float64
	for {
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if p.atPunct(",") {
			p.next()
			continue
		}
		if p.atPunct(";") {
			p.next()
			return out, nil
		}
		if t := p.peek(); t.kind != tokNumber {
			return nil, p.errorf(t, "expected ',', ';' or number in value list, found %s", t)
		}
	}
}

// skipProperty consumes `property … ;`.
func (p *parser) skipProperty() error {
	for {
		t := p.next()
		if t.kind == tokEOF {
			return p.errorf(t, "unterminated property")
		}
		if t.kind == tokPunct && t.text == ";" {
			return nil
		}
	}
}

// Parse reads a BIF document from r.
func Parse(r io.Reader) (*Document, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("bif: %w", err)
	}
	return ParseString(string(src))
}

// ParseString reads a BIF document from a string.
func ParseString(src string) (*Document, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	doc := &Document{}
	for {
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokIdent {
			return nil, p.errorf(t, "expected declaration, found %s", t)
		}
		switch t.text {
		case "network":
			if err := p.parseNetwork(doc); err != nil {
				return nil, err
			}
		case "variable":
			if err := p.parseVariable(doc); err != nil {
				return nil, err
			}
		case "probability":
			if err := p.parseProbability(doc); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf(t, "unknown declaration %q", t.text)
		}
	}
	return doc, nil
}

func (p *parser) parseNetwork(doc *Document) error {
	p.next() // network
	t := p.next()
	switch t.kind {
	case tokIdent, tokString:
		doc.Name = t.text
	default:
		return p.errorf(t, "expected network name, found %s", t)
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.atPunct("}") {
		t := p.next()
		if t.kind == tokEOF {
			return p.errorf(t, "unterminated network block")
		}
		if t.kind == tokIdent && t.text == "property" {
			if err := p.skipProperty(); err != nil {
				return err
			}
		}
	}
	return p.expectPunct("}")
}

func (p *parser) parseVariable(doc *Document) error {
	p.next() // variable
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	v := Variable{Name: name}
	for !p.atPunct("}") {
		t := p.next()
		switch {
		case t.kind == tokEOF:
			return p.errorf(t, "unterminated variable block")
		case t.kind == tokIdent && t.text == "property":
			if err := p.skipProperty(); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "type":
			if err := p.expectKeyword("discrete"); err != nil {
				return err
			}
			if err := p.expectPunct("["); err != nil {
				return err
			}
			n, err := p.number()
			if err != nil {
				return err
			}
			if err := p.expectPunct("]"); err != nil {
				return err
			}
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			for !p.atPunct("}") {
				st := p.next()
				if st.kind != tokIdent && st.kind != tokNumber && st.kind != tokString {
					return p.errorf(st, "expected state name, found %s", st)
				}
				v.States = append(v.States, st.text)
				if p.atPunct(",") {
					p.next()
				}
			}
			if err := p.expectPunct("}"); err != nil {
				return err
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			if len(v.States) != int(n) {
				return p.errorf(t, "variable %q declares %d states but lists %d", name, int(n), len(v.States))
			}
		default:
			return p.errorf(t, "unexpected %s in variable block", t)
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return err
	}
	if len(v.States) == 0 {
		return fmt.Errorf("bif: variable %q has no type declaration", name)
	}
	doc.Variables = append(doc.Variables, v)
	return nil
}

func (p *parser) parseProbability(doc *Document) error {
	p.next() // probability
	if err := p.expectPunct("("); err != nil {
		return err
	}
	child, err := p.expectIdent()
	if err != nil {
		return err
	}
	b := ProbBlock{Child: child}
	if p.atPunct("|") {
		p.next()
		for {
			parent, err := p.expectIdent()
			if err != nil {
				return err
			}
			b.Parents = append(b.Parents, parent)
			if p.atPunct(",") {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.atPunct("}") {
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			return p.errorf(t, "unterminated probability block")
		case t.kind == tokIdent && t.text == "property":
			p.next()
			if err := p.skipProperty(); err != nil {
				return err
			}
		case t.kind == tokIdent && t.text == "table":
			p.next()
			vals, err := p.numberList()
			if err != nil {
				return err
			}
			b.Table = vals
		case t.kind == tokIdent && t.text == "default":
			p.next()
			vals, err := p.numberList()
			if err != nil {
				return err
			}
			b.Default = vals
		case t.kind == tokPunct && t.text == "(":
			p.next()
			var row Row
			for {
				st := p.next()
				if st.kind != tokIdent && st.kind != tokNumber && st.kind != tokString {
					return p.errorf(st, "expected parent state, found %s", st)
				}
				row.ParentStates = append(row.ParentStates, st.text)
				if p.atPunct(",") {
					p.next()
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			vals, err := p.numberList()
			if err != nil {
				return err
			}
			row.Values = vals
			b.Rows = append(b.Rows, row)
		default:
			return p.errorf(t, "unexpected %s in probability block", t)
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return err
	}
	doc.Blocks = append(doc.Blocks, b)
	return nil
}

// ToNetwork converts the document into a Bayesian network, returning the
// network and each variable's state names (by variable name). Variables are
// topologically reordered as needed so parents precede children.
func (doc *Document) ToNetwork() (*bayesnet.Network, map[string][]string, error) {
	varIdx := map[string]int{}
	for i, v := range doc.Variables {
		if _, dup := varIdx[v.Name]; dup {
			return nil, nil, fmt.Errorf("bif: variable %q declared twice", v.Name)
		}
		varIdx[v.Name] = i
	}
	blockOf := map[string]*ProbBlock{}
	for i := range doc.Blocks {
		b := &doc.Blocks[i]
		if _, ok := varIdx[b.Child]; !ok {
			return nil, nil, fmt.Errorf("bif: probability block for undeclared variable %q", b.Child)
		}
		if _, dup := blockOf[b.Child]; dup {
			return nil, nil, fmt.Errorf("bif: variable %q has two probability blocks", b.Child)
		}
		for _, parent := range b.Parents {
			if _, ok := varIdx[parent]; !ok {
				return nil, nil, fmt.Errorf("bif: variable %q has undeclared parent %q", b.Child, parent)
			}
		}
		blockOf[b.Child] = b
	}
	for _, v := range doc.Variables {
		if _, ok := blockOf[v.Name]; !ok {
			return nil, nil, fmt.Errorf("bif: variable %q has no probability block", v.Name)
		}
	}

	order, err := topoOrder(doc.Variables, blockOf)
	if err != nil {
		return nil, nil, err
	}

	net := bayesnet.New()
	states := map[string][]string{}
	for _, name := range order {
		v := doc.Variables[varIdx[name]]
		b := blockOf[name]
		dist, err := doc.flatten(v, b, varIdx)
		if err != nil {
			return nil, nil, err
		}
		parents := make([]int, len(b.Parents))
		for i, pn := range b.Parents {
			parents[i] = net.ID(pn)
		}
		if _, err := net.AddNode(name, len(v.States), parents, dist); err != nil {
			return nil, nil, fmt.Errorf("bif: %w", err)
		}
		states[name] = append([]string(nil), v.States...)
	}
	if err := net.Validate(); err != nil {
		return nil, nil, fmt.Errorf("bif: %w", err)
	}
	return net, states, nil
}

// topoOrder sorts variable names parents-before-children, preserving
// declaration order among independent variables (stable Kahn).
func topoOrder(vars []Variable, blockOf map[string]*ProbBlock) ([]string, error) {
	indeg := map[string]int{}
	children := map[string][]string{}
	for _, v := range vars {
		b := blockOf[v.Name]
		indeg[v.Name] = len(b.Parents)
		for _, parent := range b.Parents {
			children[parent] = append(children[parent], v.Name)
		}
	}
	var queue []string
	for _, v := range vars {
		if indeg[v.Name] == 0 {
			queue = append(queue, v.Name)
		}
	}
	var order []string
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		order = append(order, name)
		for _, c := range children[name] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(vars) {
		return nil, fmt.Errorf("bif: probability blocks form a cycle")
	}
	return order, nil
}

// flatten produces the CPT in bayesnet.AddNode layout (parents in declared
// order slowest-first, child fastest) from whichever forms the block uses.
func (doc *Document) flatten(v Variable, b *ProbBlock, varIdx map[string]int) ([]float64, error) {
	childCard := len(v.States)
	rows := 1
	parentVars := make([]Variable, len(b.Parents))
	for i, pn := range b.Parents {
		parentVars[i] = doc.Variables[varIdx[pn]]
		rows *= len(parentVars[i].States)
	}
	want := rows * childCard

	if b.Table != nil {
		if len(b.Rows) > 0 {
			return nil, fmt.Errorf("bif: variable %q mixes table and row entries", v.Name)
		}
		if len(b.Table) != want {
			return nil, fmt.Errorf("bif: variable %q table has %d values, want %d", v.Name, len(b.Table), want)
		}
		return append([]float64(nil), b.Table...), nil
	}

	dist := make([]float64, want)
	set := make([]bool, rows)
	for _, row := range b.Rows {
		if len(row.ParentStates) != len(b.Parents) {
			return nil, fmt.Errorf("bif: variable %q row names %d parent states, want %d",
				v.Name, len(row.ParentStates), len(b.Parents))
		}
		idx := 0
		for i, stateName := range row.ParentStates {
			s := stateIndex(parentVars[i].States, stateName)
			if s < 0 {
				return nil, fmt.Errorf("bif: variable %q row: parent %q has no state %q",
					v.Name, b.Parents[i], stateName)
			}
			idx = idx*len(parentVars[i].States) + s
		}
		if len(row.Values) != childCard {
			return nil, fmt.Errorf("bif: variable %q row lists %d values, want %d",
				v.Name, len(row.Values), childCard)
		}
		if set[idx] {
			return nil, fmt.Errorf("bif: variable %q row (%v) given twice", v.Name, row.ParentStates)
		}
		set[idx] = true
		copy(dist[idx*childCard:], row.Values)
	}
	for r := 0; r < rows; r++ {
		if set[r] {
			continue
		}
		if b.Default == nil {
			return nil, fmt.Errorf("bif: variable %q missing a row (and no default)", v.Name)
		}
		if len(b.Default) != childCard {
			return nil, fmt.Errorf("bif: variable %q default lists %d values, want %d",
				v.Name, len(b.Default), childCard)
		}
		copy(dist[r*childCard:], b.Default)
	}
	return dist, nil
}

func stateIndex(states []string, name string) int {
	for i, s := range states {
		if s == name {
			return i
		}
	}
	return -1
}
