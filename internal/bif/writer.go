package bif

import (
	"fmt"
	"io"
	"strings"

	"evprop/internal/bayesnet"
)

// Write serializes the network in BIF text form. states optionally names
// each variable's states (by variable name); variables without an entry get
// synthetic names s0, s1, …. Root variables are written with a `table`
// line; conditional variables with one row per parent configuration.
func Write(w io.Writer, net *bayesnet.Network, name string, states map[string][]string) error {
	if err := net.Validate(); err != nil {
		return fmt.Errorf("bif: %w", err)
	}
	if name == "" {
		name = "network"
	}
	stateName := func(id, s int) string {
		if names := states[net.Name(id)]; s < len(names) {
			return names[s]
		}
		return fmt.Sprintf("s%d", s)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "network %s {\n}\n", sanitizeIdent(name))
	for id, node := range net.Nodes {
		fmt.Fprintf(&b, "variable %s {\n  type discrete [ %d ] { ", sanitizeIdent(node.Name), node.Card)
		for s := 0; s < node.Card; s++ {
			if s > 0 {
				b.WriteString(", ")
			}
			b.WriteString(sanitizeIdent(stateName(id, s)))
		}
		b.WriteString(" };\n}\n")
	}
	for id, node := range net.Nodes {
		if err := writeProbability(&b, net, id, node, stateName); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeProbability(b *strings.Builder, net *bayesnet.Network, id int, node bayesnet.Node, stateName func(int, int) string) error {
	if len(node.Parents) == 0 {
		fmt.Fprintf(b, "probability ( %s ) {\n  table ", sanitizeIdent(node.Name))
		// The CPT of a parentless node is a potential over {id} only, in
		// state order.
		for s := 0; s < node.Card; s++ {
			if s > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%g", node.CPT.At(s))
		}
		b.WriteString(";\n}\n")
		return nil
	}

	fmt.Fprintf(b, "probability ( %s | ", sanitizeIdent(node.Name))
	for i, p := range node.Parents {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(sanitizeIdent(net.Nodes[p].Name))
	}
	b.WriteString(" ) {\n")

	// Enumerate parent configurations in declared-parent order (first
	// parent slowest) and read the child distribution from the canonical
	// CPT potential.
	cards := make([]int, len(node.Parents))
	rows := 1
	for i, p := range node.Parents {
		cards[i] = net.Nodes[p].Card
		rows *= cards[i]
	}
	cfg := make([]int, len(node.Parents))
	assignment := map[int]int{}
	for r := 0; r < rows; r++ {
		rem := r
		for i := len(cfg) - 1; i >= 0; i-- {
			cfg[i] = rem % cards[i]
			rem /= cards[i]
		}
		b.WriteString("  (")
		for i, p := range node.Parents {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(sanitizeIdent(stateName(p, cfg[i])))
			assignment[p] = cfg[i]
		}
		b.WriteString(") ")
		for s := 0; s < node.Card; s++ {
			if s > 0 {
				b.WriteString(", ")
			}
			assignment[id] = s
			states := make([]int, len(node.CPT.Vars))
			for pos, v := range node.CPT.Vars {
				states[pos] = assignment[v]
			}
			fmt.Fprintf(b, "%g", node.CPT.Data[node.CPT.IndexOf(states)])
		}
		b.WriteString(";\n")
	}
	b.WriteString("}\n")
	return nil
}

// sanitizeIdent maps arbitrary names onto the BIF identifier alphabet so
// that written files always re-parse.
func sanitizeIdent(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for _, r := range s {
		if isIdentRune(r) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
