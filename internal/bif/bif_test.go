package bif

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/potential"
)

// asiaBIF is the chest-clinic network in BIF text form, with state order
// (no, yes) matching bayesnet.Asia's convention (state 0 = no).
const asiaBIF = `
// Lauritzen & Spiegelhalter's chest clinic.
network asia {
  property author "L&S 1988";
}
variable Asia   { type discrete [ 2 ] { no, yes }; }
variable Smoke  { type discrete [ 2 ] { no, yes }; }
variable Tub    { type discrete [ 2 ] { no, yes }; }
variable Lung   { type discrete [ 2 ] { no, yes }; }
variable Bronc  { type discrete [ 2 ] { no, yes }; }
variable TbOrCa { type discrete [ 2 ] { no, yes }; }
variable XRay   { type discrete [ 2 ] { no, yes }; }
variable Dysp   { type discrete [ 2 ] { no, yes }; }

probability ( Asia )  { table 0.99, 0.01; }
probability ( Smoke ) { table 0.5, 0.5; }
probability ( Tub | Asia ) {
  (no)  0.99, 0.01;
  (yes) 0.95, 0.05;
}
probability ( Lung | Smoke ) {
  (no)  0.99, 0.01;
  (yes) 0.90, 0.10;
}
probability ( Bronc | Smoke ) {
  (no)  0.7, 0.3;
  (yes) 0.4, 0.6;
}
probability ( TbOrCa | Tub, Lung ) {
  (no, no)   1, 0;
  (no, yes)  0, 1;
  (yes, no)  0, 1;
  (yes, yes) 0, 1;
}
probability ( XRay | TbOrCa ) {
  (no)  0.95, 0.05;
  (yes) 0.02, 0.98;
}
probability ( Dysp | TbOrCa, Bronc ) {
  (no, no)   0.9, 0.1;
  (no, yes)  0.2, 0.8;
  (yes, no)  0.3, 0.7;
  (yes, yes) 0.1, 0.9;
}
`

func TestParseAsiaMatchesBuiltin(t *testing.T) {
	doc, err := ParseString(asiaBIF)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "asia" {
		t.Errorf("network name %q", doc.Name)
	}
	net, states, err := doc.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := bayesnet.Asia()
	if net.N() != want.N() {
		t.Fatalf("%d variables, want %d", net.N(), want.N())
	}
	if got := states["Asia"]; len(got) != 2 || got[0] != "no" || got[1] != "yes" {
		t.Errorf("Asia states %v", got)
	}
	// Same marginals for every variable under the same evidence.
	for id := 0; id < want.N(); id++ {
		name := want.Name(id)
		parsedID := net.ID(name)
		if parsedID < 0 {
			t.Fatalf("parsed network lacks %q", name)
		}
		ev := potential.Evidence{net.ID("XRay"): 1}
		wantEv := potential.Evidence{want.ID("XRay"): 1}
		got, err := net.ExactMarginal(parsedID, ev)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := want.ExactMarginal(id, wantEv)
		if err != nil {
			t.Fatal(err)
		}
		for s := range got.Data {
			if math.Abs(got.Data[s]-exp.Data[s]) > 1e-12 {
				t.Errorf("P(%s|XRay) = %v, want %v", name, got.Data, exp.Data)
				break
			}
		}
	}
}

func TestParseTableForm(t *testing.T) {
	src := `
network n { }
variable A { type discrete [ 2 ] { f, t }; }
variable B { type discrete [ 3 ] { x, y, z }; }
probability ( A ) { table 0.25, 0.75; }
probability ( B | A ) { table 0.1, 0.2, 0.7, 0.3, 0.3, 0.4; }
`
	doc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := doc.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	b := net.ID("B")
	// table order: parent configs slowest, child fastest.
	cpt := net.Nodes[b].CPT
	if got := cpt.At(0, 2); got != 0.7 {
		t.Errorf("P(B=z|A=f) = %v, want 0.7", got)
	}
	if got := cpt.At(1, 0); got != 0.3 {
		t.Errorf("P(B=x|A=t) = %v, want 0.3", got)
	}
}

func TestParseDefaultRows(t *testing.T) {
	src := `
network n { }
variable A { type discrete [ 2 ] { f, t }; }
variable B { type discrete [ 2 ] { f, t }; }
probability ( A ) { table 0.5, 0.5; }
probability ( B | A ) {
  (t) 0.2, 0.8;
  default 0.9, 0.1;
}
`
	doc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := doc.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	cpt := net.Nodes[net.ID("B")].CPT
	if got := cpt.At(0, 0); got != 0.9 {
		t.Errorf("default row not applied: %v", got)
	}
	if got := cpt.At(1, 1); got != 0.8 {
		t.Errorf("explicit row lost: %v", got)
	}
}

func TestParseOutOfOrderDeclarations(t *testing.T) {
	// Child declared before its parent: ToNetwork must reorder.
	src := `
network n { }
variable Child { type discrete [ 2 ] { f, t }; }
variable Root  { type discrete [ 2 ] { f, t }; }
probability ( Child | Root ) { (f) 0.5, 0.5; (t) 0.1, 0.9; }
probability ( Root ) { table 0.3, 0.7; }
`
	doc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := doc.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := net.ExactMarginal(net.ID("Child"), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3*0.5 + 0.7*0.9
	if math.Abs(m.Data[1]-want) > 1e-12 {
		t.Errorf("P(Child=t) = %v, want %v", m.Data[1], want)
	}
}

func TestParseComments(t *testing.T) {
	src := `
/* block
   comment */
network n { } // trailing
variable A { type discrete [ 2 ] { a0, a1 }; } /* inline */ probability ( A ) { table 1, 0; }
`
	if _, err := ParseString(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"garbage", "@@@"},
		{"unknown decl", "foo { }"},
		{"unterminated comment", "/* nope"},
		{"unterminated string", "network \"x { }"},
		{"state count mismatch", `network n { } variable A { type discrete [ 3 ] { a, b }; } probability ( A ) { table 1, 0; }`},
		{"missing type", `network n { } variable A { } probability ( A ) { table 1; }`},
		{"undeclared child", `network n { } probability ( A ) { table 1; }`},
		{"undeclared parent", `network n { } variable A { type discrete [ 2 ] { a, b }; } probability ( A | B ) { default 1, 0; }`},
		{"two blocks", `network n { } variable A { type discrete [ 2 ] { a, b }; } probability ( A ) { table 1, 0; } probability ( A ) { table 1, 0; }`},
		{"no block", `network n { } variable A { type discrete [ 2 ] { a, b }; }`},
		{"bad table size", `network n { } variable A { type discrete [ 2 ] { a, b }; } probability ( A ) { table 1, 0, 0; }`},
		{"missing row", `network n { } variable A { type discrete [ 2 ] { a, b }; } variable B { type discrete [ 2 ] { a, b }; } probability ( A ) { table 1, 0; } probability ( B | A ) { (a) 1, 0; }`},
		{"duplicate row", `network n { } variable A { type discrete [ 2 ] { a, b }; } variable B { type discrete [ 2 ] { a, b }; } probability ( A ) { table 1, 0; } probability ( B | A ) { (a) 1, 0; (a) 0, 1; default 1, 0; }`},
		{"bad parent state", `network n { } variable A { type discrete [ 2 ] { a, b }; } variable B { type discrete [ 2 ] { a, b }; } probability ( A ) { table 1, 0; } probability ( B | A ) { (zzz) 1, 0; default 1, 0; }`},
		{"cycle", `network n { } variable A { type discrete [ 2 ] { a, b }; } variable B { type discrete [ 2 ] { a, b }; } probability ( A | B ) { default 1, 0; } probability ( B | A ) { default 1, 0; }`},
		{"unnormalized", `network n { } variable A { type discrete [ 2 ] { a, b }; } probability ( A ) { table 0.5, 0.4; }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			doc, err := ParseString(c.src)
			if err != nil {
				return // lex/parse error: fine
			}
			if _, _, err := doc.ToNetwork(); err == nil {
				t.Errorf("accepted %s", c.name)
			}
		})
	}
}

func TestWriteRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		orig := bayesnet.RandomNetwork(10, 3, 2, seed)
		var buf bytes.Buffer
		if err := Write(&buf, orig, "roundtrip", nil); err != nil {
			t.Fatal(err)
		}
		doc, err := ParseString(buf.String())
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v\n%s", seed, err, buf.String())
		}
		back, _, err := doc.ToNetwork()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if back.N() != orig.N() {
			t.Fatalf("seed %d: %d nodes, want %d", seed, back.N(), orig.N())
		}
		for id := 0; id < orig.N(); id++ {
			name := orig.Name(id)
			// Variable ids may be renumbered; compare by distribution via
			// exact marginals instead of raw tables.
			m1, err := back.ExactMarginal(back.ID(name), nil)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := orig.ExactMarginal(id, nil)
			if err != nil {
				t.Fatal(err)
			}
			for s := range m1.Data {
				if math.Abs(m1.Data[s]-m2.Data[s]) > 1e-9 {
					t.Errorf("seed %d: P(%s) = %v, want %v", seed, name, m1.Data, m2.Data)
					break
				}
			}
		}
	}
}

func TestWriteUsesStateNames(t *testing.T) {
	net, _ := bayesnet.Sprinkler()
	var buf bytes.Buffer
	states := map[string][]string{
		"Cloudy": {"clear", "overcast"},
	}
	if err := Write(&buf, net, "lawn", states); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "overcast") {
		t.Error("state names not used")
	}
	if !strings.Contains(out, "s0") {
		t.Error("missing synthetic state names for unnamed variables")
	}
	if _, err := ParseString(out); err != nil {
		t.Errorf("written file does not re-parse: %v", err)
	}
}

func TestWriteSanitizesNames(t *testing.T) {
	net := bayesnet.New()
	net.MustAddNode("weird name!", 2, nil, []float64{0.5, 0.5})
	var buf bytes.Buffer
	if err := Write(&buf, net, "x y", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseString(buf.String()); err != nil {
		t.Errorf("sanitized output does not re-parse: %v", err)
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`foo 1.5e-3 "str" { } ( ) [ ] | , ;`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokNumber, tokString,
		tokPunct, tokPunct, tokPunct, tokPunct, tokPunct, tokPunct, tokPunct, tokPunct, tokPunct, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("%d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d: kind %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexerLineNumbers(t *testing.T) {
	toks, err := lex("a\nb\n  c")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].line != 1 || toks[1].line != 2 || toks[2].line != 3 {
		t.Errorf("lines: %d %d %d", toks[0].line, toks[1].line, toks[2].line)
	}
}
