package bif

import (
	"bytes"
	"testing"
)

// FuzzParse checks that arbitrary inputs never crash the lexer/parser and
// that every successfully parsed document either converts to a valid
// network or reports an error — and that accepted networks round-trip.
func FuzzParse(f *testing.F) {
	f.Add(asiaBIF)
	f.Add("network n { }")
	f.Add(`network n { } variable A { type discrete [ 2 ] { a, b }; } probability ( A ) { table 0.5, 0.5; }`)
	f.Add(`probability ( A | B, C ) { (a, b) 1, 0; default 0.5 0.5; }`)
	f.Add(`variable "x" { type discrete [ 1 ] { lone }; }`)
	f.Add("// comment only")
	f.Add("/* unterminated")
	f.Add("network n { property p \"v\"; }")
	f.Add("table 1,;")
	f.Add("variable V { type discrete [ 3 ] { -1, 0e4, x.y-z }; }")
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseString(src)
		if err != nil {
			return
		}
		net, states, err := doc.ToNetwork()
		if err != nil {
			return
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("accepted invalid network: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, net, doc.Name, states); err != nil {
			t.Fatalf("cannot write accepted network: %v", err)
		}
		doc2, err := ParseString(buf.String())
		if err != nil {
			t.Fatalf("written form does not re-parse: %v\n%s", err, buf.String())
		}
		if _, _, err := doc2.ToNetwork(); err != nil {
			t.Fatalf("round trip broke the network: %v", err)
		}
	})
}
