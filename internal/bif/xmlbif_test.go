package bif

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/potential"
)

const sprinklerXML = `<?xml version="1.0"?>
<BIF VERSION="0.3">
<NETWORK>
<NAME>lawn</NAME>
<VARIABLE TYPE="nature"><NAME>Cloudy</NAME><OUTCOME>no</OUTCOME><OUTCOME>yes</OUTCOME></VARIABLE>
<VARIABLE TYPE="nature"><NAME>Sprinkler</NAME><OUTCOME>no</OUTCOME><OUTCOME>yes</OUTCOME></VARIABLE>
<VARIABLE TYPE="nature"><NAME>Rain</NAME><OUTCOME>no</OUTCOME><OUTCOME>yes</OUTCOME></VARIABLE>
<VARIABLE TYPE="nature"><NAME>WetGrass</NAME><OUTCOME>no</OUTCOME><OUTCOME>yes</OUTCOME></VARIABLE>
<DEFINITION><FOR>Cloudy</FOR><TABLE>0.5 0.5</TABLE></DEFINITION>
<DEFINITION><FOR>Sprinkler</FOR><GIVEN>Cloudy</GIVEN><TABLE>0.5 0.5 0.9 0.1</TABLE></DEFINITION>
<DEFINITION><FOR>Rain</FOR><GIVEN>Cloudy</GIVEN><TABLE>0.8 0.2 0.2 0.8</TABLE></DEFINITION>
<DEFINITION><FOR>WetGrass</FOR><GIVEN>Sprinkler</GIVEN><GIVEN>Rain</GIVEN>
  <TABLE>1.0 0.0 0.1 0.9 0.1 0.9 0.01 0.99</TABLE></DEFINITION>
</NETWORK>
</BIF>
`

func TestParseXMLMatchesBuiltin(t *testing.T) {
	net, states, err := ParseXMLNetwork(strings.NewReader(sprinklerXML))
	if err != nil {
		t.Fatal(err)
	}
	if got := states["Cloudy"]; len(got) != 2 || got[1] != "yes" {
		t.Errorf("states = %v", got)
	}
	want, ids := bayesnet.Sprinkler()
	ev := potential.Evidence{net.ID("WetGrass"): 1}
	got, err := net.ExactMarginal(net.ID("Rain"), ev)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := want.ExactMarginal(ids["Rain"], potential.Evidence{ids["WetGrass"]: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Data[1]-exp.Data[1]) > 1e-12 {
		t.Errorf("P(Rain|Wet) = %v, want %v", got.Data[1], exp.Data[1])
	}
}

func TestXMLRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		orig := bayesnet.RandomNetwork(9, 3, 2, seed)
		var buf bytes.Buffer
		if err := WriteXML(&buf, orig, "roundtrip", nil); err != nil {
			t.Fatal(err)
		}
		back, _, err := ParseXMLNetwork(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v\n", seed, err)
		}
		for id := 0; id < orig.N(); id++ {
			name := orig.Name(id)
			m1, err := back.ExactMarginal(back.ID(name), nil)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := orig.ExactMarginal(id, nil)
			if err != nil {
				t.Fatal(err)
			}
			for s := range m1.Data {
				if math.Abs(m1.Data[s]-m2.Data[s]) > 1e-9 {
					t.Errorf("seed %d: P(%s) changed", seed, name)
					break
				}
			}
		}
	}
}

func TestXMLCrossFormat(t *testing.T) {
	// Text BIF → network → XMLBIF → network: same distribution.
	doc, err := ParseString(asiaBIF)
	if err != nil {
		t.Fatal(err)
	}
	net, states, err := doc.ToNetwork()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteXML(&buf, net, "asia", states); err != nil {
		t.Fatal(err)
	}
	back, states2, err := ParseXMLNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := states2["Asia"]; len(got) != 2 || got[1] != "yes" {
		t.Errorf("states lost: %v", got)
	}
	a, err := net.ExactMarginal(net.ID("Dysp"), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.ExactMarginal(back.ID("Dysp"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Data[1]-b.Data[1]) > 1e-12 {
		t.Errorf("cross-format P(Dysp) changed: %v vs %v", a.Data[1], b.Data[1])
	}
}

func TestParseXMLErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"not xml", "plain text"},
		{"empty table", `<BIF VERSION="0.3"><NETWORK><NAME>n</NAME>
			<VARIABLE TYPE="nature"><NAME>A</NAME><OUTCOME>a</OUTCOME></VARIABLE>
			<DEFINITION><FOR>A</FOR><TABLE> </TABLE></DEFINITION></NETWORK></BIF>`},
		{"bad number", `<BIF VERSION="0.3"><NETWORK><NAME>n</NAME>
			<VARIABLE TYPE="nature"><NAME>A</NAME><OUTCOME>a</OUTCOME><OUTCOME>b</OUTCOME></VARIABLE>
			<DEFINITION><FOR>A</FOR><TABLE>x y</TABLE></DEFINITION></NETWORK></BIF>`},
		{"no outcomes", `<BIF VERSION="0.3"><NETWORK><NAME>n</NAME>
			<VARIABLE TYPE="nature"><NAME>A</NAME></VARIABLE>
			<DEFINITION><FOR>A</FOR><TABLE>1</TABLE></DEFINITION></NETWORK></BIF>`},
		{"empty name", `<BIF VERSION="0.3"><NETWORK><NAME>n</NAME>
			<VARIABLE TYPE="nature"><NAME> </NAME><OUTCOME>a</OUTCOME></VARIABLE></NETWORK></BIF>`},
		{"wrong table size", `<BIF VERSION="0.3"><NETWORK><NAME>n</NAME>
			<VARIABLE TYPE="nature"><NAME>A</NAME><OUTCOME>a</OUTCOME><OUTCOME>b</OUTCOME></VARIABLE>
			<DEFINITION><FOR>A</FOR><TABLE>1 0 0</TABLE></DEFINITION></NETWORK></BIF>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			doc, err := ParseXML(strings.NewReader(c.src))
			if err != nil {
				return
			}
			if _, _, err := doc.ToNetwork(); err == nil {
				t.Errorf("accepted %s", c.name)
			}
		})
	}
}

func TestWriteXMLUsesStateNames(t *testing.T) {
	net, _ := bayesnet.Sprinkler()
	var buf bytes.Buffer
	if err := WriteXML(&buf, net, "lawn", map[string][]string{"Rain": {"dry", "wet"}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<OUTCOME>wet</OUTCOME>") {
		t.Error("state names not written")
	}
	if !strings.Contains(out, `VERSION="0.3"`) {
		t.Error("missing version attribute")
	}
}
