// Package bif reads and writes discrete Bayesian networks in the textual
// Bayesian Interchange Format (BIF / Cozman's Interchange Format), the
// format used by the classic network repositories (asia.bif, alarm.bif,
// …). Supported constructs:
//
//	network <name> { <properties> }
//	variable <name> { type discrete [ n ] { s0, s1, … }; <properties> }
//	probability ( child | p1, p2 ) {
//	    table v, v, …;              // full table, child state fastest
//	    (s1, s2) v, v, …;           // one row per parent configuration
//	    default v, v, …;            // rows not listed explicitly
//	}
//
// `property` lines are parsed and ignored. Comments use // and /* */.
package bif

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // one of { } ( ) [ ] | , ;
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokPunct:
		return "punctuation"
	default:
		return "token"
	}
}

// token is one lexeme with its source line for error messages.
type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer splits BIF source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// errorf decorates an error with the current line.
func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("bif: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
	}
	return c
}

// skipSpace consumes whitespace and comments.
func (l *lexer) skipSpace() error {
	for {
		c, ok := l.peekByte()
		if !ok {
			return nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
}

// isIdentRune reports whether r may appear inside a BIF identifier. BIF
// identifiers are liberal: repository files use letters, digits, '_', '-'
// and '.'.
func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	line := l.line
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line}, nil
	}
	switch {
	case strings.IndexByte("{}()[]|,;", c) >= 0:
		l.advance()
		return token{kind: tokPunct, text: string(c), line: line}, nil
	case c == '"':
		l.advance()
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || c == '\n' {
				return token{}, l.errorf("unterminated string")
			}
			if c == '"' {
				text := l.src[start:l.pos]
				l.advance()
				return token{kind: tokString, text: text, line: line}, nil
			}
			l.advance()
		}
	case c >= '0' && c <= '9' || c == '-' || c == '+':
		start := l.pos
		l.advance()
		for {
			c, ok := l.peekByte()
			if !ok {
				break
			}
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' ||
				((c == '-' || c == '+') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
				l.advance()
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line}, nil
	case isIdentRune(rune(c)):
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentRune(rune(c)) {
				break
			}
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line}, nil
	default:
		return token{}, l.errorf("unexpected character %q", c)
	}
}

// lex tokenizes the whole input.
func lex(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
