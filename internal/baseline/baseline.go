// Package baseline implements the comparison evidence-propagation methods
// of the paper's Section 7, all driving the same task graph and state as
// the collaborative scheduler so results are directly comparable:
//
//   - Serial: reference single-thread topological execution;
//   - LevelSync: the "OpenMP based" baseline — a fork-join parallel-for
//     over each dependency level with a barrier between levels;
//   - DataParallel: the paper's second baseline — tasks run in serial
//     order, but every node-level primitive is split across P goroutines
//     spawned per primitive (high fork-join overhead);
//   - Centralized: the Cell-BE-style design — one dedicated coordinator
//     goroutine owns all dependency bookkeeping and feeds P workers;
//   - DistributedEmu: a PNL-like distributed-memory emulation — cliques are
//     statically partitioned into P blocks and every cross-block message
//     pays a separator serialization round-trip, reproducing the
//     communication overhead that makes Fig. 6 collapse beyond 4
//     processors.
package baseline

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

// Result reports one baseline run.
type Result struct {
	Elapsed time.Duration
	// Messages counts emulated cross-block transfers (DistributedEmu only).
	Messages int
	// BytesMoved counts emulated serialized bytes (DistributedEmu only).
	BytesMoved int
}

// Serial executes the graph in topological order on the calling goroutine.
func Serial(st taskgraph.Executor) (*Result, error) {
	start := time.Now()
	if err := st.RunSerial(); err != nil {
		return nil, err
	}
	return &Result{Elapsed: time.Since(start)}, nil
}

// LevelSync executes the graph level by level: the tasks of each level are
// statically chunked over p goroutines and a barrier separates levels,
// mirroring an OpenMP parallel-for around each wavefront of ready cliques.
// Tasks within one level are mutually unordered and therefore hazard-free.
func LevelSync(st taskgraph.Executor, p int) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("baseline: levelsync needs p >= 1, got %d", p)
	}
	g := st.Graph()
	start := time.Now()
	for _, level := range g.Levels() {
		if err := parallelChunks(p, len(level), func(i int) error {
			return st.Execute(level[i])
		}); err != nil {
			return nil, err
		}
	}
	return &Result{Elapsed: time.Since(start)}, nil
}

// parallelChunks runs f(0..n-1) across p goroutines with static chunking
// and joins them (the OpenMP static schedule).
func parallelChunks(p, n int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	if p > n {
		p = n
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo := w * n / p
		hi := (w + 1) * n / p
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if err := f(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DataParallel executes tasks one at a time in topological order, but each
// primitive's index range is split across p goroutines spawned for that
// primitive — the paper's data-parallel baseline, whose per-primitive
// fork-join overhead limits its speedup.
func DataParallel(st taskgraph.Executor, p int) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("baseline: dataparallel needs p >= 1, got %d", p)
	}
	g := st.Graph()
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for _, id := range order {
		size := st.PartitionSize(id)
		chunks := p
		if chunks > size {
			chunks = size
		}
		if chunks <= 1 {
			if err := st.Execute(id); err != nil {
				return nil, err
			}
			continue
		}
		bufs := make([]*potential.Potential, chunks)
		if err := parallelChunks(chunks, chunks, func(k int) error {
			lo := k * size / chunks
			hi := (k + 1) * size / chunks
			bufs[k] = st.NewPartialBuffer(id)
			return st.ExecutePiece(id, lo, hi, bufs[k])
		}); err != nil {
			return nil, err
		}
		kept := bufs[:0]
		for _, b := range bufs {
			if b != nil {
				kept = append(kept, b)
			}
		}
		if err := st.Combine(id, kept); err != nil {
			return nil, err
		}
	}
	return &Result{Elapsed: time.Since(start)}, nil
}

// Centralized executes the graph with one dedicated coordinator goroutine
// that owns all dependency bookkeeping and p-1 workers that only execute —
// the design the paper attributes to the Cell BE port and argues is wasteful
// on small homogeneous multicores (one of p cores does no propagation work).
func Centralized(st taskgraph.Executor, p int) (*Result, error) {
	if p < 2 {
		return nil, fmt.Errorf("baseline: centralized needs p >= 2 (one coordinator + workers), got %d", p)
	}
	g := st.Graph()
	start := time.Now()
	if g.N() == 0 {
		return &Result{Elapsed: time.Since(start)}, nil
	}
	workers := p - 1
	ready := make(chan int, g.N())
	done := make(chan int, g.N())
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ready {
				if err := st.Execute(id); err != nil {
					errc <- err
					return
				}
				done <- id
			}
		}()
	}
	deps := g.DepCounts()
	outstanding := 0
	for _, id := range g.Sources() {
		ready <- id
		outstanding++
	}
	completed := 0
	var firstErr error
	for completed < g.N() && firstErr == nil {
		select {
		case id := <-done:
			completed++
			outstanding--
			for _, s := range g.Tasks[id].Succs {
				deps[s]--
				if deps[s] == 0 {
					ready <- s
					outstanding++
				}
			}
		case err := <-errc:
			firstErr = err
		}
	}
	close(ready)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &Result{Elapsed: time.Since(start)}, nil
}

// DistributedEmu executes the graph level-synchronously over a static
// partition of the cliques into p blocks (contiguous by clique id, an
// approximation of the junction-tree decomposition used by distributed
// libraries like PNL). Every task whose edge crosses a block boundary pays
// a serialization round-trip of the separator table, emulating a
// message-passing transfer. The returned Result counts the emulated
// messages and bytes.
func DistributedEmu(st *taskgraph.State, p int) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("baseline: distributed needs p >= 1, got %d", p)
	}
	g := st.Graph()
	n := g.Tree.N()
	block := func(clique int) int { return clique * p / n }
	start := time.Now()
	res := &Result{}
	for _, level := range g.Levels() {
		// Emulate the per-level communication phase: cross-block messages
		// are serialized and deserialized.
		for _, id := range level {
			t := &g.Tasks[id]
			if t.Kind == taskgraph.Divide && block(t.Source) != block(t.Target) {
				nbytes, err := transferRoundTrip(st.Sep[t.Edge])
				if err != nil {
					return nil, err
				}
				res.Messages++
				res.BytesMoved += nbytes
			}
		}
		// Per-level computation phase: every block processes its own tasks.
		byBlock := make([][]int, p)
		for _, id := range level {
			b := block(g.Tasks[id].Target)
			byBlock[b] = append(byBlock[b], id)
		}
		errs := make([]error, p)
		var wg sync.WaitGroup
		for b := 0; b < p; b++ {
			if len(byBlock[b]) == 0 {
				continue
			}
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				for _, id := range byBlock[b] {
					if err := st.Execute(id); err != nil {
						errs[b] = err
						return
					}
				}
			}(b)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// transferRoundTrip serializes the potential's entries to a buffer and
// decodes them back, charging realistic marshaling cost for an emulated
// message transfer. It returns the number of bytes moved.
func transferRoundTrip(p *potential.Potential) (int, error) {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, p.Data); err != nil {
		return 0, err
	}
	out := make([]float64, len(p.Data))
	if err := binary.Read(&buf, binary.LittleEndian, out); err != nil {
		return 0, err
	}
	copy(p.Data, out)
	return len(p.Data) * 8, nil
}
