package baseline

import (
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/jtree"
	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

// fixture returns a graph plus the serial reference state.
func fixture(t *testing.T) (*taskgraph.Graph, *taskgraph.State) {
	t.Helper()
	tr, err := jtree.Random(jtree.RandomConfig{N: 24, Width: 5, States: 2, Degree: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(31); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	ref, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunSerial(); err != nil {
		t.Fatal(err)
	}
	return g, ref
}

func assertSame(t *testing.T, label string, ref, got *taskgraph.State) {
	t.Helper()
	for i := range ref.Clique {
		a, b := ref.Clique[i].Clone(), got.Clique[i].Clone()
		if err := a.Normalize(); err != nil {
			t.Fatal(err)
		}
		if err := b.Normalize(); err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b, 1e-9) {
			t.Fatalf("%s: clique %d differs from serial reference", label, i)
		}
	}
}

func TestSerial(t *testing.T) {
	g, ref := fixture(t)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Serial(st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not positive")
	}
	assertSame(t, "serial", ref, st)
}

func TestLevelSyncMatchesSerial(t *testing.T) {
	g, ref := fixture(t)
	for _, p := range []int{1, 2, 4, 8} {
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := LevelSync(st, p); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		assertSame(t, "levelsync", ref, st)
	}
	st, _ := g.NewState()
	if _, err := LevelSync(st, 0); err == nil {
		t.Error("accepted p=0")
	}
}

func TestDataParallelMatchesSerial(t *testing.T) {
	g, ref := fixture(t)
	for _, p := range []int{1, 2, 4, 7} {
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DataParallel(st, p); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		assertSame(t, "dataparallel", ref, st)
	}
	st, _ := g.NewState()
	if _, err := DataParallel(st, 0); err == nil {
		t.Error("accepted p=0")
	}
}

func TestCentralizedMatchesSerial(t *testing.T) {
	g, ref := fixture(t)
	for _, p := range []int{2, 4, 8} {
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Centralized(st, p); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		assertSame(t, "centralized", ref, st)
	}
	st, _ := g.NewState()
	if _, err := Centralized(st, 1); err == nil {
		t.Error("accepted p=1 (no worker left)")
	}
}

func TestDistributedEmuMatchesSerial(t *testing.T) {
	g, ref := fixture(t)
	for _, p := range []int{1, 2, 4, 8} {
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		res, err := DistributedEmu(st, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if p > 1 && res.Messages == 0 {
			t.Errorf("p=%d: no emulated messages", p)
		}
		if p == 1 && res.Messages != 0 {
			t.Errorf("p=1 moved %d messages", res.Messages)
		}
		assertSame(t, "distributed", ref, st)
	}
}

func TestDistributedEmuMessagesGrowWithP(t *testing.T) {
	g, _ := fixture(t)
	prev := -1
	for _, p := range []int{1, 2, 4, 8} {
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		res, err := DistributedEmu(st, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages < prev {
			t.Errorf("messages decreased from %d to %d at p=%d", prev, res.Messages, p)
		}
		prev = res.Messages
	}
}

func TestBaselinesOnBayesNet(t *testing.T) {
	// All baselines must reproduce the brute-force oracle on Asia.
	net, ids := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	ev := potential.Evidence{ids["Dysp"]: 1}
	type runner struct {
		name string
		run  func(*taskgraph.State) error
	}
	runners := []runner{
		{"serial", func(st *taskgraph.State) error { _, err := Serial(st); return err }},
		{"levelsync", func(st *taskgraph.State) error { _, err := LevelSync(st, 4); return err }},
		{"dataparallel", func(st *taskgraph.State) error { _, err := DataParallel(st, 4); return err }},
		{"centralized", func(st *taskgraph.State) error { _, err := Centralized(st, 4); return err }},
		{"distributed", func(st *taskgraph.State) error { _, err := DistributedEmu(st, 4); return err }},
	}
	for _, r := range runners {
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.AbsorbEvidence(ev); err != nil {
			t.Fatal(err)
		}
		if err := r.run(st); err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		for name, v := range ids {
			if v == ids["Dysp"] {
				continue
			}
			got, err := st.Marginal(v)
			if err != nil {
				t.Fatal(err)
			}
			want, err := net.ExactMarginal(v, ev)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 1e-9) {
				t.Errorf("%s: P(%s|e) = %v, oracle %v", r.name, name, got.Data, want.Data)
			}
		}
	}
}

func TestEmptyGraphBaselines(t *testing.T) {
	tr, err := jtree.Chain(1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeUniform(); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Serial(st); err != nil {
		t.Errorf("serial: %v", err)
	}
	if _, err := LevelSync(st, 2); err != nil {
		t.Errorf("levelsync: %v", err)
	}
	if _, err := DataParallel(st, 2); err != nil {
		t.Errorf("dataparallel: %v", err)
	}
	if _, err := Centralized(st, 2); err != nil {
		t.Errorf("centralized: %v", err)
	}
	if _, err := DistributedEmu(st, 2); err != nil {
		t.Errorf("distributed: %v", err)
	}
}

func TestTransferRoundTripPreservesData(t *testing.T) {
	p := potential.MustNew([]int{0, 1}, []int{2, 3})
	for i := range p.Data {
		p.Data[i] = float64(i) * 1.5
	}
	orig := p.Clone()
	n, err := transferRoundTrip(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6*8 {
		t.Errorf("bytes = %d, want 48", n)
	}
	if !p.Equal(orig, 0) {
		t.Error("round trip corrupted data")
	}
}
