package machine

import (
	"container/heap"
	"fmt"
	"io"
	"math"

	"evprop/internal/taskgraph"
)

// Result reports one simulated execution.
type Result struct {
	// Makespan is the simulated wall-clock time in seconds.
	Makespan float64
	// Busy is per-core time spent inside node-level primitives.
	Busy []float64
	// Overhead is per-core time spent on scheduling operations.
	Overhead []float64
	// Pieces counts partitioned subtasks executed.
	Pieces int
	// Spans is the per-item execution timeline (only recorded by
	// SimulateCollaborativeOpts with RecordSpans).
	Spans []Span
}

// Span is one executed item on a simulated core's timeline.
type Span struct {
	Core       int
	Start, End float64 // seconds
	Task       int
}

// TotalBusy sums the per-core busy times.
func (r *Result) TotalBusy() float64 {
	s := 0.0
	for _, b := range r.Busy {
		s += b
	}
	return s
}

// SerialTime is the simulated single-thread execution time: the sum of all
// task service times (the reference for every speedup in the paper).
func SerialTime(g *taskgraph.Graph, cm CostModel) float64 {
	return cm.service(g.TotalWeight())
}

// CriticalPathTime is the lower bound on any schedule's makespan.
func CriticalPathTime(g *taskgraph.Graph, cm CostModel) float64 {
	return cm.service(g.CriticalPathWeight())
}

// --- event-driven core engine -------------------------------------------

type simItem struct {
	service float64 // seconds of primitive work
	taskID  int     // original task (for successor bookkeeping)
	comb    *simComb
	isComb  bool
}

type simComb struct {
	taskID  int
	pending int
}

type simEvent struct {
	at   float64
	seq  int
	core int
	item simItem
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)      { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any        { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) push(e simEvent) { heap.Push(h, e) }
func (h *eventHeap) pop() simEvent   { return heap.Pop(h).(simEvent) }
func (h eventHeap) empty() bool      { return len(h) == 0 }
func (r *Result) grow(p int)         { r.Busy = make([]float64, p); r.Overhead = make([]float64, p) }
func maxf(a, b float64) float64      { return math.Max(a, b) }

// collabSim simulates the collaborative scheduler (and, with a dedicated
// dispatcher, the centralized one).
type collabSim struct {
	g         *taskgraph.Graph
	cm        CostModel
	p         int
	threshold float64 // δ in weight units; 0 disables partitioning
	central   bool    // centralized variant: core 0 only dispatches

	deps      []int32
	coreClock []float64
	coordTime float64 // centralized: coordinator core's clock
	events    eventHeap
	seq       int
	res       Result
	rr        int
	rrAlloc   bool // ablation: round-robin instead of least-loaded
	spans     bool
}

// CollabOptions tunes the collaborative-scheduler simulation beyond the
// paper's defaults, for the ablation experiments.
type CollabOptions struct {
	// Threshold is δ in table entries; 0 disables partitioning.
	Threshold float64
	// RoundRobinAlloc replaces the least-loaded allocation rule (line 7 of
	// Algorithm 2) with blind round-robin — the ablation isolating how
	// much the weight counters contribute.
	RoundRobinAlloc bool
	// RecordSpans captures the per-item execution timeline in
	// Result.Spans for Gantt rendering.
	RecordSpans bool
}

// SimulateCollaborative runs the collaborative scheduler of Section 6 on a
// simulated P-core machine. threshold is δ expressed in table entries; 0
// disables task partitioning (the Fig. 5 configuration).
func SimulateCollaborative(g *taskgraph.Graph, p int, threshold float64, cm CostModel) (*Result, error) {
	return SimulateCollaborativeOpts(g, p, cm, CollabOptions{Threshold: threshold})
}

// SimulateCollaborativeOpts is SimulateCollaborative with ablation knobs.
func SimulateCollaborativeOpts(g *taskgraph.Graph, p int, cm CostModel, opts CollabOptions) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: need p >= 1, got %d", p)
	}
	s := &collabSim{g: g, cm: cm, p: p, threshold: opts.Threshold,
		rrAlloc: opts.RoundRobinAlloc, spans: opts.RecordSpans}
	return s.run()
}

// SimulateCentralized runs the Cell-BE-style centralized scheduler: core 0
// is a dedicated dispatcher through which every allocation serializes, and
// only cores 1..P-1 execute primitives.
func SimulateCentralized(g *taskgraph.Graph, p int, threshold float64, cm CostModel) (*Result, error) {
	if p < 2 {
		return nil, fmt.Errorf("machine: centralized needs p >= 2, got %d", p)
	}
	s := &collabSim{g: g, cm: cm, p: p, threshold: threshold, central: true}
	return s.run()
}

func (s *collabSim) workers() (lo, hi int) {
	if s.central {
		return 1, s.p
	}
	return 0, s.p
}

func (s *collabSim) run() (*Result, error) {
	s.deps = s.g.DepCounts()
	s.coreClock = make([]float64, s.p)
	s.res.grow(s.p)
	if s.g.N() == 0 {
		return &s.res, nil
	}
	for _, id := range s.g.Sources() {
		s.allocate(id, 0, true)
	}
	completed := 0
	for !s.events.empty() {
		ev := s.events.pop()
		now := ev.at
		it := ev.item
		switch {
		case it.isComb:
			s.completeTask(it.taskID, now)
			completed++
		case it.comb != nil:
			it.comb.pending--
			if it.comb.pending == 0 {
				// The combiner runs on the core that finished last.
				comb := simItem{
					service: s.cm.loadedService(s.g.Tasks[it.comb.taskID].Weight*s.cm.CombineFraction, s.p),
					taskID:  it.comb.taskID,
					isComb:  true,
				}
				s.pushTo(ev.core, comb, now)
			}
		default:
			s.completeTask(it.taskID, now)
			completed++
		}
	}
	if completed != s.g.N() {
		return nil, fmt.Errorf("machine: deadlock, %d of %d tasks completed", completed, s.g.N())
	}
	makespan := 0.0
	for _, c := range s.coreClock {
		makespan = maxf(makespan, c)
	}
	s.res.Makespan = maxf(makespan, s.coordTime)
	return &s.res, nil
}

func (s *collabSim) completeTask(id int, now float64) {
	for _, succ := range s.g.Tasks[id].Succs {
		s.deps[succ]--
		if s.deps[succ] == 0 {
			s.allocate(succ, now, false)
		}
	}
}

// allocate routes a ready task to a core: round-robin for the initial even
// distribution (line 1 of Algorithm 2), least-loaded otherwise (line 7).
func (s *collabSim) allocate(id int, now float64, initial bool) {
	w := s.g.Tasks[id].Weight
	if s.threshold > 0 && w > s.threshold {
		s.partition(id, now)
		return
	}
	item := simItem{service: s.cm.loadedService(w, s.p), taskID: id}
	s.pushTo(s.pickCore(now, initial), item, now)
}

// partition splits the task into ⌈w/δ⌉ pieces spread over the cores; the
// combining subtask is scheduled when the last piece finishes.
func (s *collabSim) partition(id int, now float64) {
	w := s.g.Tasks[id].Weight
	n := int(math.Ceil(w / s.threshold))
	lo, hi := s.workers()
	if n > 8*(hi-lo) {
		n = 8 * (hi - lo) // the real scheduler caps nothing, but the sim
		// needs no finer granularity than the core count to model load
	}
	comb := &simComb{taskID: id, pending: n}
	// Pieces carry no memory-contention inflation: unlike the lock-step
	// data-parallel baselines, the collaborative scheduler interleaves
	// pieces with unrelated tasks, so the cores rarely stream one table
	// simultaneously — the locality advantage the paper credits for the
	// method's near-linear scaling.
	per := s.cm.loadedService(w, s.p) / float64(n)
	_, _ = lo, hi
	for k := 0; k < n; k++ {
		// Pieces go to the least-loaded cores, the same balancing rule the
		// Allocate module applies to whole tasks; pushing updates the core
		// clocks, so consecutive pieces spread across the machine.
		s.pushTo(s.pickCore(now, false), simItem{service: per, taskID: id, comb: comb}, now)
		s.res.Pieces++
	}
}

// pickCore returns the least-loaded worker core at time now (round-robin
// for the initial distribution and under the RoundRobinAlloc ablation).
func (s *collabSim) pickCore(now float64, initial bool) int {
	lo, hi := s.workers()
	if initial || s.rrAlloc {
		core := lo + (s.rr % (hi - lo))
		s.rr++
		return core
	}
	best, bestLoad := lo, math.Inf(1)
	for c := lo; c < hi; c++ {
		load := s.coreClock[c] - now
		if load < 0 {
			load = 0
		}
		if load < bestLoad {
			best, bestLoad = c, load
		}
	}
	return best
}

// pushTo enqueues the item on a core's FIFO queue, paying the dispatch
// overhead (on the dedicated coordinator in the centralized variant).
func (s *collabSim) pushTo(core int, it simItem, now float64) {
	disp := s.cm.dispatchCost(s.p)
	start := maxf(s.coreClock[core], now)
	if s.central {
		// Every dispatch serializes through the coordinator core.
		dispDone := maxf(s.coordTime, now) + disp
		s.coordTime = dispDone
		s.res.Overhead[0] += disp
		start = maxf(s.coreClock[core], dispDone)
	} else {
		s.res.Overhead[core] += disp
		start += disp
	}
	s.coreClock[core] = start + it.service
	s.res.Busy[core] += it.service
	if s.spans {
		s.res.Spans = append(s.res.Spans, Span{
			Core: core, Start: s.coreClock[core] - it.service, End: s.coreClock[core], Task: it.taskID,
		})
	}
	s.seq++
	s.events.push(simEvent{at: s.coreClock[core], seq: s.seq, core: core, item: it})
}

// Gantt renders the recorded spans as a fixed-width text chart, one row per
// core ('█' busy, '·' idle) — the simulated counterpart of the real
// scheduler's trace Gantt.
func (r *Result) Gantt(w io.Writer, width int) {
	if width < 10 {
		width = 10
	}
	if r.Makespan <= 0 || len(r.Spans) == 0 {
		fmt.Fprintln(w, "(no spans recorded)")
		return
	}
	cores := len(r.Busy)
	fmt.Fprintf(w, "simulated gantt: %d cores over %.4fs\n", cores, r.Makespan)
	scale := float64(width) / r.Makespan
	for core := 0; core < cores; core++ {
		row := make([]rune, width)
		for i := range row {
			row[i] = '·'
		}
		for _, s := range r.Spans {
			if s.Core != core {
				continue
			}
			lo := int(s.Start * scale)
			hi := int(s.End * scale)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = '█'
			}
		}
		fmt.Fprintf(w, "c%-2d %s\n", core, string(row))
	}
}
