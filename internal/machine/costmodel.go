// Package machine is the hardware substitute of this reproduction: a
// deterministic discrete-event simulator of a homogeneous multicore
// processor executing an evidence-propagation task dependency graph under
// each of the paper's scheduling methods.
//
// The paper's evaluation ran on 8-core Xeon/Opteron systems; this
// repository's host cannot observe parallel wall-clock speedup, but every
// figure in the paper is a function of (task DAG structure, task weights,
// scheduling policy, overhead constants) — exactly the state this simulator
// evolves. Task service time is weight × SecondsPerEntry; scheduling,
// synchronization and communication overheads are explicit model
// parameters, calibrated in EXPERIMENTS.md against the paper's reported
// numbers (speedup 7.4 at 8 cores, <0.9 % scheduling overhead, PNL
// collapse beyond 4 processors).
package machine

// CostModel holds the simulator's timing constants, all in seconds.
type CostModel struct {
	// SecondsPerEntry converts a task weight (potential-table entries
	// touched) into service time. Default models a ~2 GHz core doing a few
	// flops per entry.
	SecondsPerEntry float64
	// Dispatch is the cost of one Allocate/Fetch scheduling operation on
	// the global or local lists (lock acquire + list update).
	Dispatch float64
	// LockContention scales Dispatch by (1 + LockContention·(P−1)): with
	// more threads the shared lists are contended, the overhead the paper
	// observes growing at 8 threads.
	LockContention float64
	// Barrier is the cost of one level-synchronization barrier.
	Barrier float64
	// ForkJoin is the per-thread cost of spawning and joining a thread for
	// one primitive (the data-parallel baseline pays P·ForkJoin per task).
	ForkJoin float64
	// OmpForkJoin is the same for the OpenMP runtime's implicit team
	// fork/barrier around a parallel loop.
	OmpForkJoin float64
	// SplitContention is β in the primitive-splitting efficiency
	// n/(1+β·(n−1)): n cores streaming one table share memory bandwidth,
	// so an n-way split of a single primitive speeds up sublinearly.
	SplitContention float64
	// OmpSplitContention is β for the OpenMP runtime (slightly worse:
	// static loop chunks + implicit barriers).
	OmpSplitContention float64
	// MessageLatency is the fixed cost of one emulated inter-process
	// message (DistributedEmu / PNL model).
	MessageLatency float64
	// MessagePerByte is the per-byte transfer cost of a message.
	MessagePerByte float64
	// SyncPerProcess is the per-level synchronization cost per process of
	// the distributed-memory model (grows linearly with P).
	SyncPerProcess float64
	// BroadcastPerByte is the shared-interconnect cost of replicating one
	// byte of an updated clique table to the other processes in the
	// distributed (PNL-style) model, which replicates the junction tree on
	// every process. This term is what makes Fig. 6 collapse beyond 4
	// processors: it grows with (P−1) while per-process work shrinks.
	BroadcastPerByte float64
	// CombineFraction is the relative cost of the combining subtask T̂n of
	// a partitioned task, as a fraction of the original task weight.
	CombineFraction float64
	// MemoryLoad inflates every primitive's service time by
	// (1 + MemoryLoad·(P−1)): with more active cores the shared memory
	// system is loaded even when they stream distinct tables. It is the
	// gap between the paper's 7.4× and a perfect 8×.
	MemoryLoad float64
}

// Default returns the calibrated cost model used by the experiment harness.
// See EXPERIMENTS.md for the calibration procedure.
func Default() CostModel {
	return CostModel{
		SecondsPerEntry:    2e-9,
		Dispatch:           8e-7,
		LockContention:     0.04,
		Barrier:            2e-6,
		ForkJoin:           2.5e-6,
		OmpForkJoin:        4e-6,
		SplitContention:    0.143, // 8-way split ≈ 4× (paper: 7.1/1.8 ≈ 3.9)
		OmpSplitContention: 0.185, // 8-way split ≈ 3.5× (paper: 7.4/2.1 ≈ 3.5)
		MessageLatency:     8e-5,
		MessagePerByte:     2.5e-9, // ~400 MB/s effective point-to-point
		SyncPerProcess:     6e-5,
		BroadcastPerByte:   5e-11, // shared bus, all processes contend
		CombineFraction:    0.01,
		MemoryLoad:         0.008,
	}
}

// service converts a weight to seconds.
func (cm CostModel) service(weight float64) float64 { return weight * cm.SecondsPerEntry }

// loadedService is service time under P active cores sharing the memory
// system.
func (cm CostModel) loadedService(weight float64, p int) float64 {
	return cm.service(weight) * (1 + cm.MemoryLoad*float64(p-1))
}

// dispatchCost is the per-operation scheduling cost under P threads.
func (cm CostModel) dispatchCost(p int) float64 {
	return cm.Dispatch * (1 + cm.LockContention*float64(p-1))
}

// splitFactor returns the effective speedup of splitting one primitive
// n ways under memory-bandwidth contention β.
func splitFactor(n int, beta float64) float64 {
	if n <= 1 {
		return 1
	}
	return float64(n) / (1 + beta*float64(n-1))
}

// Xeon returns the calibrated model for the paper's first platform (2×
// quad-core Intel Xeon E5335, 2.0 GHz): identical to Default.
func Xeon() CostModel { return Default() }

// Opteron returns the model for the paper's second platform (2× quad-core
// AMD Opteron 2347, 1.9 GHz): ~5 % slower per entry, with slightly cheaper
// synchronization (the paper reports 7.1× there vs 7.4× on the Xeon, and a
// marginally better data-parallel baseline — 1.8× gap instead of 2.1×).
func Opteron() CostModel {
	cm := Default()
	cm.SecondsPerEntry = 2.1e-9
	cm.Dispatch = 7e-7
	cm.MemoryLoad = 0.013
	cm.SplitContention = 0.126 // 8-way ≈ 4.25× (7.1/1.8 ≈ 3.9 with load)
	cm.OmpSplitContention = 0.165
	return cm
}
