package machine

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"evprop/internal/jtree"
	"evprop/internal/taskgraph"
)

func buildGraph(t *testing.T, cfg jtree.RandomConfig) *taskgraph.Graph {
	t.Helper()
	tr, err := jtree.Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return taskgraph.Build(tr)
}

func paperJT1Graph(t *testing.T) *taskgraph.Graph {
	t.Helper()
	// The paper's JT1 parameters (512 cliques, width 20 binary) — usable
	// here because skeleton trees never allocate the 2^20-entry tables.
	return buildGraph(t, jtree.JT1())
}

type simFn func(g *taskgraph.Graph, p int, cm CostModel) (*Result, error)

func collab(threshold float64) simFn {
	return func(g *taskgraph.Graph, p int, cm CostModel) (*Result, error) {
		return SimulateCollaborative(g, p, threshold, cm)
	}
}

func allSims() map[string]simFn {
	return map[string]simFn{
		"collaborative":      collab(0),
		"collaborative-part": collab(1 << 14),
		"levelsync":          SimulateLevelSync,
		"dataparallel":       SimulateDataParallel,
		"openmp":             SimulateOpenMP,
		"distributed":        SimulateDistributed,
	}
}

func TestWorkConservation(t *testing.T) {
	g := buildGraph(t, jtree.RandomConfig{N: 60, Width: 8, States: 2, Degree: 3, Seed: 2})
	cm := Default()
	serial := SerialTime(g, cm)
	for name, sim := range allSims() {
		for _, p := range []int{1, 2, 4, 8} {
			res, err := sim(g, p, cm)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			busy := res.TotalBusy()
			// Primitive work is conserved up to the split-contention
			// inflation, which only stretches wall time, not busy sums.
			if busy < serial*0.99 || busy > serial*1.15 {
				t.Errorf("%s p=%d: busy %.6f vs serial %.6f", name, p, busy, serial)
			}
			if res.Makespan < busy/float64(p)*0.99 {
				t.Errorf("%s p=%d: makespan %.6f below work/P %.6f", name, p, res.Makespan, busy/float64(p))
			}
		}
	}
}

func TestMakespanAtLeastCriticalPath(t *testing.T) {
	g := buildGraph(t, jtree.RandomConfig{N: 40, Width: 6, States: 2, Degree: 2, Seed: 4})
	cm := Default()
	cp := CriticalPathTime(g, cm)
	for name, sim := range map[string]simFn{
		"collaborative": collab(0),
		"levelsync":     SimulateLevelSync,
	} {
		for _, p := range []int{1, 2, 8, 64} {
			res, err := sim(g, p, cm)
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan < cp*0.999 {
				t.Errorf("%s p=%d: makespan %.6g below critical path %.6g", name, p, res.Makespan, cp)
			}
		}
	}
}

func TestSingleCoreMatchesSerial(t *testing.T) {
	// Paper-scale table sizes (skeleton only) so that scheduling overhead
	// is small relative to primitive work, as on the real platforms.
	g := buildGraph(t, jtree.RandomConfig{N: 30, Width: 16, States: 2, Degree: 3, Seed: 6})
	cm := Default()
	serial := SerialTime(g, cm)
	res, err := SimulateCollaborative(g, 1, 0, cm)
	if err != nil {
		t.Fatal(err)
	}
	// One core: makespan = serial work + scheduling overhead.
	if res.Makespan < serial {
		t.Errorf("P=1 makespan %.6g below serial %.6g", res.Makespan, serial)
	}
	if res.Makespan > serial*1.2 {
		t.Errorf("P=1 overhead too large: %.6g vs %.6g", res.Makespan, serial)
	}
}

func TestDeterminism(t *testing.T) {
	g := paperJT1Graph(t)
	cm := Default()
	a, err := SimulateCollaborative(g, 8, 1<<18, cm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateCollaborative(g, 8, 1<<18, cm)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Pieces != b.Pieces {
		t.Error("simulation not deterministic")
	}
}

func TestCollaborativeNearLinearSpeedupOnPaperTree(t *testing.T) {
	// The headline result: ≈7.4× speedup on 8 cores for JT1.
	g := paperJT1Graph(t)
	cm := Default()
	serial := SerialTime(g, cm)
	res, err := SimulateCollaborative(g, 8, serialWeightThreshold(g), cm)
	if err != nil {
		t.Fatal(err)
	}
	sp := serial / res.Makespan
	if sp < 6.5 || sp > 8.0 {
		t.Errorf("8-core speedup = %.2f, want ≈7.4", sp)
	}
}

// serialWeightThreshold returns the δ used by the harness: twice the mean
// task weight, so only the heavyweight clique-sized tasks split.
func serialWeightThreshold(g *taskgraph.Graph) float64 {
	return 2 * g.TotalWeight() / float64(g.N())
}

func TestBaselineOrderingAtEightCores(t *testing.T) {
	// Fig. 7's qualitative ordering: collaborative > dataparallel > openmp.
	g := paperJT1Graph(t)
	cm := Default()
	serial := SerialTime(g, cm)
	speedup := func(sim simFn) float64 {
		res, err := sim(g, 8, cm)
		if err != nil {
			t.Fatal(err)
		}
		return serial / res.Makespan
	}
	co := speedup(collab(serialWeightThreshold(g)))
	dp := speedup(SimulateDataParallel)
	om := speedup(SimulateOpenMP)
	if !(co > dp && dp > om) {
		t.Errorf("speedup ordering violated: collab=%.2f dp=%.2f omp=%.2f", co, dp, om)
	}
	if r := co / om; r < 1.7 || r > 2.6 {
		t.Errorf("collab/openmp ratio = %.2f, paper reports ≈2.1", r)
	}
	if r := co / dp; r < 1.4 || r > 2.3 {
		t.Errorf("collab/dataparallel ratio = %.2f, paper reports ≈1.8", r)
	}
}

func TestDistributedUShape(t *testing.T) {
	// Fig. 6: the PNL-style distributed baseline's execution time must
	// *increase* beyond 4 processors.
	for _, cfg := range []jtree.RandomConfig{jtree.JT1(), jtree.JT2(), jtree.JT3()} {
		g := buildGraph(t, cfg)
		cm := Default()
		times := map[int]float64{}
		for _, p := range []int{1, 2, 4, 8, 12, 16} {
			res, err := SimulateDistributed(g, p, cm)
			if err != nil {
				t.Fatal(err)
			}
			times[p] = res.Makespan
		}
		if times[2] >= times[1] {
			t.Errorf("N=%d: no initial speedup: t(1)=%.4g t(2)=%.4g", cfg.N, times[1], times[2])
		}
		if times[16] <= times[4] {
			t.Errorf("N=%d: no collapse beyond 4 procs: t(4)=%.4g t(16)=%.4g", cfg.N, times[4], times[16])
		}
	}
}

func TestCentralizedWorseThanCollaborative(t *testing.T) {
	g := paperJT1Graph(t)
	cm := Default()
	co, err := SimulateCollaborative(g, 8, 0, cm)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := SimulateCentralized(g, 8, 0, cm)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Makespan <= co.Makespan {
		t.Errorf("centralized (%.4g) not worse than collaborative (%.4g)", ce.Makespan, co.Makespan)
	}
}

func TestLoadBalanceOnPaperTree(t *testing.T) {
	// Fig. 8(a): per-core busy times nearly equal; (b): overhead below 1%.
	g := paperJT1Graph(t)
	cm := Default()
	res, err := SimulateCollaborative(g, 8, serialWeightThreshold(g), cm)
	if err != nil {
		t.Fatal(err)
	}
	minB, maxB := math.Inf(1), 0.0
	for _, b := range res.Busy {
		minB = math.Min(minB, b)
		maxB = math.Max(maxB, b)
	}
	if (maxB-minB)/maxB > 0.15 {
		t.Errorf("load imbalance %.1f%% exceeds 15%%", 100*(maxB-minB)/maxB)
	}
	for c, ov := range res.Overhead {
		if ratio := ov / res.Makespan; ratio > 0.01 {
			t.Errorf("core %d scheduling overhead %.2f%% exceeds 1%%", c, 100*ratio)
		}
	}
}

func TestRerootingSpeedupTemplate(t *testing.T) {
	// Fig. 5: rerooted template trees approach 2× with P ≥ b+1 threads,
	// partitioning disabled.
	for _, b := range []int{1, 2, 4} {
		tr, err := jtree.Template(jtree.TemplateConfig{
			Branches: b, TotalCliques: 512, Width: 10, States: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		cm := Default()
		orig := taskgraph.Build(tr)
		rt, err := tr.Reroot(tr.SelectRoot())
		if err != nil {
			t.Fatal(err)
		}
		rerooted := taskgraph.Build(rt)
		p := 8
		ro, err := SimulateCollaborative(orig, p, 0, cm)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := SimulateCollaborative(rerooted, p, 0, cm)
		if err != nil {
			t.Fatal(err)
		}
		sp := ro.Makespan / rr.Makespan
		if sp < 1.5 || sp > 2.1 {
			t.Errorf("b=%d: rerooting speedup %.2f, want ≈1.9", b, sp)
		}
	}
}

func TestInvalidArguments(t *testing.T) {
	g := buildGraph(t, jtree.RandomConfig{N: 5, Width: 3, States: 2, Degree: 2, Seed: 1})
	cm := Default()
	if _, err := SimulateCollaborative(g, 0, 0, cm); err == nil {
		t.Error("accepted p=0")
	}
	if _, err := SimulateCentralized(g, 1, 0, cm); err == nil {
		t.Error("centralized accepted p=1")
	}
	if _, err := SimulateLevelSync(g, 0, cm); err == nil {
		t.Error("levelsync accepted p=0")
	}
	if _, err := SimulateDataParallel(g, 0, cm); err == nil {
		t.Error("dataparallel accepted p=0")
	}
	if _, err := SimulateDistributed(g, 0, cm); err == nil {
		t.Error("distributed accepted p=0")
	}
}

func TestEmptyGraph(t *testing.T) {
	tr, err := jtree.Chain(1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	res, err := SimulateCollaborative(g, 4, 0, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 {
		t.Errorf("empty graph makespan %v", res.Makespan)
	}
}

func TestSplitFactor(t *testing.T) {
	if splitFactor(1, 0.5) != 1 {
		t.Error("splitFactor(1) != 1")
	}
	if got := splitFactor(8, 0.143); math.Abs(got-4.0) > 0.05 {
		t.Errorf("splitFactor(8, 0.143) = %.3f, want ≈4", got)
	}
	if splitFactor(4, 0) != 4 {
		t.Error("zero contention must be linear")
	}
}

func TestMoreCoresNeverMuchWorse(t *testing.T) {
	g := buildGraph(t, jtree.RandomConfig{N: 100, Width: 8, States: 2, Degree: 4, Seed: 9})
	cm := Default()
	prev := math.Inf(1)
	for _, p := range []int{1, 2, 4, 8} {
		res, err := SimulateCollaborative(g, p, 0, cm)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > prev*1.05 {
			t.Errorf("p=%d makespan %.4g much worse than p/2's %.4g", p, res.Makespan, prev)
		}
		prev = res.Makespan
	}
}

func TestSimulatedSpansAndGantt(t *testing.T) {
	g := buildGraph(t, jtree.RandomConfig{N: 20, Width: 6, States: 2, Degree: 3, Seed: 3})
	cm := Default()
	res, err := SimulateCollaborativeOpts(g, 3, cm, CollabOptions{RecordSpans: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) != g.N() {
		t.Errorf("%d spans, want %d (no partitioning)", len(res.Spans), g.N())
	}
	// Spans on one core must not overlap and must fit the makespan.
	byCore := map[int][]Span{}
	for _, s := range res.Spans {
		if s.Start < 0 || s.End < s.Start || s.End > res.Makespan+1e-12 {
			t.Errorf("span %+v outside [0, %v]", s, res.Makespan)
		}
		byCore[s.Core] = append(byCore[s.Core], s)
	}
	for core, spans := range byCore {
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].End-1e-12 {
				t.Errorf("core %d: spans overlap: %+v then %+v", core, spans[i-1], spans[i])
			}
		}
	}
	var buf bytes.Buffer
	res.Gantt(&buf, 48)
	if !strings.Contains(buf.String(), "c0") || !strings.Contains(buf.String(), "█") {
		t.Error("gantt malformed")
	}
	// No spans when not requested.
	plain, err := SimulateCollaborative(g, 3, 0, cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Spans) != 0 {
		t.Error("spans recorded without opt-in")
	}
	buf.Reset()
	plain.Gantt(&buf, 20)
	if !strings.Contains(buf.String(), "no spans") {
		t.Error("empty gantt not reported")
	}
}

func TestQuickMakespanBounds(t *testing.T) {
	// For random trees and core counts, the collaborative makespan lies in
	// [max(criticalPath, work/P), work + totalOverhead].
	cm := Default()
	for seed := int64(0); seed < 15; seed++ {
		g := buildGraph(t, jtree.RandomConfig{
			N: 10 + int(seed*7)%60, Width: 4 + int(seed)%6, States: 2,
			Degree: 1 + int(seed)%4, Seed: seed,
		})
		for _, p := range []int{1, 3, 8} {
			res, err := SimulateCollaborative(g, p, 0, cm)
			if err != nil {
				t.Fatal(err)
			}
			work := res.TotalBusy()
			lower := math.Max(CriticalPathTime(g, cm), work/float64(p))
			overhead := 0.0
			for _, o := range res.Overhead {
				overhead += o
			}
			if res.Makespan < lower*0.999 {
				t.Errorf("seed %d P=%d: makespan %.6g below bound %.6g", seed, p, res.Makespan, lower)
			}
			if res.Makespan > work+overhead+1e-12 {
				t.Errorf("seed %d P=%d: makespan %.6g above serial+overhead %.6g",
					seed, p, res.Makespan, work+overhead)
			}
		}
	}
}
