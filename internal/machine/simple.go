package machine

import (
	"fmt"

	"evprop/internal/taskgraph"
)

// SimulateLevelSync models task-level level-synchronous execution: the
// tasks of each dependency level are statically chunked over P cores and a
// barrier separates levels. It is the task-parallel ablation between the
// dynamic collaborative scheduler and the purely data-parallel baselines.
func SimulateLevelSync(g *taskgraph.Graph, p int, cm CostModel) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: need p >= 1, got %d", p)
	}
	res := &Result{}
	res.grow(p)
	for _, level := range g.Levels() {
		n := len(level)
		chunks := p
		if chunks > n {
			chunks = n
		}
		levelMax := 0.0
		for c := 0; c < chunks; c++ {
			lo := c * n / chunks
			hi := (c + 1) * n / chunks
			t := 0.0
			for _, id := range level[lo:hi] {
				t += cm.loadedService(g.Tasks[id].Weight, chunks)
			}
			res.Busy[c] += t
			if t > levelMax {
				levelMax = t
			}
		}
		res.Makespan += levelMax + cm.Barrier
		for c := 0; c < p; c++ {
			res.Overhead[c] += cm.Barrier
		}
	}
	return res, nil
}

// SimulateDataParallel models the paper's pthread data-parallel baseline:
// tasks run serially in topological order, each primitive split P ways with
// per-primitive fork/join cost and memory-bandwidth contention.
func SimulateDataParallel(g *taskgraph.Graph, p int, cm CostModel) (*Result, error) {
	return simulateSplitEveryPrimitive(g, p, cm.ForkJoin, cm.SplitContention, cm)
}

// SimulateOpenMP models the paper's OpenMP baseline: the sequential code's
// primitive loops wrapped in omp parallel-for, paying the runtime's team
// fork and implicit barrier per loop plus slightly worse split efficiency
// (static chunking).
func SimulateOpenMP(g *taskgraph.Graph, p int, cm CostModel) (*Result, error) {
	return simulateSplitEveryPrimitive(g, p, cm.OmpForkJoin, cm.OmpSplitContention, cm)
}

func simulateSplitEveryPrimitive(g *taskgraph.Graph, p int, forkJoin, beta float64, cm CostModel) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: need p >= 1, got %d", p)
	}
	res := &Result{}
	res.grow(p)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		w := cm.service(g.Tasks[id].Weight)
		elapsed := w/splitFactor(p, beta) + forkJoin*float64(p)
		res.Makespan += elapsed
		for c := 0; c < p; c++ {
			res.Busy[c] += w / float64(p)
			res.Overhead[c] += elapsed - w/float64(p)
		}
		if p > 1 {
			res.Pieces += p
		}
	}
	return res, nil
}

// SimulateDistributed models a PNL-style distributed-memory junction-tree
// implementation (the paper's Fig. 6 baseline). Cliques are statically
// distributed round-robin over P processes and execution is
// level-synchronous. Three overheads reproduce PNL's observed collapse
// beyond 4 processors:
//
//   - cross-block separator messages (point-to-point, paid by the
//     receiving block);
//   - replication broadcasts: the library keeps the junction tree
//     replicated on every process, so each clique update is shipped to the
//     other P−1 processes over a shared interconnect (serialized bus time
//     that grows with P while per-process work shrinks);
//   - a per-level synchronization linear in P.
func SimulateDistributed(g *taskgraph.Graph, p int, cm CostModel) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: need p >= 1, got %d", p)
	}
	res := &Result{}
	res.grow(p)
	block := func(clique int) int { return clique % p }
	for _, level := range g.Levels() {
		comp := make([]float64, p)
		comm := make([]float64, p)
		broadcast := 0.0
		for _, id := range level {
			t := &g.Tasks[id]
			b := block(t.Target)
			comp[b] += cm.service(t.Weight)
			if p > 1 {
				switch t.Kind {
				case taskgraph.Divide:
					if block(t.Source) != block(t.Target) {
						bytes := float64(g.Tree.Cliques[t.Edge].SepSize()) * 8
						comm[b] += cm.MessageLatency + bytes*cm.MessagePerByte
					}
				case taskgraph.Multiply:
					// Replicated state: ship the updated clique table to
					// the other P−1 processes over the shared bus.
					bytes := float64(g.Tree.Cliques[t.Target].TableSize()) * 8
					broadcast += float64(p-1) * bytes * cm.BroadcastPerByte
				}
			}
		}
		levelMax := 0.0
		for b := 0; b < p; b++ {
			res.Busy[b] += comp[b]
			res.Overhead[b] += comm[b] + broadcast/float64(p)
			if comp[b]+comm[b] > levelMax {
				levelMax = comp[b] + comm[b]
			}
		}
		sync := cm.SyncPerProcess * float64(p)
		if p == 1 {
			sync = 0
		}
		res.Makespan += levelMax + broadcast + sync
		for b := 0; b < p; b++ {
			res.Overhead[b] += sync
		}
	}
	return res, nil
}
