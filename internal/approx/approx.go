// Package approx implements sampling-based approximate inference —
// likelihood weighting and Gibbs sampling — over the same Bayesian networks
// as the exact junction-tree engine. Besides being features in their own
// right, they serve as statistically independent cross-checks of the exact
// engine: both estimators converge to the posteriors that evidence
// propagation computes exactly.
package approx

import (
	"fmt"
	"math/rand"

	"evprop/internal/bayesnet"
	"evprop/internal/potential"
)

// Options configures an approximate-inference run.
type Options struct {
	// Samples is the number of draws (likelihood weighting) or kept sweeps
	// (Gibbs).
	Samples int
	// BurnIn discards this many initial sweeps (Gibbs only).
	BurnIn int
	// Seed makes runs reproducible.
	Seed int64
}

// LikelihoodWeighting estimates P(v | ev) for every requested variable:
// evidence variables are clamped while sampling and each sample is weighted
// by the likelihood of the clamped values.
func LikelihoodWeighting(n *bayesnet.Network, ev potential.Evidence, vars []int, opts Options) (map[int][]float64, error) {
	if opts.Samples < 1 {
		return nil, fmt.Errorf("approx: need at least 1 sample")
	}
	order, err := n.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	for v, s := range ev {
		if v < 0 || v >= n.N() || s < 0 || s >= n.Nodes[v].Card {
			return nil, fmt.Errorf("approx: evidence %d=%d out of range", v, s)
		}
	}
	for _, v := range vars {
		if v < 0 || v >= n.N() {
			return nil, fmt.Errorf("approx: query variable %d out of range", v)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	acc := map[int][]float64{}
	for _, v := range vars {
		acc[v] = make([]float64, n.Nodes[v].Card)
	}
	states := make([]int, n.N())
	totalWeight := 0.0
	for i := 0; i < opts.Samples; i++ {
		weight := 1.0
		for _, id := range order {
			dist := conditionalRow(n, id, states)
			if s, fixed := ev[id]; fixed {
				states[id] = s
				weight *= dist[s]
			} else {
				states[id] = sampleFrom(rng, dist)
			}
		}
		if weight == 0 {
			continue
		}
		totalWeight += weight
		for _, v := range vars {
			acc[v][states[v]] += weight
		}
	}
	if totalWeight == 0 {
		return nil, fmt.Errorf("approx: all samples had zero weight (impossible evidence?)")
	}
	for _, v := range vars {
		for s := range acc[v] {
			acc[v][s] /= totalWeight
		}
	}
	return acc, nil
}

// Gibbs estimates P(v | ev) with single-site Gibbs sampling: non-evidence
// variables are resampled in turn from their full conditional (restricted
// to the Markov blanket), after a burn-in period.
//
// Caveat: networks with deterministic CPTs (0/1 entries, like Asia's
// tuberculosis-or-cancer OR gate) make the chain non-ergodic — single-site
// moves cannot cross zero-probability configurations, so estimates can be
// arbitrarily wrong. Use LikelihoodWeighting for such networks.
func Gibbs(n *bayesnet.Network, ev potential.Evidence, vars []int, opts Options) (map[int][]float64, error) {
	if opts.Samples < 1 {
		return nil, fmt.Errorf("approx: need at least 1 sample")
	}
	order, err := n.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	children := make([][]int, n.N())
	for id, node := range n.Nodes {
		for _, p := range node.Parents {
			children[p] = append(children[p], id)
		}
	}

	// Initialize with a forward sample consistent with the evidence (the
	// likelihood-weighting initializer: clamp evidence, sample the rest).
	states := make([]int, n.N())
	for _, id := range order {
		if s, fixed := ev[id]; fixed {
			if s < 0 || s >= n.Nodes[id].Card {
				return nil, fmt.Errorf("approx: evidence %d=%d out of range", id, s)
			}
			states[id] = s
			continue
		}
		states[id] = sampleFrom(rng, conditionalRow(n, id, states))
	}
	var free []int
	for id := range n.Nodes {
		if _, fixed := ev[id]; !fixed {
			free = append(free, id)
		}
	}
	acc := map[int][]float64{}
	for _, v := range vars {
		if v < 0 || v >= n.N() {
			return nil, fmt.Errorf("approx: query variable %d out of range", v)
		}
		acc[v] = make([]float64, n.Nodes[v].Card)
	}

	sweeps := opts.BurnIn + opts.Samples
	for sweep := 0; sweep < sweeps; sweep++ {
		for _, id := range free {
			dist := fullConditional(n, children, id, states)
			states[id] = sampleFrom(rng, dist)
		}
		if sweep < opts.BurnIn {
			continue
		}
		for _, v := range vars {
			acc[v][states[v]]++
		}
	}
	for _, v := range vars {
		for s := range acc[v] {
			acc[v][s] /= float64(opts.Samples)
		}
	}
	return acc, nil
}

// conditionalRow extracts P(id | parents) for the parent states in
// `states`.
func conditionalRow(n *bayesnet.Network, id int, states []int) []float64 {
	node := &n.Nodes[id]
	dist := make([]float64, node.Card)
	assign := make([]int, len(node.CPT.Vars))
	for pos, v := range node.CPT.Vars {
		if v != id {
			assign[pos] = states[v]
		}
	}
	for s := 0; s < node.Card; s++ {
		for pos, v := range node.CPT.Vars {
			if v == id {
				assign[pos] = s
			}
		}
		dist[s] = node.CPT.Data[node.CPT.IndexOf(assign)]
	}
	return dist
}

// fullConditional computes P(id | everything else) ∝ P(id | parents) ×
// Π_children P(child | its parents), evaluated at the current states.
func fullConditional(n *bayesnet.Network, children [][]int, id int, states []int) []float64 {
	dist := conditionalRow(n, id, states)
	saved := states[id]
	for s := range dist {
		states[id] = s
		for _, c := range children[id] {
			row := conditionalRow(n, c, states)
			dist[s] *= row[states[c]]
		}
	}
	states[id] = saved
	return dist
}

func sampleFrom(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
