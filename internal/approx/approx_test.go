package approx

import (
	"math"
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/potential"
)

// exactPosterior is the junction-tree-free oracle.
func exactPosterior(t *testing.T, n *bayesnet.Network, v int, ev potential.Evidence) []float64 {
	t.Helper()
	m, err := n.ExactMarginal(v, ev)
	if err != nil {
		t.Fatal(err)
	}
	return m.Data
}

func TestLikelihoodWeightingConverges(t *testing.T) {
	net, ids := bayesnet.Asia()
	ev := potential.Evidence{ids["Dysp"]: 1, ids["Smoke"]: 1}
	vars := []int{ids["Lung"], ids["Bronc"], ids["Tub"]}
	got, err := LikelihoodWeighting(net, ev, vars, Options{Samples: 60000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vars {
		want := exactPosterior(t, net, v, ev)
		for s := range want {
			if math.Abs(got[v][s]-want[s]) > 0.02 {
				t.Errorf("LW P(%d=%d|e) = %.4f, exact %.4f", v, s, got[v][s], want[s])
			}
		}
	}
}

func TestGibbsConverges(t *testing.T) {
	net, ids := bayesnet.Sprinkler()
	ev := potential.Evidence{ids["WetGrass"]: 1}
	vars := []int{ids["Rain"], ids["Sprinkler"]}
	got, err := Gibbs(net, ev, vars, Options{Samples: 40000, BurnIn: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vars {
		want := exactPosterior(t, net, v, ev)
		for s := range want {
			if math.Abs(got[v][s]-want[s]) > 0.02 {
				t.Errorf("Gibbs P(%d=%d|e) = %.4f, exact %.4f", v, s, got[v][s], want[s])
			}
		}
	}
}

func TestApproxMatchesExactEngineOnRandomNetworks(t *testing.T) {
	// Independent statistical validation of the exact engine: likelihood
	// weighting converges to the same posteriors the junction tree gives.
	for seed := int64(1); seed <= 3; seed++ {
		net := bayesnet.RandomNetwork(8, 2, 2, seed)
		ev := potential.Evidence{0: 1}
		vars := []int{net.N() - 1, net.N() / 2}
		lw, err := LikelihoodWeighting(net, ev, vars, Options{Samples: 40000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vars {
			want := exactPosterior(t, net, v, ev)
			if math.Abs(lw[v][1]-want[1]) > 0.025 {
				t.Errorf("seed %d: LW %.4f vs exact %.4f", seed, lw[v][1], want[1])
			}
		}
	}
}

func TestLikelihoodWeightingNoEvidence(t *testing.T) {
	net, ids := bayesnet.Sprinkler()
	got, err := LikelihoodWeighting(net, nil, []int{ids["Cloudy"]}, Options{Samples: 20000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[ids["Cloudy"]][1]-0.5) > 0.02 {
		t.Errorf("P(Cloudy) = %v, want 0.5", got[ids["Cloudy"]][1])
	}
}

func TestApproxErrors(t *testing.T) {
	net, _ := bayesnet.Sprinkler()
	if _, err := LikelihoodWeighting(net, nil, []int{0}, Options{Samples: 0}); err == nil {
		t.Error("accepted zero samples")
	}
	if _, err := LikelihoodWeighting(net, nil, []int{99}, Options{Samples: 10}); err == nil {
		t.Error("accepted unknown query variable")
	}
	if _, err := LikelihoodWeighting(net, potential.Evidence{0: 9}, []int{1}, Options{Samples: 10}); err == nil {
		t.Error("accepted out-of-range evidence")
	}
	if _, err := Gibbs(net, nil, []int{0}, Options{Samples: 0}); err == nil {
		t.Error("gibbs accepted zero samples")
	}
	if _, err := Gibbs(net, potential.Evidence{0: 9}, []int{1}, Options{Samples: 10}); err == nil {
		t.Error("gibbs accepted out-of-range evidence")
	}
	if _, err := Gibbs(net, nil, []int{99}, Options{Samples: 10}); err == nil {
		t.Error("gibbs accepted unknown query variable")
	}
	// Impossible evidence → all weights zero.
	impossible := bayesnet.New()
	impossible.MustAddNode("A", 2, nil, []float64{1, 0})
	if _, err := LikelihoodWeighting(impossible, potential.Evidence{0: 1}, []int{0}, Options{Samples: 100}); err == nil {
		t.Error("accepted impossible evidence")
	}
}

func TestDeterministicSeeds(t *testing.T) {
	net, ids := bayesnet.Sprinkler()
	a, err := LikelihoodWeighting(net, nil, []int{ids["Rain"]}, Options{Samples: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LikelihoodWeighting(net, nil, []int{ids["Rain"]}, Options{Samples: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for s := range a[ids["Rain"]] {
		if a[ids["Rain"]][s] != b[ids["Rain"]][s] {
			t.Fatal("same seed produced different estimates")
		}
	}
}
