package sched

import (
	"context"
	"sync/atomic"
	"time"
)

// Live scheduler introspection: a wait-free gauge surface over the
// collaborative scheduler's internal quantities — per-worker local-list (LL)
// depth and weight counter, worker state, steal and δ-partition counters,
// and a global task-list (GL) depth — readable at any instant while
// propagations run. Writers are the workers themselves: every counter a
// worker updates lives on its own cache-line-padded slot, so the hot path
// never contends, and readers (the internal/obs sampler, /v1/stream) take
// no lock: a snapshot is a sweep of atomic loads.
//
// The surface is deliberately approximate at the edges — a snapshot racing
// an update sees the value a few nanoseconds early or late, and the GL
// depth of a failed run can transiently under-count (see Snapshot) — which
// is the price of keeping the instrumentation inside the paper's <0.9%
// scheduler-overhead budget.

// WorkerState is a worker's instantaneous activity, stored as one atomic
// word per worker.
type WorkerState int32

const (
	// WorkerParked: blocked on its empty local list (pool workers park
	// between runs; stealing workers sleep when no victim has work).
	WorkerParked WorkerState = iota
	// WorkerFetching: popping the head of its local ready list.
	WorkerFetching
	// WorkerStealing: scanning other workers' lists for work to take.
	WorkerStealing
	// WorkerExecuting: inside a node-level primitive (or a piece of one).
	WorkerExecuting
	// WorkerIdle: started but not yet fetched anything.
	WorkerIdle
)

var workerStateNames = [...]string{
	WorkerParked:    "parked",
	WorkerFetching:  "fetching",
	WorkerStealing:  "stealing",
	WorkerExecuting: "executing",
	WorkerIdle:      "idle",
}

func (s WorkerState) String() string {
	if int(s) < len(workerStateNames) {
		return workerStateNames[s]
	}
	return "unknown"
}

// workerGauges is one worker's slot. Every field is written either by the
// owning worker or by a worker pushing onto this worker's local list; the
// trailing pad keeps neighbouring workers' slots on different cache lines
// so those writes never false-share (same idea as traceBuf).
type workerGauges struct {
	state atomic.Int32
	_pad  [4]byte
	// llPacked holds the local ready list's depth and the paper's W_i weight
	// counter in one word (see llAdd), so a push or pop maintains both with
	// the single atomic add the scheduler already paid for its weight
	// counter before gauges existed — the gauge costs nothing extra.
	llPacked atomic.Int64
	// busyNs and items are flushed from the run's plain per-worker metrics
	// when a run completes, not per executed item (see Pool.Run), keeping
	// the Execute hot path free of their atomics. Mid-run they lag by the
	// run in flight; queue depth and state stay instantaneous.
	busyNs        atomic.Int64 // cumulative time inside primitives
	items         atomic.Int64 // executed items (tasks, pieces, combiners)
	completed     atomic.Int64 // original graph tasks completed (Allocate)
	stealAttempts atomic.Int64
	steals        atomic.Int64
	partitions    atomic.Int64 // tasks this worker split (δ-partition)
	// lastLabel caches the pprof label context most recently applied on the
	// goroutine driving this slot, so consecutive items of the same kind in
	// the same run skip the SetGoroutineLabels call (see labelSet.apply).
	lastLabel atomic.Pointer[context.Context]
	_         [56]byte // pad the 72-byte body to two cache lines
}

// The packed LL gauge: depth in the top 16 bits, weight in the low 48.
// Both fields are non-negative at every instant (a pop's decrement is
// ordered after its push's increment by the list lock), so neither borrows
// into the other. 48 bits bound the summed queued weight at ~2.8e14 —
// weights are potential-table entry counts, far below that — and 16 bits
// bound the queued depth at 65535.
const (
	llDepthShift = 48
	llWeightMask = int64(1)<<llDepthShift - 1
)

// llAdd adjusts the list gauges by (depth, weight) in one atomic add.
func (g *workerGauges) llAdd(depth, weight int64) {
	g.llPacked.Add(depth<<llDepthShift + weight)
}

// llWeight reads the W_i weight counter (the Allocate module's argmin key).
func (g *workerGauges) llWeight() int64 {
	return g.llPacked.Load() & llWeightMask
}

// Gauges is the live introspection surface of one scheduler (a Pool, or an
// engine's sequence of work-stealing runs). All methods are safe for
// concurrent use; Snapshot never blocks a worker.
type Gauges struct {
	// submitted and aborted track the global task list: submitted counts
	// tasks handed to runs, aborted the tasks of failed runs that will
	// never complete. They are touched once per run, not per task.
	submitted  atomic.Int64
	aborted    atomic.Int64
	activeRuns atomic.Int64
	_          [104]byte // keep the run-level counters off the worker slots
	w          []workerGauges
}

// NewGauges returns a gauge surface for the given worker count.
func NewGauges(workers int) *Gauges {
	if workers < 1 {
		workers = 1
	}
	return &Gauges{w: make([]workerGauges, workers)}
}

// Workers returns the number of worker slots.
func (g *Gauges) Workers() int { return len(g.w) }

func (g *Gauges) worker(w int) *workerGauges { return &g.w[w] }

// runStarted accounts a run's tasks into the GL depth.
func (g *Gauges) runStarted(tasks int) {
	g.submitted.Add(int64(tasks))
	g.activeRuns.Add(1)
}

// runFinished retires a run; leftover counts the tasks a failed run will
// never complete (0 for a successful run).
func (g *Gauges) runFinished(leftover int64) {
	if leftover > 0 {
		g.aborted.Add(leftover)
	}
	g.activeRuns.Add(-1)
}

// flushRun folds a completed run's per-worker busy/item totals into the
// cumulative gauges — once per run, so the Execute hot path never touches
// these atomics. Callers must ensure the metrics are quiescent (a failed
// pool run's stragglers still write theirs; such runs are not flushed).
func (g *Gauges) flushRun(metrics []WorkerMetrics) {
	for w := range metrics {
		if w >= len(g.w) {
			return
		}
		if b := int64(metrics[w].Busy); b > 0 {
			g.w[w].busyNs.Add(b)
		}
		if n := int64(metrics[w].Tasks); n > 0 {
			g.w[w].items.Add(n)
		}
	}
}

// WorkerGaugeSnapshot is one worker's gauges at a sampling instant.
type WorkerGaugeSnapshot struct {
	// State is the worker's instantaneous activity.
	State WorkerState `json:"-"`
	// StateName is State rendered for JSON consumers (evtop, /v1/stream).
	StateName string `json:"state"`
	// QueueDepth and QueueWeight are the worker's local ready list: item
	// count and the paper's W_i weight counter.
	QueueDepth  int64 `json:"queue_depth"`
	QueueWeight int64 `json:"queue_weight"`
	// BusyNs is cumulative time inside node-level primitives, the basis of
	// live utilization (delta between two snapshots / wall time). It and
	// Items advance when a run completes, not per item, so they lag a run
	// in flight (serving runs are ms-scale; the 1 s sampler never notices).
	BusyNs int64 `json:"busy_ns"`
	// Items counts executed items; Completed counts original graph tasks
	// this worker retired through the Allocate module.
	Items     int64 `json:"items"`
	Completed int64 `json:"completed"`
	// StealAttempts and Steals are the work-stealing scheduler's counters
	// (zero under the collaborative pool).
	StealAttempts int64 `json:"steal_attempts"`
	Steals        int64 `json:"steals"`
	// Partitions counts tasks this worker split into δ-pieces.
	Partitions int64 `json:"partitions"`
}

// GaugesSnapshot is the whole surface at a sampling instant.
type GaugesSnapshot struct {
	// GlobalDepth is the GL depth: tasks submitted to the scheduler but not
	// yet completed, across all in-flight runs. It can transiently
	// under-count after a failed run (stragglers of the dead run still
	// retire tasks that were already written off), so it is clamped at 0.
	GlobalDepth int64 `json:"global_depth"`
	// ActiveRuns is the number of propagations currently in flight.
	ActiveRuns int64 `json:"active_runs"`
	// Workers holds one entry per worker slot.
	Workers []WorkerGaugeSnapshot `json:"workers"`
}

// Snapshot sweeps the surface with atomic loads — no locks, and no effect
// on the workers.
func (g *Gauges) Snapshot() GaugesSnapshot {
	if g == nil {
		return GaugesSnapshot{}
	}
	s := GaugesSnapshot{
		ActiveRuns: g.activeRuns.Load(),
		Workers:    make([]WorkerGaugeSnapshot, len(g.w)),
	}
	var completed int64
	for i := range g.w {
		wg := &g.w[i]
		st := WorkerState(wg.state.Load())
		ws := &s.Workers[i]
		ws.State = st
		ws.StateName = st.String()
		packed := wg.llPacked.Load()
		ws.QueueDepth = packed >> llDepthShift
		ws.QueueWeight = packed & llWeightMask
		ws.BusyNs = wg.busyNs.Load()
		ws.Items = wg.items.Load()
		ws.Completed = wg.completed.Load()
		ws.StealAttempts = wg.stealAttempts.Load()
		ws.Steals = wg.steals.Load()
		ws.Partitions = wg.partitions.Load()
		completed += ws.Completed
	}
	s.GlobalDepth = g.submitted.Load() - g.aborted.Load() - completed
	if s.GlobalDepth < 0 {
		s.GlobalDepth = 0
	}
	return s
}

// TotalBusy sums the per-worker cumulative busy times of a snapshot.
func (s GaugesSnapshot) TotalBusy() time.Duration {
	var t int64
	for i := range s.Workers {
		t += s.Workers[i].BusyNs
	}
	return time.Duration(t)
}
