package sched

import (
	"bytes"
	"strings"
	"testing"

	"evprop/internal/jtree"
	"evprop/internal/taskgraph"
)

func tracedRun(t *testing.T, workers, threshold int) *Metrics {
	t.Helper()
	tr, err := jtree.Random(jtree.RandomConfig{N: 20, Width: 5, States: 2, Degree: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(8); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(st, Options{Workers: workers, Threshold: threshold, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTraceRecordsEveryItem(t *testing.T) {
	m := tracedRun(t, 3, 8)
	if m.Trace == nil {
		t.Fatal("no trace recorded")
	}
	items := 0
	for _, wm := range m.Workers {
		items += wm.Tasks
	}
	if len(m.Trace.Events) != items {
		t.Errorf("%d events, %d executed items", len(m.Trace.Events), items)
	}
	for _, e := range m.Trace.Events {
		if e.Start < 0 || e.End < e.Start || e.End > m.Elapsed {
			t.Errorf("event %+v outside [0, %v]", e, m.Elapsed)
		}
		if e.Worker < 0 || e.Worker >= 3 {
			t.Errorf("event worker %d out of range", e.Worker)
		}
	}
}

func TestTraceEventsPerWorkerDisjoint(t *testing.T) {
	// Each worker executes items one at a time: its events must not
	// overlap (each starts at or after the previous one's end).
	m := tracedRun(t, 4, 0)
	for w := 0; w < 4; w++ {
		var prevEnd int64 = -1
		for _, e := range m.Trace.Events {
			if e.Worker != w {
				continue
			}
			if int64(e.Start) < prevEnd {
				t.Fatalf("worker %d: event starting %v overlaps previous ending %v", w, e.Start, prevEnd)
			}
			prevEnd = int64(e.End)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	tr, err := jtree.Chain(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeUniform(); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(st, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Trace != nil {
		t.Error("trace recorded without Options.Trace")
	}
}

func TestGanttRendering(t *testing.T) {
	m := tracedRun(t, 2, 8)
	var buf bytes.Buffer
	m.Trace.Gantt(&buf, 40)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 workers
		t.Fatalf("gantt has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "█") {
		t.Error("worker 0 row shows no busy time")
	}
	if !strings.HasPrefix(lines[1], "w0") || !strings.HasPrefix(lines[2], "w1") {
		t.Error("worker labels missing")
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	tr := &Trace{Workers: 2}
	var buf bytes.Buffer
	tr.Gantt(&buf, 20)
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty trace not reported")
	}
}

func TestUtilization(t *testing.T) {
	m := tracedRun(t, 2, 8)
	u := m.Trace.Utilization()
	if len(u) != 2 {
		t.Fatalf("%d utilizations", len(u))
	}
	for w, f := range u {
		if f < 0 || f > 1.0001 {
			t.Errorf("worker %d utilization %v out of [0,1]", w, f)
		}
	}
	// On a serial workload the sum of utilizations is at most ~1 per
	// concurrently usable core; it must at least be positive.
	if u[0]+u[1] <= 0 {
		t.Error("no recorded busy time")
	}
}

func TestBusySpansMerge(t *testing.T) {
	tr := &Trace{
		Workers: 1,
		Total:   100,
		Events: []Event{
			{Worker: 0, Start: 0, End: 10},
			{Worker: 0, Start: 10, End: 20}, // adjacent: merges
			{Worker: 0, Start: 50, End: 60},
		},
	}
	spans := tr.BusySpans(0)
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0][0] != 0 || spans[0][1] != 20 || spans[1][0] != 50 {
		t.Errorf("spans = %v", spans)
	}
}
