package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"evprop/internal/jtree"
	"evprop/internal/taskgraph"
)

// countdownCtx fails its Err poll after a fixed number of calls — a
// deterministic stand-in for a deadline expiring mid-propagation: the run
// fails at a task boundary while other workers may still hold fetched items
// of it.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.DeadlineExceeded
	}
	return nil
}

// TestPoolRunCancelledTraceDetached is the regression test for cross-run
// trace corruption: a failed pooled run returns while workers may still be
// appending to its trace buffers, so the returned Trace must carry no
// recyclable buffers — Finalize and Release must be no-ops that never hand
// the still-mutating buffers back to the shared pool, where the next traced
// run would pick them up. Successful traced runs interleave on the same pool
// to give a straggler's append a victim to collide with; -race flags the old
// behavior.
func TestPoolRunCancelledTraceDetached(t *testing.T) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 40, Width: 4, States: 2, Degree: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(23); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	p, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var cancelled, completed atomic.Int64
	var wg sync.WaitGroup
	for gor := 0; gor < 4; gor++ {
		wg.Add(1)
		go func(gor int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				st, err := g.NewState()
				if err != nil {
					t.Error(err)
					return
				}
				opts := Options{Threshold: 8, Trace: true, LazyTrace: i%2 == 0}
				if i%3 != 2 {
					cc := &countdownCtx{Context: context.Background()}
					cc.left.Store(int64(1 + (gor*7+i)%15))
					opts.Ctx = cc
				}
				m, err := p.Run(st, opts)
				if err != nil {
					cancelled.Add(1)
					if m == nil || m.Trace == nil {
						continue
					}
					if len(m.Trace.Events) != 0 {
						t.Errorf("failed run carries %d trace events", len(m.Trace.Events))
					}
					// Both disposal paths must be harmless no-ops on the
					// detached trace.
					m.Trace.Finalize()
					m.Trace.Release()
					if len(m.Trace.Events) != 0 {
						t.Error("Finalize on a failed run's trace produced events")
					}
					continue
				}
				completed.Add(1)
				if m.Trace == nil {
					t.Error("successful traced run has no trace")
					continue
				}
				m.Trace.Finalize()
				if len(m.Trace.Events) == 0 {
					t.Error("successful traced run has no events")
				}
			}
		}(gor)
	}
	wg.Wait()
	if cancelled.Load() == 0 {
		t.Error("no run was cancelled mid-flight; countdownCtx is broken")
	}
	if completed.Load() == 0 {
		t.Error("no run completed; the test exercised only the failure path")
	}
}
