package sched

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format ("X" complete
// events plus "M" metadata). Timestamps and durations are microseconds, the
// unit chrome://tracing and Perfetto expect.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the JSON Object Format of the trace_event spec; the
// object form (rather than the bare array) lets viewers know the file is
// complete and carries the display unit.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ToChromeTrace writes the trace in Chrome trace_event JSON: open the file
// in chrome://tracing or https://ui.perfetto.dev to see each worker as a
// timeline row with one slice per executed task, piece or combiner. Slice
// names carry the primitive kind, and args hold the task id and piece
// range for drill-down.
func (tr *Trace) ToChromeTrace(w io.Writer) error {
	out := chromeTraceFile{DisplayTimeUnit: "ms"}
	for worker := 0; worker < tr.Workers; worker++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  worker,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", worker)},
		})
	}
	for _, e := range tr.Events {
		name := fmt.Sprintf("%s #%d", e.Kind, e.Task)
		switch {
		case e.Comb:
			name = fmt.Sprintf("combine %s #%d", e.Kind, e.Task)
		case e.Hi >= 0:
			name = fmt.Sprintf("%s #%d [%d,%d)", e.Kind, e.Task, e.Lo, e.Hi)
		}
		dur := float64(e.End-e.Start) / 1e3
		if dur < 0 {
			dur = 0
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name,
			Ph:   "X",
			Ts:   float64(e.Start) / 1e3,
			Dur:  &dur,
			Pid:  1,
			Tid:  e.Worker,
			Args: map[string]any{
				"task": e.Task,
				"kind": e.Kind.String(),
				"lo":   e.Lo,
				"hi":   e.Hi,
				"comb": e.Comb,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
