package sched

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"evprop/internal/jtree"
	"evprop/internal/taskgraph"
)

// TestPartitionRoundRobinWrapAround pins the round-robin cursor fix: the
// piece-spreading slot must stay a valid index after the cursor wraps. With
// the old signed cursor (int64 at MaxInt64), int(cursor+1) % len goes
// negative and partition panics with an out-of-range index.
func TestPartitionRoundRobinWrapAround(t *testing.T) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 8, Width: 6, States: 2, Degree: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(5); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	const δ = 8
	// Find a task that splits into at least 3 pieces, so partition pushes
	// pieces to other lists (the code path that indexes lists[slot]).
	task := -1
	for id := 0; id < g.N(); id++ {
		if st.PartitionSize(id) >= 3*δ {
			task = id
			break
		}
	}
	if task < 0 {
		t.Fatal("no partitionable task in the test graph")
	}
	// A run whose lists no worker drains: partition pushes the spread pieces
	// and executes only the first piece inline, which never completes the
	// combiner — exactly the slot-indexing path, with nothing concurrent.
	gg := NewGauges(3)
	r := &run{
		st:        st,
		g:         g,
		opts:      Options{Threshold: δ},
		deps:      g.DepCounts(),
		lists:     []*localList{newLocalList(gg.worker(0)), newLocalList(gg.worker(1)), newLocalList(gg.worker(2))},
		remaining: int64(g.N()),
		metrics:   make([]WorkerMetrics, 3),
		done:      make(chan struct{}),
		start:     time.Now(),
		gauges:    gg,
	}
	// Two increments below the wrap point: the pieces pushed here walk the
	// cursor across ^uint64(0) → 0.
	r.rr = ^uint64(0) - 2
	r.partition(0, task, st.PartitionSize(task))
	if r.rr < 3 {
		// The cursor must actually have wrapped for this test to bite.
		t.Logf("cursor wrapped to %d", r.rr)
	}
}

// TestBusySpansUnsortedEvents pins the defensive sort: BusySpans on a trace
// whose events are not in Start order (hand-built, or two traces appended)
// must not swallow earlier events.
func TestBusySpansUnsortedEvents(t *testing.T) {
	tr := &Trace{
		Workers: 1,
		Total:   100,
		Events: []Event{
			{Worker: 0, Start: 50, End: 60},
			{Worker: 0, Start: 0, End: 10}, // out of order
		},
	}
	spans := tr.BusySpans(0)
	if len(spans) != 2 {
		t.Fatalf("spans = %v, want two disjoint spans", spans)
	}
	var busy time.Duration
	for _, s := range spans {
		busy += s[1] - s[0]
	}
	if busy != 20 {
		t.Errorf("busy %v, want 20 (pre-fix merge swallowed the earlier event)", busy)
	}
}

// TestBusySpansDegenerateEvent checks that an event with End < Start (clock
// weirdness in a hand-built trace) is clamped instead of corrupting spans.
func TestBusySpansDegenerateEvent(t *testing.T) {
	tr := &Trace{
		Workers: 1,
		Total:   100,
		Events: []Event{
			{Worker: 0, Start: 10, End: 5},
			{Worker: 0, Start: 20, End: 30},
		},
	}
	spans := tr.BusySpans(0)
	for _, s := range spans {
		if s[1] < s[0] {
			t.Fatalf("negative-length span %v", s)
		}
	}
}

// TestGanttClampsOutOfRangeSpans pins the lo clamp: spans that scale to a
// negative or past-the-row start index (hand-built traces with negative
// Starts or a stale Total) must be clamped like hi already was. Pre-fix a
// negative start indexed out of range and Gantt panicked.
func TestGanttClampsOutOfRangeSpans(t *testing.T) {
	tr := &Trace{
		Workers: 1,
		Total:   100,
		Events: []Event{
			{Worker: 0, Start: -50, End: 10},  // starts before the run
			{Worker: 0, Start: 150, End: 170}, // entirely past Total
		},
	}
	var buf bytes.Buffer
	tr.Gantt(&buf, 20) // pre-fix: index out of range
	if buf.Len() == 0 {
		t.Error("no gantt output")
	}
}

// TestUtilizationPartitionedRun checks that utilizations stay within [0, 1]
// on a heavily partitioned run, where a worker's last piece and the combiner
// it runs inline produce adjacent events whose naive sum double-counts.
func TestUtilizationPartitionedRun(t *testing.T) {
	m := tracedRun(t, 4, 4) // tiny δ: everything splits
	if m.Partition == 0 {
		t.Fatal("run partitioned nothing; shrink δ")
	}
	for w, f := range m.Trace.Utilization() {
		if f < 0 || f > 1 {
			t.Errorf("worker %d utilization %v outside [0, 1]", w, f)
		}
	}
}

// TestTraceEventsCarryKind checks every recorded event is tagged with its
// task's primitive kind (the per-kind breakdown depends on it).
func TestTraceEventsCarryKind(t *testing.T) {
	m := tracedRun(t, 2, 8)
	for _, e := range m.Trace.Events {
		if e.Kind < 0 || int(e.Kind) >= taskgraph.NumKinds {
			t.Fatalf("event kind %d out of range", e.Kind)
		}
	}
}

// TestKindBusySumsToBusy checks the per-kind split accounts for all busy time.
func TestKindBusySumsToBusy(t *testing.T) {
	m := tracedRun(t, 3, 8)
	for w, wm := range m.Workers {
		var kinds time.Duration
		for _, d := range wm.KindBusy {
			kinds += d
		}
		if kinds != wm.Busy {
			t.Errorf("worker %d: kind times %v != busy %v", w, kinds, wm.Busy)
		}
	}
}

// TestConcurrentTracedRuns drives several traced, partitioned propagations
// through one pool at once; under -race this verifies the per-worker trace
// buffers and metrics of interleaved runs never share state.
func TestConcurrentTracedRuns(t *testing.T) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 24, Width: 6, States: 2, Degree: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(6); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	p, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	errc := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := g.NewState()
			if err != nil {
				errc <- err
				return
			}
			m, err := p.Run(st, Options{Threshold: 8, Trace: true})
			if err != nil {
				errc <- err
				return
			}
			items := 0
			for _, wm := range m.Workers {
				items += wm.Tasks
			}
			if len(m.Trace.Events) != items {
				t.Errorf("%d events, %d executed items", len(m.Trace.Events), items)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestStealingTraceAndSteals checks the work-stealing scheduler's new
// accounting: traces record every executed item and the steal counter moves
// when a worker drains another's list.
func TestStealingTraceAndSteals(t *testing.T) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 40, Width: 6, States: 2, Degree: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(8); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunStealing(st, Options{Workers: 4, Threshold: 8, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Trace == nil {
		t.Fatal("no trace recorded")
	}
	items := 0
	for w, wm := range m.Workers {
		items += wm.Tasks
		var kinds time.Duration
		for _, d := range wm.KindBusy {
			kinds += d
		}
		if kinds != wm.Busy {
			t.Errorf("worker %d: kind times %v != busy %v", w, kinds, wm.Busy)
		}
	}
	if len(m.Trace.Events) != items {
		t.Errorf("%d events, %d executed items", len(m.Trace.Events), items)
	}
	for _, e := range m.Trace.Events {
		if e.Start < 0 || e.End < e.Start {
			t.Errorf("event %+v has a degenerate span", e)
		}
	}
	if m.Steals < 0 {
		t.Errorf("steals %d", m.Steals)
	}
}
