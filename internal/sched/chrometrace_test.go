package sched

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// chromeFile mirrors the trace_event JSON Object Format for decoding.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestChromeTraceRoundTrip exports a real partitioned run and decodes the
// JSON back: every slice must land inside [0, Total], map to a real worker
// tid, and the per-worker thread_name metadata must cover all workers.
func TestChromeTraceRoundTrip(t *testing.T) {
	const workers = 3
	m := tracedRun(t, workers, 8)
	var buf bytes.Buffer
	if err := m.Trace.ToChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", f.DisplayTimeUnit)
	}
	totalUs := float64(m.Trace.Total) / 1e3
	meta := map[int]string{}
	slices := 0
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				t.Errorf("metadata event named %q", e.Name)
			}
			meta[e.Tid], _ = e.Args["name"].(string)
		case "X":
			slices++
			if e.Tid < 0 || e.Tid >= workers {
				t.Errorf("slice tid %d out of range", e.Tid)
			}
			if e.Dur == nil {
				t.Fatalf("slice %q has no duration", e.Name)
			}
			if e.Ts < 0 || e.Ts+*e.Dur > totalUs+1 { // +1µs rounding slack
				t.Errorf("slice %q spans [%v, %v], total %vµs", e.Name, e.Ts, e.Ts+*e.Dur, totalUs)
			}
			if e.Name == "" {
				t.Error("unnamed slice")
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if slices != len(m.Trace.Events) {
		t.Errorf("%d slices for %d trace events", slices, len(m.Trace.Events))
	}
	for w := 0; w < workers; w++ {
		if want := fmt.Sprintf("worker %d", w); meta[w] != want {
			t.Errorf("tid %d named %q, want %q", w, meta[w], want)
		}
	}
}

// TestChromeTraceEmpty checks an empty trace still produces valid JSON with
// the worker metadata (a zero-task graph or trace-disabled run).
func TestChromeTraceEmpty(t *testing.T) {
	tr := &Trace{Workers: 2}
	var buf bytes.Buffer
	if err := tr.ToChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != 2 {
		t.Errorf("%d events, want 2 metadata entries", len(f.TraceEvents))
	}
}
