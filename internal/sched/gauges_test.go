package sched

import (
	"context"
	"sync"
	"testing"
	"time"

	"evprop/internal/jtree"
	"evprop/internal/taskgraph"
)

func gaugeTestGraph(t *testing.T, n int, seed int64) *taskgraph.Graph {
	t.Helper()
	tr, err := jtree.Random(jtree.RandomConfig{N: n, Width: 6, States: 2, Degree: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(seed); err != nil {
		t.Fatal(err)
	}
	return taskgraph.Build(tr)
}

// TestPoolGaugesAccountRun checks the pool's gauge surface balances after a
// run: GL depth and LL depths return to zero, completed tasks sum to the
// graph size, and busy time moved.
func TestPoolGaugesAccountRun(t *testing.T) {
	g := gaugeTestGraph(t, 24, 5)
	p, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(st, Options{Threshold: 8, QueryID: "q-test-1"}); err != nil {
		t.Fatal(err)
	}
	s := p.Gauges().Snapshot()
	if s.GlobalDepth != 0 {
		t.Errorf("global depth %d after a completed run, want 0", s.GlobalDepth)
	}
	if s.ActiveRuns != 0 {
		t.Errorf("active runs %d, want 0", s.ActiveRuns)
	}
	var completed, items, busy, depth, weight int64
	for _, w := range s.Workers {
		completed += w.Completed
		items += w.Items
		busy += w.BusyNs
		depth += w.QueueDepth
		weight += w.QueueWeight
	}
	if completed != int64(g.N()) {
		t.Errorf("completed %d, want %d", completed, g.N())
	}
	if items < completed {
		t.Errorf("items %d < completed %d (pieces should only add)", items, completed)
	}
	if busy <= 0 {
		t.Errorf("busy %d, want > 0", busy)
	}
	if depth != 0 || weight != 0 {
		t.Errorf("leftover LL depth %d / weight %d after drain", depth, weight)
	}
	if s.TotalBusy() != time.Duration(busy) {
		t.Errorf("TotalBusy %v != summed %v", s.TotalBusy(), time.Duration(busy))
	}
}

// TestGaugesSnapshotDuringRuns races lock-free snapshots against concurrent
// runs; under -race this pins the wait-free read contract of the surface.
func TestGaugesSnapshotDuringRuns(t *testing.T) {
	g := gaugeTestGraph(t, 24, 7)
	p, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := p.Gauges().Snapshot()
			if s.GlobalDepth < 0 {
				t.Error("negative global depth")
				return
			}
			for _, w := range s.Workers {
				if w.StateName == "unknown" {
					t.Errorf("unknown worker state %d", w.State)
					return
				}
			}
		}
	}()
	var runs sync.WaitGroup
	for i := 0; i < 4; i++ {
		runs.Add(1)
		go func() {
			defer runs.Done()
			for j := 0; j < 3; j++ {
				st, err := g.NewState()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := p.Run(st, Options{Threshold: 8, QueryID: "q-race"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	runs.Wait()
	close(stop)
	snaps.Wait()
}

// TestStealingGaugesAccumulate checks a shared gauge surface accumulates
// across an engine's successive stealing runs and moves the steal counters.
func TestStealingGaugesAccumulate(t *testing.T) {
	g := gaugeTestGraph(t, 40, 9)
	gauges := NewGauges(4)
	for i := 0; i < 2; i++ {
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		m, err := RunStealing(st, Options{Workers: 4, Threshold: 8, Gauges: gauges, QueryID: "q-steal"})
		if err != nil {
			t.Fatal(err)
		}
		s := gauges.Snapshot()
		var completed, attempts, steals int64
		for _, w := range s.Workers {
			completed += w.Completed
			attempts += w.StealAttempts
			steals += w.Steals
		}
		if want := int64((i + 1) * g.N()); completed != want {
			t.Errorf("run %d: completed %d, want %d (accumulating)", i, completed, want)
		}
		if steals != 0 && attempts < steals {
			t.Errorf("run %d: %d steals but only %d attempts", i, steals, attempts)
		}
		if int64(m.Steals) > steals {
			t.Errorf("run %d: metrics report %d steals, gauges only %d total", i, m.Steals, steals)
		}
		if s.GlobalDepth != 0 {
			t.Errorf("run %d: global depth %d, want 0", i, s.GlobalDepth)
		}
	}
}

// TestStealingGaugesSizeMismatch: a wrong-sized surface must not be indexed
// out of range — RunStealing falls back to a private one.
func TestStealingGaugesSizeMismatch(t *testing.T) {
	g := gaugeTestGraph(t, 8, 11)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	small := NewGauges(1)
	if _, err := RunStealing(st, Options{Workers: 4, Gauges: small}); err != nil {
		t.Fatal(err)
	}
	s := small.Snapshot()
	for _, w := range s.Workers {
		if w.Completed != 0 {
			t.Error("mismatched surface was written to")
		}
	}
}

// TestGaugesFailedRunWritesOff: a cancelled run must not leak GL depth.
func TestGaugesFailedRunWritesOff(t *testing.T) {
	g := gaugeTestGraph(t, 24, 13)
	p, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(st, Options{Ctx: ctx}); err == nil {
		t.Fatal("cancelled run succeeded")
	}
	// Stragglers of the failed run may retire a few tasks after the write-off;
	// the invariant is the clamp: depth never goes negative and, once the
	// leftovers drain, settles at 0.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := p.Gauges().Snapshot()
		if s.GlobalDepth == 0 && s.ActiveRuns == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges did not settle: depth %d, active %d", s.GlobalDepth, s.ActiveRuns)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWorkerStateStrings(t *testing.T) {
	cases := map[WorkerState]string{
		WorkerParked:    "parked",
		WorkerFetching:  "fetching",
		WorkerStealing:  "stealing",
		WorkerExecuting: "executing",
		WorkerIdle:      "idle",
		WorkerState(99): "unknown",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("state %d = %q, want %q", st, got, want)
		}
	}
}

func TestLabelSetNilSafety(t *testing.T) {
	if ls := newLabelSet(context.Background(), ""); ls != nil {
		t.Error("empty query ID should disable labelling")
	}
	wg := NewGauges(1).worker(0)
	var ls *labelSet
	ls.apply(taskgraph.Kind(0), wg) // must not panic
	ls = newLabelSet(nil, "q-1")
	for k := 0; k < taskgraph.NumKinds; k++ {
		ls.apply(taskgraph.Kind(k), wg)
	}
	ls.apply(taskgraph.Kind(taskgraph.NumKinds+3), wg) // out of range → clamped
	ls.apply(taskgraph.Kind(0), wg)                    // cache hit path: same ctx pointer
	ls.apply(taskgraph.Kind(0), wg)
	clearLabels(wg)
	clearLabels(wg) // second clear is a no-op (Swap returns nil)
}

func TestNilGaugesSnapshot(t *testing.T) {
	var g *Gauges
	s := g.Snapshot()
	if s.GlobalDepth != 0 || len(s.Workers) != 0 {
		t.Errorf("nil snapshot %+v", s)
	}
}
