// Package sched implements the paper's collaborative scheduler (Section 6,
// Algorithm 2): P worker goroutines cooperatively execute a task dependency
// graph. Every worker owns the four modules of Figure 3:
//
//   - Allocate: after finishing a task, the worker decrements the dependency
//     degree of its successors in the shared global task list, and pushes
//     each task that reaches degree zero onto the local ready list with the
//     smallest weight counter (load balancing);
//   - Fetch: the worker pops the head of its own local ready list;
//   - Partition: a fetched task whose potential table exceeds the threshold
//     δ is split into subtasks T̂1…T̂n over disjoint index ranges — T̂1 runs
//     inline, T̂2…T̂n−1 are spread evenly across the local lists, and the
//     combining subtask T̂n (which inherits T's successors) fires once all
//     pieces complete;
//   - Execute: the node-level primitive (or piece of one) runs.
//
// There is no dedicated scheduler thread — scheduling work is performed
// collaboratively by whichever worker completes a task, which is the
// paper's key difference from the centralized (Cell BE) design.
//
// Workers live in a Pool and park between propagations rather than being
// respawned per run. A Pool multiplexes any number of concurrent runs over
// the same P workers: every queued item carries a pointer to its run, so
// independent propagations interleave on the ready lists and keep all cores
// busy under concurrent serving load (the throughput regime of Zheng &
// Mengshoel's belief-update workloads). The one-shot Run helper preserves
// the original spawn-per-call behavior for benchmarks that want it.
package sched

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

// Options configures a collaborative-scheduler run.
type Options struct {
	// Workers is the number of worker goroutines P (≥1). Pool.Run ignores
	// it in favor of the pool's own size.
	Workers int
	// Threshold is δ: a task whose partitionable table has more entries
	// than this is split. 0 disables task partitioning (as in the paper's
	// Fig. 5 experiments).
	Threshold int
	// Trace records a per-worker execution timeline in Metrics.Trace
	// (small constant overhead per executed item).
	Trace bool
	// LazyTrace defers the trace's merge and sort: Metrics.Trace comes
	// back holding raw per-worker buffers, and the caller must call
	// exactly one of Trace.Finalize (keep it) or Trace.Release (drop it).
	// Set by callers that usually discard the trace — the flight
	// recorder's always-armed tracing keeps only slow runs, so the merge
	// cost is paid only when a capture actually happens.
	LazyTrace bool
	// Ctx optionally cancels the run: it is polled between items, so a
	// cancelled run stops at the next task boundary instead of running to
	// completion. nil means never cancelled.
	Ctx context.Context
	// QueryID, when non-empty, tags the worker goroutines with pprof labels
	// (query_id, task_kind) while they execute this run's items, so CPU
	// profiles segment by query and by primitive. Empty disables labelling
	// at zero hot-path cost.
	QueryID string
	// Gauges optionally accumulates live gauge updates for schedulers that
	// do not own a persistent pool (RunStealing); pass the same surface on
	// every run so counters accumulate across propagations. Pool.Run
	// ignores it in favor of the pool's own gauge surface.
	Gauges *Gauges
}

// WorkerMetrics records per-worker accounting for the paper's Fig. 8.
type WorkerMetrics struct {
	// Busy is the time spent inside node-level primitives ("computation
	// time" in the paper).
	Busy time.Duration
	// Overhead is the time spent in the Allocate and Partition modules
	// (lock waits included). Fetch waits are not attributed: pooled
	// workers park across unrelated runs while idle.
	Overhead time.Duration
	// Tasks counts executed items (tasks, pieces and combiners).
	Tasks int
	// KindBusy splits Busy by primitive kind, indexed by taskgraph.Kind.
	KindBusy [taskgraph.NumKinds]time.Duration
}

// Metrics aggregates a run.
type Metrics struct {
	Workers   []WorkerMetrics
	Elapsed   time.Duration
	Tasks     int // original graph tasks completed
	Pieces    int // partitioned pieces executed (0 when Threshold == 0)
	Partition int // tasks that were partitioned
	Steals    int // items taken from another worker's list (stealing only)
	// Trace is the execution timeline (nil unless Options.Trace).
	Trace *Trace
}

// item is one unit of work on a local ready list. The run pointer lets a
// pool worker process items from interleaved concurrent runs.
type item struct {
	r      *run
	task   int
	lo, hi int
	buf    *potential.Potential // private buffer for marginalize pieces
	comb   *combiner            // set on pieces of a partitioned task
	isComb bool                 // set on the combining subtask T̂n
	weight int64
}

// combiner tracks the outstanding pieces of one partitioned task.
type combiner struct {
	task    int
	pending int32
	mu      sync.Mutex
	bufs    []*potential.Potential
}

// localList is a worker's local ready list (LL). Any worker may push (the
// Allocate module), so it is lock-protected. The paper's W_i weight counter
// lives in the gauge slot's packed LL word, where it doubles as the live
// queue-weight gauge — one atomic add maintains both.
type localList struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []item
	stopped bool
	g       *workerGauges // owning worker's gauge slot (never nil)
}

func newLocalList(g *workerGauges) *localList {
	l := &localList{g: g}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *localList) push(it item) {
	l.mu.Lock()
	l.items = append(l.items, it)
	l.g.llAdd(1, it.weight)
	l.mu.Unlock()
	l.cond.Signal()
}

// fetch blocks until an item is available or the list is stopped. Queued
// items are always drained before a stop takes effect. g is the calling
// worker's gauge slot: fetch keeps the list's depth/weight gauges in step
// and publishes the parked transition, but only on the slow path — the
// returned waited flag tells the caller to republish its executing state.
// A worker draining a hot list therefore performs no state stores at all.
func (l *localList) fetch(g *workerGauges) (item, bool, bool) {
	waited := false
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if len(l.items) > 0 {
			it := l.items[0]
			l.items = l.items[1:]
			l.g.llAdd(-1, -it.weight)
			return it, true, waited
		}
		if l.stopped {
			return item{}, false, waited
		}
		waited = true
		g.state.Store(int32(WorkerParked))
		clearLabels(g)
		l.cond.Wait()
	}
}

func (l *localList) stop() {
	l.mu.Lock()
	l.stopped = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Pool is a set of persistent collaborative-scheduler workers. Workers park
// on their local ready lists between propagations, so the per-propagation
// cost of a Run is pushing the source tasks — no goroutine spawn, no stack
// growth, no scheduler warm-up. A Pool may execute any number of concurrent
// runs; their items interleave on the shared ready lists.
type Pool struct {
	lists  []*localList
	gauges *Gauges
	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewPool starts workers parked goroutines and returns the pool. Close
// releases them.
func NewPool(workers int) (*Pool, error) {
	if workers < 1 {
		return nil, fmt.Errorf("sched: need at least 1 worker, got %d", workers)
	}
	p := &Pool{lists: make([]*localList, workers), gauges: NewGauges(workers)}
	for i := range p.lists {
		p.lists[i] = newLocalList(p.gauges.worker(i))
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			l := p.lists[w]
			wg := p.gauges.worker(w)
			executing := false
			for {
				it, ok, waited := l.fetch(wg)
				if !ok {
					wg.state.Store(int32(WorkerParked))
					return
				}
				// Publish the executing state only when it could have
				// changed (first item, or after a park) — the fast path
				// stays free of state stores.
				if !executing || waited {
					wg.state.Store(int32(WorkerExecuting))
					executing = true
				}
				it.r.process(w, it)
			}
		}(w)
	}
	return p, nil
}

// Workers returns the pool size P.
func (p *Pool) Workers() int { return len(p.lists) }

// Gauges exposes the pool's live gauge surface for samplers.
func (p *Pool) Gauges() *Gauges { return p.gauges }

// Close stops the workers after the queued items drain and waits for them
// to exit. Close is idempotent; Run after Close returns an error.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	for _, l := range p.lists {
		l.stop()
	}
	p.wg.Wait()
}

// run is the per-propagation bookkeeping shared by the pool workers.
type run struct {
	st        taskgraph.Executor
	g         *taskgraph.Graph
	opts      Options
	ctx       context.Context
	deps      []int32
	lists     []*localList
	remaining int64 // original tasks not yet complete
	failed    int32
	// rr is the round-robin cursor for spreading pieces. It is unsigned so
	// the slot index stays valid across wraparound: the modulo is taken on
	// the uint64 before converting, whereas int(signed)%n goes negative
	// once the cursor wraps past MaxInt64 and would index out of range.
	rr       uint64
	errOnce  sync.Once
	err      error
	doneOnce sync.Once
	done     chan struct{}
	metrics  []WorkerMetrics
	pieces   int64
	parted   int64
	start    time.Time
	tbufs    *traceBufs // per-worker event buffers, merged lazily when tracing
	gauges   *Gauges    // live gauge surface (never nil in pool runs)
	labels   *labelSet  // pprof query/kind labels (nil when Options.QueryID == "")
}

// Run executes the state's task graph on the pool's workers and returns
// per-worker metrics. The state's potentials hold the propagation result
// afterwards. Run blocks until the propagation completes, fails, or its
// context is cancelled; any number of Runs may be in flight concurrently.
//
// A failed or cancelled Run returns without waiting for workers that are
// mid-item: such stragglers keep mutating the run's State, Workers metrics
// and trace until they hit the failed-run check, so on error the caller
// must not read Metrics.Workers, and the returned Trace carries no events
// (its buffers are abandoned to the GC rather than recycled).
func (p *Pool) Run(st taskgraph.Executor, opts Options) (*Metrics, error) {
	if p.closed.Load() {
		return nil, fmt.Errorf("sched: pool is closed")
	}
	g := st.Graph()
	r := &run{
		st:        st,
		g:         g,
		opts:      opts,
		ctx:       opts.Ctx,
		deps:      g.DepCounts(),
		lists:     p.lists,
		remaining: int64(g.N()),
		metrics:   make([]WorkerMetrics, len(p.lists)),
		done:      make(chan struct{}),
		gauges:    p.gauges,
		labels:    newLabelSet(opts.Ctx, opts.QueryID),
	}
	start := time.Now()
	r.start = start
	if g.N() == 0 {
		m := &Metrics{Workers: r.metrics, Elapsed: time.Since(start)}
		if opts.Trace {
			m.Trace = &Trace{Workers: len(p.lists)}
		}
		return m, nil
	}
	if opts.Trace {
		r.tbufs = getTraceBufs(len(p.lists))
	}
	p.gauges.runStarted(g.N())
	// Line 1 of Algorithm 2: distribute the initially ready tasks evenly.
	for i, id := range g.Sources() {
		r.lists[i%len(r.lists)].push(r.wholeItem(id))
	}
	<-r.done
	// A successful run has remaining == 0; a failed one writes off its
	// unfinished tasks so the GL-depth gauge doesn't leak (stragglers that
	// still retire tasks are why Snapshot clamps at zero).
	p.gauges.runFinished(atomic.LoadInt64(&r.remaining))
	if r.err == nil {
		// Fold the run's busy/item totals into the cumulative gauges. A
		// failed run is skipped: its stragglers still write r.metrics (see
		// the Run doc), so reading it here would race — that run's busy
		// time is simply not attributed.
		p.gauges.flushRun(r.metrics)
	}
	m := &Metrics{
		Workers:   r.metrics,
		Elapsed:   time.Since(start),
		Tasks:     g.N() - int(atomic.LoadInt64(&r.remaining)),
		Pieces:    int(atomic.LoadInt64(&r.pieces)),
		Partition: int(atomic.LoadInt64(&r.parted)),
	}
	if opts.Trace {
		tr := &Trace{Workers: len(p.lists), Total: m.Elapsed, bufs: r.tbufs}
		if r.err != nil {
			// A failed or cancelled run returns while workers may still be
			// executing already-fetched items of it, appending to the trace
			// buffers (and mutating Workers — see the Run doc). Detach the
			// buffers so Finalize and Release become no-ops: they must go to
			// the GC with the run, not back into the pool where a straggler's
			// append would corrupt the next run's trace.
			tr.bufs = nil
		} else if !opts.LazyTrace {
			tr.Finalize()
		}
		m.Trace = tr
	}
	return m, r.err
}

// Run executes the state's task graph with the collaborative scheduler on a
// transient pool of opts.Workers goroutines, preserving the original
// spawn-per-call behavior. Long-lived engines should hold a Pool instead.
func Run(st taskgraph.Executor, opts Options) (*Metrics, error) {
	p, err := NewPool(opts.Workers)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	return p.Run(st, opts)
}

func (r *run) wholeItem(id int) item {
	return item{r: r, task: id, lo: 0, hi: -1, weight: int64(r.g.Tasks[id].Weight)}
}

func (r *run) fail(err error) {
	r.errOnce.Do(func() { r.err = err })
	atomic.StoreInt32(&r.failed, 1)
	r.finish()
}

// finish releases the Run call. Pool workers are untouched: leftover items
// of a failed run are drained as no-ops by the failed-flag check.
func (r *run) finish() {
	r.doneOnce.Do(func() { close(r.done) })
}

// process runs one fetched item through Partition and Execute, then
// performs the Allocate step for anything it completed.
func (r *run) process(w int, it item) {
	if atomic.LoadInt32(&r.failed) == 1 {
		return
	}
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			r.fail(err)
			return
		}
	}
	switch {
	case it.isComb:
		r.runCombiner(w, it)
	case it.comb != nil:
		r.runPiece(w, it)
	default:
		// Lines 12–18: partition large tasks, execute small ones whole.
		size := r.st.PartitionSize(it.task)
		if r.opts.Threshold > 0 && size > r.opts.Threshold {
			r.partition(w, it.task, size)
			return
		}
		kind := r.g.Tasks[it.task].Kind
		wg := r.gauges.worker(w)
		r.labels.apply(kind, wg)
		t0 := time.Now()
		err := r.st.Execute(it.task)
		d := time.Since(t0)
		r.metrics[w].Busy += d
		r.metrics[w].KindBusy[kind] += d
		r.metrics[w].Tasks++
		r.record(w, it.task, kind, 0, -1, false, t0.Sub(r.start), d)
		if err != nil {
			r.fail(fmt.Errorf("sched: task %s: %w", r.g.Tasks[it.task].String(), err))
			return
		}
		r.completeTask(w, it.task)
	}
}

// partition splits task id into pieces of a snapped step ≥ δ (line 13): the
// first piece runs inline, the rest are spread evenly over the local lists,
// and a combiner item fires when the last piece finishes.
func (r *run) partition(w int, id, size int) {
	tPart := time.Now()
	step := snapStep(r.opts.Threshold, r.g.Tasks[id].Grain)
	n := (size + step - 1) / step
	comb := &combiner{task: id, pending: int32(n)}
	atomic.AddInt64(&r.parted, 1)
	r.gauges.worker(w).partitions.Add(1)
	var first item
	for k := 0; k < n; k++ {
		lo := k * step
		hi := lo + step
		if hi > size {
			hi = size
		}
		it := item{r: r, task: id, lo: lo, hi: hi, comb: comb,
			weight: pieceWeight(r.g.Tasks[id].Weight, hi-lo, size),
			buf:    r.st.NewPartialBuffer(id)}
		if k == 0 {
			first = it
			continue
		}
		slot := int(atomic.AddUint64(&r.rr, 1) % uint64(len(r.lists)))
		r.lists[slot].push(it)
	}
	r.metrics[w].Overhead += time.Since(tPart)
	r.runPiece(w, first)
}

// cacheLineEntries is one 64-byte cache line of float64 table entries, the
// minimum useful piece granularity: a split inside a line makes two workers
// touch (and for Multiply/Divide, write) the same line.
const cacheLineEntries = 8

// snapStep rounds the partition threshold δ up to the piece length actually
// used: a multiple of the task's kernel grain (so split points land on run
// boundaries of the blocked kernels — each piece then pays one O(w) seek and
// no two pieces reduce into the same destination cell) that also spans at
// least one cache line. Tasks with sub-line grains keep run alignment — the
// bumped grain is a multiple of the original — while tasks whose grain
// already exceeds a line are left on pure run boundaries.
func snapStep(δ, grain int) int {
	g := grain
	if g < 1 {
		g = 1
	}
	if g < cacheLineEntries {
		g *= (cacheLineEntries + g - 1) / g
	}
	return (δ + g - 1) / g * g
}

// pieceWeight prorates a task's weight over a piece's span, so the snapped
// (and possibly short final) pieces load the W_i counters in proportion to
// the work they actually carry.
func pieceWeight(taskW float64, span, size int) int64 {
	return int64(taskW*float64(span)/float64(size)) + 1
}

func (r *run) runPiece(w int, it item) {
	kind := r.g.Tasks[it.task].Kind
	wg := r.gauges.worker(w)
	r.labels.apply(kind, wg)
	t0 := time.Now()
	err := r.st.ExecutePiece(it.task, it.lo, it.hi, it.buf)
	d := time.Since(t0)
	r.metrics[w].Busy += d
	r.metrics[w].KindBusy[kind] += d
	r.metrics[w].Tasks++
	atomic.AddInt64(&r.pieces, 1)
	r.record(w, it.task, kind, it.lo, it.hi, false, t0.Sub(r.start), d)
	if err != nil {
		r.fail(fmt.Errorf("sched: piece [%d,%d) of %s: %w", it.lo, it.hi, r.g.Tasks[it.task].String(), err))
		return
	}
	c := it.comb
	if it.buf != nil {
		c.mu.Lock()
		c.bufs = append(c.bufs, it.buf)
		c.mu.Unlock()
	}
	if atomic.AddInt32(&c.pending, -1) == 0 {
		// This worker finished the last piece: it runs T̂n itself.
		r.process(w, item{r: r, task: c.task, comb: c, isComb: true,
			weight: int64(r.g.Tasks[c.task].Weight)})
	}
}

func (r *run) runCombiner(w int, it item) {
	kind := r.g.Tasks[it.task].Kind
	wg := r.gauges.worker(w)
	r.labels.apply(kind, wg)
	t0 := time.Now()
	err := r.st.Combine(it.task, it.comb.bufs)
	d := time.Since(t0)
	r.metrics[w].Busy += d
	r.metrics[w].KindBusy[kind] += d
	r.metrics[w].Tasks++
	r.record(w, it.task, kind, 0, -1, true, t0.Sub(r.start), d)
	if err != nil {
		r.fail(fmt.Errorf("sched: combine %s: %w", r.g.Tasks[it.task].String(), err))
		return
	}
	r.completeTask(w, it.task)
}

// completeTask is the Allocate module (lines 4–10): decrement successor
// dependency degrees and hand newly ready tasks to the least-loaded list.
func (r *run) completeTask(w int, id int) {
	tAlloc := time.Now()
	for _, s := range r.g.Tasks[id].Succs {
		if atomic.AddInt32(&r.deps[s], -1) == 0 {
			r.allocate(r.wholeItem(s))
		}
	}
	r.metrics[w].Overhead += time.Since(tAlloc)
	r.gauges.worker(w).completed.Add(1)
	if atomic.AddInt64(&r.remaining, -1) == 0 {
		r.finish()
	}
}

// record appends a trace event to the worker's private buffer.
func (r *run) record(w, task int, kind taskgraph.Kind, lo, hi int, comb bool, start, dur time.Duration) {
	if r.tbufs != nil {
		r.tbufs.record(w, task, kind, lo, hi, comb, start, dur)
	}
}

// allocate pushes a ready task onto the list with the smallest weight
// counter (line 7: j = argmin W_t).
func (r *run) allocate(it item) {
	best, bestW := 0, int64(1)<<62
	for i, l := range r.lists {
		if w := l.g.llWeight(); w < bestW {
			best, bestW = i, w
		}
	}
	r.lists[best].push(it)
}
