// Package sched implements the paper's collaborative scheduler (Section 6,
// Algorithm 2): P worker goroutines cooperatively execute a task dependency
// graph. Every worker owns the four modules of Figure 3:
//
//   - Allocate: after finishing a task, the worker decrements the dependency
//     degree of its successors in the shared global task list, and pushes
//     each task that reaches degree zero onto the local ready list with the
//     smallest weight counter (load balancing);
//   - Fetch: the worker pops the head of its own local ready list;
//   - Partition: a fetched task whose potential table exceeds the threshold
//     δ is split into subtasks T̂1…T̂n over disjoint index ranges — T̂1 runs
//     inline, T̂2…T̂n−1 are spread evenly across the local lists, and the
//     combining subtask T̂n (which inherits T's successors) fires once all
//     pieces complete;
//   - Execute: the node-level primitive (or piece of one) runs.
//
// There is no dedicated scheduler thread — scheduling work is performed
// collaboratively by whichever worker completes a task, which is the
// paper's key difference from the centralized (Cell BE) design.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

// Options configures a collaborative-scheduler run.
type Options struct {
	// Workers is the number of worker goroutines P (≥1).
	Workers int
	// Threshold is δ: a task whose partitionable table has more entries
	// than this is split. 0 disables task partitioning (as in the paper's
	// Fig. 5 experiments).
	Threshold int
	// Trace records a per-worker execution timeline in Metrics.Trace
	// (small constant overhead per executed item).
	Trace bool
}

// WorkerMetrics records per-worker accounting for the paper's Fig. 8.
type WorkerMetrics struct {
	// Busy is the time spent inside node-level primitives ("computation
	// time" in the paper).
	Busy time.Duration
	// Overhead is the time spent in the Allocate, Fetch and Partition
	// modules (lock waits included).
	Overhead time.Duration
	// Tasks counts executed items (tasks, pieces and combiners).
	Tasks int
}

// Metrics aggregates a run.
type Metrics struct {
	Workers   []WorkerMetrics
	Elapsed   time.Duration
	Tasks     int // original graph tasks completed
	Pieces    int // partitioned pieces executed (0 when Threshold == 0)
	Partition int // tasks that were partitioned
	// Trace is the execution timeline (nil unless Options.Trace).
	Trace *Trace
}

// item is one unit of work on a local ready list.
type item struct {
	task   int
	lo, hi int
	buf    *potential.Potential // private buffer for marginalize pieces
	comb   *combiner            // set on pieces of a partitioned task
	isComb bool                 // set on the combining subtask T̂n
	weight int64
}

// combiner tracks the outstanding pieces of one partitioned task.
type combiner struct {
	task    int
	pending int32
	mu      sync.Mutex
	bufs    []*potential.Potential
}

// localList is a worker's local ready list (LL) with its weight counter.
// Any worker may push (the Allocate module), so it is lock-protected.
type localList struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []item
	weight int64 // sum of queued item weights (the paper's W_i)
}

func (l *localList) push(it item) {
	l.mu.Lock()
	l.items = append(l.items, it)
	atomic.AddInt64(&l.weight, it.weight)
	l.mu.Unlock()
	l.cond.Signal()
}

// run drives one execution of the task graph.
type run struct {
	st        *taskgraph.State
	g         *taskgraph.Graph
	opts      Options
	deps      []int32
	lists     []*localList
	remaining int64 // original tasks not yet complete
	done      int32
	failed    int32
	rr        int64 // round-robin cursor for spreading pieces
	errOnce   sync.Once
	err       error
	metrics   []WorkerMetrics
	pieces    int64
	parted    int64
	start     time.Time
	traces    [][]Event // per-worker, merged after the run when tracing
}

// Run executes the state's task graph with the collaborative scheduler and
// returns per-worker metrics. The state's potentials hold the propagation
// result afterwards.
func Run(st *taskgraph.State, opts Options) (*Metrics, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("sched: need at least 1 worker, got %d", opts.Workers)
	}
	g := st.Graph()
	r := &run{
		st:        st,
		g:         g,
		opts:      opts,
		deps:      g.DepCounts(),
		lists:     make([]*localList, opts.Workers),
		remaining: int64(g.N()),
		metrics:   make([]WorkerMetrics, opts.Workers),
	}
	for i := range r.lists {
		l := &localList{}
		l.cond = sync.NewCond(&l.mu)
		r.lists[i] = l
	}
	start := time.Now()
	r.start = start
	if opts.Trace {
		r.traces = make([][]Event, opts.Workers)
	}
	if g.N() == 0 {
		m := &Metrics{Workers: r.metrics, Elapsed: time.Since(start)}
		if opts.Trace {
			m.Trace = &Trace{Workers: opts.Workers}
		}
		return m, nil
	}
	// Line 1 of Algorithm 2: distribute the initially ready tasks evenly.
	for i, id := range g.Sources() {
		r.lists[i%opts.Workers].push(r.wholeItem(id))
	}
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(w)
		}(w)
	}
	wg.Wait()
	m := &Metrics{
		Workers:   r.metrics,
		Elapsed:   time.Since(start),
		Tasks:     g.N() - int(atomic.LoadInt64(&r.remaining)),
		Pieces:    int(atomic.LoadInt64(&r.pieces)),
		Partition: int(atomic.LoadInt64(&r.parted)),
	}
	if opts.Trace {
		tr := &Trace{Workers: opts.Workers, Total: m.Elapsed}
		for _, evs := range r.traces {
			tr.Events = append(tr.Events, evs...)
		}
		tr.sortEvents()
		m.Trace = tr
	}
	return m, r.err
}

func (r *run) wholeItem(id int) item {
	return item{task: id, lo: 0, hi: -1, weight: int64(r.g.Tasks[id].Weight)}
}

func (r *run) fail(err error) {
	r.errOnce.Do(func() { r.err = err })
	atomic.StoreInt32(&r.failed, 1)
	r.finish()
}

func (r *run) finish() {
	atomic.StoreInt32(&r.done, 1)
	for _, l := range r.lists {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// worker is the per-thread loop of Algorithm 2 (lines 3–19).
func (r *run) worker(w int) {
	l := r.lists[w]
	for {
		tFetch := time.Now()
		it, ok := r.fetch(l)
		r.metrics[w].Overhead += time.Since(tFetch)
		if !ok {
			return
		}
		r.process(w, it)
	}
}

// fetch blocks until an item is available on the worker's list or the run
// is finished.
func (r *run) fetch(l *localList) (item, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if len(l.items) > 0 {
			it := l.items[0]
			l.items = l.items[1:]
			atomic.AddInt64(&l.weight, -it.weight)
			return it, true
		}
		if atomic.LoadInt32(&r.done) == 1 {
			return item{}, false
		}
		l.cond.Wait()
	}
}

// process runs one fetched item through Partition and Execute, then
// performs the Allocate step for anything it completed.
func (r *run) process(w int, it item) {
	if atomic.LoadInt32(&r.failed) == 1 {
		return
	}
	switch {
	case it.isComb:
		r.runCombiner(w, it)
	case it.comb != nil:
		r.runPiece(w, it)
	default:
		// Lines 12–18: partition large tasks, execute small ones whole.
		size := r.st.PartitionSize(it.task)
		if r.opts.Threshold > 0 && size > r.opts.Threshold {
			r.partition(w, it.task, size)
			return
		}
		t0 := time.Now()
		err := r.st.Execute(it.task)
		r.metrics[w].Busy += time.Since(t0)
		r.metrics[w].Tasks++
		r.record(w, Event{Worker: w, Task: it.task, Hi: -1,
			Start: t0.Sub(r.start), End: time.Since(r.start)})
		if err != nil {
			r.fail(fmt.Errorf("sched: task %s: %w", r.g.Tasks[it.task].String(), err))
			return
		}
		r.completeTask(w, it.task)
	}
}

// partition splits task id into ⌈size/δ⌉ pieces (line 13): the first piece
// runs inline, the rest are spread evenly over the local lists, and a
// combiner item fires when the last piece finishes.
func (r *run) partition(w int, id, size int) {
	tPart := time.Now()
	δ := r.opts.Threshold
	n := (size + δ - 1) / δ
	comb := &combiner{task: id, pending: int32(n)}
	atomic.AddInt64(&r.parted, 1)
	pieceW := int64(r.g.Tasks[id].Weight)/int64(n) + 1
	var first item
	for k := 0; k < n; k++ {
		lo := k * δ
		hi := lo + δ
		if hi > size {
			hi = size
		}
		it := item{task: id, lo: lo, hi: hi, comb: comb, weight: pieceW,
			buf: r.st.NewPartialBuffer(id)}
		if k == 0 {
			first = it
			continue
		}
		slot := int(atomic.AddInt64(&r.rr, 1)) % len(r.lists)
		r.lists[slot].push(it)
	}
	r.metrics[w].Overhead += time.Since(tPart)
	r.runPiece(w, first)
}

func (r *run) runPiece(w int, it item) {
	t0 := time.Now()
	err := r.st.ExecutePiece(it.task, it.lo, it.hi, it.buf)
	r.metrics[w].Busy += time.Since(t0)
	r.metrics[w].Tasks++
	atomic.AddInt64(&r.pieces, 1)
	r.record(w, Event{Worker: w, Task: it.task, Lo: it.lo, Hi: it.hi,
		Start: t0.Sub(r.start), End: time.Since(r.start)})
	if err != nil {
		r.fail(fmt.Errorf("sched: piece [%d,%d) of %s: %w", it.lo, it.hi, r.g.Tasks[it.task].String(), err))
		return
	}
	c := it.comb
	if it.buf != nil {
		c.mu.Lock()
		c.bufs = append(c.bufs, it.buf)
		c.mu.Unlock()
	}
	if atomic.AddInt32(&c.pending, -1) == 0 {
		// This worker finished the last piece: it runs T̂n itself.
		r.process(w, item{task: c.task, comb: c, isComb: true,
			weight: int64(r.g.Tasks[c.task].Weight)})
	}
}

func (r *run) runCombiner(w int, it item) {
	t0 := time.Now()
	err := r.st.Combine(it.task, it.comb.bufs)
	r.metrics[w].Busy += time.Since(t0)
	r.metrics[w].Tasks++
	r.record(w, Event{Worker: w, Task: it.task, Comb: true, Hi: -1,
		Start: t0.Sub(r.start), End: time.Since(r.start)})
	if err != nil {
		r.fail(fmt.Errorf("sched: combine %s: %w", r.g.Tasks[it.task].String(), err))
		return
	}
	r.completeTask(w, it.task)
}

// completeTask is the Allocate module (lines 4–10): decrement successor
// dependency degrees and hand newly ready tasks to the least-loaded list.
func (r *run) completeTask(w int, id int) {
	tAlloc := time.Now()
	for _, s := range r.g.Tasks[id].Succs {
		if atomic.AddInt32(&r.deps[s], -1) == 0 {
			r.allocate(r.wholeItem(s))
		}
	}
	r.metrics[w].Overhead += time.Since(tAlloc)
	if atomic.AddInt64(&r.remaining, -1) == 0 {
		r.finish()
	}
}

// record appends a trace event to the worker's private buffer.
func (r *run) record(w int, e Event) {
	if r.traces != nil {
		r.traces[w] = append(r.traces[w], e)
	}
}

// allocate pushes a ready task onto the list with the smallest weight
// counter (line 7: j = argmin W_t).
func (r *run) allocate(it item) {
	best, bestW := 0, int64(1)<<62
	for i, l := range r.lists {
		if w := atomic.LoadInt64(&l.weight); w < bestW {
			best, bestW = i, w
		}
	}
	r.lists[best].push(it)
}
