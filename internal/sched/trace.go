package sched

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"evprop/internal/taskgraph"
)

// Event is one executed item (task, piece or combiner) on a worker's
// timeline, with times relative to the run's start.
type Event struct {
	Worker int
	Task   int
	Kind   taskgraph.Kind // primitive kind of the task
	Lo, Hi int            // piece range; Lo==0 && Hi==-1 for whole tasks
	Comb   bool
	Start  time.Duration
	End    time.Duration
}

// Trace is the execution timeline of one collaborative-scheduler run,
// recorded when Options.Trace is set.
type Trace struct {
	Workers int
	Events  []Event // ordered by (Worker, Start)
	Total   time.Duration
	// bufs holds the raw per-worker buffers of a deferred-merge trace
	// (Options.LazyTrace); nil once Finalize or Release ran, and for
	// eagerly merged traces.
	bufs *traceBufs
}

// rawEvent is the compact in-flight form of an Event: 32 bytes against
// Event's 64, halving the store traffic on the trace hot path. The worker is
// implied by which buffer holds the event; kind and the combiner flag share
// a word. Finalize expands raw events into public Events.
type rawEvent struct {
	start, dur int64 // nanoseconds relative to the run start
	task       int32
	lo, hi     int32
	kindComb   uint32 // Kind | combinerBit
}

const combinerBit = 1 << 16

// traceBufs is a recyclable set of per-worker event buffers. Each buffer is
// padded onto its own cache lines: the slice headers are hot (every executed
// item appends through them from a different worker), and packing them would
// false-share. Recycling keeps the grown capacities, so a warmed-up engine
// records full traces without allocating — the property the always-on flight
// recorder's <2% overhead budget rests on.
type traceBufs struct {
	w []traceBuf
}

type traceBuf struct {
	evs []rawEvent
	_   [104]byte // pad the 24-byte slice header to two cache lines
}

// record appends one compact event to worker w's buffer.
func (tb *traceBufs) record(w int, task int, kind taskgraph.Kind, lo, hi int, comb bool, start, dur time.Duration) {
	kc := uint32(kind)
	if comb {
		kc |= combinerBit
	}
	b := &tb.w[w]
	b.evs = append(b.evs, rawEvent{
		start: int64(start), dur: int64(dur),
		task: int32(task), lo: int32(lo), hi: int32(hi), kindComb: kc,
	})
}

var traceBufPool sync.Pool

func getTraceBufs(workers int) *traceBufs {
	if tb, ok := traceBufPool.Get().(*traceBufs); ok {
		if len(tb.w) >= workers {
			return tb
		}
	}
	return &traceBufs{w: make([]traceBuf, workers)}
}

func putTraceBufs(tb *traceBufs) {
	for i := range tb.w {
		tb.w[i].evs = tb.w[i].evs[:0]
	}
	traceBufPool.Put(tb)
}

// Finalize merges a deferred trace's per-worker buffers into Events,
// normalizes their order, and recycles the buffers. It is a no-op on a
// finalized or eagerly merged trace. A lazy trace's owner must call exactly
// one of Finalize (to keep the events) or Release (to drop them) before
// handing the trace to readers, and must not call either concurrently.
func (tr *Trace) Finalize() {
	if tr == nil || tr.bufs == nil {
		return
	}
	n := 0
	for i := range tr.bufs.w {
		n += len(tr.bufs.w[i].evs)
	}
	tr.Events = make([]Event, 0, n)
	for w := range tr.bufs.w {
		for _, re := range tr.bufs.w[w].evs {
			tr.Events = append(tr.Events, Event{
				Worker: w,
				Task:   int(re.task),
				Kind:   taskgraph.Kind(re.kindComb &^ combinerBit),
				Lo:     int(re.lo),
				Hi:     int(re.hi),
				Comb:   re.kindComb&combinerBit != 0,
				Start:  time.Duration(re.start),
				End:    time.Duration(re.start + re.dur),
			})
		}
	}
	tb := tr.bufs
	tr.bufs = nil
	putTraceBufs(tb)
	tr.sortEvents()
}

// Release recycles a deferred trace's buffers without merging them — the
// fast path for traces nobody kept. No-op on nil, finalized or eager traces.
func (tr *Trace) Release() {
	if tr == nil || tr.bufs == nil {
		return
	}
	tb := tr.bufs
	tr.bufs = nil
	putTraceBufs(tb)
}

// sortEvents normalizes the event order after the per-worker buffers merge.
func (tr *Trace) sortEvents() {
	sort.Slice(tr.Events, func(i, j int) bool {
		a, b := tr.Events[i], tr.Events[j]
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Start < b.Start
	})
}

// BusySpans returns, for one worker, the merged [start,end) spans during
// which it executed primitives. The merge requires the worker's events in
// Start order; traces produced by a run are normalized by sortEvents, but
// hand-built or concatenated traces may not be, so the worker's events are
// sorted defensively here — an unsorted input would otherwise silently
// swallow earlier events into later spans.
func (tr *Trace) BusySpans(worker int) [][2]time.Duration {
	var evs []Event
	for _, e := range tr.Events {
		if e.Worker == worker {
			evs = append(evs, e)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	var spans [][2]time.Duration
	for _, e := range evs {
		end := e.End
		if end < e.Start {
			end = e.Start // degenerate event: clamp rather than corrupt the merge
		}
		if n := len(spans); n > 0 && e.Start <= spans[n-1][1] {
			if end > spans[n-1][1] {
				spans[n-1][1] = end
			}
			continue
		}
		spans = append(spans, [2]time.Duration{e.Start, end})
	}
	return spans
}

// Gantt renders the trace as a fixed-width text chart, one row per worker:
// '█' marks time executing primitives, '·' idle or scheduling time. It is
// the real-execution counterpart of the paper's Fig. 8.
func (tr *Trace) Gantt(w io.Writer, width int) {
	if width < 10 {
		width = 10
	}
	if tr.Total <= 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	fmt.Fprintf(w, "gantt: %d workers over %v ('█' executing, '·' idle/scheduling)\n", tr.Workers, tr.Total)
	scale := float64(width) / float64(tr.Total)
	for worker := 0; worker < tr.Workers; worker++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, span := range tr.BusySpans(worker) {
			lo := int(float64(span[0]) * scale)
			hi := int(float64(span[1]) * scale)
			// Clamp both ends: events recorded past Total (or hand-built
			// traces with a stale Total) would otherwise index out of range.
			if lo < 0 {
				lo = 0
			}
			if lo >= width {
				lo = width - 1
			}
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = '#'
			}
		}
		// Swap in the display runes (byte slice keeps the hot loop simple).
		line := make([]rune, width)
		for i, b := range row {
			if b == '#' {
				line[i] = '█'
			} else {
				line[i] = '·'
			}
		}
		fmt.Fprintf(w, "w%-2d %s\n", worker, string(line))
	}
}

// Utilization returns the busy fraction of each worker's timeline, always
// in [0, 1]. BusySpans merges overlapping events, so pieces of a
// partitioned task and the combiner a worker runs inline immediately after
// its last piece are not double-counted, and spans are clamped to Total so
// an event recorded a hair past the measured elapsed time cannot push a
// worker above full utilization.
func (tr *Trace) Utilization() []float64 {
	out := make([]float64, tr.Workers)
	if tr.Total <= 0 {
		return out
	}
	for worker := 0; worker < tr.Workers; worker++ {
		var busy time.Duration
		for _, span := range tr.BusySpans(worker) {
			lo, hi := span[0], span[1]
			if lo > tr.Total {
				continue
			}
			if hi > tr.Total {
				hi = tr.Total
			}
			busy += hi - lo
		}
		out[worker] = float64(busy) / float64(tr.Total)
	}
	return out
}
