package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"evprop/internal/taskgraph"
)

// RunStealing executes the task graph with a work-stealing variant of the
// collaborative scheduler — the direction the paper's Section 8 sketches
// for the many-core era. Allocation still prefers the least-loaded worker,
// but an idle worker steals from the tail of the most-loaded ready list
// instead of sleeping, which removes the idle window between a bad
// placement and the next allocation.
//
// The variant trades lock granularity for simplicity: all ready lists
// share one mutex (stealing requires a consistent cross-list view), so at
// high core counts its scheduling overhead grows faster than the
// per-list-locked Run — exactly the contention trade-off the paper
// anticipates.
func RunStealing(st *taskgraph.State, opts Options) (*Metrics, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("sched: need at least 1 worker, got %d", opts.Workers)
	}
	g := st.Graph()
	r := &stealRun{
		st:        st,
		g:         g,
		opts:      opts,
		deps:      g.DepCounts(),
		lists:     make([][]item, opts.Workers),
		weights:   make([]int64, opts.Workers),
		remaining: int64(g.N()),
		metrics:   make([]WorkerMetrics, opts.Workers),
	}
	r.cond = sync.NewCond(&r.mu)
	start := time.Now()
	r.start = start
	if g.N() == 0 {
		m := &Metrics{Workers: r.metrics, Elapsed: time.Since(start)}
		if opts.Trace {
			m.Trace = &Trace{Workers: opts.Workers}
		}
		return m, nil
	}
	if opts.Trace {
		r.tbufs = getTraceBufs(opts.Workers)
	}
	for i, id := range g.Sources() {
		r.push(i%opts.Workers, r.item(id))
	}
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(w)
		}(w)
	}
	wg.Wait()
	m := &Metrics{
		Workers:   r.metrics,
		Elapsed:   time.Since(start),
		Tasks:     g.N() - int(atomic.LoadInt64(&r.remaining)),
		Pieces:    int(r.pieces),
		Partition: int(r.parted),
		Steals:    int(r.steals),
	}
	if opts.Trace {
		tr := &Trace{Workers: opts.Workers, Total: m.Elapsed, bufs: r.tbufs}
		if !opts.LazyTrace {
			tr.Finalize()
		}
		m.Trace = tr
	}
	return m, r.err
}

type stealRun struct {
	st   *taskgraph.State
	g    *taskgraph.Graph
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	lists   [][]item
	weights []int64
	done    bool

	deps      []int32
	remaining int64
	pieces    int64
	parted    int64
	steals    int64
	errOnce   sync.Once
	err       error
	metrics   []WorkerMetrics
	start     time.Time
	tbufs     *traceBufs // per-worker event buffers, merged lazily when tracing
}

// record appends a trace event to the worker's private buffer.
func (r *stealRun) record(w, task int, kind taskgraph.Kind, lo, hi int, comb bool, start, dur time.Duration) {
	if r.tbufs != nil {
		r.tbufs.record(w, task, kind, lo, hi, comb, start, dur)
	}
}

func (r *stealRun) item(id int) item {
	return item{task: id, lo: 0, hi: -1, weight: int64(r.g.Tasks[id].Weight)}
}

// push appends under the shared lock and wakes one sleeper.
func (r *stealRun) push(w int, it item) {
	r.mu.Lock()
	r.lists[w] = append(r.lists[w], it)
	r.weights[w] += it.weight
	r.mu.Unlock()
	r.cond.Signal()
}

// fetch pops the head of the worker's own list, or steals the tail of the
// heaviest other list, or sleeps.
func (r *stealRun) fetch(w int) (item, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if len(r.lists[w]) > 0 {
			it := r.lists[w][0]
			r.lists[w] = r.lists[w][1:]
			r.weights[w] -= it.weight
			return it, true
		}
		// Steal from the heaviest victim's tail.
		victim, best := -1, int64(0)
		for v := range r.lists {
			if v != w && len(r.lists[v]) > 0 && r.weights[v] > best {
				victim, best = v, r.weights[v]
			}
		}
		if victim >= 0 {
			n := len(r.lists[victim])
			it := r.lists[victim][n-1]
			r.lists[victim] = r.lists[victim][:n-1]
			r.weights[victim] -= it.weight
			atomic.AddInt64(&r.steals, 1)
			return it, true
		}
		if r.done {
			return item{}, false
		}
		r.cond.Wait()
	}
}

func (r *stealRun) finish(err error) {
	if err != nil {
		r.errOnce.Do(func() { r.err = err })
	}
	r.mu.Lock()
	r.done = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

func (r *stealRun) worker(w int) {
	for {
		t0 := time.Now()
		it, ok := r.fetch(w)
		r.metrics[w].Overhead += time.Since(t0)
		if !ok {
			return
		}
		r.process(w, it)
	}
}

func (r *stealRun) process(w int, it item) {
	if r.loadFailed() {
		return
	}
	if r.opts.Ctx != nil {
		if err := r.opts.Ctx.Err(); err != nil {
			r.finish(err)
			return
		}
	}
	switch {
	case it.isComb:
		t0 := time.Now()
		err := r.st.Combine(it.task, it.comb.bufs)
		d := time.Since(t0)
		kind := r.g.Tasks[it.task].Kind
		r.metrics[w].Busy += d
		r.metrics[w].KindBusy[kind] += d
		r.metrics[w].Tasks++
		r.record(w, it.task, kind, 0, -1, true, t0.Sub(r.start), d)
		if err != nil {
			r.finish(err)
			return
		}
		r.complete(it.task)
	case it.comb != nil:
		t0 := time.Now()
		err := r.st.ExecutePiece(it.task, it.lo, it.hi, it.buf)
		d := time.Since(t0)
		kind := r.g.Tasks[it.task].Kind
		r.metrics[w].Busy += d
		r.metrics[w].KindBusy[kind] += d
		r.metrics[w].Tasks++
		atomic.AddInt64(&r.pieces, 1)
		r.record(w, it.task, kind, it.lo, it.hi, false, t0.Sub(r.start), d)
		if err != nil {
			r.finish(err)
			return
		}
		c := it.comb
		if it.buf != nil {
			c.mu.Lock()
			c.bufs = append(c.bufs, it.buf)
			c.mu.Unlock()
		}
		if atomic.AddInt32(&c.pending, -1) == 0 {
			r.process(w, item{task: c.task, comb: c, isComb: true})
		}
	default:
		size := r.st.PartitionSize(it.task)
		if r.opts.Threshold > 0 && size > r.opts.Threshold {
			r.partition(w, it.task, size)
			return
		}
		t0 := time.Now()
		err := r.st.Execute(it.task)
		d := time.Since(t0)
		kind := r.g.Tasks[it.task].Kind
		r.metrics[w].Busy += d
		r.metrics[w].KindBusy[kind] += d
		r.metrics[w].Tasks++
		r.record(w, it.task, kind, 0, -1, false, t0.Sub(r.start), d)
		if err != nil {
			r.finish(err)
			return
		}
		r.complete(it.task)
	}
}

func (r *stealRun) partition(w int, id, size int) {
	δ := r.opts.Threshold
	n := (size + δ - 1) / δ
	comb := &combiner{task: id, pending: int32(n)}
	atomic.AddInt64(&r.parted, 1)
	pieceW := int64(r.g.Tasks[id].Weight)/int64(n) + 1
	var first item
	for k := 0; k < n; k++ {
		lo := k * δ
		hi := lo + δ
		if hi > size {
			hi = size
		}
		it := item{task: id, lo: lo, hi: hi, comb: comb, weight: pieceW,
			buf: r.st.NewPartialBuffer(id)}
		if k == 0 {
			first = it
			continue
		}
		r.push((w+k)%r.opts.Workers, it)
	}
	r.process(w, first)
}

func (r *stealRun) complete(id int) {
	for _, s := range r.g.Tasks[id].Succs {
		if atomic.AddInt32(&r.deps[s], -1) == 0 {
			r.allocate(r.item(s))
		}
	}
	if atomic.AddInt64(&r.remaining, -1) == 0 {
		r.finish(nil)
	}
}

// allocate routes a ready task to the least-loaded list.
func (r *stealRun) allocate(it item) {
	r.mu.Lock()
	best, bestW := 0, int64(1)<<62
	for w, load := range r.weights {
		if load < bestW {
			best, bestW = w, load
		}
	}
	r.lists[best] = append(r.lists[best], it)
	r.weights[best] += it.weight
	r.mu.Unlock()
	r.cond.Signal()
}

func (r *stealRun) loadFailed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done && r.err != nil
}
