package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"evprop/internal/taskgraph"
)

// RunStealing executes the task graph with a work-stealing variant of the
// collaborative scheduler — the direction the paper's Section 8 sketches
// for the many-core era. Allocation still prefers the least-loaded worker,
// but an idle worker steals from the tail of the most-loaded ready list
// instead of sleeping, which removes the idle window between a bad
// placement and the next allocation.
//
// The variant trades lock granularity for simplicity: all ready lists
// share one mutex (stealing requires a consistent cross-list view), so at
// high core counts its scheduling overhead grows faster than the
// per-list-locked Run — exactly the contention trade-off the paper
// anticipates.
func RunStealing(st taskgraph.Executor, opts Options) (*Metrics, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("sched: need at least 1 worker, got %d", opts.Workers)
	}
	g := st.Graph()
	gauges := opts.Gauges
	if gauges == nil || gauges.Workers() != opts.Workers {
		gauges = NewGauges(opts.Workers)
	}
	r := &stealRun{
		st:        st,
		g:         g,
		opts:      opts,
		deps:      g.DepCounts(),
		lists:     make([][]item, opts.Workers),
		weights:   make([]int64, opts.Workers),
		remaining: int64(g.N()),
		metrics:   make([]WorkerMetrics, opts.Workers),
		gauges:    gauges,
		labels:    newLabelSet(opts.Ctx, opts.QueryID),
	}
	r.cond = sync.NewCond(&r.mu)
	start := time.Now()
	r.start = start
	if g.N() == 0 {
		m := &Metrics{Workers: r.metrics, Elapsed: time.Since(start)}
		if opts.Trace {
			m.Trace = &Trace{Workers: opts.Workers}
		}
		return m, nil
	}
	if opts.Trace {
		r.tbufs = getTraceBufs(opts.Workers)
	}
	gauges.runStarted(g.N())
	for i, id := range g.Sources() {
		r.push(i%opts.Workers, r.item(id))
	}
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(w)
		}(w)
	}
	wg.Wait()
	gauges.runFinished(atomic.LoadInt64(&r.remaining))
	// All workers have exited, so r.metrics is quiescent even on failure —
	// unlike Pool.Run, the flush here is unconditional.
	gauges.flushRun(r.metrics)
	m := &Metrics{
		Workers:   r.metrics,
		Elapsed:   time.Since(start),
		Tasks:     g.N() - int(atomic.LoadInt64(&r.remaining)),
		Pieces:    int(r.pieces),
		Partition: int(r.parted),
		Steals:    int(r.steals),
	}
	if opts.Trace {
		tr := &Trace{Workers: opts.Workers, Total: m.Elapsed, bufs: r.tbufs}
		if !opts.LazyTrace {
			tr.Finalize()
		}
		m.Trace = tr
	}
	return m, r.err
}

type stealRun struct {
	st   taskgraph.Executor
	g    *taskgraph.Graph
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	lists   [][]item
	weights []int64
	done    bool

	deps      []int32
	remaining int64
	pieces    int64
	parted    int64
	steals    int64
	errOnce   sync.Once
	err       error
	metrics   []WorkerMetrics
	start     time.Time
	tbufs     *traceBufs // per-worker event buffers, merged lazily when tracing
	gauges    *Gauges    // shared across an engine's runs so counters accumulate
	labels    *labelSet  // pprof query/kind labels (nil when Options.QueryID == "")
}

// record appends a trace event to the worker's private buffer.
func (r *stealRun) record(w, task int, kind taskgraph.Kind, lo, hi int, comb bool, start, dur time.Duration) {
	if r.tbufs != nil {
		r.tbufs.record(w, task, kind, lo, hi, comb, start, dur)
	}
}

func (r *stealRun) item(id int) item {
	return item{task: id, lo: 0, hi: -1, weight: int64(r.g.Tasks[id].Weight)}
}

// push appends under the shared lock and wakes one sleeper.
func (r *stealRun) push(w int, it item) {
	r.mu.Lock()
	r.lists[w] = append(r.lists[w], it)
	r.weights[w] += it.weight
	r.gauges.worker(w).llAdd(1, it.weight)
	r.mu.Unlock()
	r.cond.Signal()
}

// fetch pops the head of the worker's own list, or steals the tail of the
// heaviest other list, or sleeps. State transitions are published only on
// the slow paths (steal scan, park); the returned waited flag tells the
// caller to republish its executing state afterwards.
func (r *stealRun) fetch(w int) (item, bool, bool) {
	self := r.gauges.worker(w)
	waited := false
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if len(r.lists[w]) > 0 {
			it := r.lists[w][0]
			r.lists[w] = r.lists[w][1:]
			r.weights[w] -= it.weight
			self.llAdd(-1, -it.weight)
			return it, true, waited
		}
		// Steal from the heaviest victim's tail.
		waited = true
		self.state.Store(int32(WorkerStealing))
		self.stealAttempts.Add(1)
		victim, best := -1, int64(0)
		for v := range r.lists {
			if v != w && len(r.lists[v]) > 0 && r.weights[v] > best {
				victim, best = v, r.weights[v]
			}
		}
		if victim >= 0 {
			n := len(r.lists[victim])
			it := r.lists[victim][n-1]
			r.lists[victim] = r.lists[victim][:n-1]
			r.weights[victim] -= it.weight
			r.gauges.worker(victim).llAdd(-1, -it.weight)
			self.steals.Add(1)
			atomic.AddInt64(&r.steals, 1)
			return it, true, true
		}
		if r.done {
			return item{}, false, waited
		}
		self.state.Store(int32(WorkerParked))
		clearLabels(self)
		r.cond.Wait()
	}
}

func (r *stealRun) finish(err error) {
	if err != nil {
		r.errOnce.Do(func() { r.err = err })
	}
	r.mu.Lock()
	r.done = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

func (r *stealRun) worker(w int) {
	wg := r.gauges.worker(w)
	defer func() {
		wg.state.Store(int32(WorkerParked))
		clearLabels(wg)
	}()
	executing := false
	for {
		t0 := time.Now()
		it, ok, waited := r.fetch(w)
		r.metrics[w].Overhead += time.Since(t0)
		if !ok {
			return
		}
		if !executing || waited {
			wg.state.Store(int32(WorkerExecuting))
			executing = true
		}
		r.process(w, it)
	}
}

func (r *stealRun) process(w int, it item) {
	if r.loadFailed() {
		return
	}
	if r.opts.Ctx != nil {
		if err := r.opts.Ctx.Err(); err != nil {
			r.finish(err)
			return
		}
	}
	wg := r.gauges.worker(w)
	switch {
	case it.isComb:
		kind := r.g.Tasks[it.task].Kind
		r.labels.apply(kind, wg)
		t0 := time.Now()
		err := r.st.Combine(it.task, it.comb.bufs)
		d := time.Since(t0)
		r.metrics[w].Busy += d
		r.metrics[w].KindBusy[kind] += d
		r.metrics[w].Tasks++
		r.record(w, it.task, kind, 0, -1, true, t0.Sub(r.start), d)
		if err != nil {
			r.finish(err)
			return
		}
		r.complete(w, it.task)
	case it.comb != nil:
		kind := r.g.Tasks[it.task].Kind
		r.labels.apply(kind, wg)
		t0 := time.Now()
		err := r.st.ExecutePiece(it.task, it.lo, it.hi, it.buf)
		d := time.Since(t0)
		r.metrics[w].Busy += d
		r.metrics[w].KindBusy[kind] += d
		r.metrics[w].Tasks++
		atomic.AddInt64(&r.pieces, 1)
		r.record(w, it.task, kind, it.lo, it.hi, false, t0.Sub(r.start), d)
		if err != nil {
			r.finish(err)
			return
		}
		c := it.comb
		if it.buf != nil {
			c.mu.Lock()
			c.bufs = append(c.bufs, it.buf)
			c.mu.Unlock()
		}
		if atomic.AddInt32(&c.pending, -1) == 0 {
			r.process(w, item{task: c.task, comb: c, isComb: true})
		}
	default:
		size := r.st.PartitionSize(it.task)
		if r.opts.Threshold > 0 && size > r.opts.Threshold {
			r.partition(w, it.task, size)
			return
		}
		kind := r.g.Tasks[it.task].Kind
		r.labels.apply(kind, wg)
		t0 := time.Now()
		err := r.st.Execute(it.task)
		d := time.Since(t0)
		r.metrics[w].Busy += d
		r.metrics[w].KindBusy[kind] += d
		r.metrics[w].Tasks++
		r.record(w, it.task, kind, 0, -1, false, t0.Sub(r.start), d)
		if err != nil {
			r.finish(err)
			return
		}
		r.complete(w, it.task)
	}
}

func (r *stealRun) partition(w int, id, size int) {
	step := snapStep(r.opts.Threshold, r.g.Tasks[id].Grain)
	n := (size + step - 1) / step
	comb := &combiner{task: id, pending: int32(n)}
	atomic.AddInt64(&r.parted, 1)
	r.gauges.worker(w).partitions.Add(1)
	var first item
	for k := 0; k < n; k++ {
		lo := k * step
		hi := lo + step
		if hi > size {
			hi = size
		}
		it := item{task: id, lo: lo, hi: hi, comb: comb,
			weight: pieceWeight(r.g.Tasks[id].Weight, hi-lo, size),
			buf:    r.st.NewPartialBuffer(id)}
		if k == 0 {
			first = it
			continue
		}
		r.push((w+k)%r.opts.Workers, it)
	}
	r.process(w, first)
}

func (r *stealRun) complete(w, id int) {
	for _, s := range r.g.Tasks[id].Succs {
		if atomic.AddInt32(&r.deps[s], -1) == 0 {
			r.allocate(r.item(s))
		}
	}
	r.gauges.worker(w).completed.Add(1)
	if atomic.AddInt64(&r.remaining, -1) == 0 {
		r.finish(nil)
	}
}

// allocate routes a ready task to the least-loaded list.
func (r *stealRun) allocate(it item) {
	r.mu.Lock()
	best, bestW := 0, int64(1)<<62
	for w, load := range r.weights {
		if load < bestW {
			best, bestW = w, load
		}
	}
	r.lists[best] = append(r.lists[best], it)
	r.weights[best] += it.weight
	r.gauges.worker(best).llAdd(1, it.weight)
	r.mu.Unlock()
	r.cond.Signal()
}

func (r *stealRun) loadFailed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done && r.err != nil
}
