package sched

import (
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/jtree"
	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

// referenceState runs the graph serially and returns the final state.
func referenceState(t *testing.T, g *taskgraph.Graph, ev potential.Evidence) *taskgraph.State {
	t.Helper()
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AbsorbEvidence(ev); err != nil {
		t.Fatal(err)
	}
	if err := st.RunSerial(); err != nil {
		t.Fatal(err)
	}
	return st
}

// compareStates checks that the two propagation results encode the same
// distributions. Clique tables are compared after normalization: partitioned
// marginalizations sum partial buffers in a different association order than
// the serial pass, so unnormalized absolute values may differ at ~1e-9 even
// though the encoded posteriors are identical.
func compareStates(t *testing.T, label string, ref, got *taskgraph.State, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		a, b := ref.Clique[i].Clone(), got.Clique[i].Clone()
		if err := a.Normalize(); err != nil {
			t.Fatalf("%s: clique %d reference has zero mass", label, i)
		}
		if err := b.Normalize(); err != nil {
			t.Fatalf("%s: clique %d result has zero mass", label, i)
		}
		if !a.Equal(b, 1e-9) {
			t.Errorf("%s: clique %d differs from serial reference", label, i)
			return
		}
	}
}

func TestRunMatchesSerialAcrossWorkers(t *testing.T) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 30, Width: 4, States: 2, Degree: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(17); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	ref := referenceState(t, g, nil)
	for _, p := range []int{1, 2, 3, 4, 8} {
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		m, err := Run(st, Options{Workers: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if m.Tasks != g.N() {
			t.Errorf("P=%d: completed %d of %d tasks", p, m.Tasks, g.N())
		}
		compareStates(t, "P", ref, st, tr.N())
	}
}

func TestRunMatchesSerialWithPartitioning(t *testing.T) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 20, Width: 6, States: 2, Degree: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(23); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	ref := referenceState(t, g, nil)
	for _, thr := range []int{1, 7, 16, 64} {
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		m, err := Run(st, Options{Workers: 4, Threshold: thr})
		if err != nil {
			t.Fatalf("δ=%d: %v", thr, err)
		}
		if thr < 64 && m.Partition == 0 {
			t.Errorf("δ=%d: no task was partitioned", thr)
		}
		compareStates(t, "threshold", ref, st, tr.N())
	}
}

func TestRunWithEvidenceMatchesOracle(t *testing.T) {
	net, ids := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	ev := potential.Evidence{ids["XRay"]: 1, ids["Smoke"]: 1}
	for _, p := range []int{1, 3, 8} {
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.AbsorbEvidence(ev); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(st, Options{Workers: p, Threshold: 2}); err != nil {
			t.Fatal(err)
		}
		for name, v := range ids {
			if _, fixed := ev[v]; fixed {
				continue
			}
			got, err := st.Marginal(v)
			if err != nil {
				t.Fatal(err)
			}
			want, err := net.ExactMarginal(v, ev)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 1e-9) {
				t.Errorf("P=%d: P(%s|e) = %v, oracle %v", p, name, got.Data, want.Data)
			}
		}
	}
}

func TestRunRerootedMatchesOracle(t *testing.T) {
	// Rerooting must not change inference results.
	net, ids := bayesnet.Student()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := tr.Reroot(tr.SelectRoot())
	if err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(rt)
	ev := potential.Evidence{ids["Letter"]: 1}
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AbsorbEvidence(ev); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(st, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for name, v := range ids {
		if _, fixed := ev[v]; fixed {
			continue
		}
		got, err := st.Marginal(v)
		if err != nil {
			t.Fatal(err)
		}
		want, err := net.ExactMarginal(v, ev)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-9) {
			t.Errorf("P(%s|e) = %v, oracle %v", name, got.Data, want.Data)
		}
	}
}

func TestRunEmptyGraph(t *testing.T) {
	tr, err := jtree.Chain(1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeUniform(); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(st, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Tasks != 0 {
		t.Errorf("empty graph completed %d tasks", m.Tasks)
	}
}

func TestRunRejectsZeroWorkers(t *testing.T) {
	tr, err := jtree.Chain(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeUniform(); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(st, Options{Workers: 0}); err == nil {
		t.Error("accepted 0 workers")
	}
}

func TestMetricsAccounting(t *testing.T) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 25, Width: 5, States: 2, Degree: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(2); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(st, Options{Workers: 3, Threshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Workers) != 3 {
		t.Fatalf("metrics for %d workers", len(m.Workers))
	}
	items := 0
	for _, wm := range m.Workers {
		if wm.Busy < 0 || wm.Overhead < 0 {
			t.Error("negative metric")
		}
		items += wm.Tasks
	}
	if items == 0 {
		t.Error("no items recorded")
	}
	if m.Pieces == 0 || m.Partition == 0 {
		t.Errorf("partitioning not reflected in metrics: %+v", m)
	}
	if m.Elapsed <= 0 {
		t.Error("elapsed not positive")
	}
}

func TestPartitionThresholdOne(t *testing.T) {
	// δ=1 forces maximal splitting; results must still be exact.
	net, _ := bayesnet.Sprinkler()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	ref := referenceState(t, g, nil)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(st, Options{Workers: 2, Threshold: 1}); err != nil {
		t.Fatal(err)
	}
	compareStates(t, "δ=1", ref, st, tr.N())
}

func TestManyRunsStable(t *testing.T) {
	// Repeated runs across goroutine interleavings must all agree.
	tr, err := jtree.Random(jtree.RandomConfig{N: 16, Width: 4, States: 2, Degree: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(4); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	ref := referenceState(t, g, nil)
	for trial := 0; trial < 25; trial++ {
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(st, Options{Workers: 4, Threshold: 8}); err != nil {
			t.Fatal(err)
		}
		compareStates(t, "trial", ref, st, tr.N())
	}
}

func TestStealingMatchesSerial(t *testing.T) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 28, Width: 5, States: 2, Degree: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(12); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	ref := referenceState(t, g, nil)
	for _, p := range []int{1, 2, 4, 8} {
		for _, thr := range []int{0, 16} {
			st, err := g.NewState()
			if err != nil {
				t.Fatal(err)
			}
			m, err := RunStealing(st, Options{Workers: p, Threshold: thr})
			if err != nil {
				t.Fatalf("P=%d δ=%d: %v", p, thr, err)
			}
			if m.Tasks != g.N() {
				t.Errorf("P=%d δ=%d: completed %d of %d", p, thr, m.Tasks, g.N())
			}
			compareStates(t, "stealing", ref, st, tr.N())
		}
	}
}

func TestStealingOracle(t *testing.T) {
	net, ids := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	ev := potential.Evidence{ids["Dysp"]: 1}
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AbsorbEvidence(ev); err != nil {
		t.Fatal(err)
	}
	if _, err := RunStealing(st, Options{Workers: 4, Threshold: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := st.Marginal(ids["Lung"])
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.ExactMarginal(ids["Lung"], ev)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Errorf("stealing P(Lung|e) = %v, oracle %v", got.Data, want.Data)
	}
}

func TestStealingEmptyAndErrors(t *testing.T) {
	tr, err := jtree.Chain(1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeUniform(); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if m, err := RunStealing(st, Options{Workers: 3}); err != nil || m.Tasks != 0 {
		t.Errorf("empty graph: %v, %v", m, err)
	}
	if _, err := RunStealing(st, Options{Workers: 0}); err == nil {
		t.Error("accepted 0 workers")
	}
}

// TestSnapStep pins the δ-snapping contract: the step is always a positive
// multiple of the task's kernel grain (split points land on run boundaries),
// spans at least one cache line, and never rounds δ below itself.
func TestSnapStep(t *testing.T) {
	cases := []struct {
		δ, grain, want int
	}{
		{256, 1, 256},  // already line-aligned, contiguous kernel
		{256, 0, 256},  // grain 0 = unknown, treated as 1
		{250, 1, 256},  // bumped grain 8: round 250 up to next multiple
		{1, 1, 8},      // tiny δ still spans a cache line
		{1, 3, 9},      // sub-line grain 3 bumps to 9 (multiple of 3 ≥ 8)
		{100, 3, 108},  // 12·9
		{256, 64, 256}, // grain ≥ line: pure run boundaries
		{100, 64, 128}, // round up to run boundary even past δ
		{1, 1024, 1024},
		{1025, 1024, 2048},
	}
	for _, c := range cases {
		if got := snapStep(c.δ, c.grain); got != c.want {
			t.Errorf("snapStep(%d, %d) = %d, want %d", c.δ, c.grain, got, c.want)
		}
	}
	// Structural invariants over a sweep.
	for δ := 1; δ <= 3000; δ += 7 {
		for _, g := range []int{0, 1, 2, 3, 5, 8, 12, 64, 1000} {
			s := snapStep(δ, g)
			if s < δ {
				t.Fatalf("snapStep(%d, %d) = %d below δ", δ, g, s)
			}
			if s < cacheLineEntries {
				t.Fatalf("snapStep(%d, %d) = %d below a cache line", δ, g, s)
			}
			if eg := g; eg >= 1 && s%eg != 0 {
				t.Fatalf("snapStep(%d, %d) = %d not a run-boundary multiple", δ, g, s)
			}
		}
	}
}

// TestPieceWeight checks the proration: pieces carry weight proportional to
// their span (plus the +1 floor that keeps zero-weight pieces countable).
func TestPieceWeight(t *testing.T) {
	if w := pieceWeight(1000, 50, 100); w != 501 {
		t.Errorf("half-span piece weight %d, want 501", w)
	}
	if w := pieceWeight(1000, 100, 100); w != 1001 {
		t.Errorf("full-span piece weight %d, want 1001", w)
	}
	if w := pieceWeight(3, 1, 1000); w < 1 {
		t.Errorf("piece weight %d below 1", w)
	}
}
