package sched

import (
	"context"
	"runtime/pprof"

	"evprop/internal/taskgraph"
)

// pprof goroutine labels let CPU profiles captured under evserve's -pprof
// segment scheduler time by query and by node-level primitive:
//
//	go tool pprof -tagfocus query_id=q-ab12-7 http://host/debug/pprof/profile
//	go tool pprof -tagfocus task_kind=marginalize ...
//
// pprof.WithLabels allocates a new label map, so a labelSet precomputes one
// labelled context per task kind at run start; switching the executing
// goroutine's labels per item is then a single pprof.SetGoroutineLabels
// (a pointer store into the g struct), cheap enough for the hot path.
type labelSet struct {
	kindCtx [taskgraph.NumKinds]context.Context
}

// newLabelSet builds the per-kind labelled contexts for one run. Returns
// nil when id is empty (no query ID → no labels, zero hot-path cost).
func newLabelSet(ctx context.Context, id string) *labelSet {
	if id == "" {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ls := &labelSet{}
	for k := 0; k < taskgraph.NumKinds; k++ {
		ls.kindCtx[k] = pprof.WithLabels(ctx,
			pprof.Labels("query_id", id, "task_kind", taskgraph.Kind(k).String()))
	}
	return ls
}

// apply tags the calling goroutine with the run's query_id and the item's
// task_kind. Safe on a nil labelSet. wg's lastLabel slot caches the context
// applied by this goroutine last, so consecutive same-kind items of one run
// cost a single atomic load — a cache hit is only possible when the setter
// was this same goroutine, because distinct runs hold distinct labelSets
// (and so distinct context addresses) even when they share a gauge slot.
func (ls *labelSet) apply(kind taskgraph.Kind, wg *workerGauges) {
	if ls == nil {
		return
	}
	if int(kind) >= taskgraph.NumKinds {
		kind = 0
	}
	ctxp := &ls.kindCtx[kind]
	if wg.lastLabel.Load() == ctxp {
		return
	}
	wg.lastLabel.Store(ctxp)
	pprof.SetGoroutineLabels(*ctxp)
}

// clearLabels drops the calling goroutine's labels; workers call it before
// parking so an idle worker never keeps a finished query's tags. A nil
// cache means no labels were applied since the last clear, making the
// no-label park (QueryID off) free.
func clearLabels(wg *workerGauges) {
	if wg.lastLabel.Swap(nil) != nil {
		pprof.SetGoroutineLabels(context.Background())
	}
}
