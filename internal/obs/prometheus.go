package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements just enough of the Prometheus text exposition format
// (version 0.0.4) for /v1/metrics: HELP/TYPE headers, counters and gauges
// with optional labels, and histograms with cumulative le buckets. Writing
// the format by hand keeps the container dependency-free; any Prometheus
// scraper parses it.

// WriteHeader emits the # HELP and # TYPE lines for a metric.
func WriteHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteSample emits one sample line. Labels are rendered in sorted key
// order so the output is deterministic (golden-testable).
func WriteSample(w io.Writer, name string, labels map[string]string, value float64) {
	fmt.Fprintf(w, "%s %s\n", seriesRef(name, labels), formatValue(value))
}

// WriteSampleExemplar emits one sample line with an OpenMetrics exemplar
// trailer, `… # {trace_id="…"} value timestamp`, linking the series to the
// distributed trace that produced a representative observation. A nil
// exemplar degrades to a plain sample line.
func WriteSampleExemplar(w io.Writer, name string, labels map[string]string, value float64, ex *Exemplar) {
	if ex == nil {
		WriteSample(w, name, labels, value)
		return
	}
	fmt.Fprintf(w, "%s %s # {trace_id=\"%s\"} %s %s\n",
		seriesRef(name, labels), formatValue(value),
		escapeLabel(ex.TraceID), formatValue(ex.Value),
		strconv.FormatFloat(float64(ex.Ts.UnixNano())/1e9, 'f', 3, 64))
}

// seriesRef renders `name{labels}` with labels in sorted key order.
func seriesRef(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus emits the histogram as a Prometheus histogram metric:
// cumulative le buckets in seconds, plus _sum and _count. Buckets with a
// traced observation carry its exemplar, so a dashboard's slow-bucket
// click-through lands on the matching trace.
func (h *Histogram) WritePrometheus(w io.Writer, name, help string) {
	WriteHeader(w, name, help, "histogram")
	bounds, cumulative := h.Buckets()
	for i, b := range bounds {
		WriteSampleExemplar(w, name+"_bucket", map[string]string{"le": formatValue(b)}, float64(cumulative[i]), h.BucketExemplar(i))
	}
	WriteSample(w, name+"_sum", nil, h.Sum().Seconds())
	WriteSample(w, name+"_count", nil, float64(h.Count()))
}

// WritePrometheus emits the aggregate's counters and last-run gauges under
// the given metric prefix — the scheduler half of /v1/metrics.
func (s AggregateSnapshot) WritePrometheus(w io.Writer, prefix string) {
	WriteHeader(w, prefix+"_runs_total", "Completed scheduler runs.", "counter")
	WriteSample(w, prefix+"_runs_total", nil, float64(s.Runs))
	WriteHeader(w, prefix+"_busy_seconds_total", "Worker time inside node-level primitives.", "counter")
	WriteSample(w, prefix+"_busy_seconds_total", nil, s.Busy.Seconds())
	WriteHeader(w, prefix+"_overhead_seconds_total", "Worker time in the Allocate and Partition scheduler modules.", "counter")
	WriteSample(w, prefix+"_overhead_seconds_total", nil, s.Overhead.Seconds())
	WriteHeader(w, prefix+"_kind_busy_seconds_total", "Computation time by primitive kind.", "counter")
	for k, name := range KindNames {
		WriteSample(w, prefix+"_kind_busy_seconds_total", map[string]string{"kind": name}, s.KindBusy[k].Seconds())
	}
	WriteHeader(w, prefix+"_tasks_total", "Executed items (tasks, pieces, combiners).", "counter")
	WriteSample(w, prefix+"_tasks_total", nil, float64(s.Tasks))
	WriteHeader(w, prefix+"_pieces_total", "Partitioned pieces executed.", "counter")
	WriteSample(w, prefix+"_pieces_total", nil, float64(s.Pieces))
	WriteHeader(w, prefix+"_partitions_total", "Tasks split by the Partition module.", "counter")
	WriteSample(w, prefix+"_partitions_total", nil, float64(s.Partitioned))
	WriteHeader(w, prefix+"_steals_total", "Items stolen from another worker's ready list.", "counter")
	WriteSample(w, prefix+"_steals_total", nil, float64(s.Steals))
	WriteHeader(w, prefix+"_load_balance", "Last run's max/mean per-worker busy time (1.0 = perfectly balanced).", "gauge")
	WriteSample(w, prefix+"_load_balance", nil, s.LastLoadBalance)
	WriteHeader(w, prefix+"_overhead_fraction", "Last run's scheduler-overhead fraction of total worker time.", "gauge")
	WriteSample(w, prefix+"_overhead_fraction", nil, s.LastOverheadFraction)
	WriteHeader(w, prefix+"_overhead_fraction_lifetime", "Lifetime scheduler-overhead fraction across all runs.", "gauge")
	WriteSample(w, prefix+"_overhead_fraction_lifetime", nil, s.OverheadFraction())
}
