package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// WindowSeconds is the span of the sliding window: 60 one-second buckets.
const WindowSeconds = 60

// windowBucket aggregates one second of traffic. All counters are atomics so
// concurrent request handlers never serialize; the mutex guards only the
// once-per-second rotation of a bucket to a new second.
type windowBucket struct {
	mu  sync.Mutex
	sec atomic.Int64 // unix second this bucket currently holds

	count   atomic.Int64
	errors  atomic.Int64
	latency [histBuckets + 1]atomic.Int64 // log-spaced latency buckets
	lbMilli atomic.Int64                  // sum of load-balance factors ×1000
	lbCount atomic.Int64
	// cacheHits and cacheLookups track the shared-evidence result cache:
	// lookups counts propagation-path queries, hits the ones served
	// without a propagation.
	cacheHits    atomic.Int64
	cacheLookups atomic.Int64
}

// Window is a sliding 60×1 s time series of request traffic: QPS, error
// rate, latency quantiles and the mean load-balance factor over the last
// minute, fed by one Observe per request. Rotation reuses buckets in place,
// so a Window allocates nothing after construction.
//
// The rotation is approximate under concurrency: an observation racing the
// bucket reset at a second boundary may land in either second or be lost.
// That skews a 60 s aggregate by at most a handful of requests — fine for
// monitoring, which is all this is for.
type Window struct {
	buckets [WindowSeconds]windowBucket
	// now is the clock, swappable by tests.
	now func() time.Time
}

// NewWindow returns a window reading the real clock.
func NewWindow() *Window { return &Window{now: time.Now} }

// bucketFor returns the bucket for the given unix second, rotating it away
// from a stale second first.
func (w *Window) bucketFor(sec int64) *windowBucket {
	b := &w.buckets[int(sec%WindowSeconds)]
	if b.sec.Load() != sec {
		b.mu.Lock()
		if b.sec.Load() != sec {
			b.count.Store(0)
			b.errors.Store(0)
			b.lbMilli.Store(0)
			b.lbCount.Store(0)
			b.cacheHits.Store(0)
			b.cacheLookups.Store(0)
			for i := range b.latency {
				b.latency[i].Store(0)
			}
			b.sec.Store(sec)
		}
		b.mu.Unlock()
	}
	return b
}

// Observe records one finished request. loadBalance ≤ 0 means the request
// ran no metered propagation and contributes nothing to the balance gauge.
func (w *Window) Observe(latency time.Duration, isError bool, loadBalance float64) {
	b := w.bucketFor(w.now().Unix())
	b.count.Add(1)
	if isError {
		b.errors.Add(1)
	}
	ns := latency.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b.latency[histBucketOf(ns)].Add(1)
	if loadBalance > 0 {
		b.lbMilli.Add(int64(loadBalance * 1000))
		b.lbCount.Add(1)
	}
}

// ObserveCache records a request's result-cache outcome: lookups counts
// the request's cache-path queries and hits how many were served without a
// propagation. Requests that never consult the cache pass (0, 0) and
// contribute nothing.
func (w *Window) ObserveCache(hits, lookups int64) {
	if lookups <= 0 {
		return
	}
	b := w.bucketFor(w.now().Unix())
	b.cacheHits.Add(hits)
	b.cacheLookups.Add(lookups)
}

// WindowSnapshot summarizes the last WindowSeconds of traffic.
type WindowSnapshot struct {
	// Seconds is the window span.
	Seconds int
	// Requests and Errors count the window's traffic.
	Requests, Errors int64
	// QPS and ErrorRate are Requests/Seconds and Errors/Requests.
	QPS, ErrorRate float64
	// P50 and P99 are latency quantile upper bounds over the window.
	P50, P99 time.Duration
	// LoadBalance is the mean load-balance factor over the window (1 when
	// no propagation was metered).
	LoadBalance float64
	// QPSSeries is the per-second request count, oldest to newest; the last
	// entry is the current (incomplete) second.
	QPSSeries []int64
	// CacheHits and CacheLookups count the window's result-cache traffic;
	// CacheHitRate is their ratio (0 when nothing was looked up).
	CacheHits, CacheLookups int64
	CacheHitRate            float64
	// CacheHitRateSeries is the per-second hit rate, oldest to newest,
	// aligned with QPSSeries; seconds with no lookups report 0.
	CacheHitRateSeries []float64
}

// Snapshot aggregates the buckets still inside the window.
func (w *Window) Snapshot() WindowSnapshot {
	nowSec := w.now().Unix()
	s := WindowSnapshot{
		Seconds:            WindowSeconds,
		QPSSeries:          make([]int64, WindowSeconds),
		CacheHitRateSeries: make([]float64, WindowSeconds),
	}
	var latency [histBuckets + 1]int64
	var lbMilli, lbCount int64
	for i := range w.buckets {
		b := &w.buckets[i]
		sec := b.sec.Load()
		age := nowSec - sec
		if age < 0 || age >= WindowSeconds || sec == 0 {
			continue
		}
		n := b.count.Load()
		s.Requests += n
		s.Errors += b.errors.Load()
		s.QPSSeries[WindowSeconds-1-age] = n
		hits, lookups := b.cacheHits.Load(), b.cacheLookups.Load()
		s.CacheHits += hits
		s.CacheLookups += lookups
		if lookups > 0 {
			s.CacheHitRateSeries[WindowSeconds-1-age] = float64(hits) / float64(lookups)
		}
		for j := range latency {
			latency[j] += b.latency[j].Load()
		}
		lbMilli += b.lbMilli.Load()
		lbCount += b.lbCount.Load()
	}
	s.QPS = float64(s.Requests) / float64(WindowSeconds)
	if s.Requests > 0 {
		s.ErrorRate = float64(s.Errors) / float64(s.Requests)
	}
	if s.CacheLookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(s.CacheLookups)
	}
	s.P50 = quantileFromCounts(latency[:], 0.50)
	s.P99 = quantileFromCounts(latency[:], 0.99)
	if lbCount > 0 {
		s.LoadBalance = float64(lbMilli) / float64(lbCount) / 1000
	} else {
		s.LoadBalance = 1
	}
	return s
}

// quantileFromCounts returns the q-quantile upper bound over merged
// log-spaced latency buckets (the Window counterpart of Histogram.Quantile),
// 0 when empty.
func quantileFromCounts(counts []int64, q float64) time.Duration {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return time.Duration(histUpperBoundNs(i))
		}
	}
	return time.Duration(histUpperBoundNs(len(counts) - 1))
}
