package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-spaced powers of two starting at 1 µs.
// Bucket 0 covers (0, 1µs]; bucket i covers (1µs·2^(i-1), 1µs·2^i]; the
// final bucket is the +Inf overflow. 28 finite buckets reach ≈134 s, far
// past any sane request latency.
const (
	histBaseNs  = 1000 // first finite upper bound, 1 µs in ns
	histBuckets = 28   // finite buckets; counts has one more for +Inf
)

// Histogram is a lock-free bucketed latency histogram: Observe is two
// atomic adds and a CAS-free max update, so concurrent request handlers
// never serialize on it. It replaces the sum/max pair the server used to
// keep, adding percentile queries at the cost of log-spaced bucket
// resolution (quantiles are reported as the upper bound of the bucket the
// rank falls in, an overestimate of at most 2×).
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64
	sum    atomic.Int64 // ns
	max    atomic.Int64 // ns
	// exemplars holds each bucket's most recent traced observation
	// (OpenMetrics exemplar semantics): last write wins, so a scrape links
	// every populated latency bucket to a representative trace.
	exemplars [histBuckets + 1]atomic.Pointer[Exemplar]
}

// Exemplar links one observation to the distributed trace that produced
// it, rendered as the OpenMetrics `# {trace_id="…"} value timestamp`
// trailer on histogram bucket lines.
type Exemplar struct {
	TraceID string
	Value   float64 // the observation, in seconds
	Ts      time.Time
}

// histBucketOf returns the bucket index for a latency in nanoseconds.
func histBucketOf(ns int64) int {
	if ns <= histBaseNs {
		return 0
	}
	// ns lies in (histBaseNs·2^(i-1), histBaseNs·2^i] for the returned i.
	i := bits.Len64(uint64((ns - 1) / histBaseNs))
	if i > histBuckets {
		return histBuckets
	}
	return i
}

// histUpperBoundNs returns bucket i's inclusive upper bound in ns, or
// math.MaxInt64 for the overflow bucket.
func histUpperBoundNs(i int) int64 {
	if i >= histBuckets {
		return math.MaxInt64
	}
	return histBaseNs << uint(i)
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[histBucketOf(ns)].Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// ObserveExemplar records one latency and, when traceID is non-empty,
// retains it as the bucket's exemplar. The traced-request path uses this;
// untraced requests fall back to Observe and never disturb exemplars.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID string) {
	h.Observe(d)
	if traceID == "" {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.exemplars[histBucketOf(ns)].Store(&Exemplar{
		TraceID: traceID,
		Value:   float64(ns) / 1e9,
		Ts:      time.Now(),
	})
}

// BucketExemplar returns bucket i's exemplar, nil when that bucket has
// seen no traced observation.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i > histBuckets {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the total of all observed latencies.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observed latency.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the average observed latency, 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper bound on the q-quantile latency (q in [0,1]):
// the upper bound of the bucket holding the rank-⌈q·n⌉ observation. It
// returns 0 for an empty histogram — the observed == 0 guard that keeps a
// fresh server's stats free of 0/0 NaNs — and Max for ranks landing in the
// overflow bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [histBuckets + 1]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			if i >= histBuckets {
				return h.Max()
			}
			ub := histUpperBoundNs(i)
			// Never report a bound above the observed maximum.
			if m := h.max.Load(); m > 0 && ub > m {
				return time.Duration(m)
			}
			return time.Duration(ub)
		}
	}
	return h.Max()
}

// Buckets returns a copy of the cumulative bucket counts and their upper
// bounds in seconds, the shape Prometheus histograms expose. The final
// entry is the +Inf bucket (bound reported as math.Inf(1)).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = make([]float64, histBuckets+1)
	cumulative = make([]int64, histBuckets+1)
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
		if i < histBuckets {
			bounds[i] = float64(histUpperBoundNs(i)) / 1e9
		} else {
			bounds[i] = math.Inf(1)
		}
	}
	return bounds, cumulative
}
