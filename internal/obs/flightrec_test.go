package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"evprop/internal/sched"
)

func metricsFor(busy time.Duration, traced bool) *sched.Metrics {
	m := &sched.Metrics{
		Workers: []sched.WorkerMetrics{
			{Busy: busy, Overhead: busy / 100, Tasks: 3},
			{Busy: busy / 2, Overhead: busy / 200, Tasks: 2},
		},
		Elapsed: busy,
		Tasks:   5,
	}
	if traced {
		m.Trace = &sched.Trace{Workers: 2, Total: busy, Events: []sched.Event{
			{Worker: 0, Task: 0, Hi: -1, Start: 0, End: busy / 2},
			{Worker: 1, Task: 1, Hi: -1, Start: busy / 2, End: busy},
		}}
	}
	return m
}

func TestFlightRecorderRingOrder(t *testing.T) {
	fr := NewFlightRecorder(4, time.Hour)
	for i := 0; i < 3; i++ {
		fr.RecordRun(RunInfo{ID: fmt.Sprintf("q-%d", i), Mode: "sum-product", Elapsed: time.Millisecond}, nil)
	}
	recs := fr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.ID != fmt.Sprintf("q-%d", i) {
			t.Errorf("record %d has ID %q", i, r.ID)
		}
		if r.Seq != uint64(i) {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
	}
	// Wraparound: 4 more records push out the oldest 3.
	for i := 3; i < 7; i++ {
		fr.RecordRun(RunInfo{ID: fmt.Sprintf("q-%d", i), Elapsed: time.Millisecond}, nil)
	}
	recs = fr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("%d records after wrap, want 4", len(recs))
	}
	if recs[0].ID != "q-3" || recs[3].ID != "q-6" {
		t.Errorf("wrapped ring holds %q … %q, want q-3 … q-6", recs[0].ID, recs[3].ID)
	}
	if fr.Total() != 7 {
		t.Errorf("total %d, want 7", fr.Total())
	}
}

func TestFlightRecorderRecordFields(t *testing.T) {
	fr := NewFlightRecorder(8, time.Hour)
	fr.RecordRun(RunInfo{
		ID: "q-x", Mode: "max-product", EvidenceVars: 2,
		Elapsed: 3 * time.Millisecond, Err: context.Canceled,
	}, metricsFor(10*time.Millisecond, false))
	recs := fr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	r := recs[0]
	if r.Mode != "max-product" || r.EvidenceVars != 2 || r.Err != context.Canceled.Error() {
		t.Errorf("record %+v", r)
	}
	if r.Workers != 2 || r.Tasks != 5 {
		t.Errorf("workers %d tasks %d", r.Workers, r.Tasks)
	}
	// busy = 15ms, max = 10ms → LB = 10/(15/2) = 4/3.
	if r.LoadBalance < 1.3 || r.LoadBalance > 1.4 {
		t.Errorf("load balance %v", r.LoadBalance)
	}
	if r.OverheadFraction <= 0 || r.OverheadFraction >= 0.1 {
		t.Errorf("overhead fraction %v", r.OverheadFraction)
	}
	if r.Slow {
		t.Error("1ms-floor… run under an hour-long floor marked slow")
	}
}

// TestSlowCaptureExactlyOverThreshold is the regression test for the capture
// rule: with a pinned threshold, exactly the runs strictly over it are
// captured, and each capture retains the run's full trace.
func TestSlowCaptureExactlyOverThreshold(t *testing.T) {
	const thr = time.Millisecond
	fr := NewFlightRecorder(64, thr)
	elapsed := []time.Duration{
		thr / 2, thr, thr + 1, 5 * thr, thr / 4, thr, 2 * thr,
	}
	wantSlow := []bool{false, false, true, true, false, false, true}
	for i, d := range elapsed {
		got := fr.RecordRun(RunInfo{ID: fmt.Sprintf("q-%d", i), Elapsed: d}, metricsFor(d, true))
		if got != wantSlow[i] {
			t.Errorf("run %d (%v): slow=%v, want %v", i, d, got, wantSlow[i])
		}
	}
	if fr.SlowTotal() != 3 {
		t.Errorf("slow total %d, want 3", fr.SlowTotal())
	}
	caps := fr.SlowSnapshot()
	if len(caps) != 3 {
		t.Fatalf("%d captures, want 3", len(caps))
	}
	wantIDs := []string{"q-2", "q-3", "q-6"}
	for i, c := range caps {
		if c.Record.ID != wantIDs[i] {
			t.Errorf("capture %d is %q, want %q", i, c.Record.ID, wantIDs[i])
		}
		if !c.Record.Slow {
			t.Errorf("capture %d not marked slow", i)
		}
		if c.Threshold != thr {
			t.Errorf("capture %d threshold %v", i, c.Threshold)
		}
		if c.Trace == nil || len(c.Trace.Events) == 0 {
			t.Errorf("capture %d lost its trace", i)
		}
		if c.Report == nil {
			t.Errorf("capture %d lost its report", i)
		}
	}
	// The ring records carry the Slow flag too.
	var slowInRing int
	for _, r := range fr.Snapshot() {
		if r.Slow {
			slowInRing++
		}
	}
	if slowInRing != 3 {
		t.Errorf("%d ring records marked slow, want 3", slowInRing)
	}
}

func TestSlowCaptureRingBounded(t *testing.T) {
	fr := NewFlightRecorder(8, time.Microsecond)
	for i := 0; i < 3*slowCaptureCap; i++ {
		fr.RecordRun(RunInfo{ID: fmt.Sprintf("q-%d", i), Elapsed: time.Second}, nil)
	}
	caps := fr.SlowSnapshot()
	if len(caps) != slowCaptureCap {
		t.Fatalf("%d captures retained, want %d", len(caps), slowCaptureCap)
	}
	// Oldest-to-newest: the last slowCaptureCap runs.
	if caps[0].Record.ID != fmt.Sprintf("q-%d", 2*slowCaptureCap) {
		t.Errorf("oldest capture %q", caps[0].Record.ID)
	}
	if caps[len(caps)-1].Record.ID != fmt.Sprintf("q-%d", 3*slowCaptureCap-1) {
		t.Errorf("newest capture %q", caps[len(caps)-1].Record.ID)
	}
	if fr.SlowTotal() != int64(3*slowCaptureCap) {
		t.Errorf("slow total %d", fr.SlowTotal())
	}
}

// TestAdaptiveThreshold exercises the p99-relative rule: no captures while
// warming up, then a threshold of slowFactor × p99.
func TestAdaptiveThreshold(t *testing.T) {
	fr := NewFlightRecorder(256, 0)
	if thr := fr.SlowThreshold(); thr != 0 {
		t.Fatalf("cold threshold %v, want 0", thr)
	}
	for i := 0; i < slowMinSamples; i++ {
		if slow := fr.RecordRun(RunInfo{Elapsed: time.Millisecond}, nil); slow {
			t.Fatal("capture fired during warm-up")
		}
	}
	thr := fr.SlowThreshold()
	if thr <= 0 {
		t.Fatal("threshold still 0 after warm-up")
	}
	// All samples were ~1ms, so 2×p99 is at most 2× the 1–2ms bucket bound.
	if thr > 2*2*time.Millisecond {
		t.Errorf("threshold %v implausibly high", thr)
	}
	if slow := fr.RecordRun(RunInfo{ID: "slowpoke", Elapsed: 10 * thr}, nil); !slow {
		t.Error("10× threshold run not captured")
	}
}

// TestFlightRecorderConcurrentWraparound drives concurrent writers through
// several ring wraparounds while a reader snapshots — the -race proof that
// the hot path is safe without locks.
func TestFlightRecorderConcurrentWraparound(t *testing.T) {
	fr := NewFlightRecorder(16, 50*time.Microsecond)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // reader overlaps the writers for the whole run
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			recs := fr.Snapshot()
			for i := 1; i < len(recs); i++ {
				if recs[i].Seq <= recs[i-1].Seq {
					t.Error("snapshot out of order")
					return
				}
			}
			fr.SlowSnapshot()
			fr.SlowThreshold()
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				d := time.Duration(i%100) * time.Microsecond
				fr.RecordRun(RunInfo{ID: fmt.Sprintf("w%d-%d", g, i), Elapsed: d},
					metricsFor(d, i%7 == 0))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if fr.Total() != writers*perWriter {
		t.Errorf("total %d, want %d", fr.Total(), writers*perWriter)
	}
	if got := len(fr.Snapshot()); got != 16 {
		t.Errorf("ring holds %d records, want 16", got)
	}
}
