//go:build race

package obs

// raceEnabled reports whether the race detector instruments this build;
// wall-clock overhead assertions are relaxed under its overhead.
const raceEnabled = true
