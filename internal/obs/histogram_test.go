package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("fresh histogram not zero")
	}
	// The observed == 0 guard: quantiles of an empty histogram are 0, not
	// NaN — this is what keeps a fresh server's /v1/stats valid JSON.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestHistogramBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{1000, 0},              // 1µs: upper bound of bucket 0
		{1001, 1},              // just past 1µs
		{2000, 1},              // 2µs
		{2001, 2},              // just past 2µs
		{4000, 2},              // 4µs
		{1 << 62, histBuckets}, // far past the finite range: overflow
	}
	for _, c := range cases {
		if got := histBucketOf(c.ns); got != c.want {
			t.Errorf("histBucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Each finite bucket's upper bound maps into that bucket, and one more
	// nanosecond maps into the next.
	for i := 0; i < histBuckets-1; i++ {
		ub := histUpperBoundNs(i)
		if histBucketOf(ub) != i {
			t.Errorf("bound %d of bucket %d maps to %d", ub, i, histBucketOf(ub))
		}
		if histBucketOf(ub+1) != i+1 {
			t.Errorf("bound+1 of bucket %d maps to %d", i, histBucketOf(ub+1))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations: 1ms ×90, 10ms ×9, 100ms ×1.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("max %v", h.Max())
	}
	// Log-spaced buckets report the bucket upper bound: an overestimate of
	// at most 2×, never below the true quantile.
	if q := h.Quantile(0.5); q < time.Millisecond || q > 2*time.Millisecond {
		t.Errorf("p50 %v outside [1ms, 2ms]", q)
	}
	if q := h.Quantile(0.95); q < 10*time.Millisecond || q > 20*time.Millisecond {
		t.Errorf("p95 %v outside [10ms, 20ms]", q)
	}
	// p100 lands on the single 100ms observation; the reported bound is
	// clamped to the observed max.
	if q := h.Quantile(1); q != 100*time.Millisecond {
		t.Errorf("p100 %v, want 100ms", q)
	}
	// Quantiles are monotone in q.
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5 * time.Second)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Errorf("count %d sum %v after negative observation", h.Count(), h.Sum())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)     // bucket 0
	h.Observe(3 * time.Microsecond) // bucket 2 (2µs, 4µs]
	bounds, cum := h.Buckets()
	if len(bounds) != histBuckets+1 || len(cum) != histBuckets+1 {
		t.Fatalf("%d bounds, %d counts", len(bounds), len(cum))
	}
	if !math.IsInf(bounds[len(bounds)-1], 1) {
		t.Error("last bound is not +Inf")
	}
	if cum[0] != 1 || cum[1] != 1 || cum[2] != 2 {
		t.Errorf("cumulative = %v", cum[:4])
	}
	if cum[len(cum)-1] != h.Count() {
		t.Error("+Inf bucket does not hold the total count")
	}
	// Cumulative counts are non-decreasing.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts decrease at %d: %v", i, cum)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; under
// -race this verifies Observe and the read side need no lock.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(g*each+i) * time.Microsecond)
				if i%100 == 0 {
					// Concurrent readers must be safe too.
					h.Quantile(0.95)
					h.Buckets()
					h.Mean()
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*each {
		t.Errorf("count %d, want %d", h.Count(), goroutines*each)
	}
	want := (goroutines*each - 1) * int64(time.Microsecond)
	if h.Max() != time.Duration(want) {
		t.Errorf("max %v, want %v", h.Max(), time.Duration(want))
	}
}
