package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
)

// Query identity: every propagation carries a query ID so one request can be
// followed from the HTTP access log through the scheduler into the flight
// recorder. IDs flow through a context; a propagation whose context carries
// no ID is assigned a fresh one by the engine so engine-level callers (tests,
// benchmarks, library users) correlate too.

// queryIDKey is the context key for query IDs.
type queryIDKey struct{}

// WithQueryID returns a context carrying the query ID.
func WithQueryID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, queryIDKey{}, id)
}

// QueryIDFrom extracts the query ID from the context, or "" when none is set.
func QueryIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(queryIDKey{}).(string)
	return id
}

// idPrefix distinguishes processes: two server restarts writing to the same
// log must not reuse IDs, so the per-process counter is salted with four
// random bytes read once at startup.
var idPrefix = func() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "q-0000"
	}
	return "q-" + hex.EncodeToString(b[:])
}()

var idCounter atomic.Uint64

// NewQueryID returns a process-unique query ID, e.g. "q-9f2c41d3-17". It is
// cheap enough for the propagation hot path: one atomic add and one integer
// format.
func NewQueryID() string {
	return idPrefix + "-" + strconv.FormatUint(idCounter.Add(1), 10)
}
