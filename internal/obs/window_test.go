package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testWindow returns a window on a settable fake clock.
func testWindow() (*Window, *atomic.Int64) {
	var sec atomic.Int64
	sec.Store(1_000_000)
	w := &Window{now: func() time.Time { return time.Unix(sec.Load(), 0) }}
	return w, &sec
}

func TestWindowCountsAndSeries(t *testing.T) {
	w, sec := testWindow()
	w.Observe(100*time.Microsecond, false, 1.2)
	w.Observe(200*time.Microsecond, true, 0)
	sec.Add(1)
	w.Observe(400*time.Microsecond, false, 1.4)
	s := w.Snapshot()
	if s.Requests != 3 || s.Errors != 1 {
		t.Errorf("requests %d errors %d", s.Requests, s.Errors)
	}
	if s.ErrorRate < 0.33 || s.ErrorRate > 0.34 {
		t.Errorf("error rate %v", s.ErrorRate)
	}
	if s.QPS != 3.0/WindowSeconds {
		t.Errorf("qps %v", s.QPS)
	}
	if len(s.QPSSeries) != WindowSeconds {
		t.Fatalf("series length %d", len(s.QPSSeries))
	}
	// Newest second last: 1 request now, 2 one second ago.
	if s.QPSSeries[WindowSeconds-1] != 1 || s.QPSSeries[WindowSeconds-2] != 2 {
		t.Errorf("series tail %v", s.QPSSeries[WindowSeconds-2:])
	}
	// Only propagating requests feed the balance gauge: mean of 1.2 and 1.4.
	if s.LoadBalance < 1.29 || s.LoadBalance > 1.31 {
		t.Errorf("load balance %v", s.LoadBalance)
	}
	// Quantiles are log-bucket upper bounds: the p50 of {100µs,200µs,400µs}
	// is the rank-2 observation (200µs, bucket bound 256µs), the p99 the
	// rank-3 one (400µs, bucket bound 512µs).
	if s.P50 != 256*time.Microsecond {
		t.Errorf("p50 %v", s.P50)
	}
	if s.P99 != 512*time.Microsecond {
		t.Errorf("p99 %v", s.P99)
	}
}

func TestWindowExpiry(t *testing.T) {
	w, sec := testWindow()
	for i := 0; i < 10; i++ {
		w.Observe(time.Millisecond, false, 1)
	}
	sec.Add(WindowSeconds - 1)
	if s := w.Snapshot(); s.Requests != 10 {
		t.Errorf("still-visible requests %d, want 10", s.Requests)
	}
	sec.Add(1) // the burst second is now exactly WindowSeconds old
	if s := w.Snapshot(); s.Requests != 0 {
		t.Errorf("expired requests %d, want 0", s.Requests)
	}
	if s := w.Snapshot(); s.LoadBalance != 1 || s.P50 != 0 || s.ErrorRate != 0 {
		t.Errorf("empty snapshot %+v", s)
	}
}

func TestWindowBucketRotationReuses(t *testing.T) {
	w, sec := testWindow()
	w.Observe(time.Millisecond, true, 0)
	// Same bucket index WindowSeconds later must not leak the old counts.
	sec.Add(WindowSeconds)
	w.Observe(time.Millisecond, false, 0)
	s := w.Snapshot()
	if s.Requests != 1 || s.Errors != 0 {
		t.Errorf("rotated bucket leaked: requests %d errors %d", s.Requests, s.Errors)
	}
}

// TestWindowRotationRace drives every writer into the SAME bucket index
// while the clock keeps jumping by whole multiples of WindowSeconds, so the
// rotation reset races concurrent Observe/ObserveCache/Snapshot calls on
// one bucket as hard as possible. Under -race this pins the mutex-guarded
// reset against the lock-free counters; the assertions pin the documented
// approximation bound (counts may be lost at a rotation edge, but never
// invented, mixed across seconds, or left inconsistent).
func TestWindowRotationRace(t *testing.T) {
	w, sec := testWindow()
	const (
		writers    = 8
		perWriter  = 400
		rotations  = 50
		hitsPerObs = 1
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				w.Observe(time.Duration(i)*time.Microsecond, i%7 == 0, 1.5)
				w.ObserveCache(hitsPerObs, 2)
			}
		}(g)
	}
	// The rotator forces the same bucket to represent ever-newer seconds:
	// advancing by exactly WindowSeconds keeps the index fixed while making
	// the stored second stale, so every write triggers the rotation path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rotations; i++ {
			sec.Add(WindowSeconds)
			w.Snapshot() // concurrent reader during rotation
		}
	}()
	close(start)
	wg.Wait()
	s := w.Snapshot()
	if s.Requests < 0 || s.Requests > writers*perWriter {
		t.Errorf("requests %d outside [0, %d]", s.Requests, writers*perWriter)
	}
	// A rotation can land between a writer's two adds, so consistency holds
	// up to one in-flight observation per writer — the "handful of requests"
	// bound the Window documents — never more.
	if s.Errors > s.Requests+writers {
		t.Errorf("errors %d exceed requests %d beyond the rotation-edge bound", s.Errors, s.Requests)
	}
	if s.CacheHits > s.CacheLookups+writers {
		t.Errorf("cache hits %d exceed lookups %d beyond the rotation-edge bound", s.CacheHits, s.CacheLookups)
	}
	if s.CacheHitRate < 0 {
		t.Errorf("negative cache hit rate %v", s.CacheHitRate)
	}
	if s.ErrorRate < 0 {
		t.Errorf("negative error rate %v", s.ErrorRate)
	}
	// After the final rotation burst everything lives in the current second:
	// the whole window's counts must appear in the newest series slot.
	var seriesTotal int64
	for _, n := range s.QPSSeries {
		seriesTotal += n
	}
	if seriesTotal != s.Requests {
		t.Errorf("series total %d != requests %d", seriesTotal, s.Requests)
	}
}

// TestWindowConcurrent hammers one window from many goroutines across
// rotating seconds — the -race check for the atomic counters and the
// once-per-second reset.
func TestWindowConcurrent(t *testing.T) {
	w, sec := testWindow()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if g == 0 && i%50 == 0 {
					sec.Add(1)
				}
				w.Observe(time.Duration(i)*time.Microsecond, i%10 == 0, 1)
				w.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	s := w.Snapshot()
	if s.Requests == 0 || s.Requests > 8*500 {
		t.Errorf("requests %d out of range", s.Requests)
	}
}
