package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestHistogramPrometheusGolden locks the exposition format: any accidental
// change to metric names, label order or value rendering shows up as a diff
// against this golden prefix.
func TestHistogramPrometheusGolden(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)     // bucket 0: le 1e-06
	h.Observe(3 * time.Microsecond) // bucket 2: le 4e-06
	var buf strings.Builder
	h.WritePrometheus(&buf, "test_seconds", "Test latencies.")
	got := buf.String()
	wantPrefix := `# HELP test_seconds Test latencies.
# TYPE test_seconds histogram
test_seconds_bucket{le="1e-06"} 1
test_seconds_bucket{le="2e-06"} 1
test_seconds_bucket{le="4e-06"} 2
`
	if !strings.HasPrefix(got, wantPrefix) {
		t.Errorf("output does not start with golden prefix.\ngot:\n%s\nwant prefix:\n%s", got, wantPrefix)
	}
	for _, want := range []string{
		"\ntest_seconds_bucket{le=\"+Inf\"} 2\n",
		"\ntest_seconds_sum 4e-06\n",
		"\ntest_seconds_count 2\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", strings.TrimSpace(want), got)
		}
	}
}

func TestAggregatePrometheusGolden(t *testing.T) {
	var a Aggregate
	r := FromSim([]float64{3, 1}, []float64{0.1, 0.1}, 3.5)
	r.Tasks, r.Pieces, r.Partitioned, r.Steals = 10, 4, 2, 1
	// FromSim has no counters; re-derive after setting them is not needed —
	// the aggregate copies them verbatim.
	a.Observe(r)
	var buf strings.Builder
	a.Snapshot().WritePrometheus(&buf, "sched")
	got := buf.String()
	for _, want := range []string{
		"# TYPE sched_runs_total counter\nsched_runs_total 1\n",
		"sched_busy_seconds_total 4\n",
		"sched_overhead_seconds_total 0.2\n",
		`sched_kind_busy_seconds_total{kind="marginalize"} 0`,
		`sched_kind_busy_seconds_total{kind="multiply"} 0`,
		"sched_tasks_total 10\n",
		"sched_pieces_total 4\n",
		"sched_partitions_total 2\n",
		"sched_steals_total 1\n",
		"sched_load_balance 1.5\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Every sample line's metric name begins with the prefix.
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "sched_") {
			t.Errorf("sample without prefix: %q", line)
		}
	}
}

func TestWriteSampleEscaping(t *testing.T) {
	var buf strings.Builder
	WriteSample(&buf, "m", map[string]string{"b": "x", "a": `q"\`}, 1)
	// Labels render in sorted key order with escaped values.
	want := `m{a="q\"\\",b="x"} 1` + "\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		1:     "1",
		0.25:  "0.25",
		1e-06: "1e-06",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatValue(math.Inf(1)); got != "+Inf" {
		t.Errorf("+Inf renders as %q", got)
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("NaN renders as %q", got)
	}
}
