package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSamplerLatestAndRecent drives the ring through wraparound and checks
// ordering and sequence continuity.
func TestSamplerLatestAndRecent(t *testing.T) {
	var n atomic.Int64
	s := NewSampler(time.Hour, 4, func() int64 { return n.Add(1) })
	for i := 0; i < 7; i++ {
		s.sample()
	}
	last, ok := s.Latest()
	if !ok || last.Data != 7 || last.Seq != 6 {
		t.Fatalf("latest = %+v, ok=%v", last, ok)
	}
	r := s.Recent(10) // more than kept: capped at ring size
	if len(r) != 4 {
		t.Fatalf("recent returned %d samples, want 4", len(r))
	}
	for i, sm := range r {
		if want := int64(4 + i); sm.Data != want {
			t.Errorf("recent[%d].Data = %d, want %d (oldest first)", i, sm.Data, want)
		}
		if i > 0 && sm.Seq != r[i-1].Seq+1 {
			t.Errorf("sequence gap: %d after %d", sm.Seq, r[i-1].Seq)
		}
	}
}

// TestSamplerSubscribeAndStop: subscribers receive broadcast samples and
// their channels close when the sampler stops — the drain contract the SSE
// handler relies on.
func TestSamplerSubscribeAndStop(t *testing.T) {
	var n atomic.Int64
	s := NewSampler(time.Millisecond, 8, func() int64 { return n.Add(1) })
	s.Start()
	ch, cancel := s.Subscribe(16)
	defer cancel()
	select {
	case sm := <-ch:
		if sm.Data < 1 {
			t.Errorf("sample data %d", sm.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no sample within 2s")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range ch {
		}
	}()
	s.Stop()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber channel not closed on Stop")
	}
	// Subscribing after Stop yields an already-closed channel.
	ch2, cancel2 := s.Subscribe(1)
	defer cancel2()
	if _, ok := <-ch2; ok {
		t.Error("post-Stop subscription delivered a sample")
	}
}

// TestSamplerSlowSubscriberDoesNotStall: a full subscriber buffer drops
// samples instead of blocking the sampler or other subscribers.
func TestSamplerSlowSubscriberDoesNotStall(t *testing.T) {
	var n atomic.Int64
	s := NewSampler(time.Hour, 4, func() int64 { return n.Add(1) })
	slow, cancelSlow := s.Subscribe(1)
	defer cancelSlow()
	fast, cancelFast := s.Subscribe(16)
	defer cancelFast()
	for i := 0; i < 5; i++ {
		s.sample() // must not block even though slow's buffer fills at 1
	}
	if got := len(fast); got != 5 {
		t.Errorf("fast subscriber buffered %d samples, want 5", got)
	}
	if got := len(slow); got != 1 {
		t.Errorf("slow subscriber buffered %d samples, want 1 (rest dropped)", got)
	}
	first := <-slow
	if first.Seq != 0 {
		t.Errorf("slow subscriber kept seq %d, want the earliest (0)", first.Seq)
	}
}

// TestSamplerConcurrent exercises Start/sample/Subscribe/cancel/Stop under
// the race detector.
func TestSamplerConcurrent(t *testing.T) {
	var n atomic.Int64
	s := NewSampler(100*time.Microsecond, 16, func() int64 { return n.Add(1) })
	s.Start()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				ch, cancel := s.Subscribe(2)
				select {
				case <-ch:
				case <-time.After(10 * time.Millisecond):
				}
				cancel()
				s.Latest()
				s.Recent(8)
			}
		}()
	}
	wg.Wait()
	s.Stop()
	s.Stop()  // idempotent
	s.Start() // no-op after Stop
	if _, ok := s.Latest(); !ok {
		t.Error("latest lost after stop")
	}
}
