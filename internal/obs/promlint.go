package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintExposition checks a Prometheus text-exposition (0.0.4) payload for
// the conformance properties our hand-written writers promise:
//
//   - every sample line belongs to a metric family with # HELP and # TYPE
//     lines seen before its first sample;
//   - every histogram family ends its buckets with le="+Inf", the +Inf
//     cumulative count equals the family's _count, a _sum is present, and
//     cumulative bucket counts are non-decreasing in le order;
//   - every line parses (UTF-8 text, name{labels} value);
//   - every OpenMetrics exemplar trailer (`# {trace_id="…"} value [ts]`)
//     sits on a histogram _bucket line, its label set and value parse, and
//     a trace_id label is 32 lowercase hex chars.
//
// It returns a list of human-readable problems, empty when the payload
// conforms. It is a test helper, not a full scrape parser: timestamps and
// other OpenMetrics extensions are out of scope.
func LintExposition(r io.Reader) []string {
	var problems []string
	helps := map[string]bool{}
	types := map[string]string{}
	// Histogram series accounting per family.
	type histo struct {
		buckets map[float64]float64 // le -> cumulative count
		count   float64
		hasCnt  bool
		hasSum  bool
	}
	histos := map[string]*histo{}
	sampled := map[string]bool{}

	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && types[base] == "histogram" {
				return base
			}
		}
		return name
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 3 {
				problems = append(problems, fmt.Sprintf("line %d: malformed HELP", lineNo))
				continue
			}
			helps[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				problems = append(problems, fmt.Sprintf("line %d: malformed TYPE", lineNo))
				continue
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		sample, exemplar := line, ""
		if i := strings.Index(line, " # "); i >= 0 {
			sample, exemplar = line[:i], line[i+3:]
		}
		name, labels, value, err := parseSampleLine(sample)
		if err != nil {
			problems = append(problems, fmt.Sprintf("line %d: %v", lineNo, err))
			continue
		}
		fam := family(name)
		if exemplar != "" {
			if types[fam] != "histogram" || !strings.HasSuffix(name, "_bucket") {
				problems = append(problems, fmt.Sprintf("line %d: exemplar on %s, allowed only on histogram _bucket series", lineNo, name))
			}
			if p := lintExemplar(exemplar); p != "" {
				problems = append(problems, fmt.Sprintf("line %d: %s", lineNo, p))
			}
		}
		if !sampled[fam] {
			sampled[fam] = true
			if !helps[fam] {
				problems = append(problems, fmt.Sprintf("line %d: series %s has no # HELP %s", lineNo, name, fam))
			}
			if _, ok := types[fam]; !ok {
				problems = append(problems, fmt.Sprintf("line %d: series %s has no # TYPE %s", lineNo, name, fam))
			}
		}
		if types[fam] == "histogram" {
			h := histos[fam]
			if h == nil {
				h = &histo{buckets: map[float64]float64{}}
				histos[fam] = h
			}
			switch name {
			case fam + "_bucket":
				le, ok := labels["le"]
				if !ok {
					problems = append(problems, fmt.Sprintf("line %d: %s_bucket without le label", lineNo, fam))
					continue
				}
				b, err := parseLe(le)
				if err != nil {
					problems = append(problems, fmt.Sprintf("line %d: bad le %q", lineNo, le))
					continue
				}
				h.buckets[b] = value
			case fam + "_sum":
				h.hasSum = true
			case fam + "_count":
				h.hasCnt = true
				h.count = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("read: %v", err))
	}

	fams := make([]string, 0, len(histos))
	for fam := range histos {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		h := histos[fam]
		inf, ok := h.buckets[math.Inf(1)]
		if !ok {
			problems = append(problems, fmt.Sprintf("histogram %s: no terminal +Inf bucket", fam))
		}
		if !h.hasSum {
			problems = append(problems, fmt.Sprintf("histogram %s: missing _sum", fam))
		}
		if !h.hasCnt {
			problems = append(problems, fmt.Sprintf("histogram %s: missing _count", fam))
		} else if ok && h.count != inf {
			problems = append(problems, fmt.Sprintf("histogram %s: _count %g != +Inf bucket %g", fam, h.count, inf))
		}
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		for i := 1; i < len(les); i++ {
			if h.buckets[les[i]] < h.buckets[les[i-1]] {
				problems = append(problems, fmt.Sprintf("histogram %s: cumulative count decreases at le=%s", fam, formatValue(les[i])))
			}
		}
	}
	return problems
}

func parseLe(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSampleLine splits `name{k="v",...} value` (labels optional) into its
// parts, undoing the exposition format's label-value escaping.
func parseSampleLine(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("no value separator in %q", line)
	} else {
		name = rest[:i]
		rest = rest[i:]
	}
	if name == "" {
		return "", nil, 0, fmt.Errorf("empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		labels, rest, err = parseLabelSet(rest)
		if err != nil {
			return "", nil, 0, fmt.Errorf("%v in %q", err, line)
		}
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; our writers never
	// emit one, so only the first field must parse as the value.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseLe(rest) // same spelling rules as le values (+Inf etc.)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q in %q", rest, line)
	}
	return name, labels, v, nil
}

// parseLabelSet parses a leading `{k="v",...}` group, returning the labels
// and whatever follows the closing brace.
func parseLabelSet(s string) (labels map[string]string, rest string, err error) {
	labels = map[string]string{}
	rest = s[1:]
	for {
		rest = strings.TrimLeft(rest, ",")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 || !strings.HasPrefix(rest[eq+1:], `"`) {
			return nil, "", fmt.Errorf("malformed label")
		}
		key := rest[:eq]
		rest = rest[eq+2:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c", rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, "", fmt.Errorf("unterminated label value")
		}
		labels[key] = b.String()
	}
}

// lintExemplar validates the part of a sample line after "# ": an
// OpenMetrics exemplar, `{label="v",...} value [timestamp]`.
func lintExemplar(s string) string {
	if !strings.HasPrefix(s, "{") {
		return fmt.Sprintf("exemplar %q: no label set", s)
	}
	labels, rest, err := parseLabelSet(s)
	if err != nil {
		return fmt.Sprintf("exemplar %q: %v", s, err)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Sprintf("exemplar %q: want `value [timestamp]` after the label set, got %d fields", s, len(fields))
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Sprintf("exemplar %q: bad value %q", s, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Sprintf("exemplar %q: bad timestamp %q", s, fields[1])
		}
	}
	if tid, ok := labels["trace_id"]; ok && !isHexTraceID(tid) {
		return fmt.Sprintf("exemplar trace_id %q is not 32 lowercase hex chars", tid)
	}
	return ""
}

// isHexTraceID reports whether s is a 32-char lowercase-hex W3C trace ID.
func isHexTraceID(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
