package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"evprop/internal/sched"
)

// FlightRecorder is the always-on black box of the serving stack: a
// fixed-size lock-free ring of recent query summaries plus an automatic
// slow-query capture that retains the full scheduler trace of any
// propagation exceeding a latency threshold. It answers "why was *that*
// query slow?" after the fact — no flag, no restart, no re-run.
//
// The hot path (RecordRun) is wait-free for the summary ring: one atomic
// cursor add and one atomic pointer store, so concurrent propagations never
// serialize on the recorder. Only the rare slow-capture path takes a mutex.
type FlightRecorder struct {
	slots  []atomic.Pointer[QueryRecord]
	cursor atomic.Uint64 // next sequence number

	// hist accumulates all recorded latencies; it feeds the adaptive
	// (p99-relative) slow threshold.
	hist Histogram
	// floorNs is the flag-set slow threshold in ns. >0 pins the threshold;
	// 0 selects the adaptive rule (slowFactor × p99 once enough samples).
	floorNs int64

	slowMu    sync.Mutex
	slow      []SlowCapture // ring of the most recent slow captures
	slowNext  int
	slowTotal atomic.Int64
}

const (
	// defaultRecorderSize is the summary-ring capacity when unset.
	defaultRecorderSize = 256
	// slowCaptureCap bounds retained slow captures (each may hold a trace).
	slowCaptureCap = 16
	// slowMinSamples gates the adaptive threshold: below this count p99 is
	// noise and nothing is captured.
	slowMinSamples = 64
	// slowFactor scales p99 into the adaptive threshold.
	slowFactor = 2
)

// QueryRecord is one propagation's summary in the recorder ring.
type QueryRecord struct {
	// Seq is the record's position in the recorder's lifetime sequence.
	Seq uint64
	// ID is the query ID threaded through the propagation's context.
	ID string
	// Time is when the propagation completed.
	Time time.Time
	// Mode names the run: "sum-product", "max-product" or "collect" (the
	// taskgraph.Mode string for full propagations).
	Mode string
	// EvidenceVars is the number of observed variables.
	EvidenceVars int
	// Elapsed is the propagation's wall-clock time.
	Elapsed time.Duration
	// Workers and Tasks describe the scheduler run (zero for schedulers
	// that report no metrics).
	Workers int
	Tasks   int
	// LoadBalance and OverheadFraction are the run's Fig. 8 gauges.
	LoadBalance      float64
	OverheadFraction float64
	// Err is the propagation failure, "" on success.
	Err string
	// Slow marks records that crossed the capture threshold.
	Slow bool
	// Cached marks queries served from the shared-evidence result cache
	// (a hit, or a singleflight waiter collapsed onto another caller's
	// propagation): no scheduler ran for them.
	Cached bool
	// Lazy marks runs executed by the zero-aware lazy engine; the pruning
	// counters below then explain where the propagation's work went
	// (lazy.Stats semantics: messages by fate, flops vs one eager
	// two-pass), so a slow lazy query is explainable straight from the
	// recorder without a trace.
	Lazy             bool
	LazyMsgSent      int64
	LazyMsgBlocked   int64
	LazyMsgSkipped   int64
	LazyFlops        int64
	LazyFlopsFull    int64
	LazyMaterialized int64
	// EvidenceSig is the canonical signature of the run's inputs (the
	// result-cache key): the handle that correlates identical queries and
	// lets audit replay match a record to its evidence configuration.
	EvidenceSig string
	// Evidence is the full observed-variable map (internal ids), retained
	// only when the engine records evidence (audit mode) — it is the one
	// field whose size the client controls.
	Evidence map[int]int
}

// SlowCapture retains everything known about one slow propagation: the
// summary, the Fig. 8 per-worker report, and the full scheduler trace when
// the run was traced.
type SlowCapture struct {
	Record QueryRecord
	// Threshold is the capture threshold in force when the run crossed it.
	Threshold time.Duration
	// Report is the per-worker run report (nil when the scheduler reported
	// no metrics).
	Report *Report
	// Trace is the run's execution timeline (nil when untraced).
	Trace *sched.Trace
}

// NewFlightRecorder returns a recorder with the given summary-ring capacity
// (0 or negative selects the default) and slow threshold floor (0 selects
// the adaptive p99-relative threshold).
func NewFlightRecorder(size int, slowFloor time.Duration) *FlightRecorder {
	if size <= 0 {
		size = defaultRecorderSize
	}
	return &FlightRecorder{
		slots:   make([]atomic.Pointer[QueryRecord], size),
		floorNs: slowFloor.Nanoseconds(),
	}
}

// RunInfo is what the engine knows about a finished propagation beyond the
// scheduler metrics.
type RunInfo struct {
	ID           string
	Mode         string
	EvidenceVars int
	Elapsed      time.Duration
	Err          error
	// Cached marks a query served without a propagation (cache hit or
	// collapsed singleflight waiter). Cached records land in the ring but
	// stay out of the latency histogram — sub-microsecond lookups must not
	// drag the adaptive slow threshold down to where every real
	// propagation reads as slow — and are never captured as slow.
	Cached bool
	// EvidenceSig and Evidence land in the record verbatim; see
	// QueryRecord. The recorder owns Evidence after RecordRun.
	EvidenceSig string
	Evidence    map[int]int
	// Lazy pruning counters, copied into the record verbatim; Lazy false
	// leaves them zero (eager run). See QueryRecord.
	Lazy             bool
	LazyMsgSent      int64
	LazyMsgBlocked   int64
	LazyMsgSkipped   int64
	LazyFlops        int64
	LazyFlopsFull    int64
	LazyMaterialized int64
}

// SlowThreshold returns the capture threshold currently in force: the
// flag-set floor when one was configured, otherwise slowFactor × the
// observed p99 once slowMinSamples latencies have been recorded. 0 means no
// capture yet (adaptive threshold still warming up).
func (fr *FlightRecorder) SlowThreshold() time.Duration {
	if fr.floorNs > 0 {
		return time.Duration(fr.floorNs)
	}
	if fr.hist.Count() < slowMinSamples {
		return 0
	}
	return slowFactor * fr.hist.Quantile(0.99)
}

// RecordRun folds one finished propagation into the ring, capturing the run
// report and trace when it crossed the slow threshold. It reports whether
// the run was captured as slow — if not, the caller owns m.Trace and may
// recycle it.
func (fr *FlightRecorder) RecordRun(info RunInfo, m *sched.Metrics) (slow bool) {
	rec := &QueryRecord{
		ID:           info.ID,
		Time:         time.Now(),
		Mode:         info.Mode,
		EvidenceVars: info.EvidenceVars,
		Elapsed:      info.Elapsed,
		Cached:       info.Cached,
		EvidenceSig:  info.EvidenceSig,
		Evidence:     info.Evidence,
	}
	if info.Lazy {
		rec.Lazy = true
		rec.LazyMsgSent = info.LazyMsgSent
		rec.LazyMsgBlocked = info.LazyMsgBlocked
		rec.LazyMsgSkipped = info.LazyMsgSkipped
		rec.LazyFlops = info.LazyFlops
		rec.LazyFlopsFull = info.LazyFlopsFull
		rec.LazyMaterialized = info.LazyMaterialized
	}
	if info.Err != nil {
		rec.Err = info.Err.Error()
	}
	if m != nil {
		rec.Workers = len(m.Workers)
		rec.Tasks = m.Tasks
		var busy, overhead, max time.Duration
		for _, wm := range m.Workers {
			busy += wm.Busy
			overhead += wm.Overhead
			if wm.Busy > max {
				max = wm.Busy
			}
		}
		if busy > 0 && rec.Workers > 0 {
			rec.LoadBalance = float64(max) * float64(rec.Workers) / float64(busy)
		} else {
			rec.LoadBalance = 1
		}
		if busy+overhead > 0 {
			rec.OverheadFraction = float64(overhead) / float64(busy+overhead)
		}
	}
	if !info.Cached {
		thr := fr.SlowThreshold()
		fr.hist.Observe(info.Elapsed)
		if thr > 0 && info.Elapsed > thr {
			rec.Slow = true
			fr.captureSlow(rec, thr, m)
		}
	}
	seq := fr.cursor.Add(1) - 1
	rec.Seq = seq
	fr.slots[seq%uint64(len(fr.slots))].Store(rec)
	return rec.Slow
}

// captureSlow retains the full run detail in the slow ring. Slow runs are
// rare by construction (beyond the p99), so a mutex is fine here.
func (fr *FlightRecorder) captureSlow(rec *QueryRecord, thr time.Duration, m *sched.Metrics) {
	sc := SlowCapture{Record: *rec, Threshold: thr}
	if m != nil {
		sc.Report = FromSched(m)
		sc.Trace = m.Trace
		// A recorder-armed trace arrives with its merge deferred; keeping
		// it means paying for the merge now (rare by construction).
		sc.Trace.Finalize()
	}
	fr.slowTotal.Add(1)
	fr.slowMu.Lock()
	defer fr.slowMu.Unlock()
	if len(fr.slow) < slowCaptureCap {
		fr.slow = append(fr.slow, sc)
		return
	}
	fr.slow[fr.slowNext] = sc
	fr.slowNext = (fr.slowNext + 1) % slowCaptureCap
}

// Snapshot returns the ring's current records ordered oldest to newest. The
// copy is taken slot by slot with atomic loads, so it is safe against
// concurrent writers; records overwritten mid-snapshot appear with their new
// content.
func (fr *FlightRecorder) Snapshot() []QueryRecord {
	out := make([]QueryRecord, 0, len(fr.slots))
	for i := range fr.slots {
		if rec := fr.slots[i].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// SlowSnapshot returns the retained slow captures ordered oldest to newest.
func (fr *FlightRecorder) SlowSnapshot() []SlowCapture {
	fr.slowMu.Lock()
	defer fr.slowMu.Unlock()
	out := make([]SlowCapture, 0, len(fr.slow))
	out = append(out, fr.slow[fr.slowNext:]...)
	out = append(out, fr.slow[:fr.slowNext]...)
	return out
}

// Total returns how many runs have been recorded over the recorder's
// lifetime (≥ the ring size once it wrapped).
func (fr *FlightRecorder) Total() int64 { return int64(fr.cursor.Load()) }

// SlowTotal returns how many runs crossed the slow threshold (≥ the
// retained captures once the slow ring wrapped).
func (fr *FlightRecorder) SlowTotal() int64 { return fr.slowTotal.Load() }

// Size returns the summary-ring capacity.
func (fr *FlightRecorder) Size() int { return len(fr.slots) }
