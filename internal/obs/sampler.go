package obs

import (
	"sync"
	"time"
)

// Sample is one timestamped observation taken by a Sampler.
type Sample[T any] struct {
	// Seq increments by one per sample, so consumers can detect drops.
	Seq int64
	// At is when the sample was taken.
	At time.Time
	// Data is the sampled value.
	Data T
}

// Sampler periodically calls a wait-free snapshot function on its own
// goroutine, keeps a bounded ring of recent samples, and fans each sample
// out to subscribers. It is the bridge between the scheduler's lock-free
// gauge surface and push consumers like evserve's /v1/stream: the sampled
// side pays nothing (the snapshot function must not block), and slow
// subscribers lose samples rather than ever stalling the sampler.
type Sampler[T any] struct {
	interval time.Duration
	take     func() T

	mu      sync.Mutex
	ring    []Sample[T]
	next    int   // ring write cursor
	count   int   // valid entries in ring
	seq     int64 // next sequence number
	subs    map[chan Sample[T]]struct{}
	stop    chan struct{}
	started bool
	stopped bool
	wg      sync.WaitGroup
}

// NewSampler builds a sampler that calls take every interval and keeps the
// most recent keep samples. Call Start to begin sampling.
func NewSampler[T any](interval time.Duration, keep int, take func() T) *Sampler[T] {
	if interval <= 0 {
		interval = time.Second
	}
	if keep < 1 {
		keep = 1
	}
	return &Sampler[T]{
		interval: interval,
		take:     take,
		ring:     make([]Sample[T], keep),
		subs:     make(map[chan Sample[T]]struct{}),
		stop:     make(chan struct{}),
	}
}

// Start takes an immediate first sample (so Latest works right away) and
// launches the sampling goroutine. Start is idempotent; starting a stopped
// sampler does nothing.
func (s *Sampler[T]) Start() {
	s.mu.Lock()
	if s.started || s.stopped {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.sample()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.sample()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts sampling and closes every subscriber channel, waking blocked
// range loops so SSE handlers drain promptly on shutdown. Idempotent.
func (s *Sampler[T]) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stop)
	subs := s.subs
	s.subs = make(map[chan Sample[T]]struct{})
	s.mu.Unlock()
	s.wg.Wait()
	for ch := range subs {
		close(ch)
	}
}

// sample takes one observation, appends it to the ring and broadcasts it.
func (s *Sampler[T]) sample() {
	sm := Sample[T]{At: time.Now(), Data: s.take()}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	sm.Seq = s.seq
	s.seq++
	s.ring[s.next] = sm
	s.next = (s.next + 1) % len(s.ring)
	if s.count < len(s.ring) {
		s.count++
	}
	for ch := range s.subs {
		select {
		case ch <- sm:
		default: // slow subscriber: drop rather than stall the sampler
		}
	}
	s.mu.Unlock()
}

// Latest returns the most recent sample, if any has been taken.
func (s *Sampler[T]) Latest() (Sample[T], bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return Sample[T]{}, false
	}
	return s.ring[(s.next-1+len(s.ring))%len(s.ring)], true
}

// Recent returns up to n samples, oldest first.
func (s *Sampler[T]) Recent(n int) []Sample[T] {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.count {
		n = s.count
	}
	out := make([]Sample[T], 0, n)
	for i := s.count - n; i < s.count; i++ {
		out = append(out, s.ring[(s.next-s.count+i+2*len(s.ring))%len(s.ring)])
	}
	return out
}

// Subscribe registers a buffered sample channel and returns it with a
// cancel function. The channel closes when the subscriber cancels or the
// sampler stops; a subscriber that falls buf samples behind misses the
// overflow (detectable via Sample.Seq gaps) instead of blocking anyone.
func (s *Sampler[T]) Subscribe(buf int) (<-chan Sample[T], func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Sample[T], buf)
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		_, ok := s.subs[ch]
		delete(s.subs, ch)
		s.mu.Unlock()
		if ok {
			close(ch)
		}
	}
	return ch, cancel
}
