package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// OTLP/JSON-over-HTTP export: kept traces are marshaled into the
// OpenTelemetry OTLP JSON shape (resourceSpans → scopeSpans → spans) by
// hand — no SDK dependency — and POSTed to a collector's /v1/traces
// endpoint from a single background goroutine with bounded queueing,
// retry with exponential backoff, and explicit drop counters. The hot
// path pays one non-blocking channel send per kept trace.

// otlp wire structs (the JSON field names are fixed by the OTLP spec;
// nanosecond timestamps are strings per protobuf-JSON int64 encoding).
type otlpExportRequest struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpAttr `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID      string      `json:"traceId"`
	SpanID       string      `json:"spanId"`
	ParentSpanID string      `json:"parentSpanId,omitempty"`
	Name         string      `json:"name"`
	Kind         int         `json:"kind"`
	Start        string      `json:"startTimeUnixNano"`
	End          string      `json:"endTimeUnixNano"`
	Attributes   []otlpAttr  `json:"attributes,omitempty"`
	Status       *otlpStatus `json:"status,omitempty"`
}

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	Str    *string  `json:"stringValue,omitempty"`
	Int    *string  `json:"intValue,omitempty"` // int64 as string, per spec
	Double *float64 `json:"doubleValue,omitempty"`
	Bool   *bool    `json:"boolValue,omitempty"`
}

type otlpStatus struct {
	Code    int    `json:"code"` // 2 = STATUS_CODE_ERROR
	Message string `json:"message,omitempty"`
}

const (
	otlpKindServer   = 2
	otlpKindInternal = 1
	otlpStatusError  = 2
)

func otlpAttrOf(a Attr) otlpAttr {
	v := otlpValue{}
	switch a.Kind {
	case AttrString:
		v.Str = &a.Str
	case AttrInt:
		s := strconv.FormatInt(a.Int, 10)
		v.Int = &s
	case AttrFloat:
		v.Double = &a.F64
	case AttrBool:
		v.Bool = &a.Bool
	}
	return otlpAttr{Key: a.Key, Value: v}
}

// MarshalOTLP renders traces as one OTLP/JSON ExportTraceServiceRequest.
// The first span of each trace (the root, by construction) is marked
// SPAN_KIND_SERVER; all others SPAN_KIND_INTERNAL.
func MarshalOTLP(service string, traces []*TraceData) ([]byte, error) {
	scope := otlpScopeSpans{Scope: otlpScope{Name: "evprop"}}
	for _, td := range traces {
		tid := td.TraceID.String()
		for i, sd := range td.Spans {
			sp := otlpSpan{
				TraceID: tid,
				SpanID:  sd.SpanID.String(),
				Name:    sd.Name,
				Kind:    otlpKindInternal,
				Start:   strconv.FormatInt(sd.Start.UnixNano(), 10),
				End:     strconv.FormatInt(sd.Start.Add(sd.Duration).UnixNano(), 10),
			}
			if i == 0 {
				sp.Kind = otlpKindServer
			}
			if sd.Parent.IsValid() {
				sp.ParentSpanID = sd.Parent.String()
			}
			for _, a := range sd.Attrs {
				sp.Attributes = append(sp.Attributes, otlpAttrOf(a))
			}
			if sd.Status != "" {
				sp.Status = &otlpStatus{Code: otlpStatusError, Message: sd.Status}
			}
			scope.Spans = append(scope.Spans, sp)
		}
	}
	req := otlpExportRequest{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpAttr{
			otlpAttrOf(String("service.name", service)),
		}},
		ScopeSpans: []otlpScopeSpans{scope},
	}}}
	return json.Marshal(req)
}

// Exporter pushes kept traces to an OTLP/HTTP collector in the
// background. Enqueue never blocks: a full queue increments the drop
// counter instead of stalling the request path.
type Exporter struct {
	endpoint string
	service  string
	client   *http.Client
	queue    chan *TraceData
	done     chan struct{}

	// Retry policy: attempts POSTs per batch with exponential backoff
	// starting at backoff.
	attempts int
	backoff  time.Duration

	exported atomic.Int64 // spans successfully exported
	dropped  atomic.Int64 // spans dropped (full queue or exhausted retries)
	retries  atomic.Int64 // POSTs retried
}

// ExporterStats is a snapshot of the exporter's counters.
type ExporterStats struct {
	Endpoint string `json:"endpoint"`
	Exported int64  `json:"exported_spans"`
	Dropped  int64  `json:"dropped_spans"`
	Retries  int64  `json:"retries"`
}

// NewExporter starts a background exporter POSTing OTLP/JSON to endpoint
// (a full URL, e.g. http://collector:4318/v1/traces). service names the
// resource; "" defaults to "evserve".
func NewExporter(endpoint, service string) *Exporter {
	if service == "" {
		service = "evserve"
	}
	e := &Exporter{
		endpoint: endpoint,
		service:  service,
		client:   &http.Client{Timeout: 5 * time.Second},
		queue:    make(chan *TraceData, 256),
		done:     make(chan struct{}),
		attempts: 3,
		backoff:  100 * time.Millisecond,
	}
	go e.run()
	return e
}

// Enqueue offers a kept trace for export without blocking.
func (e *Exporter) Enqueue(td *TraceData) {
	if e == nil {
		return
	}
	select {
	case e.queue <- td:
	default:
		e.dropped.Add(int64(len(td.Spans)))
	}
}

// Stats snapshots the exporter's counters.
func (e *Exporter) Stats() ExporterStats {
	if e == nil {
		return ExporterStats{}
	}
	return ExporterStats{
		Endpoint: e.endpoint,
		Exported: e.exported.Load(),
		Dropped:  e.dropped.Load(),
		Retries:  e.retries.Load(),
	}
}

// Close stops the exporter after flushing whatever is already queued.
func (e *Exporter) Close() {
	if e == nil {
		return
	}
	close(e.queue)
	select {
	case <-e.done:
	case <-time.After(3 * time.Second):
	}
}

// run drains the queue, batching adjacent traces into one POST.
func (e *Exporter) run() {
	defer close(e.done)
	for td, ok := <-e.queue; ok; {
		batch := []*TraceData{td}
	gather:
		for len(batch) < 32 {
			select {
			case next, more := <-e.queue:
				if !more {
					e.send(batch)
					return
				}
				batch = append(batch, next)
			default:
				break gather
			}
		}
		e.send(batch)
		td, ok = <-e.queue
	}
}

func (e *Exporter) send(batch []*TraceData) {
	spans := 0
	for _, td := range batch {
		spans += len(td.Spans)
	}
	body, err := MarshalOTLP(e.service, batch)
	if err != nil {
		e.dropped.Add(int64(spans))
		return
	}
	delay := e.backoff
	for attempt := 0; attempt < e.attempts; attempt++ {
		if attempt > 0 {
			e.retries.Add(1)
			time.Sleep(delay)
			delay *= 2
		}
		resp, err := e.client.Post(e.endpoint, "application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		resp.Body.Close()
		// Retry only transient server-side failures.
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			e.exported.Add(int64(spans))
			return
		}
		break // 4xx: our payload's fault, retrying won't help
	}
	e.dropped.Add(int64(spans))
}

// LintOTLP validates an OTLP/JSON payload against the span-field rules a
// collector enforces, promlint-style: returns human-readable problems,
// empty when conformant. Checked per span: 32-hex lowercase traceId,
// 16-hex lowercase spanId (≠ all zeros), parentSpanId absent or 16-hex,
// non-empty name, numeric string nanosecond timestamps with end ≥ start,
// and attribute values carrying exactly one typed field.
func LintOTLP(payload []byte) []string {
	var req otlpExportRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return []string{fmt.Sprintf("payload does not parse as OTLP/JSON: %v", err)}
	}
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if len(req.ResourceSpans) == 0 {
		addf("no resourceSpans")
	}
	for ri, rs := range req.ResourceSpans {
		for si, ss := range rs.ScopeSpans {
			for pi, sp := range ss.Spans {
				at := fmt.Sprintf("resourceSpans[%d].scopeSpans[%d].spans[%d]", ri, si, pi)
				if !validHexID(sp.TraceID, 32) {
					addf("%s: traceId %q is not 32 lowercase hex chars", at, sp.TraceID)
				}
				if !validHexID(sp.SpanID, 16) {
					addf("%s: spanId %q is not 16 lowercase hex chars", at, sp.SpanID)
				}
				if sp.ParentSpanID != "" && !validHexID(sp.ParentSpanID, 16) {
					addf("%s: parentSpanId %q is not 16 lowercase hex chars", at, sp.ParentSpanID)
				}
				if sp.Name == "" {
					addf("%s: empty span name", at)
				}
				start, err1 := strconv.ParseInt(sp.Start, 10, 64)
				end, err2 := strconv.ParseInt(sp.End, 10, 64)
				if err1 != nil || err2 != nil {
					addf("%s: timestamps %q/%q are not int64 strings", at, sp.Start, sp.End)
				} else if end < start {
					addf("%s: endTimeUnixNano %d before startTimeUnixNano %d", at, end, start)
				}
				for ai, a := range sp.Attributes {
					if a.Key == "" {
						addf("%s.attributes[%d]: empty key", at, ai)
					}
					n := 0
					for _, set := range []bool{a.Value.Str != nil, a.Value.Int != nil, a.Value.Double != nil, a.Value.Bool != nil} {
						if set {
							n++
						}
					}
					if n != 1 {
						addf("%s.attributes[%d] (%s): %d value fields set, want exactly 1", at, ai, a.Key, n)
					}
				}
			}
		}
	}
	return problems
}

func validHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}
