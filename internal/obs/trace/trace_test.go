package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func testTracer() *Tracer {
	return &Tracer{Store: NewStore(16)}
}

// keepAll returns a tracer that keeps every trace (rate 1 head sampling).
func keepAll() *Tracer {
	return &Tracer{SampleRate: 1, Store: NewStore(16)}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Flags: FlagSampled, State: "vendor=1"}
	copy(sc.TraceID[:], []byte("0123456789abcdef"))
	copy(sc.SpanID[:], []byte("ABCDEFGH"))
	tp := sc.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("bad traceparent %q", tp)
	}
	got, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", tp)
	}
	if got.TraceID != sc.TraceID || got.SpanID != sc.SpanID || got.Flags != sc.Flags {
		t.Errorf("round trip mismatch: %+v vs %+v", got, sc)
	}
	if !got.Sampled() {
		t.Error("sampled flag lost")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x", // bad flags
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
	// A future version with a longer tail parses (forward compatibility).
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what-ever"
	if _, ok := ParseTraceparent(future); !ok {
		t.Errorf("ParseTraceparent(%q) rejected future version", future)
	}
}

func TestSpanTreeRecording(t *testing.T) {
	tr := keepAll()
	arena, root := tr.StartRequest("request", SpanContext{})
	child := root.StartChild("cache.lookup", Bool("cache.hit", false))
	grand := child.StartChild("propagate", String("scheduler", "collaborative"))
	grand.SetAttr(Int("tasks", 42))
	grand.End()
	child.End()
	root.ChildInterval("kind.marginalize", time.Now().Add(-time.Millisecond), time.Millisecond)
	root.End()
	id := root.TraceID()
	tr.Finish(arena, root)

	td := tr.Store.Get(id)
	if td == nil {
		t.Fatal("trace not kept")
	}
	if td.Reason != "head" {
		t.Errorf("reason = %q, want head", td.Reason)
	}
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	if byName["cache.lookup"].Parent != byName["request"].SpanID {
		t.Error("cache.lookup not a child of request")
	}
	if byName["propagate"].Parent != byName["cache.lookup"].SpanID {
		t.Error("propagate not a child of cache.lookup")
	}
	if byName["kind.marginalize"].Parent != byName["request"].SpanID {
		t.Error("interval child mis-parented")
	}
	if byName["kind.marginalize"].Duration != time.Millisecond {
		t.Errorf("interval duration = %v", byName["kind.marginalize"].Duration)
	}
	attrs := byName["propagate"].Attrs
	if len(attrs) != 2 || attrs[0].Str != "collaborative" || attrs[1].Int != 42 {
		t.Errorf("propagate attrs = %+v", attrs)
	}
	// Span IDs must be unique and non-zero.
	seen := map[SpanID]bool{}
	for _, s := range td.Spans {
		if !s.SpanID.IsValid() || seen[s.SpanID] {
			t.Errorf("span id %v invalid or duplicated", s.SpanID)
		}
		seen[s.SpanID] = true
	}
}

func TestCallerParentPreserved(t *testing.T) {
	parent, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("parse")
	}
	parent.State = "congo=t61rcWkgMzE"
	tr := testTracer()
	arena, root := tr.StartRequest("request", parent)
	if root.TraceID() != parent.TraceID {
		t.Errorf("trace id not adopted: %v", root.TraceID())
	}
	root.End()
	tr.Finish(arena, root)
	td := tr.Store.Get(parent.TraceID)
	if td == nil {
		t.Fatal("flagged trace not kept")
	}
	if td.Reason != "flagged" {
		t.Errorf("reason = %q, want flagged", td.Reason)
	}
	if td.State != parent.State {
		t.Errorf("tracestate lost: %q", td.State)
	}
	if td.Spans[0].Parent != parent.SpanID {
		t.Errorf("root parent = %v, want caller's span id %v", td.Spans[0].Parent, parent.SpanID)
	}
}

func TestTailSamplingPolicy(t *testing.T) {
	t.Run("unsampled_dropped", func(t *testing.T) {
		tr := testTracer()
		arena, root := tr.StartRequest("request", SpanContext{})
		root.End()
		tr.Finish(arena, root)
		if n := tr.Store.Len(); n != 0 {
			t.Errorf("store has %d traces, want 0", n)
		}
	})
	t.Run("error_kept", func(t *testing.T) {
		tr := testTracer()
		arena, root := tr.StartRequest("request", SpanContext{})
		root.Fail("boom")
		root.End()
		id := arena.ID()
		tr.Finish(arena, root)
		td := tr.Store.Get(id)
		if td == nil || td.Reason != "error" {
			t.Fatalf("errored trace not kept as error: %+v", td)
		}
		if td.Spans[0].Status != "boom" {
			t.Errorf("status = %q", td.Spans[0].Status)
		}
	})
	t.Run("slow_kept", func(t *testing.T) {
		tr := testTracer()
		tr.Slow = func() time.Duration { return time.Nanosecond }
		arena, root := tr.StartRequest("request", SpanContext{})
		time.Sleep(time.Millisecond)
		root.End()
		id := arena.ID()
		tr.Finish(arena, root)
		td := tr.Store.Get(id)
		if td == nil || td.Reason != "slow" {
			t.Fatalf("slow trace not kept as slow: %+v", td)
		}
	})
	t.Run("head_deterministic", func(t *testing.T) {
		tr := &Tracer{SampleRate: 0.5}
		id := NewTraceID()
		first := tr.headSampled(id)
		for i := 0; i < 10; i++ {
			if tr.headSampled(id) != first {
				t.Fatal("head sampling not deterministic per trace id")
			}
		}
	})
}

// TestArenaRecycledWhenQuiescent: a cleanly finished request's arena goes
// back to the pool (observable via gen bump making the old handle inert).
func TestArenaRecycledWhenQuiescent(t *testing.T) {
	tr := testTracer()
	arena, root := tr.StartRequest("request", SpanContext{})
	gen := arena.gen.Load()
	root.End()
	tr.Finish(arena, root)
	if arena.gen.Load() != gen+1 {
		t.Fatal("quiescent arena was not recycled")
	}
	// A stale span handle must be inert after recycle.
	root.End()
	root.SetAttr(String("late", "write"))
	root.Fail("late")
	if arena.n.Load() != 0 {
		t.Error("stale handle disturbed recycled arena")
	}
}

// TestDetachedSpanAbandonsArena is the PR 3 corruption class applied to
// spans: a span still open when the request finishes (a detached
// coalesced leader, a cancelled run's straggler) must keep the arena out
// of the pool, and its late End must not corrupt anything.
func TestDetachedSpanAbandonsArena(t *testing.T) {
	tr := keepAll()
	arena, root := tr.StartRequest("request", SpanContext{})
	detached := root.StartChild("coalesced.leader")
	root.End()
	gen := arena.gen.Load()
	tr.Finish(arena, root)
	if arena.gen.Load() != gen {
		t.Fatal("arena with an open span was recycled")
	}
	// The kept snapshot excludes the half-open span.
	td := tr.Store.Get(arena.ID())
	if td == nil {
		t.Fatal("trace not kept")
	}
	for _, s := range td.Spans {
		if s.Name == "coalesced.leader" {
			t.Error("unended span leaked into the snapshot")
		}
	}
	// The straggler ends late: harmless, and new children are refused.
	detached.End()
	if sp := detached.StartChild("late"); sp != nil {
		t.Error("StartChild on a sealed trace returned a live span")
	}
}

// TestConcurrentSpansUnderRace hammers one arena from many goroutines
// while the request finishes concurrently — the recycling race the sealed
// flag + refs count must win. Run with -race.
func TestConcurrentSpansUnderRace(t *testing.T) {
	tr := keepAll()
	for iter := 0; iter < 200; iter++ {
		arena, root := tr.StartRequest("request", SpanContext{})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				sp := root.StartChild("worker", Int("g", int64(g)))
				sp.SetAttr(Bool("done", true))
				sp.End()
			}(g)
		}
		// Finish races the workers: some spans land before the seal, some
		// after (inert). Either way no corruption and no deadlock.
		root.End()
		tr.Finish(arena, root)
		wg.Wait()
	}
}

// TestArenaOverflowDrops: spans beyond capacity are counted, not stored.
func TestArenaOverflowDrops(t *testing.T) {
	tr := keepAll()
	arena, root := tr.StartRequest("request", SpanContext{})
	for i := 0; i < maxSpans+10; i++ {
		sp := root.StartChild("s")
		sp.End()
	}
	root.End()
	id := arena.ID()
	tr.Finish(arena, root)
	td := tr.Store.Get(id)
	if td == nil {
		t.Fatal("not kept")
	}
	if td.Dropped != 11 { // 10 over capacity + root took a slot
		t.Errorf("dropped = %d, want 11", td.Dropped)
	}
	if len(td.Spans) != maxSpans {
		t.Errorf("spans = %d, want %d", len(td.Spans), maxSpans)
	}
}

func TestStoreEviction(t *testing.T) {
	s := NewStore(3)
	ids := make([]TraceID, 5)
	for i := range ids {
		ids[i] = NewTraceID()
		s.Put(&TraceData{TraceID: ids[i]})
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	for _, id := range ids[:2] {
		if s.Get(id) != nil {
			t.Error("oldest not evicted")
		}
	}
	for _, id := range ids[2:] {
		if s.Get(id) == nil {
			t.Error("recent trace evicted")
		}
	}
	recent := s.Recent(2)
	if len(recent) != 2 || recent[0] != ids[4] || recent[1] != ids[3] {
		t.Errorf("Recent = %v, want newest first", recent)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if !id.IsValid() || seen[id] {
			t.Fatalf("trace id %v invalid or duplicated", id)
		}
		seen[id] = true
	}
}
