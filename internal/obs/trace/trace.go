// Package trace is a zero-dependency distributed-tracing span model for
// the serving pipeline: 128-bit trace IDs, parent-linked spans with
// monotonic timestamps and typed attributes, W3C traceparent/tracestate
// interop, tail-based sampling into a bounded in-memory store, and
// OTLP/JSON-over-HTTP export.
//
// Span storage follows the flight recorder's trace-buffer recycling
// discipline (internal/sched/trace.go): every request records its spans
// into a pooled, cache-line-padded fixed-capacity arena with no
// allocation after warm-up, and the keep/drop decision is deferred to the
// end of the request (tail sampling). Recycling is reference-counted,
// last-one-out: the request holds a base reference from StartRequest to
// Finish, every open span holds one, and the arena returns to the pool
// only when the count hits zero after the trace is sealed. A detached
// run's straggler span (a coalesced leader outliving its caller, a
// cancelled propagation) therefore keeps the arena alive until its own
// End — a late write can never land in a buffer that has been handed to
// another request, the corruption class PR 3 fixed for scheduler traces.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a W3C 128-bit trace ID. The all-zero value is invalid.
type TraceID [16]byte

// SpanID is a W3C 64-bit span ID. The all-zero value is invalid.
type SpanID [8]byte

// IsValid reports whether the ID is non-zero.
func (id TraceID) IsValid() bool { return id != TraceID{} }

// IsValid reports whether the ID is non-zero.
func (id SpanID) IsValid() bool { return id != SpanID{} }

// String returns the 32-char lowercase hex form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String returns the 16-char lowercase hex form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// FlagSampled is the traceparent trace-flags bit meaning "the caller has
// decided to sample this trace"; tail sampling always keeps flagged traces.
const FlagSampled byte = 0x01

// SpanContext identifies one span for propagation across process
// boundaries: the W3C traceparent tuple plus the opaque tracestate.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
	State   string // raw tracestate header, passed through untouched
}

// Sampled reports whether the sampled flag bit is set.
func (sc SpanContext) Sampled() bool { return sc.Flags&FlagSampled != 0 }

// IsValid reports whether both IDs are non-zero.
func (sc SpanContext) IsValid() bool { return sc.TraceID.IsValid() && sc.SpanID.IsValid() }

// Attr is one typed span attribute. Exactly one value field is used,
// selected by Kind; keys follow OTel dot notation ("cache.hit").
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Int  int64
	F64  float64
	Bool bool
}

// AttrKind selects an Attr's value field.
type AttrKind uint8

// Attribute value kinds.
const (
	AttrString AttrKind = iota
	AttrInt
	AttrFloat
	AttrBool
)

// String, Int, Float and Bool construct typed attributes.
func String(k, v string) Attr    { return Attr{Key: k, Kind: AttrString, Str: v} }
func Int(k string, v int64) Attr { return Attr{Key: k, Kind: AttrInt, Int: v} }
func Float(k string, v float64) Attr {
	return Attr{Key: k, Kind: AttrFloat, F64: v}
}
func Bool(k string, v bool) Attr { return Attr{Key: k, Kind: AttrBool, Bool: v} }

// maxSpans is an arena's fixed span capacity. A fully instrumented query
// (root + cache + singleflight + plan + run + per-kind children + batch
// items) stays well under it; overflow increments the arena's dropped
// counter instead of allocating.
const maxSpans = 64

// maxAttrs is the per-span attribute capacity; excess attributes are
// dropped silently (the span's attrDrop flag marks the loss).
const maxAttrs = 10

// spanSlot is one span's storage inside an arena. All fields except the
// two atomics are written only by the goroutine that owns the span,
// between slot reservation and the committed store; readers (the seal-time
// collector) only look at slots whose committed flag is set, and the
// atomic store/load pair orders the plain writes before the reads.
type spanSlot struct {
	id       SpanID
	parent   SpanID
	name     string
	start    time.Time
	dur      time.Duration
	status   string // non-empty = error
	attrs    [maxAttrs]Attr
	nattrs   int
	attrDrop bool
	// committed is set once the span has ended and every field is final.
	committed atomic.Bool
}

// Trace is one request's span arena: a pooled, fixed-capacity,
// cache-line-padded buffer the request's spans are recorded into. It is
// safe for concurrent span starts/ends from any number of goroutines.
//
// Lifecycle invariants (the recycling discipline):
//   - refs counts the base reference (StartRequest → Finish) plus one per
//     open span, plus transient guards taken by in-flight StartChild.
//   - sealed flips once, in Finish, before the base reference drops.
//   - the release that takes refs to 0 while sealed recycles the arena,
//     winning an exclusive CAS on sealed so exactly one goroutine resets.
//   - non-atomic fields (id, flags, state, slots) are only touched while
//     holding a reference, so the reset never races a late writer.
type Trace struct {
	id    TraceID
	flags byte
	state string
	// head marks the sampled flag as this process's head-sampling coin
	// rather than a caller's explicit choice (only affects the recorded
	// keep reason).
	head bool

	n       atomic.Int32  // reserved slots
	refs    atomic.Int32  // base + open spans + in-flight starts
	sealed  atomic.Bool   // set by Finish; cleared by the recycler's CAS
	gen     atomic.Uint32 // bumped on recycle; stale handles become inert
	dropped atomic.Int64  // spans lost to arena overflow

	spans [maxSpans]spanSlot

	// Pad the hot atomics' cache line away from whatever the pool
	// allocates next to this arena (same discipline as sched.traceBuf).
	_ [64]byte
}

// ID returns the trace ID. Valid only between StartRequest and Finish.
func (t *Trace) ID() TraceID { return t.id }

// Flags returns the trace flags (FlagSampled et al.). Valid only between
// StartRequest and Finish.
func (t *Trace) Flags() byte { return t.flags }

// Dropped returns the number of spans lost to arena overflow so far.
func (t *Trace) Dropped() int64 { return t.dropped.Load() }

// release drops one reference; the last release of a sealed trace
// recycles the arena. The CAS elects exactly one recycler even when a
// stale handle's transient guard and the real last release race.
func (t *Trace) release() {
	if t.refs.Add(-1) == 0 && t.sealed.Load() {
		if t.sealed.CompareAndSwap(true, false) {
			t.recycle()
		}
	}
}

// recycle resets the arena for reuse and returns it to the pool. Runs
// with refs == 0: nobody holds a live reference, so the plain-field
// writes cannot race. The generation bump comes first, turning any stale
// span handle inert before its slot is cleared.
func (t *Trace) recycle() {
	t.gen.Add(1)
	n := int(t.n.Load())
	if n > maxSpans {
		n = maxSpans
	}
	for i := 0; i < n; i++ {
		t.spans[i] = spanSlot{}
	}
	t.n.Store(0)
	t.dropped.Store(0)
	t.id = TraceID{}
	t.flags = 0
	t.state = ""
	t.head = false
	arenaPool.Put(t)
}

// Span is a handle to one open span. The zero/nil Span is inert: every
// method is a no-op, so instrumented code needs no "is tracing on"
// branches beyond the single context lookup that produced the handle.
// The handle carries its own copy of the trace identity, so propagation
// (Context, TraceID) never reads arena fields a recycler could be
// resetting.
type Span struct {
	tr    *Trace
	slot  int32
	gen   uint32
	id    SpanID
	tid   TraceID
	flags byte
	state string
}

// mixSpanID derives a deterministic span ID from a 64-bit seed and the
// slot index (splitmix64). Determinism makes replayed traces diff
// cleanly; uniqueness within a trace follows from distinct slot indices.
func mixSpanID(seed uint64, slot int32) SpanID {
	x := seed + uint64(slot+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	var id SpanID
	binary.LittleEndian.PutUint64(id[:], x)
	if !id.IsValid() {
		id[0] = 1
	}
	return id
}

// spanID derives the ID for a trace's slot from the trace ID.
func spanID(tid TraceID, slot int32) SpanID {
	return mixSpanID(binary.LittleEndian.Uint64(tid[:8])^binary.LittleEndian.Uint64(tid[8:]), slot)
}

// startChild reserves a slot and opens a span under parent. Returns nil
// when the arena is sealed (the request already finished — the detached
// case), recycled under the caller (stale generation), or full.
func (parent *Span) startChild(name string, attrs []Attr) *Span {
	t := parent.tr
	// Take a reference before the sealed/generation checks: a reference
	// held by anyone forbids recycling, so passing the checks guarantees
	// the slot write below targets this request's arena.
	t.refs.Add(1)
	if t.sealed.Load() || parent.gen != t.gen.Load() {
		t.release()
		return nil
	}
	slot := t.n.Add(1) - 1
	if slot >= maxSpans {
		t.n.Add(-1)
		t.dropped.Add(1)
		t.release()
		return nil
	}
	s := &t.spans[slot]
	id := mixSpanID(binary.LittleEndian.Uint64(parent.id[:]), slot)
	s.id = id
	s.parent = parent.id
	s.name = name
	s.start = time.Now()
	s.nattrs = copy(s.attrs[:], attrs)
	s.attrDrop = len(attrs) > maxAttrs
	return &Span{
		tr: t, slot: slot, gen: parent.gen, id: id,
		tid: parent.tid, flags: parent.flags, state: parent.state,
	}
}

// root opens the trace's root span (parent = the caller's remote span ID,
// zero when this process starts the trace). Called by StartRequest only,
// under the base reference.
func (t *Trace) root(remoteParent SpanID, name string) *Span {
	t.refs.Add(1)
	s := &t.spans[0]
	t.n.Store(1)
	id := spanID(t.id, 0)
	s.id = id
	s.parent = remoteParent
	s.name = name
	s.start = time.Now()
	return &Span{
		tr: t, slot: 0, gen: t.gen.Load(), id: id,
		tid: t.id, flags: t.flags, state: t.state,
	}
}

// StartChild opens a child span of s. Safe on the nil span (returns nil)
// and on a finished trace (returns nil): instrumentation never needs to
// check whether tracing is live.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	return s.startChild(name, attrs)
}

// ChildInterval records an already-measured child span in one call:
// start/duration come from an external clock (the scheduler's per-kind
// busy metrics, folded in after the run so the hot path pays nothing).
func (s *Span) ChildInterval(name string, start time.Time, d time.Duration, attrs ...Attr) {
	if s == nil || s.tr == nil {
		return
	}
	c := s.startChild(name, attrs)
	if c == nil {
		return
	}
	sl := &c.tr.spans[c.slot]
	sl.start = start
	sl.dur = d
	c.End()
}

// SetAttr adds attributes to an open span. Must be called by the span's
// owner before End.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil || s.tr == nil || s.gen != s.tr.gen.Load() {
		return
	}
	sl := &s.tr.spans[s.slot]
	if sl.committed.Load() {
		return
	}
	n := copy(sl.attrs[sl.nattrs:], attrs)
	sl.nattrs += n
	if n < len(attrs) {
		sl.attrDrop = true
	}
}

// Fail marks the span as errored with the given message.
func (s *Span) Fail(msg string) {
	if s == nil || s.tr == nil || s.gen != s.tr.gen.Load() {
		return
	}
	sl := &s.tr.spans[s.slot]
	if !sl.committed.Load() {
		sl.status = msg
	}
}

// End closes the span, fixing its duration, and drops its reference —
// possibly recycling the arena when it is the last one out of a sealed
// trace. Idempotent; inert on handles of an already-recycled arena.
func (s *Span) End() {
	if s == nil || s.tr == nil || s.gen != s.tr.gen.Load() {
		return
	}
	sl := &s.tr.spans[s.slot]
	if sl.committed.Load() {
		return
	}
	if sl.dur == 0 && !sl.start.IsZero() {
		sl.dur = time.Since(sl.start)
	}
	sl.committed.Store(true)
	s.tr.release()
}

// Context returns the span's propagation context (for injecting a
// traceparent into an outbound request). The zero SpanContext on the nil
// span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.tid, SpanID: s.id, Flags: s.flags, State: s.state}
}

// TraceID returns the trace ID this span belongs to (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.tid
}

// snapshot collects the committed spans. Called by Finish under the base
// reference, after seal: open spans are skipped (their owners still hold
// references, and their half-written slots are fenced off behind the
// committed flag).
func (t *Trace) snapshot() []SpanData {
	n := int(t.n.Load())
	if n > maxSpans {
		n = maxSpans
	}
	out := make([]SpanData, 0, n)
	for i := 0; i < n; i++ {
		sl := &t.spans[i]
		if !sl.committed.Load() {
			continue
		}
		sd := SpanData{
			SpanID: sl.id, Parent: sl.parent, Name: sl.name,
			Start: sl.start, Duration: sl.dur, Status: sl.status,
		}
		if sl.nattrs > 0 {
			sd.Attrs = append([]Attr(nil), sl.attrs[:sl.nattrs]...)
		}
		out = append(out, sd)
	}
	return out
}

var arenaPool = sync.Pool{New: func() any { return new(Trace) }}

// idState seeds process-unique trace IDs: a random 128-bit base from
// crypto/rand mixed with a counter, so IDs are unpredictable across
// processes but cost one atomic add each.
var idState struct {
	once sync.Once
	hi   uint64
	lo   uint64
	ctr  atomic.Uint64
}

// NewTraceID returns a fresh non-zero 128-bit trace ID.
func NewTraceID() TraceID {
	idState.once.Do(func() {
		var b [16]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to the clock; IDs stay unique per process via ctr.
			binary.LittleEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
		}
		idState.hi = binary.LittleEndian.Uint64(b[:8])
		idState.lo = binary.LittleEndian.Uint64(b[8:])
	})
	c := idState.ctr.Add(1)
	x := idState.lo + c*0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	var id TraceID
	binary.LittleEndian.PutUint64(id[:8], idState.hi)
	binary.LittleEndian.PutUint64(id[8:], x)
	if !id.IsValid() {
		id[0] = 1
	}
	return id
}

// ctxKey carries the current *Span through a context.
type ctxKey struct{}

// ContextWith returns ctx carrying the span; instrumented layers below
// retrieve it with FromContext. A nil span stores nothing.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, nil when untraced. This is
// the single per-stage cost instrumentation pays when tracing is off.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
