package trace

import (
	"encoding/binary"
	"sync/atomic"
	"time"
)

// Tracer owns the serving side of tracing: it hands out pooled span
// arenas per request, decides at request end whether to keep the trace
// (tail sampling), and fans kept traces into the bounded store and the
// optional OTLP exporter.
//
// Tail-sampling policy: a trace is always kept when its root span errored,
// when the request was slow (at or beyond the adaptive threshold the
// flight recorder maintains — 2× the observed p99), or when the caller
// explicitly flagged it (traceparent sampled bit). Everything else is
// head-sampled at SampleRate, decided deterministically from the trace ID
// so all participants of one distributed trace agree.
type Tracer struct {
	// SampleRate is the probabilistic head-sampling rate in [0, 1] for
	// traces not otherwise kept (default 0 = keep only slow/error/flagged).
	SampleRate float64
	// Slow returns the current slow-trace threshold (0 = not yet warmed
	// up). Wired to the flight recorder's adaptive 2×p99 threshold.
	Slow func() time.Duration
	// Store receives kept traces; nil discards them.
	Store *Store
	// Exporter receives kept traces for OTLP push; nil disables export.
	Exporter *Exporter

	started atomic.Int64 // requests traced
	kept    atomic.Int64 // traces kept by tail sampling
	spans   atomic.Int64 // spans dropped to arena overflow (lifetime)
}

// TracerStats is a snapshot of the tracer's lifetime counters.
type TracerStats struct {
	Started      int64 `json:"started"`
	Kept         int64 `json:"kept"`
	SpansDropped int64 `json:"spans_dropped"`
	StoreLen     int   `json:"store_len"`
}

// Stats snapshots the tracer's counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	s := TracerStats{
		Started:      t.started.Load(),
		Kept:         t.kept.Load(),
		SpansDropped: t.spans.Load(),
	}
	if t.Store != nil {
		s.StoreLen = t.Store.Len()
	}
	return s
}

// headSampled decides head sampling deterministically from the trace ID's
// low 8 bytes, so retries and distributed peers agree on the verdict.
func (t *Tracer) headSampled(id TraceID) bool {
	if t.SampleRate <= 0 {
		return false
	}
	if t.SampleRate >= 1 {
		return true
	}
	x := binary.LittleEndian.Uint64(id[8:])
	// Map the rate onto the full uint64 range.
	return x < uint64(t.SampleRate*float64(1<<63)*2)
}

// StartRequest opens a trace for one request. When the caller supplied a
// valid parent, its trace ID, flags and tracestate carry over and the root
// span links to the remote parent; otherwise a fresh trace ID is minted
// and the head-sampling coin may set the sampled flag. Always returns a
// live arena — recording is unconditional, the keep decision is Finish's.
func (t *Tracer) StartRequest(name string, parent SpanContext) (*Trace, *Span) {
	if t == nil {
		return nil, nil
	}
	t.started.Add(1)
	tr := arenaPool.Get().(*Trace)
	// The base reference: held by the request from here until Finish
	// releases it, so the arena can never recycle under live spans.
	tr.refs.Add(1)
	var remote SpanID
	if parent.IsValid() {
		tr.id = parent.TraceID
		tr.flags = parent.Flags
		tr.state = parent.State
		remote = parent.SpanID
	} else {
		tr.id = NewTraceID()
		if t.headSampled(tr.id) {
			tr.flags = FlagSampled
			tr.head = true
		}
	}
	return tr, tr.root(remote, name)
}

// Finish seals the trace, applies tail sampling and either retains it
// (store + export) or forgets it, then drops the request's base reference.
// The arena returns to the pool only once every outstanding span has also
// ended (last reference out recycles), so stragglers of a detached run
// cannot corrupt a reused buffer. The root span must already be Ended.
func (t *Tracer) Finish(tr *Trace, root *Span) {
	if t == nil || tr == nil {
		return
	}
	t.spans.Add(tr.dropped.Load())

	reason := ""
	if tr.flags&FlagSampled != 0 {
		if tr.head {
			reason = "head"
		} else {
			reason = "flagged"
		}
	}
	rootSlot := -1
	if root != nil && root.tr == tr {
		rootSlot = int(root.slot)
	}
	if rootSlot >= 0 {
		sl := &tr.spans[rootSlot]
		if sl.committed.Load() {
			if sl.status != "" {
				reason = "error"
			} else if reason == "" {
				if slow := t.slowThreshold(); slow > 0 && sl.dur >= slow {
					reason = "slow"
				}
			}
		}
	}

	// Seal first: from here on StartChild returns the inert span.
	tr.sealed.Store(true)

	if reason != "" {
		t.kept.Add(1)
		td := &TraceData{
			TraceID: tr.id,
			Flags:   tr.flags,
			State:   tr.state,
			Reason:  reason,
			Dropped: tr.dropped.Load(),
			Spans:   tr.snapshot(),
		}
		if t.Store != nil {
			t.Store.Put(td)
		}
		if t.Exporter != nil {
			t.Exporter.Enqueue(td)
		}
	}

	// Drop the base reference. If no span is still open this recycles the
	// arena now; otherwise the last straggler's End recycles it later.
	tr.release()
}

func (t *Tracer) slowThreshold() time.Duration {
	if t.Slow == nil {
		return 0
	}
	return t.Slow()
}
