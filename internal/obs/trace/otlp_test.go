package trace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func sampleTraceData() *TraceData {
	id := NewTraceID()
	root := spanID(id, 0)
	child := spanID(id, 1)
	now := time.Now()
	return &TraceData{
		TraceID: id,
		Reason:  "flagged",
		Spans: []SpanData{
			{SpanID: root, Name: "request", Start: now, Duration: time.Millisecond,
				Attrs: []Attr{String("query.id", "q-1"), Int("http.status", 200)}},
			{SpanID: child, Parent: root, Name: "propagate", Start: now, Duration: 500 * time.Microsecond,
				Attrs:  []Attr{Float("load.balance", 1.02), Bool("cache.hit", false)},
				Status: "context canceled"},
		},
	}
}

// TestMarshalOTLPConformance: the payload we export must pass our own
// span-field lint — the OTLP analog of the Prometheus exposition
// conformance tests.
func TestMarshalOTLPConformance(t *testing.T) {
	body, err := MarshalOTLP("evserve", []*TraceData{sampleTraceData(), sampleTraceData()})
	if err != nil {
		t.Fatal(err)
	}
	if problems := LintOTLP(body); len(problems) != 0 {
		t.Fatalf("conformance problems:\n%s\nin:\n%s", strings.Join(problems, "\n"), body)
	}
	// Spot-check wire shape details the lint can't express.
	var req otlpExportRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	spans := req.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Kind != otlpKindServer || spans[1].Kind != otlpKindInternal {
		t.Error("root/child span kinds wrong")
	}
	if spans[1].Status == nil || spans[1].Status.Code != otlpStatusError {
		t.Error("errored span lacks error status")
	}
	if spans[0].ParentSpanID != "" {
		t.Error("root span has a parentSpanId")
	}
	res := req.ResourceSpans[0].Resource.Attributes
	if len(res) != 1 || res[0].Key != "service.name" || *res[0].Value.Str != "evserve" {
		t.Errorf("resource attributes = %+v", res)
	}
}

// TestLintOTLPCatches: the linter must flag each defect class it exists
// for.
func TestLintOTLPCatches(t *testing.T) {
	cases := []struct {
		name, payload, want string
	}{
		{"garbage", `{]`, "does not parse"},
		{"empty", `{}`, "no resourceSpans"},
		{
			"bad trace id",
			`{"resourceSpans":[{"resource":{"attributes":[]},"scopeSpans":[{"scope":{"name":"x"},"spans":[{"traceId":"XYZ","spanId":"00f067aa0ba902b7","name":"s","kind":1,"startTimeUnixNano":"1","endTimeUnixNano":"2"}]}]}]}`,
			"traceId",
		},
		{
			"zero span id",
			`{"resourceSpans":[{"resource":{"attributes":[]},"scopeSpans":[{"scope":{"name":"x"},"spans":[{"traceId":"4bf92f3577b34da6a3ce929d0e0e4736","spanId":"0000000000000000","name":"s","kind":1,"startTimeUnixNano":"1","endTimeUnixNano":"2"}]}]}]}`,
			"spanId",
		},
		{
			"empty name",
			`{"resourceSpans":[{"resource":{"attributes":[]},"scopeSpans":[{"scope":{"name":"x"},"spans":[{"traceId":"4bf92f3577b34da6a3ce929d0e0e4736","spanId":"00f067aa0ba902b7","name":"","kind":1,"startTimeUnixNano":"1","endTimeUnixNano":"2"}]}]}]}`,
			"empty span name",
		},
		{
			"end before start",
			`{"resourceSpans":[{"resource":{"attributes":[]},"scopeSpans":[{"scope":{"name":"x"},"spans":[{"traceId":"4bf92f3577b34da6a3ce929d0e0e4736","spanId":"00f067aa0ba902b7","name":"s","kind":1,"startTimeUnixNano":"5","endTimeUnixNano":"2"}]}]}]}`,
			"before start",
		},
		{
			"two value fields",
			`{"resourceSpans":[{"resource":{"attributes":[]},"scopeSpans":[{"scope":{"name":"x"},"spans":[{"traceId":"4bf92f3577b34da6a3ce929d0e0e4736","spanId":"00f067aa0ba902b7","name":"s","kind":1,"startTimeUnixNano":"1","endTimeUnixNano":"2","attributes":[{"key":"k","value":{"stringValue":"a","intValue":"1"}}]}]}]}]}`,
			"value fields",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			problems := LintOTLP([]byte(c.payload))
			for _, p := range problems {
				if strings.Contains(p, c.want) {
					return
				}
			}
			t.Errorf("problems %v do not mention %q", problems, c.want)
		})
	}
}

// TestExporterDelivers: an end-to-end push to a fake collector, with the
// payload re-validated by the lint on arrival.
func TestExporterDelivers(t *testing.T) {
	got := make(chan []byte, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Type") != "application/json" {
			t.Errorf("content type %q", r.Header.Get("Content-Type"))
		}
		body := make([]byte, r.ContentLength)
		r.Body.Read(body)
		select {
		case got <- body:
		default:
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	e := NewExporter(srv.URL, "test")
	e.Enqueue(sampleTraceData())
	select {
	case body := <-got:
		if problems := LintOTLP(body); len(problems) != 0 {
			t.Errorf("delivered payload fails lint: %v", problems)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("collector never received the push")
	}
	e.Close()
	if s := e.Stats(); s.Exported != 2 || s.Dropped != 0 {
		t.Errorf("stats = %+v, want 2 exported", s)
	}
}

// TestExporterRetriesThenDrops: transient 5xx responses are retried with
// backoff; exhausted retries count the spans as dropped.
func TestExporterRetriesThenDrops(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	e := NewExporter(srv.URL, "test")
	e.backoff = time.Millisecond
	e.Enqueue(sampleTraceData())
	e.Close()
	if n := hits.Load(); n != 3 {
		t.Errorf("collector hit %d times, want 3 (initial + 2 retries)", n)
	}
	s := e.Stats()
	if s.Dropped != 2 || s.Exported != 0 || s.Retries != 2 {
		t.Errorf("stats = %+v, want 2 dropped spans after 2 retries", s)
	}
}

// TestExporterRecoversMidRetry: a 500 followed by a 200 exports cleanly.
func TestExporterRecoversMidRetry(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	e := NewExporter(srv.URL, "test")
	e.backoff = time.Millisecond
	e.Enqueue(sampleTraceData())
	e.Close()
	s := e.Stats()
	if s.Exported != 2 || s.Dropped != 0 || s.Retries != 1 {
		t.Errorf("stats = %+v, want 2 exported after 1 retry", s)
	}
}

// TestExporterQueueFullDrops: Enqueue never blocks; overflow is counted.
func TestExporterQueueFullDrops(t *testing.T) {
	e := &Exporter{queue: make(chan *TraceData, 1)}
	e.Enqueue(sampleTraceData())
	e.Enqueue(sampleTraceData()) // queue full, nobody draining
	if d := e.Stats().Dropped; d != 2 {
		t.Errorf("dropped = %d, want 2 (one trace of 2 spans)", d)
	}
}
