package trace

import (
	"encoding/hex"
	"strings"
)

// W3C Trace Context interop: the traceparent header is
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"; tracestate is
// an opaque vendor list this package passes through untouched.

// Traceparent formats the context as a version-00 traceparent header
// value, "" when the context is invalid.
func (sc SpanContext) Traceparent() string {
	if !sc.IsValid() {
		return ""
	}
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.SpanID[:])
	b[52] = '-'
	hex.Encode(b[53:55], []byte{sc.Flags})
	return string(b[:])
}

// ParseTraceparent parses a traceparent header value. It accepts any
// version except ff (per spec, unknown versions parse as version 00 when
// the tail is at least as long), rejects all-zero IDs, and returns ok
// false on malformed input.
func ParseTraceparent(s string) (SpanContext, bool) {
	s = strings.TrimSpace(s)
	if len(s) < 55 {
		return SpanContext{}, false
	}
	if !isHex(s[0:2]) || s[0:2] == "ff" {
		return SpanContext{}, false
	}
	if s[0:2] == "00" && len(s) != 55 {
		return SpanContext{}, false
	}
	if len(s) > 55 && s[55] != '-' {
		return SpanContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(s[53:55])); err != nil {
		return SpanContext{}, false
	}
	if isUpper(s[3:35]) || isUpper(s[36:52]) || isUpper(s[53:55]) {
		return SpanContext{}, false // spec requires lowercase hex
	}
	sc.Flags = fb[0]
	if !sc.IsValid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

func isUpper(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'F' {
			return true
		}
	}
	return false
}
