package trace

import (
	"sync"
	"time"
)

// SpanData is one finished span in a kept trace's snapshot.
type SpanData struct {
	SpanID   SpanID
	Parent   SpanID
	Name     string
	Start    time.Time
	Duration time.Duration
	Status   string // non-empty = error message
	Attrs    []Attr
}

// TraceData is one kept trace: the sampling verdict plus every committed
// span, in slot (creation) order.
type TraceData struct {
	TraceID TraceID
	Flags   byte
	State   string
	// Reason records why tail sampling kept the trace: "flagged", "error",
	// "slow" or "head".
	Reason  string
	Dropped int64 // spans lost to arena overflow
	Spans   []SpanData
}

// Store is the bounded in-memory trace store behind
// GET /v1/debug/trace?id=: a map with FIFO eviction once capacity is
// reached. Safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	cap   int
	byID  map[TraceID]*TraceData
	order []TraceID // insertion ring, oldest first
	head  int
}

// DefaultStoreSize is the store capacity when 0 is configured.
const DefaultStoreSize = 256

// NewStore returns a store retaining up to capacity traces (0 selects
// DefaultStoreSize).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreSize
	}
	return &Store{
		cap:  capacity,
		byID: make(map[TraceID]*TraceData, capacity),
	}
}

// Put retains a trace, evicting the oldest when full. A re-put of an
// existing ID replaces it in place.
func (s *Store) Put(td *TraceData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[td.TraceID]; ok {
		s.byID[td.TraceID] = td
		return
	}
	if len(s.byID) >= s.cap {
		old := s.order[s.head]
		s.order[s.head] = td.TraceID
		s.head = (s.head + 1) % len(s.order)
		delete(s.byID, old)
	} else {
		s.order = append(s.order, td.TraceID)
	}
	s.byID[td.TraceID] = td
}

// Get returns the trace with the given ID, nil when not retained.
func (s *Store) Get(id TraceID) *TraceData {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// Len returns the current number of retained traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// Recent returns up to n retained trace IDs, newest first.
func (s *Store) Recent(n int) []TraceID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.order) {
		n = len(s.order)
	}
	out := make([]TraceID, 0, n)
	// order is a ring: newest is just before head once the ring wrapped,
	// at the end otherwise.
	total := len(s.order)
	for i := 0; i < total && len(out) < n; i++ {
		idx := (s.head - 1 - i + 2*total) % total
		id := s.order[idx]
		if _, ok := s.byID[id]; ok {
			out = append(out, id)
		}
	}
	return out
}
