package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"evprop/internal/jtree"
	"evprop/internal/sched"
	"evprop/internal/taskgraph"
)

func TestFromSimDerivation(t *testing.T) {
	// Two workers, 3s and 1s busy: mean 2s, max 3s → load balance 1.5.
	// Overhead 0.1s + 0.1s over 4.2s total worker time.
	r := FromSim([]float64{3, 1}, []float64{0.1, 0.1}, 3.5)
	if r.Workers != 2 {
		t.Fatalf("workers %d", r.Workers)
	}
	if r.LoadBalance < 1.499 || r.LoadBalance > 1.501 {
		t.Errorf("load balance %v, want 1.5", r.LoadBalance)
	}
	want := 0.2 / 4.2
	if r.OverheadFraction < want-1e-9 || r.OverheadFraction > want+1e-9 {
		t.Errorf("overhead fraction %v, want %v", r.OverheadFraction, want)
	}
	if r.Elapsed != 3500*time.Millisecond {
		t.Errorf("elapsed %v", r.Elapsed)
	}
}

func TestReportIdleRun(t *testing.T) {
	// No busy time at all: load balance defaults to 1, overhead fraction 0.
	r := FromSim([]float64{0, 0}, []float64{0, 0}, 0)
	if r.LoadBalance != 1 || r.OverheadFraction != 0 {
		t.Errorf("idle run: balance %v overhead %v", r.LoadBalance, r.OverheadFraction)
	}
}

func realRun(t *testing.T, workers, threshold int) *sched.Metrics {
	t.Helper()
	tr, err := jtree.Random(jtree.RandomConfig{N: 64, Width: 12, States: 2, Degree: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(9); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	m, err := sched.Run(st, sched.Options{Workers: workers, Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFromSchedRealRun checks the Fig. 8 invariants on a real collaborative
// run: a load-balance factor in [1, P], per-kind times that add up to total
// busy time, and a scheduler-overhead fraction that stays a small minority
// of worker time (the paper reports <0.9% on its testbeds; the bound here is
// lenient because CI machines and -race instrumentation inflate the
// scheduler's bookkeeping relative to the arithmetic).
func TestFromSchedRealRun(t *testing.T) {
	const workers = 4
	// δ picks piece sizes large enough that the blocked kernels' arithmetic
	// still dominates the per-piece scheduling bookkeeping; the run-
	// decomposed kernels do several entries per ns, so 256-entry pieces
	// would be all overhead.
	m := realRun(t, workers, 1024)
	r := FromSched(m)
	if r.Workers != workers {
		t.Fatalf("workers %d", r.Workers)
	}
	if r.Tasks == 0 {
		t.Fatal("no tasks recorded")
	}
	if r.LoadBalance < 1 || r.LoadBalance > workers+0.001 {
		t.Errorf("load balance %v outside [1, %d]", r.LoadBalance, workers)
	}
	var kinds time.Duration
	for _, d := range r.KindBusy {
		if d < 0 {
			t.Errorf("negative kind time %v", d)
		}
		kinds += d
	}
	if kinds != r.TotalBusy() {
		t.Errorf("kind times sum to %v, busy total %v", kinds, r.TotalBusy())
	}
	if r.OverheadFraction < 0 || r.OverheadFraction >= 1 {
		t.Fatalf("overhead fraction %v outside [0, 1)", r.OverheadFraction)
	}
	bound := 0.25
	if raceEnabled {
		bound = 0.60
	}
	if r.OverheadFraction > bound {
		t.Errorf("overhead fraction %v exceeds %v", r.OverheadFraction, bound)
	}
	var buf strings.Builder
	r.Write(&buf)
	for _, want := range []string{"load balance", "overhead fraction"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestAggregate(t *testing.T) {
	var a Aggregate
	s := a.Snapshot()
	if s.Runs != 0 || s.LastLoadBalance != 1 || s.OverheadFraction() != 0 {
		t.Errorf("fresh aggregate: %+v", s)
	}
	a.Observe(FromSim([]float64{2, 2}, []float64{0.5, 0.5}, 2.5))
	a.Observe(FromSim([]float64{3, 1}, []float64{0, 0}, 3))
	s = a.Snapshot()
	if s.Runs != 2 {
		t.Fatalf("runs %d", s.Runs)
	}
	if s.Busy != 8*time.Second || s.Overhead != time.Second {
		t.Errorf("busy %v overhead %v", s.Busy, s.Overhead)
	}
	// Lifetime fraction spans both runs; the gauges track only the last.
	if f := s.OverheadFraction(); f < 1.0/9-1e-9 || f > 1.0/9+1e-9 {
		t.Errorf("lifetime overhead fraction %v", f)
	}
	if s.LastLoadBalance < 1.499 || s.LastLoadBalance > 1.501 {
		t.Errorf("last load balance %v", s.LastLoadBalance)
	}
	if s.LastOverheadFraction != 0 {
		t.Errorf("last overhead fraction %v", s.LastOverheadFraction)
	}
}

// TestAggregateConcurrent folds reports from many goroutines while others
// snapshot; run under -race this is the engine's concurrent-serving pattern.
func TestAggregateConcurrent(t *testing.T) {
	var a Aggregate
	rep := FromSim([]float64{1, 1}, []float64{0.01, 0.01}, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a.Observe(rep)
				if i%50 == 0 {
					a.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if s := a.Snapshot(); s.Runs != 1600 {
		t.Errorf("runs %d, want 1600", s.Runs)
	}
}
