// Package obs is the observability layer of the serving stack: it turns the
// collaborative scheduler's raw per-worker accounting into the structured
// run reports of the paper's Fig. 8 (per-thread load balance, scheduler
// overhead fraction), aggregates them across an engine's lifetime, and
// provides the lock-cheap latency histogram and Prometheus text exposition
// used by cmd/evserve's /v1/metrics and /v1/stats endpoints.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"evprop/internal/sched"
	"evprop/internal/taskgraph"
)

// KindNames maps taskgraph.Kind indices to their primitive names, the label
// order of every per-kind breakdown this package emits.
var KindNames = [taskgraph.NumKinds]string{"marginalize", "divide", "extend", "multiply"}

// Report is the structured result of one scheduler run — the Fig. 8
// quantities promoted to a first-class value.
type Report struct {
	// Workers is the number of worker threads P.
	Workers int
	// Elapsed is the run's wall-clock makespan.
	Elapsed time.Duration
	// Busy and Overhead are the per-worker computation and scheduling
	// (Allocate + Partition) times.
	Busy     []time.Duration
	Overhead []time.Duration
	// KindBusy splits total computation time by primitive kind, indexed by
	// taskgraph.Kind (see KindNames).
	KindBusy [taskgraph.NumKinds]time.Duration
	// Tasks, Pieces, Partitioned and Steals are the run's item counters.
	Tasks, Pieces, Partitioned, Steals int

	// LoadBalance is max(busy) / mean(busy) across workers: 1.0 is a
	// perfectly balanced run, P is the degenerate single-worker-did-it-all
	// case. The paper's Fig. 8 plots the per-thread busy times this factor
	// summarizes.
	LoadBalance float64
	// OverheadFraction is total scheduling time / total(busy + scheduling)
	// — the Fig. 8 "<0.9% scheduler overhead" number.
	OverheadFraction float64
}

// FromSched builds the run report from a real execution's metrics.
func FromSched(m *sched.Metrics) *Report {
	r := &Report{
		Workers:     len(m.Workers),
		Elapsed:     m.Elapsed,
		Busy:        make([]time.Duration, len(m.Workers)),
		Overhead:    make([]time.Duration, len(m.Workers)),
		Tasks:       m.Tasks,
		Pieces:      m.Pieces,
		Partitioned: m.Partition,
		Steals:      m.Steals,
	}
	for w, wm := range m.Workers {
		r.Busy[w] = wm.Busy
		r.Overhead[w] = wm.Overhead
		for k := 0; k < taskgraph.NumKinds; k++ {
			r.KindBusy[k] += wm.KindBusy[k]
		}
	}
	r.derive()
	return r
}

// FromSim builds a report from the simulated machine's per-core busy and
// overhead times (seconds) — the bridge that lets the Fig. 8 experiment and
// real runs share one set of metric definitions.
func FromSim(busy, overhead []float64, makespan float64) *Report {
	r := &Report{
		Workers:  len(busy),
		Elapsed:  time.Duration(makespan * float64(time.Second)),
		Busy:     make([]time.Duration, len(busy)),
		Overhead: make([]time.Duration, len(overhead)),
	}
	for i, b := range busy {
		r.Busy[i] = time.Duration(b * float64(time.Second))
	}
	for i, o := range overhead {
		r.Overhead[i] = time.Duration(o * float64(time.Second))
	}
	r.derive()
	return r
}

// derive fills the summary factors from the per-worker columns.
func (r *Report) derive() {
	var total, max, overhead time.Duration
	for _, b := range r.Busy {
		total += b
		if b > max {
			max = b
		}
	}
	for _, o := range r.Overhead {
		overhead += o
	}
	if total > 0 && r.Workers > 0 {
		mean := float64(total) / float64(r.Workers)
		r.LoadBalance = float64(max) / mean
	} else {
		r.LoadBalance = 1
	}
	if total+overhead > 0 {
		r.OverheadFraction = float64(overhead) / float64(total+overhead)
	}
}

// TotalBusy sums the per-worker computation times.
func (r *Report) TotalBusy() time.Duration {
	var t time.Duration
	for _, b := range r.Busy {
		t += b
	}
	return t
}

// TotalOverhead sums the per-worker scheduling times.
func (r *Report) TotalOverhead() time.Duration {
	var t time.Duration
	for _, o := range r.Overhead {
		t += o
	}
	return t
}

// Write prints the report in the row shape of the paper's Fig. 8.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "run: P=%d elapsed=%v tasks=%d pieces=%d partitioned=%d steals=%d\n",
		r.Workers, r.Elapsed, r.Tasks, r.Pieces, r.Partitioned, r.Steals)
	fmt.Fprintf(w, "  load balance (max/mean busy): %.3f\n", r.LoadBalance)
	fmt.Fprintf(w, "  scheduler overhead fraction:  %.4f%%\n", 100*r.OverheadFraction)
	for k, name := range KindNames {
		if r.KindBusy[k] > 0 {
			fmt.Fprintf(w, "  %-12s %v\n", name, r.KindBusy[k])
		}
	}
}

// Aggregate accumulates run reports across an engine's lifetime — the
// counters behind /v1/metrics. A single mutex is fine here: it is taken
// once per propagation (not per task), which is noise next to the
// propagation itself.
type Aggregate struct {
	mu                sync.Mutex
	runs              int64
	busy              time.Duration
	overhead          time.Duration
	kindBusy          [taskgraph.NumKinds]time.Duration
	tasks             int64
	pieces            int64
	partitioned       int64
	steals            int64
	lastLoadBalance   float64
	lastOverheadFrac  float64
	lastWorkers       int
	lastElapsed       time.Duration
	totalElapsedOfAll time.Duration
}

// Observe folds one run's report into the aggregate.
func (a *Aggregate) Observe(r *Report) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	a.busy += r.TotalBusy()
	a.overhead += r.TotalOverhead()
	for k := 0; k < taskgraph.NumKinds; k++ {
		a.kindBusy[k] += r.KindBusy[k]
	}
	a.tasks += int64(r.Tasks)
	a.pieces += int64(r.Pieces)
	a.partitioned += int64(r.Partitioned)
	a.steals += int64(r.Steals)
	a.lastLoadBalance = r.LoadBalance
	a.lastOverheadFrac = r.OverheadFraction
	a.lastWorkers = r.Workers
	a.lastElapsed = r.Elapsed
	a.totalElapsedOfAll += r.Elapsed
}

// AggregateSnapshot is a consistent copy of an Aggregate's counters.
type AggregateSnapshot struct {
	// Runs counts scheduler runs folded in.
	Runs int64
	// Busy and Overhead are lifetime totals across all runs and workers.
	Busy, Overhead time.Duration
	// KindBusy is the lifetime per-primitive-kind computation time.
	KindBusy [taskgraph.NumKinds]time.Duration
	// Tasks, Pieces, Partitioned, Steals are lifetime item counters.
	Tasks, Pieces, Partitioned, Steals int64
	// LastLoadBalance and LastOverheadFraction are the most recent run's
	// Fig. 8 factors (gauges).
	LastLoadBalance      float64
	LastOverheadFraction float64
	// LastWorkers and LastElapsed describe the most recent run.
	LastWorkers int
	LastElapsed time.Duration
	// TotalElapsed sums every run's makespan.
	TotalElapsed time.Duration
}

// OverheadFraction is the lifetime scheduler-overhead fraction.
func (s AggregateSnapshot) OverheadFraction() float64 {
	if s.Busy+s.Overhead <= 0 {
		return 0
	}
	return float64(s.Overhead) / float64(s.Busy+s.Overhead)
}

// Snapshot returns a consistent copy of the aggregate.
func (a *Aggregate) Snapshot() AggregateSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := AggregateSnapshot{
		Runs:                 a.runs,
		Busy:                 a.busy,
		Overhead:             a.overhead,
		KindBusy:             a.kindBusy,
		Tasks:                a.tasks,
		Pieces:               a.pieces,
		Partitioned:          a.partitioned,
		Steals:               a.steals,
		LastLoadBalance:      a.lastLoadBalance,
		LastOverheadFraction: a.lastOverheadFrac,
		LastWorkers:          a.lastWorkers,
		LastElapsed:          a.lastElapsed,
		TotalElapsed:         a.totalElapsedOfAll,
	}
	if s.Runs == 0 {
		s.LastLoadBalance = 1
	}
	return s
}
