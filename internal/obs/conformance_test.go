package obs

import (
	"strings"
	"testing"
	"time"
)

// TestEscapeLabel locks the exposition-format escaping rules for the three
// characters the format requires quoting.
func TestEscapeLabel(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"plain", `hello world`, `hello world`},
		{"backslash", `C:\temp`, `C:\\temp`},
		{"double-quote", `say "hi"`, `say \"hi\"`},
		{"newline", "line1\nline2", `line1\nline2`},
		{"all-three", "a\\\"b\"\nc", `a\\\"b\"\nc`},
		{"backslash-n-literal", `already\n`, `already\\n`},
		{"empty", ``, ``},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := escapeLabel(c.in); got != c.want {
				t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
			}
		})
	}
}

// TestEscapeLabelRoundTrip: whatever goes through WriteSample must come back
// byte-identical through the lint parser — escaping and unescaping are
// inverses.
func TestEscapeLabelRoundTrip(t *testing.T) {
	values := []string{
		`plain`, `back\slash`, `"quoted"`, "new\nline", "mix\\\"\n\\n", `trailing\`,
	}
	for _, v := range values {
		var b strings.Builder
		WriteSample(&b, "m", map[string]string{"v": v}, 1)
		_, labels, _, err := parseSampleLine(strings.TrimSuffix(b.String(), "\n"))
		if err != nil {
			t.Fatalf("value %q: %v (line %q)", v, err, b.String())
		}
		if labels["v"] != v {
			t.Errorf("value %q round-tripped to %q", v, labels["v"])
		}
	}
}

// TestHistogramExpositionConformance: a populated histogram's Prometheus
// rendering must carry a terminal +Inf bucket that equals _count, a _sum,
// and monotone cumulative buckets — checked by the linter.
func TestHistogramExpositionConformance(t *testing.T) {
	h := &Histogram{}
	for _, d := range []time.Duration{
		0, time.Microsecond, 50 * time.Microsecond, time.Millisecond,
		20 * time.Millisecond, time.Second, 2 * time.Hour, // overflow bucket
	} {
		h.Observe(d)
	}
	var b strings.Builder
	h.WritePrometheus(&b, "test_latency_seconds", "Test latencies.")
	out := b.String()
	if problems := LintExposition(strings.NewReader(out)); len(problems) != 0 {
		t.Fatalf("conformance problems:\n%s\nin:\n%s", strings.Join(problems, "\n"), out)
	}
	if !strings.Contains(out, `test_latency_seconds_bucket{le="+Inf"} 7`) {
		t.Errorf("missing or wrong +Inf bucket in:\n%s", out)
	}
	if !strings.Contains(out, "test_latency_seconds_count 7") {
		t.Errorf("missing _count in:\n%s", out)
	}
}

// TestEmptyHistogramConformance: the zero histogram still emits a complete,
// consistent family (all-zero buckets, +Inf terminal, zero _count/_sum).
func TestEmptyHistogramConformance(t *testing.T) {
	h := &Histogram{}
	var b strings.Builder
	h.WritePrometheus(&b, "empty_seconds", "Empty.")
	if problems := LintExposition(strings.NewReader(b.String())); len(problems) != 0 {
		t.Fatalf("conformance problems:\n%s", strings.Join(problems, "\n"))
	}
	if !strings.Contains(b.String(), `empty_seconds_bucket{le="+Inf"} 0`) {
		t.Errorf("empty histogram lacks +Inf bucket:\n%s", b.String())
	}
}

// TestHistogramExemplarConformance: a traced observation surfaces as an
// OpenMetrics exemplar trailer on its bucket line, and the rendering still
// lints clean (the linter validates the trailer grammar too).
func TestHistogramExemplarConformance(t *testing.T) {
	h := &Histogram{}
	h.Observe(10 * time.Microsecond)                                        // untraced: no exemplar
	h.ObserveExemplar(time.Millisecond, "4bf92f3577b34da6a3ce929d0e0e4736") // traced
	h.ObserveExemplar(20*time.Millisecond, "")                              // empty ID: plain observe
	var b strings.Builder
	h.WritePrometheus(&b, "ex_seconds", "Exemplar test.")
	out := b.String()
	if problems := LintExposition(strings.NewReader(out)); len(problems) != 0 {
		t.Fatalf("conformance problems:\n%s\nin:\n%s", strings.Join(problems, "\n"), out)
	}
	if !strings.Contains(out, `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.001 `) {
		t.Errorf("missing exemplar trailer in:\n%s", out)
	}
	// Exactly one bucket carries an exemplar: the traced observation's.
	if got := strings.Count(out, "# {trace_id="); got != 1 {
		t.Errorf("%d exemplar trailers, want 1:\n%s", got, out)
	}
	// BucketExemplar returns the stored observation for the right bucket.
	ex := h.BucketExemplar(histBucketOf(int64(time.Millisecond)))
	if ex == nil || ex.Value != 0.001 {
		t.Errorf("BucketExemplar = %+v", ex)
	}
	if h.BucketExemplar(-1) != nil || h.BucketExemplar(histBuckets+1) != nil {
		t.Error("out-of-range BucketExemplar should be nil")
	}
}

// TestAggregateSnapshotConformance lints the scheduler metric family block.
func TestAggregateSnapshotConformance(t *testing.T) {
	var agg Aggregate
	agg.Observe(&Report{
		Workers:  2,
		Elapsed:  time.Millisecond,
		Busy:     []time.Duration{2 * time.Millisecond, time.Millisecond},
		Overhead: []time.Duration{10 * time.Microsecond, 5 * time.Microsecond},
		Tasks:    7,
	})
	var b strings.Builder
	agg.Snapshot().WritePrometheus(&b, "evprop_sched")
	if problems := LintExposition(strings.NewReader(b.String())); len(problems) != 0 {
		t.Fatalf("conformance problems:\n%s\nin:\n%s", strings.Join(problems, "\n"), b.String())
	}
}

// TestLintExpositionCatches: the linter must actually flag the defect
// classes it exists for (a linter that passes everything proves nothing).
func TestLintExpositionCatches(t *testing.T) {
	cases := []struct {
		name, payload, wantProblem string
	}{
		{
			"missing help",
			"# TYPE x counter\nx 1\n",
			"no # HELP",
		},
		{
			"missing type",
			"# HELP x about x\nx 1\n",
			"no # TYPE",
		},
		{
			"histogram without +Inf",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
			"no terminal +Inf",
		},
		{
			"count mismatch",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"_count 3 != +Inf bucket 2",
		},
		{
			"missing sum",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
			"missing _sum",
		},
		{
			"non-monotone buckets",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"cumulative count decreases",
		},
		{
			"garbage line",
			"# HELP x about x\n# TYPE x counter\nnot a metric at all }{\n",
			"line 3",
		},
		{
			"unterminated label",
			"# HELP x about x\n# TYPE x counter\nx{a=\"b} 1\n",
			"unterminated",
		},
		{
			"exemplar on a counter",
			"# HELP x about x\n# TYPE x counter\nx 1 # {trace_id=\"4bf92f3577b34da6a3ce929d0e0e4736\"} 1 1.0\n",
			"allowed only on histogram _bucket",
		},
		{
			"exemplar on histogram _sum",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1 # {trace_id=\"4bf92f3577b34da6a3ce929d0e0e4736\"} 1 1.0\nh_count 1\n",
			"allowed only on histogram _bucket",
		},
		{
			"exemplar trace_id not hex",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"XYZ\"} 1 1.0\nh_sum 1\nh_count 1\n",
			"not 32 lowercase hex",
		},
		{
			"exemplar without label set",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # 0.5\nh_sum 1\nh_count 1\n",
			"no label set",
		},
		{
			"exemplar with bad value",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"4bf92f3577b34da6a3ce929d0e0e4736\"} oops 1.0\nh_sum 1\nh_count 1\n",
			"bad value",
		},
		{
			"exemplar with bad timestamp",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"4bf92f3577b34da6a3ce929d0e0e4736\"} 1 later\nh_sum 1\nh_count 1\n",
			"bad timestamp",
		},
		{
			"exemplar with extra fields",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"4bf92f3577b34da6a3ce929d0e0e4736\"} 1 1.0 extra\nh_sum 1\nh_count 1\n",
			"want `value [timestamp]`",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			problems := LintExposition(strings.NewReader(c.payload))
			for _, p := range problems {
				if strings.Contains(p, c.wantProblem) {
					return
				}
			}
			t.Errorf("problems %v do not mention %q", problems, c.wantProblem)
		})
	}
}

// TestLintExpositionCleanPayload: a well-formed mixed payload yields no
// problems (guards against linter false positives).
func TestLintExpositionCleanPayload(t *testing.T) {
	payload := `# HELP up Whether the target is up.
# TYPE up gauge
up 1
# HELP rpc_seconds RPC latency.
# TYPE rpc_seconds histogram
rpc_seconds_bucket{le="0.1"} 1
rpc_seconds_bucket{le="+Inf"} 3
rpc_seconds_sum 0.5
rpc_seconds_count 3
# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total{code="200",path="/v1/query"} 10
reqs_total{code="500",path="/v1/que\"ry\n"} 0
`
	if problems := LintExposition(strings.NewReader(payload)); len(problems) != 0 {
		t.Errorf("unexpected problems: %v", problems)
	}
}
