package core

import (
	"context"
	"maps"
	"time"

	"evprop/internal/cache"
	"evprop/internal/obs"
	otrace "evprop/internal/obs/trace"
	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

// The shared-evidence result cache: serving traffic is heavily skewed
// toward a small set of evidence configurations, so completed propagation
// results are retained in a sharded LRU keyed by the canonical signature of
// (semiring mode, hard evidence, soft evidence), and concurrent queries
// with one signature collapse into a single propagation via a
// context-aware singleflight group.
//
// Cached results are *pinned*: their propagation state never returns to
// the engine's state pool, so any number of concurrent readers may derive
// posteriors from one shared result while later propagations recycle
// other states freely. Eviction and invalidation simply drop the pinned
// result — readers still holding it keep valid immutable data, and the
// garbage collector reclaims it when the last reader lets go.

// PropagateCachedContext is PropagateSoftContext through the result cache:
// a hit returns the shared pinned result of an earlier identical
// propagation, a miss propagates once — collapsing concurrent identical
// misses into that one run — and caches the result. cached reports whether
// this call was served without starting its own propagation (a cache hit
// or a collapsed singleflight waiter). like may be nil for hard-only
// evidence. Engines compiled without a cache fall back to a plain
// propagation with cached == false.
//
// A waiter's cancellation is its own: the shared propagation keeps running
// for the other waiters and is cancelled only when none remain.
func (e *Engine) PropagateCachedContext(ctx context.Context, ev potential.Evidence, like potential.Likelihood) (res *Result, cached bool, err error) {
	return e.propagateCached(ctx, ev, like, taskgraph.SumProduct)
}

// PropagateMaxCachedContext is PropagateMaxContext through the result
// cache. Sum- and max-product results are keyed under distinct signatures,
// so the two semirings never serve each other's tables.
func (e *Engine) PropagateMaxCachedContext(ctx context.Context, ev potential.Evidence) (res *Result, cached bool, err error) {
	return e.propagateCached(ctx, ev, nil, taskgraph.MaxProduct)
}

func (e *Engine) propagateCached(ctx context.Context, ev potential.Evidence, like potential.Likelihood, mode taskgraph.Mode) (*Result, bool, error) {
	if e.cache == nil {
		res, err := e.propagateFull(ctx, ev, like, mode)
		return res, false, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	sp := otrace.FromContext(ctx)
	sig := cache.Signature(byte(mode), ev, like)
	lsp := sp.StartChild("cache.lookup")
	if v, ok := e.cache.Get(sig); ok {
		lsp.SetAttr(otrace.Bool("cache.hit", true))
		lsp.End()
		e.recordCached(ctx, mode.String(), sig, ev, time.Since(start))
		return v.(*Result), true, nil
	}
	lsp.SetAttr(otrace.Bool("cache.hit", false))
	lsp.End()
	// The generation is read before the propagation starts: should an
	// InvalidateCache land while the run is in flight, the Add below is
	// dropped and the (potentially stale) result is never cached.
	gen := e.cache.Generation()
	fsp := sp.StartChild("singleflight")
	v, err, shared := e.flight.Do(ctx, sig, func(runCtx context.Context) (any, error) {
		res, err := e.propagateFull(runCtx, ev, like, mode)
		if err != nil {
			return nil, err
		}
		res.pinned = true
		e.cache.Add(sig, res, gen)
		return res, nil
	})
	if shared {
		fsp.SetAttr(otrace.String("role", "waiter"))
	} else {
		fsp.SetAttr(otrace.String("role", "leader"))
	}
	if err != nil {
		fsp.Fail(err.Error())
	}
	fsp.End()
	if err != nil {
		return nil, false, err
	}
	if shared {
		e.collapsed.Add(1)
		e.recordCached(ctx, mode.String(), sig, ev, time.Since(start))
	}
	return v.(*Result), shared, nil
}

// recordCached leaves a cache-served query's summary in the flight
// recorder, marked Cached. No scheduler ran, so there are no metrics, the
// latency (a lookup, or a singleflight wait) stays out of the adaptive
// slow-threshold histogram, and the record can never be captured as slow.
func (e *Engine) recordCached(ctx context.Context, mode, sig string, ev potential.Evidence, elapsed time.Duration) {
	rec := e.opts.Recorder
	if rec == nil {
		return
	}
	id := obs.QueryIDFrom(ctx)
	if id == "" {
		id = obs.NewQueryID()
	}
	info := obs.RunInfo{
		ID:           id,
		Mode:         mode,
		EvidenceVars: len(ev),
		Elapsed:      elapsed,
		Cached:       true,
		EvidenceSig:  sig,
	}
	if e.opts.RecordEvidence {
		info.Evidence = maps.Clone(ev)
	}
	rec.RecordRun(info, nil)
}

// EvidenceSignature returns the sum-product cache key of an evidence
// configuration — the signature under which PropagateCachedContext would
// look it up. Callers above the engine (server-side request coalescing) use
// it to group identical queries without propagating.
func (e *Engine) EvidenceSignature(ev potential.Evidence, like potential.Likelihood) string {
	return cache.Signature(byte(taskgraph.SumProduct), ev, like)
}

// CacheEnabled reports whether the engine was built with a result cache.
func (e *Engine) CacheEnabled() bool { return e.cache != nil }

// CacheStats is a snapshot of the result cache's counters.
type CacheStats struct {
	// Enabled is false when the engine has no cache (CacheSize 0).
	Enabled bool
	// Capacity and Entries are the cache's configured size and current fill.
	Capacity, Entries int
	// Hits and Misses count lookups; Collapsed counts queries served by
	// another caller's in-flight propagation (singleflight waiters).
	Hits, Misses, Collapsed int64
}

// CacheStats returns the result cache's counters (zero value when the
// engine has no cache).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return CacheStats{
		Enabled:   true,
		Capacity:  e.cache.Cap(),
		Entries:   e.cache.Len(),
		Hits:      e.cache.Hits(),
		Misses:    e.cache.Misses(),
		Collapsed: e.collapsed.Load(),
	}
}

// InvalidateCache drops every cached result and fences in-flight inserts:
// propagations started before the call can never re-populate the cache,
// so no query after InvalidateCache returns is served a pre-invalidation
// result. Results already handed out stay valid — they are immutable.
func (e *Engine) InvalidateCache() {
	if e.cache != nil {
		e.cache.Purge()
	}
}
