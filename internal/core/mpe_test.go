package core

import (
	"math"
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/potential"
)

// bruteMPE finds argmax_x P(x, e) by joint enumeration.
func bruteMPE(t *testing.T, net *bayesnet.Network, ev potential.Evidence) (map[int]int, float64) {
	t.Helper()
	joint, err := net.Joint()
	if err != nil {
		t.Fatal(err)
	}
	if err := joint.Reduce(ev); err != nil {
		t.Fatal(err)
	}
	idx, v := joint.ArgMax()
	states := joint.AssignmentOf(idx)
	out := map[int]int{}
	for pos, variable := range joint.Vars {
		out[variable] = states[pos]
	}
	return out, v
}

func TestMPEMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		net := bayesnet.RandomNetwork(9, 2, 2, seed)
		tr, err := net.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Scheduler{Serial, Collaborative} {
			e, err := NewEngine(tr, Options{Workers: 4, Scheduler: s, Reroot: true, PartitionThreshold: 4})
			if err != nil {
				t.Fatal(err)
			}
			ev := potential.Evidence{0: 1}
			res, err := e.PropagateMax(ev)
			if err != nil {
				t.Fatal(err)
			}
			got, gotP, err := res.MostProbableExplanation()
			if err != nil {
				t.Fatal(err)
			}
			_, wantP := bruteMPE(t, net, ev)
			// Probabilities must match exactly (ties may differ in
			// assignment, so compare by probability of the returned
			// assignment instead of per-variable equality).
			if math.Abs(gotP-wantP) > 1e-9*wantP {
				t.Errorf("seed %d %v: MPE prob %v, brute %v", seed, s, gotP, wantP)
			}
			if p := jointProbOf(t, net, got, ev); math.Abs(p-wantP) > 1e-9*wantP {
				t.Errorf("seed %d %v: returned assignment has P=%v, optimum %v", seed, s, p, wantP)
			}
			if got[0] != 1 {
				t.Errorf("seed %d: MPE contradicts evidence", seed)
			}
		}
	}
}

// jointProbOf evaluates P(assignment) honoring evidence reduction.
func jointProbOf(t *testing.T, net *bayesnet.Network, assignment map[int]int, ev potential.Evidence) float64 {
	t.Helper()
	joint, err := net.Joint()
	if err != nil {
		t.Fatal(err)
	}
	if err := joint.Reduce(ev); err != nil {
		t.Fatal(err)
	}
	states := make([]int, len(joint.Vars))
	for pos, v := range joint.Vars {
		states[pos] = assignment[v]
	}
	return joint.Data[joint.IndexOf(states)]
}

func TestMPEOnAsia(t *testing.T) {
	net, ids := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// With no evidence the MPE is the all-healthy non-smoker state.
	res, err := e.PropagateMax(nil)
	if err != nil {
		t.Fatal(err)
	}
	mpe, p, err := res.MostProbableExplanation()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Asia", "Tub", "Lung", "TbOrCa", "XRay", "Dysp"} {
		if mpe[ids[name]] != 0 {
			t.Errorf("MPE[%s] = %d, want 0", name, mpe[ids[name]])
		}
	}
	_, want := bruteMPE(t, net, nil)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("MPE prob %v, brute %v", p, want)
	}
}

func TestMPERequiresMaxState(t *testing.T) {
	net, _ := bayesnet.Sprinkler()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Propagate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.MostProbableExplanation(); err == nil {
		t.Error("MostProbableExplanation accepted a sum-product result")
	}
}

func TestMPEImpossibleEvidence(t *testing.T) {
	net := bayesnet.New()
	net.MustAddNode("A", 2, nil, []float64{1, 0})
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.PropagateMax(potential.Evidence{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.MostProbableExplanation(); err == nil {
		t.Error("MPE under impossible evidence succeeded")
	}
}
