package core

import (
	"math"
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/jtree"
	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

func TestAllSchedulersMatchOracle(t *testing.T) {
	net, ids := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ev := potential.Evidence{ids["XRay"]: 1}
	for _, s := range []Scheduler{Collaborative, Serial, LevelSync, DataParallel, Centralized, WorkStealing} {
		for _, reroot := range []bool{false, true} {
			e, err := NewEngine(tr, Options{Workers: 4, Scheduler: s, Reroot: reroot, PartitionThreshold: 4})
			if err != nil {
				t.Fatalf("%v reroot=%v: %v", s, reroot, err)
			}
			res, err := e.Propagate(ev)
			if err != nil {
				t.Fatalf("%v reroot=%v: %v", s, reroot, err)
			}
			for name, v := range ids {
				if _, fixed := ev[v]; fixed {
					continue
				}
				got, err := res.Marginal(v)
				if err != nil {
					t.Fatal(err)
				}
				want, err := net.ExactMarginal(v, ev)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want, 1e-9) {
					t.Errorf("%v reroot=%v: P(%s|e) = %v, oracle %v", s, reroot, name, got.Data, want.Data)
				}
			}
		}
	}
}

func TestProbabilityOfEvidence(t *testing.T) {
	net, ids := bayesnet.Sprinkler()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// P(WetGrass=1) from the joint oracle.
	joint, err := net.Joint()
	if err != nil {
		t.Fatal(err)
	}
	m, err := joint.Marginal([]int{ids["WetGrass"]})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Data[1]
	res, err := e.Propagate(potential.Evidence{ids["WetGrass"]: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ProbabilityOfEvidence(); math.Abs(got-want) > 1e-9 {
		t.Errorf("P(e) = %v, want %v", got, want)
	}
	// No evidence: P(e) = 1.
	res, err = e.Propagate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ProbabilityOfEvidence(); math.Abs(got-1) > 1e-9 {
		t.Errorf("P(no evidence) = %v, want 1", got)
	}
}

func TestJointMarginal(t *testing.T) {
	net, ids := bayesnet.Sprinkler()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Propagate(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sprinkler and Rain share a clique (both parents of WetGrass).
	jm, err := res.JointMarginal([]int{ids["Sprinkler"], ids["Rain"]})
	if err != nil {
		t.Fatal(err)
	}
	joint, err := net.Joint()
	if err != nil {
		t.Fatal(err)
	}
	want, err := joint.Marginal(jm.Vars)
	if err != nil {
		t.Fatal(err)
	}
	if !jm.Equal(want, 1e-9) {
		t.Errorf("joint marginal %v, oracle %v", jm.Data, want.Data)
	}
	if _, err := res.JointMarginal([]int{0, 1, 2, 3}); err == nil {
		t.Error("JointMarginal over non-clique set succeeded")
	}
}

func TestEngineRerootBookkeeping(t *testing.T) {
	tr, err := jtree.Template(jtree.TemplateConfig{Branches: 3, TotalCliques: 41, Width: 4, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(3); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 2, Reroot: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.RerootedFrom != tr.Root {
		t.Errorf("RerootedFrom = %d, want %d", e.RerootedFrom, tr.Root)
	}
	if e.Tree().Root == tr.Root {
		t.Error("engine did not move the root of the template tree")
	}
	// Caller's tree untouched.
	if tr.Cliques[tr.Root].Parent != -1 {
		t.Error("NewEngine mutated the caller's tree")
	}
	// Without reroot: bookkeeping empty.
	e2, err := NewEngine(tr, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e2.RerootedFrom != -1 || e2.Tree().Root != tr.Root {
		t.Error("non-reroot engine changed the root")
	}
}

func TestEngineRejectsInvalidTree(t *testing.T) {
	tr, err := jtree.Chain(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeUniform(); err != nil {
		t.Fatal(err)
	}
	tr.Cliques[1].Parent = 2 // corrupt
	if _, err := NewEngine(tr, Options{}); err == nil {
		t.Error("accepted corrupt tree")
	}
}

func TestEngineDefaultWorkers(t *testing.T) {
	net, _ := bayesnet.Sprinkler()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Options().Workers < 1 {
		t.Errorf("default workers = %d", e.Options().Workers)
	}
}

func TestSchedulerNames(t *testing.T) {
	for _, s := range []Scheduler{Collaborative, Serial, LevelSync, DataParallel, Centralized, WorkStealing} {
		name := s.String()
		back, err := ParseScheduler(name)
		if err != nil || back != s {
			t.Errorf("round trip %v -> %q -> %v (%v)", s, name, back, err)
		}
	}
	if _, err := ParseScheduler("bogus"); err == nil {
		t.Error("parsed bogus scheduler")
	}
	if Scheduler(99).String() == "" {
		t.Error("unknown scheduler string empty")
	}
}

func TestImpossibleEvidence(t *testing.T) {
	net := bayesnet.New()
	net.MustAddNode("A", 2, nil, []float64{1, 0})
	net.MustAddNode("B", 2, []int{0}, []float64{0.5, 0.5, 0.5, 0.5})
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Propagate(potential.Evidence{0: 1}) // P(A=1) = 0
	if err != nil {
		t.Fatal(err)
	}
	if p := res.ProbabilityOfEvidence(); p != 0 {
		t.Errorf("P(impossible evidence) = %v", p)
	}
	if _, err := res.Marginal(1); err == nil {
		t.Error("Marginal under impossible evidence succeeded")
	}
}

func TestPropagateIsRepeatable(t *testing.T) {
	// Propagations must not corrupt engine state: repeated runs with
	// different evidence stay correct.
	net, ids := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 3, Reroot: true, PartitionThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []potential.Evidence{nil, {ids["Dysp"]: 1}, nil, {ids["Smoke"]: 0}}
	for i, ev := range cases {
		res, err := e.Propagate(ev)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Marginal(ids["Lung"])
		if err != nil {
			t.Fatal(err)
		}
		want, err := net.ExactMarginal(ids["Lung"], ev)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-9) {
			t.Errorf("run %d: P(Lung|e) = %v, oracle %v", i, got.Data, want.Data)
		}
	}
}

func TestPropagateSoftMatchesOracle(t *testing.T) {
	// Soft evidence on v with weights w is equivalent to multiplying the
	// joint by w(v) and renormalizing.
	net, ids := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	like := potential.Likelihood{ids["XRay"]: {0.3, 0.9}}
	res, err := e.PropagateSoft(potential.Evidence{ids["Asia"]: 1}, like)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: joint × likelihood vector, reduced, marginalized.
	joint, err := net.Joint()
	if err != nil {
		t.Fatal(err)
	}
	vec := potential.MustNew([]int{ids["XRay"]}, []int{2})
	copy(vec.Data, like[ids["XRay"]])
	if err := joint.MulBy(vec); err != nil {
		t.Fatal(err)
	}
	if err := joint.Reduce(potential.Evidence{ids["Asia"]: 1}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Lung", "Tub", "Dysp"} {
		got, err := res.Marginal(ids[name])
		if err != nil {
			t.Fatal(err)
		}
		want, err := joint.Marginal([]int{ids[name]})
		if err != nil {
			t.Fatal(err)
		}
		if err := want.Normalize(); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-9) {
			t.Errorf("P(%s | soft) = %v, oracle %v", name, got.Data, want.Data)
		}
	}
}

func TestPropagateSoftOneHotEqualsHard(t *testing.T) {
	net, ids := bayesnet.Sprinkler()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	soft, err := e.PropagateSoft(nil, potential.Likelihood{ids["WetGrass"]: {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := e.Propagate(potential.Evidence{ids["WetGrass"]: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{ids["Rain"], ids["Sprinkler"], ids["Cloudy"]} {
		a, err := soft.Marginal(v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := hard.Marginal(v)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b, 1e-9) {
			t.Errorf("one-hot soft evidence differs from hard: %v vs %v", a.Data, b.Data)
		}
	}
}

func TestPropagateSoftErrors(t *testing.T) {
	net, ids := bayesnet.Sprinkler()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PropagateSoft(nil, potential.Likelihood{999: {1, 1}}); err == nil {
		t.Error("accepted likelihood on unknown variable")
	}
	if _, err := e.PropagateSoft(nil, potential.Likelihood{ids["Rain"]: {1, 1, 1}}); err == nil {
		t.Error("accepted wrong-length weights")
	}
	if _, err := e.PropagateSoft(nil, potential.Likelihood{ids["Rain"]: {1, -1}}); err == nil {
		t.Error("accepted negative weights")
	}
}

func TestCollectMarginalMatchesFullPropagation(t *testing.T) {
	net, ids := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheduler{Serial, Collaborative} {
		e, err := NewEngine(tr, Options{Workers: 3, Scheduler: s, PartitionThreshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		ev := potential.Evidence{ids["Dysp"]: 1}
		for name, v := range ids {
			if name == "Dysp" {
				continue
			}
			got, err := e.CollectMarginal(ev, v)
			if err != nil {
				t.Fatalf("%v %s: %v", s, name, err)
			}
			want, err := net.ExactMarginal(v, ev)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 1e-9) {
				t.Errorf("%v: collect-only P(%s|e) = %v, oracle %v", s, name, got.Data, want.Data)
			}
		}
	}
}

func TestCollectOnlyGraphIsHalf(t *testing.T) {
	net, _ := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	full := taskgraph.Build(tr)
	half := taskgraph.BuildCollectOnly(tr)
	if half.N()*2 != full.N() {
		t.Errorf("collect-only has %d tasks, full has %d", half.N(), full.N())
	}
	if err := half.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectMarginalUnknownVariable(t *testing.T) {
	net, _ := bayesnet.Sprinkler()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CollectMarginal(nil, 999); err == nil {
		t.Error("accepted unknown variable")
	}
}

func TestCollectMarginalCacheReuse(t *testing.T) {
	// Repeated queries for variables in the same clique must reuse the
	// cached graph and stay correct.
	net, ids := bayesnet.Sprinkler()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m, err := e.CollectMarginal(potential.Evidence{ids["WetGrass"]: 1}, ids["Rain"])
		if err != nil {
			t.Fatal(err)
		}
		want, err := net.ExactMarginal(ids["Rain"], potential.Evidence{ids["WetGrass"]: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(want, 1e-9) {
			t.Fatalf("iteration %d: %v vs %v", i, m.Data, want.Data)
		}
	}
}

func TestCheckCalibration(t *testing.T) {
	net, ids := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 3, PartitionThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Propagate(potential.Evidence{ids["XRay"]: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckCalibration(1e-9); err != nil {
		t.Errorf("calibrated result rejected: %v", err)
	}
	// Corrupt one clique: the check must catch it.
	res.State().Clique[0].Data[0] *= 3
	if err := res.CheckCalibration(1e-9); err == nil {
		t.Error("corrupted state passed calibration check")
	}
}
