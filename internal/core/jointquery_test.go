package core

import (
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/potential"
)

// oracleJoint computes the normalized joint posterior by enumeration.
func oracleJoint(t *testing.T, net *bayesnet.Network, vars []int, ev potential.Evidence) *potential.Potential {
	t.Helper()
	joint, err := net.Joint()
	if err != nil {
		t.Fatal(err)
	}
	if err := joint.Reduce(ev); err != nil {
		t.Fatal(err)
	}
	m, err := joint.Marginal(vars)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestJointMarginalAnyAcrossCliques(t *testing.T) {
	net, ids := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		vars []int
		ev   potential.Evidence
	}{
		{"far pair", []int{ids["Asia"], ids["XRay"]}, nil},
		{"far pair with evidence", []int{ids["Asia"], ids["XRay"]}, potential.Evidence{ids["Smoke"]: 1}},
		{"triple", []int{ids["Tub"], ids["Bronc"], ids["XRay"]}, nil},
		{"quad", []int{ids["Asia"], ids["Smoke"], ids["XRay"], ids["Dysp"]}, nil},
		{"same clique", []int{ids["Tub"], ids["Lung"]}, nil},
		{"single", []int{ids["Dysp"]}, potential.Evidence{ids["XRay"]: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := e.Propagate(c.ev)
			if err != nil {
				t.Fatal(err)
			}
			got, err := res.JointMarginalAny(c.vars)
			if err != nil {
				t.Fatal(err)
			}
			want := oracleJoint(t, net, got.Vars, c.ev)
			if !got.Equal(want, 1e-9) {
				t.Errorf("joint = %v, oracle %v", got.Data, want.Data)
			}
		})
	}
}

func TestJointMarginalAnyRandomNetworks(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		net := bayesnet.RandomNetwork(10, 2, 2, seed)
		tr, err := net.Compile()
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(tr, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Propagate(potential.Evidence{0: 0})
		if err != nil {
			t.Fatal(err)
		}
		vars := []int{1, net.N() / 2, net.N() - 1}
		got, err := res.JointMarginalAny(vars)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := oracleJoint(t, net, got.Vars, potential.Evidence{0: 0})
		if !got.Equal(want, 1e-9) {
			t.Errorf("seed %d: joint differs from oracle", seed)
		}
	}
}

func TestJointMarginalAnyErrors(t *testing.T) {
	net, _ := bayesnet.Sprinkler()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Propagate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.JointMarginalAny(nil); err == nil {
		t.Error("accepted empty query")
	}
	if _, err := res.JointMarginalAny([]int{0, 0}); err == nil {
		t.Error("accepted duplicate variables")
	}
	if _, err := res.JointMarginalAny([]int{99}); err == nil {
		t.Error("accepted unknown variable")
	}
}
