package core

import (
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/potential"
)

// TestGrandIntegration is the cross-product soak test: random networks ×
// schedulers × worker counts × rerooting × partitioning × evidence sets,
// all validated against the brute-force joint-enumeration oracle. It is
// the single test that exercises every execution path of the reproduction
// at once.
func TestGrandIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	schedulers := []Scheduler{Collaborative, Serial, LevelSync, DataParallel, Centralized, WorkStealing}
	for seed := int64(1); seed <= 3; seed++ {
		net := bayesnet.RandomNetwork(10, 2, 3, seed)
		tr, err := net.Compile()
		if err != nil {
			t.Fatal(err)
		}
		evCases := []potential.Evidence{
			nil,
			{0: 1},
			{0: 0, net.N() - 1: 1},
		}
		for _, s := range schedulers {
			for _, workers := range []int{1, 4} {
				for _, thr := range []int{0, 4} {
					e, err := NewEngine(tr, Options{
						Workers:            workers,
						Scheduler:          s,
						Reroot:             seed%2 == 0,
						PartitionThreshold: thr,
					})
					if err != nil {
						t.Fatal(err)
					}
					for ci, ev := range evCases {
						res, err := e.Propagate(ev)
						if err != nil {
							t.Fatalf("seed %d %v P=%d δ=%d case %d: %v", seed, s, workers, thr, ci, err)
						}
						if res.ProbabilityOfEvidence() <= 0 {
							// Random CPTs are strictly positive, so every
							// evidence combination is possible.
							t.Fatalf("seed %d case %d: zero evidence probability", seed, ci)
						}
						// Spot-check two marginals against the oracle.
						for _, v := range []int{1, net.N() / 2} {
							if _, fixed := ev[v]; fixed {
								continue
							}
							got, err := res.Marginal(v)
							if err != nil {
								t.Fatal(err)
							}
							want, err := net.ExactMarginal(v, ev)
							if err != nil {
								t.Fatal(err)
							}
							if !got.Equal(want, 1e-9) {
								t.Fatalf("seed %d %v P=%d δ=%d case %d: P(%d|e) = %v, oracle %v",
									seed, s, workers, thr, ci, v, got.Data, want.Data)
							}
						}
					}
					// One max-product run per configuration.
					maxRes, err := e.PropagateMax(evCases[1])
					if err != nil {
						t.Fatal(err)
					}
					if _, p, err := maxRes.MostProbableExplanation(); err != nil || p <= 0 {
						t.Fatalf("seed %d %v: MPE failed: %v %v", seed, s, p, err)
					}
				}
			}
		}
	}
}
