// Package core ties the reproduction together: it is the evidence
// propagation engine that takes a junction tree, optionally reroots it with
// Algorithm 1 to minimize the critical path, builds the task dependency
// graph, absorbs evidence, runs one of the schedulers, and exposes
// posterior queries.
//
// An Engine is safe for fully concurrent use: any number of goroutines may
// call Propagate (and friends) on one compiled engine with no external
// locking. Everything structure-dependent — the junction tree, the task
// graph, the collect-only graphs, the worker pool — is built once and read
// concurrently; everything propagation-dependent lives in a per-run
// taskgraph.State, which is recycled through a sync.Pool so steady-state
// propagation does near-zero allocation.
package core

import (
	"context"
	"fmt"
	"maps"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"evprop/internal/baseline"
	"evprop/internal/cache"
	"evprop/internal/jtree"
	"evprop/internal/lazy"
	"evprop/internal/obs"
	otrace "evprop/internal/obs/trace"
	"evprop/internal/potential"
	"evprop/internal/sched"
	"evprop/internal/taskgraph"
)

// Scheduler selects the execution strategy for one propagation.
type Scheduler int

const (
	// Collaborative is the paper's contribution (Section 6).
	Collaborative Scheduler = iota
	// Serial executes tasks on one goroutine in topological order.
	Serial
	// LevelSync is the task-level fork-join baseline.
	LevelSync
	// DataParallel parallelizes every primitive individually.
	DataParallel
	// Centralized uses a dedicated coordinator goroutine.
	Centralized
	// WorkStealing is the collaborative scheduler with tail-stealing from
	// the heaviest ready list (an extension; see sched.RunStealing).
	WorkStealing
)

var schedulerNames = map[Scheduler]string{
	Collaborative: "collaborative",
	Serial:        "serial",
	LevelSync:     "levelsync",
	DataParallel:  "dataparallel",
	Centralized:   "centralized",
	WorkStealing:  "stealing",
}

func (s Scheduler) String() string {
	if n, ok := schedulerNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scheduler(%d)", int(s))
}

// ParseScheduler resolves a scheduler name used by the CLI tools.
func ParseScheduler(name string) (Scheduler, error) {
	for s, n := range schedulerNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheduler %q", name)
}

// Options configures an Engine.
type Options struct {
	// Workers is the number of worker goroutines P. 0 selects GOMAXPROCS.
	Workers int
	// Scheduler selects the execution strategy (default Collaborative).
	Scheduler Scheduler
	// Reroot applies Algorithm 1 before building the task graph,
	// minimizing the propagation critical path (default off; turn on for
	// parallel runs).
	Reroot bool
	// PartitionThreshold is δ: tasks over tables larger than this many
	// entries are split by the collaborative scheduler's Partition module.
	// 0 disables partitioning.
	PartitionThreshold int
	// CacheSize, when positive, enables the shared-evidence result cache:
	// an LRU of this many completed propagation results keyed by the
	// canonical evidence signature, fronted by a singleflight group that
	// collapses concurrent identical queries into one propagation. See
	// PropagateCachedContext.
	CacheSize int
	// Trace records a per-worker execution timeline in Result.Sched.Trace
	// (collaborative scheduler only).
	Trace bool
	// Recorder, when set, receives a summary of every propagation (the
	// flight recorder): runs are traced so slow ones retain their full
	// execution timeline, and each run's query ID, latency and Fig. 8
	// gauges land in the recorder's ring.
	Recorder *obs.FlightRecorder
	// PprofLabels tags scheduler workers with pprof goroutine labels
	// (query_id, task_kind) during each run. Off by default — the labels
	// are observable only through the pprof endpoints, and applying them
	// per item costs a few percent of propagation throughput, so callers
	// enable this only when those endpoints are exposed.
	PprofLabels bool
	// RecordEvidence retains each run's full evidence map in its flight
	// record, in addition to the always-present canonical signature, so
	// recorded queries are re-executable (audit replay). Off by default:
	// the evidence map is the one flight-record field whose size the
	// client controls.
	RecordEvidence bool
	// Lazy switches the engine to zero-aware lazy propagation (package
	// lazy): the tree is precalibrated once, each query runs a pruned
	// collect graph restricted to the cliques its evidence disturbs, and
	// the distribute pass is materialized on demand per posterior query.
	// Results are identical up to floating-point tolerance; flop, task and
	// message counters (Result.LazyStats) expose the pruning.
	Lazy bool
}

// ErrReleased is returned by Result methods after Release recycled the
// result's propagation state.
var ErrReleased = fmt.Errorf("core: result released")

// Engine owns a prepared junction tree and its task dependency graph, and
// runs any number of independent propagations over it, concurrently if the
// caller wishes.
type Engine struct {
	opts  Options
	tree  *jtree.Tree
	graph *taskgraph.Graph
	// RerootedFrom records the original root when Reroot moved it (-1
	// otherwise).
	RerootedFrom int
	// RerootTime is how long root selection and rerooting took, the
	// overhead the paper reports as negligible (24 µs for 512 cliques).
	RerootTime time.Duration

	// statePools recycles propagation states per semiring. States carry no
	// evidence residue: Reset re-copies the tree potentials on reuse.
	statePools [2]sync.Pool

	// lazyProp owns the precalibrated tables and pruned-plan cache when
	// Options.Lazy is set, nil otherwise.
	lazyProp *lazy.Prop

	// pool holds the persistent collaborative-scheduler workers, created
	// lazily on first use so serial engines never spawn goroutines.
	poolMu     sync.Mutex
	pool       *sched.Pool
	poolClosed bool

	// propagations counts scheduler invocations (full and collect-only),
	// the observable that lets tests prove a query cost exactly one
	// propagation.
	propagations atomic.Int64

	// obsAgg accumulates per-run observability reports (Fig. 8 metrics)
	// for the schedulers that produce sched.Metrics.
	obsAgg obs.Aggregate

	collectMu     sync.Mutex
	collectGraphs map[int]*collectEntry // per-target collect-only graphs

	// cache and flight are the shared-evidence result cache and its
	// request-collapsing singleflight group (nil when CacheSize is 0).
	// collapsed counts queries served by another caller's propagation.
	cache     *cache.LRU
	flight    *cache.Group
	collapsed atomic.Int64

	// stealGauges is the live gauge surface shared by the work-stealing
	// scheduler's transient per-run goroutines, so steal/completion counters
	// accumulate across propagations the way the persistent pool's do.
	stealGauges *sched.Gauges
}

// collectEntry caches the collect-only graph toward one target clique plus
// a pool of reusable states for it.
type collectEntry struct {
	g      *taskgraph.Graph
	states sync.Pool
}

// NewEngine validates and prepares the junction tree. The tree is cloned;
// the caller's copy is never mutated.
func NewEngine(t *jtree.Tree, opts Options) (*Engine, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{opts: opts, RerootedFrom: -1}
	work := t.Clone()
	if opts.Reroot {
		start := time.Now()
		r := work.SelectRoot()
		if r != work.Root {
			nt, err := work.Reroot(r)
			if err != nil {
				return nil, err
			}
			e.RerootedFrom = work.Root
			work = nt
		}
		e.RerootTime = time.Since(start)
	}
	e.tree = work
	e.graph = taskgraph.Build(work)
	if err := e.graph.Validate(); err != nil {
		return nil, err
	}
	if opts.Lazy {
		lp, err := lazy.New(e.tree, e.graph)
		if err != nil {
			return nil, err
		}
		e.lazyProp = lp
	}
	if opts.CacheSize > 0 {
		e.cache = cache.NewLRU(opts.CacheSize)
		e.flight = &cache.Group{}
	}
	if opts.Scheduler == WorkStealing {
		e.stealGauges = sched.NewGauges(opts.Workers)
	}
	// Engines dropped without Close would otherwise leak their parked
	// worker goroutines; the finalizer is the safety net for short-lived
	// engines in tests and experiments.
	runtime.SetFinalizer(e, (*Engine).Close)
	return e, nil
}

// Close releases the engine's persistent worker pool. It is idempotent and
// optional — a finalizer closes abandoned engines — but long-running
// programs that create many engines should Close them deterministically.
// Propagations after Close fall back to transient per-call workers.
func (e *Engine) Close() {
	e.poolMu.Lock()
	p := e.pool
	e.pool = nil
	e.poolClosed = true
	e.poolMu.Unlock()
	if p != nil {
		p.Close()
	}
}

// workerPool returns the persistent pool, creating it on first use, or nil
// after Close.
func (e *Engine) workerPool() *sched.Pool {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.poolClosed {
		return nil
	}
	if e.pool == nil {
		p, err := sched.NewPool(e.opts.Workers)
		if err != nil {
			return nil
		}
		e.pool = p
	}
	return e.pool
}

// Tree returns the engine's (possibly rerooted) junction tree.
func (e *Engine) Tree() *jtree.Tree { return e.tree }

// Graph returns the engine's task dependency graph.
func (e *Engine) Graph() *taskgraph.Graph { return e.graph }

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// Propagations returns how many scheduler runs (full propagations and
// collect-only passes) the engine has executed.
func (e *Engine) Propagations() int64 { return e.propagations.Load() }

// ObsSnapshot returns the engine's aggregated observability counters: the
// lifetime busy/overhead/per-kind totals and the most recent run's Fig. 8
// load-balance and overhead-fraction gauges. Only schedulers that report
// sched.Metrics (collaborative, stealing) contribute.
func (e *Engine) ObsSnapshot() obs.AggregateSnapshot { return e.obsAgg.Snapshot() }

// Recorder returns the engine's flight recorder, nil when none is attached.
func (e *Engine) Recorder() *obs.FlightRecorder { return e.opts.Recorder }

// Gauges snapshots the live scheduler gauge surface: per-worker states,
// ready-list depths and weight counters, steal/partition counters and the
// global task-list depth. The read is wait-free for the workers. Engines on
// the serial or baseline schedulers report an empty snapshot.
func (e *Engine) Gauges() sched.GaugesSnapshot {
	switch e.opts.Scheduler {
	case WorkStealing:
		return e.stealGauges.Snapshot()
	case Collaborative:
		if p := e.workerPool(); p != nil {
			return p.Gauges().Snapshot()
		}
	}
	return sched.GaugesSnapshot{}
}

// getState returns a recycled state for the mode, or allocates one.
func (e *Engine) getState(mode taskgraph.Mode) (*taskgraph.State, error) {
	if v := e.statePools[mode].Get(); v != nil {
		st := v.(*taskgraph.State)
		st.Reset(mode)
		return st, nil
	}
	return e.graph.NewStateMode(mode)
}

// putState recycles a state whose run completed (or never started). States
// of failed or cancelled scheduler runs must NOT be recycled: pool workers
// may still be draining their queued items.
func (e *Engine) putState(st *taskgraph.State) {
	e.statePools[st.Mode()].Put(st)
}

// Result is one completed propagation.
type Result struct {
	eng   *Engine
	state propState
	pe    float64 // evidence mass, cached so it survives Release
	// Elapsed is the wall-clock propagation time (excluding evidence
	// absorption and state allocation).
	Elapsed time.Duration
	// Sched carries the collaborative scheduler's metrics when that
	// scheduler ran, nil otherwise.
	Sched *sched.Metrics

	// pinned marks a result held by the engine's shared-evidence cache:
	// Release is a no-op (the state must never recycle into the pool while
	// other readers share it) and single-variable marginals are memoized,
	// so repeated cache hits pay for each posterior once.
	pinned    bool
	marginals sync.Map // variable id -> *potential.Potential (pinned only)
}

// Pinned reports whether the result is owned by the engine's result cache
// and therefore shared: Release will not recycle it, and potentials it
// returns are shared and must not be mutated.
func (r *Result) Pinned() bool { return r.pinned }

// Propagate absorbs the evidence into a working state and runs the full
// two-pass evidence propagation with the configured scheduler. It is safe
// to call from any number of goroutines concurrently.
func (e *Engine) Propagate(ev potential.Evidence) (*Result, error) {
	return e.propagateFull(context.Background(), ev, nil, taskgraph.SumProduct)
}

// PropagateContext is Propagate with cancellation: a cancelled context
// stops the scheduler run at the next task boundary and returns ctx.Err().
func (e *Engine) PropagateContext(ctx context.Context, ev potential.Evidence) (*Result, error) {
	return e.propagateFull(ctx, ev, nil, taskgraph.SumProduct)
}

// PropagateSoft additionally absorbs soft (likelihood) evidence before
// propagating: each weight vector scales the corresponding variable's
// states instead of fixing one.
func (e *Engine) PropagateSoft(ev potential.Evidence, like potential.Likelihood) (*Result, error) {
	return e.propagateFull(context.Background(), ev, like, taskgraph.SumProduct)
}

// PropagateSoftContext is PropagateSoft with cancellation.
func (e *Engine) PropagateSoftContext(ctx context.Context, ev potential.Evidence, like potential.Likelihood) (*Result, error) {
	return e.propagateFull(ctx, ev, like, taskgraph.SumProduct)
}

// PropagateMax runs max-product propagation: afterwards every clique holds
// max-marginals and Result.MostProbableExplanation extracts the MPE.
func (e *Engine) PropagateMax(ev potential.Evidence) (*Result, error) {
	return e.propagateFull(context.Background(), ev, nil, taskgraph.MaxProduct)
}

// PropagateMaxContext is PropagateMax with cancellation.
func (e *Engine) PropagateMaxContext(ctx context.Context, ev potential.Evidence) (*Result, error) {
	return e.propagateFull(ctx, ev, nil, taskgraph.MaxProduct)
}

func (e *Engine) propagateFull(ctx context.Context, ev potential.Evidence, like potential.Likelihood, mode taskgraph.Mode) (*Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	var sp *otrace.Span
	if ctx != nil {
		sp = otrace.FromContext(ctx)
	}
	var st propState
	var exec taskgraph.Executor
	asp := sp.StartChild("absorb", otrace.Int("evidence.vars", int64(len(ev))))
	if e.lazyProp != nil {
		lst, err := e.lazyProp.NewState(mode, ev, like)
		if err != nil {
			asp.Fail(err.Error())
			asp.End()
			return nil, err
		}
		if lst.PlanHit() {
			asp.SetAttr(otrace.String("plan", "hit"))
		} else {
			asp.SetAttr(otrace.String("plan", "build"))
		}
		st, exec = lst, lst
	} else {
		est, err := e.getState(mode)
		if err != nil {
			asp.Fail(err.Error())
			asp.End()
			return nil, err
		}
		if err := est.AbsorbEvidence(ev); err != nil {
			e.putState(est) // never ran; Reset restores the partial reduction
			asp.Fail(err.Error())
			asp.End()
			return nil, err
		}
		if err := est.AbsorbLikelihood(like); err != nil {
			e.putState(est)
			asp.Fail(err.Error())
			asp.End()
			return nil, err
		}
		st, exec = est, est
	}
	asp.End()
	res := &Result{eng: e, state: st}
	id := e.queryID(ctx)
	psp := sp.StartChild("propagate",
		otrace.String("scheduler", e.opts.Scheduler.String()),
		otrace.Int("workers", int64(e.opts.Workers)))
	start := time.Now()
	m, err := e.runScheduler(ctx, id, exec)
	elapsed := time.Since(start)
	e.finishRunSpan(psp, start, m, st, err)
	e.recordRun(id, mode.String(), byte(mode), ev, like, elapsed, m, st, err)
	if err != nil {
		// The state may still be referenced by pool workers draining the
		// failed run's queue — drop it to the GC instead of recycling.
		return nil, err
	}
	res.Sched = m
	res.Elapsed = elapsed
	res.pe = st.EvidenceMass()
	return res, nil
}

// finishRunSpan closes a propagation's run span: scheduler metrics become
// attributes plus coarse per-task-kind child spans folded from the
// already-collected sched.Metrics (no extra hot-path clocking — the
// children are synthesized after the run from per-kind busy totals), and
// lazy pruning counters land as attributes when the lazy engine ran.
func (e *Engine) finishRunSpan(psp *otrace.Span, start time.Time, m *sched.Metrics, st propState, runErr error) {
	if psp == nil {
		return
	}
	if runErr != nil {
		psp.Fail(runErr.Error())
	}
	if m != nil {
		psp.SetAttr(otrace.Int("tasks", int64(m.Tasks)))
		var kinds [taskgraph.NumKinds]time.Duration
		for _, wm := range m.Workers {
			for k, d := range wm.KindBusy {
				kinds[k] += d
			}
		}
		for k, d := range kinds {
			if d > 0 {
				psp.ChildInterval("kind."+taskgraph.Kind(k).String(), start, d)
			}
		}
	}
	if lst, ok := st.(*lazy.State); ok && runErr == nil {
		s := lst.Stats()
		psp.SetAttr(
			otrace.Int("lazy.msg_sent", s.MessagesSent),
			otrace.Int("lazy.msg_blocked", s.MessagesBlocked),
			otrace.Int("lazy.msg_skipped", s.MessagesSkipped),
			otrace.Int("lazy.flops", s.Flops),
			otrace.Int("lazy.flops_full", s.FlopsFull),
		)
	}
	psp.End()
}

// queryID resolves the run's query ID before the scheduler starts, so the
// same ID reaches both the workers' pprof labels and the flight recorder. A
// fresh ID is minted only when a recorder will log it; otherwise an absent
// ID stays absent and label setup is skipped entirely.
func (e *Engine) queryID(ctx context.Context) string {
	id := obs.QueryIDFrom(ctx)
	if id == "" && e.opts.Recorder != nil {
		id = obs.NewQueryID()
	}
	return id
}

// recordRun folds one scheduler run into the flight recorder (when one is
// attached) under the run's resolved query ID. Traces armed by the recorder
// (rather than requested via Options.Trace) are stripped from the metrics
// afterwards: slow runs' traces now belong to the recorder, fast runs'
// traces are dead weight.
func (e *Engine) recordRun(id, mode string, sigMode byte, ev potential.Evidence, like potential.Likelihood, elapsed time.Duration, m *sched.Metrics, st propState, runErr error) {
	rec := e.opts.Recorder
	if rec == nil {
		return
	}
	if runErr != nil {
		// Mirror the state-drop policy for failed and cancelled runs: pool
		// workers may still be executing already-fetched items, mutating the
		// per-worker metrics and trace buffers (sched detached the latter
		// from the returned Trace). Record only the scalar fields and leave
		// the rest to the GC with the run.
		m = nil
	}
	info := obs.RunInfo{
		ID:           id,
		Mode:         mode,
		EvidenceVars: len(ev),
		Elapsed:      elapsed,
		Err:          runErr,
		EvidenceSig:  cache.Signature(sigMode, ev, like),
	}
	if e.opts.RecordEvidence {
		info.Evidence = maps.Clone(ev)
	}
	// Lazy pruning counters make slow lazy queries explainable from the
	// recorder alone: the record shows what the pruning did (or failed to
	// prune) without needing a retained trace.
	if lst, ok := st.(*lazy.State); ok && runErr == nil {
		s := lst.Stats()
		info.Lazy = true
		info.LazyMsgSent = s.MessagesSent
		info.LazyMsgBlocked = s.MessagesBlocked
		info.LazyMsgSkipped = s.MessagesSkipped
		info.LazyFlops = s.Flops
		info.LazyFlopsFull = s.FlopsFull
		info.LazyMaterialized = s.MaterializedEntries
	}
	rec.RecordRun(info, m)
	if m != nil && !e.opts.Trace {
		// The trace existed only for the recorder. If the run was slow the
		// recorder finalized and kept it; otherwise Release recycles its
		// buffers. Either way it leaves the caller-visible metrics.
		m.Trace.Release()
		m.Trace = nil
	}
}

// runScheduler executes the state's graph with the configured strategy,
// returning collaborative-scheduler metrics when applicable. queryID, when
// non-empty and Options.PprofLabels is on, tags the workers with pprof
// labels for the duration of the run (the recorder uses the ID either way).
func (e *Engine) runScheduler(ctx context.Context, queryID string, st taskgraph.Executor) (*sched.Metrics, error) {
	e.propagations.Add(1)
	if !e.opts.PprofLabels {
		queryID = "" // sched uses the ID only for labels; drop it at zero cost
	}
	// A flight recorder arms tracing on every run so a run that turns out
	// slow still has its full timeline to retain — slowness is only known
	// after the fact. Recorder-armed traces (not requested by the user)
	// defer their merge: recordRun keeps them only for slow runs, so fast
	// runs just recycle their event buffers.
	trace := e.opts.Trace || e.opts.Recorder != nil
	lazy := trace && !e.opts.Trace
	switch e.opts.Scheduler {
	case Collaborative:
		opts := sched.Options{
			Workers:   e.opts.Workers,
			Threshold: e.opts.PartitionThreshold,
			Trace:     trace,
			LazyTrace: lazy,
			Ctx:       ctx,
			QueryID:   queryID,
		}
		var m *sched.Metrics
		var err error
		if p := e.workerPool(); p != nil {
			m, err = p.Run(st, opts)
		} else {
			m, err = sched.Run(st, opts)
		}
		return e.observeRun(m, err)
	case WorkStealing:
		m, err := sched.RunStealing(st, sched.Options{
			Workers:   e.opts.Workers,
			Threshold: e.opts.PartitionThreshold,
			Trace:     trace,
			LazyTrace: lazy,
			Ctx:       ctx,
			QueryID:   queryID,
			Gauges:    e.stealGauges,
		})
		return e.observeRun(m, err)
	case Serial:
		_, err := baseline.Serial(st)
		return nil, err
	case LevelSync:
		_, err := baseline.LevelSync(st, e.opts.Workers)
		return nil, err
	case DataParallel:
		_, err := baseline.DataParallel(st, e.opts.Workers)
		return nil, err
	case Centralized:
		p := e.opts.Workers
		if p < 2 {
			p = 2
		}
		_, err := baseline.Centralized(st, p)
		return nil, err
	default:
		return nil, fmt.Errorf("core: unknown scheduler %v", e.opts.Scheduler)
	}
}

// observeRun folds a successful run's metrics into the engine's
// observability aggregate before handing them to the caller.
func (e *Engine) observeRun(m *sched.Metrics, err error) (*sched.Metrics, error) {
	if err == nil && m != nil {
		e.obsAgg.Observe(obs.FromSched(m))
	}
	return m, err
}

// CollectMarginal answers a single-variable query with a collection-only
// propagation: the tree is rerooted at a clique containing v, the
// leaves-to-root half of the task graph runs, and the posterior is read
// from the root — roughly half the work of Propagate. The collect-only
// graph is built per target clique and cached; its states are pooled like
// the full-propagation states.
func (e *Engine) CollectMarginal(ev potential.Evidence, v int) (*potential.Potential, error) {
	return e.CollectMarginalContext(context.Background(), ev, v)
}

// CollectMarginalContext is CollectMarginal with cancellation.
func (e *Engine) CollectMarginalContext(ctx context.Context, ev potential.Evidence, v int) (*potential.Potential, error) {
	ci := e.tree.CliqueOf(v)
	if ci < 0 {
		return nil, fmt.Errorf("core: no clique contains variable %d", v)
	}
	entry, err := e.collectEntryFor(ci)
	if err != nil {
		return nil, err
	}
	var st *taskgraph.State
	if v := entry.states.Get(); v != nil {
		st = v.(*taskgraph.State)
		st.Reset(taskgraph.SumProduct)
	} else {
		st, err = entry.g.NewState()
		if err != nil {
			return nil, err
		}
	}
	if err := st.AbsorbEvidence(ev); err != nil {
		entry.states.Put(st)
		return nil, err
	}
	id := e.queryID(ctx)
	var csp *otrace.Span
	if ctx != nil {
		csp = otrace.FromContext(ctx).StartChild("collect",
			otrace.Int("target.var", int64(v)),
			otrace.String("scheduler", e.opts.Scheduler.String()))
	}
	start := time.Now()
	sm, err := e.runScheduler(ctx, id, st)
	e.finishRunSpan(csp, start, sm, st, err)
	e.recordRun(id, "collect", byte(taskgraph.SumProduct), ev, nil, time.Since(start), sm, st, err)
	if err != nil {
		return nil, err // state possibly still referenced; drop it
	}
	m, err := st.Clique[entry.g.Tree.Root].Marginal([]int{v})
	entry.states.Put(st)
	if err != nil {
		return nil, err
	}
	if err := m.Normalize(); err != nil {
		return nil, fmt.Errorf("core: variable %d has zero posterior mass (impossible evidence?): %w", v, err)
	}
	return m, nil
}

// collectEntryFor builds (once) and returns the collect-only cache entry
// for the target clique.
func (e *Engine) collectEntryFor(ci int) (*collectEntry, error) {
	e.collectMu.Lock()
	defer e.collectMu.Unlock()
	if entry, ok := e.collectGraphs[ci]; ok {
		return entry, nil
	}
	rt, err := e.tree.Reroot(ci)
	if err != nil {
		return nil, err
	}
	entry := &collectEntry{g: taskgraph.BuildCollectOnly(rt)}
	if e.collectGraphs == nil {
		e.collectGraphs = map[int]*collectEntry{}
	}
	e.collectGraphs[ci] = entry
	return entry, nil
}

// Release recycles the result's propagation state into the engine's pool.
// After Release, only ProbabilityOfEvidence (cached) remains usable; the
// other accessors return ErrReleased. Posterior slices previously returned
// are copies and stay valid. Release is optional — unreleased states are
// garbage collected — and must not race with the result's other methods.
func (r *Result) Release() {
	if r == nil || r.state == nil || r.pinned {
		// Pinned results are shared through the cache: recycling their
		// state while other readers derive posteriors from it would
		// corrupt those reads, so Release leaves them to the GC.
		return
	}
	st := r.state
	r.state = nil
	// Only eager states recycle through the pool; lazy states own
	// query-specific overlay tables and go to the GC.
	if est, ok := st.(*taskgraph.State); ok && r.eng != nil {
		r.eng.putState(est)
	}
}

// Marginal returns the normalized posterior P(v | evidence) from the
// propagation result. On pinned (cache-shared) results the potential is
// memoized and shared between callers, so it must not be mutated.
func (r *Result) Marginal(v int) (*potential.Potential, error) {
	if r.state == nil {
		return nil, ErrReleased
	}
	if r.pinned {
		if m, ok := r.marginals.Load(v); ok {
			return m.(*potential.Potential), nil
		}
	}
	m, err := r.state.Marginal(v)
	if err != nil {
		return nil, err
	}
	if r.pinned {
		r.marginals.Store(v, m)
	}
	return m, nil
}

// JointMarginal returns the normalized posterior over a set of variables,
// which must all be contained in one clique.
func (r *Result) JointMarginal(vars []int) (*potential.Potential, error) {
	if r.state == nil {
		return nil, ErrReleased
	}
	tree := r.state.Graph().Tree
	for i := range tree.Cliques {
		all := true
		for _, v := range vars {
			if !tree.Cliques[i].Pot.HasVar(v) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		cp, err := r.state.CliquePot(i)
		if err != nil {
			return nil, err
		}
		m, err := cp.Marginal(vars)
		if err != nil {
			return nil, err
		}
		if err := m.Normalize(); err != nil {
			return nil, fmt.Errorf("core: zero posterior mass: %w", err)
		}
		return m, nil
	}
	return nil, fmt.Errorf("core: no clique contains all of %v", vars)
}

// ProbabilityOfEvidence returns P(e): after absorption and propagation the
// total mass of any clique equals the (unnormalized) evidence likelihood.
// The value is cached at propagation time, so it remains available after
// Release.
func (r *Result) ProbabilityOfEvidence() float64 { return r.pe }

// State exposes the underlying eager propagation state for
// instrumentation. It is nil after Release and nil for lazy results, whose
// pruning counters are exposed through LazyStats instead.
func (r *Result) State() *taskgraph.State {
	st, _ := r.state.(*taskgraph.State)
	return st
}

// LazyStats returns the pruning counters of a lazy propagation (messages
// and tasks sent/blocked/skipped, flops vs the eager engine, materialized
// table entries). ok is false for eager results and after Release. The
// counters are live: posterior queries materialize distribute messages on
// demand and advance them.
func (r *Result) LazyStats() (lazy.Stats, bool) {
	if st, ok := r.state.(*lazy.State); ok {
		return st.Stats(), true
	}
	return lazy.Stats{}, false
}

// CheckCalibration verifies the Hugin invariant on the propagation result:
// every pair of adjacent cliques must agree (within tol, after
// normalization) on their separator marginal. It returns nil when the tree
// is calibrated — the structural proof that propagation completed
// correctly, independent of any query.
func (r *Result) CheckCalibration(tol float64) error {
	if r.state == nil {
		return ErrReleased
	}
	// Lazy results defer distribute work; a whole-tree check needs all of
	// it materialized. Normalization below cancels the per-table scalars
	// of any blocked (elided) messages.
	if err := r.state.Calibrate(); err != nil {
		return err
	}
	tree := r.state.Graph().Tree
	for c := range tree.Cliques {
		p := tree.Cliques[c].Parent
		if p < 0 {
			continue
		}
		cc, err := r.state.CliquePot(c)
		if err != nil {
			return err
		}
		cp, err := r.state.CliquePot(p)
		if err != nil {
			return err
		}
		mc, err := cc.Marginal(tree.Cliques[c].SepVars)
		if err != nil {
			return err
		}
		mp, err := cp.Marginal(tree.Cliques[c].SepVars)
		if err != nil {
			return err
		}
		if err := mc.Normalize(); err != nil {
			return fmt.Errorf("core: clique %d has zero mass: %w", c, err)
		}
		if err := mp.Normalize(); err != nil {
			return fmt.Errorf("core: clique %d has zero mass: %w", p, err)
		}
		if d, _ := mc.MaxDiff(mp); d > tol {
			return fmt.Errorf("core: edge (%d,%d) not calibrated: separator marginals differ by %g", c, p, d)
		}
	}
	return nil
}

// MostProbableExplanation extracts the jointly most probable assignment of
// every variable from a max-product propagation result, together with its
// unnormalized probability P(x*, e). Divide by ProbabilityOfEvidence of a
// sum-product run over the same evidence to obtain P(x* | e).
//
// Extraction walks the calibrated tree top-down: the root clique's argmax
// fixes its variables; every other clique maximizes subject to the states
// already fixed by its ancestors, which max-calibration guarantees is
// globally consistent.
func (r *Result) MostProbableExplanation() (map[int]int, float64, error) {
	if r.state == nil {
		return nil, 0, ErrReleased
	}
	if r.state.Mode() != taskgraph.MaxProduct {
		return nil, 0, fmt.Errorf("core: MostProbableExplanation requires a PropagateMax result (state is %v)", r.state.Mode())
	}
	// The top-down walk reads every clique; materialize deferred
	// distribute messages first. Argmax extraction is invariant to the
	// positive per-table scalars of elided blocked messages; the absolute
	// probability is repaired by MassScale (1 for eager states).
	if err := r.state.Calibrate(); err != nil {
		return nil, 0, err
	}
	tree := r.state.Graph().Tree
	order, err := tree.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	assignment := map[int]int{}
	prob := 0.0
	for k, ci := range order {
		pot, err := r.state.CliquePot(ci)
		if err != nil {
			return nil, 0, err
		}
		idx, v, err := pot.ArgMaxConsistent(assignment)
		if err != nil {
			return nil, 0, err
		}
		if k == 0 {
			prob = v * r.state.MassScale()
			if prob == 0 {
				return nil, 0, fmt.Errorf("core: evidence has zero probability; no explanation exists")
			}
		}
		states := pot.AssignmentOf(idx)
		for pos, variable := range pot.Vars {
			assignment[variable] = states[pos]
		}
	}
	return assignment, prob, nil
}
