// Package core ties the reproduction together: it is the evidence
// propagation engine that takes a junction tree, optionally reroots it with
// Algorithm 1 to minimize the critical path, builds the task dependency
// graph, absorbs evidence, runs one of the schedulers, and exposes
// posterior queries.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"evprop/internal/baseline"
	"evprop/internal/jtree"
	"evprop/internal/potential"
	"evprop/internal/sched"
	"evprop/internal/taskgraph"
)

// Scheduler selects the execution strategy for one propagation.
type Scheduler int

const (
	// Collaborative is the paper's contribution (Section 6).
	Collaborative Scheduler = iota
	// Serial executes tasks on one goroutine in topological order.
	Serial
	// LevelSync is the task-level fork-join baseline.
	LevelSync
	// DataParallel parallelizes every primitive individually.
	DataParallel
	// Centralized uses a dedicated coordinator goroutine.
	Centralized
	// WorkStealing is the collaborative scheduler with tail-stealing from
	// the heaviest ready list (an extension; see sched.RunStealing).
	WorkStealing
)

var schedulerNames = map[Scheduler]string{
	Collaborative: "collaborative",
	Serial:        "serial",
	LevelSync:     "levelsync",
	DataParallel:  "dataparallel",
	Centralized:   "centralized",
	WorkStealing:  "stealing",
}

func (s Scheduler) String() string {
	if n, ok := schedulerNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scheduler(%d)", int(s))
}

// ParseScheduler resolves a scheduler name used by the CLI tools.
func ParseScheduler(name string) (Scheduler, error) {
	for s, n := range schedulerNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheduler %q", name)
}

// Options configures an Engine.
type Options struct {
	// Workers is the number of worker goroutines P. 0 selects GOMAXPROCS.
	Workers int
	// Scheduler selects the execution strategy (default Collaborative).
	Scheduler Scheduler
	// Reroot applies Algorithm 1 before building the task graph,
	// minimizing the propagation critical path (default off; turn on for
	// parallel runs).
	Reroot bool
	// PartitionThreshold is δ: tasks over tables larger than this many
	// entries are split by the collaborative scheduler's Partition module.
	// 0 disables partitioning.
	PartitionThreshold int
	// Trace records a per-worker execution timeline in Result.Sched.Trace
	// (collaborative scheduler only).
	Trace bool
}

// Engine owns a prepared junction tree and its task dependency graph, and
// runs any number of independent propagations over it.
type Engine struct {
	opts  Options
	tree  *jtree.Tree
	graph *taskgraph.Graph
	// RerootedFrom records the original root when Reroot moved it (-1
	// otherwise).
	RerootedFrom int
	// RerootTime is how long root selection and rerooting took, the
	// overhead the paper reports as negligible (24 µs for 512 cliques).
	RerootTime time.Duration

	collectMu     sync.Mutex
	collectGraphs map[int]*taskgraph.Graph // per-target collect-only graphs
}

// NewEngine validates and prepares the junction tree. The tree is cloned;
// the caller's copy is never mutated.
func NewEngine(t *jtree.Tree, opts Options) (*Engine, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{opts: opts, RerootedFrom: -1}
	work := t.Clone()
	if opts.Reroot {
		start := time.Now()
		r := work.SelectRoot()
		if r != work.Root {
			nt, err := work.Reroot(r)
			if err != nil {
				return nil, err
			}
			e.RerootedFrom = work.Root
			work = nt
		}
		e.RerootTime = time.Since(start)
	}
	e.tree = work
	e.graph = taskgraph.Build(work)
	if err := e.graph.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// Tree returns the engine's (possibly rerooted) junction tree.
func (e *Engine) Tree() *jtree.Tree { return e.tree }

// Graph returns the engine's task dependency graph.
func (e *Engine) Graph() *taskgraph.Graph { return e.graph }

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// Result is one completed propagation.
type Result struct {
	state *taskgraph.State
	// Elapsed is the wall-clock propagation time (excluding evidence
	// absorption and state allocation).
	Elapsed time.Duration
	// Sched carries the collaborative scheduler's metrics when that
	// scheduler ran, nil otherwise.
	Sched *sched.Metrics
}

// Propagate absorbs the evidence into a fresh working state and runs the
// full two-pass evidence propagation with the configured scheduler.
func (e *Engine) Propagate(ev potential.Evidence) (*Result, error) {
	return e.propagateFull(ev, nil, taskgraph.SumProduct)
}

// PropagateSoft additionally absorbs soft (likelihood) evidence before
// propagating: each weight vector scales the corresponding variable's
// states instead of fixing one.
func (e *Engine) PropagateSoft(ev potential.Evidence, like potential.Likelihood) (*Result, error) {
	return e.propagateFull(ev, like, taskgraph.SumProduct)
}

// PropagateMax runs max-product propagation: afterwards every clique holds
// max-marginals and Result.MostProbableExplanation extracts the MPE.
func (e *Engine) PropagateMax(ev potential.Evidence) (*Result, error) {
	return e.propagateMode(ev, taskgraph.MaxProduct)
}

func (e *Engine) propagateMode(ev potential.Evidence, mode taskgraph.Mode) (*Result, error) {
	return e.propagateFull(ev, nil, mode)
}

func (e *Engine) propagateFull(ev potential.Evidence, like potential.Likelihood, mode taskgraph.Mode) (*Result, error) {
	st, err := e.graph.NewStateMode(mode)
	if err != nil {
		return nil, err
	}
	if err := st.AbsorbEvidence(ev); err != nil {
		return nil, err
	}
	if err := st.AbsorbLikelihood(like); err != nil {
		return nil, err
	}
	res := &Result{state: st}
	start := time.Now()
	m, err := e.runScheduler(st)
	if err != nil {
		return nil, err
	}
	res.Sched = m
	res.Elapsed = time.Since(start)
	return res, nil
}

// runScheduler executes the state's graph with the configured strategy,
// returning collaborative-scheduler metrics when applicable.
func (e *Engine) runScheduler(st *taskgraph.State) (*sched.Metrics, error) {
	switch e.opts.Scheduler {
	case Collaborative:
		return sched.Run(st, sched.Options{
			Workers:   e.opts.Workers,
			Threshold: e.opts.PartitionThreshold,
			Trace:     e.opts.Trace,
		})
	case WorkStealing:
		return sched.RunStealing(st, sched.Options{
			Workers:   e.opts.Workers,
			Threshold: e.opts.PartitionThreshold,
		})
	case Serial:
		_, err := baseline.Serial(st)
		return nil, err
	case LevelSync:
		_, err := baseline.LevelSync(st, e.opts.Workers)
		return nil, err
	case DataParallel:
		_, err := baseline.DataParallel(st, e.opts.Workers)
		return nil, err
	case Centralized:
		p := e.opts.Workers
		if p < 2 {
			p = 2
		}
		_, err := baseline.Centralized(st, p)
		return nil, err
	default:
		return nil, fmt.Errorf("core: unknown scheduler %v", e.opts.Scheduler)
	}
}

// CollectMarginal answers a single-variable query with a collection-only
// propagation: the tree is rerooted at a clique containing v, the
// leaves-to-root half of the task graph runs, and the posterior is read
// from the root — roughly half the work of Propagate. The collect-only
// graph is built per target clique and cached.
func (e *Engine) CollectMarginal(ev potential.Evidence, v int) (*potential.Potential, error) {
	ci := e.tree.CliqueOf(v)
	if ci < 0 {
		return nil, fmt.Errorf("core: no clique contains variable %d", v)
	}
	e.collectMu.Lock()
	g, ok := e.collectGraphs[ci]
	if !ok {
		rt, err := e.tree.Reroot(ci)
		if err != nil {
			e.collectMu.Unlock()
			return nil, err
		}
		g = taskgraph.BuildCollectOnly(rt)
		if e.collectGraphs == nil {
			e.collectGraphs = map[int]*taskgraph.Graph{}
		}
		e.collectGraphs[ci] = g
	}
	e.collectMu.Unlock()

	st, err := g.NewState()
	if err != nil {
		return nil, err
	}
	if err := st.AbsorbEvidence(ev); err != nil {
		return nil, err
	}
	if _, err := e.runScheduler(st); err != nil {
		return nil, err
	}
	m, err := st.Clique[g.Tree.Root].Marginal([]int{v})
	if err != nil {
		return nil, err
	}
	if err := m.Normalize(); err != nil {
		return nil, fmt.Errorf("core: variable %d has zero posterior mass (impossible evidence?): %w", v, err)
	}
	return m, nil
}

// Marginal returns the normalized posterior P(v | evidence) from the
// propagation result.
func (r *Result) Marginal(v int) (*potential.Potential, error) {
	return r.state.Marginal(v)
}

// JointMarginal returns the normalized posterior over a set of variables,
// which must all be contained in one clique.
func (r *Result) JointMarginal(vars []int) (*potential.Potential, error) {
	tree := r.state.Graph().Tree
	for i := range tree.Cliques {
		all := true
		for _, v := range vars {
			if !tree.Cliques[i].Pot.HasVar(v) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		m, err := r.state.Clique[i].Marginal(vars)
		if err != nil {
			return nil, err
		}
		if err := m.Normalize(); err != nil {
			return nil, fmt.Errorf("core: zero posterior mass: %w", err)
		}
		return m, nil
	}
	return nil, fmt.Errorf("core: no clique contains all of %v", vars)
}

// ProbabilityOfEvidence returns P(e): after absorption and propagation the
// total mass of any clique equals the (unnormalized) evidence likelihood.
func (r *Result) ProbabilityOfEvidence() float64 {
	tree := r.state.Graph().Tree
	return r.state.Clique[tree.Root].Sum()
}

// State exposes the underlying propagation state for instrumentation.
func (r *Result) State() *taskgraph.State { return r.state }

// CheckCalibration verifies the Hugin invariant on the propagation result:
// every pair of adjacent cliques must agree (within tol, after
// normalization) on their separator marginal. It returns nil when the tree
// is calibrated — the structural proof that propagation completed
// correctly, independent of any query.
func (r *Result) CheckCalibration(tol float64) error {
	tree := r.state.Graph().Tree
	for c := range tree.Cliques {
		p := tree.Cliques[c].Parent
		if p < 0 {
			continue
		}
		mc, err := r.state.Clique[c].Marginal(tree.Cliques[c].SepVars)
		if err != nil {
			return err
		}
		mp, err := r.state.Clique[p].Marginal(tree.Cliques[c].SepVars)
		if err != nil {
			return err
		}
		if err := mc.Normalize(); err != nil {
			return fmt.Errorf("core: clique %d has zero mass: %w", c, err)
		}
		if err := mp.Normalize(); err != nil {
			return fmt.Errorf("core: clique %d has zero mass: %w", p, err)
		}
		if d, _ := mc.MaxDiff(mp); d > tol {
			return fmt.Errorf("core: edge (%d,%d) not calibrated: separator marginals differ by %g", c, p, d)
		}
	}
	return nil
}

// MostProbableExplanation extracts the jointly most probable assignment of
// every variable from a max-product propagation result, together with its
// unnormalized probability P(x*, e). Divide by ProbabilityOfEvidence of a
// sum-product run over the same evidence to obtain P(x* | e).
//
// Extraction walks the calibrated tree top-down: the root clique's argmax
// fixes its variables; every other clique maximizes subject to the states
// already fixed by its ancestors, which max-calibration guarantees is
// globally consistent.
func (r *Result) MostProbableExplanation() (map[int]int, float64, error) {
	if r.state.Mode() != taskgraph.MaxProduct {
		return nil, 0, fmt.Errorf("core: MostProbableExplanation requires a PropagateMax result (state is %v)", r.state.Mode())
	}
	tree := r.state.Graph().Tree
	order, err := tree.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	assignment := map[int]int{}
	prob := 0.0
	for k, ci := range order {
		pot := r.state.Clique[ci]
		idx, v, err := pot.ArgMaxConsistent(assignment)
		if err != nil {
			return nil, 0, err
		}
		if k == 0 {
			prob = v
			if v == 0 {
				return nil, 0, fmt.Errorf("core: evidence has zero probability; no explanation exists")
			}
		}
		states := pot.AssignmentOf(idx)
		for pos, variable := range pot.Vars {
			assignment[variable] = states[pos]
		}
	}
	return assignment, prob, nil
}
