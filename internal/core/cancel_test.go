package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/obs"
	"evprop/internal/potential"
)

// countdownCtx fails its Err poll after a fixed number of calls, cancelling
// a propagation deterministically mid-run (the scheduler polls once per
// item) rather than depending on wall-clock deadlines.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.DeadlineExceeded
	}
	return nil
}

// TestCancelledRunRecorderIntegrity is the engine-level regression test for
// the failed-run flight-recorder race: a cancelled run returns while pool
// workers may still be executing its items, so the recorder must keep only
// the scalar fields (no per-worker gauges, no trace) for it, and must never
// recycle its trace buffers into the shared pool. Cancelled and successful
// propagations interleave on one engine; -race flags the old behavior of
// reading the still-mutating metrics and recycling the buffers.
func TestCancelledRunRecorderIntegrity(t *testing.T) {
	net := bayesnet.RandomNetwork(50, 2, 3, 7)
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewFlightRecorder(256, 0)
	e, err := NewEngine(tr, Options{Workers: 4, Reroot: true, PartitionThreshold: 8, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ev := potential.Evidence{0: 0}

	const perG, goroutines = 30, 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					// The countdown always expires mid-run: the graph has far
					// more items than the largest countdown value.
					cc := &countdownCtx{Context: context.Background()}
					cc.left.Store(int64(2 + (g*7+i)%12))
					if _, err := e.PropagateContext(cc, ev); err == nil {
						t.Error("countdown propagation unexpectedly succeeded")
					}
				} else {
					res, err := e.Propagate(ev)
					if err != nil {
						t.Error(err)
						return
					}
					res.Release()
				}
			}
		}(g)
	}
	wg.Wait()

	var failed, ok int
	for _, r := range rec.Snapshot() {
		if r.Err != "" {
			failed++
			if r.Workers != 0 || r.Tasks != 0 || r.LoadBalance != 0 {
				t.Errorf("failed run recorded non-scalar detail: %+v", r)
			}
			continue
		}
		ok++
		if r.Workers != 4 {
			t.Errorf("successful run lost its worker gauges: %+v", r)
		}
	}
	if want := goroutines * perG / 2; failed != want || ok != want {
		t.Errorf("recorded %d failed + %d ok runs, want %d each", failed, ok, want)
	}
}
