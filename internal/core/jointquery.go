package core

import (
	"fmt"
	"sort"

	"evprop/internal/potential"
)

// JointMarginalAny computes the normalized posterior over an arbitrary set
// of variables, even when no single clique contains them all. It folds the
// calibrated cliques of the minimal (Steiner) subtree spanning the
// variables: for adjacent calibrated cliques, P(A ∪ B) = ψA·ψB/ψS, applied
// recursively with early marginalization so intermediate tables stay as
// small as possible. Cost is exponential only in the number of query
// variables carried across each subtree edge.
func (r *Result) JointMarginalAny(vars []int) (*potential.Potential, error) {
	if len(vars) == 0 {
		return nil, fmt.Errorf("core: empty joint query")
	}
	if r.state == nil {
		return nil, ErrReleased
	}
	query := append([]int(nil), vars...)
	sort.Ints(query)
	for i := 1; i < len(query); i++ {
		if query[i] == query[i-1] {
			return nil, fmt.Errorf("core: duplicate variable %d in joint query", query[i])
		}
	}
	// Fast path: one clique covers everything.
	if m, err := r.JointMarginal(query); err == nil {
		return m, nil
	}

	// The Steiner fold reads cliques and separators across the subtree;
	// materialize a lazy state's deferred distribute messages first. The
	// per-table scalars of elided blocked messages compose into one global
	// scalar over the fold, which the final Normalize removes.
	if err := r.state.Calibrate(); err != nil {
		return nil, err
	}
	tree := r.state.Graph().Tree
	// Covering clique per variable.
	covering := map[int]bool{}
	for _, v := range query {
		ci := tree.CliqueOf(v)
		if ci < 0 {
			return nil, fmt.Errorf("core: no clique contains variable %d", v)
		}
		covering[ci] = true
	}
	// Steiner node set: close under ancestors, then prune non-covering
	// leaves of the induced subtree.
	inSet := map[int]bool{}
	for ci := range covering {
		for i := ci; i >= 0; i = tree.Cliques[i].Parent {
			if inSet[i] {
				break
			}
			inSet[i] = true
		}
	}
	childCount := map[int]int{}
	for i := range inSet {
		if p := tree.Cliques[i].Parent; p >= 0 && inSet[p] {
			childCount[p]++
		}
	}
	pruned := true
	for pruned {
		pruned = false
		for i := range inSet {
			if childCount[i] == 0 && !covering[i] {
				// A leaf of the induced subtree carrying no query variable.
				delete(inSet, i)
				if p := tree.Cliques[i].Parent; p >= 0 && inSet[p] {
					childCount[p]--
				}
				pruned = true
			}
		}
	}

	// Order the remaining nodes deepest-first and fold messages upward.
	nodes := make([]int, 0, len(inSet))
	for i := range inSet {
		nodes = append(nodes, i)
	}
	sort.Slice(nodes, func(a, b int) bool { return tree.Depth(nodes[a]) > tree.Depth(nodes[b]) })

	acc := map[int]*potential.Potential{}
	get := func(ci int) (*potential.Potential, error) {
		if p, ok := acc[ci]; ok {
			return p, nil
		}
		cp, err := r.state.CliquePot(ci)
		if err != nil {
			return nil, err
		}
		p := cp.Clone()
		acc[ci] = p
		return p, nil
	}
	querySet := map[int]bool{}
	for _, v := range query {
		querySet[v] = true
	}
	top := nodes[len(nodes)-1]
	for _, ci := range nodes {
		if ci == top {
			break
		}
		p := tree.Cliques[ci].Parent
		cur, err := get(ci)
		if err != nil {
			return nil, err
		}
		// Keep the separator with the parent plus any query variables this
		// branch carries; everything else marginalizes out now.
		keep := append([]int(nil), tree.Cliques[ci].SepVars...)
		for _, v := range cur.Vars {
			if querySet[v] && !containsSorted(keep, v) {
				keep = append(keep, v)
			}
		}
		sort.Ints(keep)
		msg, err := cur.Marginal(keep)
		if err != nil {
			return nil, err
		}
		// Divide out the separator so the edge's mass is not counted twice
		// (P(A∪B) = ψA·ψB/ψS on a calibrated tree).
		sep, err := r.state.SepPot(ci)
		if err != nil {
			return nil, err
		}
		if err := msg.DivBy(sep); err != nil {
			return nil, err
		}
		parent, err := get(p)
		if err != nil {
			return nil, err
		}
		combined, err := potential.Product(parent, msg)
		if err != nil {
			return nil, err
		}
		acc[p] = combined
	}
	topPot, err := get(top)
	if err != nil {
		return nil, err
	}
	out, err := topPot.Marginal(query)
	if err != nil {
		return nil, err
	}
	if err := out.Normalize(); err != nil {
		return nil, fmt.Errorf("core: zero posterior mass: %w", err)
	}
	return out, nil
}

func containsSorted(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}
