package core

import (
	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

// propState is the calibration surface a Result reads posteriors from. Both
// the eager *taskgraph.State and the lazy engine's state satisfy it. The
// contract that makes lazy pruning transparent here:
//
//   - CliquePot and SepPot return tables that equal the fully calibrated
//     ones up to one positive per-table scalar (lazy elides blocked
//     messages, which are pure scalars). Every consumer in this package is
//     scalar-invariant — posteriors and calibration checks normalize,
//     Steiner folds normalize at the end, max-product argmax is monotone —
//     except absolute masses, which EvidenceMass and MassScale repair.
//   - Calibrate materializes whatever distribute work the state deferred;
//     afterwards CliquePot(ci) is valid for every clique. Eager states are
//     always fully distributed and return nil immediately.
//   - The lazy state materializes the root→clique path on demand inside
//     Marginal/CliquePot/SepPot, so single-variable queries never pay for
//     the whole distribute pass.
type propState interface {
	Graph() *taskgraph.Graph
	Mode() taskgraph.Mode
	Marginal(v int) (*potential.Potential, error)
	CliquePot(ci int) (*potential.Potential, error)
	SepPot(ci int) (*potential.Potential, error)
	EvidenceMass() float64
	MassScale() float64
	Calibrate() error
}
