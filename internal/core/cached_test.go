package core

import (
	"context"
	"sync"
	"testing"

	"evprop/internal/jtree"
	"evprop/internal/potential"
)

func cachedTestEngine(t *testing.T, cacheSize int) *Engine {
	t.Helper()
	tr, err := jtree.Random(jtree.RandomConfig{N: 24, Width: 4, States: 2, Degree: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(17); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(tr, Options{Workers: 2, CacheSize: cacheSize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestPropagateCachedHitSharesResult(t *testing.T) {
	e := cachedTestEngine(t, 64)
	ev := potential.Evidence{0: 1, 2: 0}
	r1, cached, err := e.PropagateCachedContext(context.Background(), ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first propagation reported cached")
	}
	r2, cached, err := e.PropagateCachedContext(context.Background(), ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second identical query missed the cache")
	}
	if r1 != r2 {
		t.Fatal("cache hit returned a different result object")
	}
	if got := e.Propagations(); got != 1 {
		t.Fatalf("Propagations = %d, want 1 (hit must not re-propagate)", got)
	}
	st := e.CacheStats()
	if !st.Enabled || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("CacheStats = %+v", st)
	}
	// Different evidence (and the soft-evidence variant of the same hard
	// evidence) must key different entries.
	if _, cached, _ := e.PropagateCachedContext(context.Background(), potential.Evidence{0: 0}, nil); cached {
		t.Fatal("different evidence hit the cache")
	}
	if _, cached, _ := e.PropagateCachedContext(context.Background(), ev, potential.Likelihood{1: {0.5, 1}}); cached {
		t.Fatal("soft-evidence query hit the hard-only entry")
	}
	// Max-product must not be served a sum-product table.
	if _, cached, _ := e.PropagateMaxCachedContext(context.Background(), ev); cached {
		t.Fatal("max-product query hit the sum-product entry")
	}
}

func TestPinnedResultReleaseIsNoOp(t *testing.T) {
	e := cachedTestEngine(t, 8)
	r, _, err := e.PropagateCachedContext(context.Background(), potential.Evidence{0: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pinned() {
		t.Fatal("cached result is not pinned")
	}
	m1, err := r.Marginal(3)
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	// A pinned result must survive Release: the cache (and any concurrent
	// reader) still holds it.
	m2, err := r.Marginal(3)
	if err != nil {
		t.Fatalf("Marginal after Release on pinned result: %v", err)
	}
	if m1 != m2 {
		t.Fatal("pinned marginal not memoized")
	}
}

func TestInvalidateCacheForcesRepropagation(t *testing.T) {
	e := cachedTestEngine(t, 64)
	ev := potential.Evidence{1: 0}
	if _, _, err := e.PropagateCachedContext(context.Background(), ev, nil); err != nil {
		t.Fatal(err)
	}
	e.InvalidateCache()
	if st := e.CacheStats(); st.Entries != 0 {
		t.Fatalf("entries after invalidate = %d", st.Entries)
	}
	_, cached, err := e.PropagateCachedContext(context.Background(), ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("query after InvalidateCache was served from the cache")
	}
	if got := e.Propagations(); got != 2 {
		t.Fatalf("Propagations = %d, want 2", got)
	}
}

func TestPropagateCachedConcurrentIdentical(t *testing.T) {
	e := cachedTestEngine(t, 64)
	ev := potential.Evidence{0: 1, 4: 0}
	const callers = 16
	var wg sync.WaitGroup
	var barrier sync.WaitGroup
	barrier.Add(1)
	results := make([]*Result, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			barrier.Wait()
			results[i], _, errs[i] = e.PropagateCachedContext(context.Background(), ev, nil)
		}(i)
	}
	barrier.Done()
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result object", i)
		}
	}
	if got := e.Propagations(); got >= callers {
		t.Fatalf("Propagations = %d for %d identical concurrent queries — no collapsing happened", got, callers)
	}
}
