package potential

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxMarginalBasic(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 3})
	copy(p.Data, []float64{1, 5, 3, 4, 2, 6})
	m, err := p.MaxMarginal([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if m.Data[0] != 5 || m.Data[1] != 6 {
		t.Errorf("MaxMarginal onto {0} = %v, want [5 6]", m.Data)
	}
	m1, err := p.MaxMarginal([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 5, 6}
	for i, v := range m1.Data {
		if v != want[i] {
			t.Errorf("MaxMarginal onto {1} = %v, want %v", m1.Data, want)
		}
	}
}

func TestMaxMarginalNotSubset(t *testing.T) {
	p := mustConst(t, []int{0}, []int{2}, 1)
	if _, err := p.MaxMarginal([]int{5}); err == nil {
		t.Error("MaxMarginal onto non-subset succeeded")
	}
}

func TestMaxMarginalPartitionedEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomPotential(rng, []int{0, 1, 2}, []int{3, 4, 5})
	whole, err := p.MaxMarginal([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	combined := whole.CloneZero()
	for lo := 0; lo < p.Len(); lo += 13 {
		hi := lo + 13
		if hi > p.Len() {
			hi = p.Len()
		}
		buf := whole.CloneZero()
		if err := p.MaxMarginalInto(buf, lo, hi); err != nil {
			t.Fatal(err)
		}
		if err := combined.MaxWith(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !whole.Equal(combined, 0) {
		t.Error("partitioned max-marginal differs from whole-table result")
	}
}

func TestMaxWithDomainMismatch(t *testing.T) {
	p := mustConst(t, []int{0}, []int{2}, 1)
	q := mustConst(t, []int{1}, []int{2}, 1)
	if err := p.MaxWith(q); err == nil {
		t.Error("MaxWith across domains succeeded")
	}
}

func TestArgMax(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 2})
	copy(p.Data, []float64{0.1, 0.7, 0.15, 0.05})
	idx, v := p.ArgMax()
	if idx != 1 || v != 0.7 {
		t.Errorf("ArgMax = (%d, %v)", idx, v)
	}
	states := p.AssignmentOf(idx)
	if states[0] != 0 || states[1] != 1 {
		t.Errorf("ArgMax assignment = %v", states)
	}
}

func TestArgMaxConsistent(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 2})
	copy(p.Data, []float64{0.1, 0.7, 0.15, 0.05})
	// Constrain variable 0 to state 1: best among {0.15, 0.05}.
	idx, v, err := p.ArgMaxConsistent(map[int]int{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.15 {
		t.Errorf("constrained max = %v, want 0.15", v)
	}
	if states := p.AssignmentOf(idx); states[0] != 1 || states[1] != 0 {
		t.Errorf("constrained argmax = %v", states)
	}
	// Constraints on foreign variables are ignored.
	if _, v, err := p.ArgMaxConsistent(map[int]int{9: 1}); err != nil || v != 0.7 {
		t.Errorf("foreign constraint: (%v, %v)", v, err)
	}
	// Out-of-range constraint errors.
	if _, _, err := p.ArgMaxConsistent(map[int]int{0: 5}); err == nil {
		t.Error("accepted out-of-range constraint")
	}
}

func TestQuickMaxMarginalDominatesEntries(t *testing.T) {
	// Every max-marginal cell equals the max over its fiber, so it must
	// dominate every entry mapping to it and be attained by at least one.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		p := randomPotential(rng, vars, card)
		sv, _ := subDomain(rng, vars, card)
		m, err := p.MaxMarginal(sv)
		if err != nil {
			return false
		}
		// Recompute by explicit enumeration.
		check := m.CloneZero()
		states := make([]int, len(vars))
		posOf := map[int]int{}
		for i, v := range sv {
			posOf[v] = i
		}
		sub := make([]int, len(sv))
		for idx := 0; idx < p.Len(); idx++ {
			p.assignmentInto(idx, states)
			for i, v := range vars {
				if j, ok := posOf[v]; ok {
					sub[j] = states[i]
				}
			}
			ci := check.IndexOf(sub)
			if p.Data[idx] > check.Data[ci] {
				check.Data[ci] = p.Data[idx]
			}
		}
		return m.Equal(check, 0)
	}
	if err := quick.Check(f, quickCfg(31)); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxMarginalCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 6)
		p := randomPotential(rng, vars, card)
		mid, midCard := subDomain(rng, vars, card)
		fin, _ := subDomain(rng, mid, midCard)
		step1, err := p.MaxMarginal(mid)
		if err != nil {
			return false
		}
		twoStep, err := step1.MaxMarginal(fin)
		if err != nil {
			return false
		}
		oneStep, err := p.MaxMarginal(fin)
		if err != nil {
			return false
		}
		return oneStep.Equal(twoStep, 0)
	}
	if err := quick.Check(f, quickCfg(32)); err != nil {
		t.Error(err)
	}
}

func TestQuickArgMaxIsMaxMarginalRoot(t *testing.T) {
	// The value at ArgMax equals the max-marginal onto the empty domain.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		p := randomPotential(rng, vars, card)
		_, v := p.ArgMax()
		m, err := p.MaxMarginal(nil)
		if err != nil {
			return false
		}
		return math.Abs(m.Data[0]-v) == 0
	}
	if err := quick.Check(f, quickCfg(33)); err != nil {
		t.Error(err)
	}
}
