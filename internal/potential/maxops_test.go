package potential

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxMarginalBasic(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 3})
	copy(p.Data, []float64{1, 5, 3, 4, 2, 6})
	m, err := p.MaxMarginal([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if m.Data[0] != 5 || m.Data[1] != 6 {
		t.Errorf("MaxMarginal onto {0} = %v, want [5 6]", m.Data)
	}
	m1, err := p.MaxMarginal([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 5, 6}
	for i, v := range m1.Data {
		if v != want[i] {
			t.Errorf("MaxMarginal onto {1} = %v, want %v", m1.Data, want)
		}
	}
}

func TestMaxMarginalNotSubset(t *testing.T) {
	p := mustConst(t, []int{0}, []int{2}, 1)
	if _, err := p.MaxMarginal([]int{5}); err == nil {
		t.Error("MaxMarginal onto non-subset succeeded")
	}
}

func TestMaxMarginalPartitionedEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomPotential(rng, []int{0, 1, 2}, []int{3, 4, 5})
	whole, err := p.MaxMarginal([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	combined := whole.CloneZero()
	for lo := 0; lo < p.Len(); lo += 13 {
		hi := lo + 13
		if hi > p.Len() {
			hi = p.Len()
		}
		buf := whole.CloneZero()
		if err := p.MaxMarginalInto(buf, lo, hi); err != nil {
			t.Fatal(err)
		}
		if err := combined.MaxWith(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !whole.Equal(combined, 0) {
		t.Error("partitioned max-marginal differs from whole-table result")
	}
}

func TestMaxWithDomainMismatch(t *testing.T) {
	p := mustConst(t, []int{0}, []int{2}, 1)
	q := mustConst(t, []int{1}, []int{2}, 1)
	if err := p.MaxWith(q); err == nil {
		t.Error("MaxWith across domains succeeded")
	}
}

func TestArgMax(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 2})
	copy(p.Data, []float64{0.1, 0.7, 0.15, 0.05})
	idx, v := p.ArgMax()
	if idx != 1 || v != 0.7 {
		t.Errorf("ArgMax = (%d, %v)", idx, v)
	}
	states := p.AssignmentOf(idx)
	if states[0] != 0 || states[1] != 1 {
		t.Errorf("ArgMax assignment = %v", states)
	}
}

func TestArgMaxConsistent(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 2})
	copy(p.Data, []float64{0.1, 0.7, 0.15, 0.05})
	// Constrain variable 0 to state 1: best among {0.15, 0.05}.
	idx, v, err := p.ArgMaxConsistent(map[int]int{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.15 {
		t.Errorf("constrained max = %v, want 0.15", v)
	}
	if states := p.AssignmentOf(idx); states[0] != 1 || states[1] != 0 {
		t.Errorf("constrained argmax = %v", states)
	}
	// Constraints on foreign variables are ignored.
	if _, v, err := p.ArgMaxConsistent(map[int]int{9: 1}); err != nil || v != 0.7 {
		t.Errorf("foreign constraint: (%v, %v)", v, err)
	}
	// Out-of-range constraint errors.
	if _, _, err := p.ArgMaxConsistent(map[int]int{0: 5}); err == nil {
		t.Error("accepted out-of-range constraint")
	}
}

// argMaxConsistentRef is the pre-optimization implementation: walk every
// entry and test the fixed map per variable. Kept as the oracle for the tie
// test and the baseline for BenchmarkArgMaxConsistent.
func argMaxConsistentRef(p *Potential, fixed map[int]int) (int, float64, error) {
	for pos, v := range p.Vars {
		if s, ok := fixed[v]; ok && (s < 0 || s >= p.Card[pos]) {
			return 0, 0, errOutOfRange
		}
	}
	best, bestV := -1, 0.0
	states := make([]int, len(p.Vars))
	for idx := 0; idx < p.Len(); idx++ {
		p.assignmentInto(idx, states)
		ok := true
		for pos, v := range p.Vars {
			if s, fixedHere := fixed[v]; fixedHere && states[pos] != s {
				ok = false
				break
			}
		}
		if ok && (best < 0 || p.Data[idx] > bestV) {
			best, bestV = idx, p.Data[idx]
		}
	}
	return best, bestV, nil
}

var errOutOfRange = errOOR{}

type errOOR struct{}

func (errOOR) Error() string { return "out of range" }

// TestArgMaxConsistentTies pins the tie-breaking contract under a partial
// assignment: when several consistent entries share the maximum, the lowest
// linear index wins — exactly what the old per-entry scan returned, so the
// strided walk must agree with the reference on every subset of fixings.
func TestArgMaxConsistentTies(t *testing.T) {
	p := MustNew([]int{0, 1, 2}, []int{2, 3, 2})
	// All entries tie at 1 except a few raised to 2; the raised set is
	// chosen so different fixings select different winners.
	for i := range p.Data {
		p.Data[i] = 1
	}
	p.Data[3] = 2  // states (0,1,1)
	p.Data[7] = 2  // states (1,0,1)
	p.Data[11] = 2 // states (1,2,1)
	cases := []struct {
		fixed   map[int]int
		wantIdx int
		wantV   float64
	}{
		{map[int]int{}, 3, 2},                 // global: first of the tied maxima
		{map[int]int{0: 1}, 7, 2},             // restrict to x0=1: first raised entry there
		{map[int]int{1: 2}, 11, 2},            // restrict to x1=2
		{map[int]int{0: 0, 1: 0}, 0, 1},       // all-ties block: lowest index
		{map[int]int{0: 1, 1: 1, 2: 0}, 8, 1}, // fully fixed, flat value
		{map[int]int{2: 0}, 0, 1},             // raised entries all have x2=1: ties at 1
	}
	for _, c := range cases {
		idx, v, err := p.ArgMaxConsistent(c.fixed)
		if err != nil {
			t.Fatalf("fixed %v: %v", c.fixed, err)
		}
		if idx != c.wantIdx || v != c.wantV {
			t.Errorf("fixed %v: got (%d, %v), want (%d, %v)", c.fixed, idx, v, c.wantIdx, c.wantV)
		}
		refIdx, refV, err := argMaxConsistentRef(p, c.fixed)
		if err != nil {
			t.Fatal(err)
		}
		if idx != refIdx || v != refV {
			t.Errorf("fixed %v: diverges from reference (%d, %v)", c.fixed, refIdx, refV)
		}
	}
}

// TestQuickArgMaxConsistentMatchesRef cross-checks the strided walk against
// the per-entry reference on random tables and random partial assignments,
// with quantized values so ties are common.
func TestQuickArgMaxConsistentMatchesRef(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		p := randomPotential(rng, vars, card)
		for i := range p.Data {
			p.Data[i] = math.Floor(p.Data[i]*8) / 8
		}
		fixed := map[int]int{}
		for i, v := range vars {
			if rng.Intn(3) == 0 {
				fixed[v] = rng.Intn(card[i])
			}
		}
		gi, gv, err := p.ArgMaxConsistent(fixed)
		if err != nil {
			return false
		}
		ri, rv, err := argMaxConsistentRef(p, fixed)
		if err != nil {
			return false
		}
		return gi == ri && gv == rv
	}
	if err := quick.Check(f, quickCfg(34)); err != nil {
		t.Error(err)
	}
}

// BenchmarkArgMaxConsistent shows the satellite fix's win: the strided walk
// visits only consistent entries and never touches a map in the loop, while
// the old path scanned the full table with a map lookup per variable.
func BenchmarkArgMaxConsistent(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	p := randomPotential(rng, []int{0, 1, 2, 3, 4}, []int{4, 4, 4, 4, 4})
	fixed := map[int]int{1: 2, 3: 1}
	b.Run("strided", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.ArgMaxConsistent(fixed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan-ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := argMaxConsistentRef(p, fixed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestQuickMaxMarginalDominatesEntries(t *testing.T) {
	// Every max-marginal cell equals the max over its fiber, so it must
	// dominate every entry mapping to it and be attained by at least one.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		p := randomPotential(rng, vars, card)
		sv, _ := subDomain(rng, vars, card)
		m, err := p.MaxMarginal(sv)
		if err != nil {
			return false
		}
		// Recompute by explicit enumeration.
		check := m.CloneZero()
		states := make([]int, len(vars))
		posOf := map[int]int{}
		for i, v := range sv {
			posOf[v] = i
		}
		sub := make([]int, len(sv))
		for idx := 0; idx < p.Len(); idx++ {
			p.assignmentInto(idx, states)
			for i, v := range vars {
				if j, ok := posOf[v]; ok {
					sub[j] = states[i]
				}
			}
			ci := check.IndexOf(sub)
			if p.Data[idx] > check.Data[ci] {
				check.Data[ci] = p.Data[idx]
			}
		}
		return m.Equal(check, 0)
	}
	if err := quick.Check(f, quickCfg(31)); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxMarginalCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 6)
		p := randomPotential(rng, vars, card)
		mid, midCard := subDomain(rng, vars, card)
		fin, _ := subDomain(rng, mid, midCard)
		step1, err := p.MaxMarginal(mid)
		if err != nil {
			return false
		}
		twoStep, err := step1.MaxMarginal(fin)
		if err != nil {
			return false
		}
		oneStep, err := p.MaxMarginal(fin)
		if err != nil {
			return false
		}
		return oneStep.Equal(twoStep, 0)
	}
	if err := quick.Check(f, quickCfg(32)); err != nil {
		t.Error(err)
	}
}

func TestQuickArgMaxIsMaxMarginalRoot(t *testing.T) {
	// The value at ArgMax equals the max-marginal onto the empty domain.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		p := randomPotential(rng, vars, card)
		_, v := p.ArgMax()
		m, err := p.MaxMarginal(nil)
		if err != nil {
			return false
		}
		return math.Abs(m.Data[0]-v) == 0
	}
	if err := quick.Check(f, quickCfg(33)); err != nil {
		t.Error(err)
	}
}
