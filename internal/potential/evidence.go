package potential

import "fmt"

// Evidence maps instantiated variable ids to their observed states. It is
// the set E = {A_e1 = a_e1, ...} of the paper's Section 2.
type Evidence map[int]int

// Reduce absorbs evidence into p: every entry inconsistent with an observed
// state of a variable in p's domain is zeroed. Variables not in p's domain
// are ignored, so the same Evidence can be applied to every clique. It
// reports an error if an observed state is out of range, in which case the
// table is left untouched: all observed states are validated before any
// entry is zeroed, so a bad observation can never leave the table partially
// reduced.
func (p *Potential) Reduce(ev Evidence) error {
	for pos, v := range p.Vars {
		if state, ok := ev[v]; ok && (state < 0 || state >= p.Card[pos]) {
			return fmt.Errorf("evidence: variable %d observed in state %d but has %d states", v, state, p.Card[pos])
		}
	}
	for pos, v := range p.Vars {
		if state, ok := ev[v]; ok {
			p.zeroExcept(pos, state)
		}
	}
	return nil
}

// zeroExcept zeroes every entry whose state of the variable at position pos
// differs from keep. The layout is blocks of stride entries repeating every
// stride*card entries, one block per state.
func (p *Potential) zeroExcept(pos, keep int) {
	stride := 1
	for i := len(p.Vars) - 1; i > pos; i-- {
		stride *= p.Card[i]
	}
	c := p.Card[pos]
	period := stride * c
	for base := 0; base < len(p.Data); base += period {
		for s := 0; s < c; s++ {
			if s == keep {
				continue
			}
			off := base + s*stride
			for i := off; i < off+stride; i++ {
				p.Data[i] = 0
			}
		}
	}
}

// ReduceCount behaves like Reduce and additionally returns how many entries
// were zeroed, which is useful for instrumentation.
func (p *Potential) ReduceCount(ev Evidence) (int, error) {
	before := 0
	for _, v := range p.Data {
		if v != 0 {
			before++
		}
	}
	if err := p.Reduce(ev); err != nil {
		return 0, err
	}
	after := 0
	for _, v := range p.Data {
		if v != 0 {
			after++
		}
	}
	return before - after, nil
}

// Likelihood is soft (virtual) evidence: per-variable weight vectors that
// scale the probability of each state rather than fixing it. A weight
// vector of zeros and a single one is equivalent to hard evidence.
type Likelihood map[int][]float64

// ApplyLikelihood multiplies the weight vector of every variable in p's
// domain into the table. Variables absent from p are ignored, so the same
// Likelihood may be offered to every clique — but each variable must be
// applied exactly once overall, which the engine guarantees by applying it
// only in the first clique containing the variable.
func (p *Potential) ApplyLikelihood(like Likelihood, only int) error {
	w, ok := like[only]
	if !ok {
		return nil
	}
	pos := -1
	for i, v := range p.Vars {
		if v == only {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("likelihood: variable %d not in domain %v", only, p.Vars)
	}
	if len(w) != p.Card[pos] {
		return fmt.Errorf("likelihood: variable %d has %d states but %d weights", only, p.Card[pos], len(w))
	}
	for _, x := range w {
		if x < 0 {
			return fmt.Errorf("likelihood: variable %d has negative weight %v", only, x)
		}
	}
	vec := &Potential{Vars: []int{only}, Card: []int{p.Card[pos]}, Data: w}
	return p.MulBy(vec)
}
