package potential

import (
	"fmt"
	"math/rand"
	"testing"
)

// Per-primitive blocked-vs-scalar benchmarks at three table sizes, the
// in-package counterpart of cmd/evkernels (which writes BENCH_kernels.json).
// The domain shape is the engine's clique→separator pattern: the subset is a
// prefix of the superset's variables, so the trailing superset variables are
// absent and every run is a constant-subset-index slice.

type kernelShape struct {
	name    string
	supVars []int
	supCard []int
	subVars []int
	subCard []int
}

func kernelShapes() []kernelShape {
	mk := func(name string, nSup, nSub, states int) kernelShape {
		sup := make([]int, nSup)
		supCard := make([]int, nSup)
		for i := range sup {
			sup[i] = i
			supCard[i] = states
		}
		return kernelShape{name, sup, supCard, sup[:nSub], supCard[:nSub]}
	}
	return []kernelShape{
		mk("small", 3, 2, 4),  // 64-entry table, 16-entry subset
		mk("medium", 6, 3, 4), // 4096-entry table, 64-entry subset
		mk("large", 9, 4, 4),  // 262144-entry table, 256-entry subset
	}
}

func benchPair(b *testing.B, sh kernelShape) (*Potential, *Potential) {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	p := randomPotential(rng, sh.supVars, sh.supCard)
	q := randomPotential(rng, sh.subVars, sh.subCard)
	return p, q
}

func perEntry(b *testing.B, entries int) {
	b.Helper()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(entries), "ns/entry")
}

func BenchmarkKernelMultiply(b *testing.B) {
	for _, sh := range kernelShapes() {
		p, q := benchPair(b, sh)
		n := p.Len()
		b.Run(fmt.Sprintf("%s/blocked", sh.name), func(b *testing.B) {
			w := p.Clone()
			for i := 0; i < b.N; i++ {
				if err := w.MulRange(q, 0, n); err != nil {
					b.Fatal(err)
				}
			}
			perEntry(b, n)
		})
		b.Run(fmt.Sprintf("%s/scalar", sh.name), func(b *testing.B) {
			w := p.Clone()
			for i := 0; i < b.N; i++ {
				if err := w.MulRangeScalar(q, 0, n); err != nil {
					b.Fatal(err)
				}
			}
			perEntry(b, n)
		})
	}
}

func BenchmarkKernelDivide(b *testing.B) {
	for _, sh := range kernelShapes() {
		p, q := benchPair(b, sh)
		n := p.Len()
		b.Run(fmt.Sprintf("%s/blocked", sh.name), func(b *testing.B) {
			w := p.Clone()
			for i := 0; i < b.N; i++ {
				if err := w.DivRange(q, 0, n); err != nil {
					b.Fatal(err)
				}
			}
			perEntry(b, n)
		})
		b.Run(fmt.Sprintf("%s/scalar", sh.name), func(b *testing.B) {
			w := p.Clone()
			for i := 0; i < b.N; i++ {
				if err := w.DivRangeScalar(q, 0, n); err != nil {
					b.Fatal(err)
				}
			}
			perEntry(b, n)
		})
	}
}

func BenchmarkKernelMarginalize(b *testing.B) {
	for _, sh := range kernelShapes() {
		p, q := benchPair(b, sh)
		n := p.Len()
		dst := q.CloneZero()
		b.Run(fmt.Sprintf("%s/blocked", sh.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := p.MarginalInto(dst, 0, n); err != nil {
					b.Fatal(err)
				}
			}
			perEntry(b, n)
		})
		b.Run(fmt.Sprintf("%s/scalar", sh.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := p.MarginalIntoScalar(dst, 0, n); err != nil {
					b.Fatal(err)
				}
			}
			perEntry(b, n)
		})
	}
}

func BenchmarkKernelMaxMarginalize(b *testing.B) {
	for _, sh := range kernelShapes() {
		p, q := benchPair(b, sh)
		n := p.Len()
		dst := q.CloneZero()
		b.Run(fmt.Sprintf("%s/blocked", sh.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := p.MaxMarginalInto(dst, 0, n); err != nil {
					b.Fatal(err)
				}
			}
			perEntry(b, n)
		})
		b.Run(fmt.Sprintf("%s/scalar", sh.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := p.MaxMarginalIntoScalar(dst, 0, n); err != nil {
					b.Fatal(err)
				}
			}
			perEntry(b, n)
		})
	}
}

func BenchmarkKernelExtend(b *testing.B) {
	for _, sh := range kernelShapes() {
		p, q := benchPair(b, sh)
		n := p.Len()
		dst := p.CloneZero()
		b.Run(fmt.Sprintf("%s/blocked", sh.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := q.ExtendInto(dst, 0, n); err != nil {
					b.Fatal(err)
				}
			}
			perEntry(b, n)
		})
		b.Run(fmt.Sprintf("%s/scalar", sh.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := q.ExtendIntoScalar(dst, 0, n); err != nil {
					b.Fatal(err)
				}
			}
			perEntry(b, n)
		})
	}
}
