package potential

import "fmt"

// Max-product primitives. Evidence propagation over the (max, ×) semiring
// computes max-marginals instead of sum-marginals; running the same task
// graph with maximization in place of summation turns the engine into a
// most-probable-explanation (MPE) solver. Division, extension and
// multiplication are unchanged — only the marginalization primitive and the
// partitioned-combine step differ.

// MaxMarginal maximizes p down onto the given subset of its variables,
// returning a fresh potential of max-marginals. onto must be sorted.
func (p *Potential) MaxMarginal(onto []int) (*Potential, error) {
	vars, card := IntersectDomain(p.Vars, p.Card, onto)
	if len(vars) != len(onto) {
		return nil, fmt.Errorf("max-marginal: target %v not a subset of domain %v", onto, p.Vars)
	}
	dst, err := New(vars, card)
	if err != nil {
		return nil, err
	}
	if err := p.MaxMarginalInto(dst, 0, len(p.Data)); err != nil {
		return nil, err
	}
	return dst, nil
}

// MaxMarginalInto maximizes entries lo..hi-1 of p into dst (dst[cell] =
// max(dst[cell], value)). Like MarginalInto it does not clear dst, so
// partitioned subtasks can maximize into private zero buffers that a
// combiner folds together with MaxWith. Entries are assumed non-negative
// (potentials), so a zero initial buffer is an identity.
func (p *Potential) MaxMarginalInto(dst *Potential, lo, hi int) error {
	a, err := newAligner(p.Vars, p.Card, dst.Vars, dst.Card)
	if err != nil {
		return fmt.Errorf("max-marginal: %w", err)
	}
	if err := checkRange(lo, hi, len(p.Data)); err != nil {
		return fmt.Errorf("max-marginal: %w", err)
	}
	a.seek(lo)
	for i := lo; i < hi; i++ {
		if v := p.Data[i]; v > dst.Data[a.subIdx] {
			dst.Data[a.subIdx] = v
		}
		a.next()
	}
	return nil
}

// MaxWith folds q into p elementwise by maximum; the domains must match.
// It is the combiner of partitioned max-marginalizations.
func (p *Potential) MaxWith(q *Potential) error {
	if !sameDomain(p, q) {
		return fmt.Errorf("max-with: domain mismatch %v vs %v", p.Vars, q.Vars)
	}
	for i, v := range q.Data {
		if v > p.Data[i] {
			p.Data[i] = v
		}
	}
	return nil
}

// ArgMax returns the linear index and value of the largest entry (the first
// one under ties).
func (p *Potential) ArgMax() (int, float64) {
	best, bestV := 0, p.Data[0]
	for i, v := range p.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// ArgMaxConsistent returns the linear index and value of the largest entry
// whose states agree with the partial assignment (variable id → state).
// Variables absent from the assignment are unconstrained. It reports an
// error if no entry is consistent (cannot happen for a non-empty table,
// since every cell has some assignment, unless the constraint names a state
// out of range).
func (p *Potential) ArgMaxConsistent(fixed map[int]int) (int, float64, error) {
	for pos, v := range p.Vars {
		if s, ok := fixed[v]; ok && (s < 0 || s >= p.Card[pos]) {
			return 0, 0, fmt.Errorf("arg-max: variable %d fixed to state %d of %d", v, s, p.Card[pos])
		}
	}
	best, bestV := -1, 0.0
	states := make([]int, len(p.Vars))
	for i := range p.Data {
		p.assignmentInto(i, states)
		ok := true
		for pos, v := range p.Vars {
			if s, fixedHere := fixed[v]; fixedHere && states[pos] != s {
				ok = false
				break
			}
		}
		if ok && (best < 0 || p.Data[i] > bestV) {
			best, bestV = i, p.Data[i]
		}
	}
	if best < 0 {
		return 0, 0, fmt.Errorf("arg-max: no entry consistent with %v", fixed)
	}
	return best, bestV, nil
}
