package potential

import "fmt"

// Max-product primitives. Evidence propagation over the (max, ×) semiring
// computes max-marginals instead of sum-marginals; running the same task
// graph with maximization in place of summation turns the engine into a
// most-probable-explanation (MPE) solver. Division, extension and
// multiplication are unchanged — only the marginalization primitive and the
// partitioned-combine step differ.

// MaxMarginal maximizes p down onto the given subset of its variables,
// returning a fresh potential of max-marginals. onto must be sorted.
func (p *Potential) MaxMarginal(onto []int) (*Potential, error) {
	vars, card := IntersectDomain(p.Vars, p.Card, onto)
	if len(vars) != len(onto) {
		return nil, fmt.Errorf("max-marginal: target %v not a subset of domain %v", onto, p.Vars)
	}
	dst, err := New(vars, card)
	if err != nil {
		return nil, err
	}
	if err := p.MaxMarginalInto(dst, 0, len(p.Data)); err != nil {
		return nil, err
	}
	return dst, nil
}

// MaxMarginalInto maximizes entries lo..hi-1 of p into dst (dst[cell] =
// max(dst[cell], value)). Like MarginalInto it does not clear dst, so
// partitioned subtasks can maximize into private zero buffers that a
// combiner folds together with MaxWith. Entries are assumed non-negative
// (potentials), so a zero initial buffer is an identity.
func (p *Potential) MaxMarginalInto(dst *Potential, lo, hi int) error {
	a, err := newAligner(p.Vars, p.Card, dst.Vars, dst.Card)
	if err != nil {
		return fmt.Errorf("max-marginal: %w", err)
	}
	if err := checkRange(lo, hi, len(p.Data)); err != nil {
		return fmt.Errorf("max-marginal: %w", err)
	}
	p.maxMarginalBlocked(dst, a, lo, hi)
	return nil
}

// MaxMarginalIntoScalar is the per-entry reference implementation of
// MaxMarginalInto.
func (p *Potential) MaxMarginalIntoScalar(dst *Potential, lo, hi int) error {
	a, err := newAligner(p.Vars, p.Card, dst.Vars, dst.Card)
	if err != nil {
		return fmt.Errorf("max-marginal: %w", err)
	}
	if err := checkRange(lo, hi, len(p.Data)); err != nil {
		return fmt.Errorf("max-marginal: %w", err)
	}
	a.seek(lo)
	for i := lo; i < hi; i++ {
		if v := p.Data[i]; v > dst.Data[a.subIdx] {
			dst.Data[a.subIdx] = v
		}
		a.next()
	}
	return nil
}

// MaxWith folds q into p elementwise by maximum; the domains must match.
// It is the combiner of partitioned max-marginalizations.
func (p *Potential) MaxWith(q *Potential) error {
	if !sameDomain(p, q) {
		return fmt.Errorf("max-with: domain mismatch %v vs %v", p.Vars, q.Vars)
	}
	for i, v := range q.Data {
		if v > p.Data[i] {
			p.Data[i] = v
		}
	}
	return nil
}

// ArgMax returns the linear index and value of the largest entry (the first
// one under ties).
func (p *Potential) ArgMax() (int, float64) {
	best, bestV := 0, p.Data[0]
	for i, v := range p.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// ArgMaxConsistent returns the linear index and value of the largest entry
// whose states agree with the partial assignment (variable id → state).
// Variables absent from the assignment are unconstrained, and assignment
// entries for variables outside p's domain are ignored. Under ties the
// entry with the smallest linear index wins.
//
// The map is consulted once per *variable*, not once per variable per table
// entry: the fixed variables contribute a constant base offset, and only the
// free subspace is walked — an odometer over the free dimensions' strides
// that visits exactly the consistent entries in increasing linear order,
// skipping inconsistent blocks by stride.
func (p *Potential) ArgMaxConsistent(fixed map[int]int) (int, float64, error) {
	base, total := 0, 1
	var freeCard, freeStride []int // free dims, fastest (smallest stride) first
	stride := 1
	for pos := len(p.Vars) - 1; pos >= 0; pos-- {
		v := p.Vars[pos]
		if s, ok := fixed[v]; ok {
			if s < 0 || s >= p.Card[pos] {
				return 0, 0, fmt.Errorf("arg-max: variable %d fixed to state %d of %d", v, s, p.Card[pos])
			}
			base += s * stride
		} else {
			freeCard = append(freeCard, p.Card[pos])
			freeStride = append(freeStride, stride)
			total *= p.Card[pos]
		}
		stride *= p.Card[pos]
	}
	best, bestV := base, p.Data[base]
	digits := make([]int, len(freeCard))
	idx := base
	for n := 1; n < total; n++ {
		for i := 0; ; i++ {
			digits[i]++
			idx += freeStride[i]
			if digits[i] < freeCard[i] {
				break
			}
			digits[i] = 0
			idx -= freeCard[i] * freeStride[i]
		}
		if v := p.Data[idx]; v > bestV {
			best, bestV = idx, v
		}
	}
	return best, bestV, nil
}
