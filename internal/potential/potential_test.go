package potential

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func mustConst(t *testing.T, vars, card []int, v float64) *Potential {
	t.Helper()
	p, err := NewConstant(vars, card, v)
	if err != nil {
		t.Fatalf("NewConstant(%v, %v): %v", vars, card, err)
	}
	return p
}

func randomPotential(rng *rand.Rand, vars, card []int) *Potential {
	p := MustNew(vars, card)
	for i := range p.Data {
		p.Data[i] = rng.Float64() + 0.05 // strictly positive
	}
	return p
}

func TestNewValid(t *testing.T) {
	p, err := New([]int{1, 3, 7}, []int{2, 3, 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got, want := p.Len(), 24; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	for _, v := range p.Data {
		if v != 0 {
			t.Fatalf("New not zero-initialized: %v", p.Data)
		}
	}
}

func TestNewErrors(t *testing.T) {
	cases := []struct {
		name string
		vars []int
		card []int
	}{
		{"length mismatch", []int{1, 2}, []int{2}},
		{"unsorted", []int{3, 1}, []int{2, 2}},
		{"duplicate", []int{1, 1}, []int{2, 2}},
		{"negative id", []int{-1, 2}, []int{2, 2}},
		{"zero cardinality", []int{1, 2}, []int{2, 0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.vars, c.card); err == nil {
				t.Errorf("New(%v, %v) succeeded, want error", c.vars, c.card)
			}
		})
	}
}

func TestNewSizeLimit(t *testing.T) {
	vars := make([]int, 50)
	card := make([]int, 50)
	for i := range vars {
		vars[i] = i
		card[i] = 4
	}
	if _, err := New(vars, card); err == nil {
		t.Error("New accepted a 4^50-entry table")
	}
}

func TestScalar(t *testing.T) {
	s := Scalar(2.5)
	if s.Len() != 1 || s.Data[0] != 2.5 {
		t.Errorf("Scalar(2.5) = %v", s)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scalar Validate: %v", err)
	}
}

func TestSize(t *testing.T) {
	if got := Size([]int{2, 3, 4}); got != 24 {
		t.Errorf("Size = %d, want 24", got)
	}
	if got := Size(nil); got != 1 {
		t.Errorf("Size(nil) = %d, want 1", got)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	p := MustNew([]int{0, 1, 2}, []int{2, 3, 4})
	for idx := 0; idx < p.Len(); idx++ {
		states := p.AssignmentOf(idx)
		if back := p.IndexOf(states); back != idx {
			t.Fatalf("IndexOf(AssignmentOf(%d)) = %d", idx, back)
		}
	}
}

func TestIndexLayoutLastVarFastest(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 3})
	// Index = s0*3 + s1; the last variable must vary fastest.
	if got := p.IndexOf([]int{1, 2}); got != 5 {
		t.Errorf("IndexOf([1,2]) = %d, want 5", got)
	}
	if got := p.IndexOf([]int{0, 1}); got != 1 {
		t.Errorf("IndexOf([0,1]) = %d, want 1", got)
	}
}

func TestAtSet(t *testing.T) {
	p := MustNew([]int{4, 9}, []int{2, 2})
	p.Set(0.75, 1, 0)
	if got := p.At(1, 0); got != 0.75 {
		t.Errorf("At(1,0) = %v, want 0.75", got)
	}
	if got := p.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := mustConst(t, []int{1}, []int{2}, 1)
	q := p.Clone()
	q.Data[0] = 42
	q.Vars[0] = 9
	if p.Data[0] != 1 || p.Vars[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestCloneZero(t *testing.T) {
	p := mustConst(t, []int{1, 2}, []int{2, 2}, 3)
	z := p.CloneZero()
	if z.Sum() != 0 {
		t.Errorf("CloneZero sum = %v", z.Sum())
	}
	if !sameDomain(p, z) {
		t.Error("CloneZero changed domain")
	}
}

func TestHasVarCardOf(t *testing.T) {
	p := MustNew([]int{2, 5, 8}, []int{2, 3, 4})
	if !p.HasVar(5) || p.HasVar(3) || p.HasVar(9) {
		t.Error("HasVar wrong")
	}
	if p.CardOf(8) != 4 || p.CardOf(1) != 0 {
		t.Error("CardOf wrong")
	}
}

func TestSumNormalize(t *testing.T) {
	p := mustConst(t, []int{0, 1}, []int{2, 2}, 0.5)
	if got := p.Sum(); got != 2 {
		t.Errorf("Sum = %v, want 2", got)
	}
	if err := p.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if got := p.Sum(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Sum after Normalize = %v", got)
	}
}

func TestNormalizeZeroMass(t *testing.T) {
	p := MustNew([]int{0}, []int{3})
	if err := p.Normalize(); err == nil {
		t.Error("Normalize of zero table succeeded")
	}
	p.Data[0] = math.NaN()
	if err := p.Normalize(); err == nil {
		t.Error("Normalize of NaN table succeeded")
	}
}

func TestScale(t *testing.T) {
	p := mustConst(t, []int{0}, []int{4}, 2)
	p.Scale(0.25)
	for _, v := range p.Data {
		if v != 0.5 {
			t.Fatalf("Scale: entry %v, want 0.5", v)
		}
	}
}

func TestAdd(t *testing.T) {
	p := mustConst(t, []int{0, 3}, []int{2, 2}, 1)
	q := mustConst(t, []int{0, 3}, []int{2, 2}, 2)
	if err := p.Add(q); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if p.Sum() != 12 {
		t.Errorf("Add sum = %v, want 12", p.Sum())
	}
	r := mustConst(t, []int{0}, []int{2}, 1)
	if err := p.Add(r); err == nil {
		t.Error("Add with mismatched domain succeeded")
	}
}

func TestMaxDiffEqual(t *testing.T) {
	p := mustConst(t, []int{1}, []int{3}, 1)
	q := p.Clone()
	q.Data[2] = 1.5
	d, err := p.MaxDiff(q)
	if err != nil || d != 0.5 {
		t.Errorf("MaxDiff = %v, %v; want 0.5, nil", d, err)
	}
	if p.Equal(q, 0.1) {
		t.Error("Equal with tol 0.1 true, want false")
	}
	if !p.Equal(q, 0.6) {
		t.Error("Equal with tol 0.6 false, want true")
	}
	r := MustNew([]int{2}, []int{3})
	if p.Equal(r, 1e9) {
		t.Error("Equal across domains true, want false")
	}
}

func TestStringTruncates(t *testing.T) {
	p := mustConst(t, []int{0, 1}, []int{8, 8}, 1)
	s := p.String()
	if !strings.Contains(s, "more") {
		t.Errorf("String of 64-entry table not truncated: %q", s)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 2})
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate of fresh potential: %v", err)
	}
	p.Data = p.Data[:3]
	if err := p.Validate(); err == nil {
		t.Error("Validate missed truncated data")
	}
}

func TestUnionDomain(t *testing.T) {
	vars, card, err := UnionDomain([]int{1, 3, 5}, []int{2, 3, 4}, []int{2, 3, 6}, []int{5, 3, 7})
	if err != nil {
		t.Fatalf("UnionDomain: %v", err)
	}
	wantVars := []int{1, 2, 3, 5, 6}
	wantCard := []int{2, 5, 3, 4, 7}
	for i := range wantVars {
		if vars[i] != wantVars[i] || card[i] != wantCard[i] {
			t.Fatalf("UnionDomain = %v/%v, want %v/%v", vars, card, wantVars, wantCard)
		}
	}
	if _, _, err := UnionDomain([]int{1}, []int{2}, []int{1}, []int{3}); err == nil {
		t.Error("UnionDomain accepted conflicting cardinalities")
	}
}

func TestIntersectDomain(t *testing.T) {
	vars, card := IntersectDomain([]int{1, 3, 5, 9}, []int{2, 3, 4, 5}, []int{3, 4, 9})
	if len(vars) != 2 || vars[0] != 3 || vars[1] != 9 || card[0] != 3 || card[1] != 5 {
		t.Errorf("IntersectDomain = %v/%v", vars, card)
	}
	if vars, _ := IntersectDomain([]int{1}, []int{2}, nil); len(vars) != 0 {
		t.Errorf("empty intersection = %v", vars)
	}
}
