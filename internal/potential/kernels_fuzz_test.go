package potential

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzKernelBlockedVsScalar drives the five blocked kernels against their
// per-entry scalar reference implementations with fuzzer-chosen domains,
// subset masks, range endpoints and table contents (including zeros, for the
// 0/0 = 0 division convention), requiring bit-identical results — the same
// differential style as internal/cache's FuzzEvidenceSignature. The fuzz
// inputs deterministically seed a PRNG, so every crash reproduces.
func FuzzKernelBlockedVsScalar(f *testing.F) {
	f.Add(int64(1), uint8(0b1010), uint8(3), uint16(0), uint16(200))
	f.Add(int64(2), uint8(0b0001), uint8(1), uint16(5), uint16(7))
	f.Add(int64(3), uint8(0b1111), uint8(0), uint16(1), uint16(1))
	f.Add(int64(4), uint8(0), uint8(5), uint16(0), uint16(65535))
	f.Fuzz(func(t *testing.T, seed int64, mask, nv uint8, rawLo, rawHi uint16) {
		rng := rand.New(rand.NewSource(seed))
		n := int(nv%7) + 1 // 1..7 superset variables
		vars := make([]int, n)
		card := make([]int, n)
		for i := range vars {
			vars[i] = i
			card[i] = 1 + rng.Intn(4)
		}
		var sv, sc []int
		for i := range vars {
			if mask&(1<<(i%8)) != 0 {
				sv = append(sv, vars[i])
				sc = append(sc, card[i])
			}
		}
		p := MustNew(vars, card)
		q := MustNew(sv, sc)
		for i := range p.Data {
			p.Data[i] = rng.Float64()
			if rng.Intn(16) == 0 {
				p.Data[i] = 0
			}
		}
		for i := range q.Data {
			q.Data[i] = rng.Float64()
			if rng.Intn(8) == 0 {
				q.Data[i] = 0
			}
		}
		size := len(p.Data)
		lo := int(rawLo) % (size + 1)
		hi := lo + int(rawHi)%(size-lo+1)

		bits := func(a, b []float64, name string) {
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("%s: entry %d blocked %v scalar %v (vars %v card %v sub %v range [%d,%d))",
						name, i, a[i], b[i], vars, card, sv, lo, hi)
				}
			}
		}

		w1, w2 := p.Clone(), p.Clone()
		if err := w1.MulRange(q, lo, hi); err != nil {
			t.Fatal(err)
		}
		if err := w2.MulRangeScalar(q, lo, hi); err != nil {
			t.Fatal(err)
		}
		bits(w1.Data, w2.Data, "multiply")

		w1, w2 = p.Clone(), p.Clone()
		if err := w1.DivRange(q, lo, hi); err != nil {
			t.Fatal(err)
		}
		if err := w2.DivRangeScalar(q, lo, hi); err != nil {
			t.Fatal(err)
		}
		bits(w1.Data, w2.Data, "divide")

		d1, d2 := q.CloneZero(), q.CloneZero()
		if err := p.MarginalInto(d1, lo, hi); err != nil {
			t.Fatal(err)
		}
		if err := p.MarginalIntoScalar(d2, lo, hi); err != nil {
			t.Fatal(err)
		}
		bits(d1.Data, d2.Data, "marginalize")

		d1, d2 = q.CloneZero(), q.CloneZero()
		if err := p.MaxMarginalInto(d1, lo, hi); err != nil {
			t.Fatal(err)
		}
		if err := p.MaxMarginalIntoScalar(d2, lo, hi); err != nil {
			t.Fatal(err)
		}
		bits(d1.Data, d2.Data, "max-marginalize")

		e1, e2 := p.CloneZero(), p.CloneZero()
		if err := q.ExtendInto(e1, lo, hi); err != nil {
			t.Fatal(err)
		}
		if err := q.ExtendIntoScalar(e2, lo, hi); err != nil {
			t.Fatal(err)
		}
		bits(e1.Data, e2.Data, "extend")

		// ArgMaxConsistent: the strided walk must agree with a brute-force
		// scan over every entry (first maximum wins under ties — force ties
		// by quantizing the table).
		for i := range p.Data {
			p.Data[i] = math.Floor(p.Data[i]*4) / 4
		}
		fixed := map[int]int{}
		for i := range vars {
			if rng.Intn(3) == 0 {
				fixed[vars[i]] = rng.Intn(card[i])
			}
		}
		gotI, gotV, err := p.ArgMaxConsistent(fixed)
		if err != nil {
			t.Fatal(err)
		}
		wantI, wantV := -1, 0.0
		states := make([]int, len(vars))
		for i := range p.Data {
			p.assignmentInto(i, states)
			ok := true
			for pos, v := range vars {
				if s, fixedHere := fixed[v]; fixedHere && states[pos] != s {
					ok = false
					break
				}
			}
			if ok && (wantI < 0 || p.Data[i] > wantV) {
				wantI, wantV = i, p.Data[i]
			}
		}
		if gotI != wantI || math.Float64bits(gotV) != math.Float64bits(wantV) {
			t.Fatalf("arg-max: got (%d, %v), brute force (%d, %v) with fixed %v", gotI, gotV, wantI, wantV, fixed)
		}
	})
}
