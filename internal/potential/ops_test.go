package potential

import (
	"math"
	"math/rand"
	"testing"
)

func TestMulByScalarSubset(t *testing.T) {
	p := mustConst(t, []int{0, 1}, []int{2, 2}, 2)
	s := Scalar(3)
	if err := p.MulBy(s); err != nil {
		t.Fatalf("MulBy scalar: %v", err)
	}
	for _, v := range p.Data {
		if v != 6 {
			t.Fatalf("entry %v, want 6", v)
		}
	}
}

func TestMulByAlignment(t *testing.T) {
	// p over {0,1}, q over {1}: each entry of p must be multiplied by the
	// q entry matching its state of variable 1.
	p := mustConst(t, []int{0, 1}, []int{2, 3}, 1)
	q := MustNew([]int{1}, []int{3})
	copy(q.Data, []float64{10, 20, 30})
	if err := p.MulBy(q); err != nil {
		t.Fatalf("MulBy: %v", err)
	}
	want := []float64{10, 20, 30, 10, 20, 30}
	for i, v := range p.Data {
		if v != want[i] {
			t.Fatalf("Data = %v, want %v", p.Data, want)
		}
	}
}

func TestMulByAlignmentFirstVar(t *testing.T) {
	p := mustConst(t, []int{0, 1}, []int{2, 3}, 1)
	q := MustNew([]int{0}, []int{2})
	copy(q.Data, []float64{2, 5})
	if err := p.MulBy(q); err != nil {
		t.Fatalf("MulBy: %v", err)
	}
	want := []float64{2, 2, 2, 5, 5, 5}
	for i, v := range p.Data {
		if v != want[i] {
			t.Fatalf("Data = %v, want %v", p.Data, want)
		}
	}
}

func TestMulByNotSubset(t *testing.T) {
	p := mustConst(t, []int{0, 1}, []int{2, 2}, 1)
	q := mustConst(t, []int{2}, []int{2}, 1)
	if err := p.MulBy(q); err == nil {
		t.Error("MulBy with non-subset succeeded")
	}
	r := MustNew([]int{1}, []int{3}) // wrong cardinality
	if err := p.MulBy(r); err == nil {
		t.Error("MulBy with conflicting cardinality succeeded")
	}
}

func TestMulRangeMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomPotential(rng, []int{0, 2, 5}, []int{3, 2, 4})
	q := randomPotential(rng, []int{2, 5}, []int{2, 4})
	whole := p.Clone()
	if err := whole.MulBy(q); err != nil {
		t.Fatal(err)
	}
	chunked := p.Clone()
	for lo := 0; lo < chunked.Len(); lo += 5 {
		hi := lo + 5
		if hi > chunked.Len() {
			hi = chunked.Len()
		}
		if err := chunked.MulRange(q, lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	if !whole.Equal(chunked, 1e-15) {
		t.Error("chunked MulRange differs from whole-table MulBy")
	}
}

func TestMulRangeBadRange(t *testing.T) {
	p := mustConst(t, []int{0}, []int{4}, 1)
	q := Scalar(1)
	for _, r := range [][2]int{{-1, 2}, {3, 2}, {0, 5}} {
		if err := p.MulRange(q, r[0], r[1]); err == nil {
			t.Errorf("MulRange(%d,%d) succeeded", r[0], r[1])
		}
	}
}

func TestDivByBasic(t *testing.T) {
	p := mustConst(t, []int{0, 1}, []int{2, 2}, 6)
	q := MustNew([]int{1}, []int{2})
	copy(q.Data, []float64{2, 3})
	if err := p.DivBy(q); err != nil {
		t.Fatalf("DivBy: %v", err)
	}
	want := []float64{3, 2, 3, 2}
	for i, v := range p.Data {
		if v != want[i] {
			t.Fatalf("Data = %v, want %v", p.Data, want)
		}
	}
}

func TestDivByZeroConvention(t *testing.T) {
	p := mustConst(t, []int{0}, []int{2}, 4)
	q := MustNew([]int{0}, []int{2})
	q.Data[1] = 2
	if err := p.DivBy(q); err != nil {
		t.Fatalf("DivBy: %v", err)
	}
	if p.Data[0] != 0 {
		t.Errorf("x/0 = %v, want 0 by junction-tree convention", p.Data[0])
	}
	if p.Data[1] != 2 {
		t.Errorf("4/2 = %v, want 2", p.Data[1])
	}
}

func TestDivUndoesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomPotential(rng, []int{1, 4, 6}, []int{2, 3, 2})
	q := randomPotential(rng, []int{4, 6}, []int{3, 2})
	orig := p.Clone()
	if err := p.MulBy(q); err != nil {
		t.Fatal(err)
	}
	if err := p.DivBy(q); err != nil {
		t.Fatal(err)
	}
	if !p.Equal(orig, 1e-12) {
		t.Error("DivBy did not undo MulBy")
	}
}

func TestMarginalBasic(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 3})
	copy(p.Data, []float64{1, 2, 3, 4, 5, 6})
	m, err := p.Marginal([]int{0})
	if err != nil {
		t.Fatalf("Marginal: %v", err)
	}
	if m.Data[0] != 6 || m.Data[1] != 15 {
		t.Errorf("Marginal onto {0} = %v, want [6 15]", m.Data)
	}
	m1, err := p.Marginal([]int{1})
	if err != nil {
		t.Fatalf("Marginal: %v", err)
	}
	want := []float64{5, 7, 9}
	for i, v := range m1.Data {
		if v != want[i] {
			t.Errorf("Marginal onto {1} = %v, want %v", m1.Data, want)
		}
	}
}

func TestMarginalOntoEmpty(t *testing.T) {
	p := mustConst(t, []int{0, 1}, []int{2, 2}, 1.5)
	m, err := p.Marginal(nil)
	if err != nil {
		t.Fatalf("Marginal(nil): %v", err)
	}
	if m.Len() != 1 || math.Abs(m.Data[0]-6) > 1e-12 {
		t.Errorf("Marginal onto empty = %v, want scalar 6", m)
	}
}

func TestMarginalNotSubset(t *testing.T) {
	p := mustConst(t, []int{0, 1}, []int{2, 2}, 1)
	if _, err := p.Marginal([]int{0, 3}); err == nil {
		t.Error("Marginal onto non-subset succeeded")
	}
}

func TestMarginalPreservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomPotential(rng, []int{0, 3, 4, 7}, []int{2, 3, 2, 2})
	for _, onto := range [][]int{{0}, {3, 7}, {0, 3, 4, 7}, nil} {
		m, err := p.Marginal(onto)
		if err != nil {
			t.Fatalf("Marginal(%v): %v", onto, err)
		}
		if math.Abs(m.Sum()-p.Sum()) > 1e-9 {
			t.Errorf("Marginal(%v) changed mass: %v vs %v", onto, m.Sum(), p.Sum())
		}
	}
}

func TestMarginalIntoPartitionedEqualsWhole(t *testing.T) {
	// Partitioned marginalization: private buffers per input chunk, then Add.
	rng := rand.New(rand.NewSource(5))
	p := randomPotential(rng, []int{0, 1, 2}, []int{3, 4, 5})
	whole, err := p.Marginal([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	combined := whole.CloneZero()
	for lo := 0; lo < p.Len(); lo += 17 {
		hi := lo + 17
		if hi > p.Len() {
			hi = p.Len()
		}
		buf := whole.CloneZero()
		if err := p.MarginalInto(buf, lo, hi); err != nil {
			t.Fatal(err)
		}
		if err := combined.Add(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !whole.Equal(combined, 1e-12) {
		t.Error("partitioned marginalization differs from whole-table result")
	}
}

func TestMarginalizeOut(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 3})
	copy(p.Data, []float64{1, 2, 3, 4, 5, 6})
	m, err := p.MarginalizeOut([]int{1})
	if err != nil {
		t.Fatalf("MarginalizeOut: %v", err)
	}
	if len(m.Vars) != 1 || m.Vars[0] != 0 || m.Data[0] != 6 || m.Data[1] != 15 {
		t.Errorf("MarginalizeOut = %v", m)
	}
	all, err := p.MarginalizeOut([]int{0, 1})
	if err != nil || all.Len() != 1 || all.Data[0] != 21 {
		t.Errorf("MarginalizeOut everything = %v, %v", all, err)
	}
}

// TestMarginalizeOutCanonicalizesInput pins the bugfix for unsorted and
// duplicated out lists: they must behave exactly like the sorted unique
// list, and the caller's slice must not be reordered.
func TestMarginalizeOutCanonicalizesInput(t *testing.T) {
	p := MustNew([]int{0, 1, 2}, []int{2, 2, 3})
	for i := range p.Data {
		p.Data[i] = float64(i + 1)
	}
	want, err := p.MarginalizeOut([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range [][]int{
		{2, 1},          // unsorted
		{1, 2, 1},       // duplicate
		{2, 2, 1, 1, 2}, // unsorted with duplicates
		{2, 9, 1, 2},    // foreign variable ignored, as before
	} {
		arg := append([]int(nil), out...)
		got, err := p.MarginalizeOut(arg)
		if err != nil {
			t.Fatalf("MarginalizeOut(%v): %v", out, err)
		}
		if !got.Equal(want, 0) {
			t.Errorf("MarginalizeOut(%v) = %v, want %v", out, got, want)
		}
		for i := range arg {
			if arg[i] != out[i] {
				t.Errorf("MarginalizeOut mutated its argument: %v -> %v", out, arg)
				break
			}
		}
	}
}

func TestExtendBasic(t *testing.T) {
	q := MustNew([]int{1}, []int{3})
	copy(q.Data, []float64{1, 2, 3})
	e, err := q.Extend([]int{0, 1}, []int{2, 3})
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	want := []float64{1, 2, 3, 1, 2, 3}
	for i, v := range e.Data {
		if v != want[i] {
			t.Fatalf("Extend = %v, want %v", e.Data, want)
		}
	}
}

func TestExtendNotSuperset(t *testing.T) {
	q := mustConst(t, []int{1, 5}, []int{2, 2}, 1)
	if _, err := q.Extend([]int{1, 2}, []int{2, 2}); err == nil {
		t.Error("Extend to non-superset succeeded")
	}
}

func TestExtendIntoChunkedEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := randomPotential(rng, []int{2, 4}, []int{3, 2})
	vars, card := []int{1, 2, 4, 6}, []int{2, 3, 2, 2}
	whole, err := q.Extend(vars, card)
	if err != nil {
		t.Fatal(err)
	}
	chunked := MustNew(vars, card)
	for lo := 0; lo < chunked.Len(); lo += 7 {
		hi := lo + 7
		if hi > chunked.Len() {
			hi = chunked.Len()
		}
		if err := q.ExtendInto(chunked, lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	if !whole.Equal(chunked, 0) {
		t.Error("chunked ExtendInto differs from whole-table Extend")
	}
}

func TestExtendThenMarginalizeScales(t *testing.T) {
	// Marginalizing an extension back to the original domain multiplies by
	// the number of states summed out.
	q := MustNew([]int{1}, []int{2})
	copy(q.Data, []float64{3, 5})
	e, err := q.Extend([]int{0, 1}, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	back, err := e.Marginal([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if back.Data[0] != 12 || back.Data[1] != 20 {
		t.Errorf("marginal of extension = %v, want [12 20]", back.Data)
	}
}

func TestProduct(t *testing.T) {
	p := MustNew([]int{0}, []int{2})
	copy(p.Data, []float64{2, 3})
	q := MustNew([]int{1}, []int{2})
	copy(q.Data, []float64{5, 7})
	prod, err := Product(p, q)
	if err != nil {
		t.Fatalf("Product: %v", err)
	}
	want := []float64{10, 14, 15, 21}
	for i, v := range prod.Data {
		if v != want[i] {
			t.Fatalf("Product = %v, want %v", prod.Data, want)
		}
	}
}

func TestProductOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomPotential(rng, []int{0, 1}, []int{2, 3})
	q := randomPotential(rng, []int{1, 2}, []int{3, 2})
	prod, err := Product(p, q)
	if err != nil {
		t.Fatalf("Product: %v", err)
	}
	// Check one entry by hand: states (a,b,c).
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 2; c++ {
				want := p.At(a, b) * q.At(b, c)
				if got := prod.At(a, b, c); math.Abs(got-want) > 1e-12 {
					t.Fatalf("Product(%d,%d,%d) = %v, want %v", a, b, c, got, want)
				}
			}
		}
	}
}

func TestProductConflictingCards(t *testing.T) {
	p := mustConst(t, []int{1}, []int{2}, 1)
	q := mustConst(t, []int{1}, []int{3}, 1)
	if _, err := Product(p, q); err == nil {
		t.Error("Product with conflicting cardinalities succeeded")
	}
}

func TestMessagePassIdentity(t *testing.T) {
	// A full message pass X -> Y over separator S where ψS is already the
	// marginal of ψX must leave ψY unchanged (ratio is all ones).
	rng := rand.New(rand.NewSource(21))
	x := randomPotential(rng, []int{0, 1}, []int{2, 3})
	sep, err := x.Marginal([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	y := randomPotential(rng, []int{1, 2}, []int{3, 2})
	yOrig := y.Clone()

	sepNew, err := x.Marginal([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := sepNew.Clone()
	if err := ratio.DivBy(sep); err != nil {
		t.Fatal(err)
	}
	ext, err := ratio.Extend(y.Vars, y.Card)
	if err != nil {
		t.Fatal(err)
	}
	if err := y.MulBy(ext); err != nil {
		t.Fatal(err)
	}
	if !y.Equal(yOrig, 1e-12) {
		t.Error("identity message changed target potential")
	}
}
