package potential

import (
	"fmt"
	"math"
)

// Information-theoretic utilities over normalized potentials, used by the
// engine's value-of-information queries (mutual information ranks which
// observation would most reduce uncertainty).

// Entropy returns the Shannon entropy in bits of the table interpreted as a
// normalized distribution (0·log 0 = 0). It reports an error if the table
// is not normalized within tolerance.
func (p *Potential) Entropy() (float64, error) {
	if err := p.checkNormalized(); err != nil {
		return 0, fmt.Errorf("entropy: %w", err)
	}
	h := 0.0
	for _, v := range p.Data {
		if v > 0 {
			h -= v * math.Log2(v)
		}
	}
	return h, nil
}

// KLDivergence returns D(p ‖ q) in bits; the domains must match. It is
// +Inf when p has mass where q does not.
func (p *Potential) KLDivergence(q *Potential) (float64, error) {
	if !sameDomain(p, q) {
		return 0, fmt.Errorf("kl: domain mismatch %v vs %v", p.Vars, q.Vars)
	}
	if err := p.checkNormalized(); err != nil {
		return 0, fmt.Errorf("kl: %w", err)
	}
	if err := q.checkNormalized(); err != nil {
		return 0, fmt.Errorf("kl: %w", err)
	}
	d := 0.0
	for i, pv := range p.Data {
		if pv == 0 {
			continue
		}
		if q.Data[i] == 0 {
			return math.Inf(1), nil
		}
		d += pv * math.Log2(pv/q.Data[i])
	}
	return d, nil
}

// TotalVariation returns half the L1 distance between two normalized
// distributions over the same domain.
func (p *Potential) TotalVariation(q *Potential) (float64, error) {
	if !sameDomain(p, q) {
		return 0, fmt.Errorf("tv: domain mismatch %v vs %v", p.Vars, q.Vars)
	}
	d := 0.0
	for i := range p.Data {
		d += math.Abs(p.Data[i] - q.Data[i])
	}
	return d / 2, nil
}

// MutualInformation returns I(X;Y) in bits from a normalized joint
// distribution over exactly two variables.
func (p *Potential) MutualInformation() (float64, error) {
	if len(p.Vars) != 2 {
		return 0, fmt.Errorf("mutual information: need a 2-variable joint, have %d variables", len(p.Vars))
	}
	if err := p.checkNormalized(); err != nil {
		return 0, fmt.Errorf("mutual information: %w", err)
	}
	px, err := p.Marginal(p.Vars[:1])
	if err != nil {
		return 0, err
	}
	py, err := p.Marginal(p.Vars[1:])
	if err != nil {
		return 0, err
	}
	mi := 0.0
	for a := 0; a < p.Card[0]; a++ {
		for b := 0; b < p.Card[1]; b++ {
			pxy := p.At(a, b)
			if pxy > 0 {
				mi += pxy * math.Log2(pxy/(px.Data[a]*py.Data[b]))
			}
		}
	}
	// Clamp tiny negative values from floating-point noise.
	if mi < 0 && mi > -1e-12 {
		mi = 0
	}
	return mi, nil
}

func (p *Potential) checkNormalized() error {
	s := p.Sum()
	if math.Abs(s-1) > 1e-6 {
		return fmt.Errorf("table mass %v is not 1 (normalize first)", s)
	}
	for _, v := range p.Data {
		if v < 0 {
			return fmt.Errorf("negative entry %v", v)
		}
	}
	return nil
}
