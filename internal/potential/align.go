package potential

import "fmt"

// aligner walks the linear indices of a superset potential while tracking
// the corresponding linear index in a subset potential. It is the shared
// inner machinery of multiplication, division, extension and
// marginalization, all of which pair each entry of the larger table with one
// entry of the smaller.
type aligner struct {
	card      []int // cardinalities of the superset domain
	subStride []int // stride of each superset variable in the subset (0 if absent)
	digits    []int // current per-variable state in the superset
	subIdx    int   // linear index in the subset for the current position
}

// newAligner builds an aligner from the superset domain (supVars, supCard)
// to the subset domain subVars. Every subset variable must appear in the
// superset with the same implied position; callers guarantee subVars ⊆
// supVars (checked here for safety).
func newAligner(supVars, supCard, subVars, subCard []int) (*aligner, error) {
	subStrideByPos := make([]int, len(subVars))
	acc := 1
	for i := len(subVars) - 1; i >= 0; i-- {
		subStrideByPos[i] = acc
		acc *= subCard[i]
	}
	a := &aligner{
		card:      supCard,
		subStride: make([]int, len(supVars)),
		digits:    make([]int, len(supVars)),
	}
	j := 0
	for i, v := range supVars {
		for j < len(subVars) && subVars[j] < v {
			return nil, fmt.Errorf("potential: variable %d of subset not present in superset %v", subVars[j], supVars)
		}
		if j < len(subVars) && subVars[j] == v {
			if subCard[j] != supCard[i] {
				return nil, fmt.Errorf("potential: variable %d has cardinality %d and %d", v, supCard[i], subCard[j])
			}
			a.subStride[i] = subStrideByPos[j]
			j++
		}
	}
	if j != len(subVars) {
		return nil, fmt.Errorf("potential: variable %d of subset not present in superset %v", subVars[j], supVars)
	}
	return a, nil
}

// seek positions the aligner at superset linear index idx.
func (a *aligner) seek(idx int) {
	sub := 0
	for i := len(a.card) - 1; i >= 0; i-- {
		d := idx % a.card[i]
		idx /= a.card[i]
		a.digits[i] = d
		sub += d * a.subStride[i]
	}
	a.subIdx = sub
}

// next advances the aligner by one superset index, odometer style, updating
// the tracked subset index in O(1) amortized time.
func (a *aligner) next() {
	for i := len(a.card) - 1; i >= 0; i-- {
		a.digits[i]++
		a.subIdx += a.subStride[i]
		if a.digits[i] < a.card[i] {
			return
		}
		a.digits[i] = 0
		a.subIdx -= a.card[i] * a.subStride[i]
	}
}
