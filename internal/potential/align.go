package potential

import "fmt"

// aligner walks the linear indices of a superset potential while tracking
// the corresponding linear index in a subset potential. It is the shared
// inner machinery of multiplication, division, extension and
// marginalization, all of which pair each entry of the larger table with one
// entry of the smaller.
//
// Besides the per-entry odometer (seek/next, the scalar reference path), an
// aligner carries a *run plan* computed once at construction: because tables
// are row-major with the last variable fastest, the superset index space
// factors into maximal runs of runLen consecutive entries over which the
// subset index is either constant (contig == false: the trailing superset
// variables are absent from the subset) or advances by exactly one per entry
// (contig == true: the trailing superset variables are shared with the
// subset and dense there). The blocked kernels in ops.go and maxops.go walk
// runs — one O(w) seek per range plus one O(1)-amortized advanceRun per run
// — and run flat slice loops inside each run.
type aligner struct {
	card      []int // cardinalities of the superset domain
	subStride []int // stride of each superset variable in the subset (0 if absent)
	digits    []int // current per-variable state in the superset
	subIdx    int   // linear index in the subset for the current position

	// Run plan (fixed per domain pair, computed by newAligner).
	runLen  int  // entries per maximal run (≥ 1; divides the table size)
	contig  bool // subset index advances +1 per entry within a run (else constant)
	nPrefix int  // leading superset dims that change only across run boundaries
}

// newAligner builds an aligner from the superset domain (supVars, supCard)
// to the subset domain subVars. Every subset variable must appear in the
// superset with the same implied position; callers guarantee subVars ⊆
// supVars (checked here for safety).
func newAligner(supVars, supCard, subVars, subCard []int) (*aligner, error) {
	subStrideByPos := make([]int, len(subVars))
	acc := 1
	for i := len(subVars) - 1; i >= 0; i-- {
		subStrideByPos[i] = acc
		acc *= subCard[i]
	}
	a := &aligner{
		card:      supCard,
		subStride: make([]int, len(supVars)),
		digits:    make([]int, len(supVars)),
	}
	j := 0
	for i, v := range supVars {
		for j < len(subVars) && subVars[j] < v {
			return nil, fmt.Errorf("potential: variable %d of subset not present in superset %v", subVars[j], supVars)
		}
		if j < len(subVars) && subVars[j] == v {
			if subCard[j] != supCard[i] {
				return nil, fmt.Errorf("potential: variable %d has cardinality %d and %d", v, supCard[i], subCard[j])
			}
			a.subStride[i] = subStrideByPos[j]
			j++
		}
	}
	if j != len(subVars) {
		return nil, fmt.Errorf("potential: variable %d of subset not present in superset %v", subVars[j], supVars)
	}
	a.planRuns()
	return a, nil
}

// planRuns classifies the maximal trailing dimension block of the superset.
// A trailing absent variable (subStride 0) can only be followed by further
// absent variables in the suffix scan, and a trailing shared variable is
// necessarily the subset's own last variable (stride 1), so the two suffix
// shapes are mutually exclusive: either the suffix is absent → constant
// runs, or it is shared-and-dense → contiguous runs. Dimensions interior to
// the prefix are handled by the run odometer regardless of shape.
func (a *aligner) planRuns() {
	n := len(a.card)
	a.runLen = 1
	i := n - 1
	if n > 0 && a.subStride[n-1] != 0 {
		// Trailing variables shared with the subset: extend the suffix while
		// the subset stride matches the dense row-major pattern.
		a.contig = true
		acc := 1
		for i >= 0 && a.subStride[i] == acc {
			a.runLen *= a.card[i]
			acc *= a.card[i]
			i--
		}
	} else {
		// Trailing variables absent from the subset: the subset index is
		// constant over the run.
		for i >= 0 && a.subStride[i] == 0 {
			a.runLen *= a.card[i]
			i--
		}
	}
	a.nPrefix = i + 1
}

// seek positions the aligner at superset linear index idx.
func (a *aligner) seek(idx int) {
	sub := 0
	for i := len(a.card) - 1; i >= 0; i-- {
		d := idx % a.card[i]
		idx /= a.card[i]
		a.digits[i] = d
		sub += d * a.subStride[i]
	}
	a.subIdx = sub
}

// next advances the aligner by one superset index, odometer style, updating
// the tracked subset index in O(1) amortized time.
func (a *aligner) next() {
	for i := len(a.card) - 1; i >= 0; i-- {
		a.digits[i]++
		a.subIdx += a.subStride[i]
		if a.digits[i] < a.card[i] {
			return
		}
		a.digits[i] = 0
		a.subIdx -= a.card[i] * a.subStride[i]
	}
}

// advanceRun moves the aligner from the start of one run to the start of the
// next, stepping only the prefix dims (the suffix digits are zero at every
// run boundary). Like next it is O(1) amortized.
func (a *aligner) advanceRun() {
	for i := a.nPrefix - 1; i >= 0; i-- {
		a.digits[i]++
		a.subIdx += a.subStride[i]
		if a.digits[i] < a.card[i] {
			return
		}
		a.digits[i] = 0
		a.subIdx -= a.card[i] * a.subStride[i]
	}
}
