package potential

// Blocked (run-decomposed) kernel bodies for the four node-level primitives
// plus max-marginalization. Each walks the aligner's run plan over [lo, hi):
// one O(w) seek to the run boundary at or below lo, then per run either a
// "slice ⊗ scalar" loop (constant runs — the trailing superset variables are
// absent from the subset, so one subset entry serves the whole run) or a
// flat elementwise slice-slice loop (contiguous runs — the subset index
// advances in lockstep). The per-entry arithmetic order is exactly that of
// the scalar reference path (ops.go / maxops.go), so blocked and scalar
// results are bit-identical, including the accumulation order of
// marginalization — the differential harness and the kernel fuzzer rely on
// this.
//
// Range endpoints need not be run-aligned: a mid-run lo or hi yields partial
// head/tail segments with the same inner-loop shapes. Aligned split points
// are still preferable — the scheduler snaps δ-partition boundaries to the
// task's grain (see PartitionGrain) so constant-run reductions stay private
// to one piece — but correctness never depends on it.

// mulBlocked multiplies p entries [lo, hi) in place by the aligned entries
// of q. a must be the (p ⊇ q) aligner and the range already validated.
func (p *Potential) mulBlocked(q *Potential, a *aligner, lo, hi int) {
	if lo >= hi {
		return
	}
	pd, qd := p.Data, q.Data
	L := a.runLen
	base := lo - lo%L
	a.seek(base)
	for s := lo; s < hi; {
		e := base + L
		if e > hi {
			e = hi
		}
		seg := pd[s:e]
		if a.contig {
			qs := qd[a.subIdx+(s-base):]
			qs = qs[:len(seg)]
			for k := range seg {
				seg[k] *= qs[k]
			}
		} else {
			f := qd[a.subIdx]
			for k := range seg {
				seg[k] *= f
			}
		}
		s, base = e, e
		if s < hi {
			a.advanceRun()
		}
	}
}

// divBlocked divides p entries [lo, hi) in place by the aligned entries of
// q, with the junction-tree convention 0/0 = 0 (any x/0 is defined as 0, as
// in the scalar path).
func (p *Potential) divBlocked(q *Potential, a *aligner, lo, hi int) {
	if lo >= hi {
		return
	}
	pd, qd := p.Data, q.Data
	L := a.runLen
	base := lo - lo%L
	a.seek(base)
	for s := lo; s < hi; {
		e := base + L
		if e > hi {
			e = hi
		}
		seg := pd[s:e]
		if a.contig {
			qs := qd[a.subIdx+(s-base):]
			qs = qs[:len(seg)]
			for k := range seg {
				if d := qs[k]; d == 0 {
					seg[k] = 0
				} else {
					seg[k] /= d
				}
			}
		} else if f := qd[a.subIdx]; f == 0 {
			for k := range seg {
				seg[k] = 0
			}
		} else {
			for k := range seg {
				seg[k] /= f
			}
		}
		s, base = e, e
		if s < hi {
			a.advanceRun()
		}
	}
}

// marginalBlocked accumulates p entries [lo, hi) into dst. Constant runs
// reduce into a register seeded from the destination cell, preserving the
// scalar path's left-to-right addition order bit for bit.
func (p *Potential) marginalBlocked(dst *Potential, a *aligner, lo, hi int) {
	if lo >= hi {
		return
	}
	pd, dd := p.Data, dst.Data
	L := a.runLen
	base := lo - lo%L
	a.seek(base)
	for s := lo; s < hi; {
		e := base + L
		if e > hi {
			e = hi
		}
		seg := pd[s:e]
		if a.contig {
			ds := dd[a.subIdx+(s-base):]
			ds = ds[:len(seg)]
			for k := range seg {
				ds[k] += seg[k]
			}
		} else {
			acc := dd[a.subIdx]
			for k := range seg {
				acc += seg[k]
			}
			dd[a.subIdx] = acc
		}
		s, base = e, e
		if s < hi {
			a.advanceRun()
		}
	}
}

// maxMarginalBlocked maximizes p entries [lo, hi) into dst, the (max, ×)
// counterpart of marginalBlocked.
func (p *Potential) maxMarginalBlocked(dst *Potential, a *aligner, lo, hi int) {
	if lo >= hi {
		return
	}
	pd, dd := p.Data, dst.Data
	L := a.runLen
	base := lo - lo%L
	a.seek(base)
	for s := lo; s < hi; {
		e := base + L
		if e > hi {
			e = hi
		}
		seg := pd[s:e]
		if a.contig {
			ds := dd[a.subIdx+(s-base):]
			ds = ds[:len(seg)]
			for k := range seg {
				if v := seg[k]; v > ds[k] {
					ds[k] = v
				}
			}
		} else {
			m := dd[a.subIdx]
			for k := range seg {
				if v := seg[k]; v > m {
					m = v
				}
			}
			dd[a.subIdx] = m
		}
		s, base = e, e
		if s < hi {
			a.advanceRun()
		}
	}
}

// extendBlocked fills dst entries [lo, hi) with the aligned entries of p.
// Here the aligner runs over dst (the superset): constant runs become a
// scalar fill, contiguous runs a straight copy.
func (p *Potential) extendBlocked(dst *Potential, a *aligner, lo, hi int) {
	if lo >= hi {
		return
	}
	pd, dd := p.Data, dst.Data
	L := a.runLen
	base := lo - lo%L
	a.seek(base)
	for s := lo; s < hi; {
		e := base + L
		if e > hi {
			e = hi
		}
		seg := dd[s:e]
		if a.contig {
			copy(seg, pd[a.subIdx+(s-base):])
		} else {
			f := pd[a.subIdx]
			for k := range seg {
				seg[k] = f
			}
		}
		s, base = e, e
		if s < hi {
			a.advanceRun()
		}
	}
}

// PartitionGrain returns the preferred split alignment, in entries, for
// range-partitioned kernels pairing a superset table over (supVars, supCard)
// with a subset table over subVars: the constant-run length when the
// trailing superset variables are absent from the subset (a split inside
// such a run makes two pieces reduce into the same destination cell), and 1
// when the trailing variable is shared (contiguous runs split anywhere at
// equal cost). It needs only domains, not tables, so taskgraph.Build can
// stamp a grain on every task of a skeleton tree; subset variables not in
// the superset are ignored.
func PartitionGrain(supVars, supCard, subVars []int) int {
	g := 1
	j := len(subVars) - 1
	for i := len(supVars) - 1; i >= 0; i-- {
		for j >= 0 && subVars[j] > supVars[i] {
			j--
		}
		if j >= 0 && subVars[j] == supVars[i] {
			break // shared variable: the absent suffix ends here
		}
		g *= supCard[i]
	}
	return g
}
