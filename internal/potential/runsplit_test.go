package potential

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Tests for the run decomposition: the plan's structural invariants, the
// blocked kernels' bit-identity with the scalar reference path, and the
// guarantee the scheduler's δ-snapping relies on — a range op split at
// arbitrary points (including mid-run) composes to the whole-table result
// bit for bit.

// checkPlan brute-forces the plan's claim: within every aligned run the
// subset index must be constant (contig == false) or advance by exactly one
// per entry (contig == true), and runs must tile the table.
func checkPlan(t *testing.T, supVars, supCard, subVars, subCard []int) {
	t.Helper()
	a, err := newAligner(supVars, supCard, subVars, subCard)
	if err != nil {
		t.Fatalf("newAligner(%v,%v): %v", supVars, subVars, err)
	}
	n := Size(supCard)
	if a.runLen < 1 || n%a.runLen != 0 {
		t.Fatalf("sup %v sub %v: runLen %d does not tile table of %d", supVars, subVars, a.runLen, n)
	}
	// Walk the whole table with the scalar odometer, recording subIdx.
	subAt := make([]int, n)
	a.seek(0)
	for i := 0; i < n; i++ {
		subAt[i] = a.subIdx
		a.next()
	}
	for base := 0; base < n; base += a.runLen {
		for k := 0; k < a.runLen; k++ {
			want := subAt[base]
			if a.contig {
				want = subAt[base] + k
			}
			if subAt[base+k] != want {
				t.Fatalf("sup %v/%v sub %v: run at %d, offset %d: subIdx %d, plan %d (runLen %d contig %v)",
					supVars, supCard, subVars, base, k, subAt[base+k], want, a.runLen, a.contig)
			}
		}
	}
	// advanceRun must agree with seeking each run start.
	a.seek(0)
	for base := 0; base < n; base += a.runLen {
		if a.subIdx != subAt[base] {
			t.Fatalf("sup %v sub %v: advanceRun at %d gives subIdx %d, seek gives %d",
				supVars, subVars, base, a.subIdx, subAt[base])
		}
		if base+a.runLen < n {
			a.advanceRun()
		}
	}
	// PartitionGrain: the constant-run length, or 1 for contiguous runs.
	wantGrain := a.runLen
	if a.contig {
		wantGrain = 1
	}
	if g := PartitionGrain(supVars, supCard, subVars); g != wantGrain {
		t.Fatalf("sup %v/%v sub %v: PartitionGrain %d, plan wants %d", supVars, supCard, subVars, g, wantGrain)
	}
}

func TestRunPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Directed shapes first: trailing absent, trailing shared, interleaved,
	// equal domains, scalar subset, cardinality-1 dims.
	cases := []struct{ supVars, supCard, subVars []int }{
		{[]int{0, 1, 2}, []int{2, 3, 4}, []int{0}},          // trailing absent
		{[]int{0, 1, 2}, []int{2, 3, 4}, []int{2}},          // leading absent, trailing shared
		{[]int{0, 1, 2}, []int{2, 3, 4}, []int{1, 2}},       // dense suffix
		{[]int{0, 1, 2}, []int{2, 3, 4}, []int{0, 2}},       // interleaved
		{[]int{0, 1, 2}, []int{2, 3, 4}, []int{0, 1, 2}},    // equal domains
		{[]int{0, 1, 2}, []int{2, 3, 4}, nil},               // scalar subset
		{[]int{0, 1, 2, 3}, []int{2, 1, 3, 1}, []int{1, 3}}, // card-1 dims
		{nil, nil, nil}, // scalar superset
	}
	for _, c := range cases {
		subCard := make([]int, len(c.subVars))
		for i, v := range c.subVars {
			for j, sv := range c.supVars {
				if sv == v {
					subCard[i] = c.supCard[j]
				}
			}
		}
		checkPlan(t, c.supVars, c.supCard, c.subVars, subCard)
	}
	for i := 0; i < 300; i++ {
		vars, card := randomDomain(rng, 6)
		sv, sc := subDomain(rng, vars, card)
		checkPlan(t, vars, card, sv, sc)
	}
}

// splitPoints draws k random cut points in [lo, hi], unaligned to anything —
// the resulting pieces deliberately start and end mid-run.
func splitPoints(rng *rand.Rand, lo, hi, k int) []int {
	cuts := []int{lo}
	for i := 0; i < k; i++ {
		if hi > lo {
			cuts = append(cuts, lo+rng.Intn(hi-lo+1))
		}
	}
	cuts = append(cuts, hi)
	sort.Ints(cuts)
	return cuts
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestRangeSplitBitIdentical is the δ-snapping guard: every primitive's
// range form, split at arbitrary (including mid-run) points and applied
// piece by piece in order, must compose to the whole-table result
// bit-identically. Marginalize pieces accumulate into the same destination
// sequentially, matching the unpartitioned execution order.
func TestRangeSplitBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 400; trial++ {
		vars, card := randomDomain(rng, 6)
		sv, sc := subDomain(rng, vars, card)
		p := randomPotential(rng, vars, card)
		q := randomPotential(rng, sv, sc)
		if trial%5 == 0 {
			// Exercise the 0/0 = 0 division path and max ties.
			q.Data[rng.Intn(len(q.Data))] = 0
			p.Data[rng.Intn(len(p.Data))] = 0
		}
		n := len(p.Data)
		cuts := splitPoints(rng, 0, n, 1+rng.Intn(4))

		type op struct {
			name  string
			whole func() []float64
			split func() []float64
		}
		ops := []op{
			{"multiply",
				func() []float64 {
					w := p.Clone()
					if err := w.MulRange(q, 0, n); err != nil {
						t.Fatal(err)
					}
					return w.Data
				},
				func() []float64 {
					w := p.Clone()
					for i := 1; i < len(cuts); i++ {
						if err := w.MulRange(q, cuts[i-1], cuts[i]); err != nil {
							t.Fatal(err)
						}
					}
					return w.Data
				}},
			{"divide",
				func() []float64 {
					w := p.Clone()
					if err := w.DivRange(q, 0, n); err != nil {
						t.Fatal(err)
					}
					return w.Data
				},
				func() []float64 {
					w := p.Clone()
					for i := 1; i < len(cuts); i++ {
						if err := w.DivRange(q, cuts[i-1], cuts[i]); err != nil {
							t.Fatal(err)
						}
					}
					return w.Data
				}},
			{"marginalize",
				func() []float64 {
					dst := q.CloneZero()
					if err := p.MarginalInto(dst, 0, n); err != nil {
						t.Fatal(err)
					}
					return dst.Data
				},
				func() []float64 {
					dst := q.CloneZero()
					for i := 1; i < len(cuts); i++ {
						if err := p.MarginalInto(dst, cuts[i-1], cuts[i]); err != nil {
							t.Fatal(err)
						}
					}
					return dst.Data
				}},
			{"max-marginalize",
				func() []float64 {
					dst := q.CloneZero()
					if err := p.MaxMarginalInto(dst, 0, n); err != nil {
						t.Fatal(err)
					}
					return dst.Data
				},
				func() []float64 {
					dst := q.CloneZero()
					for i := 1; i < len(cuts); i++ {
						if err := p.MaxMarginalInto(dst, cuts[i-1], cuts[i]); err != nil {
							t.Fatal(err)
						}
					}
					return dst.Data
				}},
			{"extend",
				func() []float64 {
					dst := p.CloneZero()
					if err := q.ExtendInto(dst, 0, n); err != nil {
						t.Fatal(err)
					}
					return dst.Data
				},
				func() []float64 {
					dst := p.CloneZero()
					for i := 1; i < len(cuts); i++ {
						if err := q.ExtendInto(dst, cuts[i-1], cuts[i]); err != nil {
							t.Fatal(err)
						}
					}
					return dst.Data
				}},
		}
		for _, o := range ops {
			if w, s := o.whole(), o.split(); !bitsEqual(w, s) {
				t.Fatalf("trial %d %s: split at %v diverges from whole (sup %v/%v sub %v)",
					trial, o.name, cuts, vars, card, sv)
			}
		}
	}
}

// TestBlockedMatchesScalarBitIdentical pins the blocked kernels to the
// per-entry reference implementations over random subranges.
func TestBlockedMatchesScalarBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 400; trial++ {
		vars, card := randomDomain(rng, 6)
		sv, sc := subDomain(rng, vars, card)
		p := randomPotential(rng, vars, card)
		q := randomPotential(rng, sv, sc)
		if trial%4 == 0 {
			q.Data[rng.Intn(len(q.Data))] = 0
		}
		n := len(p.Data)
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n-lo+1)

		check := func(name string, blocked, scalar func() ([]float64, error)) {
			b, errB := blocked()
			s, errS := scalar()
			if (errB == nil) != (errS == nil) {
				t.Fatalf("trial %d %s: blocked err %v, scalar err %v", trial, name, errB, errS)
			}
			if errB == nil && !bitsEqual(b, s) {
				t.Fatalf("trial %d %s: blocked diverges from scalar on [%d,%d) (sup %v/%v sub %v)",
					trial, name, lo, hi, vars, card, sv)
			}
		}
		check("multiply",
			func() ([]float64, error) { w := p.Clone(); err := w.MulRange(q, lo, hi); return w.Data, err },
			func() ([]float64, error) { w := p.Clone(); err := w.MulRangeScalar(q, lo, hi); return w.Data, err })
		check("divide",
			func() ([]float64, error) { w := p.Clone(); err := w.DivRange(q, lo, hi); return w.Data, err },
			func() ([]float64, error) { w := p.Clone(); err := w.DivRangeScalar(q, lo, hi); return w.Data, err })
		check("marginalize",
			func() ([]float64, error) { d := q.CloneZero(); err := p.MarginalInto(d, lo, hi); return d.Data, err },
			func() ([]float64, error) {
				d := q.CloneZero()
				err := p.MarginalIntoScalar(d, lo, hi)
				return d.Data, err
			})
		check("max-marginalize",
			func() ([]float64, error) { d := q.CloneZero(); err := p.MaxMarginalInto(d, lo, hi); return d.Data, err },
			func() ([]float64, error) {
				d := q.CloneZero()
				err := p.MaxMarginalIntoScalar(d, lo, hi)
				return d.Data, err
			})
		check("extend",
			func() ([]float64, error) { d := p.CloneZero(); err := q.ExtendInto(d, lo, hi); return d.Data, err },
			func() ([]float64, error) {
				d := p.CloneZero()
				err := q.ExtendIntoScalar(d, lo, hi)
				return d.Data, err
			})
	}
}
