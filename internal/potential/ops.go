package potential

import (
	"fmt"
	"sort"
)

// This file implements the four node-level primitives of evidence
// propagation, each in a whole-table and a [lo,hi)-range form. The range
// forms are what the collaborative scheduler's Partition module executes as
// subtasks:
//
//   - Multiply/Divide/Extend range subtasks write disjoint slices of the
//     output, so combining them requires no extra work (concatenation);
//   - Marginalize range subtasks read disjoint slices of the *input* and
//     accumulate into private zero buffers that the combiner subtask Adds.
//
// The public range forms execute the run-decomposed blocked kernels of
// kernels.go. Each also has a *Scalar variant — the original per-entry
// odometer walk — retained as the reference implementation: the blocked
// kernels must match it bit for bit (kernels_fuzz_test.go, runsplit_test.go)
// and beat it on ns/entry (bench_kernels_test.go, cmd/evkernels).

// MulBy multiplies p in place by q, whose domain must be a subset of p's.
func (p *Potential) MulBy(q *Potential) error { return p.MulRange(q, 0, len(p.Data)) }

// MulRange multiplies entries lo..hi-1 of p in place by the aligned entries
// of q, whose domain must be a subset of p's.
func (p *Potential) MulRange(q *Potential, lo, hi int) error {
	a, err := newAligner(p.Vars, p.Card, q.Vars, q.Card)
	if err != nil {
		return fmt.Errorf("multiply: %w", err)
	}
	if err := checkRange(lo, hi, len(p.Data)); err != nil {
		return fmt.Errorf("multiply: %w", err)
	}
	p.mulBlocked(q, a, lo, hi)
	return nil
}

// MulRangeScalar is the per-entry reference implementation of MulRange.
func (p *Potential) MulRangeScalar(q *Potential, lo, hi int) error {
	a, err := newAligner(p.Vars, p.Card, q.Vars, q.Card)
	if err != nil {
		return fmt.Errorf("multiply: %w", err)
	}
	if err := checkRange(lo, hi, len(p.Data)); err != nil {
		return fmt.Errorf("multiply: %w", err)
	}
	a.seek(lo)
	for i := lo; i < hi; i++ {
		p.Data[i] *= q.Data[a.subIdx]
		a.next()
	}
	return nil
}

// DivBy divides p in place by q, whose domain must be a subset of p's,
// using the junction-tree convention 0/0 = 0.
func (p *Potential) DivBy(q *Potential) error { return p.DivRange(q, 0, len(p.Data)) }

// DivRange divides entries lo..hi-1 of p in place by the aligned entries of
// q (0/0 = 0), whose domain must be a subset of p's.
func (p *Potential) DivRange(q *Potential, lo, hi int) error {
	a, err := newAligner(p.Vars, p.Card, q.Vars, q.Card)
	if err != nil {
		return fmt.Errorf("divide: %w", err)
	}
	if err := checkRange(lo, hi, len(p.Data)); err != nil {
		return fmt.Errorf("divide: %w", err)
	}
	p.divBlocked(q, a, lo, hi)
	return nil
}

// DivRangeScalar is the per-entry reference implementation of DivRange.
func (p *Potential) DivRangeScalar(q *Potential, lo, hi int) error {
	a, err := newAligner(p.Vars, p.Card, q.Vars, q.Card)
	if err != nil {
		return fmt.Errorf("divide: %w", err)
	}
	if err := checkRange(lo, hi, len(p.Data)); err != nil {
		return fmt.Errorf("divide: %w", err)
	}
	a.seek(lo)
	for i := lo; i < hi; i++ {
		d := q.Data[a.subIdx]
		if d == 0 {
			p.Data[i] = 0
		} else {
			p.Data[i] /= d
		}
		a.next()
	}
	return nil
}

// Marginal sums p down onto the given subset of its variables, returning a
// fresh potential. onto must be sorted ascending.
func (p *Potential) Marginal(onto []int) (*Potential, error) {
	vars, card := IntersectDomain(p.Vars, p.Card, onto)
	if len(vars) != len(onto) {
		return nil, fmt.Errorf("marginal: target %v not a subset of domain %v", onto, p.Vars)
	}
	dst, err := New(vars, card)
	if err != nil {
		return nil, err
	}
	if err := p.MarginalInto(dst, 0, len(p.Data)); err != nil {
		return nil, err
	}
	return dst, nil
}

// MarginalInto accumulates entries lo..hi-1 of p into dst, whose domain must
// be a subset of p's. dst is not cleared: partitioned subtasks accumulate
// into private zero buffers which a combiner later Adds together.
func (p *Potential) MarginalInto(dst *Potential, lo, hi int) error {
	a, err := newAligner(p.Vars, p.Card, dst.Vars, dst.Card)
	if err != nil {
		return fmt.Errorf("marginal: %w", err)
	}
	if err := checkRange(lo, hi, len(p.Data)); err != nil {
		return fmt.Errorf("marginal: %w", err)
	}
	p.marginalBlocked(dst, a, lo, hi)
	return nil
}

// MarginalIntoScalar is the per-entry reference implementation of
// MarginalInto.
func (p *Potential) MarginalIntoScalar(dst *Potential, lo, hi int) error {
	a, err := newAligner(p.Vars, p.Card, dst.Vars, dst.Card)
	if err != nil {
		return fmt.Errorf("marginal: %w", err)
	}
	if err := checkRange(lo, hi, len(p.Data)); err != nil {
		return fmt.Errorf("marginal: %w", err)
	}
	a.seek(lo)
	for i := lo; i < hi; i++ {
		dst.Data[a.subIdx] += p.Data[i]
		a.next()
	}
	return nil
}

// MarginalizeOut sums the given variables out of p, returning a fresh
// potential over the remaining variables. out may arrive unsorted and with
// duplicates — it is canonicalized first, and a sorted merge against the
// domain computes the kept variables in O(|Vars| + |out| log |out|).
// Variables in out but not in p's domain are ignored, as before.
func (p *Potential) MarginalizeOut(out []int) (*Potential, error) {
	o := append([]int(nil), out...)
	sort.Ints(o)
	u := o[:0]
	for _, v := range o {
		if len(u) == 0 || v != u[len(u)-1] {
			u = append(u, v)
		}
	}
	keep := make([]int, 0, len(p.Vars))
	j := 0
	for _, v := range p.Vars {
		for j < len(u) && u[j] < v {
			j++
		}
		if j < len(u) && u[j] == v {
			continue
		}
		keep = append(keep, v)
	}
	return p.Marginal(keep)
}

// Extend broadcasts p onto the superset domain (vars, card), returning a
// fresh potential whose every entry equals the aligned entry of p.
func (p *Potential) Extend(vars, card []int) (*Potential, error) {
	dst, err := New(vars, card)
	if err != nil {
		return nil, err
	}
	if err := p.ExtendInto(dst, 0, len(dst.Data)); err != nil {
		return nil, err
	}
	return dst, nil
}

// ExtendInto fills entries lo..hi-1 of dst with the aligned entries of p,
// whose domain must be a subset of dst's.
func (p *Potential) ExtendInto(dst *Potential, lo, hi int) error {
	a, err := newAligner(dst.Vars, dst.Card, p.Vars, p.Card)
	if err != nil {
		return fmt.Errorf("extend: %w", err)
	}
	if err := checkRange(lo, hi, len(dst.Data)); err != nil {
		return fmt.Errorf("extend: %w", err)
	}
	p.extendBlocked(dst, a, lo, hi)
	return nil
}

// ExtendIntoScalar is the per-entry reference implementation of ExtendInto.
func (p *Potential) ExtendIntoScalar(dst *Potential, lo, hi int) error {
	a, err := newAligner(dst.Vars, dst.Card, p.Vars, p.Card)
	if err != nil {
		return fmt.Errorf("extend: %w", err)
	}
	if err := checkRange(lo, hi, len(dst.Data)); err != nil {
		return fmt.Errorf("extend: %w", err)
	}
	a.seek(lo)
	for i := lo; i < hi; i++ {
		dst.Data[i] = p.Data[a.subIdx]
		a.next()
	}
	return nil
}

// Product multiplies two potentials over possibly different domains,
// returning a fresh potential over the union domain. It is the general
// combination used when compiling clique potentials from CPTs.
func Product(p, q *Potential) (*Potential, error) {
	vars, card, err := UnionDomain(p.Vars, p.Card, q.Vars, q.Card)
	if err != nil {
		return nil, fmt.Errorf("product: %w", err)
	}
	out, err := p.Extend(vars, card)
	if err != nil {
		return nil, err
	}
	if err := out.MulBy(q); err != nil {
		return nil, err
	}
	return out, nil
}

func checkRange(lo, hi, n int) error {
	if lo < 0 || hi < lo || hi > n {
		return fmt.Errorf("range [%d,%d) invalid for table of %d entries", lo, hi, n)
	}
	return nil
}
