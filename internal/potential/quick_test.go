package potential

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randomDomain draws a small random domain: up to maxVars variables with ids
// in [0, 12) and cardinalities in [1, 4].
func randomDomain(rng *rand.Rand, maxVars int) (vars, card []int) {
	n := rng.Intn(maxVars + 1)
	seen := map[int]bool{}
	for len(vars) < n {
		v := rng.Intn(12)
		if !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	sort.Ints(vars)
	card = make([]int, len(vars))
	for i := range card {
		card[i] = 1 + rng.Intn(3)
	}
	return vars, card
}

// subDomain draws a random subset of an existing domain.
func subDomain(rng *rand.Rand, vars, card []int) (sv, sc []int) {
	for i := range vars {
		if rng.Intn(2) == 0 {
			sv = append(sv, vars[i])
			sc = append(sc, card[i])
		}
	}
	return sv, sc
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

func TestQuickMarginalPreservesMass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		p := randomPotential(rng, vars, card)
		sv, _ := subDomain(rng, vars, card)
		m, err := p.Marginal(sv)
		if err != nil {
			return false
		}
		return math.Abs(m.Sum()-p.Sum()) <= 1e-9*math.Max(1, p.Sum())
	}
	if err := quick.Check(f, quickCfg(1)); err != nil {
		t.Error(err)
	}
}

func TestQuickMarginalCommutes(t *testing.T) {
	// Marginalizing in two steps equals marginalizing in one step.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 6)
		p := randomPotential(rng, vars, card)
		mid, midCard := subDomain(rng, vars, card)
		fin, _ := subDomain(rng, mid, midCard)
		step1, err := p.Marginal(mid)
		if err != nil {
			return false
		}
		twoStep, err := step1.Marginal(fin)
		if err != nil {
			return false
		}
		oneStep, err := p.Marginal(fin)
		if err != nil {
			return false
		}
		return oneStep.Equal(twoStep, 1e-9)
	}
	if err := quick.Check(f, quickCfg(2)); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDivRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		p := randomPotential(rng, vars, card)
		sv, sc := subDomain(rng, vars, card)
		q := randomPotential(rng, sv, sc)
		orig := p.Clone()
		if err := p.MulBy(q); err != nil {
			return false
		}
		if err := p.DivBy(q); err != nil {
			return false
		}
		return p.Equal(orig, 1e-9)
	}
	if err := quick.Check(f, quickCfg(3)); err != nil {
		t.Error(err)
	}
}

func TestQuickMulCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		p := randomPotential(rng, vars, card)
		a, ac := subDomain(rng, vars, card)
		b, bc := subDomain(rng, vars, card)
		qa := randomPotential(rng, a, ac)
		qb := randomPotential(rng, b, bc)
		x := p.Clone()
		if err := x.MulBy(qa); err != nil {
			return false
		}
		if err := x.MulBy(qb); err != nil {
			return false
		}
		y := p.Clone()
		if err := y.MulBy(qb); err != nil {
			return false
		}
		if err := y.MulBy(qa); err != nil {
			return false
		}
		return x.Equal(y, 1e-9)
	}
	if err := quick.Check(f, quickCfg(4)); err != nil {
		t.Error(err)
	}
}

func TestQuickExtendMarginalAdjoint(t *testing.T) {
	// Extension followed by marginalization back multiplies mass by the
	// number of summed-out configurations.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		sv, sc := subDomain(rng, vars, card)
		q := randomPotential(rng, sv, sc)
		e, err := q.Extend(vars, card)
		if err != nil {
			return false
		}
		back, err := e.Marginal(sv)
		if err != nil {
			return false
		}
		factor := float64(Size(card)) / float64(Size(sc))
		scaled := q.Clone()
		scaled.Scale(factor)
		return back.Equal(scaled, 1e-9*factor)
	}
	if err := quick.Check(f, quickCfg(5)); err != nil {
		t.Error(err)
	}
}

func TestQuickRangeOpsMatchWhole(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		p := randomPotential(rng, vars, card)
		sv, sc := subDomain(rng, vars, card)
		q := randomPotential(rng, sv, sc)

		whole := p.Clone()
		if err := whole.MulBy(q); err != nil {
			return false
		}
		chunked := p.Clone()
		step := 1 + rng.Intn(7)
		for lo := 0; lo < chunked.Len(); lo += step {
			hi := lo + step
			if hi > chunked.Len() {
				hi = chunked.Len()
			}
			if err := chunked.MulRange(q, lo, hi); err != nil {
				return false
			}
		}
		return whole.Equal(chunked, 1e-12)
	}
	if err := quick.Check(f, quickCfg(6)); err != nil {
		t.Error(err)
	}
}

func TestQuickEvidenceReduceMass(t *testing.T) {
	// Reducing on evidence never increases mass, and repeating the same
	// reduction is idempotent.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		p := randomPotential(rng, vars, card)
		ev := Evidence{}
		for i, v := range vars {
			if rng.Intn(3) == 0 {
				ev[v] = rng.Intn(card[i])
			}
		}
		before := p.Sum()
		if err := p.Reduce(ev); err != nil {
			return false
		}
		mid := p.Sum()
		if mid > before+1e-12 {
			return false
		}
		if err := p.Reduce(ev); err != nil {
			return false
		}
		return math.Abs(p.Sum()-mid) <= 1e-12
	}
	if err := quick.Check(f, quickCfg(7)); err != nil {
		t.Error(err)
	}
}

func TestQuickReduceEqualsSelectiveSum(t *testing.T) {
	// Sum after Reduce equals the sum of entries consistent with evidence.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars, card := randomDomain(rng, 5)
		p := randomPotential(rng, vars, card)
		ev := Evidence{}
		for i, v := range vars {
			if rng.Intn(2) == 0 {
				ev[v] = rng.Intn(card[i])
			}
		}
		want := 0.0
		states := make([]int, len(vars))
		for idx := 0; idx < p.Len(); idx++ {
			p.assignmentInto(idx, states)
			ok := true
			for i, v := range vars {
				if s, has := ev[v]; has && states[i] != s {
					ok = false
					break
				}
			}
			if ok {
				want += p.Data[idx]
			}
		}
		if err := p.Reduce(ev); err != nil {
			return false
		}
		return math.Abs(p.Sum()-want) <= 1e-9
	}
	if err := quick.Check(f, quickCfg(8)); err != nil {
		t.Error(err)
	}
}

func TestEvidenceErrors(t *testing.T) {
	p := MustNew([]int{3}, []int{2})
	if err := p.Reduce(Evidence{3: 2}); err == nil {
		t.Error("Reduce accepted out-of-range state")
	}
	if err := p.Reduce(Evidence{3: -1}); err == nil {
		t.Error("Reduce accepted negative state")
	}
	if err := p.Reduce(Evidence{99: 0}); err != nil {
		t.Errorf("Reduce rejected evidence on foreign variable: %v", err)
	}
}

// TestReduceInvalidLeavesTableUntouched is the regression test for the
// mutate-then-fail bug: Reduce validated observed states one variable at a
// time, so a valid observation on an earlier variable was already absorbed
// (entries zeroed) before a later out-of-range observation returned an
// error, leaving the table partially reduced — and ReduceCount reported 0
// zeroed entries despite the mutation. All states must now be validated up
// front, making a failed Reduce a no-op.
func TestReduceInvalidLeavesTableUntouched(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 2})
	copy(p.Data, []float64{1, 2, 3, 4})
	before := append([]float64(nil), p.Data...)
	// Variable 0's observation is valid, variable 1's is out of range. The
	// old code zeroed variable 0's inconsistent entries before noticing.
	err := p.Reduce(Evidence{0: 1, 1: 5})
	if err == nil {
		t.Fatal("Reduce accepted an out-of-range observation")
	}
	for i, v := range p.Data {
		if v != before[i] {
			t.Fatalf("failed Reduce mutated the table: entry %d = %v, want %v (table %v)", i, v, before[i], p.Data)
		}
	}
	n, err := p.ReduceCount(Evidence{0: 1, 1: 5})
	if err == nil {
		t.Fatal("ReduceCount accepted an out-of-range observation")
	}
	if n != 0 {
		t.Errorf("failed ReduceCount reported %d zeroed entries", n)
	}
	for i, v := range p.Data {
		if v != before[i] {
			t.Fatalf("failed ReduceCount mutated the table: entry %d = %v, want %v", i, v, before[i])
		}
	}
}

func TestReduceCount(t *testing.T) {
	p := mustConst(t, []int{0, 1}, []int{2, 2}, 1)
	n, err := p.ReduceCount(Evidence{0: 1})
	if err != nil {
		t.Fatalf("ReduceCount: %v", err)
	}
	if n != 2 {
		t.Errorf("ReduceCount = %d, want 2", n)
	}
}

func TestApplyLikelihood(t *testing.T) {
	p := mustConst(t, []int{2, 5}, []int{2, 3}, 1)
	like := Likelihood{5: {1, 2, 0}}
	if err := p.ApplyLikelihood(like, 5); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 2; a++ {
		if p.At(a, 0) != 1 || p.At(a, 1) != 2 || p.At(a, 2) != 0 {
			t.Fatalf("weights misapplied: %v", p.Data)
		}
	}
	// Variables absent from the likelihood are a no-op.
	if err := p.ApplyLikelihood(like, 2); err != nil {
		t.Errorf("no-op application errored: %v", err)
	}
	// Errors: variable not in domain, wrong length, negative weight.
	if err := p.ApplyLikelihood(Likelihood{9: {1, 1}}, 9); err == nil {
		t.Error("accepted likelihood on foreign variable")
	}
	if err := p.ApplyLikelihood(Likelihood{5: {1, 1}}, 5); err == nil {
		t.Error("accepted wrong-length weights")
	}
	if err := p.ApplyLikelihood(Likelihood{5: {1, -1, 1}}, 5); err == nil {
		t.Error("accepted negative weight")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on malformed domain")
		}
	}()
	MustNew([]int{2, 1}, []int{2, 2})
}

func TestValidateUnsortedVars(t *testing.T) {
	p := MustNew([]int{0, 1}, []int{2, 2})
	p.Vars[0], p.Vars[1] = 1, 0
	if err := p.Validate(); err == nil {
		t.Error("Validate missed unsorted vars")
	}
	q := MustNew([]int{0}, []int{2})
	q.Card[0] = 0
	if err := q.Validate(); err == nil {
		t.Error("Validate missed zero cardinality")
	}
	r := MustNew([]int{0}, []int{2})
	r.Card = r.Card[:0]
	if err := r.Validate(); err == nil {
		t.Error("Validate missed card/vars mismatch")
	}
}
