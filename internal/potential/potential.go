// Package potential implements discrete potential tables and the four
// node-level primitives of evidence propagation: marginalization, division,
// extension and multiplication (Xia & Prasanna, "Node level primitives for
// parallel exact inference", SBAC-PAD 2007; used as tasks in the PACT 2009
// paper reproduced by this repository).
//
// A potential is a non-negative real-valued table over a set of discrete
// variables. Each variable is identified by a non-negative integer id and
// has a fixed cardinality (number of states). Entries are stored row-major
// with the *last* variable varying fastest, and the variable list is kept
// sorted ascending so that two potentials over the same variables always
// share one canonical layout.
//
// Every primitive has a range form operating on an index interval [lo, hi)
// so that a large task can be partitioned into independent subtasks, as
// required by the collaborative scheduler's Partition module.
package potential

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Potential is a table over a sorted set of discrete variables.
//
// Invariants: len(Vars) == len(Card); Vars is strictly ascending;
// every Card[i] >= 1; len(Data) == product of Card. A potential over zero
// variables is a scalar and holds exactly one entry.
type Potential struct {
	Vars []int     // variable ids, strictly ascending
	Card []int     // cardinality of each variable, parallel to Vars
	Data []float64 // row-major entries, last variable fastest
}

// New returns a zero-initialized potential over vars with the given
// cardinalities. It reports an error if the domain is malformed.
func New(vars, card []int) (*Potential, error) {
	if len(vars) != len(card) {
		return nil, fmt.Errorf("potential: %d vars but %d cardinalities", len(vars), len(card))
	}
	n := 1
	for i, v := range vars {
		if i > 0 && vars[i-1] >= v {
			return nil, fmt.Errorf("potential: vars not strictly ascending at position %d", i)
		}
		if v < 0 {
			return nil, fmt.Errorf("potential: negative variable id %d", v)
		}
		if card[i] < 1 {
			return nil, fmt.Errorf("potential: variable %d has cardinality %d", v, card[i])
		}
		if n > (1<<40)/card[i] {
			return nil, fmt.Errorf("potential: table over %d variables exceeds size limit", len(vars))
		}
		n *= card[i]
	}
	return &Potential{
		Vars: append([]int(nil), vars...),
		Card: append([]int(nil), card...),
		Data: make([]float64, n),
	}, nil
}

// MustNew is New, panicking on a malformed domain. Intended for literals in
// tests and examples where the domain is known to be valid.
func MustNew(vars, card []int) *Potential {
	p, err := New(vars, card)
	if err != nil {
		panic(err)
	}
	return p
}

// NewConstant returns a potential over vars with every entry set to v.
func NewConstant(vars, card []int, v float64) (*Potential, error) {
	p, err := New(vars, card)
	if err != nil {
		return nil, err
	}
	for i := range p.Data {
		p.Data[i] = v
	}
	return p, nil
}

// Scalar returns a variable-free potential holding the single value v.
func Scalar(v float64) *Potential {
	return &Potential{Data: []float64{v}}
}

// Size returns the total size in entries of a table over the given
// cardinalities; it is what len(Data) would be without allocating.
func Size(card []int) int {
	n := 1
	for _, c := range card {
		n *= c
	}
	return n
}

// Len returns the number of entries in the table.
func (p *Potential) Len() int { return len(p.Data) }

// Clone returns a deep copy of p.
func (p *Potential) Clone() *Potential {
	return &Potential{
		Vars: append([]int(nil), p.Vars...),
		Card: append([]int(nil), p.Card...),
		Data: append([]float64(nil), p.Data...),
	}
}

// CloneZero returns a potential with the same domain as p and all entries 0.
func (p *Potential) CloneZero() *Potential {
	return &Potential{
		Vars: append([]int(nil), p.Vars...),
		Card: append([]int(nil), p.Card...),
		Data: make([]float64, len(p.Data)),
	}
}

// HasVar reports whether variable v is in p's domain.
func (p *Potential) HasVar(v int) bool {
	i := sort.SearchInts(p.Vars, v)
	return i < len(p.Vars) && p.Vars[i] == v
}

// CardOf returns the cardinality of variable v in p's domain, or 0 if v is
// not in the domain.
func (p *Potential) CardOf(v int) int {
	i := sort.SearchInts(p.Vars, v)
	if i < len(p.Vars) && p.Vars[i] == v {
		return p.Card[i]
	}
	return 0
}

// IndexOf returns the linear index of the given per-variable states, which
// must be parallel to p.Vars.
func (p *Potential) IndexOf(states []int) int {
	idx := 0
	for i, s := range states {
		idx = idx*p.Card[i] + s
	}
	return idx
}

// AssignmentOf decomposes a linear index into per-variable states, parallel
// to p.Vars.
func (p *Potential) AssignmentOf(idx int) []int {
	states := make([]int, len(p.Vars))
	p.assignmentInto(idx, states)
	return states
}

func (p *Potential) assignmentInto(idx int, states []int) {
	for i := len(p.Vars) - 1; i >= 0; i-- {
		states[i] = idx % p.Card[i]
		idx /= p.Card[i]
	}
}

// At returns the entry for the given per-variable states.
func (p *Potential) At(states ...int) float64 { return p.Data[p.IndexOf(states)] }

// Set assigns the entry for the given per-variable states.
func (p *Potential) Set(v float64, states ...int) { p.Data[p.IndexOf(states)] = v }

// Sum returns the total mass of the table.
func (p *Potential) Sum() float64 {
	s := 0.0
	for _, v := range p.Data {
		s += v
	}
	return s
}

// Normalize scales the table to total mass 1. It reports an error if the
// table has zero (or non-finite) mass.
func (p *Potential) Normalize() error {
	s := p.Sum()
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return fmt.Errorf("potential: cannot normalize table with mass %v", s)
	}
	inv := 1 / s
	for i := range p.Data {
		p.Data[i] *= inv
	}
	return nil
}

// Scale multiplies every entry by f.
func (p *Potential) Scale(f float64) {
	for i := range p.Data {
		p.Data[i] *= f
	}
}

// Add accumulates q into p. The two potentials must have identical domains;
// it is used to combine the private buffers of partitioned marginalization
// subtasks.
func (p *Potential) Add(q *Potential) error {
	if !sameDomain(p, q) {
		return fmt.Errorf("potential: Add domain mismatch %v vs %v", p.Vars, q.Vars)
	}
	for i, v := range q.Data {
		p.Data[i] += v
	}
	return nil
}

// MaxDiff returns the largest absolute difference between entries of p and
// q, which must share a domain. It is a testing aid.
func (p *Potential) MaxDiff(q *Potential) (float64, error) {
	if !sameDomain(p, q) {
		return 0, fmt.Errorf("potential: MaxDiff domain mismatch %v vs %v", p.Vars, q.Vars)
	}
	m := 0.0
	for i, v := range q.Data {
		d := math.Abs(p.Data[i] - v)
		if d > m {
			m = d
		}
	}
	return m, nil
}

// Equal reports whether p and q share a domain and all entries agree within
// tol.
func (p *Potential) Equal(q *Potential, tol float64) bool {
	d, err := p.MaxDiff(q)
	return err == nil && d <= tol
}

func sameDomain(p, q *Potential) bool {
	if len(p.Vars) != len(q.Vars) {
		return false
	}
	for i, v := range p.Vars {
		if q.Vars[i] != v || q.Card[i] != p.Card[i] {
			return false
		}
	}
	return true
}

// String renders the potential compactly for debugging.
func (p *Potential) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ψ(vars=%v card=%v)[", p.Vars, p.Card)
	for i, v := range p.Data {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i >= 16 {
			fmt.Fprintf(&b, "… %d more", len(p.Data)-i)
			break
		}
		fmt.Fprintf(&b, "%.4g", v)
	}
	b.WriteByte(']')
	return b.String()
}

// Validate checks the structural invariants of p.
func (p *Potential) Validate() error {
	if len(p.Vars) != len(p.Card) {
		return fmt.Errorf("potential: %d vars but %d cardinalities", len(p.Vars), len(p.Card))
	}
	n := 1
	for i, v := range p.Vars {
		if i > 0 && p.Vars[i-1] >= v {
			return fmt.Errorf("potential: vars not strictly ascending at position %d", i)
		}
		if p.Card[i] < 1 {
			return fmt.Errorf("potential: variable %d has cardinality %d", v, p.Card[i])
		}
		n *= p.Card[i]
	}
	if n != len(p.Data) {
		return fmt.Errorf("potential: domain size %d but %d entries", n, len(p.Data))
	}
	return nil
}

// UnionDomain merges two sorted variable/cardinality lists, reporting an
// error if a shared variable has conflicting cardinalities.
func UnionDomain(varsA, cardA, varsB, cardB []int) (vars, card []int, err error) {
	i, j := 0, 0
	for i < len(varsA) || j < len(varsB) {
		switch {
		case j >= len(varsB) || (i < len(varsA) && varsA[i] < varsB[j]):
			vars = append(vars, varsA[i])
			card = append(card, cardA[i])
			i++
		case i >= len(varsA) || varsB[j] < varsA[i]:
			vars = append(vars, varsB[j])
			card = append(card, cardB[j])
			j++
		default: // equal
			if cardA[i] != cardB[j] {
				return nil, nil, fmt.Errorf("potential: variable %d has cardinality %d and %d", varsA[i], cardA[i], cardB[j])
			}
			vars = append(vars, varsA[i])
			card = append(card, cardA[i])
			i++
			j++
		}
	}
	return vars, card, nil
}

// IntersectDomain returns the sorted intersection of two sorted variable
// lists along with the cardinalities taken from the first list.
func IntersectDomain(varsA, cardA, varsB []int) (vars, card []int) {
	j := 0
	for i, v := range varsA {
		for j < len(varsB) && varsB[j] < v {
			j++
		}
		if j < len(varsB) && varsB[j] == v {
			vars = append(vars, v)
			card = append(card, cardA[i])
		}
	}
	return vars, card
}
