package potential

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func dist(t *testing.T, vars, card []int, data []float64) *Potential {
	t.Helper()
	p := MustNew(vars, card)
	copy(p.Data, data)
	return p
}

func TestEntropy(t *testing.T) {
	// Uniform binary: 1 bit.
	p := dist(t, []int{0}, []int{2}, []float64{0.5, 0.5})
	h, err := p.Entropy()
	if err != nil || math.Abs(h-1) > 1e-12 {
		t.Errorf("H(uniform) = %v, %v", h, err)
	}
	// Deterministic: 0 bits.
	q := dist(t, []int{0}, []int{2}, []float64{1, 0})
	h, err = q.Entropy()
	if err != nil || h != 0 {
		t.Errorf("H(deterministic) = %v, %v", h, err)
	}
	// Uniform over 8 states: 3 bits.
	card8 := dist(t, []int{0}, []int{8}, []float64{.125, .125, .125, .125, .125, .125, .125, .125})
	h, err = card8.Entropy()
	if err != nil || math.Abs(h-3) > 1e-12 {
		t.Errorf("H(uniform-8) = %v, %v", h, err)
	}
	// Unnormalized tables error.
	bad := dist(t, []int{0}, []int{2}, []float64{0.7, 0.7})
	if _, err := bad.Entropy(); err == nil {
		t.Error("accepted unnormalized table")
	}
}

func TestKLDivergence(t *testing.T) {
	p := dist(t, []int{0}, []int{2}, []float64{0.5, 0.5})
	q := dist(t, []int{0}, []int{2}, []float64{0.9, 0.1})
	d, err := p.KLDivergence(q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log2(0.5/0.9) + 0.5*math.Log2(0.5/0.1)
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", d, want)
	}
	// Self-divergence zero.
	if d, _ := p.KLDivergence(p); d != 0 {
		t.Errorf("KL(p‖p) = %v", d)
	}
	// Support mismatch → +Inf.
	r := dist(t, []int{0}, []int{2}, []float64{1, 0})
	d, err = p.KLDivergence(r)
	if err != nil || !math.IsInf(d, 1) {
		t.Errorf("KL with support gap = %v, %v", d, err)
	}
	// Domain mismatch.
	s := dist(t, []int{1}, []int{2}, []float64{0.5, 0.5})
	if _, err := p.KLDivergence(s); err == nil {
		t.Error("accepted mismatched domains")
	}
}

func TestTotalVariation(t *testing.T) {
	p := dist(t, []int{0}, []int{2}, []float64{0.5, 0.5})
	q := dist(t, []int{0}, []int{2}, []float64{0.9, 0.1})
	d, err := p.TotalVariation(q)
	if err != nil || math.Abs(d-0.4) > 1e-12 {
		t.Errorf("TV = %v, %v; want 0.4", d, err)
	}
	if d, _ := p.TotalVariation(p); d != 0 {
		t.Errorf("TV(p,p) = %v", d)
	}
}

func TestMutualInformation(t *testing.T) {
	// Independent: MI = 0.
	indep := dist(t, []int{0, 1}, []int{2, 2}, []float64{0.25, 0.25, 0.25, 0.25})
	mi, err := indep.MutualInformation()
	if err != nil || math.Abs(mi) > 1e-12 {
		t.Errorf("MI(independent) = %v, %v", mi, err)
	}
	// Perfectly correlated binary: MI = 1 bit.
	corr := dist(t, []int{0, 1}, []int{2, 2}, []float64{0.5, 0, 0, 0.5})
	mi, err = corr.MutualInformation()
	if err != nil || math.Abs(mi-1) > 1e-12 {
		t.Errorf("MI(correlated) = %v, %v", mi, err)
	}
	// Wrong arity.
	one := dist(t, []int{0}, []int{2}, []float64{0.5, 0.5})
	if _, err := one.MutualInformation(); err == nil {
		t.Error("accepted 1-variable table")
	}
}

func TestQuickInfoInequalities(t *testing.T) {
	// H ≥ 0, KL ≥ 0, TV ∈ [0,1], MI ≥ 0 and MI ≤ min(H(X), H(Y)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPotential(rng, []int{0, 1}, []int{2 + rng.Intn(2), 2 + rng.Intn(2)})
		if err := p.Normalize(); err != nil {
			return false
		}
		q := randomPotential(rng, p.Vars, p.Card)
		if err := q.Normalize(); err != nil {
			return false
		}
		h, err := p.Entropy()
		if err != nil || h < 0 {
			return false
		}
		kl, err := p.KLDivergence(q)
		if err != nil || kl < 0 {
			return false
		}
		tv, err := p.TotalVariation(q)
		if err != nil || tv < 0 || tv > 1 {
			return false
		}
		mi, err := p.MutualInformation()
		if err != nil || mi < 0 {
			return false
		}
		hx, err1 := mustMarginalEntropy(p, p.Vars[:1])
		hy, err2 := mustMarginalEntropy(p, p.Vars[1:])
		if err1 != nil || err2 != nil {
			return false
		}
		return mi <= hx+1e-9 && mi <= hy+1e-9
	}
	if err := quick.Check(f, quickCfg(41)); err != nil {
		t.Error(err)
	}
}

func mustMarginalEntropy(p *Potential, onto []int) (float64, error) {
	m, err := p.Marginal(onto)
	if err != nil {
		return 0, err
	}
	return m.Entropy()
}
