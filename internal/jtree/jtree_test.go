package jtree

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinyTree builds a small hand-made tree:
//
//	0:{0,1} — 1:{1,2} — 2:{2,3}
//	           \
//	            3:{1,4}
//
// rooted at 0, all variables binary.
func tinyTree(t *testing.T) *Tree {
	t.Helper()
	vars := [][]int{{0, 1}, {1, 2}, {2, 3}, {1, 4}}
	card := [][]int{{2, 2}, {2, 2}, {2, 2}, {2, 2}}
	adj := [][]int{{1}, {0, 2, 3}, {1}, {1}}
	tr, err := NewFromAdjacency(vars, card, adj, 0)
	if err != nil {
		t.Fatalf("NewFromAdjacency: %v", err)
	}
	return tr
}

func TestNewFromAdjacency(t *testing.T) {
	tr := tinyTree(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.Root != 0 || tr.Cliques[0].Parent != -1 {
		t.Error("root wiring wrong")
	}
	if tr.Cliques[2].Parent != 1 || tr.Cliques[3].Parent != 1 {
		t.Error("parents wrong")
	}
	if len(tr.Cliques[1].Children) != 2 {
		t.Errorf("clique 1 has children %v", tr.Cliques[1].Children)
	}
}

func TestSeparators(t *testing.T) {
	tr := tinyTree(t)
	c1 := tr.Cliques[1]
	if len(c1.SepVars) != 1 || c1.SepVars[0] != 1 {
		t.Errorf("sep(1) = %v, want [1]", c1.SepVars)
	}
	c2 := tr.Cliques[2]
	if len(c2.SepVars) != 1 || c2.SepVars[0] != 2 {
		t.Errorf("sep(2) = %v, want [2]", c2.SepVars)
	}
	if tr.Cliques[0].SepVars != nil {
		t.Errorf("root separator = %v, want nil", tr.Cliques[0].SepVars)
	}
}

func TestValidateCatchesBadChildLink(t *testing.T) {
	tr := tinyTree(t)
	tr.Cliques[2].Parent = 0 // child link 1->2 now inconsistent
	if err := tr.Validate(); err == nil {
		t.Error("Validate missed inconsistent child link")
	}
}

func TestValidateCatchesRIPViolation(t *testing.T) {
	// Variable 9 appears in cliques 0 and 2 but not on the path between
	// them (clique 1), violating the running intersection property.
	vars := [][]int{{0, 9}, {0, 1}, {1, 9}}
	card := [][]int{{2, 2}, {2, 2}, {2, 2}}
	adj := [][]int{{1}, {0, 2}, {1}}
	tr, err := NewFromAdjacency(vars, card, adj, 0)
	if err != nil {
		t.Fatalf("NewFromAdjacency: %v", err)
	}
	if err := tr.Validate(); err == nil {
		t.Error("Validate missed RIP violation")
	}
}

func TestValidateCatchesCardinalityConflict(t *testing.T) {
	vars := [][]int{{0, 1}, {1, 2}}
	card := [][]int{{2, 2}, {3, 2}} // variable 1: cardinality 2 vs 3
	adj := [][]int{{1}, {0}}
	tr, err := NewFromAdjacency(vars, card, adj, 0)
	if err != nil {
		t.Fatalf("NewFromAdjacency: %v", err)
	}
	if err := tr.Validate(); err == nil {
		t.Error("Validate missed cardinality conflict")
	}
}

func TestTopoAndPostOrder(t *testing.T) {
	tr := tinyTree(t)
	topo, err := tr.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[int]int)
	for k, i := range topo {
		pos[i] = k
	}
	for i := range tr.Cliques {
		p := tr.Cliques[i].Parent
		if p >= 0 && pos[p] > pos[i] {
			t.Errorf("parent %d after child %d in topo order", p, i)
		}
	}
	post := tr.PostOrder()
	posPost := make(map[int]int)
	for k, i := range post {
		posPost[i] = k
	}
	for i := range tr.Cliques {
		p := tr.Cliques[i].Parent
		if p >= 0 && posPost[p] < posPost[i] {
			t.Errorf("parent %d before child %d in post order", p, i)
		}
	}
}

func TestLeavesAndDepth(t *testing.T) {
	tr := tinyTree(t)
	leaves := tr.Leaves()
	if len(leaves) != 2 {
		t.Errorf("leaves = %v", leaves)
	}
	if tr.Depth(0) != 0 || tr.Depth(1) != 1 || tr.Depth(2) != 2 {
		t.Error("Depth wrong")
	}
}

func TestPath(t *testing.T) {
	tr := tinyTree(t)
	p := tr.Path(2, 3)
	want := []int{2, 1, 3}
	if len(p) != len(want) {
		t.Fatalf("Path(2,3) = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Path(2,3) = %v, want %v", p, want)
		}
	}
	if p := tr.Path(1, 1); len(p) != 1 || p[0] != 1 {
		t.Errorf("Path(1,1) = %v", p)
	}
	if p := tr.Path(0, 2); len(p) != 3 {
		t.Errorf("Path(0,2) = %v", p)
	}
}

func TestCliqueWeight(t *testing.T) {
	tr := tinyTree(t)
	// Clique 1: degree 3, width 2, table 4 => 24.
	if w := tr.CliqueWeight(1); w != 24 {
		t.Errorf("CliqueWeight(1) = %v, want 24", w)
	}
	// Clique 2: degree 1, width 2, table 4 => 8.
	if w := tr.CliqueWeight(2); w != 8 {
		t.Errorf("CliqueWeight(2) = %v, want 8", w)
	}
}

func TestCriticalPath(t *testing.T) {
	tr := tinyTree(t)
	w, leaf := tr.CriticalPath()
	// Root 0 (deg1,w2,4)=8, clique1=24, leaves 2 and 3 = 8 each.
	if w != 40 {
		t.Errorf("critical path weight = %v, want 40", w)
	}
	if leaf != 2 && leaf != 3 {
		t.Errorf("critical leaf = %d", leaf)
	}
}

func TestTotalWeight(t *testing.T) {
	tr := tinyTree(t)
	if w := tr.TotalWeight(); w != 8+24+8+8 {
		t.Errorf("TotalWeight = %v", w)
	}
}

func TestCloneDeep(t *testing.T) {
	tr := tinyTree(t)
	if err := tr.MaterializeRandom(1); err != nil {
		t.Fatal(err)
	}
	cp := tr.Clone()
	cp.Cliques[0].Pot.Data[0] = -99
	cp.Cliques[1].Children[0] = 99
	if tr.Cliques[0].Pot.Data[0] == -99 || tr.Cliques[1].Children[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestMaterialize(t *testing.T) {
	tr := tinyTree(t)
	if err := tr.MaterializeUniform(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after materialize: %v", err)
	}
	for i := range tr.Cliques {
		c := &tr.Cliques[i]
		if c.Pot == nil || (c.Parent >= 0 && c.SepPot == nil) {
			t.Fatalf("clique %d not materialized", i)
		}
	}
	if tr.Cliques[tr.Root].SepPot != nil {
		t.Error("root has a separator potential")
	}
}

func TestVariablesAndCliqueOf(t *testing.T) {
	tr := tinyTree(t)
	vars, cardOf := tr.Variables()
	if len(vars) != 5 {
		t.Errorf("Variables = %v", vars)
	}
	for _, v := range vars {
		if cardOf[v] != 2 {
			t.Errorf("cardOf[%d] = %d", v, cardOf[v])
		}
	}
	if tr.CliqueOf(4) != 3 {
		t.Errorf("CliqueOf(4) = %d, want 3", tr.CliqueOf(4))
	}
	if tr.CliqueOf(99) != -1 {
		t.Error("CliqueOf(99) found a clique")
	}
}

func TestSingleCliqueTree(t *testing.T) {
	tr, err := NewFromAdjacency([][]int{{0, 1}}, [][]int{{2, 3}}, [][]int{nil}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if w, _ := tr.CriticalPath(); w != 1*2*6 {
		t.Errorf("single-clique critical path = %v", w)
	}
	if r := tr.SelectRoot(); r != 0 {
		t.Errorf("SelectRoot = %d", r)
	}
}

func TestNewFromAdjacencyErrors(t *testing.T) {
	if _, err := NewFromAdjacency([][]int{{0}}, [][]int{{2}}, [][]int{nil}, 5); err == nil {
		t.Error("accepted out-of-range root")
	}
	// Disconnected graph.
	if _, err := NewFromAdjacency([][]int{{0}, {1}}, [][]int{{2}, {2}}, [][]int{nil, nil}, 0); err == nil {
		t.Error("accepted disconnected graph")
	}
	if _, err := NewFromAdjacency([][]int{{0}}, [][]int{}, [][]int{nil}, 0); err == nil {
		t.Error("accepted inconsistent sizes")
	}
}

func TestNeighbors(t *testing.T) {
	tr := tinyTree(t)
	nb := tr.Neighbors(1)
	if len(nb) != 3 {
		t.Errorf("Neighbors(1) = %v", nb)
	}
	if nb := tr.Neighbors(0); len(nb) != 1 || nb[0] != 1 {
		t.Errorf("Neighbors(0) = %v", nb)
	}
}

func TestCriticalPathMonotoneUnderWeights(t *testing.T) {
	// A chain's critical path equals its total weight.
	ch, err := Chain(10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, leaf := ch.CriticalPath()
	if math.Abs(w-ch.TotalWeight()) > 1e-9 {
		t.Errorf("chain critical path %v != total %v", w, ch.TotalWeight())
	}
	if ch.Depth(leaf) != 9 {
		t.Errorf("critical leaf depth = %d", ch.Depth(leaf))
	}
}

func TestComputeStats(t *testing.T) {
	tr := tinyTree(t)
	s := tr.ComputeStats()
	if s.Cliques != 4 || s.Variables != 5 || s.Leaves != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.MinWidth != 2 || s.MaxWidth != 2 || s.MeanWidth != 2 {
		t.Errorf("width stats = %+v", s)
	}
	if s.MaxTableSize != 4 || s.TotalEntries != 16 {
		t.Errorf("table stats = %+v", s)
	}
	if s.Depth != 2 || s.MaxChildren != 2 {
		t.Errorf("shape stats = %+v", s)
	}
	if s.CriticalRatio <= 1 {
		t.Errorf("critical ratio = %v", s.CriticalRatio)
	}
}

func TestStatsWriteAndRender(t *testing.T) {
	tr, err := Balanced(2, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr.ComputeStats().Write(&buf)
	if !strings.Contains(buf.String(), "critical path") {
		t.Error("stats output malformed")
	}
	buf.Reset()
	tr.Render(&buf, 0)
	lines := strings.Count(buf.String(), "\n")
	if lines != tr.N() {
		t.Errorf("render has %d lines, want %d", lines, tr.N())
	}
	if !strings.Contains(buf.String(), "└─") {
		t.Error("render missing tree connectors")
	}
	// Truncation.
	buf.Reset()
	tr.Render(&buf, 3)
	if !strings.Contains(buf.String(), "more cliques") {
		t.Error("truncated render missing ellipsis")
	}
}
