package jtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRerootPreservesTopology(t *testing.T) {
	tr := tinyTree(t)
	for target := 0; target < tr.N(); target++ {
		rt, err := tr.Reroot(target)
		if err != nil {
			t.Fatalf("Reroot(%d): %v", target, err)
		}
		if rt.Root != target {
			t.Errorf("Reroot(%d) root = %d", target, rt.Root)
		}
		if err := rt.Validate(); err != nil {
			t.Errorf("Reroot(%d) invalid: %v", target, err)
		}
		// Undirected edge sets must match.
		if !sameEdges(tr, rt) {
			t.Errorf("Reroot(%d) changed topology", target)
		}
	}
}

func sameEdges(a, b *Tree) bool {
	type edge struct{ lo, hi int }
	set := map[edge]int{}
	add := func(t *Tree, d int) {
		for i := range t.Cliques {
			p := t.Cliques[i].Parent
			if p < 0 {
				continue
			}
			lo, hi := i, p
			if lo > hi {
				lo, hi = hi, lo
			}
			set[edge{lo, hi}] += d
		}
	}
	add(a, 1)
	add(b, -1)
	for _, v := range set {
		if v != 0 {
			return false
		}
	}
	return true
}

func TestRerootSelf(t *testing.T) {
	tr := tinyTree(t)
	rt, err := tr.Reroot(tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Root != tr.Root {
		t.Error("Reroot at current root moved the root")
	}
}

func TestRerootOutOfRange(t *testing.T) {
	tr := tinyTree(t)
	if _, err := tr.Reroot(-1); err == nil {
		t.Error("Reroot(-1) succeeded")
	}
	if _, err := tr.Reroot(99); err == nil {
		t.Error("Reroot(99) succeeded")
	}
}

func TestRerootPreservesPotentials(t *testing.T) {
	tr := tinyTree(t)
	if err := tr.MaterializeRandom(5); err != nil {
		t.Fatal(err)
	}
	rt, err := tr.Reroot(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i := range tr.Cliques {
		if !tr.Cliques[i].Pot.Equal(rt.Cliques[i].Pot, 0) {
			t.Errorf("clique %d potential changed by reroot", i)
		}
	}
	// Every non-root clique must carry a separator potential over the
	// correct domain.
	for i := range rt.Cliques {
		c := &rt.Cliques[i]
		if c.Parent < 0 {
			if c.SepPot != nil {
				t.Error("new root kept a separator potential")
			}
			continue
		}
		if c.SepPot == nil {
			t.Fatalf("clique %d lost its separator potential", i)
		}
		if len(c.SepPot.Vars) != len(c.SepVars) {
			t.Errorf("clique %d separator domain mismatch", i)
		}
	}
}

func TestRerootTwiceRoundTrips(t *testing.T) {
	tr := tinyTree(t)
	rt, err := tr.Reroot(3)
	if err != nil {
		t.Fatal(err)
	}
	back, err := rt.Reroot(0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Root != 0 {
		t.Fatal("round trip root wrong")
	}
	for i := range tr.Cliques {
		if tr.Cliques[i].Parent != back.Cliques[i].Parent {
			t.Errorf("clique %d parent %d after round trip, want %d",
				i, back.Cliques[i].Parent, tr.Cliques[i].Parent)
		}
	}
}

func TestSelectRootOnTemplate(t *testing.T) {
	// On the Fig. 4 template rooted at the tip of branch 0, Algorithm 1
	// must move the root to the hub region, nearly halving the critical
	// path (the hub's own weight keeps the ratio strictly below 2 for
	// short branches, approaching 2 as branches lengthen).
	for _, b := range []int{1, 2, 4, 8} {
		tr, err := Template(TemplateConfig{Branches: b, TotalCliques: 40 * (b + 1), Width: 5, States: 2})
		if err != nil {
			t.Fatalf("Template(b=%d): %v", b, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("template invalid: %v", err)
		}
		before, _ := tr.CriticalPath()
		r := tr.SelectRoot()
		rt, err := tr.Reroot(r)
		if err != nil {
			t.Fatal(err)
		}
		after, _ := rt.CriticalPath()
		ratio := before / after
		if ratio < 1.7 || ratio > 2.2 {
			t.Errorf("b=%d: critical path ratio %.3f, want ≈2", b, ratio)
		}
		// Algorithm 1 must match the brute-force optimum on the
		// symmetric template.
		_, bruteW := tr.BestRootBrute()
		if after > bruteW+1e-9 {
			t.Errorf("b=%d: Algorithm 1 gives %v, brute force %v", b, after, bruteW)
		}
	}
}

func TestSelectRootNearOptimal(t *testing.T) {
	// Algorithm 1's balance rule must be within one clique weight of the
	// brute-force optimum, and the exact variant must match it.
	for seed := int64(0); seed < 20; seed++ {
		cfg := RandomConfig{N: 24, Width: 4, States: 2, Degree: 3, Seed: seed}
		tr, err := Random(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bruteRoot, bruteW := tr.BestRootBrute()
		r := tr.SelectRoot()
		rt, err := tr.Reroot(r)
		if err != nil {
			t.Fatal(err)
		}
		algW, _ := rt.CriticalPath()
		maxClique := 0.0
		for i := 0; i < tr.N(); i++ {
			if w := tr.CliqueWeight(i); w > maxClique {
				maxClique = w
			}
		}
		if algW > bruteW+maxClique+1e-9 {
			t.Errorf("seed %d: Algorithm 1 root %d gives %v, brute root %d gives %v",
				seed, r, algW, bruteRoot, bruteW)
		}

		re := tr.SelectRootExact()
		rte, err := tr.Reroot(re)
		if err != nil {
			t.Fatal(err)
		}
		exW, _ := rte.CriticalPath()
		if math.Abs(exW-bruteW) > 1e-9 {
			t.Errorf("seed %d: exact root %d gives %v, brute gives %v", seed, re, exW, bruteW)
		}
	}
}

func TestSelectRootOnChainIsMiddle(t *testing.T) {
	ch, err := Chain(11, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := ch.SelectRoot()
	// All cliques weigh the same except the two endpoints (degree 1 vs 2),
	// so the balanced root is near the middle: depth about 5 from the end.
	d := ch.Depth(r)
	if d < 4 || d > 6 {
		t.Errorf("chain root depth = %d, want ≈5", d)
	}
}

func TestHeaviestLeafPathEndpoints(t *testing.T) {
	tr, err := Template(TemplateConfig{Branches: 2, TotalCliques: 31, Width: 4, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := tr.HeaviestLeafPath()
	if len(p) < 2 {
		t.Fatalf("path too short: %v", p)
	}
	first, last := p[0], p[len(p)-1]
	if len(tr.Cliques[first].Children) != 0 && first != tr.Root {
		t.Errorf("path start %d is not a leaf", first)
	}
	if len(tr.Cliques[last].Children) != 0 && last != tr.Root {
		t.Errorf("path end %d is not a leaf", last)
	}
	// Consecutive path entries must be tree neighbors.
	for k := 0; k+1 < len(p); k++ {
		found := false
		for _, nb := range tr.Neighbors(p[k]) {
			if nb == p[k+1] {
				found = true
			}
		}
		if !found {
			t.Errorf("path entries %d,%d not adjacent", p[k], p[k+1])
		}
	}
}

func TestRerootMinimalReportsWeights(t *testing.T) {
	tr, err := Template(TemplateConfig{Branches: 4, TotalCliques: 51, Width: 4, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	nt, before, after, err := tr.RerootMinimal()
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Errorf("rerooting increased critical path: %v -> %v", before, after)
	}
	if err := nt.Validate(); err != nil {
		t.Errorf("rerooted tree invalid: %v", err)
	}
}

func TestQuickRerootInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := RandomConfig{
			N:      2 + rng.Intn(30),
			Width:  1 + rng.Intn(4),
			States: 1 + rng.Intn(3),
			Degree: 1 + rng.Intn(4),
			Seed:   seed,
		}
		tr, err := Random(cfg)
		if err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		target := rng.Intn(tr.N())
		rt, err := tr.Reroot(target)
		if err != nil {
			return false
		}
		if rt.Validate() != nil || rt.Root != target {
			return false
		}
		if !sameEdges(tr, rt) {
			return false
		}
		// Total weight is root-independent (degrees are undirected).
		return math.Abs(tr.TotalWeight()-rt.TotalWeight()) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSelectRootOnPath(t *testing.T) {
	// The selected root must lie on the heaviest leaf-to-leaf path.
	f := func(seed int64) bool {
		n := int(seed % 29)
		if n < 0 {
			n = -n
		}
		cfg := RandomConfig{N: 2 + n, Width: 3, States: 2, Degree: 3, Seed: seed}
		tr, err := Random(cfg)
		if err != nil {
			return false
		}
		r := tr.SelectRoot()
		for _, i := range tr.HeaviestLeafPath() {
			if i == r {
				return true
			}
		}
		return false
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(100))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
