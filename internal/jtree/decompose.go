package jtree

import (
	"fmt"
	"sort"
)

// This file implements junction-tree decomposition for distributed-memory
// platforms (the paper's related work [10], Section 3): the tree is split
// into k connected blocks of balanced weight, and each block duplicates the
// boundary cliques of its neighbors so that message exchanges need only the
// separator tables. The paper declines to use this on shared-memory
// multicores because duplication consumes the memory all cores share — the
// Decomposition's DuplicatedEntries quantifies exactly that cost.

// Block is one part of a decomposition: the cliques it owns plus the
// neighboring boundary cliques it duplicates.
type Block struct {
	Cliques    []int // owned cliques, sorted
	Duplicated []int // boundary cliques of other blocks kept as copies
	Weight     float64
}

// Decomposition is a partition of a junction tree into connected blocks.
type Decomposition struct {
	Blocks []Block
	// OwnerOf maps each clique to its owning block.
	OwnerOf []int
	// CrossEdges counts tree edges between different blocks.
	CrossEdges int
	// DuplicatedEntries is the total potential-table entries stored twice
	// because of boundary duplication — the shared-memory cost the paper
	// cites for rejecting this approach on multicores.
	DuplicatedEntries int
}

// Decompose splits the tree into k connected blocks of roughly equal
// weight using a greedy post-order subtree packing: walking children before
// parents, whenever the accumulated subtree weight reaches the target
// (total/k), the subtree is cut off as one block.
func (t *Tree) Decompose(k int) (*Decomposition, error) {
	if k < 1 {
		return nil, fmt.Errorf("jtree: decompose into %d blocks", k)
	}
	if k > t.N() {
		k = t.N()
	}
	target := t.TotalWeight() / float64(k)

	owner := make([]int, t.N())
	for i := range owner {
		owner[i] = -1
	}
	acc := make([]float64, t.N()) // weight of the uncut subtree at each clique
	nextBlock := 0
	for _, i := range t.PostOrder() {
		w := t.CliqueWeight(i)
		for _, ch := range t.Cliques[i].Children {
			if owner[ch] == -1 { // child not yet cut: its weight flows up
				acc[i] += acc[ch]
			}
		}
		acc[i] += w
		if acc[i] >= target && nextBlock < k-1 {
			t.assignSubtree(i, owner, nextBlock)
			nextBlock++
			acc[i] = 0
		}
	}
	// Everything left joins the final block. If the last cut consumed the
	// whole remaining tree (the root included), no leftover exists and the
	// block count shrinks by one.
	leftover := false
	for i := range owner {
		if owner[i] == -1 {
			owner[i] = nextBlock
			leftover = true
		}
	}
	used := nextBlock
	if leftover {
		used++
	}

	d := &Decomposition{
		Blocks:  make([]Block, used),
		OwnerOf: owner,
	}
	for i := range t.Cliques {
		b := owner[i]
		d.Blocks[b].Cliques = append(d.Blocks[b].Cliques, i)
		d.Blocks[b].Weight += t.CliqueWeight(i)
	}
	// Boundary duplication: for every cross edge, each side duplicates the
	// other's endpoint.
	dupSets := make([]map[int]bool, len(d.Blocks))
	for b := range dupSets {
		dupSets[b] = map[int]bool{}
	}
	for c := range t.Cliques {
		p := t.Cliques[c].Parent
		if p < 0 || owner[c] == owner[p] {
			continue
		}
		d.CrossEdges++
		if !dupSets[owner[c]][p] {
			dupSets[owner[c]][p] = true
			d.DuplicatedEntries += t.Cliques[p].TableSize()
		}
		if !dupSets[owner[p]][c] {
			dupSets[owner[p]][c] = true
			d.DuplicatedEntries += t.Cliques[c].TableSize()
		}
	}
	for b := range d.Blocks {
		for c := range dupSets[b] {
			d.Blocks[b].Duplicated = append(d.Blocks[b].Duplicated, c)
		}
		sort.Ints(d.Blocks[b].Duplicated)
	}
	return d, nil
}

// assignSubtree marks the whole uncut subtree rooted at r as owned by b.
func (t *Tree) assignSubtree(r int, owner []int, b int) {
	stack := []int{r}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		owner[i] = b
		for _, ch := range t.Cliques[i].Children {
			if owner[ch] == -1 {
				stack = append(stack, ch)
			}
		}
	}
}

// Validate checks decomposition invariants: every clique owned exactly
// once, each block connected in the underlying tree, duplicates only
// adjacent to the owning block.
func (d *Decomposition) Validate(t *Tree) error {
	seen := make([]bool, t.N())
	for b, blk := range d.Blocks {
		if len(blk.Cliques) == 0 {
			return fmt.Errorf("jtree: block %d is empty", b)
		}
		inBlock := map[int]bool{}
		for _, c := range blk.Cliques {
			if seen[c] {
				return fmt.Errorf("jtree: clique %d owned twice", c)
			}
			seen[c] = true
			if d.OwnerOf[c] != b {
				return fmt.Errorf("jtree: clique %d owner mismatch", c)
			}
			inBlock[c] = true
		}
		// Connectivity: BFS within the block from its first clique.
		visited := map[int]bool{blk.Cliques[0]: true}
		queue := []int{blk.Cliques[0]}
		reached := 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			reached++
			for _, nb := range t.Neighbors(u) {
				if inBlock[nb] && !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		if reached != len(blk.Cliques) {
			return fmt.Errorf("jtree: block %d not connected (%d of %d reachable)", b, reached, len(blk.Cliques))
		}
		for _, dup := range blk.Duplicated {
			adjacent := false
			for _, nb := range t.Neighbors(dup) {
				if inBlock[nb] {
					adjacent = true
				}
			}
			if !adjacent {
				return fmt.Errorf("jtree: block %d duplicates non-adjacent clique %d", b, dup)
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			return fmt.Errorf("jtree: clique %d unowned", c)
		}
	}
	return nil
}

// Imbalance returns max block weight / mean block weight (1 = perfect).
func (d *Decomposition) Imbalance() float64 {
	if len(d.Blocks) == 0 {
		return 0
	}
	total, maxW := 0.0, 0.0
	for _, b := range d.Blocks {
		total += b.Weight
		if b.Weight > maxW {
			maxW = b.Weight
		}
	}
	return maxW / (total / float64(len(d.Blocks)))
}
