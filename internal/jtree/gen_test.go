package jtree

import (
	"bytes"
	"testing"
)

func TestTemplateShape(t *testing.T) {
	cfg := TemplateConfig{Branches: 3, TotalCliques: 41, Width: 4, States: 2}
	tr, err := Template(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// 1 hub + 4 branches × 10 cliques.
	if tr.N() != 41 {
		t.Errorf("N = %d, want 41", tr.N())
	}
	// The root is a leaf (tip of branch 0).
	if len(tr.Cliques[tr.Root].Children) != 1 {
		t.Errorf("root has %d children, want 1 (chain tip)", len(tr.Cliques[tr.Root].Children))
	}
	// Exactly b+1 = 4 leaves... the root tip is also an endpoint but it is
	// the root, so leaf count is 3 (tips of branches 1..3).
	if got := len(tr.Leaves()); got != 3 {
		t.Errorf("leaves = %d, want 3", got)
	}
	// The hub must have degree b+1 = 4.
	hubFound := false
	for i := range tr.Cliques {
		if tr.Cliques[i].Degree() == 4 {
			hubFound = true
		}
	}
	if !hubFound {
		t.Error("no clique with hub degree 4")
	}
}

func TestTemplateWidths(t *testing.T) {
	tr, err := Template(TemplateConfig{Branches: 1, TotalCliques: 11, Width: 6, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Cliques {
		c := &tr.Cliques[i]
		if c.Width() != 6 {
			t.Errorf("clique %d width %d, want 6", i, c.Width())
		}
		for _, r := range c.Card {
			if r != 3 {
				t.Errorf("clique %d has non-3 cardinality", i)
			}
		}
		if c.Parent >= 0 && len(c.SepVars) != 5 {
			t.Errorf("clique %d separator width %d, want 5", i, len(c.SepVars))
		}
	}
}

func TestTemplateErrors(t *testing.T) {
	if _, err := Template(TemplateConfig{Branches: 0, TotalCliques: 10, Width: 3, States: 2}); err == nil {
		t.Error("accepted 0 branches")
	}
	if _, err := Template(TemplateConfig{Branches: 1, TotalCliques: 10, Width: 0, States: 2}); err == nil {
		t.Error("accepted width 0")
	}
}

func TestRandomShape(t *testing.T) {
	cfg := RandomConfig{N: 100, Width: 5, States: 2, Degree: 4, Seed: 42}
	tr, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.N() != 100 {
		t.Errorf("N = %d", tr.N())
	}
	for i := range tr.Cliques {
		if len(tr.Cliques[i].Children) > 4 {
			t.Errorf("clique %d has %d children, exceeds degree 4", i, len(tr.Cliques[i].Children))
		}
		if tr.Cliques[i].Width() != 5 {
			t.Errorf("clique %d width %d", i, tr.Cliques[i].Width())
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(RandomConfig{N: 50, Width: 4, States: 2, Degree: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(RandomConfig{N: 50, Width: 4, States: 2, Degree: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cliques {
		if a.Cliques[i].Parent != b.Cliques[i].Parent {
			t.Fatal("same seed produced different trees")
		}
	}
	c, err := Random(RandomConfig{N: 50, Width: 4, States: 2, Degree: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Cliques {
		if a.Cliques[i].Parent != c.Cliques[i].Parent {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical trees")
	}
}

func TestRandomErrors(t *testing.T) {
	if _, err := Random(RandomConfig{N: 0, Width: 3, States: 2}); err == nil {
		t.Error("accepted N=0")
	}
	if _, err := Random(RandomConfig{N: 3, Width: 0, States: 2}); err == nil {
		t.Error("accepted width 0")
	}
}

func TestPaperTreeConfigs(t *testing.T) {
	for _, cfg := range []RandomConfig{JT1(), JT2(), JT3()} {
		tr, err := Random(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%+v invalid: %v", cfg, err)
		}
		if tr.N() != cfg.N {
			t.Errorf("%+v: N = %d", cfg, tr.N())
		}
	}
}

func TestChainStarBalanced(t *testing.T) {
	ch, err := Chain(7, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(ch.Leaves()); got != 1 {
		t.Errorf("chain leaves = %d", got)
	}

	st, err := Star(5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(st.Cliques[0].Children); got != 5 {
		t.Errorf("star children = %d", got)
	}

	bal, err := Balanced(3, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := bal.Validate(); err != nil {
		t.Fatal(err)
	}
	if bal.N() != 1+2+4+8 {
		t.Errorf("balanced N = %d, want 15", bal.N())
	}
	if _, err := Balanced(1, 0, 3, 2); err == nil {
		t.Error("accepted fanout 0")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr, err := Random(RandomConfig{N: 12, Width: 4, States: 2, Degree: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.N() != tr.N() || back.Root != tr.Root {
		t.Fatal("round trip changed shape")
	}
	for i := range tr.Cliques {
		if tr.Cliques[i].Parent != back.Cliques[i].Parent {
			t.Fatalf("clique %d parent changed", i)
		}
		if !tr.Cliques[i].Pot.Equal(back.Cliques[i].Pot, 0) {
			t.Fatalf("clique %d potential changed", i)
		}
	}
}

func TestJSONSkeletonRoundTrip(t *testing.T) {
	tr, err := Chain(5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cliques[0].Pot != nil {
		t.Error("skeleton round trip materialized a potential")
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{ not json")); err == nil {
		t.Error("accepted invalid JSON")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"root":0,"cliques":[{"vars":[0],"card":[2],"parent":5}]}`)); err == nil {
		t.Error("accepted out-of-range parent")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"root":0,"cliques":[{"vars":[0],"card":[2],"parent":-1,"pot":[1,2,3]}]}`)); err == nil {
		t.Error("accepted wrong-size potential")
	}
}

func TestTemplateBranchesBalanced(t *testing.T) {
	// The paper: "the serial complexity of each Branch is approximately
	// equal" — all branches have the same clique count and weight.
	tr, err := Template(TemplateConfig{Branches: 4, TotalCliques: 101, Width: 6, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The hub is the unique degree-5 clique; each branch hangs off it.
	hub := -1
	for i := range tr.Cliques {
		if tr.Cliques[i].Degree() == 5 {
			hub = i
		}
	}
	if hub < 0 {
		t.Fatal("no hub found")
	}
	// Collect per-branch total weights by walking away from the hub.
	var branchWeights []float64
	for _, start := range tr.Neighbors(hub) {
		w := 0.0
		prev, cur := hub, start
		for {
			w += tr.CliqueWeight(cur)
			next := -1
			for _, nb := range tr.Neighbors(cur) {
				if nb != prev {
					next = nb
				}
			}
			if next < 0 {
				break
			}
			prev, cur = cur, next
		}
		branchWeights = append(branchWeights, w)
	}
	if len(branchWeights) != 5 {
		t.Fatalf("%d branches, want 5", len(branchWeights))
	}
	for i := 1; i < len(branchWeights); i++ {
		ratio := branchWeights[i] / branchWeights[0]
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("branch %d weight %.0f vs branch 0 %.0f", i, branchWeights[i], branchWeights[0])
		}
	}
}
