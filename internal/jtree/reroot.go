package jtree

import (
	"fmt"
	"math"
)

// Reroot returns a copy of the tree reoriented so that newRoot is the root.
// The underlying undirected topology, clique domains and potentials are
// unchanged; only edge directions (parent/children) and separators follow
// the new preorder walk, exactly as in Section 4 of the paper. Separator
// variable sets are edge properties and therefore identical before and
// after; they are recomputed for consistency.
func (t *Tree) Reroot(newRoot int) (*Tree, error) {
	if newRoot < 0 || newRoot >= t.N() {
		return nil, fmt.Errorf("jtree: reroot target %d out of range", newRoot)
	}
	out := t.Clone()
	if newRoot == t.Root {
		return out, nil
	}
	// Reverse parent links along the path from newRoot to the old root.
	path := []int{}
	for i := newRoot; i >= 0; i = t.Cliques[i].Parent {
		path = append(path, i)
	}
	for k := 0; k+1 < len(path); k++ {
		child, parent := path[k], path[k+1]
		// Edge (parent -> child) becomes (child -> parent).
		out.Cliques[parent].Parent = child
		out.Cliques[parent].Children = removeInt(out.Cliques[parent].Children, child)
		out.Cliques[child].Children = append(out.Cliques[child].Children, parent)
	}
	out.Cliques[newRoot].Parent = -1
	out.Root = newRoot
	out.RecomputeSeparators()
	// Separator potentials follow edges; after reversal the separator
	// potential of an edge must live on the downstream (child) clique.
	out.realignSepPots(t, path)
	return out, nil
}

// realignSepPots moves separator potentials to the new child side of every
// reversed edge. Only edges on the reroot path flip direction.
func (out *Tree) realignSepPots(old *Tree, path []int) {
	for k := 0; k+1 < len(path); k++ {
		child, parent := path[k], path[k+1]
		// In the old tree the edge's separator potential lived on `child`
		// (it was the downstream side); now `parent` is downstream.
		out.Cliques[parent].SepPot = old.Cliques[child].SepPot
		if out.Cliques[parent].SepPot != nil {
			out.Cliques[parent].SepPot = out.Cliques[parent].SepPot.Clone()
		}
	}
	out.Cliques[out.Root].SepPot = nil
}

func removeInt(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// rootSelection carries the per-clique tuple ⟨v_i, p_i, q_i⟩ of Algorithm 1.
type rootSelection struct {
	v []float64 // weight of the heaviest path from clique i down to a leaf
	p []int     // child starting the heaviest such path (-1 if leaf)
	q []int     // child starting the second-heaviest such path (-1 if none)
}

// SelectRoot implements Algorithm 1: it finds the heaviest leaf-to-leaf
// path and returns the clique on it that best balances the two sides, which
// minimizes the critical path of the rerooted tree. Runtime O(w·N).
func (t *Tree) SelectRoot() int {
	root, _ := t.selectRoot(balanceAbsDiff)
	return root
}

// SelectRootExact is SelectRoot with the balance rule replaced by the exact
// min–max objective along the heaviest path. Algorithm 1 as printed picks
// argmin |L(Cx,Ci) − L(Ci,Cy)|, which can be one clique off the true
// min–max optimum when clique weights are very uneven; this variant is the
// ablation discussed in DESIGN.md.
func (t *Tree) SelectRootExact() int {
	root, _ := t.selectRoot(balanceMinMax)
	return root
}

type balanceRule int

const (
	balanceAbsDiff balanceRule = iota // paper's Algorithm 1, line 17
	balanceMinMax                     // exact objective
)

func (t *Tree) selectRoot(rule balanceRule) (root int, path []int) {
	n := t.N()
	if n == 1 {
		return t.Root, []int{t.Root}
	}
	sel := rootSelection{
		v: make([]float64, n),
		p: make([]int, n),
		q: make([]int, n),
	}
	for i := 0; i < n; i++ {
		sel.v[i] = t.CliqueWeight(i) // line 1 of Algorithm 1
		sel.p[i], sel.q[i] = -1, -1
	}
	// Lines 2–6: bottom-up pass computing, for each clique, the best and
	// second-best child subtree path weights.
	for _, i := range t.PostOrder() {
		c := &t.Cliques[i]
		best, second := -1.0, -1.0
		for _, ch := range c.Children {
			if sel.p[i] < 0 || sel.v[ch] > best {
				second, sel.q[i] = best, sel.p[i]
				best, sel.p[i] = sel.v[ch], ch
			} else if sel.q[i] < 0 || sel.v[ch] > second {
				second, sel.q[i] = sel.v[ch], ch
			}
		}
		if sel.p[i] >= 0 {
			sel.v[i] += sel.v[sel.p[i]]
		}
	}
	// Line 7: the clique where the heaviest leaf-to-leaf path turns.
	m, bestTotal := t.Root, -1.0
	for i := 0; i < n; i++ {
		total := sel.v[i]
		if sel.q[i] >= 0 {
			total += sel.v[sel.q[i]]
		}
		if total > bestTotal {
			bestTotal, m = total, i
		}
	}
	// Lines 8–15: reconstruct the path leaf_x … m … leaf_y.
	var left []int
	for i := m; i >= 0; i = sel.p[i] {
		left = append(left, i)
	}
	// left = [m, …, leaf_x]; reverse so the path reads leaf_x … m.
	for i, j := 0, len(left)-1; i < j; i, j = i+1, j-1 {
		left[i], left[j] = left[j], left[i]
	}
	path = left
	for i := sel.q[m]; i >= 0; i = sel.p[i] {
		path = append(path, i)
	}
	// Line 17: pick the balancing clique on the path.
	prefix := make([]float64, len(path))
	acc := 0.0
	for k, i := range path {
		acc += t.CliqueWeight(i)
		prefix[k] = acc
	}
	total := prefix[len(prefix)-1]
	bestScore := math.Inf(1)
	root = path[0]
	for k, i := range path {
		lx := prefix[k]                                   // L(Cx, Ci), endpoints included
		ly := total - prefix[k] + t.CliqueWeight(path[k]) // L(Ci, Cy)
		var score float64
		switch rule {
		case balanceAbsDiff:
			score = math.Abs(lx - ly)
		case balanceMinMax:
			score = math.Max(lx, ly)
		}
		if score < bestScore {
			bestScore, root = score, i
		}
	}
	return root, path
}

// HeaviestLeafPath returns the heaviest leaf-to-leaf path found by the
// bottom-up pass of Algorithm 1 (exported for tests and tooling).
func (t *Tree) HeaviestLeafPath() []int {
	_, path := t.selectRoot(balanceAbsDiff)
	return path
}

// BestRootBrute computes, by rerooting at every clique and measuring the
// critical path, the root with the minimum critical-path weight. It is the
// O(w·N²) straightforward approach of Section 4, kept as a test oracle.
func (t *Tree) BestRootBrute() (root int, weight float64) {
	root, weight = -1, math.Inf(1)
	for i := 0; i < t.N(); i++ {
		rt, err := t.Reroot(i)
		if err != nil {
			continue
		}
		if w, _ := rt.CriticalPath(); w < weight {
			weight, root = w, i
		}
	}
	return root, weight
}

// RerootMinimal reroots the tree at the clique chosen by Algorithm 1 and
// returns the new tree along with the old and new critical-path weights.
func (t *Tree) RerootMinimal() (*Tree, float64, float64, error) {
	before, _ := t.CriticalPath()
	r := t.SelectRoot()
	nt, err := t.Reroot(r)
	if err != nil {
		return nil, 0, 0, err
	}
	after, _ := nt.CriticalPath()
	return nt, before, after, nil
}
