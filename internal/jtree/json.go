package jtree

import (
	"encoding/json"
	"fmt"
	"io"

	"evprop/internal/potential"
)

// jsonTree is the serialized form of a Tree. Potentials are optional so
// that skeleton trees serialize compactly.
type jsonTree struct {
	Root    int          `json:"root"`
	Cliques []jsonClique `json:"cliques"`
}

type jsonClique struct {
	Vars   []int     `json:"vars"`
	Card   []int     `json:"card"`
	Parent int       `json:"parent"`
	Pot    []float64 `json:"pot,omitempty"`
	SepPot []float64 `json:"sep_pot,omitempty"`
}

// WriteJSON serializes the tree. Children, separators and potential domains
// are derivable and therefore not stored.
func (t *Tree) WriteJSON(w io.Writer) error {
	jt := jsonTree{Root: t.Root, Cliques: make([]jsonClique, t.N())}
	for i := range t.Cliques {
		c := &t.Cliques[i]
		jc := jsonClique{Vars: c.Vars, Card: c.Card, Parent: c.Parent}
		if c.Pot != nil {
			jc.Pot = c.Pot.Data
		}
		if c.SepPot != nil {
			jc.SepPot = c.SepPot.Data
		}
		jt.Cliques[i] = jc
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// ReadJSON deserializes a tree written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Tree, error) {
	var jt jsonTree
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jt); err != nil {
		return nil, fmt.Errorf("jtree: decode: %w", err)
	}
	t := &Tree{Root: jt.Root, Cliques: make([]Clique, len(jt.Cliques))}
	for i, jc := range jt.Cliques {
		t.Cliques[i] = Clique{
			Vars:   append([]int(nil), jc.Vars...),
			Card:   append([]int(nil), jc.Card...),
			Parent: jc.Parent,
		}
	}
	for i := range t.Cliques {
		p := t.Cliques[i].Parent
		if p >= 0 {
			if p >= len(t.Cliques) {
				return nil, fmt.Errorf("jtree: clique %d has parent %d out of range", i, p)
			}
			t.Cliques[p].Children = append(t.Cliques[p].Children, i)
		}
	}
	t.RecomputeSeparators()
	for i, jc := range jt.Cliques {
		c := &t.Cliques[i]
		if jc.Pot != nil {
			pot, err := potential.New(c.Vars, c.Card)
			if err != nil {
				return nil, fmt.Errorf("jtree: clique %d: %w", i, err)
			}
			if len(jc.Pot) != len(pot.Data) {
				return nil, fmt.Errorf("jtree: clique %d potential has %d entries, want %d", i, len(jc.Pot), len(pot.Data))
			}
			copy(pot.Data, jc.Pot)
			c.Pot = pot
		}
		if jc.SepPot != nil {
			sep, err := potential.New(c.SepVars, c.SepCard)
			if err != nil {
				return nil, fmt.Errorf("jtree: clique %d separator: %w", i, err)
			}
			if len(jc.SepPot) != len(sep.Data) {
				return nil, fmt.Errorf("jtree: clique %d separator has %d entries, want %d", i, len(jc.SepPot), len(sep.Data))
			}
			copy(sep.Data, jc.SepPot)
			c.SepPot = sep
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
