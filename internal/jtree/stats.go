package jtree

import (
	"fmt"
	"io"
	"strings"
)

// Stats summarizes a junction tree's structure — the quantities the
// paper's Section 7 reports for its workloads (N, w_C, r, k) plus the
// critical-path diagnostics of Section 4.
type Stats struct {
	Cliques        int
	Variables      int
	MinWidth       int
	MaxWidth       int
	MeanWidth      float64
	MaxTableSize   int
	TotalEntries   int // sum of clique table sizes
	MaxSepSize     int
	Depth          int // edges on the longest root-to-leaf path
	Leaves         int
	MaxChildren    int
	MeanChildren   float64 // over internal cliques
	TotalWeight    float64
	CriticalWeight float64
	// CriticalRatio = TotalWeight / CriticalWeight: an upper bound on the
	// parallel speedup of evidence propagation on this rooting.
	CriticalRatio float64
}

// ComputeStats gathers the statistics.
func (t *Tree) ComputeStats() Stats {
	s := Stats{Cliques: t.N(), MinWidth: 1 << 30}
	vars := map[int]bool{}
	internal := 0
	childSum := 0
	for i := range t.Cliques {
		c := &t.Cliques[i]
		w := c.Width()
		if w < s.MinWidth {
			s.MinWidth = w
		}
		if w > s.MaxWidth {
			s.MaxWidth = w
		}
		s.MeanWidth += float64(w)
		if ts := c.TableSize(); ts > s.MaxTableSize {
			s.MaxTableSize = ts
		}
		s.TotalEntries += c.TableSize()
		if ss := c.SepSize(); c.Parent >= 0 && ss > s.MaxSepSize {
			s.MaxSepSize = ss
		}
		for _, v := range c.Vars {
			vars[v] = true
		}
		if d := t.Depth(i); d > s.Depth {
			s.Depth = d
		}
		if len(c.Children) == 0 {
			s.Leaves++
		} else {
			internal++
			childSum += len(c.Children)
			if len(c.Children) > s.MaxChildren {
				s.MaxChildren = len(c.Children)
			}
		}
	}
	s.Variables = len(vars)
	s.MeanWidth /= float64(t.N())
	if internal > 0 {
		s.MeanChildren = float64(childSum) / float64(internal)
	}
	s.TotalWeight = t.TotalWeight()
	s.CriticalWeight, _ = t.CriticalPath()
	if s.CriticalWeight > 0 {
		s.CriticalRatio = s.TotalWeight / s.CriticalWeight
	}
	return s
}

// Write prints the statistics.
func (s Stats) Write(w io.Writer) {
	fmt.Fprintf(w, "cliques:        %d (leaves %d, depth %d)\n", s.Cliques, s.Leaves, s.Depth)
	fmt.Fprintf(w, "variables:      %d\n", s.Variables)
	fmt.Fprintf(w, "width:          min %d / mean %.1f / max %d\n", s.MinWidth, s.MeanWidth, s.MaxWidth)
	fmt.Fprintf(w, "tables:         max %d entries, total %d entries, max separator %d\n",
		s.MaxTableSize, s.TotalEntries, s.MaxSepSize)
	fmt.Fprintf(w, "children:       mean %.2f / max %d\n", s.MeanChildren, s.MaxChildren)
	fmt.Fprintf(w, "weight:         total %.0f, critical path %.0f (speedup bound %.1f)\n",
		s.TotalWeight, s.CriticalWeight, s.CriticalRatio)
}

// Render draws the tree as indented ASCII, one clique per line with its
// variables. maxLines truncates large trees (0 = no limit).
func (t *Tree) Render(w io.Writer, maxLines int) {
	lines := 0
	var walk func(i int, prefix string, last bool)
	walk = func(i int, prefix string, last bool) {
		if maxLines > 0 && lines >= maxLines {
			return
		}
		connector := "├─"
		childPrefix := prefix + "│ "
		if last {
			connector = "└─"
			childPrefix = prefix + "  "
		}
		if i == t.Root {
			connector = ""
			childPrefix = ""
		}
		fmt.Fprintf(w, "%s%sC%d%s\n", prefix, connector, i, varList(t.Cliques[i].Vars))
		lines++
		children := t.Cliques[i].Children
		for k, ch := range children {
			walk(ch, childPrefix, k == len(children)-1)
		}
	}
	walk(t.Root, "", true)
	if maxLines > 0 && lines >= maxLines {
		fmt.Fprintf(w, "… (%d more cliques)\n", t.N()-lines)
	}
}

func varList(vars []int) string {
	if len(vars) > 8 {
		return fmt.Sprintf("{%d vars}", len(vars))
	}
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = fmt.Sprint(v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
