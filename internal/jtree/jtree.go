// Package jtree implements junction trees: the clique-tree decomposition on
// which evidence propagation runs, together with the critical-path weight
// model (Eq. 2 of the paper) and the root-selection Algorithm 1 that
// minimizes the critical path.
//
// A tree may be fully materialized (every clique holds a potential table) or
// a *skeleton* (potentials nil). Skeletons carry enough information —
// variables and cardinalities — to compute every weight in the paper's cost
// model, which lets the simulated-multicore experiments use the paper's
// exact junction-tree parameters without allocating multi-gigabyte tables.
package jtree

import (
	"fmt"
	"math/rand"
	"sort"

	"evprop/internal/potential"
)

// Clique is one vertex of a junction tree. Vars is sorted ascending and
// Card is parallel to it. Parent is -1 for the root. SepVars/SepCard
// describe the separator with the parent (empty for the root). Pot and
// SepPot are nil in skeleton trees.
type Clique struct {
	Vars     []int
	Card     []int
	Parent   int
	Children []int
	SepVars  []int
	SepCard  []int
	Pot      *potential.Potential
	SepPot   *potential.Potential
}

// Width returns the number of variables in the clique.
func (c *Clique) Width() int { return len(c.Vars) }

// TableSize returns the number of entries of the clique's potential table
// (computed from cardinalities; works on skeletons).
func (c *Clique) TableSize() int { return potential.Size(c.Card) }

// SepSize returns the number of entries of the separator table with the
// parent; 1 for the root (an empty separator is a scalar).
func (c *Clique) SepSize() int { return potential.Size(c.SepCard) }

// Degree returns the number of neighbors in the (undirected) tree.
func (c *Clique) Degree() int {
	d := len(c.Children)
	if c.Parent >= 0 {
		d++
	}
	return d
}

// Tree is a rooted junction tree.
type Tree struct {
	Cliques []Clique
	Root    int
}

// N returns the number of cliques.
func (t *Tree) N() int { return len(t.Cliques) }

// NewFromAdjacency builds a rooted tree from clique variable sets, an
// undirected adjacency list, and a root, deriving parents, children and
// separators. Potentials are left nil (skeleton).
func NewFromAdjacency(vars [][]int, card [][]int, adj [][]int, root int) (*Tree, error) {
	n := len(vars)
	if len(card) != n || len(adj) != n {
		return nil, fmt.Errorf("jtree: inconsistent input sizes %d/%d/%d", len(vars), len(card), len(adj))
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("jtree: root %d out of range", root)
	}
	t := &Tree{Cliques: make([]Clique, n), Root: root}
	for i := range t.Cliques {
		t.Cliques[i].Vars = append([]int(nil), vars[i]...)
		t.Cliques[i].Card = append([]int(nil), card[i]...)
		t.Cliques[i].Parent = -1
	}
	// BFS orientation from the root.
	visited := make([]bool, n)
	queue := []int{root}
	visited[root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			t.Cliques[v].Parent = u
			t.Cliques[u].Children = append(t.Cliques[u].Children, v)
			queue = append(queue, v)
		}
	}
	for i := range t.Cliques {
		if !visited[i] {
			return nil, fmt.Errorf("jtree: clique %d unreachable from root %d", i, root)
		}
	}
	t.RecomputeSeparators()
	return t, nil
}

// RecomputeSeparators refreshes SepVars/SepCard of every non-root clique
// from the intersection with its parent.
func (t *Tree) RecomputeSeparators() {
	for i := range t.Cliques {
		c := &t.Cliques[i]
		if c.Parent < 0 {
			c.SepVars, c.SepCard = nil, nil
			continue
		}
		p := &t.Cliques[c.Parent]
		c.SepVars, c.SepCard = potential.IntersectDomain(c.Vars, c.Card, p.Vars)
	}
}

// Validate checks the structural invariants: a single root, consistent
// parent/child links, connectivity, sorted clique domains with consistent
// cardinalities, separators matching parent intersections, and the running
// intersection property (for every variable, the cliques containing it form
// a connected subtree).
func (t *Tree) Validate() error {
	n := t.N()
	if n == 0 {
		return fmt.Errorf("jtree: empty tree")
	}
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("jtree: root %d out of range", t.Root)
	}
	if t.Cliques[t.Root].Parent != -1 {
		return fmt.Errorf("jtree: root %d has parent %d", t.Root, t.Cliques[t.Root].Parent)
	}
	cardOf := map[int]int{}
	seen := make([]bool, n)
	order, err := t.TopoOrder()
	if err != nil {
		return err
	}
	if len(order) != n {
		return fmt.Errorf("jtree: only %d of %d cliques reachable from root", len(order), n)
	}
	for _, i := range order {
		seen[i] = true
		c := &t.Cliques[i]
		if len(c.Vars) != len(c.Card) {
			return fmt.Errorf("jtree: clique %d has %d vars but %d cardinalities", i, len(c.Vars), len(c.Card))
		}
		for j, v := range c.Vars {
			if j > 0 && c.Vars[j-1] >= v {
				return fmt.Errorf("jtree: clique %d vars not strictly ascending", i)
			}
			if prev, ok := cardOf[v]; ok && prev != c.Card[j] {
				return fmt.Errorf("jtree: variable %d has cardinality %d and %d", v, prev, c.Card[j])
			}
			cardOf[v] = c.Card[j]
		}
		for _, ch := range c.Children {
			if ch < 0 || ch >= n || t.Cliques[ch].Parent != i {
				return fmt.Errorf("jtree: child link %d -> %d inconsistent", i, ch)
			}
		}
		if c.Parent >= 0 {
			sv, sc := potential.IntersectDomain(c.Vars, c.Card, t.Cliques[c.Parent].Vars)
			if !equalInts(sv, c.SepVars) || !equalInts(sc, c.SepCard) {
				return fmt.Errorf("jtree: clique %d separator %v/%v does not match intersection %v/%v",
					i, c.SepVars, c.SepCard, sv, sc)
			}
		}
		if c.Pot != nil {
			if !equalInts(c.Pot.Vars, c.Vars) || !equalInts(c.Pot.Card, c.Card) {
				return fmt.Errorf("jtree: clique %d potential domain mismatch", i)
			}
		}
		if c.SepPot != nil {
			if !equalInts(c.SepPot.Vars, c.SepVars) || !equalInts(c.SepPot.Card, c.SepCard) {
				return fmt.Errorf("jtree: clique %d separator potential domain mismatch", i)
			}
		}
	}
	return t.checkRIP()
}

// checkRIP verifies the running intersection property variable by variable.
func (t *Tree) checkRIP() error {
	holders := map[int][]int{}
	for i := range t.Cliques {
		for _, v := range t.Cliques[i].Vars {
			holders[v] = append(holders[v], i)
		}
	}
	inSet := make([]bool, t.N())
	for v, cl := range holders {
		if len(cl) == 1 {
			continue
		}
		for _, i := range cl {
			inSet[i] = true
		}
		// BFS within the holders, starting anywhere.
		reached := 0
		stack := []int{cl[0]}
		visited := map[int]bool{cl[0]: true}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			reached++
			for _, nb := range t.Neighbors(u) {
				if inSet[nb] && !visited[nb] {
					visited[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		for _, i := range cl {
			inSet[i] = false
		}
		if reached != len(cl) {
			return fmt.Errorf("jtree: running intersection violated for variable %d (cliques %v)", v, cl)
		}
	}
	return nil
}

// Neighbors returns the undirected neighbors of clique i.
func (t *Tree) Neighbors(i int) []int {
	c := &t.Cliques[i]
	nb := append([]int(nil), c.Children...)
	if c.Parent >= 0 {
		nb = append(nb, c.Parent)
	}
	return nb
}

// Leaves returns the indices of cliques with no children.
func (t *Tree) Leaves() []int {
	var out []int
	for i := range t.Cliques {
		if len(t.Cliques[i].Children) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// TopoOrder returns the cliques in a parent-before-child (preorder) walk
// from the root, erroring on cycles in the parent links.
func (t *Tree) TopoOrder() ([]int, error) {
	order := make([]int, 0, t.N())
	var walk func(i, depth int) error
	walk = func(i, depth int) error {
		if depth > t.N() {
			return fmt.Errorf("jtree: cycle detected in parent links")
		}
		order = append(order, i)
		for _, ch := range t.Cliques[i].Children {
			if err := walk(ch, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root, 0); err != nil {
		return nil, err
	}
	return order, nil
}

// PostOrder returns the cliques children-before-parent.
func (t *Tree) PostOrder() []int {
	pre, err := t.TopoOrder()
	if err != nil {
		return nil
	}
	for i, j := 0, len(pre)-1; i < j; i, j = i+1, j-1 {
		pre[i], pre[j] = pre[j], pre[i]
	}
	return pre
}

// Depth returns the number of edges from the root to clique i.
func (t *Tree) Depth(i int) int {
	d := 0
	for t.Cliques[i].Parent >= 0 {
		i = t.Cliques[i].Parent
		d++
	}
	return d
}

// CliqueWeight is the paper's Eq. 2 per-clique term: degree × width ×
// table size (the serial complexity of updating the clique).
func (t *Tree) CliqueWeight(i int) float64 {
	c := &t.Cliques[i]
	deg := c.Degree()
	if deg == 0 {
		deg = 1 // single-clique tree
	}
	return float64(deg) * float64(c.Width()) * float64(c.TableSize())
}

// PathWeight returns the weight of the unique path between cliques a and b,
// summing CliqueWeight over every clique on the path, endpoints included.
func (t *Tree) PathWeight(a, b int) float64 {
	path := t.Path(a, b)
	w := 0.0
	for _, i := range path {
		w += t.CliqueWeight(i)
	}
	return w
}

// Path returns the unique tree path from a to b, endpoints included.
func (t *Tree) Path(a, b int) []int {
	// Walk both nodes to the root recording ancestors, then splice.
	anc := map[int]int{} // node -> position on a's root path
	pa := []int{}
	for i := a; ; i = t.Cliques[i].Parent {
		anc[i] = len(pa)
		pa = append(pa, i)
		if t.Cliques[i].Parent < 0 {
			break
		}
	}
	pb := []int{}
	meet := -1
	for i := b; ; i = t.Cliques[i].Parent {
		if _, ok := anc[i]; ok {
			meet = i
			break
		}
		pb = append(pb, i)
		if t.Cliques[i].Parent < 0 {
			break
		}
	}
	if meet < 0 {
		return nil // disconnected; Validate would have caught this
	}
	path := append([]int(nil), pa[:anc[meet]+1]...)
	for i := len(pb) - 1; i >= 0; i-- {
		path = append(path, pb[i])
	}
	return path
}

// CriticalPath returns the maximum weighted root-to-clique path weight and
// the clique attaining it. Evidence propagation takes at least as long as
// its critical path, so the best root minimizes this value.
func (t *Tree) CriticalPath() (weight float64, leaf int) {
	order, _ := t.TopoOrder()
	acc := make([]float64, t.N())
	best, bestAt := -1.0, t.Root
	for _, i := range order {
		c := &t.Cliques[i]
		w := t.CliqueWeight(i)
		if c.Parent >= 0 {
			acc[i] = acc[c.Parent] + w
		} else {
			acc[i] = w
		}
		if acc[i] > best {
			best, bestAt = acc[i], i
		}
	}
	return best, bestAt
}

// TotalWeight returns the sum of all clique weights (the serial work).
func (t *Tree) TotalWeight() float64 {
	w := 0.0
	for i := range t.Cliques {
		w += t.CliqueWeight(i)
	}
	return w
}

// Clone returns a deep copy of the tree (including potentials, if any).
func (t *Tree) Clone() *Tree {
	out := &Tree{Cliques: make([]Clique, t.N()), Root: t.Root}
	for i := range t.Cliques {
		c := &t.Cliques[i]
		n := Clique{
			Vars:     append([]int(nil), c.Vars...),
			Card:     append([]int(nil), c.Card...),
			Parent:   c.Parent,
			Children: append([]int(nil), c.Children...),
			SepVars:  append([]int(nil), c.SepVars...),
			SepCard:  append([]int(nil), c.SepCard...),
		}
		if c.Pot != nil {
			n.Pot = c.Pot.Clone()
		}
		if c.SepPot != nil {
			n.SepPot = c.SepPot.Clone()
		}
		out.Cliques[i] = n
	}
	return out
}

// MaterializeUniform allocates potentials for a skeleton tree: clique
// potentials constant 1 and separator potentials constant 1. The resulting
// distribution is uniform; it is mostly useful in tests.
func (t *Tree) MaterializeUniform() error {
	return t.materialize(func(*Clique, []float64) {
		// leave the constant-1 fill in place
	})
}

// MaterializeRandom allocates potentials with positive pseudo-random clique
// entries (seeded, reproducible) and all-ones separators. This mirrors the
// randomized junction trees of the paper's Section 7.
func (t *Tree) MaterializeRandom(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	return t.materialize(func(_ *Clique, data []float64) {
		for i := range data {
			data[i] = rng.Float64() + 1e-3
		}
	})
}

func (t *Tree) materialize(fill func(*Clique, []float64)) error {
	for i := range t.Cliques {
		c := &t.Cliques[i]
		pot, err := potential.NewConstant(c.Vars, c.Card, 1)
		if err != nil {
			return fmt.Errorf("jtree: clique %d: %w", i, err)
		}
		fill(c, pot.Data)
		c.Pot = pot
		if c.Parent >= 0 {
			sep, err := potential.NewConstant(c.SepVars, c.SepCard, 1)
			if err != nil {
				return fmt.Errorf("jtree: clique %d separator: %w", i, err)
			}
			c.SepPot = sep
		} else {
			c.SepPot = nil
		}
	}
	return nil
}

// Variables returns the sorted list of all variable ids and a map from id to
// cardinality.
func (t *Tree) Variables() ([]int, map[int]int) {
	cardOf := map[int]int{}
	for i := range t.Cliques {
		c := &t.Cliques[i]
		for j, v := range c.Vars {
			cardOf[v] = c.Card[j]
		}
	}
	vars := make([]int, 0, len(cardOf))
	for v := range cardOf {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	return vars, cardOf
}

// CliqueOf returns the lowest-indexed clique containing variable v, or -1.
func (t *Tree) CliqueOf(v int) int {
	for i := range t.Cliques {
		if containsInt(t.Cliques[i].Vars, v) {
			return i
		}
	}
	return -1
}

func containsInt(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
