package jtree

import "testing"

func TestDecomposeBasics(t *testing.T) {
	tr, err := Random(RandomConfig{N: 64, Width: 5, States: 2, Degree: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		d, err := tr.Decompose(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := d.Validate(tr); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(d.Blocks) > k {
			t.Errorf("k=%d produced %d blocks", k, len(d.Blocks))
		}
		if k == 1 {
			if len(d.Blocks) != 1 || d.CrossEdges != 0 || d.DuplicatedEntries != 0 {
				t.Errorf("k=1 decomposition has boundaries: %+v", d)
			}
		}
	}
}

func TestDecomposeBalance(t *testing.T) {
	tr, err := Random(RandomConfig{N: 200, Width: 5, States: 2, Degree: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := tr.Decompose(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(tr); err != nil {
		t.Fatal(err)
	}
	if imb := d.Imbalance(); imb > 2.0 {
		t.Errorf("imbalance %.2f exceeds 2.0", imb)
	}
}

func TestDecomposeDuplicationGrowsWithK(t *testing.T) {
	// The paper's §3 argument: duplication (shared-memory cost) grows with
	// the block count, which is why decomposition suits distributed but
	// not shared memory.
	tr, err := Random(RandomConfig{N: 128, Width: 6, States: 2, Degree: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, k := range []int{1, 2, 4, 8, 16} {
		d, err := tr.Decompose(k)
		if err != nil {
			t.Fatal(err)
		}
		if d.DuplicatedEntries < prev {
			t.Errorf("duplication decreased from %d to %d at k=%d", prev, d.DuplicatedEntries, k)
		}
		prev = d.DuplicatedEntries
	}
	if prev == 0 {
		t.Error("no duplication at k=16")
	}
}

func TestDecomposeChain(t *testing.T) {
	ch, err := Chain(12, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ch.Decompose(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(ch); err != nil {
		t.Fatal(err)
	}
	// A chain cut into 3 blocks has exactly 2 cross edges.
	if len(d.Blocks) == 3 && d.CrossEdges != 2 {
		t.Errorf("chain decomposition has %d cross edges", d.CrossEdges)
	}
}

func TestDecomposeErrorsAndEdgeCases(t *testing.T) {
	tr, err := Chain(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Decompose(0); err == nil {
		t.Error("accepted k=0")
	}
	// k larger than the tree clamps.
	d, err := tr.Decompose(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(tr); err != nil {
		t.Fatal(err)
	}
	if len(d.Blocks) > 3 {
		t.Errorf("%d blocks from a 3-clique tree", len(d.Blocks))
	}
}
