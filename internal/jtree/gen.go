package jtree

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file generates the junction trees used by the paper's evaluation:
// the Fig. 4 rerooting template, BNT-like random trees parameterized by
// (N, w, r, k), and simple shapes (chain, star, balanced) used in tests.
// All generators build trees that satisfy the running intersection property
// by construction: every clique shares a chosen subset of its parent's
// variables and introduces fresh variables for the rest.

// varAllocator hands out fresh variable ids.
type varAllocator struct{ next int }

func (a *varAllocator) fresh(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = a.next
		a.next++
	}
	return out
}

// childVars derives a child clique's variable set: sep variables shared with
// the parent plus fresh ones, sorted. sep must be a subset of parent.
func childVars(parent []int, sep int, width int, alloc *varAllocator) []int {
	if sep > len(parent) {
		sep = len(parent)
	}
	if sep > width {
		sep = width
	}
	vars := append([]int(nil), parent[len(parent)-sep:]...)
	vars = append(vars, alloc.fresh(width-sep)...)
	sort.Ints(vars)
	return vars
}

// uniformCard returns a cardinality slice of the given length filled with r.
func uniformCard(n, r int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = r
	}
	return c
}

// TemplateConfig parameterizes the Fig. 4 rerooting template: a hub clique
// from which b+1 branches (chains) of equal length hang; the root R is the
// tip of branch 0, so the critical path from R spans branch 0 plus one other
// branch, while rerooting at the hub leaves a single branch on the critical
// path (maximum speedup 2).
type TemplateConfig struct {
	Branches     int // b: number of branches besides branch 0 (total b+1)
	TotalCliques int // approximate total clique count (paper: 512)
	Width        int // variables per clique (paper: 15)
	States       int // states per variable (paper: 2)
	SepSize      int // variables shared along a chain (default Width-1)
}

// Template builds the Fig. 4 junction tree skeleton. The returned tree is
// rooted at the tip of branch 0 (the paper's original root R); rerooting
// with Algorithm 1 moves the root to the hub.
func Template(cfg TemplateConfig) (*Tree, error) {
	if cfg.Branches < 1 {
		return nil, fmt.Errorf("jtree: template needs at least 1 extra branch, got %d", cfg.Branches)
	}
	if cfg.Width < 1 || cfg.States < 1 {
		return nil, fmt.Errorf("jtree: template width %d / states %d invalid", cfg.Width, cfg.States)
	}
	sep := cfg.SepSize
	if sep <= 0 || sep >= cfg.Width {
		sep = cfg.Width - 1
		if sep < 1 {
			sep = 0
		}
	}
	nBranches := cfg.Branches + 1
	perBranch := (cfg.TotalCliques - 1) / nBranches
	if perBranch < 1 {
		perBranch = 1
	}

	alloc := &varAllocator{}
	var vars [][]int
	var card [][]int
	var adj [][]int
	addClique := func(vs []int) int {
		vars = append(vars, vs)
		card = append(card, uniformCard(len(vs), cfg.States))
		adj = append(adj, nil)
		return len(vars) - 1
	}
	connect := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}

	hubVars := alloc.fresh(cfg.Width)
	hub := addClique(hubVars)
	rootTip := hub
	for b := 0; b < nBranches; b++ {
		prev := hub
		prevVars := hubVars
		for i := 0; i < perBranch; i++ {
			vs := childVars(prevVars, sep, cfg.Width, alloc)
			c := addClique(vs)
			connect(prev, c)
			prev, prevVars = c, vs
		}
		if b == 0 {
			rootTip = prev // R: the tip of branch 0
		}
	}
	t, err := NewFromAdjacency(vars, card, adj, rootTip)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// RandomConfig parameterizes the BNT-like random junction trees of the
// paper's Section 7: N cliques of width w over r-state variables, with a
// branching factor of k children per internal clique.
type RandomConfig struct {
	N       int // number of cliques
	Width   int // clique width w_C
	States  int // states per variable r
	Degree  int // target children per internal clique k
	SepSize int // variables shared with the parent (default Width/2, min 1)
	Seed    int64
}

// JT1, JT2 and JT3 are the three junction trees of the paper's Section 7.
// The table sizes are parameters of the *skeleton*; materialize only at
// scaled widths when actually executing.
func JT1() RandomConfig { return RandomConfig{N: 512, Width: 20, States: 2, Degree: 4, Seed: 1} }
func JT2() RandomConfig { return RandomConfig{N: 256, Width: 15, States: 3, Degree: 4, Seed: 2} }
func JT3() RandomConfig { return RandomConfig{N: 128, Width: 10, States: 3, Degree: 2, Seed: 3} }

// Random builds a random junction-tree skeleton per cfg. Shapes are drawn
// by attaching each new clique to a uniformly chosen clique that still has
// fewer than Degree children, giving a tree whose internal branching factor
// concentrates around Degree.
func Random(cfg RandomConfig) (*Tree, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("jtree: random tree needs at least 1 clique, got %d", cfg.N)
	}
	if cfg.Width < 1 || cfg.States < 1 {
		return nil, fmt.Errorf("jtree: random width %d / states %d invalid", cfg.Width, cfg.States)
	}
	deg := cfg.Degree
	if deg < 1 {
		deg = 2
	}
	sep := cfg.SepSize
	if sep <= 0 || sep >= cfg.Width {
		sep = cfg.Width / 2
		if sep < 1 {
			sep = 1
		}
		if cfg.Width == 1 {
			sep = 0
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	alloc := &varAllocator{}

	vars := make([][]int, 1, cfg.N)
	card := make([][]int, 1, cfg.N)
	adj := make([][]int, 1, cfg.N)
	vars[0] = alloc.fresh(cfg.Width)
	card[0] = uniformCard(cfg.Width, cfg.States)

	childCount := make([]int, 1, cfg.N)
	open := []int{0} // cliques with fewer than deg children
	for len(vars) < cfg.N {
		slot := rng.Intn(len(open))
		parent := open[slot]
		vs := childVars(vars[parent], sep, cfg.Width, alloc)
		id := len(vars)
		vars = append(vars, vs)
		card = append(card, uniformCard(len(vs), cfg.States))
		adj = append(adj, []int{parent})
		adj[parent] = append(adj[parent], id)
		childCount = append(childCount, 0)
		childCount[parent]++
		if childCount[parent] >= deg {
			open[slot] = open[len(open)-1]
			open = open[:len(open)-1]
		}
		open = append(open, id)
	}
	return NewFromAdjacency(vars, card, adj, 0)
}

// Chain builds a path of n cliques of the given width and state count,
// rooted at one end.
func Chain(n, width, states int) (*Tree, error) {
	return Random(RandomConfig{N: n, Width: width, States: states, Degree: 1, SepSize: width - 1, Seed: 0})
}

// Star builds a hub with `branches` leaf cliques, rooted at the hub.
func Star(branches, width, states int) (*Tree, error) {
	alloc := &varAllocator{}
	hub := alloc.fresh(width)
	vars := [][]int{hub}
	card := [][]int{uniformCard(width, states)}
	adj := [][]int{nil}
	for i := 0; i < branches; i++ {
		vs := childVars(hub, width/2, width, alloc)
		id := len(vars)
		vars = append(vars, vs)
		card = append(card, uniformCard(len(vs), states))
		adj = append(adj, []int{0})
		adj[0] = append(adj[0], id)
	}
	return NewFromAdjacency(vars, card, adj, 0)
}

// Balanced builds a complete fanout-ary tree of the given depth (depth 0 is
// a single clique), rooted at the top.
func Balanced(depth, fanout, width, states int) (*Tree, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("jtree: balanced fanout %d invalid", fanout)
	}
	alloc := &varAllocator{}
	vars := [][]int{alloc.fresh(width)}
	card := [][]int{uniformCard(width, states)}
	adj := [][]int{nil}
	level := []int{0}
	for d := 0; d < depth; d++ {
		var next []int
		for _, p := range level {
			for f := 0; f < fanout; f++ {
				vs := childVars(vars[p], width/2, width, alloc)
				id := len(vars)
				vars = append(vars, vs)
				card = append(card, uniformCard(len(vs), states))
				adj = append(adj, []int{p})
				adj[p] = append(adj[p], id)
				next = append(next, id)
			}
		}
		level = next
	}
	return NewFromAdjacency(vars, card, adj, 0)
}
