// Package lazy implements zero-aware, evidence-pruned propagation over a
// precalibrated junction tree — the Madsen/Kjærulff observation that most
// of the eager engine's marginalize/divide/extend/multiply work is either
// provably vacuous for a given evidence set or shrinkable to the non-zero
// hull that hard evidence leaves behind.
//
// The engine precalibrates the tree once per semiring (a serial no-evidence
// propagation whose clique and separator tables are then shared, read-only,
// by every query). A query then:
//
//   - marks the *dirty* cliques — those containing an observed variable —
//     and reduces copies of only those tables;
//   - builds (and caches, keyed by the observed-variable set) a pruned
//     collect task graph containing only the edges whose subtree holds a
//     dirty clique: a message from an undisturbed subtree is the identity
//     ratio ψ*S/ψS = 1 and is skipped outright;
//   - *blocks* edges whose separator is fully observed: downstream of such
//     a separator only a scalar survives, so the Extend and Multiply tasks
//     are dropped and the Divide task records the scalar λ instead. The
//     root's mass is repaired as P(e) = Σψroot · Πλ; every stored table is
//     then exact up to one positive per-table scalar, which posterior
//     normalization, calibration checks, Steiner folds and max-product
//     argmax extraction are all invariant to;
//   - restricts each dirty clique's Marginalize task to its evidence hull:
//     with the clique's leading (slowest-varying) variables observed, the
//     non-zero entries form one contiguous block, so the task's range — and
//     the weight that drives δ-partitioning and the machine cost model —
//     shrinks from the table size to the hull span;
//   - runs the distribute pass on demand only: a posterior query
//     materializes messages down the root→clique path, skipping edges whose
//     subtree holds all the evidence (vacuous by calibration) and blocked
//     edges (scalar-only). Barren branches are never touched, never copied.
//
// States satisfy taskgraph.Executor, so every scheduler in internal/sched
// and internal/baseline drives pruned graphs unchanged.
package lazy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"evprop/internal/jtree"
	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

// maxPlans bounds the pruned-plan cache. Plans are keyed by the observed
// variable set (not values, except where values pick the evidence hull and
// blocked-separator index — those are part of the key), so serving
// workloads with a stable query mix hit a handful of entries. On overflow
// the whole map is dropped: plans are cheap to rebuild and an LRU here is
// not worth its locking.
const maxPlans = 128

// calibration is one precalibrated (no-evidence, fully propagated) set of
// clique and separator tables, shared read-only by every lazy state.
type calibration struct {
	clique []*potential.Potential
	sep    []*potential.Potential
}

// Prop owns the precalibrated tables and the pruned-plan cache for one
// engine. It is safe for concurrent use.
type Prop struct {
	tree *jtree.Tree
	full *taskgraph.Graph

	// cal[mode] is built by a serial eager propagation: sum-product eagerly
	// at New (it backs every posterior query), max-product on first use.
	cal     [2]*calibration
	calOnce [2]sync.Once
	calErr  [2]error

	mu    sync.Mutex
	plans map[string]*plan

	// edges is the tree's edge count; fullFlops the per-query table entries
	// an eager two-pass propagation touches — the denominators of the
	// pruning counters in Stats.
	edges     int
	fullFlops int64
}

// New prepares lazy propagation over the tree, precalibrating the
// sum-product tables with one serial no-evidence propagation of the full
// graph. The tree and graph are the engine's own (never mutated here).
func New(tree *jtree.Tree, full *taskgraph.Graph) (*Prop, error) {
	p := &Prop{tree: tree, full: full, plans: make(map[string]*plan)}
	for i := range tree.Cliques {
		c := &tree.Cliques[i]
		if c.Parent < 0 {
			continue
		}
		p.edges++
		child := int64(c.TableSize())
		parent := int64(tree.Cliques[c.Parent].TableSize())
		sep := int64(c.SepSize())
		p.fullFlops += child + sep + 2*parent // collect M, D, E+U
		p.fullFlops += parent + sep + 2*child // distribute M, D, E+U
	}
	if err := p.ensureCal(taskgraph.SumProduct); err != nil {
		return nil, err
	}
	return p, nil
}

// Tree returns the junction tree the engine propagates over.
func (p *Prop) Tree() *jtree.Tree { return p.tree }

// ensureCal builds the precalibrated tables for the semiring once. The
// serial run makes the baseline bit-reproducible: every lazy state derives
// from the same tables in the same order.
func (p *Prop) ensureCal(mode taskgraph.Mode) error {
	p.calOnce[mode].Do(func() {
		st, err := p.full.NewStateMode(mode)
		if err != nil {
			p.calErr[mode] = err
			return
		}
		if err := st.RunSerial(); err != nil {
			p.calErr[mode] = fmt.Errorf("lazy: precalibration: %w", err)
			return
		}
		p.cal[mode] = &calibration{clique: st.Clique, sep: st.Sep}
	})
	return p.calErr[mode]
}

// planFor returns the cached pruned plan for the evidence configuration,
// building it on first sight. hit reports whether the plan came from the
// cache (the distinction tracing surfaces as the plan span's attribute).
func (p *Prop) planFor(ev potential.Evidence, like potential.Likelihood) (_ *plan, hit bool) {
	key := planKey(ev, like)
	p.mu.Lock()
	if pl, ok := p.plans[key]; ok {
		p.mu.Unlock()
		return pl, true
	}
	p.mu.Unlock()
	pl := p.buildPlan(ev, like)
	p.mu.Lock()
	if len(p.plans) >= maxPlans {
		p.plans = make(map[string]*plan)
	}
	p.plans[key] = pl
	p.mu.Unlock()
	return pl, false
}

// planKey canonicalizes an evidence configuration. Hard evidence is keyed
// by (variable, state) — the state selects the hull and the blocked
// separator index — soft evidence by variable only: likelihood values
// scale tables but never change which messages survive.
func planKey(ev potential.Evidence, like potential.Likelihood) string {
	hard := make([]int, 0, len(ev))
	for v := range ev {
		hard = append(hard, v)
	}
	sort.Ints(hard)
	soft := make([]int, 0, len(like))
	for v := range like {
		soft = append(soft, v)
	}
	sort.Ints(soft)
	var b strings.Builder
	for _, v := range hard {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(ev[v]))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, v := range soft {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	return b.String()
}
