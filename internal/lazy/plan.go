package lazy

import (
	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

// Edge statuses of the pruned plan. Collect and distribute are classified
// independently (an edge may carry a full collect message yet a vacuous
// distribute one, and vice versa).
const (
	// edgeSkip: the message is provably the identity ratio and is never
	// sent. Collect: the child's subtree holds no dirty clique. Distribute:
	// every dirty clique lies inside the child's subtree, so after collect
	// the parent's separator marginal already equals the stored ψ*S.
	edgeSkip = iota
	// edgeSend: a full 4-task message.
	edgeSend
	// edgeBlock: every separator variable is hard-observed, so at most one
	// separator entry is non-zero and the message is a scalar. Collect runs
	// only Marginalize+Divide (Divide records the scalar λ); distribute is
	// skipped outright. The d-separation exploit.
	edgeBlock
)

// edgePlan classifies the two messages of one tree edge (identified by the
// child clique) and holds the pruned graph's task ids for its collect
// message (-1 when pruned away).
type edgePlan struct {
	collect int8
	dist    int8
	// obsIdx is the separator index selected by the evidence on a blocked
	// edge — where the lone surviving ratio entry (λ) lives.
	obsIdx         int
	cm, cd, ce, cu int
}

// hull is the contiguous non-zero block [lo, lo+span) that hard evidence
// on a clique's leading (slowest-varying) variables leaves in its reduced
// table. Cliques without leading observed variables have the full-table
// hull {0, TableSize}.
type hull struct{ lo, span int }

// plan is one pruned propagation recipe for an evidence configuration:
// the collect task graph over surviving messages, the per-edge message
// classification (the distribute half is executed on demand), per-clique
// evidence hulls and the plan-time pruning counters.
type plan struct {
	g     *taskgraph.Graph
	edges []edgePlan
	dirty []bool
	hulls []hull

	sent, blocked, skipped int64 // collect messages by fate
}

func (p *Prop) buildPlan(ev potential.Evidence, like potential.Likelihood) *plan {
	t := p.tree
	n := t.N()
	pl := &plan{
		edges: make([]edgePlan, n),
		dirty: make([]bool, n),
		hulls: make([]hull, n),
	}
	for i := range pl.edges {
		pl.edges[i] = edgePlan{cm: -1, cd: -1, ce: -1, cu: -1}
	}

	// Dirty cliques: every clique containing a hard-observed variable (all
	// of them must be reduced, exactly as the eager AbsorbEvidence reduces
	// every clique — reduction elsewhere is a no-op), plus the one clique
	// per soft-evidence variable that absorbs its likelihood.
	for i := range t.Cliques {
		c := &t.Cliques[i]
		pl.hulls[i] = hull{0, c.TableSize()}
		for _, v := range c.Vars {
			if _, ok := ev[v]; ok {
				pl.dirty[i] = true
				break
			}
		}
	}
	for v := range like {
		if ci := t.CliqueOf(v); ci >= 0 {
			pl.dirty[ci] = true
		}
	}

	// Evidence hulls: a dirty clique whose leading variables are observed
	// keeps its non-zero entries in one contiguous block after Reduce
	// (row-major layout, Vars[0] slowest). Only hard evidence zeroes
	// entries; soft evidence scales them and never shrinks the hull.
	for i := range t.Cliques {
		if !pl.dirty[i] {
			continue
		}
		c := &t.Cliques[i]
		base, span := 0, c.TableSize()
		for k := 0; k < len(c.Vars); k++ {
			s, ok := ev[c.Vars[k]]
			if !ok {
				break
			}
			base = base*c.Card[k] + s
			span /= c.Card[k]
		}
		pl.hulls[i] = hull{base * span, span}
	}

	// Subtree dirt counts (children before parents) drive both pruning
	// rules: collect over edge (c, parent) is live iff subtree(c) is dirty;
	// distribute over it is live iff any dirt lies *outside* subtree(c).
	sub := make([]int, n)
	for _, c := range t.PostOrder() {
		if pl.dirty[c] {
			sub[c]++
		}
		for _, ch := range t.Cliques[c].Children {
			sub[c] += sub[ch]
		}
	}
	total := sub[t.Root]

	// Classify every edge and emit the pruned collect graph. Weights feed
	// the schedulers' δ-partitioning and the machine cost model, so a
	// hull-shrunk Marginalize carries its span, not its table size.
	g := &taskgraph.Graph{Tree: t}
	add := func(k taskgraph.Kind, edge, source, target int, w float64, grain int) int {
		id := len(g.Tasks)
		g.Tasks = append(g.Tasks, taskgraph.Task{
			ID: id, Kind: k, Dir: taskgraph.Collect,
			Edge: edge, Source: source, Target: target,
			Weight: w, Grain: grain,
		})
		return id
	}
	dep := func(from, to int) {
		g.Tasks[from].Succs = append(g.Tasks[from].Succs, to)
		g.Tasks[to].NDeps++
	}

	for c := range t.Cliques {
		par := t.Cliques[c].Parent
		if par < 0 {
			continue
		}
		ep := &pl.edges[c]

		blocked := len(t.Cliques[c].SepVars) > 0
		obsIdx := 0
		for k, v := range t.Cliques[c].SepVars {
			s, ok := ev[v]
			if !ok {
				blocked = false
				break
			}
			obsIdx = obsIdx*t.Cliques[c].SepCard[k] + s
		}

		switch {
		case total == sub[c]:
			ep.dist = edgeSkip
		case blocked:
			ep.dist = edgeBlock
			ep.obsIdx = obsIdx
		default:
			ep.dist = edgeSend
		}

		if sub[c] == 0 {
			ep.collect = edgeSkip
			pl.skipped++
			continue
		}
		sepSize := float64(t.Cliques[c].SepSize())
		childGrain := potential.PartitionGrain(t.Cliques[c].Vars, t.Cliques[c].Card, t.Cliques[c].SepVars)
		ep.cm = add(taskgraph.Marginalize, c, c, par, float64(pl.hulls[c].span), childGrain)
		ep.cd = add(taskgraph.Divide, c, c, par, sepSize, 1)
		dep(ep.cm, ep.cd)
		if blocked {
			ep.collect = edgeBlock
			ep.obsIdx = obsIdx
			pl.blocked++
			continue
		}
		ep.collect = edgeSend
		pl.sent++
		parentSize := float64(t.Cliques[par].TableSize())
		parentGrain := potential.PartitionGrain(t.Cliques[par].Vars, t.Cliques[par].Card, t.Cliques[c].SepVars)
		ep.ce = add(taskgraph.Extend, c, c, par, parentSize, parentGrain)
		ep.cu = add(taskgraph.Multiply, c, c, par, parentSize, 1)
		dep(ep.cd, ep.ce)
		dep(ep.ce, ep.cu)
	}

	// Cross-edge ordering, exactly the eager builder's shape restricted to
	// surviving tasks: collect multiplies into one clique form a chain (they
	// all write ψc), and a clique's upward Marginalize waits for the last
	// of them. Blocked children never write the parent, so they need no
	// ordering against it — their Marginalize still waits on updates into
	// their *own* clique.
	for c := range t.Cliques {
		lastCU := -1
		for _, ch := range t.Cliques[c].Children {
			cu := pl.edges[ch].cu
			if cu < 0 {
				continue
			}
			if lastCU >= 0 {
				dep(lastCU, cu)
			}
			lastCU = cu
		}
		if pl.edges[c].cm >= 0 && lastCU >= 0 {
			dep(lastCU, pl.edges[c].cm)
		}
	}
	pl.g = g
	return pl
}
