package lazy

import (
	"math"
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

func asiaProp(t *testing.T) (*Prop, map[string]int) {
	t.Helper()
	net, ids := bayesnet.Asia()
	tree, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	g := taskgraph.Build(tree)
	p, err := New(tree, g)
	if err != nil {
		t.Fatal(err)
	}
	return p, ids
}

// TestEmptyEvidencePlanIsFullyPruned: with nothing observed the tree is
// already calibrated, so the plan must contain no tasks at all and the
// state must answer P() = 1 and calibrated marginals without propagating.
func TestEmptyEvidencePlanIsFullyPruned(t *testing.T) {
	p, ids := asiaProp(t)
	st, err := p.NewState(taskgraph.SumProduct, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(st.Graph().Tasks); n != 0 {
		t.Fatalf("empty evidence emitted %d tasks, want 0", n)
	}
	if err := st.RunSerial(); err != nil {
		t.Fatal(err)
	}
	if pe := st.EvidenceMass(); math.Abs(pe-1) > 1e-9 {
		t.Fatalf("P() = %v, want 1", pe)
	}
	m, err := st.Marginal(ids["Smoke"])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Data[0]+m.Data[1]-1) > 1e-9 {
		t.Fatalf("prior marginal not normalized: %v", m.Data)
	}
	s := st.Stats()
	if s.TasksRun != 0 || s.MessagesSent != 0 || s.Flops != 0 {
		t.Fatalf("empty evidence did work: %+v", s)
	}
	if s.MaterializedEntries != 0 {
		t.Fatalf("empty evidence materialized %d entries", s.MaterializedEntries)
	}
}

// TestLazyMatchesEagerSerial runs the pruned graph serially and compares
// every posterior and P(e) against an eager serial propagation of the same
// evidence.
func TestLazyMatchesEagerSerial(t *testing.T) {
	p, ids := asiaProp(t)
	ev := potential.Evidence{ids["XRay"]: 1, ids["Dysp"]: 0}

	eager, err := p.full.NewStateMode(taskgraph.SumProduct)
	if err != nil {
		t.Fatal(err)
	}
	if err := eager.AbsorbEvidence(ev); err != nil {
		t.Fatal(err)
	}
	if err := eager.RunSerial(); err != nil {
		t.Fatal(err)
	}

	st, err := p.NewState(taskgraph.SumProduct, ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunSerial(); err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(st.EvidenceMass() - eager.EvidenceMass()); d > 1e-12 {
		t.Fatalf("P(e): lazy %v eager %v", st.EvidenceMass(), eager.EvidenceMass())
	}
	for _, v := range ids {
		if _, fixed := ev[v]; fixed {
			continue
		}
		lm, err := st.Marginal(v)
		if err != nil {
			t.Fatal(err)
		}
		em, err := eager.Marginal(v)
		if err != nil {
			t.Fatal(err)
		}
		if !lm.Equal(em, 1e-9) {
			t.Fatalf("variable %d: lazy %v eager %v", v, lm.Data, em.Data)
		}
	}
	s := st.Stats()
	if s.MessagesSkipped == 0 && s.MessagesBlocked == 0 {
		t.Fatalf("two observed leaves pruned nothing: %+v", s)
	}
	if s.Flops >= s.FlopsFull {
		t.Fatalf("lazy flops %d not below eager %d", s.Flops, s.FlopsFull)
	}
}

// TestPlanCacheKeysOnObservedSet: identical evidence reuses the cached
// plan; changing an observed *value* changes the hull selection and must
// build a distinct plan, as must changing the observed set.
func TestPlanCacheKeysOnObservedSet(t *testing.T) {
	p, ids := asiaProp(t)
	ev1 := potential.Evidence{ids["XRay"]: 1}
	a, hit := p.planFor(ev1, nil)
	if hit {
		t.Fatal("first sight of the evidence reported a plan-cache hit")
	}
	b, hit := p.planFor(potential.Evidence{ids["XRay"]: 1}, nil)
	if a != b || !hit {
		t.Fatal("identical evidence rebuilt the plan")
	}
	if c, _ := p.planFor(potential.Evidence{ids["XRay"]: 0}, nil); c == a {
		t.Fatal("different observed value reused the plan")
	}
	if d, _ := p.planFor(potential.Evidence{ids["Smoke"]: 1}, nil); d == a {
		t.Fatal("different observed set reused the plan")
	}
}

// TestMaxProductCalibratesOnDemand: the max-product calibration is built
// lazily on first use and the resulting max-marginals are positive.
func TestMaxProductCalibratesOnDemand(t *testing.T) {
	p, ids := asiaProp(t)
	if p.cal[taskgraph.MaxProduct] != nil {
		t.Fatal("max calibration built eagerly")
	}
	st, err := p.NewState(taskgraph.MaxProduct, potential.Evidence{ids["XRay"]: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.cal[taskgraph.MaxProduct] == nil {
		t.Fatal("max calibration not built on first max state")
	}
	if err := st.RunSerial(); err != nil {
		t.Fatal(err)
	}
	if err := st.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if s := st.MassScale(); s <= 0 {
		t.Fatalf("MassScale = %v, want positive", s)
	}
	root, err := st.CliquePot(p.tree.Root)
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for _, x := range root.Data {
		if x > max {
			max = x
		}
	}
	if max <= 0 {
		t.Fatalf("max-marginal root is all zero")
	}
}
