package lazy

import (
	"fmt"
	"sync"
	"sync/atomic"

	"evprop/internal/potential"
	"evprop/internal/taskgraph"
)

// Stats is a snapshot of one lazy propagation's pruning counters. Message
// counts cover both passes (2 × edges possible messages); task and flop
// counts are measured against the eager engine's 8 tasks per edge.
type Stats struct {
	// MessagesSent counts full 4-task messages: planned collect messages
	// plus distribute messages materialized on demand so far.
	MessagesSent int64
	// MessagesBlocked counts messages collapsed to a scalar by a fully
	// observed separator (collect: Marginalize+Divide only; distribute:
	// nothing at all runs).
	MessagesBlocked int64
	// MessagesSkipped counts messages never sent: collect from undisturbed
	// subtrees, distribute not (or not yet) demanded or provably vacuous.
	MessagesSkipped int64
	// TasksRun and TasksSkipped measure the pruned task graph against the
	// eager engine's 8 tasks per edge.
	TasksRun, TasksSkipped int64
	// Flops counts table entries processed by executed tasks; FlopsFull is
	// what one eager two-pass propagation processes on this tree.
	Flops, FlopsFull int64
	// MaterializedEntries counts table entries this query copied or
	// allocated (clique/separator clones, message buffers). Untouched
	// regions of the tree — barren branches in particular — cost zero.
	MaterializedEntries int64
}

// State is one lazy propagation: shared read-only precalibrated tables,
// copy-on-write overlays for the tables this query's evidence actually
// perturbs, and the pruned collect graph. It implements taskgraph.Executor
// (driven by any scheduler) and the engine's calibration surface
// (Marginal/CliquePot/Calibrate/...), under which the distribute pass is
// materialized on demand, path by path.
type State struct {
	prop *Prop
	plan *plan
	mode taskgraph.Mode
	cal  *calibration
	// planHit records whether the pruned plan came from the plan cache
	// (true) or was built for this query (false).
	planHit bool

	// cl/sep overlay the calibration tables: nil means "unchanged, read
	// the shared precalibrated table". sepNew and temp are the per-edge
	// message and extension buffers of surviving collect messages.
	cl     []*potential.Potential
	sep    []*potential.Potential
	sepNew []*potential.Potential
	temp   []*potential.Potential

	// lambda[c] is the scalar recorded by a blocked edge's Divide — the
	// factor the skipped Extend+Multiply would have applied to every
	// surviving parent entry. 1.0 elsewhere. Folded into EvidenceMass and
	// MassScale in fixed edge order, so the product is deterministic.
	lambda []float64

	// mu serializes the demand-driven distribute pass (Divide is
	// destructive, so each edge must run at most once) and the
	// copy-on-write clones it performs. distDone[c] marks edge (c, parent)
	// resolved; it is only ever set top-down, so done implies all
	// ancestors are done.
	mu       sync.Mutex
	distDone []bool

	bufMu   sync.Mutex
	bufFree [][]*potential.Potential

	tasksRun     atomic.Int64
	flops        atomic.Int64
	materialized atomic.Int64
	distSent     atomic.Int64
	distBlocked  atomic.Int64
}

// NewState builds the pruned propagation state for one evidence
// configuration: plan lookup, copy-on-write reduction of the dirty
// cliques, and buffer allocation for the surviving collect messages. The
// caller then drives the returned state with any scheduler.
func (p *Prop) NewState(mode taskgraph.Mode, ev potential.Evidence, like potential.Likelihood) (*State, error) {
	if err := p.ensureCal(mode); err != nil {
		return nil, err
	}
	pl, hit := p.planFor(ev, like)
	n := p.tree.N()
	st := &State{
		prop:     p,
		plan:     pl,
		mode:     mode,
		planHit:  hit,
		cal:      p.cal[mode],
		cl:       make([]*potential.Potential, n),
		sep:      make([]*potential.Potential, n),
		sepNew:   make([]*potential.Potential, n),
		temp:     make([]*potential.Potential, n),
		lambda:   make([]float64, n),
		distDone: make([]bool, n),
	}
	for i := range st.lambda {
		st.lambda[i] = 1
	}
	// Reduce only the dirty cliques: everywhere else Reduce is a no-op by
	// construction (no observed variable in the clique), which is the
	// first pruning win over the eager AbsorbEvidence full sweep.
	for i := range p.tree.Cliques {
		if !pl.dirty[i] {
			continue
		}
		c := st.cliqueRW(i)
		if len(ev) > 0 {
			if err := c.Reduce(ev); err != nil {
				return nil, fmt.Errorf("lazy: clique %d: %w", i, err)
			}
		}
	}
	for v := range like {
		ci := p.tree.CliqueOf(v)
		if ci < 0 {
			return nil, fmt.Errorf("lazy: likelihood on unknown variable %d", v)
		}
		if err := st.cliqueRW(ci).ApplyLikelihood(like, v); err != nil {
			return nil, fmt.Errorf("lazy: clique %d: %w", ci, err)
		}
	}
	// Clone every table the surviving collect tasks will write, up front
	// and serially: workers then share the overlay slices read-only and
	// need no clone-on-write locking on the hot path.
	for c := range pl.edges {
		ep := &pl.edges[c]
		if ep.collect == edgeSkip {
			continue
		}
		st.sep[c] = p.cal[mode].sep[c].Clone()
		st.sepNew[c] = p.cal[mode].sep[c].CloneZero()
		st.materialized.Add(2 * int64(st.sep[c].Len()))
		if ep.collect != edgeSend {
			continue
		}
		par := p.tree.Cliques[c].Parent
		st.cliqueRW(par)
		up, err := potential.New(p.tree.Cliques[par].Vars, p.tree.Cliques[par].Card)
		if err != nil {
			return nil, err
		}
		st.temp[c] = up
		st.materialized.Add(int64(up.Len()))
	}
	return st, nil
}

// cliqueRW returns clique i's private table, cloning the precalibrated one
// on first touch. Callers during a scheduler run rely on NewState having
// pre-cloned every concurrently written table; post-run callers hold mu.
func (st *State) cliqueRW(i int) *potential.Potential {
	if st.cl[i] == nil {
		st.cl[i] = st.cal.clique[i].Clone()
		st.materialized.Add(int64(st.cl[i].Len()))
	}
	return st.cl[i]
}

// cliqueRO returns clique i's current table without materializing it.
func (st *State) cliqueRO(i int) *potential.Potential {
	if st.cl[i] != nil {
		return st.cl[i]
	}
	return st.cal.clique[i]
}

// sepRO returns the stored separator of edge (i, parent) without
// materializing it.
func (st *State) sepRO(i int) *potential.Potential {
	if st.sep[i] != nil {
		return st.sep[i]
	}
	return st.cal.sep[i]
}

// --- taskgraph.Executor ---

// Graph returns the pruned collect graph of this query's plan.
func (st *State) Graph() *taskgraph.Graph { return st.plan.g }

// Mode returns the semiring this state propagates over.
func (st *State) Mode() taskgraph.Mode { return st.mode }

// PartitionSize follows the eager state, except that a Marginalize over a
// dirty clique spans only its evidence hull, and a blocked edge's Divide
// reports size 1: it computes the scalar λ in one indivisible step and
// must never be split.
func (st *State) PartitionSize(id int) int {
	t := &st.plan.g.Tasks[id]
	switch t.Kind {
	case taskgraph.Marginalize:
		return st.plan.hulls[t.Source].span
	case taskgraph.Divide:
		if st.plan.edges[t.Edge].collect == edgeBlock {
			return 1
		}
		return st.sepNew[t.Edge].Len()
	case taskgraph.Extend:
		return st.temp[t.Edge].Len()
	case taskgraph.Multiply:
		return st.cl[t.Target].Len()
	}
	return 1
}

// Execute runs the whole task unpartitioned.
func (st *State) Execute(id int) error {
	t := &st.plan.g.Tasks[id]
	var err error
	if t.Kind == taskgraph.Marginalize {
		dst := st.sepNew[t.Edge]
		for i := range dst.Data {
			dst.Data[i] = 0
		}
		err = st.ExecutePiece(id, 0, st.PartitionSize(id), dst)
	} else {
		err = st.ExecutePiece(id, 0, st.PartitionSize(id), nil)
	}
	if err != nil {
		return err
	}
	st.tasksRun.Add(1)
	return nil
}

// ExecutePiece runs the [lo,hi) slice of a task. Marginalize ranges are
// offsets into the source clique's evidence hull; the entries outside it
// are zero after reduction, so skipping them adds nothing to a sum and
// never wins a max — bit-identical to the eager full-range kernel.
func (st *State) ExecutePiece(id, lo, hi int, buf *potential.Potential) error {
	t := &st.plan.g.Tasks[id]
	switch t.Kind {
	case taskgraph.Marginalize:
		if buf == nil {
			return fmt.Errorf("lazy: marginalize piece without buffer")
		}
		h := st.plan.hulls[t.Source]
		src := st.cliqueRO(t.Source)
		st.flops.Add(int64(hi - lo))
		if st.mode == taskgraph.MaxProduct {
			return src.MaxMarginalInto(buf, h.lo+lo, h.lo+hi)
		}
		return src.MarginalInto(buf, h.lo+lo, h.lo+hi)
	case taskgraph.Divide:
		if st.plan.edges[t.Edge].collect == edgeBlock {
			return st.divideBlocked(t.Edge)
		}
		return st.divideRange(t.Edge, lo, hi)
	case taskgraph.Extend:
		st.flops.Add(int64(hi - lo))
		return st.sepNew[t.Edge].ExtendInto(st.temp[t.Edge], lo, hi)
	case taskgraph.Multiply:
		st.flops.Add(int64(hi - lo))
		return st.cl[t.Target].MulRange(st.temp[t.Edge], lo, hi)
	}
	return fmt.Errorf("lazy: unknown kind %v", t.Kind)
}

// NewPartialBuffer returns a private accumulation buffer for one piece of
// a partitioned Marginalize (recycled per edge, like the eager state), nil
// for other kinds.
func (st *State) NewPartialBuffer(id int) *potential.Potential {
	t := &st.plan.g.Tasks[id]
	if t.Kind != taskgraph.Marginalize {
		return nil
	}
	st.bufMu.Lock()
	if st.bufFree != nil {
		if free := st.bufFree[t.Edge]; len(free) > 0 {
			b := free[len(free)-1]
			free[len(free)-1] = nil
			st.bufFree[t.Edge] = free[:len(free)-1]
			st.bufMu.Unlock()
			for i := range b.Data {
				b.Data[i] = 0
			}
			return b
		}
	}
	st.bufMu.Unlock()
	st.materialized.Add(int64(st.sepNew[t.Edge].Len()))
	return st.sepNew[t.Edge].CloneZero()
}

// Combine finishes a partitioned Marginalize by folding the piece buffers
// into the shared separator buffer; a no-op for other kinds, whose pieces
// wrote disjoint ranges in place.
func (st *State) Combine(id int, bufs []*potential.Potential) error {
	t := &st.plan.g.Tasks[id]
	if t.Kind == taskgraph.Marginalize {
		dst := st.sepNew[t.Edge]
		for i := range dst.Data {
			dst.Data[i] = 0
		}
		for _, b := range bufs {
			if st.mode == taskgraph.MaxProduct {
				if err := dst.MaxWith(b); err != nil {
					return err
				}
			} else if err := dst.Add(b); err != nil {
				return err
			}
		}
		st.bufMu.Lock()
		if st.bufFree == nil {
			st.bufFree = make([][]*potential.Potential, len(st.sepNew))
		}
		st.bufFree[t.Edge] = append(st.bufFree[t.Edge], bufs...)
		st.bufMu.Unlock()
	}
	st.tasksRun.Add(1)
	return nil
}

// RunSerial executes the pruned graph in topological order on the calling
// goroutine.
func (st *State) RunSerial() error {
	order, err := st.plan.g.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		if err := st.Execute(id); err != nil {
			return fmt.Errorf("lazy: task %s: %w", st.plan.g.Tasks[id].String(), err)
		}
	}
	return nil
}

// divideRange is the eager Divide kernel over the state's overlay tables:
// ratio = ψ*S/ψS with 0/0 = 0 into sepNew, ψS ← ψ*S.
func (st *State) divideRange(edge, lo, hi int) error {
	num := st.sepNew[edge].Data
	den := st.sep[edge].Data
	if lo < 0 || hi < lo || hi > len(num) {
		return fmt.Errorf("lazy: divide range [%d,%d) invalid for %d entries", lo, hi, len(num))
	}
	for i := lo; i < hi; i++ {
		fresh := num[i]
		if den[i] == 0 {
			num[i] = 0
		} else {
			num[i] = fresh / den[i]
		}
		den[i] = fresh
	}
	st.flops.Add(int64(hi - lo))
	return nil
}

// divideBlocked runs a blocked edge's Divide over the whole separator and
// records λ — the single ratio entry the evidence leaves alive — instead
// of extending it into the parent. The skipped Extend+Multiply would have
// multiplied every surviving parent entry by exactly λ (the parent is
// reduced on the same evidence, so entries inconsistent with the separator
// observation are already zero).
func (st *State) divideBlocked(edge int) error {
	if err := st.divideRange(edge, 0, len(st.sepNew[edge].Data)); err != nil {
		return err
	}
	st.lambda[edge] = st.sepNew[edge].Data[st.plan.edges[edge].obsIdx]
	return nil
}

// --- the calibration surface (core's propagation-state interface) ---

// EvidenceMass returns P(e): the root clique's post-collect mass repaired
// by the product of the blocked edges' elided scalars, folded in fixed
// edge order so the floating-point result is deterministic.
func (st *State) EvidenceMass() float64 {
	m := st.cliqueRO(st.prop.tree.Root).Sum()
	for c := range st.lambda {
		if st.plan.edges[c].collect == edgeBlock {
			m *= st.lambda[c]
		}
	}
	return m
}

// MassScale returns the product of the elided blocked-edge scalars: the
// factor absolute values read from the root-side tables must be multiplied
// by to recover true unnormalized probabilities (max-product MPE values in
// particular). Normalized quantities are invariant to it.
func (st *State) MassScale() float64 {
	m := 1.0
	for c := range st.lambda {
		if st.plan.edges[c].collect == edgeBlock {
			m *= st.lambda[c]
		}
	}
	return m
}

// Marginal materializes the distribute path root→clique(v) on demand and
// returns the normalized posterior of v.
func (st *State) Marginal(v int) (*potential.Potential, error) {
	ci := st.prop.tree.CliqueOf(v)
	if ci < 0 {
		return nil, fmt.Errorf("lazy: no clique contains variable %d", v)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.ensurePathLocked(ci); err != nil {
		return nil, err
	}
	m, err := st.cliqueRO(ci).Marginal([]int{v})
	if err != nil {
		return nil, err
	}
	if err := m.Normalize(); err != nil {
		return nil, fmt.Errorf("lazy: variable %d has zero posterior mass (impossible evidence?): %w", v, err)
	}
	return m, nil
}

// CliquePot materializes the distribute path to clique ci and returns its
// calibrated table (exact up to the per-table scalar of skipped blocked
// messages; see MassScale).
func (st *State) CliquePot(ci int) (*potential.Potential, error) {
	if ci < 0 || ci >= st.prop.tree.N() {
		return nil, fmt.Errorf("lazy: clique %d out of range", ci)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.ensurePathLocked(ci); err != nil {
		return nil, err
	}
	return st.cliqueRO(ci), nil
}

// SepPot returns the stored separator above clique ci after the edge has
// been resolved (materializing the path on demand).
func (st *State) SepPot(ci int) (*potential.Potential, error) {
	if ci < 0 || ci >= st.prop.tree.N() || st.prop.tree.Cliques[ci].Parent < 0 {
		return nil, fmt.Errorf("lazy: no separator above clique %d", ci)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.ensurePathLocked(ci); err != nil {
		return nil, err
	}
	return st.sepRO(ci), nil
}

// Calibrate materializes every runnable distribute message (top-down), so
// whole-tree consumers — calibration checks, MPE extraction, Steiner
// folds — see fully distributed tables.
func (st *State) Calibrate() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	order, err := st.prop.tree.TopoOrder()
	if err != nil {
		return err
	}
	for _, c := range order {
		if st.prop.tree.Cliques[c].Parent < 0 {
			continue
		}
		if err := st.distributeLocked(c); err != nil {
			return err
		}
	}
	return nil
}

// ensurePathLocked resolves the distribute edges from the root down to
// clique ci. distDone is only ever set top-down, so the upward walk may
// stop at the first resolved edge.
func (st *State) ensurePathLocked(ci int) error {
	t := st.prop.tree
	var path []int
	for c := ci; t.Cliques[c].Parent >= 0; c = t.Cliques[c].Parent {
		if st.distDone[c] {
			break
		}
		path = append(path, c)
	}
	for i := len(path) - 1; i >= 0; i-- {
		if err := st.distributeLocked(path[i]); err != nil {
			return err
		}
	}
	return nil
}

// distributeLocked sends (at most once) the distribute message over edge
// (c, parent). Vacuous messages — all evidence inside subtree(c), so the
// parent's separator marginal already equals the stored ψ*S — and blocked
// messages — scalar-only — are skipped; everything else runs the full
// M→D→E→U chain serially over the overlay tables.
func (st *State) distributeLocked(c int) error {
	if st.distDone[c] {
		return nil
	}
	st.distDone[c] = true
	ep := &st.plan.edges[c]
	switch ep.dist {
	case edgeSkip:
		return nil
	case edgeBlock:
		st.distBlocked.Add(1)
		return nil
	}
	t := st.prop.tree
	par := t.Cliques[c].Parent
	src := st.cliqueRO(par)
	if st.sepNew[c] == nil {
		st.sepNew[c] = st.cal.sep[c].CloneZero()
		st.materialized.Add(int64(st.sepNew[c].Len()))
	} else {
		for i := range st.sepNew[c].Data {
			st.sepNew[c].Data[i] = 0
		}
	}
	if st.sep[c] == nil {
		st.sep[c] = st.cal.sep[c].Clone()
		st.materialized.Add(int64(st.sep[c].Len()))
	}
	h := st.plan.hulls[par]
	var err error
	if st.mode == taskgraph.MaxProduct {
		err = src.MaxMarginalInto(st.sepNew[c], h.lo, h.lo+h.span)
	} else {
		err = src.MarginalInto(st.sepNew[c], h.lo, h.lo+h.span)
	}
	if err != nil {
		return err
	}
	st.flops.Add(int64(h.span))
	if err := st.divideRange(c, 0, len(st.sepNew[c].Data)); err != nil {
		return err
	}
	down, err := potential.New(t.Cliques[c].Vars, t.Cliques[c].Card)
	if err != nil {
		return err
	}
	st.materialized.Add(int64(down.Len()))
	if err := st.sepNew[c].ExtendInto(down, 0, down.Len()); err != nil {
		return err
	}
	st.flops.Add(int64(down.Len()))
	dst := st.cliqueRW(c)
	if err := dst.MulRange(down, 0, dst.Len()); err != nil {
		return err
	}
	st.flops.Add(int64(dst.Len()))
	st.distSent.Add(1)
	st.tasksRun.Add(4)
	return nil
}

// PlanHit reports whether this query's pruned plan came from the plan
// cache rather than being built from scratch.
func (st *State) PlanHit() bool { return st.planHit }

// Stats snapshots the pruning counters. Undemanded distribute messages
// count as skipped: they were never sent.
func (st *State) Stats() Stats {
	sent := st.plan.sent + st.distSent.Load()
	blocked := st.plan.blocked + st.distBlocked.Load()
	run := st.tasksRun.Load()
	return Stats{
		MessagesSent:        sent,
		MessagesBlocked:     blocked,
		MessagesSkipped:     2*int64(st.prop.edges) - sent - blocked,
		TasksRun:            run,
		TasksSkipped:        8*int64(st.prop.edges) - run,
		Flops:               st.flops.Load(),
		FlopsFull:           st.prop.fullFlops,
		MaterializedEntries: st.materialized.Load(),
	}
}
