// Package buildinfo carries the version identity shared by the four
// binaries (evserve, evprop, evbench, evgen): their -version flags and
// evserve's /v1/healthz body all report the same values.
package buildinfo

import (
	"fmt"
	"runtime"
)

// Version identifies the build. Overridable at link time:
//
//	go build -ldflags "-X evprop/internal/buildinfo.Version=v1.2.3" ./...
var Version = "dev"

// String renders the full identity line printed by the -version flags, e.g.
// "evserve dev (go1.22.1 linux/amd64)".
func String(binary string) string {
	return fmt.Sprintf("%s %s (%s %s/%s)", binary, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
