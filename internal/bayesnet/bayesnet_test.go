package bayesnet

import (
	"math"
	"testing"

	"evprop/internal/potential"
)

func TestAddNodeBasics(t *testing.T) {
	n := New()
	a, err := n.AddNode("A", 2, nil, []float64{0.3, 0.7})
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if a != 0 || n.ID("A") != 0 || n.Name(0) != "A" || n.N() != 1 {
		t.Error("bookkeeping wrong")
	}
	if n.ID("missing") != -1 {
		t.Error("ID of missing node != -1")
	}
}

func TestAddNodeErrors(t *testing.T) {
	n := New()
	n.MustAddNode("A", 2, nil, []float64{0.3, 0.7})
	if _, err := n.AddNode("A", 2, nil, []float64{1, 0}); err == nil {
		t.Error("accepted duplicate name")
	}
	if _, err := n.AddNode("B", 0, nil, nil); err == nil {
		t.Error("accepted cardinality 0")
	}
	if _, err := n.AddNode("B", 2, []int{5}, []float64{1, 0, 1, 0}); err == nil {
		t.Error("accepted forward parent reference")
	}
	if _, err := n.AddNode("B", 2, []int{0}, []float64{1, 0}); err == nil {
		t.Error("accepted wrong-size CPT")
	}
}

func TestCPTCanonicalization(t *testing.T) {
	// Node 2 with parents declared as (1, 0): the input layout has parent 1
	// slowest, then parent 0, then self fastest. The canonical potential is
	// over sorted vars {0,1,2}.
	n := New()
	n.MustAddNode("P0", 2, nil, []float64{0.5, 0.5})
	n.MustAddNode("P1", 2, nil, []float64{0.5, 0.5})
	// dist[p1][p0][self]
	dist := []float64{
		0.10, 0.90, // p1=0, p0=0
		0.20, 0.80, // p1=0, p0=1
		0.30, 0.70, // p1=1, p0=0
		0.40, 0.60, // p1=1, p0=1
	}
	id := n.MustAddNode("C", 2, []int{1, 0}, dist)
	cpt := n.Nodes[id].CPT
	// canonical order (v0, v1, v2): At(p0, p1, self).
	cases := []struct {
		p0, p1, self int
		want         float64
	}{
		{0, 0, 0, 0.10}, {0, 0, 1, 0.90},
		{1, 0, 0, 0.20}, {1, 0, 1, 0.80},
		{0, 1, 0, 0.30}, {0, 1, 1, 0.70},
		{1, 1, 0, 0.40}, {1, 1, 1, 0.60},
	}
	for _, c := range cases {
		if got := cpt.At(c.p0, c.p1, c.self); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CPT(p0=%d,p1=%d,self=%d) = %v, want %v", c.p0, c.p1, c.self, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	n, _ := Asia()
	if err := n.Validate(); err != nil {
		t.Fatalf("Asia Validate: %v", err)
	}
	// Corrupt a CPT row.
	n.Nodes[0].CPT.Data[0] = 0.5
	if err := n.Validate(); err == nil {
		t.Error("Validate missed unnormalized CPT")
	}
}

func TestTopologicalOrder(t *testing.T) {
	n, _ := Asia()
	order, err := n.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	for id, node := range n.Nodes {
		for _, p := range node.Parents {
			if pos[p] > pos[id] {
				t.Errorf("parent %d after child %d", p, id)
			}
		}
	}
}

func TestJointSumsToOne(t *testing.T) {
	for _, build := range []func() (*Network, map[string]int){Asia, Sprinkler, Student} {
		n, _ := build()
		j, err := n.Joint()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(j.Sum()-1) > 1e-9 {
			t.Errorf("joint mass = %v", j.Sum())
		}
	}
}

func TestSprinklerPosterior(t *testing.T) {
	// Published values for Murphy's sprinkler network:
	// P(Sprinkler=1 | WetGrass=1) ≈ 0.4298, P(Rain=1 | WetGrass=1) ≈ 0.7079.
	n, ids := Sprinkler()
	ev := potential.Evidence{ids["WetGrass"]: 1}
	ps, err := n.ExactMarginal(ids["Sprinkler"], ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps.Data[1]-0.4298) > 1e-3 {
		t.Errorf("P(S=1|W=1) = %v, want ≈0.4298", ps.Data[1])
	}
	pr, err := n.ExactMarginal(ids["Rain"], ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr.Data[1]-0.7079) > 1e-3 {
		t.Errorf("P(R=1|W=1) = %v, want ≈0.7079", pr.Data[1])
	}
}

func TestAsiaPriors(t *testing.T) {
	n, ids := Asia()
	want := map[string]float64{
		"Tub":    0.0104,
		"Lung":   0.055,
		"Bronc":  0.45,
		"TbOrCa": 0.064828,
		"XRay":   0.110290,
	}
	for name, p := range want {
		m, err := n.ExactMarginal(ids[name], nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Data[1]-p) > 1e-5 {
			t.Errorf("P(%s=1) = %v, want %v", name, m.Data[1], p)
		}
	}
}

func TestAsiaEvidencePropagatesDirection(t *testing.T) {
	// A positive X-ray must raise the probability of lung cancer.
	n, ids := Asia()
	prior, err := n.ExactMarginal(ids["Lung"], nil)
	if err != nil {
		t.Fatal(err)
	}
	post, err := n.ExactMarginal(ids["Lung"], potential.Evidence{ids["XRay"]: 1})
	if err != nil {
		t.Fatal(err)
	}
	if post.Data[1] <= prior.Data[1] {
		t.Errorf("P(Lung|XRay=1) = %v not above prior %v", post.Data[1], prior.Data[1])
	}
	// Explaining away: given dyspnea, also observing bronchitis lowers
	// the probability of TbOrCa.
	d := potential.Evidence{ids["Dysp"]: 1}
	db := potential.Evidence{ids["Dysp"]: 1, ids["Bronc"]: 1}
	pd, err := n.ExactMarginal(ids["TbOrCa"], d)
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := n.ExactMarginal(ids["TbOrCa"], db)
	if err != nil {
		t.Fatal(err)
	}
	if pdb.Data[1] >= pd.Data[1] {
		t.Errorf("explaining away failed: %v vs %v", pdb.Data[1], pd.Data[1])
	}
}

func TestExactMarginalImpossibleEvidence(t *testing.T) {
	n := New()
	n.MustAddNode("A", 2, nil, []float64{1, 0})
	if _, err := n.ExactMarginal(0, potential.Evidence{0: 1}); err == nil {
		t.Error("zero-probability evidence did not error")
	}
}

func TestMoralizedMarriesParents(t *testing.T) {
	n, ids := Asia()
	adj := n.Moralized()
	if !adj[ids["Tub"]][ids["Lung"]] {
		t.Error("parents Tub and Lung of TbOrCa not married")
	}
	if !adj[ids["TbOrCa"]][ids["Bronc"]] {
		t.Error("parents TbOrCa and Bronc of Dysp not married")
	}
	if !adj[ids["Smoke"]][ids["Lung"]] {
		t.Error("parent-child edge Smoke–Lung missing")
	}
	if adj[ids["Asia"]][ids["Smoke"]] {
		t.Error("spurious edge Asia–Smoke")
	}
}

func TestEliminationOrderComplete(t *testing.T) {
	n, _ := Asia()
	for _, h := range []Heuristic{MinFill, MinDegree} {
		order := n.EliminationOrder(h)
		if len(order) != n.N() {
			t.Fatalf("%v: order has %d of %d nodes", h, len(order), n.N())
		}
		seen := map[int]bool{}
		for _, v := range order {
			if seen[v] {
				t.Fatalf("%v: node %d eliminated twice", h, v)
			}
			seen[v] = true
		}
	}
}

func TestHeuristicString(t *testing.T) {
	if MinFill.String() != "min-fill" || MinDegree.String() != "min-degree" {
		t.Error("Heuristic String wrong")
	}
	if Heuristic(9).String() == "" {
		t.Error("unknown heuristic String empty")
	}
}

func TestTriangulationCliquesCoverFamilies(t *testing.T) {
	n, _ := Asia()
	cliques := n.TriangulationCliques(n.EliminationOrder(MinFill))
	for id, node := range n.Nodes {
		family := node.CPT.Vars
		found := false
		for _, cl := range cliques {
			if subset(family, cl) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("family of node %d (%v) not covered by any clique", id, family)
		}
	}
	// No clique may contain another.
	for i, a := range cliques {
		for j, b := range cliques {
			if i != j && subset(a, b) {
				t.Errorf("clique %v ⊆ clique %v", a, b)
			}
		}
	}
}

func TestCompileAsia(t *testing.T) {
	n, _ := Asia()
	tr, err := n.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("compiled tree invalid: %v", err)
	}
	// The textbook Asia junction tree has 6 cliques of width ≤ 3.
	if tr.N() < 4 || tr.N() > 8 {
		t.Errorf("Asia compiled to %d cliques", tr.N())
	}
	for i := range tr.Cliques {
		if w := tr.Cliques[i].Width(); w > 4 {
			t.Errorf("clique %d has width %d", i, w)
		}
	}
}

func TestCompiledTreeEncodesJoint(t *testing.T) {
	// Π ψ_C / Π ψ_S over the compiled (uncalibrated) tree equals the joint
	// distribution, because separators start at 1 and each CPT is placed
	// exactly once.
	for _, build := range []func() (*Network, map[string]int){Sprinkler, Student, Asia} {
		n, _ := build()
		tr, err := n.Compile()
		if err != nil {
			t.Fatal(err)
		}
		joint, err := n.Joint()
		if err != nil {
			t.Fatal(err)
		}
		prod := potential.Scalar(1)
		for i := range tr.Cliques {
			prod, err = potential.Product(prod, tr.Cliques[i].Pot)
			if err != nil {
				t.Fatal(err)
			}
		}
		if !prod.Equal(joint, 1e-9) {
			t.Errorf("clique product does not equal joint for %d-node network", n.N())
		}
	}
}

func TestCompileHonorsRootOption(t *testing.T) {
	n, _ := Asia()
	tr, err := n.CompileJunctionTree(CompileOptions{Heuristic: MinDegree, Root: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != 2 {
		t.Errorf("root = %d, want 2", tr.Root)
	}
}

func TestCompileEmptyNetwork(t *testing.T) {
	if _, err := New().Compile(); err == nil {
		t.Error("compiled an empty network")
	}
}

func TestRandomNetworkValidCompiles(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := RandomNetwork(10, 2, 3, seed)
		if err := n.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr, err := n.Compile()
		if err != nil {
			t.Fatalf("seed %d: Compile: %v", seed, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: tree invalid: %v", seed, err)
		}
	}
}

func TestRandomNetworkDeterministic(t *testing.T) {
	a := RandomNetwork(8, 3, 2, 5)
	b := RandomNetwork(8, 3, 2, 5)
	for i := range a.Nodes {
		if !a.Nodes[i].CPT.Equal(b.Nodes[i].CPT, 0) {
			t.Fatal("same seed produced different networks")
		}
	}
}

func TestNodeName(t *testing.T) {
	if nodeName(0) != "A" || nodeName(25) != "Z" {
		t.Error("single-letter names wrong")
	}
	if nodeName(26) == "" || nodeName(26) == nodeName(27) {
		t.Error("multi-letter names wrong")
	}
}

func TestSubset(t *testing.T) {
	if !subset([]int{1, 3}, []int{1, 2, 3}) {
		t.Error("subset false negative")
	}
	if subset([]int{1, 4}, []int{1, 2, 3}) {
		t.Error("subset false positive")
	}
	if !subset(nil, []int{1}) {
		t.Error("empty set not a subset")
	}
}

func TestIntersectionSize(t *testing.T) {
	if intersectionSize([]int{1, 2, 5}, []int{2, 3, 5, 7}) != 2 {
		t.Error("intersectionSize wrong")
	}
}
