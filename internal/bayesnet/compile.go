package bayesnet

import (
	"fmt"
	"sort"

	"evprop/internal/jtree"
	"evprop/internal/potential"
)

// Heuristic selects the elimination-order heuristic used for triangulation.
type Heuristic int

const (
	// MinFill eliminates the variable adding the fewest fill-in edges.
	MinFill Heuristic = iota
	// MinDegree eliminates the variable with the fewest live neighbors.
	MinDegree
)

func (h Heuristic) String() string {
	switch h {
	case MinFill:
		return "min-fill"
	case MinDegree:
		return "min-degree"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// EliminationOrder computes a variable elimination order on the moral graph
// using the given heuristic, breaking ties by lowest id for determinism.
func (n *Network) EliminationOrder(h Heuristic) []int {
	adj := n.Moralized()
	alive := make([]bool, len(adj))
	for i := range alive {
		alive[i] = true
	}
	order := make([]int, 0, len(adj))
	for len(order) < len(adj) {
		best, bestScore := -1, 1<<62
		for v := range adj {
			if !alive[v] {
				continue
			}
			var score int
			switch h {
			case MinDegree:
				score = len(liveNeighbors(adj, alive, v))
			default: // MinFill
				score = fillCount(adj, alive, v)
			}
			if score < bestScore {
				best, bestScore = v, score
			}
		}
		order = append(order, best)
		// Connect the live neighbors of best pairwise, then remove it.
		nb := liveNeighbors(adj, alive, best)
		for i, a := range nb {
			for _, b := range nb[i+1:] {
				adj[a][b] = true
				adj[b][a] = true
			}
		}
		alive[best] = false
	}
	return order
}

func liveNeighbors(adj []map[int]bool, alive []bool, v int) []int {
	var nb []int
	for u := range adj[v] {
		if alive[u] {
			nb = append(nb, u)
		}
	}
	sort.Ints(nb)
	return nb
}

func fillCount(adj []map[int]bool, alive []bool, v int) int {
	nb := liveNeighbors(adj, alive, v)
	fills := 0
	for i, a := range nb {
		for _, b := range nb[i+1:] {
			if !adj[a][b] {
				fills++
			}
		}
	}
	return fills
}

// TriangulationCliques eliminates variables in the given order on the moral
// graph, recording the clique {v} ∪ liveNeighbors(v) at each step, and
// returns the maximal cliques of the resulting chordal graph (sorted
// variable lists, duplicates and subsets removed).
func (n *Network) TriangulationCliques(order []int) [][]int {
	adj := n.Moralized()
	alive := make([]bool, len(adj))
	for i := range alive {
		alive[i] = true
	}
	var cliques [][]int
	for _, v := range order {
		nb := liveNeighbors(adj, alive, v)
		cl := append([]int{v}, nb...)
		sort.Ints(cl)
		cliques = append(cliques, cl)
		for i, a := range nb {
			for _, b := range nb[i+1:] {
				adj[a][b] = true
				adj[b][a] = true
			}
		}
		alive[v] = false
	}
	return maximalOnly(cliques)
}

func maximalOnly(cliques [][]int) [][]int {
	var out [][]int
	for i, c := range cliques {
		maximal := true
		for j, d := range cliques {
			if i == j {
				continue
			}
			if subset(c, d) && (len(c) < len(d) || i > j) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, c)
		}
	}
	return out
}

// subset reports whether sorted a ⊆ sorted b.
func subset(a, b []int) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// CompileOptions configures junction-tree compilation.
type CompileOptions struct {
	Heuristic Heuristic
	// Root selects the root clique; -1 (default via Compile) picks the
	// clique with the largest table, a common convention. The propagation
	// engine typically reroots with Algorithm 1 anyway.
	Root int
}

// CompileJunctionTree converts the network into a calibratable junction
// tree: moralize, triangulate, extract maximal cliques, connect them with a
// maximum-spanning tree on separator sizes, assign each CPT to a containing
// clique, and initialize separator potentials to ones.
func (n *Network) CompileJunctionTree(opts CompileOptions) (*jtree.Tree, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	order := n.EliminationOrder(opts.Heuristic)
	cliques := n.TriangulationCliques(order)
	if len(cliques) == 0 {
		return nil, fmt.Errorf("bayesnet: no cliques (empty network)")
	}

	cardOf := func(v int) int { return n.Nodes[v].Card }
	cards := make([][]int, len(cliques))
	for i, cl := range cliques {
		cards[i] = make([]int, len(cl))
		for j, v := range cl {
			cards[i][j] = cardOf(v)
		}
	}

	adj := maxSpanningJoinTree(cliques)

	root := opts.Root
	if root < 0 || root >= len(cliques) {
		root = largestClique(cliques, cards)
	}
	t, err := jtree.NewFromAdjacency(cliques, cards, adj, root)
	if err != nil {
		return nil, err
	}
	if err := t.MaterializeUniform(); err != nil {
		return nil, err
	}

	// Multiply every CPT into one clique containing its family.
	for id, node := range n.Nodes {
		placed := false
		for i, cl := range cliques {
			if subset(node.CPT.Vars, cl) {
				if err := t.Cliques[i].Pot.MulBy(node.CPT); err != nil {
					return nil, err
				}
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("bayesnet: no clique contains the family of node %q (%d)", node.Name, id)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Compile is CompileJunctionTree with default options (min-fill, automatic
// root).
func (n *Network) Compile() (*jtree.Tree, error) {
	return n.CompileJunctionTree(CompileOptions{Heuristic: MinFill, Root: -1})
}

func largestClique(cliques [][]int, cards [][]int) int {
	best, bestSize := 0, -1
	for i := range cliques {
		if s := potential.Size(cards[i]); s > bestSize {
			best, bestSize = i, s
		}
	}
	return best
}

// maxSpanningJoinTree connects the cliques with a maximum-weight spanning
// tree where edge weight is the separator size |Ci ∩ Cj|. Ties and
// zero-weight edges (disconnected networks) are still linked so the result
// is one tree; the junction-tree property holds because the cliques come
// from one triangulation.
func maxSpanningJoinTree(cliques [][]int) [][]int {
	n := len(cliques)
	adj := make([][]int, n)
	if n == 1 {
		return adj
	}
	inTree := make([]bool, n)
	bestW := make([]int, n)
	bestTo := make([]int, n)
	for i := range bestW {
		bestW[i] = -1
		bestTo[i] = 0
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		bestW[j] = intersectionSize(cliques[0], cliques[j])
	}
	for added := 1; added < n; added++ {
		pick, pickW := -1, -1
		for j := 0; j < n; j++ {
			if !inTree[j] && bestW[j] > pickW {
				pick, pickW = j, bestW[j]
			}
		}
		inTree[pick] = true
		adj[pick] = append(adj[pick], bestTo[pick])
		adj[bestTo[pick]] = append(adj[bestTo[pick]], pick)
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if w := intersectionSize(cliques[pick], cliques[j]); w > bestW[j] {
					bestW[j] = w
					bestTo[j] = pick
				}
			}
		}
	}
	return adj
}

func intersectionSize(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
