package bayesnet

// Classic example networks used by the examples and as test fixtures.
// State convention: state 0 = false/no/low, state 1 = true/yes/high
// (three-state variables are documented per network).

// Asia builds the Lauritzen–Spiegelhalter "chest clinic" network:
//
//	Asia → Tub ↘
//	             TbOrCa → XRay
//	Smoke → Lung ↗      ↘
//	     ↘ Bronc ————————→ Dysp
//
// All variables are binary. It returns the network and a name→id map.
func Asia() (*Network, map[string]int) {
	n := New()
	ids := map[string]int{}
	ids["Asia"] = n.MustAddNode("Asia", 2, nil, []float64{0.99, 0.01})
	ids["Smoke"] = n.MustAddNode("Smoke", 2, nil, []float64{0.5, 0.5})
	ids["Tub"] = n.MustAddNode("Tub", 2, []int{ids["Asia"]}, []float64{
		0.99, 0.01, // Asia = no
		0.95, 0.05, // Asia = yes
	})
	ids["Lung"] = n.MustAddNode("Lung", 2, []int{ids["Smoke"]}, []float64{
		0.99, 0.01, // Smoke = no
		0.90, 0.10, // Smoke = yes
	})
	ids["Bronc"] = n.MustAddNode("Bronc", 2, []int{ids["Smoke"]}, []float64{
		0.7, 0.3, // Smoke = no
		0.4, 0.6, // Smoke = yes
	})
	// TbOrCa is the deterministic OR of Tub and Lung.
	ids["TbOrCa"] = n.MustAddNode("TbOrCa", 2, []int{ids["Tub"], ids["Lung"]}, []float64{
		1, 0, // T=0, L=0
		0, 1, // T=0, L=1
		0, 1, // T=1, L=0
		0, 1, // T=1, L=1
	})
	ids["XRay"] = n.MustAddNode("XRay", 2, []int{ids["TbOrCa"]}, []float64{
		0.95, 0.05, // TbOrCa = no
		0.02, 0.98, // TbOrCa = yes
	})
	ids["Dysp"] = n.MustAddNode("Dysp", 2, []int{ids["TbOrCa"], ids["Bronc"]}, []float64{
		0.9, 0.1, // E=0, B=0
		0.2, 0.8, // E=0, B=1
		0.3, 0.7, // E=1, B=0
		0.1, 0.9, // E=1, B=1
	})
	return n, ids
}

// Sprinkler builds Murphy's four-node lawn network:
//
//	Cloudy → Sprinkler ↘
//	       ↘ Rain ——————→ WetGrass
func Sprinkler() (*Network, map[string]int) {
	n := New()
	ids := map[string]int{}
	ids["Cloudy"] = n.MustAddNode("Cloudy", 2, nil, []float64{0.5, 0.5})
	ids["Sprinkler"] = n.MustAddNode("Sprinkler", 2, []int{ids["Cloudy"]}, []float64{
		0.5, 0.5, // Cloudy = no
		0.9, 0.1, // Cloudy = yes
	})
	ids["Rain"] = n.MustAddNode("Rain", 2, []int{ids["Cloudy"]}, []float64{
		0.8, 0.2, // Cloudy = no
		0.2, 0.8, // Cloudy = yes
	})
	ids["WetGrass"] = n.MustAddNode("WetGrass", 2, []int{ids["Sprinkler"], ids["Rain"]}, []float64{
		1.00, 0.00, // S=0, R=0
		0.10, 0.90, // S=0, R=1
		0.10, 0.90, // S=1, R=0
		0.01, 0.99, // S=1, R=1
	})
	return n, ids
}

// Student builds the five-node network from Koller & Friedman's textbook.
// Grade has three states (0 = A, 1 = B, 2 = C); the rest are binary.
func Student() (*Network, map[string]int) {
	n := New()
	ids := map[string]int{}
	ids["Difficulty"] = n.MustAddNode("Difficulty", 2, nil, []float64{0.6, 0.4})
	ids["Intelligence"] = n.MustAddNode("Intelligence", 2, nil, []float64{0.7, 0.3})
	ids["Grade"] = n.MustAddNode("Grade", 3, []int{ids["Intelligence"], ids["Difficulty"]}, []float64{
		0.30, 0.40, 0.30, // i0, d0
		0.05, 0.25, 0.70, // i0, d1
		0.90, 0.08, 0.02, // i1, d0
		0.50, 0.30, 0.20, // i1, d1
	})
	ids["SAT"] = n.MustAddNode("SAT", 2, []int{ids["Intelligence"]}, []float64{
		0.95, 0.05, // i0
		0.20, 0.80, // i1
	})
	ids["Letter"] = n.MustAddNode("Letter", 2, []int{ids["Grade"]}, []float64{
		0.10, 0.90, // grade A
		0.40, 0.60, // grade B
		0.99, 0.01, // grade C
	})
	return n, ids
}

// RandomNetwork builds a synthetic layered network with the given number of
// nodes, states per node and maximum parents per node; every CPT row is a
// pseudo-random distribution drawn from the given seed. It is used by the
// fuzz-style oracle tests.
func RandomNetwork(nodes, states, maxParents int, seed int64) *Network {
	rng := newSplitMix(seed)
	n := New()
	for id := 0; id < nodes; id++ {
		np := 0
		if id > 0 {
			np = int(rng.next() % uint64(maxParents+1))
			if np > id {
				np = id
			}
		}
		seen := map[int]bool{}
		parents := make([]int, 0, np)
		for len(parents) < np {
			p := int(rng.next() % uint64(id))
			if !seen[p] {
				seen[p] = true
				parents = append(parents, p)
			}
		}
		rows := 1
		for _, p := range parents {
			rows *= n.Nodes[p].Card
		}
		dist := make([]float64, rows*states)
		for r := 0; r < rows; r++ {
			sum := 0.0
			for s := 0; s < states; s++ {
				v := float64(rng.next()%1000)/1000 + 0.05
				dist[r*states+s] = v
				sum += v
			}
			for s := 0; s < states; s++ {
				dist[r*states+s] /= sum
			}
		}
		n.MustAddNode(nodeName(id), states, parents, dist)
	}
	return n
}

func nodeName(id int) string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	name := string(letters[id%26])
	for id >= 26 {
		id /= 26
		name = string(letters[id%26]) + name
	}
	return name
}

// splitMix is a tiny deterministic PRNG so RandomNetwork does not depend on
// math/rand's generator evolution across Go versions.
type splitMix struct{ s uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{s: uint64(seed)*2654435769 + 1} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
