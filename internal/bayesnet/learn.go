package bayesnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file adds the model-lifecycle substrate around inference: ancestral
// (forward) sampling from a network and maximum-likelihood /
// Laplace-smoothed parameter estimation from complete data. Together with
// the inference engine they close the loop sample → learn → infer, which
// the tests exploit as a statistical oracle (parameters learned from many
// samples of a network converge to that network's CPTs).

// Sample draws one complete assignment by ancestral sampling: parents are
// sampled before children, each from its CPT row. The returned slice is
// indexed by node id.
func (n *Network) Sample(rng *rand.Rand) ([]int, error) {
	order, err := n.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	states := make([]int, n.N())
	for _, id := range order {
		node := &n.Nodes[id]
		// Extract the conditional distribution row for the sampled parents.
		dist := make([]float64, node.Card)
		assign := make([]int, len(node.CPT.Vars))
		for pos, v := range node.CPT.Vars {
			if v == id {
				continue
			}
			assign[pos] = states[v]
		}
		for s := 0; s < node.Card; s++ {
			for pos, v := range node.CPT.Vars {
				if v == id {
					assign[pos] = s
				}
			}
			dist[s] = node.CPT.Data[node.CPT.IndexOf(assign)]
		}
		states[id] = sampleIndex(rng, dist)
	}
	return states, nil
}

// SampleN draws n complete assignments.
func (n *Network) SampleN(rng *rand.Rand, count int) ([][]int, error) {
	out := make([][]int, count)
	for i := range out {
		s, err := n.Sample(rng)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// sampleIndex draws an index proportional to the (not necessarily
// normalized) weights.
func sampleIndex(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Structure describes the shape of a network to be learned: names, state
// counts and parent sets, without parameters.
type Structure struct {
	Names   []string
	Cards   []int
	Parents [][]int
}

// StructureOf extracts the structure of an existing network.
func (n *Network) StructureOf() Structure {
	s := Structure{
		Names:   make([]string, n.N()),
		Cards:   make([]int, n.N()),
		Parents: make([][]int, n.N()),
	}
	for id, node := range n.Nodes {
		s.Names[id] = node.Name
		s.Cards[id] = node.Card
		s.Parents[id] = append([]int(nil), node.Parents...)
	}
	return s
}

// LearnParameters estimates every CPT from complete data by counting, with
// Laplace (additive) smoothing `alpha` (0 = pure maximum likelihood; rows
// never observed fall back to uniform). Each sample must assign a valid
// state to every variable, in node-id order.
func LearnParameters(s Structure, data [][]int, alpha float64) (*Network, error) {
	if len(s.Names) != len(s.Cards) || len(s.Names) != len(s.Parents) {
		return nil, fmt.Errorf("bayesnet: inconsistent structure sizes")
	}
	if alpha < 0 {
		return nil, fmt.Errorf("bayesnet: negative smoothing %v", alpha)
	}
	nvar := len(s.Names)
	for si, sample := range data {
		if len(sample) != nvar {
			return nil, fmt.Errorf("bayesnet: sample %d has %d values, want %d", si, len(sample), nvar)
		}
		for v, st := range sample {
			if st < 0 || st >= s.Cards[v] {
				return nil, fmt.Errorf("bayesnet: sample %d assigns state %d to variable %d of %d states",
					si, st, v, s.Cards[v])
			}
		}
	}

	// Check acyclicity, then require the structure to be topologically
	// ordered by id (parents[i] < i) so the learned network keeps the
	// original ids — StructureOf guarantees this for networks built
	// through AddNode.
	if _, err := structureOrder(s); err != nil {
		return nil, err
	}
	for id, parents := range s.Parents {
		for _, p := range parents {
			if p >= id {
				return nil, fmt.Errorf("bayesnet: structure not topologically ordered: node %d has parent %d", id, p)
			}
		}
	}

	net := New()
	for id := 0; id < nvar; id++ {
		parents := s.Parents[id]
		rows := 1
		for _, p := range parents {
			rows *= s.Cards[p]
		}
		card := s.Cards[id]
		counts := make([]float64, rows*card)
		for _, sample := range data {
			row := 0
			for _, p := range parents {
				row = row*s.Cards[p] + sample[p]
			}
			counts[row*card+sample[id]]++
		}
		dist := make([]float64, len(counts))
		for r := 0; r < rows; r++ {
			total := alpha * float64(card)
			for st := 0; st < card; st++ {
				total += counts[r*card+st]
			}
			for st := 0; st < card; st++ {
				if total == 0 {
					dist[r*card+st] = 1 / float64(card) // unseen row, no smoothing
				} else {
					dist[r*card+st] = (counts[r*card+st] + alpha) / total
				}
			}
		}
		if _, err := net.AddNode(s.Names[id], card, parents, dist); err != nil {
			return nil, err
		}
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// structureOrder verifies the structure is acyclic.
func structureOrder(s Structure) ([]int, error) {
	n := len(s.Names)
	indeg := make([]int, n)
	children := make([][]int, n)
	for id, parents := range s.Parents {
		indeg[id] = len(parents)
		for _, p := range parents {
			if p < 0 || p >= n {
				return nil, fmt.Errorf("bayesnet: structure parent %d out of range", p)
			}
			children[p] = append(children[p], id)
		}
	}
	var queue, order []int
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	sort.Ints(queue)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, c := range children[u] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("bayesnet: structure has a cycle")
	}
	return order, nil
}

// LogLikelihood returns the log-likelihood of complete data under the
// network (sum over samples of log P(sample)), a model-selection score.
func (n *Network) LogLikelihood(data [][]int) (float64, error) {
	ll := 0.0
	for si, sample := range data {
		if len(sample) != n.N() {
			return 0, fmt.Errorf("bayesnet: sample %d has %d values, want %d", si, len(sample), n.N())
		}
		for id := range n.Nodes {
			node := &n.Nodes[id]
			assign := make([]int, len(node.CPT.Vars))
			for pos, v := range node.CPT.Vars {
				assign[pos] = sample[v]
			}
			p := node.CPT.Data[node.CPT.IndexOf(assign)]
			if p <= 0 {
				return math.Inf(-1), nil
			}
			ll += math.Log(p)
		}
	}
	return ll, nil
}
