package bayesnet

import (
	"fmt"
	"sort"
)

// This file implements d-separation queries with the Bayes-Ball algorithm
// (Shachter, UAI 1998): X ⊥ Y | Z holds structurally iff no "ball" started
// at X can reach Y under the bouncing rules below. d-separation implies
// conditional independence for every parameterization of the network, so
// callers can skip inference entirely for separated queries.

// ballState is one (node, arrival direction) configuration of the walk.
type ballState struct {
	node      int
	fromChild bool // ball arrived ascending (from a child); else descending
}

// DSeparated reports whether the node sets x and y are d-separated given
// the conditioning set z. Nodes may not appear in more than one of the
// three sets.
func (n *Network) DSeparated(x, y, z []int) (bool, error) {
	reach, err := n.ReachableFrom(x, z)
	if err != nil {
		return false, err
	}
	seen := map[int]bool{}
	for _, v := range x {
		if v < 0 || v >= n.N() {
			return false, fmt.Errorf("bayesnet: d-separation: node %d out of range", v)
		}
		seen[v] = true
	}
	for _, v := range z {
		if seen[v] {
			return false, fmt.Errorf("bayesnet: d-separation: node %d in both X and Z", v)
		}
	}
	for _, v := range y {
		if v < 0 || v >= n.N() {
			return false, fmt.Errorf("bayesnet: d-separation: node %d out of range", v)
		}
		if seen[v] {
			return false, fmt.Errorf("bayesnet: d-separation: node %d in both X and Y", v)
		}
		for _, zv := range z {
			if zv == v {
				return false, fmt.Errorf("bayesnet: d-separation: node %d in both Y and Z", v)
			}
		}
		if reach[v] {
			return false, nil
		}
	}
	return true, nil
}

// ReachableFrom returns the set of nodes d-connected to the source set x
// given conditioning set z, computed with Bayes-Ball in O(nodes + edges).
func (n *Network) ReachableFrom(x, z []int) (map[int]bool, error) {
	observed := make([]bool, n.N())
	for _, v := range z {
		if v < 0 || v >= n.N() {
			return nil, fmt.Errorf("bayesnet: d-separation: node %d out of range", v)
		}
		observed[v] = true
	}
	children := make([][]int, n.N())
	for id, node := range n.Nodes {
		for _, p := range node.Parents {
			children[p] = append(children[p], id)
		}
	}

	visited := map[ballState]bool{}
	reach := map[int]bool{}
	var queue []ballState
	push := func(s ballState) {
		if s.node < 0 || s.node >= n.N() || visited[s] {
			return
		}
		visited[s] = true
		queue = append(queue, s)
	}
	for _, v := range x {
		if v < 0 || v >= n.N() {
			return nil, fmt.Errorf("bayesnet: d-separation: node %d out of range", v)
		}
		// The source behaves like an unobserved node visited from a child.
		push(ballState{node: v, fromChild: true})
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		j := s.node
		if !observed[j] {
			reach[j] = true
		}
		if s.fromChild {
			if !observed[j] {
				// Pass up to parents and down to children.
				for _, p := range n.Nodes[j].Parents {
					push(ballState{node: p, fromChild: true})
				}
				for _, c := range children[j] {
					push(ballState{node: c, fromChild: false})
				}
			}
			// Observed node blocks an ascending ball.
		} else {
			if observed[j] {
				// v-structure: an observed node bounces a descending ball
				// back up to its parents.
				for _, p := range n.Nodes[j].Parents {
					push(ballState{node: p, fromChild: true})
				}
			} else {
				// Unobserved node passes a descending ball to its children.
				for _, c := range children[j] {
					push(ballState{node: c, fromChild: false})
				}
			}
		}
	}
	for _, v := range x {
		delete(reach, v)
	}
	return reach, nil
}

// MarkovBlanket returns the Markov blanket of node v (parents, children and
// children's other parents), sorted — the minimal set that d-separates v
// from the rest of the network.
func (n *Network) MarkovBlanket(v int) ([]int, error) {
	if v < 0 || v >= n.N() {
		return nil, fmt.Errorf("bayesnet: node %d out of range", v)
	}
	set := map[int]bool{}
	for _, p := range n.Nodes[v].Parents {
		set[p] = true
	}
	for id, node := range n.Nodes {
		for _, p := range node.Parents {
			if p == v {
				set[id] = true
				for _, q := range node.Parents {
					if q != v {
						set[q] = true
					}
				}
			}
		}
	}
	delete(set, v)
	out := make([]int, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Ints(out)
	return out, nil
}
