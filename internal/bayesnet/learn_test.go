package bayesnet

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampleRespectsStructure(t *testing.T) {
	// A deterministic network must always produce consistent samples.
	n := New()
	n.MustAddNode("A", 2, nil, []float64{0, 1})                // always 1
	n.MustAddNode("B", 2, []int{0}, []float64{1, 0, 0, 1})     // copies A
	n.MustAddNode("C", 2, []int{1}, []float64{0.5, 0.5, 0, 1}) // copies B=1
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		s, err := n.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		if s[0] != 1 || s[1] != 1 || s[2] != 1 {
			t.Fatalf("sample %v violates deterministic CPTs", s)
		}
	}
}

func TestSampleMarginalsConverge(t *testing.T) {
	// Empirical frequencies over many samples approximate the exact
	// marginals (law of large numbers, fixed seed keeps it deterministic).
	net, ids := Sprinkler()
	rng := rand.New(rand.NewSource(7))
	const samples = 20000
	counts := make([]int, net.N())
	for i := 0; i < samples; i++ {
		s, err := net.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		for v, st := range s {
			counts[v] += st
		}
	}
	for name, id := range ids {
		want, err := net.ExactMarginal(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(counts[id]) / samples
		if math.Abs(got-want.Data[1]) > 0.015 {
			t.Errorf("empirical P(%s=1) = %.4f, exact %.4f", name, got, want.Data[1])
		}
	}
}

func TestLearnParametersRecoversNetwork(t *testing.T) {
	// Parameters learned from many samples of a known network converge to
	// that network's CPTs.
	orig, ids := Sprinkler()
	rng := rand.New(rand.NewSource(3))
	data, err := orig.SampleN(rng, 30000)
	if err != nil {
		t.Fatal(err)
	}
	learned, err := LearnParameters(orig.StructureOf(), data, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, id := range ids {
		got := learned.Nodes[id].CPT
		want := orig.Nodes[id].CPT
		d, err := got.MaxDiff(want)
		if err != nil {
			t.Fatal(err)
		}
		if d > 0.03 {
			t.Errorf("learned CPT of %s off by %.4f", name, d)
		}
	}
	// Inference through the learned model agrees closely with the truth.
	gotM, err := learned.ExactMarginal(ids["Rain"], nil)
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := orig.ExactMarginal(ids["Rain"], nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotM.Data[1]-wantM.Data[1]) > 0.02 {
		t.Errorf("learned P(Rain) = %v, true %v", gotM.Data[1], wantM.Data[1])
	}
}

func TestLearnParametersSmoothing(t *testing.T) {
	s := Structure{
		Names:   []string{"A", "B"},
		Cards:   []int{2, 2},
		Parents: [][]int{nil, {0}},
	}
	// Only A=0 rows observed: the B|A=1 row is unseen.
	data := [][]int{{0, 1}, {0, 1}, {0, 0}}
	net, err := LearnParameters(s, data, 1)
	if err != nil {
		t.Fatal(err)
	}
	cpt := net.Nodes[1].CPT
	// Seen row with Laplace 1: counts (1, 2) + (1, 1) → (2/5, 3/5).
	if math.Abs(cpt.At(0, 1)-0.6) > 1e-12 {
		t.Errorf("P(B=1|A=0) = %v, want 0.6", cpt.At(0, 1))
	}
	// Unseen row smoothed to uniform.
	if math.Abs(cpt.At(1, 0)-0.5) > 1e-12 {
		t.Errorf("P(B=0|A=1) = %v, want 0.5", cpt.At(1, 0))
	}
	// With alpha=0 and an unseen row, fall back to uniform too.
	net0, err := LearnParameters(s, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(net0.Nodes[1].CPT.At(1, 0)-0.5) > 1e-12 {
		t.Error("unseen row not uniform under pure ML")
	}
	// Pure ML on the seen row: 1/3, 2/3.
	if math.Abs(net0.Nodes[1].CPT.At(0, 1)-2.0/3.0) > 1e-12 {
		t.Errorf("ML P(B=1|A=0) = %v", net0.Nodes[1].CPT.At(0, 1))
	}
}

func TestLearnParametersErrors(t *testing.T) {
	s := Structure{Names: []string{"A"}, Cards: []int{2}, Parents: [][]int{nil}}
	if _, err := LearnParameters(s, [][]int{{0, 1}}, 1); err == nil {
		t.Error("accepted wrong-width sample")
	}
	if _, err := LearnParameters(s, [][]int{{5}}, 1); err == nil {
		t.Error("accepted out-of-range state")
	}
	if _, err := LearnParameters(s, nil, -1); err == nil {
		t.Error("accepted negative smoothing")
	}
	bad := Structure{Names: []string{"A", "B"}, Cards: []int{2, 2}, Parents: [][]int{{1}, nil}}
	if _, err := LearnParameters(bad, nil, 1); err == nil {
		t.Error("accepted non-topological structure")
	}
	cyc := Structure{Names: []string{"A", "B"}, Cards: []int{2, 2}, Parents: [][]int{{1}, {0}}}
	if _, err := LearnParameters(cyc, nil, 1); err == nil {
		t.Error("accepted cyclic structure")
	}
	mismatch := Structure{Names: []string{"A"}, Cards: []int{2, 2}, Parents: [][]int{nil}}
	if _, err := LearnParameters(mismatch, nil, 1); err == nil {
		t.Error("accepted inconsistent structure sizes")
	}
}

func TestLogLikelihood(t *testing.T) {
	net, _ := Sprinkler()
	rng := rand.New(rand.NewSource(5))
	data, err := net.SampleN(rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	llTrue, err := net.LogLikelihood(data)
	if err != nil {
		t.Fatal(err)
	}
	if llTrue >= 0 {
		t.Errorf("log-likelihood %v not negative", llTrue)
	}
	// The true model should fit its own data at least as well as a
	// uniform-parameter model of the same structure.
	uniform, err := LearnParameters(net.StructureOf(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	llUniform, err := uniform.LogLikelihood(data)
	if err != nil {
		t.Fatal(err)
	}
	if llTrue <= llUniform {
		t.Errorf("true model ll %v not above uniform %v", llTrue, llUniform)
	}
	// Impossible data under a deterministic CPT → -Inf.
	det := New()
	det.MustAddNode("A", 2, nil, []float64{1, 0})
	ll, err := det.LogLikelihood([][]int{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ll, -1) {
		t.Errorf("impossible data ll = %v", ll)
	}
	if _, err := net.LogLikelihood([][]int{{0}}); err == nil {
		t.Error("accepted wrong-width sample")
	}
}

func TestStructureOfRoundTrip(t *testing.T) {
	net, _ := Asia()
	s := net.StructureOf()
	if len(s.Names) != net.N() {
		t.Fatal("structure size wrong")
	}
	for id := range s.Names {
		if s.Names[id] != net.Name(id) || s.Cards[id] != net.Nodes[id].Card {
			t.Errorf("structure mismatch at %d", id)
		}
	}
}
