// Package bayesnet implements discrete Bayesian networks and their
// compilation into junction trees via the Lauritzen–Spiegelhalter pipeline:
// moralization, triangulation with an elimination-order heuristic, maximal
// clique extraction, and maximum-spanning-tree join-tree construction.
//
// It also provides a brute-force joint-enumeration oracle used throughout
// the repository's tests to validate every propagation path, and the
// classic example networks (Asia, Sprinkler, Student).
package bayesnet

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"evprop/internal/potential"
)

// Node is one random variable of the network. CPT is the conditional
// probability table P(node | parents) stored as a potential over the sorted
// union of {parents, self}.
type Node struct {
	Name    string
	Card    int
	Parents []int
	CPT     *potential.Potential
}

// Network is a Bayesian network: a DAG of nodes with CPTs.
type Network struct {
	Nodes  []Node
	byName map[string]int
	// version counts structural mutations (node additions). Engines compiled
	// from this network compare it against the version they captured at
	// compile time to invalidate their result caches when the model moves on.
	version atomic.Int64
}

// Version returns the network's mutation counter. It changes whenever a node
// is added, so a cached inference result keyed to an older version is stale.
func (n *Network) Version() int64 { return n.version.Load() }

// New returns an empty network.
func New() *Network {
	return &Network{byName: map[string]int{}}
}

// AddNode appends a node and returns its id. dist is the flattened CPT with
// the parents' states (in the order given) as the slow indices and the
// node's own state as the fastest index; its length must be card × Π
// parent-cards, and each conditional row must be a distribution (checked by
// Validate, not here, so partially built networks stay usable).
func (n *Network) AddNode(name string, card int, parents []int, dist []float64) (int, error) {
	if card < 1 {
		return 0, fmt.Errorf("bayesnet: node %q has cardinality %d", name, card)
	}
	if _, dup := n.byName[name]; dup {
		return 0, fmt.Errorf("bayesnet: duplicate node name %q", name)
	}
	id := len(n.Nodes)
	want := card
	for _, p := range parents {
		if p < 0 || p >= id {
			return 0, fmt.Errorf("bayesnet: node %q has parent %d out of range (parents must be added first)", name, p)
		}
		want *= n.Nodes[p].Card
	}
	if len(dist) != want {
		return 0, fmt.Errorf("bayesnet: node %q CPT has %d entries, want %d", name, len(dist), want)
	}

	// Build the canonical potential over sorted {parents..., self}.
	family := append(append([]int(nil), parents...), id)
	sorted := append([]int(nil), family...)
	sort.Ints(sorted)
	card4 := func(v int) int {
		if v == id {
			return card
		}
		return n.Nodes[v].Card
	}
	cards := make([]int, len(sorted))
	for i, v := range sorted {
		cards[i] = card4(v)
	}
	cpt, err := potential.New(sorted, cards)
	if err != nil {
		return 0, fmt.Errorf("bayesnet: node %q: %w", name, err)
	}
	// Walk the input layout (parents in declared order, self fastest) and
	// scatter into the canonical layout.
	inCards := make([]int, len(family))
	for i, v := range family {
		inCards[i] = card4(v)
	}
	states := make([]int, len(family))      // states in input order
	canonical := make([]int, len(sorted))   // states in canonical order
	posOf := make(map[int]int, len(sorted)) // var -> canonical position
	for i, v := range sorted {
		posOf[v] = i
	}
	for idx := 0; idx < len(dist); idx++ {
		rem := idx
		for i := len(family) - 1; i >= 0; i-- {
			states[i] = rem % inCards[i]
			rem /= inCards[i]
		}
		for i, v := range family {
			canonical[posOf[v]] = states[i]
		}
		cpt.Data[cpt.IndexOf(canonical)] = dist[idx]
	}

	n.Nodes = append(n.Nodes, Node{
		Name:    name,
		Card:    card,
		Parents: append([]int(nil), parents...),
		CPT:     cpt,
	})
	n.byName[name] = id
	n.version.Add(1)
	return id, nil
}

// MustAddNode is AddNode panicking on error, for literals in examples and
// tests.
func (n *Network) MustAddNode(name string, card int, parents []int, dist []float64) int {
	id, err := n.AddNode(name, card, parents, dist)
	if err != nil {
		panic(err)
	}
	return id
}

// ID returns the id of the named node, or -1.
func (n *Network) ID(name string) int {
	if id, ok := n.byName[name]; ok {
		return id
	}
	return -1
}

// Name returns the name of node id.
func (n *Network) Name(id int) string { return n.Nodes[id].Name }

// N returns the number of nodes.
func (n *Network) N() int { return len(n.Nodes) }

// Validate checks that the network is a DAG (guaranteed by construction but
// re-checked for deserialized networks) and that every CPT row is a
// probability distribution within tolerance.
func (n *Network) Validate() error {
	for id, node := range n.Nodes {
		for _, p := range node.Parents {
			if p < 0 || p >= len(n.Nodes) || p == id {
				return fmt.Errorf("bayesnet: node %q has invalid parent %d", node.Name, p)
			}
		}
	}
	if _, err := n.TopologicalOrder(); err != nil {
		return err
	}
	for id, node := range n.Nodes {
		// Sum the CPT over the node's own states: every entry of the
		// result must be 1.
		parentsOnly := make([]int, 0, len(node.CPT.Vars)-1)
		for _, v := range node.CPT.Vars {
			if v != id {
				parentsOnly = append(parentsOnly, v)
			}
		}
		m, err := node.CPT.Marginal(parentsOnly)
		if err != nil {
			return fmt.Errorf("bayesnet: node %q CPT: %w", node.Name, err)
		}
		for _, s := range m.Data {
			if math.Abs(s-1) > 1e-9 {
				return fmt.Errorf("bayesnet: node %q CPT rows sum to %v, want 1", node.Name, s)
			}
		}
	}
	return nil
}

// TopologicalOrder returns the node ids parents-before-children.
func (n *Network) TopologicalOrder() ([]int, error) {
	indeg := make([]int, len(n.Nodes))
	children := make([][]int, len(n.Nodes))
	for id, node := range n.Nodes {
		indeg[id] = len(node.Parents)
		for _, p := range node.Parents {
			children[p] = append(children[p], id)
		}
	}
	queue := []int{}
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	order := make([]int, 0, len(n.Nodes))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, c := range children[u] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(n.Nodes) {
		return nil, fmt.Errorf("bayesnet: cycle detected")
	}
	return order, nil
}

// Joint computes the full joint distribution as one potential. It is the
// brute-force oracle: exponential in the number of variables, intended for
// networks of up to ~20 binary variables in tests.
func (n *Network) Joint() (*potential.Potential, error) {
	vars := make([]int, len(n.Nodes))
	card := make([]int, len(n.Nodes))
	for id, node := range n.Nodes {
		vars[id] = id
		card[id] = node.Card
	}
	joint, err := potential.NewConstant(vars, card, 1)
	if err != nil {
		return nil, err
	}
	for _, node := range n.Nodes {
		if err := joint.MulBy(node.CPT); err != nil {
			return nil, err
		}
	}
	return joint, nil
}

// ExactMarginal computes P(v | ev) by full joint enumeration — the test
// oracle for every propagation implementation in this repository.
func (n *Network) ExactMarginal(v int, ev potential.Evidence) (*potential.Potential, error) {
	joint, err := n.Joint()
	if err != nil {
		return nil, err
	}
	if err := joint.Reduce(ev); err != nil {
		return nil, err
	}
	m, err := joint.Marginal([]int{v})
	if err != nil {
		return nil, err
	}
	if err := m.Normalize(); err != nil {
		return nil, fmt.Errorf("bayesnet: evidence has zero probability: %w", err)
	}
	return m, nil
}

// Moralized returns the moral graph of the network as an adjacency-set
// slice: undirected edges between every parent-child pair and between every
// pair of parents of a common child ("marrying the parents").
func (n *Network) Moralized() []map[int]bool {
	adj := make([]map[int]bool, len(n.Nodes))
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	link := func(a, b int) {
		if a != b {
			adj[a][b] = true
			adj[b][a] = true
		}
	}
	for id, node := range n.Nodes {
		for i, p := range node.Parents {
			link(p, id)
			for _, q := range node.Parents[i+1:] {
				link(p, q)
			}
		}
	}
	return adj
}
