package bayesnet

import (
	"fmt"
	"math"
	"sort"
)

// ChowLiu learns the maximum-likelihood tree-structured Bayesian network
// from complete data (Chow & Liu, 1968): estimate all pairwise mutual
// informations from the samples, build a maximum-weight spanning tree over
// the variables, orient it away from the chosen root, and fit the CPTs
// with Laplace smoothing alpha.
//
// names and cards describe the variables (data columns); each sample is a
// complete assignment in column order.
func ChowLiu(names []string, cards []int, data [][]int, root int, alpha float64) (*Network, error) {
	nvar := len(names)
	if nvar == 0 {
		return nil, fmt.Errorf("bayesnet: chow-liu with no variables")
	}
	if len(cards) != nvar {
		return nil, fmt.Errorf("bayesnet: %d names but %d cardinalities", nvar, len(cards))
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("bayesnet: chow-liu needs data")
	}
	if root < 0 || root >= nvar {
		return nil, fmt.Errorf("bayesnet: root %d out of range", root)
	}
	for si, sample := range data {
		if len(sample) != nvar {
			return nil, fmt.Errorf("bayesnet: sample %d has %d values, want %d", si, len(sample), nvar)
		}
		for v, st := range sample {
			if st < 0 || st >= cards[v] {
				return nil, fmt.Errorf("bayesnet: sample %d: state %d out of range for variable %d", si, st, v)
			}
		}
	}

	// Pairwise empirical mutual informations.
	type edge struct {
		a, b int
		mi   float64
	}
	var edges []edge
	for a := 0; a < nvar; a++ {
		for b := a + 1; b < nvar; b++ {
			edges = append(edges, edge{a, b, empiricalMI(data, a, b, cards[a], cards[b])})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].mi != edges[j].mi {
			return edges[i].mi > edges[j].mi
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	// Kruskal maximum spanning tree.
	parent := make([]int, nvar)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	adj := make([][]int, nvar)
	added := 0
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			continue
		}
		parent[ra] = rb
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
		added++
		if added == nvar-1 {
			break
		}
	}

	// Orient away from the root (BFS) to get each node's tree parent.
	treeParent := make([]int, nvar)
	for i := range treeParent {
		treeParent[i] = -1
	}
	visited := make([]bool, nvar)
	queue := []int{root}
	visited[root] = true
	order := []int{}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				treeParent[v] = u
				queue = append(queue, v)
			}
		}
	}
	// Disconnected variables (possible with constant columns): roots of
	// their own, appended in index order.
	for v := 0; v < nvar; v++ {
		if !visited[v] {
			visited[v] = true
			order = append(order, v)
		}
	}

	// Build a structure in BFS order (parents precede children) and fit.
	pos := make([]int, nvar) // original variable -> new column
	for newID, v := range order {
		pos[v] = newID
	}
	s := Structure{
		Names:   make([]string, nvar),
		Cards:   make([]int, nvar),
		Parents: make([][]int, nvar),
	}
	for newID, v := range order {
		s.Names[newID] = names[v]
		s.Cards[newID] = cards[v]
		if p := treeParent[v]; p >= 0 {
			s.Parents[newID] = []int{pos[p]}
		}
	}
	remapped := make([][]int, len(data))
	for i, sample := range data {
		row := make([]int, nvar)
		for v, st := range sample {
			row[pos[v]] = st
		}
		remapped[i] = row
	}
	return LearnParameters(s, remapped, alpha)
}

// empiricalMI estimates I(a;b) in bits from sample counts.
func empiricalMI(data [][]int, a, b, cardA, cardB int) float64 {
	joint := make([]float64, cardA*cardB)
	pa := make([]float64, cardA)
	pb := make([]float64, cardB)
	n := float64(len(data))
	for _, sample := range data {
		joint[sample[a]*cardB+sample[b]]++
		pa[sample[a]]++
		pb[sample[b]]++
	}
	mi := 0.0
	for i := 0; i < cardA; i++ {
		for j := 0; j < cardB; j++ {
			pij := joint[i*cardB+j] / n
			if pij > 0 {
				mi += pij * math.Log2(pij*n*n/(pa[i]*pb[j]))
			}
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}
