package bayesnet

import (
	"math"
	"math/rand"
	"testing"
)

// chainTruth builds the tree-structured network A -> B -> C -> D with
// strong correlations so the tree is recoverable from samples.
func chainTruth() *Network {
	n := New()
	n.MustAddNode("A", 2, nil, []float64{0.4, 0.6})
	n.MustAddNode("B", 2, []int{0}, []float64{0.9, 0.1, 0.15, 0.85})
	n.MustAddNode("C", 2, []int{1}, []float64{0.85, 0.15, 0.2, 0.8})
	n.MustAddNode("D", 2, []int{2}, []float64{0.8, 0.2, 0.1, 0.9})
	return n
}

func TestChowLiuRecoversChain(t *testing.T) {
	truth := chainTruth()
	rng := rand.New(rand.NewSource(2))
	data, err := truth.SampleN(rng, 20000)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"A", "B", "C", "D"}
	cards := []int{2, 2, 2, 2}
	learned, err := ChowLiu(names, cards, data, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := learned.Validate(); err != nil {
		t.Fatal(err)
	}
	// The learned skeleton must be the chain A–B–C–D: each variable's
	// neighborhood in the learned tree matches the truth's undirected
	// adjacency.
	undirected := map[string]map[string]bool{}
	link := func(x, y string) {
		if undirected[x] == nil {
			undirected[x] = map[string]bool{}
		}
		undirected[x][y] = true
	}
	for id, node := range learned.Nodes {
		for _, p := range node.Parents {
			link(learned.Name(id), learned.Name(p))
			link(learned.Name(p), learned.Name(id))
		}
	}
	wantEdges := [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}}
	for _, e := range wantEdges {
		if !undirected[e[0]][e[1]] {
			t.Errorf("learned tree missing edge %s–%s", e[0], e[1])
		}
	}
	if undirected["A"]["C"] || undirected["A"]["D"] || undirected["B"]["D"] {
		t.Error("learned tree has a spurious edge")
	}
	// Its distribution is close to the truth.
	for _, name := range names {
		got, err := learned.ExactMarginal(learned.ID(name), nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := truth.ExactMarginal(truth.ID(name), nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Data[1]-want.Data[1]) > 0.02 {
			t.Errorf("P(%s) learned %.4f, true %.4f", name, got.Data[1], want.Data[1])
		}
	}
}

func TestChowLiuRecoversStar(t *testing.T) {
	// Hub H with three strongly-coupled leaves.
	truth := New()
	truth.MustAddNode("H", 2, nil, []float64{0.5, 0.5})
	for _, leaf := range []string{"X", "Y", "Z"} {
		truth.MustAddNode(leaf, 2, []int{0}, []float64{0.9, 0.1, 0.1, 0.9})
	}
	rng := rand.New(rand.NewSource(4))
	data, err := truth.SampleN(rng, 15000)
	if err != nil {
		t.Fatal(err)
	}
	learned, err := ChowLiu([]string{"H", "X", "Y", "Z"}, []int{2, 2, 2, 2}, data, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// H must be adjacent to every leaf in the learned tree.
	deg := map[string]int{}
	for id, node := range learned.Nodes {
		for _, p := range node.Parents {
			deg[learned.Name(id)]++
			deg[learned.Name(p)]++
		}
	}
	if deg["H"] != 3 {
		t.Errorf("hub degree = %d, want 3 (deg map %v)", deg["H"], deg)
	}
}

func TestChowLiuLogLikelihoodBeatsIndependent(t *testing.T) {
	truth := chainTruth()
	rng := rand.New(rand.NewSource(6))
	data, err := truth.SampleN(rng, 5000)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"A", "B", "C", "D"}
	cards := []int{2, 2, 2, 2}
	tree, err := ChowLiu(names, cards, data, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	indep, err := LearnParameters(Structure{
		Names: names, Cards: cards, Parents: [][]int{nil, nil, nil, nil},
	}, data, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Compare likelihood on the tree's column order (both models name the
	// same variables; remap data to each model's ids).
	remap := func(n *Network) [][]int {
		out := make([][]int, len(data))
		for i, sample := range data {
			row := make([]int, len(names))
			for col, name := range names {
				row[n.ID(name)] = sample[col]
			}
			out[i] = row
		}
		return out
	}
	llTree, err := tree.LogLikelihood(remap(tree))
	if err != nil {
		t.Fatal(err)
	}
	llIndep, err := indep.LogLikelihood(remap(indep))
	if err != nil {
		t.Fatal(err)
	}
	if llTree <= llIndep {
		t.Errorf("Chow-Liu ll %v not above independent %v", llTree, llIndep)
	}
}

func TestChowLiuErrors(t *testing.T) {
	if _, err := ChowLiu(nil, nil, nil, 0, 1); err == nil {
		t.Error("accepted zero variables")
	}
	if _, err := ChowLiu([]string{"A"}, []int{2}, nil, 0, 1); err == nil {
		t.Error("accepted empty data")
	}
	if _, err := ChowLiu([]string{"A"}, []int{2, 2}, [][]int{{0}}, 0, 1); err == nil {
		t.Error("accepted mismatched cards")
	}
	if _, err := ChowLiu([]string{"A"}, []int{2}, [][]int{{0}}, 5, 1); err == nil {
		t.Error("accepted out-of-range root")
	}
	if _, err := ChowLiu([]string{"A"}, []int{2}, [][]int{{3}}, 0, 1); err == nil {
		t.Error("accepted out-of-range state")
	}
	if _, err := ChowLiu([]string{"A", "B"}, []int{2, 2}, [][]int{{0}}, 0, 1); err == nil {
		t.Error("accepted short sample")
	}
}

func TestEmpiricalMI(t *testing.T) {
	// Perfectly correlated columns: 1 bit.
	data := [][]int{{0, 0}, {1, 1}, {0, 0}, {1, 1}}
	if mi := empiricalMI(data, 0, 1, 2, 2); math.Abs(mi-1) > 1e-12 {
		t.Errorf("MI(correlated) = %v", mi)
	}
	// Independent-looking columns: 0 bits.
	data = [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	if mi := empiricalMI(data, 0, 1, 2, 2); math.Abs(mi) > 1e-12 {
		t.Errorf("MI(independent) = %v", mi)
	}
}
