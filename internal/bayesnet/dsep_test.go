package bayesnet

import (
	"math"
	"testing"

	"evprop/internal/potential"
)

// chainNet builds A -> B -> C.
func chainNet() *Network {
	n := New()
	n.MustAddNode("A", 2, nil, []float64{0.3, 0.7})
	n.MustAddNode("B", 2, []int{0}, []float64{0.9, 0.1, 0.2, 0.8})
	n.MustAddNode("C", 2, []int{1}, []float64{0.6, 0.4, 0.1, 0.9})
	return n
}

// forkNet builds A <- B -> C.
func forkNet() *Network {
	n := New()
	n.MustAddNode("B", 2, nil, []float64{0.4, 0.6})
	n.MustAddNode("A", 2, []int{0}, []float64{0.9, 0.1, 0.2, 0.8})
	n.MustAddNode("C", 2, []int{0}, []float64{0.7, 0.3, 0.1, 0.9})
	return n
}

// colliderNet builds A -> C <- B, plus descendant D of C.
func colliderNet() *Network {
	n := New()
	n.MustAddNode("A", 2, nil, []float64{0.3, 0.7})
	n.MustAddNode("B", 2, nil, []float64{0.6, 0.4})
	n.MustAddNode("C", 2, []int{0, 1}, []float64{
		0.9, 0.1,
		0.5, 0.5,
		0.4, 0.6,
		0.1, 0.9,
	})
	n.MustAddNode("D", 2, []int{2}, []float64{0.8, 0.2, 0.3, 0.7})
	return n
}

func dsep(t *testing.T, n *Network, x, y, z []int) bool {
	t.Helper()
	ok, err := n.DSeparated(x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestDSeparationChain(t *testing.T) {
	n := chainNet()
	if dsep(t, n, []int{0}, []int{2}, nil) {
		t.Error("chain: A and C separated with nothing observed")
	}
	if !dsep(t, n, []int{0}, []int{2}, []int{1}) {
		t.Error("chain: A and C not separated given B")
	}
}

func TestDSeparationFork(t *testing.T) {
	n := forkNet()
	a, b, c := 1, 0, 2
	if dsep(t, n, []int{a}, []int{c}, nil) {
		t.Error("fork: A and C separated with nothing observed")
	}
	if !dsep(t, n, []int{a}, []int{c}, []int{b}) {
		t.Error("fork: A and C not separated given B")
	}
}

func TestDSeparationCollider(t *testing.T) {
	n := colliderNet()
	a, b, c, d := 0, 1, 2, 3
	if !dsep(t, n, []int{a}, []int{b}, nil) {
		t.Error("collider: A and B not separated marginally")
	}
	if dsep(t, n, []int{a}, []int{b}, []int{c}) {
		t.Error("collider: A and B separated given C (explaining away)")
	}
	// Observing a descendant of the collider also activates it.
	if dsep(t, n, []int{a}, []int{b}, []int{d}) {
		t.Error("collider: A and B separated given descendant D")
	}
}

func TestDSeparationAsia(t *testing.T) {
	n, ids := Asia()
	// Asia ⊥ Smoke marginally.
	if !dsep(t, n, []int{ids["Asia"]}, []int{ids["Smoke"]}, nil) {
		t.Error("Asia and Smoke not separated")
	}
	// Asia ⊥̸ Smoke given Dysp (collider chain activated).
	if dsep(t, n, []int{ids["Asia"]}, []int{ids["Smoke"]}, []int{ids["Dysp"]}) {
		t.Error("Asia and Smoke separated given Dysp")
	}
	// XRay ⊥ Smoke given TbOrCa.
	if !dsep(t, n, []int{ids["XRay"]}, []int{ids["Smoke"]}, []int{ids["TbOrCa"]}) {
		t.Error("XRay and Smoke not separated given TbOrCa")
	}
}

func TestDSeparationErrors(t *testing.T) {
	n := chainNet()
	if _, err := n.DSeparated([]int{0}, []int{0}, nil); err == nil {
		t.Error("accepted overlapping X and Y")
	}
	if _, err := n.DSeparated([]int{0}, []int{1}, []int{0}); err == nil {
		t.Error("accepted overlapping X and Z")
	}
	if _, err := n.DSeparated([]int{0}, []int{1}, []int{1}); err == nil {
		t.Error("accepted overlapping Y and Z")
	}
	if _, err := n.DSeparated([]int{99}, []int{1}, nil); err == nil {
		t.Error("accepted out-of-range node")
	}
	if _, err := n.ReachableFrom([]int{0}, []int{99}); err == nil {
		t.Error("accepted out-of-range conditioning node")
	}
}

// numericallyIndependent checks P(x,y|z) ≈ P(x|z)·P(y|z) for all states by
// joint enumeration.
func numericallyIndependent(t *testing.T, n *Network, x, y int, z []int) bool {
	t.Helper()
	joint, err := n.Joint()
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate conditioning states.
	zCard := 1
	for _, zv := range z {
		zCard *= n.Nodes[zv].Card
	}
	cfg := make([]int, len(z))
	for r := 0; r < zCard; r++ {
		rem := r
		ev := potential.Evidence{}
		for i := len(z) - 1; i >= 0; i-- {
			cfg[i] = rem % n.Nodes[z[i]].Card
			rem /= n.Nodes[z[i]].Card
			ev[z[i]] = cfg[i]
		}
		reduced := joint.Clone()
		if err := reduced.Reduce(ev); err != nil {
			t.Fatal(err)
		}
		if reduced.Sum() < 1e-12 {
			continue // conditioning event has zero probability
		}
		pxy, err := reduced.Marginal(sortedPair(x, y))
		if err != nil {
			t.Fatal(err)
		}
		if err := pxy.Normalize(); err != nil {
			t.Fatal(err)
		}
		px, err := pxy.Marginal([]int{x})
		if err != nil {
			t.Fatal(err)
		}
		py, err := pxy.Marginal([]int{y})
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < n.Nodes[x].Card; a++ {
			for b := 0; b < n.Nodes[y].Card; b++ {
				var got float64
				if x < y {
					got = pxy.At(a, b)
				} else {
					got = pxy.At(b, a)
				}
				if math.Abs(got-px.Data[a]*py.Data[b]) > 1e-9 {
					return false
				}
			}
		}
	}
	return true
}

func sortedPair(a, b int) []int {
	if a < b {
		return []int{a, b}
	}
	return []int{b, a}
}

func TestDSeparationSoundOnRandomNetworks(t *testing.T) {
	// d-separation must imply numerical conditional independence for every
	// parameterization; d-connection should break independence for generic
	// random CPTs.
	for seed := int64(1); seed <= 6; seed++ {
		n := RandomNetwork(7, 2, 2, seed)
		for x := 0; x < n.N(); x++ {
			for y := x + 1; y < n.N(); y++ {
				for _, z := range [][]int{nil, {pickOther(x, y, n.N())}} {
					sep, err := n.DSeparated([]int{x}, []int{y}, z)
					if err != nil {
						t.Fatal(err)
					}
					ci := numericallyIndependent(t, n, x, y, z)
					if sep && !ci {
						t.Errorf("seed %d: %d ⊥ %d | %v d-separated but numerically dependent", seed, x, y, z)
					}
				}
			}
		}
	}
}

func pickOther(x, y, n int) int {
	for v := 0; v < n; v++ {
		if v != x && v != y {
			return v
		}
	}
	return 0
}

func TestMarkovBlanket(t *testing.T) {
	n, ids := Asia()
	mb, err := n.MarkovBlanket(ids["Lung"])
	if err != nil {
		t.Fatal(err)
	}
	// Lung's blanket: parent Smoke, child TbOrCa, co-parent Tub.
	want := sortedPair(ids["Smoke"], ids["TbOrCa"])
	want = append(want, ids["Tub"])
	got := map[int]bool{}
	for _, v := range mb {
		got[v] = true
	}
	for _, v := range want {
		if !got[v] {
			t.Errorf("blanket %v missing %d", mb, v)
		}
	}
	if len(mb) != 3 {
		t.Errorf("blanket = %v, want 3 nodes", mb)
	}
	// The blanket must d-separate the node from everything else.
	var rest []int
	inMB := map[int]bool{}
	for _, v := range mb {
		inMB[v] = true
	}
	for v := 0; v < n.N(); v++ {
		if v != ids["Lung"] && !inMB[v] {
			rest = append(rest, v)
		}
	}
	if !dsep(t, n, []int{ids["Lung"]}, rest, mb) {
		t.Error("Markov blanket does not separate the node from the rest")
	}
	if _, err := n.MarkovBlanket(-1); err == nil {
		t.Error("accepted out-of-range node")
	}
}

func TestQuickMarkovBlanketSeparates(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		n := RandomNetwork(9, 2, 3, seed)
		for v := 0; v < n.N(); v++ {
			mb, err := n.MarkovBlanket(v)
			if err != nil {
				t.Fatal(err)
			}
			inMB := map[int]bool{v: true}
			for _, u := range mb {
				inMB[u] = true
			}
			var rest []int
			for u := 0; u < n.N(); u++ {
				if !inMB[u] {
					rest = append(rest, u)
				}
			}
			if len(rest) == 0 {
				continue
			}
			sep, err := n.DSeparated([]int{v}, rest, mb)
			if err != nil {
				t.Fatal(err)
			}
			if !sep {
				t.Errorf("seed %d: blanket of %d does not separate", seed, v)
			}
		}
	}
}
