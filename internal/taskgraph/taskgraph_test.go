package taskgraph

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"evprop/internal/bayesnet"
	"evprop/internal/jtree"
	"evprop/internal/potential"
)

func chainTree(t *testing.T, n int) *jtree.Tree {
	t.Helper()
	tr, err := jtree.Chain(n, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildTaskCount(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17} {
		tr := chainTree(t, n)
		g := Build(tr)
		if got, want := g.N(), 8*(n-1); got != want {
			t.Errorf("n=%d: %d tasks, want %d", n, got, want)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestBuildOnRandomTreesValidates(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr, err := jtree.Random(jtree.RandomConfig{N: 40, Width: 4, States: 2, Degree: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		g := Build(tr)
		if err := g.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestSourcesAreLeafCollectMarginalize(t *testing.T) {
	tr, err := jtree.Star(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(tr)
	for _, id := range g.Sources() {
		task := &g.Tasks[id]
		if task.Kind != Marginalize || task.Dir != Collect {
			t.Errorf("source task %s is not a collect marginalize", task)
		}
		if len(tr.Cliques[task.Source].Children) != 0 {
			t.Errorf("source task %s does not start at a leaf", task)
		}
	}
	if len(g.Sources()) != 4 {
		t.Errorf("star has %d sources, want 4", len(g.Sources()))
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	tr, err := jtree.Balanced(3, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(tr)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.N())
	for k, id := range order {
		pos[id] = k
	}
	for i := range g.Tasks {
		for _, s := range g.Tasks[i].Succs {
			if pos[i] >= pos[s] {
				t.Fatalf("task %s not before successor %s", &g.Tasks[i], &g.Tasks[s])
			}
		}
	}
}

func TestCollectBeforeDistributePerEdge(t *testing.T) {
	tr := chainTree(t, 6)
	g := Build(tr)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.N())
	for k, id := range order {
		pos[id] = k
	}
	// For each edge, the collect Multiply must precede the distribute
	// Marginalize of the same edge in every topological order induced by
	// the dependency structure — verify via reachability.
	reach := reachability(g)
	byEdge := map[int]map[string]int{}
	for i := range g.Tasks {
		task := &g.Tasks[i]
		key := task.Dir.String() + "/" + task.Kind.String()
		if byEdge[task.Edge] == nil {
			byEdge[task.Edge] = map[string]int{}
		}
		byEdge[task.Edge][key] = i
	}
	for edge, m := range byEdge {
		cu, du := m["collect/multiply"], m["distribute/marginalize"]
		if !reach[cu][du] {
			t.Errorf("edge %d: distribute marginalize not ordered after collect multiply", edge)
		}
	}
}

// reachability computes the transitive closure (small graphs only).
func reachability(g *Graph) []map[int]bool {
	order, _ := g.TopoOrder()
	reach := make([]map[int]bool, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		reach[id] = map[int]bool{}
		for _, s := range g.Tasks[id].Succs {
			reach[id][s] = true
			for r := range reach[s] {
				reach[id][r] = true
			}
		}
	}
	return reach
}

func TestMultipliesIntoSameCliqueOrdered(t *testing.T) {
	tr, err := jtree.Star(5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(tr)
	reach := reachability(g)
	var cus []int
	for i := range g.Tasks {
		task := &g.Tasks[i]
		if task.Kind == Multiply && task.Dir == Collect && task.Target == tr.Root {
			cus = append(cus, i)
		}
	}
	if len(cus) != 5 {
		t.Fatalf("found %d collect multiplies into root, want 5", len(cus))
	}
	for i := range cus {
		for j := range cus {
			if i != j && !reach[cus[i]][cus[j]] && !reach[cus[j]][cus[i]] {
				t.Errorf("multiplies %d and %d into the root are unordered (write race)", cus[i], cus[j])
			}
		}
	}
}

func TestLevels(t *testing.T) {
	tr := chainTree(t, 4)
	g := Build(tr)
	levels := g.Levels()
	total := 0
	for l, ids := range levels {
		total += len(ids)
		for _, id := range ids {
			for _, s := range g.Tasks[id].Succs {
				found := false
				for l2 := l + 1; l2 < len(levels); l2++ {
					for _, x := range levels[l2] {
						if x == s {
							found = true
						}
					}
				}
				if !found {
					t.Fatalf("successor of level-%d task not in a later level", l)
				}
			}
		}
	}
	if total != g.N() {
		t.Errorf("levels cover %d of %d tasks", total, g.N())
	}
}

func TestWeights(t *testing.T) {
	tr := chainTree(t, 3)
	g := Build(tr)
	if g.TotalWeight() <= 0 {
		t.Error("total weight not positive")
	}
	cp := g.CriticalPathWeight()
	if cp <= 0 || cp > g.TotalWeight()+1e-9 {
		t.Errorf("critical path %v vs total %v", cp, g.TotalWeight())
	}
	maxW := 0.0
	for i := range g.Tasks {
		if g.Tasks[i].Weight > maxW {
			maxW = g.Tasks[i].Weight
		}
	}
	if cp < maxW {
		t.Errorf("critical path %v below max task weight %v", cp, maxW)
	}
}

// TestGrains pins the split-alignment contract Build hands the scheduler:
// Marginalize and Extend carry the constant-run length of their clique ⊇
// separator alignment (recomputed here from the domains), while Divide and
// Multiply are purely contiguous and carry grain 1. Built from skeleton
// trees only — grains must not require materialized potentials.
func TestGrains(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tr, err := jtree.Random(jtree.RandomConfig{N: 30, Width: 5, States: 3, Degree: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		g := Build(tr)
		for i := range g.Tasks {
			task := &g.Tasks[i]
			c := task.Edge
			p := tr.Cliques[c].Parent
			var want int
			switch {
			case task.Kind == Divide || task.Kind == Multiply:
				want = 1
			case (task.Kind == Marginalize) == (task.Dir == Collect):
				// cm and de range over the child clique's table.
				want = potential.PartitionGrain(tr.Cliques[c].Vars, tr.Cliques[c].Card, tr.Cliques[c].SepVars)
			default:
				// ce and dm range over the parent clique's table.
				want = potential.PartitionGrain(tr.Cliques[p].Vars, tr.Cliques[p].Card, tr.Cliques[c].SepVars)
			}
			if task.Grain != want {
				t.Errorf("seed %d task %s: grain %d, want %d", seed, task, task.Grain, want)
			}
			if task.Grain < 1 {
				t.Errorf("seed %d task %s: non-positive grain %d", seed, task, task.Grain)
			}
		}
	}
	// Directed shape: in a chain tree the separator {i, i+1} is a *prefix*
	// of the child clique {i, i+1, i+2}, so child-aligned tasks (cm, de)
	// have one trailing variable absent — grain = its state count, 2 — while
	// the separator is a *suffix* of the parent clique {i-1, i, i+1}, so
	// parent-aligned tasks (ce, dm) are contiguous with grain 1.
	g := Build(chainTree(t, 3))
	for i := range g.Tasks {
		task := &g.Tasks[i]
		if task.Kind != Marginalize && task.Kind != Extend {
			continue
		}
		childAligned := (task.Kind == Marginalize) == (task.Dir == Collect)
		want := 1
		if childAligned {
			want = 2
		}
		if task.Grain != want {
			t.Errorf("chain task %s: grain %d, want %d", task, task.Grain, want)
		}
	}
}

func TestSingleCliqueGraphIsEmpty(t *testing.T) {
	tr := chainTree(t, 1)
	g := Build(tr)
	if g.N() != 0 {
		t.Errorf("single-clique graph has %d tasks", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("empty graph invalid: %v", err)
	}
}

func TestKindDirectionStrings(t *testing.T) {
	if Marginalize.String() != "marginalize" || Divide.String() != "divide" ||
		Extend.String() != "extend" || Multiply.String() != "multiply" {
		t.Error("Kind strings wrong")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind empty")
	}
	if Collect.String() != "collect" || Distribute.String() != "distribute" {
		t.Error("Direction strings wrong")
	}
}

// --- execution tests ---

func TestRunSerialMatchesOracleAsia(t *testing.T) {
	net, ids := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cases := []potential.Evidence{
		nil,
		{ids["XRay"]: 1},
		{ids["Asia"]: 1, ids["Smoke"]: 1},
		{ids["Dysp"]: 1, ids["Bronc"]: 0},
	}
	for ci, ev := range cases {
		g := Build(tr)
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.AbsorbEvidence(ev); err != nil {
			t.Fatal(err)
		}
		if err := st.RunSerial(); err != nil {
			t.Fatal(err)
		}
		for name, v := range ids {
			if _, fixed := ev[v]; fixed {
				continue
			}
			got, err := st.Marginal(v)
			if err != nil {
				t.Fatalf("case %d %s: %v", ci, name, err)
			}
			want, err := net.ExactMarginal(v, ev)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 1e-9) {
				t.Errorf("case %d: P(%s|e) = %v, oracle %v", ci, name, got.Data, want.Data)
			}
		}
	}
}

func TestRunSerialMatchesOracleRandomNetworks(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		net := bayesnet.RandomNetwork(9, 2, 2, seed)
		tr, err := net.Compile()
		if err != nil {
			t.Fatal(err)
		}
		g := Build(tr)
		st, err := g.NewState()
		if err != nil {
			t.Fatal(err)
		}
		ev := potential.Evidence{0: 1}
		if err := st.AbsorbEvidence(ev); err != nil {
			t.Fatal(err)
		}
		if err := st.RunSerial(); err != nil {
			t.Fatal(err)
		}
		for v := 1; v < net.N(); v++ {
			got, err := st.Marginal(v)
			if err != nil {
				t.Fatalf("seed %d var %d: %v", seed, v, err)
			}
			want, err := net.ExactMarginal(v, ev)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 1e-9) {
				t.Errorf("seed %d: P(%d|e) = %v, oracle %v", seed, v, got.Data, want.Data)
			}
		}
	}
}

func TestRunSerialCalibratesRandomTree(t *testing.T) {
	// After a full two-pass propagation every pair of adjacent cliques
	// must agree on their separator (Hugin calibration).
	tr, err := jtree.Random(jtree.RandomConfig{N: 25, Width: 4, States: 2, Degree: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.MaterializeRandom(7); err != nil {
		t.Fatal(err)
	}
	g := Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunSerial(); err != nil {
		t.Fatal(err)
	}
	for c := range tr.Cliques {
		p := tr.Cliques[c].Parent
		if p < 0 {
			continue
		}
		mc, err := st.Clique[c].Marginal(tr.Cliques[c].SepVars)
		if err != nil {
			t.Fatal(err)
		}
		mp, err := st.Clique[p].Marginal(tr.Cliques[c].SepVars)
		if err != nil {
			t.Fatal(err)
		}
		if err := mc.Normalize(); err != nil {
			t.Fatal(err)
		}
		if err := mp.Normalize(); err != nil {
			t.Fatal(err)
		}
		if !mc.Equal(mp, 1e-9) {
			t.Errorf("edge (%d,%d) not calibrated: %v vs %v", c, p, mc.Data, mp.Data)
		}
	}
	// All cliques must also agree on single-variable marginals.
	vars, _ := tr.Variables()
	for _, v := range vars {
		var ref *potential.Potential
		for c := range tr.Cliques {
			if !st.Clique[c].HasVar(v) {
				continue
			}
			m, err := st.Clique[c].Marginal([]int{v})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Normalize(); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = m
			} else if !ref.Equal(m, 1e-9) {
				t.Errorf("variable %d marginal differs across cliques", v)
			}
		}
	}
}

func TestPartitionedExecutionMatchesSerial(t *testing.T) {
	net, _ := bayesnet.Asia()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(tr)

	serial, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.RunSerial(); err != nil {
		t.Fatal(err)
	}

	parted, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 3
	for _, id := range order {
		size := parted.PartitionSize(id)
		var bufs []*potential.Potential
		for lo := 0; lo < size; lo += chunk {
			hi := lo + chunk
			if hi > size {
				hi = size
			}
			buf := parted.NewPartialBuffer(id)
			if err := parted.ExecutePiece(id, lo, hi, buf); err != nil {
				t.Fatalf("task %s piece [%d,%d): %v", &g.Tasks[id], lo, hi, err)
			}
			if buf != nil {
				bufs = append(bufs, buf)
			}
		}
		if err := parted.Combine(id, bufs); err != nil {
			t.Fatal(err)
		}
	}
	for i := range serial.Clique {
		if !serial.Clique[i].Equal(parted.Clique[i], 1e-9) {
			t.Errorf("clique %d differs between serial and partitioned execution", i)
		}
	}
}

func TestStateRequiresMaterializedTree(t *testing.T) {
	tr := chainTree(t, 3) // skeleton
	g := Build(tr)
	if _, err := g.NewState(); err == nil {
		t.Error("NewState accepted a skeleton tree")
	}
}

func TestAbsorbEvidenceErrors(t *testing.T) {
	tr := chainTree(t, 2)
	if err := tr.MaterializeUniform(); err != nil {
		t.Fatal(err)
	}
	g := Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AbsorbEvidence(potential.Evidence{0: 99}); err == nil {
		t.Error("accepted out-of-range evidence")
	}
}

func TestMarginalErrors(t *testing.T) {
	tr := chainTree(t, 2)
	if err := tr.MaterializeUniform(); err != nil {
		t.Fatal(err)
	}
	g := Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Marginal(10_000); err == nil {
		t.Error("Marginal of unknown variable succeeded")
	}
}

func TestPropagationPreservesTotalMass(t *testing.T) {
	// Without evidence, the root's total mass is invariant under
	// collection (messages are ratio-calibrated), so the normalizing
	// constant equals the original network mass.
	net, _ := bayesnet.Sprinkler()
	tr, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(tr)
	st, err := g.NewState()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunSerial(); err != nil {
		t.Fatal(err)
	}
	if got := st.Clique[tr.Root].Sum(); math.Abs(got-1) > 1e-9 {
		t.Errorf("root mass after propagation = %v, want 1", got)
	}
}

func TestWriteDOT(t *testing.T) {
	tr := chainTree(t, 3)
	g := Build(tr)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph taskgraph") {
		t.Error("missing digraph header")
	}
	if strings.Count(out, "->") == 0 {
		t.Error("no edges rendered")
	}
	for _, want := range []string{"marginalize", "divide", "extend", "multiply", "lightsalmon"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in DOT output", want)
		}
	}
}
