package taskgraph

import (
	"fmt"
	"sync"

	"evprop/internal/potential"
)

// Mode selects the semiring a State propagates over.
type Mode int

const (
	// SumProduct computes posterior marginals (ordinary evidence
	// propagation).
	SumProduct Mode = iota
	// MaxProduct computes max-marginals, turning propagation into a
	// most-probable-explanation solver: the Marginalize primitive
	// maximizes instead of summing; the other primitives are unchanged.
	MaxProduct
)

func (m Mode) String() string {
	if m == MaxProduct {
		return "max-product"
	}
	return "sum-product"
}

// State holds the working tables for one execution of a task graph: cloned
// clique and separator potentials plus the per-edge message and extension
// buffers. Two tasks may touch the same buffer only if the dependency graph
// orders them, so a State may be driven by any number of worker goroutines
// that respect the graph.
type State struct {
	g    *Graph
	mode Mode
	// Clique[i] is the working potential of clique i.
	Clique []*potential.Potential
	// Sep[c] is the stored separator potential ψS of the edge (c, parent).
	Sep []*potential.Potential
	// sepNew[c] receives the freshly marginalized ψ*S, then holds the
	// ratio ψ*S/ψS after the Divide step.
	sepNew []*potential.Potential
	// tempUp[c] / tempDown[c] receive the extension of the ratio onto the
	// parent's / child's domain.
	tempUp   []*potential.Potential
	tempDown []*potential.Potential
	// bufFree recycles the private accumulation buffers of partitioned
	// Marginalize tasks, per edge (both passes over an edge share one
	// separator domain). Buffers are handed out by NewPartialBuffer and
	// returned by Combine, so a pooled State reaches steady-state
	// propagation with no per-run buffer allocation.
	bufMu   sync.Mutex
	bufFree [][]*potential.Potential
}

// NewState allocates working storage for one sum-product propagation over
// the graph's tree, which must be materialized (clique and separator
// potentials non-nil). The tree itself is left untouched.
func (g *Graph) NewState() (*State, error) { return g.NewStateMode(SumProduct) }

// NewStateMode is NewState with an explicit semiring.
func (g *Graph) NewStateMode(mode Mode) (*State, error) {
	t := g.Tree
	st := &State{
		g:        g,
		mode:     mode,
		Clique:   make([]*potential.Potential, t.N()),
		Sep:      make([]*potential.Potential, t.N()),
		sepNew:   make([]*potential.Potential, t.N()),
		tempUp:   make([]*potential.Potential, t.N()),
		tempDown: make([]*potential.Potential, t.N()),
	}
	for i := range t.Cliques {
		c := &t.Cliques[i]
		if c.Pot == nil {
			return nil, fmt.Errorf("taskgraph: clique %d not materialized", i)
		}
		st.Clique[i] = c.Pot.Clone()
		if c.Parent < 0 {
			continue
		}
		if c.SepPot == nil {
			return nil, fmt.Errorf("taskgraph: clique %d separator not materialized", i)
		}
		st.Sep[i] = c.SepPot.Clone()
		st.sepNew[i] = c.SepPot.CloneZero()
		up, err := potential.New(t.Cliques[c.Parent].Vars, t.Cliques[c.Parent].Card)
		if err != nil {
			return nil, err
		}
		st.tempUp[i] = up
		down, err := potential.New(c.Vars, c.Card)
		if err != nil {
			return nil, err
		}
		st.tempDown[i] = down
	}
	return st, nil
}

// Reset re-primes a previously executed state for a fresh propagation with
// the given semiring, copying the tree's clique and separator potentials
// back into the existing tables without allocating. The sepNew buffers need
// no zeroing (Marginalize zeroes its destination before accumulating, both
// whole and via Combine) and the temp extension buffers are fully
// overwritten by Extend before Multiply reads them, so only the tables the
// previous run calibrated are restored. Reset plus reuse is the pooling
// layer that makes steady-state propagation near-allocation-free.
func (st *State) Reset(mode Mode) {
	st.mode = mode
	t := st.g.Tree
	for i := range t.Cliques {
		c := &t.Cliques[i]
		copy(st.Clique[i].Data, c.Pot.Data)
		if c.Parent < 0 {
			continue
		}
		copy(st.Sep[i].Data, c.SepPot.Data)
	}
}

// AbsorbEvidence reduces every working clique potential on the evidence.
// Call once before executing the graph.
func (st *State) AbsorbEvidence(ev potential.Evidence) error {
	for i, p := range st.Clique {
		if err := p.Reduce(ev); err != nil {
			return fmt.Errorf("taskgraph: clique %d: %w", i, err)
		}
	}
	return nil
}

// AbsorbLikelihood multiplies soft (virtual) evidence into the state: each
// variable's weight vector is applied to exactly one clique containing it
// (applying it more than once would square the weights).
func (st *State) AbsorbLikelihood(like potential.Likelihood) error {
	for v := range like {
		ci := st.g.Tree.CliqueOf(v)
		if ci < 0 {
			return fmt.Errorf("taskgraph: likelihood on unknown variable %d", v)
		}
		if err := st.Clique[ci].ApplyLikelihood(like, v); err != nil {
			return fmt.Errorf("taskgraph: clique %d: %w", ci, err)
		}
	}
	return nil
}

// Graph returns the graph this state executes.
func (st *State) Graph() *Graph { return st.g }

// Mode returns the semiring this state propagates over.
func (st *State) Mode() Mode { return st.mode }

// Execute runs the whole task (no partitioning).
func (st *State) Execute(id int) error {
	t := &st.g.Tasks[id]
	if t.Kind == Marginalize {
		dst := st.sepNew[t.Edge]
		for i := range dst.Data {
			dst.Data[i] = 0
		}
		return st.ExecutePiece(id, 0, st.PartitionSize(id), dst)
	}
	return st.ExecutePiece(id, 0, st.PartitionSize(id), nil)
}

// PartitionSize returns the length of the index range over which the task
// may be split into independent pieces.
func (st *State) PartitionSize(id int) int {
	t := &st.g.Tasks[id]
	switch t.Kind {
	case Marginalize:
		return st.Clique[t.Source].Len() // input-partitioned
	case Divide:
		return st.sepNew[t.Edge].Len()
	case Extend:
		if t.Dir == Collect {
			return st.tempUp[t.Edge].Len()
		}
		return st.tempDown[t.Edge].Len()
	case Multiply:
		return st.Clique[t.Target].Len()
	}
	return 0
}

// NewPartialBuffer returns a zeroed private accumulation buffer for a piece
// of a Marginalize task, and nil for every other kind (their pieces write
// disjoint output ranges and need no buffer). Buffers recycled by an
// earlier Combine on the same edge are reused before allocating; the method
// is safe for concurrent use by workers partitioning different tasks.
func (st *State) NewPartialBuffer(id int) *potential.Potential {
	t := &st.g.Tasks[id]
	if t.Kind != Marginalize {
		return nil
	}
	st.bufMu.Lock()
	if st.bufFree != nil {
		if free := st.bufFree[t.Edge]; len(free) > 0 {
			b := free[len(free)-1]
			free[len(free)-1] = nil
			st.bufFree[t.Edge] = free[:len(free)-1]
			st.bufMu.Unlock()
			for i := range b.Data {
				b.Data[i] = 0
			}
			return b
		}
	}
	st.bufMu.Unlock()
	return st.sepNew[t.Edge].CloneZero()
}

// recycleBuffers returns the piece buffers of a combined Marginalize task to
// the per-edge free list for reuse by a later partitioning of either pass
// over the same edge.
func (st *State) recycleBuffers(edge int, bufs []*potential.Potential) {
	if len(bufs) == 0 {
		return
	}
	st.bufMu.Lock()
	if st.bufFree == nil {
		st.bufFree = make([][]*potential.Potential, st.g.Tree.N())
	}
	st.bufFree[edge] = append(st.bufFree[edge], bufs...)
	st.bufMu.Unlock()
}

// ExecutePiece runs the [lo,hi) slice of the task. For Marginalize, buf is
// the accumulation target (a private buffer from NewPartialBuffer, or the
// shared sepNew buffer when running unpartitioned); other kinds ignore buf.
func (st *State) ExecutePiece(id, lo, hi int, buf *potential.Potential) error {
	t := &st.g.Tasks[id]
	switch t.Kind {
	case Marginalize:
		if buf == nil {
			return fmt.Errorf("taskgraph: marginalize piece without buffer")
		}
		if st.mode == MaxProduct {
			return st.Clique[t.Source].MaxMarginalInto(buf, lo, hi)
		}
		return st.Clique[t.Source].MarginalInto(buf, lo, hi)
	case Divide:
		return st.divideRange(t.Edge, lo, hi)
	case Extend:
		ratio := st.sepNew[t.Edge]
		if t.Dir == Collect {
			return ratio.ExtendInto(st.tempUp[t.Edge], lo, hi)
		}
		return ratio.ExtendInto(st.tempDown[t.Edge], lo, hi)
	case Multiply:
		if t.Dir == Collect {
			return st.Clique[t.Target].MulRange(st.tempUp[t.Edge], lo, hi)
		}
		return st.Clique[t.Target].MulRange(st.tempDown[t.Edge], lo, hi)
	}
	return fmt.Errorf("taskgraph: unknown kind %v", t.Kind)
}

// Combine finishes a partitioned Marginalize: it zeroes the shared sepNew
// buffer and adds every private piece buffer into it. For other kinds it
// is a no-op (their pieces already wrote the output).
func (st *State) Combine(id int, bufs []*potential.Potential) error {
	t := &st.g.Tasks[id]
	if t.Kind != Marginalize {
		return nil
	}
	dst := st.sepNew[t.Edge]
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for _, b := range bufs {
		if st.mode == MaxProduct {
			if err := dst.MaxWith(b); err != nil {
				return err
			}
		} else if err := dst.Add(b); err != nil {
			return err
		}
	}
	st.recycleBuffers(t.Edge, bufs)
	return nil
}

// divideRange performs the fused Divide step over separator entries
// [lo,hi): ratio = ψ*S / ψS with 0/0 = 0, storing the ratio in sepNew and
// the new ψ*S into the stored separator, as Eq. 1 of the paper requires.
func (st *State) divideRange(edge, lo, hi int) error {
	num := st.sepNew[edge].Data
	den := st.Sep[edge].Data
	if lo < 0 || hi < lo || hi > len(num) {
		return fmt.Errorf("taskgraph: divide range [%d,%d) invalid for %d entries", lo, hi, len(num))
	}
	for i := lo; i < hi; i++ {
		fresh := num[i]
		if den[i] == 0 {
			num[i] = 0
		} else {
			num[i] = fresh / den[i]
		}
		den[i] = fresh
	}
	return nil
}

// RunSerial executes every task in topological order on this state. It is
// the reference executor; all parallel schedulers must produce bitwise the
// same clique potentials (up to floating-point associativity in partitioned
// marginalizations).
func (st *State) RunSerial() error {
	order, err := st.g.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		if err := st.Execute(id); err != nil {
			return fmt.Errorf("taskgraph: task %s: %w", st.g.Tasks[id].String(), err)
		}
	}
	return nil
}

// The calibration surface below lets engine code read a completed
// propagation without knowing whether it was produced eagerly (this type)
// or lazily (internal/lazy, which materializes tables on demand). On the
// eager state every table already holds its final value, so these are
// trivial accessors.

// CliquePot returns clique ci's potential table after propagation.
func (st *State) CliquePot(ci int) (*potential.Potential, error) {
	if ci < 0 || ci >= len(st.Clique) {
		return nil, fmt.Errorf("taskgraph: clique %d out of range", ci)
	}
	return st.Clique[ci], nil
}

// SepPot returns the stored separator potential of the edge above clique
// ci (ci must not be the root).
func (st *State) SepPot(ci int) (*potential.Potential, error) {
	if ci < 0 || ci >= len(st.Sep) || st.Sep[ci] == nil {
		return nil, fmt.Errorf("taskgraph: no separator above clique %d", ci)
	}
	return st.Sep[ci], nil
}

// EvidenceMass returns the total mass of the root clique after collect —
// the unnormalized probability of the absorbed evidence.
func (st *State) EvidenceMass() float64 {
	return st.Clique[st.g.Tree.Root].Sum()
}

// MassScale is the factor absolute table values must be multiplied by to
// recover true (unnormalized) probabilities. Eager propagation never skips
// a message, so its tables are exact and the scale is 1. Lazy propagation
// elides scalar-only messages and reports the product of the elided
// scalars here.
func (st *State) MassScale() float64 { return 1 }

// Calibrate is a no-op on the eager state: a full two-pass propagation
// leaves every clique and separator calibrated already.
func (st *State) Calibrate() error { return nil }

// Marginal extracts the normalized posterior of variable v from the state
// after propagation, by marginalizing a clique that contains v.
func (st *State) Marginal(v int) (*potential.Potential, error) {
	ci := st.g.Tree.CliqueOf(v)
	if ci < 0 {
		return nil, fmt.Errorf("taskgraph: no clique contains variable %d", v)
	}
	m, err := st.Clique[ci].Marginal([]int{v})
	if err != nil {
		return nil, err
	}
	if err := m.Normalize(); err != nil {
		return nil, fmt.Errorf("taskgraph: variable %d has zero posterior mass (impossible evidence?): %w", v, err)
	}
	return m, nil
}
