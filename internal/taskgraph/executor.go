package taskgraph

import "evprop/internal/potential"

// Executor is the surface the schedulers drive: a task graph plus the
// ability to execute its tasks whole, in range pieces with partial-result
// buffers, or serially. *State is the eager implementation (full-table
// Hugin propagation); internal/lazy provides a pruning implementation whose
// graphs contain only the messages a query's evidence actually perturbs.
//
// The contract the schedulers rely on:
//
//   - Graph() is immutable for the lifetime of the run.
//   - Execute(id) runs one task to completion.
//   - PartitionSize(id) is the length of the index range ExecutePiece
//     accepts for the task; a task is partitionable when it exceeds the
//     scheduler's δ threshold. Implementations return 1 (or any value ≤ δ)
//     for tasks that must never be split.
//   - ExecutePiece(id, lo, hi, buf) runs the [lo,hi) slice of the task.
//     buf is the piece's private partial-result buffer for reduction tasks
//     (marginalize), nil for in-place tasks.
//   - NewPartialBuffer(id) returns a zeroed reduction buffer for one piece
//     of the task, or nil when the task reduces nothing and pieces may run
//     in place.
//   - Combine(id, bufs) folds the partial buffers of a partitioned task
//     into its destination; it is called exactly once per partitioned task,
//     after every piece completed, with the buffers in completion order.
//   - RunSerial() executes the whole graph on the calling goroutine in
//     topological order.
//
// Tasks connected by graph edges are ordered by the scheduler
// (happens-before via its dependency counters), so an implementation may
// let dependent tasks share mutable tables without further locking, exactly
// as *State does.
type Executor interface {
	Graph() *Graph
	Execute(id int) error
	ExecutePiece(id, lo, hi int, buf *potential.Potential) error
	PartitionSize(id int) int
	NewPartialBuffer(id int) *potential.Potential
	Combine(id int, bufs []*potential.Potential) error
	RunSerial() error
}
