// Package taskgraph constructs the task dependency graph of Section 5 of
// the paper: evidence propagation in a junction tree is decomposed into a
// DAG whose nodes are node-level primitives (marginalization, division,
// extension, multiplication) and whose edges are precedence constraints.
//
// The graph is built in two steps, mirroring the paper exactly. First the
// *clique updating graph*: the junction tree is updated twice, evidence
// flowing from the leaves to the root (collection) and back from the root
// to the leaves (distribution). Second, each clique update is expanded into
// its *local task dependency graph*: a message over edge (parent P, child C)
// with separator S runs
//
//	ψ*S  = marginalize(ψsource onto S)   (Marginalize)
//	ρ    = ψ*S / ψS ;  ψS ← ψ*S          (Divide)
//	τ    = extend(ρ onto vars(target))    (Extend)
//	ψtgt ← ψtgt · τ                       (Multiply)
//
// A Graph is pure structure plus weights: it can be built from a skeleton
// tree (no potentials) and fed to the simulated-multicore machine, or
// paired with a State (allocated working tables) and executed for real by
// the schedulers in internal/sched and internal/baseline.
package taskgraph

import (
	"fmt"
	"io"
	"strings"

	"evprop/internal/jtree"
	"evprop/internal/potential"
)

// Kind identifies the node-level primitive a task performs.
type Kind int

const (
	Marginalize Kind = iota
	Divide
	Extend
	Multiply

	// NumKinds is the number of primitive kinds, for arrays indexed by Kind
	// (per-kind time breakdowns in sched.WorkerMetrics and internal/obs).
	NumKinds = 4
)

func (k Kind) String() string {
	switch k {
	case Marginalize:
		return "marginalize"
	case Divide:
		return "divide"
	case Extend:
		return "extend"
	case Multiply:
		return "multiply"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Direction distinguishes the two passes of evidence propagation.
type Direction int

const (
	// Collect propagates evidence from the leaves toward the root.
	Collect Direction = iota
	// Distribute propagates evidence from the root back to the leaves.
	Distribute
)

func (d Direction) String() string {
	if d == Collect {
		return "collect"
	}
	return "distribute"
}

// Task is one node of the dependency graph.
type Task struct {
	ID     int
	Kind   Kind
	Dir    Direction
	Edge   int // child-clique id identifying the tree edge (child, parent)
	Source int // clique read by Marginalize / holding the message origin
	Target int // clique written by Multiply / holding the message target
	Weight float64
	// Grain is the preferred split alignment (in table entries) for the
	// scheduler's δ-partitioning: the constant-run length of the task's
	// kernel (potential.PartitionGrain), so split points land on run
	// boundaries and no two pieces reduce into the same destination cell.
	// 1 for purely contiguous kernels (Divide, Multiply, and Extend/
	// Marginalize whose trailing variables are shared), where any split
	// point costs the same. 0 on hand-built graphs means "unknown" and is
	// treated as 1.
	Grain int
	Succs []int
	NDeps int // number of predecessors
}

// Graph is the full task dependency graph for one junction tree.
type Graph struct {
	Tree  *jtree.Tree
	Tasks []Task
}

// taskIdx addresses the 4 collect + 4 distribute tasks of one edge.
type taskIdx struct{ cm, cd, ce, cu, dm, dd, de, du int }

// Build constructs the full two-pass dependency graph for the given
// (possibly skeleton) junction tree. A tree with a single clique yields an
// empty graph.
func Build(t *jtree.Tree) *Graph { return build(t, true) }

// BuildCollectOnly constructs only the collection pass (leaves to root).
// After executing it, the root clique — and only the root clique — holds
// the evidence-calibrated potential, which suffices to answer queries about
// the root clique's variables with roughly half the work of a full
// propagation.
func BuildCollectOnly(t *jtree.Tree) *Graph { return build(t, false) }

func build(t *jtree.Tree, withDistribute bool) *Graph {
	g := &Graph{Tree: t}
	idx := make(map[int]taskIdx) // child clique id -> its edge's tasks

	add := func(k Kind, d Direction, edge, source, target int, w float64, grain int) int {
		id := len(g.Tasks)
		g.Tasks = append(g.Tasks, Task{
			ID: id, Kind: k, Dir: d, Edge: edge, Source: source, Target: target,
			Weight: w, Grain: grain,
		})
		return id
	}
	dep := func(from, to int) {
		g.Tasks[from].Succs = append(g.Tasks[from].Succs, to)
		g.Tasks[to].NDeps++
	}

	// Create the eight tasks of every edge. Edges are identified by the
	// child clique id in the *current* rooting.
	for c := range t.Cliques {
		p := t.Cliques[c].Parent
		if p < 0 {
			continue
		}
		childSize := float64(t.Cliques[c].TableSize())
		parentSize := float64(t.Cliques[p].TableSize())
		sepSize := float64(t.Cliques[c].SepSize())
		// Kernel grains: Marginalize and Extend range over a clique table
		// aligned against the edge's separator, so their grain is the
		// constant-run length of that (clique ⊇ separator) pair. Divide runs
		// elementwise over the separator and Multiply multiplies a clique by
		// a same-domain extension buffer — both purely contiguous, grain 1.
		childGrain := potential.PartitionGrain(t.Cliques[c].Vars, t.Cliques[c].Card, t.Cliques[c].SepVars)
		parentGrain := potential.PartitionGrain(t.Cliques[p].Vars, t.Cliques[p].Card, t.Cliques[c].SepVars)
		ti := taskIdx{
			cm: add(Marginalize, Collect, c, c, p, childSize, childGrain),
			cd: add(Divide, Collect, c, c, p, sepSize, 1),
			ce: add(Extend, Collect, c, c, p, parentSize, parentGrain),
			cu: add(Multiply, Collect, c, c, p, parentSize, 1),
			dm: -1, dd: -1, de: -1, du: -1,
		}
		if withDistribute {
			ti.dm = add(Marginalize, Distribute, c, p, c, parentSize, parentGrain)
			ti.dd = add(Divide, Distribute, c, p, c, sepSize, 1)
			ti.de = add(Extend, Distribute, c, p, c, childSize, childGrain)
			ti.du = add(Multiply, Distribute, c, p, c, childSize, 1)
		}
		// Local chains: M -> D -> E -> U in both directions.
		dep(ti.cm, ti.cd)
		dep(ti.cd, ti.ce)
		dep(ti.ce, ti.cu)
		if withDistribute {
			dep(ti.dm, ti.dd)
			dep(ti.dd, ti.de)
			dep(ti.de, ti.du)
		}
		idx[c] = ti
	}

	// Cross-edge dependencies.
	for c := range t.Cliques {
		children := t.Cliques[c].Children
		// Serialize the collection multiplies into clique c: they all write
		// ψc, so they form a chain (the paper's local task graph orders the
		// per-clique updates).
		for i := 1; i < len(children); i++ {
			dep(idx[children[i-1]].cu, idx[children[i]].cu)
		}
		lastCU := -1
		if len(children) > 0 {
			lastCU = idx[children[len(children)-1]].cu
		}

		if p := t.Cliques[c].Parent; p >= 0 {
			ti := idx[c]
			// c's upward marginalization waits for all collection updates
			// into c (transitively via the last element of the chain).
			if lastCU >= 0 {
				dep(lastCU, ti.cm)
			}
			if !withDistribute {
				continue
			}
			// The downward marginalization toward c reads ψp, which must
			// be fully updated first.
			if gp := t.Cliques[p].Parent; gp >= 0 {
				dep(idx[p].du, ti.dm)
			} else {
				// p is the root: it is ready once every collection update
				// into it has run.
				rc := t.Cliques[p].Children
				if len(rc) > 0 {
					dep(idx[rc[len(rc)-1]].cu, ti.dm)
				}
			}
			// No explicit ordering is needed for the downward multiply
			// into ψc: it transitively follows c's upward marginalization
			// (dm waits for the parent's update, which waits for cm), and
			// the only other writers of ψc — c's children's collection
			// multiplies — already precede cm.
		}
	}
	return g
}

// N returns the number of tasks.
func (g *Graph) N() int { return len(g.Tasks) }

// Sources returns the ids of tasks with no dependencies (initially ready).
func (g *Graph) Sources() []int {
	var out []int
	for i := range g.Tasks {
		if g.Tasks[i].NDeps == 0 {
			out = append(out, i)
		}
	}
	return out
}

// DepCounts returns a fresh slice of the per-task dependency counts,
// suitable for one execution of the graph.
func (g *Graph) DepCounts() []int32 {
	out := make([]int32, len(g.Tasks))
	for i := range g.Tasks {
		out[i] = int32(g.Tasks[i].NDeps)
	}
	return out
}

// TotalWeight returns the sum of all task weights (serial work).
func (g *Graph) TotalWeight() float64 {
	w := 0.0
	for i := range g.Tasks {
		w += g.Tasks[i].Weight
	}
	return w
}

// CriticalPathWeight returns the weight of the heaviest dependency chain,
// the lower bound on any schedule's makespan in weight units.
func (g *Graph) CriticalPathWeight() float64 {
	order, _ := g.TopoOrder()
	longest := make([]float64, len(g.Tasks))
	best := 0.0
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		t := &g.Tasks[id]
		m := 0.0
		for _, s := range t.Succs {
			if longest[s] > m {
				m = longest[s]
			}
		}
		longest[id] = t.Weight + m
		if longest[id] > best {
			best = longest[id]
		}
	}
	return best
}

// TopoOrder returns a topological order of the tasks, or an error if the
// graph has a cycle (which would indicate a construction bug).
func (g *Graph) TopoOrder() ([]int, error) {
	deps := g.DepCounts()
	queue := make([]int, 0, len(g.Tasks))
	for i, d := range deps {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, len(g.Tasks))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range g.Tasks[id].Succs {
			deps[s]--
			if deps[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(g.Tasks) {
		return nil, fmt.Errorf("taskgraph: cycle detected (%d of %d tasks ordered)", len(order), len(g.Tasks))
	}
	return order, nil
}

// Levels partitions the tasks into dependency levels: level 0 holds the
// sources, level k the tasks whose longest predecessor chain has k edges.
// This is the schedule shape of the OpenMP-style level-synchronous
// baseline.
func (g *Graph) Levels() [][]int {
	order, _ := g.TopoOrder()
	level := make([]int, len(g.Tasks))
	maxLevel := 0
	for _, id := range order {
		for _, s := range g.Tasks[id].Succs {
			if level[id]+1 > level[s] {
				level[s] = level[id] + 1
			}
		}
		if level[id] > maxLevel {
			maxLevel = level[id]
		}
	}
	out := make([][]int, maxLevel+1)
	for id, l := range level {
		out[l] = append(out[l], id)
	}
	return out
}

// Validate checks structural invariants: acyclicity, in-degree consistency
// and positive weights.
func (g *Graph) Validate() error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	indeg := make([]int, len(g.Tasks))
	for i := range g.Tasks {
		for _, s := range g.Tasks[i].Succs {
			if s < 0 || s >= len(g.Tasks) {
				return fmt.Errorf("taskgraph: task %d has successor %d out of range", i, s)
			}
			indeg[s]++
		}
	}
	for i := range g.Tasks {
		if indeg[i] != g.Tasks[i].NDeps {
			return fmt.Errorf("taskgraph: task %d NDeps=%d but in-degree=%d", i, g.Tasks[i].NDeps, indeg[i])
		}
		if g.Tasks[i].Weight <= 0 {
			return fmt.Errorf("taskgraph: task %d has weight %v", i, g.Tasks[i].Weight)
		}
	}
	return nil
}

// String summarizes a task for logs and test failures.
func (t *Task) String() string {
	return fmt.Sprintf("#%d %s/%s edge=%d %d->%d w=%.0f",
		t.ID, t.Dir, t.Kind, t.Edge, t.Source, t.Target, t.Weight)
}

// WriteDOT renders the dependency graph in Graphviz DOT form, one node per
// task colored by direction and shaped by primitive kind — a debugging and
// documentation aid (`dot -Tsvg`).
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph taskgraph {\n  rankdir=TB;\n  node [fontsize=9];\n")
	for i := range g.Tasks {
		t := &g.Tasks[i]
		shape := "box"
		switch t.Kind {
		case Marginalize:
			shape = "invtrapezium"
		case Divide:
			shape = "diamond"
		case Extend:
			shape = "trapezium"
		}
		color := "lightblue"
		if t.Dir == Distribute {
			color = "lightsalmon"
		}
		fmt.Fprintf(&b, "  t%d [label=\"%s\\n%s e%d w=%.0f\" shape=%s style=filled fillcolor=%s];\n",
			t.ID, t.Kind, t.Dir, t.Edge, t.Weight, shape, color)
	}
	for i := range g.Tasks {
		for _, s := range g.Tasks[i].Succs {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", i, s)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
