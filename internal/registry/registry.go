// Package registry manages many named Bayesian-network models inside one
// serving process: N tenants × M model versions behind a single evserve.
//
// Each model is a sequence of immutable versions. A version bundles a
// network with its compiled engine (and therefore its own result cache and
// flight recorder — cache entries can never cross model or version
// boundaries, because the cache lives inside the engine). Compilation
// always happens in the background, off the request path; when it
// finishes, the new version is published with one atomic pointer swap.
// Queries already in flight keep the version they acquired and drain
// against it; the swapped-out version's pooled state is released only
// after the last such query completes:
//
//	compile (background) → publish (atomic swap) → drain (refcount) → release
//
// Acquire/Release are wait-free on the hot path: an acquire is one atomic
// load plus one increment, with a re-check that detects a concurrent swap.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"evprop"
)

// Typed errors the serving layer maps onto HTTP statuses.
var (
	// ErrNotFound reports a model name with no registry entry.
	ErrNotFound = errors.New("registry: model not found")
	// ErrNotReady reports a model whose first compile has not finished
	// (or failed — see Model info for the cause).
	ErrNotReady = errors.New("registry: model not ready")
	// ErrBadName reports a model name outside [A-Za-z0-9._-]{1,64}.
	ErrBadName = errors.New("registry: bad model name")
)

// Registry is a concurrent set of named models. All methods are safe for
// concurrent use; the query path (Acquire) never blocks on the control
// path (Load/Reload/Delete), which mutates through atomic publication.
type Registry struct {
	opts evprop.Options // compile-options template shared by every model
	mu   sync.RWMutex
	m    map[string]*Model
}

// New returns an empty registry. Every model compiles with the given
// options (workers, scheduler, cache size, recorder configuration).
func New(opts evprop.Options) *Registry {
	return &Registry{opts: opts, m: map[string]*Model{}}
}

// Version is one immutable published build of a model: the source network,
// its compiled engine, and drain bookkeeping. The engine's result cache
// and flight recorder belong to exactly this version, so a swapped-out
// version's cache is structurally fenced out — no later query can reach it.
type Version struct {
	Net    *evprop.Network
	Engine *evprop.Engine
	// ID increases by one per publish within a model.
	ID int64
	// Published is the swap instant; CompileTime how long Compile took.
	Published   time.Time
	CompileTime time.Duration

	// refs counts the publisher (1) plus every in-flight acquire. When it
	// reaches zero — the version was swapped out and the last query
	// drained — the engine's cache is invalidated and its pooled state
	// released, exactly once.
	refs    atomic.Int64
	retired sync.Once
}

// release drops one reference; the zero crossing retires the version.
func (v *Version) release() {
	if v.refs.Add(-1) == 0 {
		v.retired.Do(func() {
			v.Engine.InvalidateCache()
			v.Engine.Close()
		})
	}
}

// Model is one named entry: an atomically swappable current version plus
// the retained source that Reload recompiles from.
type Model struct {
	name string
	cur  atomic.Pointer[Version]

	// compiling counts in-flight background compiles (a reload can overlap
	// the tail of an upload; compileMu serializes the publish order).
	compiling atomic.Int64
	compileMu sync.Mutex

	// mu guards src, lastErr and nextID (control path only).
	mu      sync.Mutex
	src     Source
	lastErr error
	nextID  int64

	// deleted blocks publishes that race a Delete: a compile finishing
	// after its model was removed must release its engine, not resurrect
	// the entry.
	deleted atomic.Bool
}

// Name returns the model's registry name.
func (m *Model) Name() string { return m.name }

// State describes a model's lifecycle for listings.
type State string

const (
	// StateReady means a version is published and serving.
	StateReady State = "ready"
	// StateCompiling means no version is live yet and a compile is running.
	StateCompiling State = "compiling"
	// StateFailed means no version is live and the last compile errored.
	StateFailed State = "failed"
)

// Info is one model's listing entry.
type Info struct {
	Name   string `json:"name"`
	State  State  `json:"state"`
	Source string `json:"source"`
	// Version, Variables, CompileUsec and PublishedUnix describe the
	// current version; zero while none is published.
	Version       int64   `json:"version"`
	Variables     int     `json:"variables"`
	CompileUsec   float64 `json:"compile_usec"`
	PublishedUnix int64   `json:"published_unix"`
	// Reloading is true while a background compile runs behind a live
	// version; Error carries the last compile failure, if any.
	Reloading bool   `json:"reloading,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Info snapshots the model's lifecycle state.
func (m *Model) Info() Info {
	info := Info{Name: m.name}
	m.mu.Lock()
	info.Source = m.src.String()
	if m.lastErr != nil {
		info.Error = m.lastErr.Error()
	}
	m.mu.Unlock()
	compiling := m.compiling.Load() > 0
	if v := m.cur.Load(); v != nil {
		info.State = StateReady
		info.Version = v.ID
		info.Variables = len(v.Net.Variables())
		info.CompileUsec = float64(v.CompileTime.Nanoseconds()) / 1e3
		info.PublishedUnix = v.Published.Unix()
		info.Reloading = compiling
		return info
	}
	if compiling {
		info.State = StateCompiling
	} else {
		info.State = StateFailed
	}
	return info
}

// validName bounds model names to one safe path segment: 1–64 bytes of
// [A-Za-z0-9._-], so a name is usable verbatim in URLs, metric labels and
// file names.
func validName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		switch c := name[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// model returns the named entry.
func (r *Registry) model(name string) (*Model, error) {
	r.mu.RLock()
	m, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return m, nil
}

// Acquire pins the model's current version for one query. The returned
// release function MUST be called when the query finishes — it is what
// lets a swapped-out version drain and free its pooled state. The hot
// path is wait-free: load, increment, re-check.
func (r *Registry) Acquire(name string) (*Version, func(), error) {
	m, err := r.model(name)
	if err != nil {
		return nil, nil, err
	}
	for {
		v := m.cur.Load()
		if v == nil {
			m.mu.Lock()
			lastErr := m.lastErr
			m.mu.Unlock()
			if lastErr != nil && m.compiling.Load() == 0 {
				return nil, nil, fmt.Errorf("%w: %q: %v", ErrNotReady, name, lastErr)
			}
			return nil, nil, fmt.Errorf("%w: %q (compiling)", ErrNotReady, name)
		}
		v.refs.Add(1)
		if m.cur.Load() == v {
			return v, v.release, nil
		}
		// A swap won the race between the load and the increment; this
		// version may already be retiring. Drop the speculative ref and
		// retry against the new current.
		v.release()
	}
}

// Current returns the model's live version without pinning it — for
// stats and listings only; never propagate on it.
func (r *Registry) Current(name string) (*Version, error) {
	m, err := r.model(name)
	if err != nil {
		return nil, err
	}
	v := m.cur.Load()
	if v == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotReady, name)
	}
	return v, nil
}

// CurrentVersions returns each ready model's live version keyed by model
// name, unpinned — for stats and metrics aggregation only; use Acquire
// before propagating.
func (r *Registry) CurrentVersions() map[string]*Version {
	r.mu.RLock()
	models := make([]*Model, 0, len(r.m))
	for _, m := range r.m {
		models = append(models, m)
	}
	r.mu.RUnlock()
	out := make(map[string]*Version, len(models))
	for _, m := range models {
		if v := m.cur.Load(); v != nil {
			out[m.name] = v
		}
	}
	return out
}

// List returns every model's Info, sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	models := make([]*Model, 0, len(r.m))
	for _, m := range r.m {
		models = append(models, m)
	}
	r.mu.RUnlock()
	out := make([]Info, len(models))
	for i, m := range models {
		out[i] = m.Info()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Load registers (or replaces the source of) the named model and starts a
// background compile of a new version from src. It returns immediately;
// the returned channel yields the compile's outcome exactly once and is
// never closed without a value. Queries keep hitting the previous version
// until the new one publishes.
func (r *Registry) Load(name string, src Source) (<-chan error, error) {
	if !validName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	r.mu.Lock()
	m, ok := r.m[name]
	if !ok {
		m = &Model{name: name}
		r.m[name] = m
	}
	r.mu.Unlock()
	m.mu.Lock()
	m.src = src
	m.mu.Unlock()
	return r.compileAsync(m, src), nil
}

// LoadSync is Load waiting for the compile: the boot path, where
// readiness must mean "every configured model answers queries".
func (r *Registry) LoadSync(name string, src Source) error {
	done, err := r.Load(name, src)
	if err != nil {
		return err
	}
	return <-done
}

// Reload recompiles the named model from its retained source — for file
// sources that re-reads the file, so an edited BIF on disk becomes a new
// version. Background, like Load.
func (r *Registry) Reload(name string) (<-chan error, error) {
	m, err := r.model(name)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	src := m.src
	m.mu.Unlock()
	return r.compileAsync(m, src), nil
}

// compileAsync runs parse+compile on its own goroutine and publishes the
// result. The returned channel (capacity 1) receives the outcome.
func (r *Registry) compileAsync(m *Model, src Source) <-chan error {
	m.compiling.Add(1)
	done := make(chan error, 1)
	go func() {
		done <- r.compile(m, src)
		m.compiling.Add(-1)
	}()
	return done
}

// compile is the background build: load the source, compile the engine,
// publish the version, begin draining the old one. compileMu serializes
// overlapping builds of one model so publishes cannot interleave.
func (r *Registry) compile(m *Model, src Source) error {
	m.compileMu.Lock()
	defer m.compileMu.Unlock()
	start := time.Now()
	net, err := src.Instantiate()
	if err == nil {
		var eng *evprop.Engine
		if eng, err = net.Compile(r.opts); err == nil {
			v := &Version{
				Net:         net,
				Engine:      eng,
				Published:   time.Now(),
				CompileTime: time.Since(start),
			}
			v.refs.Store(1) // the publisher's reference
			m.mu.Lock()
			m.nextID++
			v.ID = m.nextID
			m.lastErr = nil
			m.mu.Unlock()
			if m.deleted.Load() {
				// Lost a race with Delete: never publish, release now.
				v.release()
				return fmt.Errorf("%w: %q", ErrNotFound, m.name)
			}
			old := m.cur.Swap(v)
			if old != nil {
				// Drop the publisher's ref; the version retires when the
				// last in-flight query releases it.
				old.release()
			}
			return nil
		}
	}
	m.mu.Lock()
	m.lastErr = err
	m.mu.Unlock()
	return err
}

// Delete removes the model. The current version drains and releases once
// its in-flight queries finish; new Acquires fail with ErrNotFound
// immediately.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	m, ok := r.m[name]
	if ok {
		delete(r.m, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	m.deleted.Store(true)
	if old := m.cur.Swap(nil); old != nil {
		old.release()
	}
	return nil
}

// Close drains and releases every model, for process shutdown.
func (r *Registry) Close() {
	r.mu.Lock()
	models := make([]*Model, 0, len(r.m))
	for _, m := range r.m {
		models = append(models, m)
	}
	r.m = map[string]*Model{}
	r.mu.Unlock()
	for _, m := range models {
		m.deleted.Store(true)
		if old := m.cur.Swap(nil); old != nil {
			old.release()
		}
	}
}
