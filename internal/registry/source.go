package registry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"evprop"
)

// Source describes where a model's network comes from, retained by the
// registry so Reload can rebuild the model later. File sources re-read
// the file on every compile (that is what makes POST /reload pick up an
// edited BIF); inline sources re-parse the retained upload bytes.
type Source struct {
	// Kind is one of "builtin", "random", "bif", "xmlbif", "inline-bif",
	// "inline-xmlbif", "literal".
	Kind string
	// Name selects the builtin ("asia", "sprinkler", "student").
	Name string
	// Path locates a file source.
	Path string
	// Data holds an uploaded document for inline sources.
	Data []byte
	// Nodes and Seed parameterize the random generator.
	Nodes int
	Seed  int64
	// net backs a literal source (an already-built in-memory network).
	net *evprop.Network
}

// LiteralSource wraps an already-built network — programmatic callers and
// tests. Reload recompiles the same in-memory network (networks are not
// mutated by serving, so versions may share one).
func LiteralSource(net *evprop.Network, desc string) Source {
	return Source{Kind: "literal", Name: desc, net: net}
}

// BuiltinSource names one of the compiled-in example networks.
func BuiltinSource(name string) Source { return Source{Kind: "builtin", Name: name} }

// RandomSource parameterizes the synthetic layered-network generator.
func RandomSource(nodes int, seed int64) Source {
	return Source{Kind: "random", Nodes: nodes, Seed: seed}
}

// FileSource loads a BIF or XMLBIF file, picking the parser from the
// extension (.xml/.xmlbif → XMLBIF, anything else → BIF).
func FileSource(path string) Source {
	if isXMLPath(path) {
		return Source{Kind: "xmlbif", Path: path}
	}
	return Source{Kind: "bif", Path: path}
}

// InlineSource retains an uploaded document. xml selects the XMLBIF
// parser; otherwise the textual BIF parser.
func InlineSource(data []byte, xml bool) Source {
	kind := "inline-bif"
	if xml {
		kind = "inline-xmlbif"
	}
	return Source{Kind: kind, Data: append([]byte(nil), data...)}
}

func isXMLPath(path string) bool {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".xml", ".xmlbif":
		return true
	}
	return false
}

// String renders the source for listings ("bif:models/alarm.bif").
func (s Source) String() string {
	switch s.Kind {
	case "builtin":
		return "builtin:" + s.Name
	case "random":
		return fmt.Sprintf("random:nodes=%d,seed=%d", s.Nodes, s.Seed)
	case "bif", "xmlbif":
		return s.Kind + ":" + s.Path
	case "inline-bif", "inline-xmlbif":
		return fmt.Sprintf("%s:%d bytes", s.Kind, len(s.Data))
	case "literal":
		return "literal:" + s.Name
	}
	return "unknown"
}

// Instantiate builds a fresh Network from the source. Each call returns a
// new instance: versions must never share mutable network state.
func (s Source) Instantiate() (*evprop.Network, error) {
	switch s.Kind {
	case "builtin":
		switch s.Name {
		case "asia":
			return evprop.Asia(), nil
		case "sprinkler":
			return evprop.Sprinkler(), nil
		case "student":
			return evprop.Student(), nil
		}
		return nil, fmt.Errorf("registry: unknown builtin network %q", s.Name)
	case "random":
		return evprop.RandomNetwork(s.Nodes, 2, 3, s.Seed), nil
	case "bif", "xmlbif":
		f, err := os.Open(s.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if s.Kind == "xmlbif" {
			net, _, err := evprop.ParseXMLBIF(f)
			return net, err
		}
		net, _, err := evprop.ParseBIF(f)
		return net, err
	case "inline-bif":
		net, _, err := evprop.ParseBIF(bytes.NewReader(s.Data))
		return net, err
	case "inline-xmlbif":
		net, _, err := evprop.ParseXMLBIF(bytes.NewReader(s.Data))
		return net, err
	case "literal":
		if s.net == nil {
			return nil, fmt.Errorf("registry: literal source has no network")
		}
		return s.net, nil
	}
	return nil, fmt.Errorf("registry: unknown source kind %q", s.Kind)
}

// modelExts are the file extensions LoadDir picks up.
func isModelFile(name string) bool {
	switch strings.ToLower(filepath.Ext(name)) {
	case ".bif", ".xml", ".xmlbif":
		return true
	}
	return false
}

// LoadDir registers every model file (*.bif, *.xml, *.xmlbif) in dir,
// named by file basename without extension, compiling them concurrently
// and waiting for all. It fails if any file fails to parse or compile, or
// if two files map to the same model name.
func (r *Registry) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	type pending struct {
		name string
		done <-chan error
	}
	var loads []pending
	seen := map[string]string{}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && isModelFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, file := range names {
		name := strings.TrimSuffix(file, filepath.Ext(file))
		if prev, dup := seen[name]; dup {
			return fmt.Errorf("registry: model %q defined by both %s and %s", name, prev, file)
		}
		seen[name] = file
		done, err := r.Load(name, FileSource(filepath.Join(dir, file)))
		if err != nil {
			return fmt.Errorf("registry: %s: %w", file, err)
		}
		loads = append(loads, pending{name: name, done: done})
	}
	if len(loads) == 0 {
		return fmt.Errorf("registry: no model files (*.bif, *.xml) in %s", dir)
	}
	for _, p := range loads {
		if err := <-p.done; err != nil {
			return fmt.Errorf("registry: model %q: %w", p.name, err)
		}
	}
	return nil
}
