package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evprop"
)

// writeModelFile serializes a builtin network into dir in the requested
// format so LoadDir exercises both parsers.
func writeModelFile(t *testing.T, dir, name string, net *evprop.Network, xml bool) string {
	t.Helper()
	ext := ".bif"
	if xml {
		ext = ".xml"
	}
	path := filepath.Join(dir, name+ext)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if xml {
		err = net.WriteXMLBIF(f, name, nil)
	} else {
		err = net.WriteBIF(f, name, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSourceInstantiate(t *testing.T) {
	for _, src := range []Source{
		BuiltinSource("asia"),
		BuiltinSource("sprinkler"),
		BuiltinSource("student"),
		RandomSource(12, 7),
	} {
		n, err := src.Instantiate()
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	if _, err := BuiltinSource("bogus").Instantiate(); err == nil {
		t.Error("unknown builtin accepted")
	}
	if _, err := (Source{Kind: "bogus"}).Instantiate(); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := FileSource("/does/not/exist.bif").Instantiate(); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFileSourceFormats(t *testing.T) {
	dir := t.TempDir()
	bif := writeModelFile(t, dir, "asia", evprop.Asia(), false)
	xml := writeModelFile(t, dir, "asia2", evprop.Asia(), true)
	for _, path := range []string{bif, xml} {
		n, err := FileSource(path).Instantiate()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got := len(n.Variables()); got != 8 {
			t.Errorf("%s: %d variables, want 8", path, got)
		}
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	writeModelFile(t, dir, "asia", evprop.Asia(), false)
	writeModelFile(t, dir, "sprinkler", evprop.Sprinkler(), true)
	// Non-model files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(evprop.Options{Workers: 2})
	defer r.Close()
	if err := r.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "asia" || names[1] != "sprinkler" {
		t.Fatalf("Names = %v", names)
	}
	for _, name := range names {
		if _, release, err := r.Acquire(name); err != nil {
			t.Errorf("%s: %v", name, err)
		} else {
			release()
		}
	}
}

func TestLoadDirErrors(t *testing.T) {
	r := New(evprop.Options{Workers: 1})
	defer r.Close()
	if err := r.LoadDir("/does/not/exist"); err == nil {
		t.Error("missing dir accepted")
	}
	empty := t.TempDir()
	if err := r.LoadDir(empty); err == nil || !strings.Contains(err.Error(), "no model files") {
		t.Errorf("empty dir error = %v", err)
	}
	dup := t.TempDir()
	writeModelFile(t, dup, "m", evprop.Asia(), false)
	writeModelFile(t, dup, "m", evprop.Asia(), true)
	if err := r.LoadDir(dup); err == nil || !strings.Contains(err.Error(), "defined by both") {
		t.Errorf("duplicate-name error = %v", err)
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "broken.bif"), []byte("not a bif"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadDir(bad); err == nil {
		t.Error("unparseable model accepted")
	}
}

// TestReloadPicksUpFileEdit: editing the file on disk and reloading
// publishes a new version built from the new contents.
func TestReloadPicksUpFileEdit(t *testing.T) {
	dir := t.TempDir()
	path := writeModelFile(t, dir, "m", rainNet(0.2), false)
	r := New(evprop.Options{Workers: 2})
	defer r.Close()
	if err := r.LoadSync("m", FileSource(path)); err != nil {
		t.Fatal(err)
	}
	v1, _ := r.Current("m")
	// Rewrite the file with different parameters, then reload.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rainNet(0.7).WriteBIF(f, "m", nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	done, err := r.Reload("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	v2, _ := r.Current("m")
	if v2.ID != v1.ID+1 {
		t.Fatalf("version %d after reload, want %d", v2.ID, v1.ID+1)
	}
	post, err := v2.Engine.Query(evprop.Evidence{"Wet": 1}, "Rain")
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := rainNet(0.7).ExactMarginal("Rain", evprop.Evidence{"Wet": 1})
	if post["Rain"][1] != oracle[1] {
		t.Errorf("reloaded posterior %v, want %v", post["Rain"], oracle)
	}
}
