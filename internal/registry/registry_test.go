package registry

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"evprop"
)

// rainNet builds a two-variable network whose posterior P(Rain | Wet=1)
// is controlled by pRain, so different "versions" of the same model give
// distinguishable answers.
func rainNet(pRain float64) *evprop.Network {
	n := evprop.NewNetwork()
	n.MustAddVariable("Rain", 2, nil, []float64{1 - pRain, pRain})
	n.MustAddVariable("Wet", 2, []string{"Rain"}, []float64{
		0.9, 0.1,
		0.2, 0.8,
	})
	return n
}

// netSource adapts a literal network into a Source via WriteBIF, so the
// registry exercises its real parse path.
func netSource(t *testing.T, n *evprop.Network) Source {
	t.Helper()
	var buf bifBuffer
	if err := n.WriteBIF(&buf, "test", nil); err != nil {
		t.Fatal(err)
	}
	return InlineSource(buf.b, false)
}

type bifBuffer struct{ b []byte }

func (w *bifBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func TestLoadAcquireRelease(t *testing.T) {
	r := New(evprop.Options{Workers: 2})
	defer r.Close()
	if err := r.LoadSync("default", BuiltinSource("asia")); err != nil {
		t.Fatal(err)
	}
	v, release, err := r.Acquire("default")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if v.ID != 1 {
		t.Errorf("first version ID = %d, want 1", v.ID)
	}
	post, err := v.Engine.Query(evprop.Evidence{"XRay": 1}, "Lung")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := evprop.Asia().ExactMarginal("Lung", evprop.Evidence{"XRay": 1})
	if math.Abs(post["Lung"][1]-want[1]) > 1e-9 {
		t.Errorf("posterior %v, oracle %v", post["Lung"], want)
	}
	if _, _, err := r.Acquire("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown model error = %v, want ErrNotFound", err)
	}
	info := r.List()
	if len(info) != 1 || info[0].State != StateReady || info[0].Version != 1 {
		t.Errorf("List = %+v", info)
	}
}

func TestBadNameAndFailedCompile(t *testing.T) {
	r := New(evprop.Options{Workers: 1})
	defer r.Close()
	if _, err := r.Load("no/slash", BuiltinSource("asia")); !errors.Is(err, ErrBadName) {
		t.Errorf("bad name error = %v", err)
	}
	if err := r.LoadSync("broken", InlineSource([]byte("not a bif"), false)); err == nil {
		t.Fatal("parse failure did not surface")
	}
	if _, _, err := r.Acquire("broken"); !errors.Is(err, ErrNotReady) {
		t.Errorf("failed model acquire error = %v, want ErrNotReady", err)
	}
	if got := r.List()[0].State; got != StateFailed {
		t.Errorf("state %q, want failed", got)
	}
	// A later good load heals the model.
	if err := r.LoadSync("broken", BuiltinSource("sprinkler")); err != nil {
		t.Fatal(err)
	}
	if _, release, err := r.Acquire("broken"); err != nil {
		t.Fatal(err)
	} else {
		release()
	}
}

// TestSwapDrainRelease verifies the publish → drain → release lifecycle:
// an in-flight query pins the old version across a swap, the old cache is
// fenced out only after the last release, and new acquires see the new
// version immediately.
func TestSwapDrainRelease(t *testing.T) {
	r := New(evprop.Options{Workers: 2, CacheSize: 64})
	defer r.Close()
	if err := r.LoadSync("m", netSource(t, rainNet(0.2))); err != nil {
		t.Fatal(err)
	}
	old, releaseOld, err := r.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the old version's cache so retirement is observable.
	res, err := old.Engine.Propagate(evprop.Evidence{"Wet": 1})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if old.Engine.CacheStats().Entries == 0 {
		t.Fatal("cache did not warm")
	}
	if err := r.LoadSync("m", netSource(t, rainNet(0.7))); err != nil {
		t.Fatal(err)
	}
	cur, releaseCur, err := r.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	defer releaseCur()
	if cur.ID != old.ID+1 {
		t.Errorf("version after swap %d, want %d", cur.ID, old.ID+1)
	}
	// The drained-out version still answers while pinned, and its cache
	// is intact: in-flight queries finish against the engine they started
	// on.
	post, err := old.Engine.Query(evprop.Evidence{"Wet": 1}, "Rain")
	if err != nil {
		t.Fatalf("pinned old version failed: %v", err)
	}
	oracleOld, _ := rainNet(0.2).ExactMarginal("Rain", evprop.Evidence{"Wet": 1})
	if math.Abs(post["Rain"][1]-oracleOld[1]) > 1e-9 {
		t.Errorf("old-version posterior %v, oracle %v", post["Rain"], oracleOld)
	}
	// Last reference gone → the old version retires: cache fenced out.
	releaseOld()
	deadline := time.Now().Add(2 * time.Second)
	for old.Engine.CacheStats().Entries != 0 {
		if time.Now().After(deadline) {
			t.Fatal("old version's cache never fenced out after drain")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHotSwapRace hammers one model with concurrent queries while its
// versions swap between two distinguishable networks. Loss-free means:
// zero failed queries, and every answer bit-identical to exactly one of
// the two versions' oracles — never a cross-version mix, never a stale
// cache hit (each version's cache belongs to its own engine).
func TestHotSwapRace(t *testing.T) {
	r := New(evprop.Options{Workers: 2, CacheSize: 64})
	defer r.Close()
	srcA, srcB := netSource(t, rainNet(0.2)), netSource(t, rainNet(0.7))
	if err := r.LoadSync("m", srcA); err != nil {
		t.Fatal(err)
	}
	oracleA, _ := rainNet(0.2).ExactMarginal("Rain", evprop.Evidence{"Wet": 1})
	oracleB, _ := rainNet(0.7).ExactMarginal("Rain", evprop.Evidence{"Wet": 1})

	const (
		clients   = 8
		perClient = 150
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries, matchedA, matchedB, swaps atomic.Int64
	errc := make(chan error, clients+1)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				v, release, err := r.Acquire("m")
				if err != nil {
					errc <- err
					return
				}
				post, err := v.Engine.Query(evprop.Evidence{"Wet": 1}, "Rain")
				release()
				if err != nil {
					errc <- err
					return
				}
				queries.Add(1)
				switch p := post["Rain"][1]; {
				case p == oracleA[1]:
					matchedA.Add(1)
				case p == oracleB[1]:
					matchedB.Add(1)
				default:
					errc <- errors.New("posterior matches neither version's oracle")
					return
				}
			}
		}()
	}
	// Swap back and forth for as long as the clients run: every compile
	// publishes a fresh engine (and fresh cache) under live load.
	var swapWg sync.WaitGroup
	swapWg.Add(1)
	go func() {
		defer swapWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src := srcA
			if i%2 == 0 {
				src = srcB
			}
			if err := r.LoadSync("m", src); err != nil {
				errc <- err
				return
			}
			swaps.Add(1)
		}
	}()
	wg.Wait()
	close(stop)
	swapWg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := queries.Load(); got != clients*perClient {
		t.Fatalf("%d queries completed, want %d (lossy swap)", got, clients*perClient)
	}
	if swaps.Load() == 0 {
		t.Fatal("no version swaps happened under load")
	}
	if matchedA.Load()+matchedB.Load() != queries.Load() {
		t.Fatal("answer accounting does not add up")
	}
	t.Logf("queries=%d swaps=%d matchedA=%d matchedB=%d",
		queries.Load(), swaps.Load(), matchedA.Load(), matchedB.Load())
}

// TestPerModelCacheIsolation is the differential check that per-model
// caches never serve another model's posterior: two models share variable
// names and evidence (identical evidence signatures), yet warm cached
// answers always match their own model's oracle.
func TestPerModelCacheIsolation(t *testing.T) {
	r := New(evprop.Options{Workers: 2, CacheSize: 64})
	defer r.Close()
	if err := r.LoadSync("a", netSource(t, rainNet(0.2))); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadSync("b", netSource(t, rainNet(0.7))); err != nil {
		t.Fatal(err)
	}
	oracle := map[string][]float64{}
	for name, p := range map[string]float64{"a": 0.2, "b": 0.7} {
		m, _ := rainNet(p).ExactMarginal("Rain", evprop.Evidence{"Wet": 1})
		oracle[name] = m
	}
	// Interleave repeatedly so both caches are warm and consulted.
	for i := 0; i < 10; i++ {
		for _, name := range []string{"a", "b"} {
			v, release, err := r.Acquire(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := v.Engine.Propagate(evprop.Evidence{"Wet": 1})
			if err != nil {
				t.Fatal(err)
			}
			post, err := res.Posterior("Rain")
			if err != nil {
				t.Fatal(err)
			}
			res.Close()
			release()
			if post[1] != oracle[name][1] {
				t.Fatalf("round %d: model %q posterior %v, own oracle %v (cross-model cache hit?)",
					i, name, post, oracle[name])
			}
		}
	}
	for _, name := range []string{"a", "b"} {
		v, _ := r.Current(name)
		if cs := v.Engine.CacheStats(); cs.Hits == 0 {
			t.Errorf("model %q: cache never hit (hits=%d misses=%d)", name, cs.Hits, cs.Misses)
		}
	}
}

func TestDeleteDrains(t *testing.T) {
	r := New(evprop.Options{Workers: 1})
	defer r.Close()
	if err := r.LoadSync("m", BuiltinSource("sprinkler")); err != nil {
		t.Fatal(err)
	}
	v, release, err := r.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("m"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Acquire("m"); !errors.Is(err, ErrNotFound) {
		t.Errorf("post-delete acquire error = %v, want ErrNotFound", err)
	}
	// The pinned version still answers, then drains on release.
	if _, err := v.Engine.Query(evprop.Evidence{}, "Rain"); err != nil {
		t.Errorf("pinned version after delete: %v", err)
	}
	release()
	if err := r.Delete("m"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete error = %v, want ErrNotFound", err)
	}
}

// TestDeleteRacesCompile: a compile finishing after Delete must not
// resurrect the model.
func TestDeleteRacesCompile(t *testing.T) {
	r := New(evprop.Options{Workers: 1})
	defer r.Close()
	for i := 0; i < 10; i++ {
		done, err := r.Load("m", BuiltinSource("asia"))
		if err != nil {
			t.Fatal(err)
		}
		_ = r.Delete("m") // may beat or lose to the compile
		<-done
		if _, _, err := r.Acquire("m"); err == nil {
			// Compile won the publish race against a Delete that already
			// removed the entry from the map — the Acquire must still fail
			// because the map entry is gone.
			t.Fatal("deleted model still acquirable")
		}
	}
}
