package cache

import (
	"math"
	"testing"

	"evprop/internal/potential"
)

func TestSignatureInsertionOrderCanonical(t *testing.T) {
	// Two maps built in opposite insertion orders must share a signature.
	a := potential.Evidence{}
	for i := 0; i < 20; i++ {
		a[i] = i % 3
	}
	b := potential.Evidence{}
	for i := 19; i >= 0; i-- {
		b[i] = i % 3
	}
	la := potential.Likelihood{4: {0.25, 0.75}, 9: {1, 2, 3}}
	lb := potential.Likelihood{9: {1, 2, 3}, 4: {0.25, 0.75}}
	if Signature(0, a, la) != Signature(0, b, lb) {
		t.Fatal("equal evidence in different insertion orders produced different signatures")
	}
}

func TestSignatureDistinguishes(t *testing.T) {
	base := Signature(0, potential.Evidence{1: 0, 2: 1}, nil)
	distinct := []string{
		Signature(1, potential.Evidence{1: 0, 2: 1}, nil),                          // mode
		Signature(0, potential.Evidence{1: 1, 2: 1}, nil),                          // state
		Signature(0, potential.Evidence{1: 0, 3: 1}, nil),                          // variable
		Signature(0, potential.Evidence{1: 0}, nil),                                // arity
		Signature(0, potential.Evidence{1: 0, 2: 1}, potential.Likelihood{5: {1}}), // soft present
		Signature(0, nil, potential.Likelihood{1: {0, 1}}),                         // hard vs soft
	}
	for i, sig := range distinct {
		if sig == base {
			t.Errorf("variant %d collides with base signature", i)
		}
	}
	// Soft-evidence weight changes must change the signature too.
	s1 := Signature(0, nil, potential.Likelihood{1: {0.5, 0.5}})
	s2 := Signature(0, nil, potential.Likelihood{1: {0.5, 0.25}})
	if s1 == s2 {
		t.Error("different soft-evidence weights share a signature")
	}
	// The evidence pair (id=1, state=2) must not alias (id=2, state=1) or a
	// soft entry whose bytes happen to line up.
	if Signature(0, potential.Evidence{1: 2}, nil) == Signature(0, potential.Evidence{2: 1}, nil) {
		t.Error("(1:2) aliases (2:1)")
	}
}

// FuzzEvidenceSignature drives the canonical encoder with arbitrary
// evidence maps decoded from raw bytes and checks the two injectivity
// properties the cache depends on: equal maps (any insertion order)
// produce equal signatures, and differing maps never share one.
func FuzzEvidenceSignature(f *testing.F) {
	f.Add([]byte{1, 0, 2, 1, 2}, []byte{3, 1}, byte(0))
	f.Add([]byte{}, []byte{}, byte(1))
	f.Add([]byte{255, 255, 0, 0, 7, 7, 7}, []byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, byte(2))
	f.Fuzz(func(t *testing.T, hard, soft []byte, mode byte) {
		evA := decodeHard(hard)
		likeA := decodeSoft(soft)
		// Rebuild both maps (fresh allocation, different insertion order):
		// the signature must not depend on map identity or order.
		evB := potential.Evidence{}
		for id, st := range evA {
			evB[id] = st
		}
		likeB := potential.Likelihood{}
		for id, w := range likeA {
			likeB[id] = append([]float64(nil), w...)
		}
		sigA := Signature(mode, evA, likeA)
		sigB := Signature(mode, evB, likeB)
		if sigA != sigB {
			t.Fatalf("equal inputs produced different signatures:\n%x\n%x", sigA, sigB)
		}
		// Mutate one coordinate: the signature must change.
		for id := range evA {
			evA[id]++
			if Signature(mode, evA, likeA) == sigA {
				t.Fatalf("bumping evidence state of %d did not change the signature", id)
			}
			evA[id]--
			break
		}
		for id := range likeA {
			if len(likeA[id]) == 0 {
				continue
			}
			old := likeA[id][0]
			likeA[id][0] = math.Float64frombits(math.Float64bits(old) + 1)
			if Signature(mode, evA, likeA) == sigA {
				t.Fatalf("perturbing soft weight of %d did not change the signature", id)
			}
			likeA[id][0] = old
			break
		}
		if Signature(mode+1, evA, likeA) == sigA {
			t.Fatal("mode is not part of the signature")
		}
	})
}

// decodeHard turns fuzz bytes into a hard-evidence map: consecutive byte
// pairs become (id, state), later pairs overwriting earlier ones exactly
// like map assignment would.
func decodeHard(b []byte) potential.Evidence {
	ev := potential.Evidence{}
	for i := 0; i+1 < len(b); i += 2 {
		ev[int(b[i])] = int(b[i+1])
	}
	return ev
}

// decodeSoft turns fuzz bytes into soft evidence: each chunk of 1 id byte
// plus up to 3 weight bytes becomes a weight vector.
func decodeSoft(b []byte) potential.Likelihood {
	like := potential.Likelihood{}
	for i := 0; i < len(b); i += 4 {
		end := i + 4
		if end > len(b) {
			end = len(b)
		}
		w := make([]float64, 0, end-i-1)
		for _, x := range b[i+1 : end] {
			w = append(w, float64(x)/255)
		}
		like[int(b[i])] = w
	}
	return like
}
