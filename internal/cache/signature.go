// Package cache is the serving stack's shared-evidence result cache: a
// canonical evidence signature, a sharded LRU of completed propagation
// results, and a context-aware singleflight group that collapses concurrent
// identical queries into one propagation.
//
// The three pieces are deliberately independent of the engine: the
// signature is a pure function of a propagation's inputs, the LRU stores
// opaque values, and the singleflight group runs arbitrary callbacks. The
// engine in internal/core wires them together.
package cache

import (
	"encoding/binary"
	"math"
	"sort"

	"evprop/internal/potential"
)

// Signature returns the canonical signature of one propagation's inputs:
// the semiring mode, the hard evidence and the soft (likelihood) evidence.
// The signature is the key of the result cache and the singleflight group,
// so it must be injective — two different inputs must never share a
// signature, and equal inputs must always produce one — regardless of map
// insertion order.
//
// The encoding is self-delimiting and order-canonical, which makes it
// injective by construction rather than by hashing: mode byte, then the
// hard-evidence pairs sorted by variable id as (uvarint id, uvarint state),
// then the soft-evidence entries sorted by variable id as (uvarint id,
// uvarint len, 8-byte little-endian IEEE bits per weight), each section
// prefixed with its entry count. Weights are compared by bit pattern, so
// distinct NaN payloads or signed zeros key distinct entries — a spurious
// miss at worst, never a wrong hit.
func Signature(mode byte, ev potential.Evidence, like potential.Likelihood) string {
	buf := make([]byte, 0, 1+10*len(ev)+16*len(like)+16)
	buf = append(buf, mode)
	buf = binary.AppendUvarint(buf, uint64(len(ev)))
	ids := make([]int, 0, len(ev))
	for id := range ev {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendUvarint(buf, uint64(ev[id]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(like)))
	ids = ids[:0]
	for id := range like {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := like[id]
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendUvarint(buf, uint64(len(w)))
		for _, x := range w {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
	}
	return string(buf)
}
