package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lruShards is the fixed shard count: enough to keep concurrent handlers
// off each other's locks, few enough that tiny caches still hold entries.
const lruShards = 16

// LRU is a sharded least-recently-used cache of opaque values keyed by
// signature strings. Get and Add take one shard mutex each, so concurrent
// queries with different signatures rarely contend; hit and miss counters
// are atomics shared across shards.
//
// Purge is generation-aware: it invalidates the cache *and* any insert
// still in flight. Add carries the generation observed when its value was
// computed, and an Add whose generation predates the latest Purge is
// dropped — a propagation that started before an invalidation can never
// re-populate the cache afterwards.
type LRU struct {
	gen    atomic.Uint64
	hits   atomic.Int64
	misses atomic.Int64
	shards [lruShards]lruShard
	cap    int
}

type lruShard struct {
	mu    sync.Mutex
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

// NewLRU returns a cache holding at most capacity entries (minimum 1 per
// shard is enforced, so very small capacities round up to lruShards).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	c := &LRU{cap: capacity}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

// perShard is the eviction bound of one shard.
func (c *LRU) perShard() int {
	n := c.cap / lruShards
	if n < 1 {
		n = 1
	}
	return n
}

// fnv32a hashes the key onto a shard.
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

func (c *LRU) shardFor(key string) *lruShard {
	return &c.shards[fnv32a(key)%lruShards]
}

// Get returns the cached value for key, bumping it to most-recently-used,
// and counts the lookup as a hit or a miss.
func (c *LRU) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*lruEntry).val, true
}

// Generation returns the current purge generation; pass it to Add so an
// insert computed before a Purge is dropped instead of resurrecting stale
// state.
func (c *LRU) Generation() uint64 { return c.gen.Load() }

// Add inserts (or refreshes) key with the value computed under generation
// gen, evicting the shard's least-recently-used entry when full. Values
// computed before the latest Purge (gen mismatch) are silently dropped.
func (c *LRU) Add(key string, val any, gen uint64) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.gen.Load() != gen {
		return
	}
	if el, ok := s.items[key]; ok {
		el.Value.(*lruEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&lruEntry{key: key, val: val})
	for s.ll.Len() > c.perShard() {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*lruEntry).key)
	}
}

// Purge drops every entry and advances the generation, so in-flight Adds
// whose values were computed before the purge are dropped too. Evicted
// values are left to the garbage collector — consumers still holding them
// keep valid (immutable) data.
func (c *LRU) Purge() {
	c.gen.Add(1)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		clear(s.items)
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Cap returns the configured capacity.
func (c *LRU) Cap() int { return c.cap }

// Hits and Misses return the lifetime lookup counters.
func (c *LRU) Hits() int64   { return c.hits.Load() }
func (c *LRU) Misses() int64 { return c.misses.Load() }
