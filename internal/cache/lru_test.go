package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUGetAddEvict(t *testing.T) {
	c := NewLRU(lruShards) // one entry per shard
	gen := c.Generation()
	c.Add("a", 1, gen)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if c.Hits() != 1 || c.Misses() != 0 {
		t.Fatalf("hits/misses = %d/%d, want 1/0", c.Hits(), c.Misses())
	}
	if _, ok := c.Get("nope"); ok {
		t.Fatal("Get(nope) hit")
	}
	if c.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", c.Misses())
	}
	// Refresh keeps a single entry.
	c.Add("a", 2, gen)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatal("Add did not refresh the value")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestLRUEvictsOldestPerShard(t *testing.T) {
	c := NewLRU(lruShards) // capacity 1 per shard
	// Find two keys landing on the same shard.
	var keys []string
	shard := c.shardFor("k0")
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == shard {
			keys = append(keys, k)
		}
	}
	gen := c.Generation()
	c.Add(keys[0], 0, gen)
	c.Add(keys[1], 1, gen)
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry not evicted")
	}
	if v, ok := c.Get(keys[1]); !ok || v.(int) != 1 {
		t.Fatal("newest entry evicted")
	}
	// Recency matters: touch keys[1], add keys[2]; keys[1] survives only if
	// capacity allows one — here per-shard cap is 1 so keys[2] wins.
	c.Add(keys[2], 2, gen)
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU kept more than its per-shard capacity")
	}
}

func TestLRUPurgeDropsStaleInFlightAdd(t *testing.T) {
	c := NewLRU(64)
	gen := c.Generation()
	c.Add("live", 1, gen)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	// An Add computed before the purge must be dropped…
	c.Add("stale", 2, gen)
	if _, ok := c.Get("stale"); ok {
		t.Fatal("pre-purge Add resurrected a stale entry")
	}
	// …while a fresh-generation Add lands.
	c.Add("fresh", 3, c.Generation())
	if _, ok := c.Get("fresh"); !ok {
		t.Fatal("post-purge Add did not land")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%200)
				if v, ok := c.Get(k); ok {
					_ = v.(int)
				} else {
					c.Add(k, i, c.Generation())
				}
				if i%97 == 0 {
					c.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Cap() {
		t.Fatalf("Len %d exceeds capacity %d", c.Len(), c.Cap())
	}
}
