package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCollapses checks the basic contract: concurrent Do calls with
// one key run fn once and all receive its value.
func TestGroupCollapses(t *testing.T) {
	var g Group
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(context.Context) (any, error) {
		runs.Add(1)
		close(started)
		<-release
		return 42, nil
	}
	const waiters = 8
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	vals := make([]any, waiters)
	shareds := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i], shareds[i] = g.Do(context.Background(), "k", fn)
		}(i)
	}
	<-started
	// Give the other goroutines time to enroll as waiters, then release.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	leaders := 0
	for i := 0; i < waiters; i++ {
		if errs[i] != nil || vals[i].(int) != 42 {
			t.Fatalf("waiter %d: %v, %v", i, vals[i], errs[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d callers report shared=false, want exactly 1", leaders)
	}
	if g.InFlight() != 0 {
		t.Fatal("call left in flight after completion")
	}
}

// TestGroupWaiterCancelDoesNotCancelSharedRun is the singleflight
// cancellation regression test: with several waiters enrolled, one
// waiter's cancellation must return immediately with its own ctx.Err()
// while the shared run keeps going and serves the rest.
func TestGroupWaiterCancelDoesNotCancelSharedRun(t *testing.T) {
	var g Group
	started := make(chan struct{})
	release := make(chan struct{})
	var runCtxErr error
	fn := func(ctx context.Context) (any, error) {
		close(started)
		<-release
		runCtxErr = ctx.Err() // read after the cancelled waiter left
		return "result", nil
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(context.Background(), "k", fn)
		leaderDone <- err
	}()
	<-started

	// Enroll a second waiter with a cancellable context.
	wctx, wcancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err, shared := g.Do(wctx, "k", fn)
		if !shared {
			t.Error("second caller was not collapsed onto the running call")
		}
		waiterDone <- err
	}()
	// Wait until the waiter is enrolled (leader + waiter on one call).
	for deadline := time.Now().Add(time.Second); ; {
		g.mu.Lock()
		n := 0
		if c, ok := g.calls["k"]; ok {
			n = c.waiters
		}
		g.mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second waiter never enrolled")
		}
		time.Sleep(time.Millisecond)
	}

	wcancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	// The shared run must still be alive: release it and check the leader
	// got the result from an uncancelled run context.
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader got %v after a waiter cancelled", err)
	}
	if runCtxErr != nil {
		t.Fatalf("shared run context was cancelled (%v) by a waiter's cancellation", runCtxErr)
	}
}

// TestGroupLastWaiterCancelStopsRun: when every waiter has cancelled, the
// shared run's context is cancelled (nobody wants the answer) and the key
// is detached so a fresh caller starts a new run instead of joining the
// doomed one.
func TestGroupLastWaiterCancelStopsRun(t *testing.T) {
	var g Group
	started := make(chan struct{})
	ctxCancelled := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		close(ctxCancelled)
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, "k", fn)
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("sole waiter got %v", err)
	}
	select {
	case <-ctxCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("shared run context was not cancelled after the last waiter left")
	}
	// A fresh call must start a new run, not join the doomed one.
	v, err, shared := g.Do(context.Background(), "k", func(context.Context) (any, error) {
		return "fresh", nil
	})
	if err != nil || v.(string) != "fresh" || shared {
		t.Fatalf("fresh call after abandonment: %v, %v, shared=%v", v, err, shared)
	}
}

// TestGroupErrorPropagates: fn's error reaches every waiter and the key is
// released for the next caller.
func TestGroupErrorPropagates(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	_, err, _ := g.Do(context.Background(), "k", func(context.Context) (any, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	v, err, _ := g.Do(context.Background(), "k", func(context.Context) (any, error) {
		return 7, nil
	})
	if err != nil || v.(int) != 7 {
		t.Fatalf("retry after error: %v, %v", v, err)
	}
}
