package cache

import (
	"context"
	"sync"
)

// Group collapses concurrent calls with the same key into one execution:
// the first caller starts fn, later callers wait for its result. It is the
// request-collapsing half of the result cache — N concurrent cache misses
// with one signature cost one propagation.
//
// Cancellation is per-waiter, not per-run: fn executes on its own goroutine
// under a context detached from every caller (values, including the query
// ID, are preserved from the first caller's context), so one waiter's
// cancellation returns that waiter's ctx.Err() without disturbing the
// shared run. Only when the last interested waiter has gone is the shared
// run cancelled — nobody wants the answer anymore.
type Group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done    chan struct{}
	val     any
	err     error
	waiters int  // callers still waiting, guarded by Group.mu
	gone    bool // removed from Group.calls, guarded by Group.mu
	cancel  context.CancelFunc
}

// Do executes fn under key, collapsing concurrent calls: if a call for key
// is already in flight, Do waits for it instead of starting another.
// shared reports whether this caller rode an execution started by another
// caller (false for the caller that started fn). When ctx is cancelled
// while waiting, Do returns ctx.Err() immediately; the shared run keeps
// going for the remaining waiters and is cancelled only when none remain.
func (g *Group) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		v, err = g.wait(ctx, key, c)
		return v, err, true
	}
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &call{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.mu.Unlock()
	go func() {
		c.val, c.err = fn(runCtx)
		g.mu.Lock()
		if !c.gone {
			c.gone = true
			delete(g.calls, key)
		}
		g.mu.Unlock()
		close(c.done)
		cancel()
	}()
	v, err = g.wait(ctx, key, c)
	return v, err, false
}

// wait blocks until the call finishes or ctx is cancelled. A cancelled
// waiter deregisters itself; the last one to leave cancels the shared run
// and detaches the call from the group so a fresh caller starts over
// instead of joining a doomed run.
func (g *Group) wait(ctx context.Context, key string, c *call) (any, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		if last && !c.gone {
			c.gone = true
			delete(g.calls, key)
		}
		g.mu.Unlock()
		if last {
			c.cancel()
		}
		return nil, ctx.Err()
	}
}

// InFlight returns the number of keys currently executing, for tests and
// stats.
func (g *Group) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
