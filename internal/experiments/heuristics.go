package experiments

import (
	"fmt"
	"io"

	"evprop/internal/bayesnet"
)

// HeuristicRow compares elimination-order heuristics on one network.
type HeuristicRow struct {
	Network      string
	MinFillState int // total clique table entries under min-fill
	MinDegState  int // total clique table entries under min-degree
	MinFillWidth int
	MinDegWidth  int
}

// HeuristicsResult compares the triangulation heuristics the compiler
// offers — the state-space blowup is the dominant cost of exact inference,
// so this table justifies the min-fill default.
type HeuristicsResult struct {
	Rows []HeuristicRow
}

// Heuristics compiles the classic networks and a set of random networks
// under both heuristics and reports the resulting junction-tree state
// space.
func Heuristics() (*HeuristicsResult, error) {
	out := &HeuristicsResult{}
	add := func(name string, net *bayesnet.Network) error {
		row := HeuristicRow{Network: name}
		for _, h := range []bayesnet.Heuristic{bayesnet.MinFill, bayesnet.MinDegree} {
			tr, err := net.CompileJunctionTree(bayesnet.CompileOptions{Heuristic: h, Root: -1})
			if err != nil {
				return fmt.Errorf("%s/%v: %w", name, h, err)
			}
			stats := tr.ComputeStats()
			switch h {
			case bayesnet.MinFill:
				row.MinFillState = stats.TotalEntries
				row.MinFillWidth = stats.MaxWidth
			case bayesnet.MinDegree:
				row.MinDegState = stats.TotalEntries
				row.MinDegWidth = stats.MaxWidth
			}
		}
		out.Rows = append(out.Rows, row)
		return nil
	}
	asia, _ := bayesnet.Asia()
	if err := add("asia", asia); err != nil {
		return nil, err
	}
	student, _ := bayesnet.Student()
	if err := add("student", student); err != nil {
		return nil, err
	}
	for seed := int64(1); seed <= 4; seed++ {
		net := bayesnet.RandomNetwork(25, 2, 4, seed)
		if err := add(fmt.Sprintf("random-%d", seed), net); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Write prints the heuristic comparison.
func (r *HeuristicsResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Triangulation heuristics — junction-tree state space (total entries)")
	fmt.Fprintln(w, "network      min-fill (width)   min-degree (width)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %8d (%2d)      %8d (%2d)\n",
			row.Network, row.MinFillState, row.MinFillWidth, row.MinDegState, row.MinDegWidth)
	}
}
