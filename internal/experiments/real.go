package experiments

import (
	"fmt"
	"io"
	"time"

	"evprop/internal/baseline"
	"evprop/internal/jtree"
	"evprop/internal/potential"
	"evprop/internal/sched"
	"evprop/internal/taskgraph"
)

// RealConfig parameterizes the real-execution (goroutine) speedup
// measurement. On a multicore host this reproduces Fig. 7 with wall-clock
// times; on a single-core host it measures scheduling overhead only, which
// is why the simulated machine is the primary harness (DESIGN.md §2).
type RealConfig struct {
	// Cliques, Width, States, Degree describe the junction tree (scaled to
	// fit the host; the default is 64 cliques of width 12, ~4096-entry
	// tables).
	Cliques, Width, States, Degree int
	Seed                           int64
	// Workers lists the worker counts to measure.
	Workers []int
	// Repeats takes the best of this many runs per configuration.
	Repeats int
}

// DefaultRealConfig returns the host-scale default.
func DefaultRealConfig() RealConfig {
	return RealConfig{
		Cliques: 64, Width: 12, States: 2, Degree: 4, Seed: 5,
		Workers: []int{1, 2, 4, 8},
		Repeats: 3,
	}
}

// RealRow is one measured configuration.
type RealRow struct {
	Method  string
	Workers int
	Best    time.Duration
	Speedup float64 // vs the serial measurement
}

// RealResult reports the real-execution measurement.
type RealResult struct {
	Serial time.Duration
	Rows   []RealRow
}

// Real measures wall-clock propagation time of the serial executor, the
// collaborative scheduler and the level-synchronous baseline on real
// goroutines.
func Real(cfg RealConfig) (*RealResult, error) {
	tr, err := jtree.Random(jtree.RandomConfig{
		N: cfg.Cliques, Width: cfg.Width, States: cfg.States, Degree: cfg.Degree, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := tr.MaterializeRandom(cfg.Seed + 1); err != nil {
		return nil, err
	}
	rerooted, err := tr.Reroot(tr.SelectRoot())
	if err != nil {
		return nil, err
	}
	g := taskgraph.Build(rerooted)
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}

	measure := func(run func(st *taskgraph.State) error) (time.Duration, error) {
		best := time.Duration(1 << 62)
		for i := 0; i < repeats; i++ {
			st, err := g.NewState()
			if err != nil {
				return 0, err
			}
			start := time.Now()
			if err := run(st); err != nil {
				return 0, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best, nil
	}

	out := &RealResult{}
	serial, err := measure(func(st *taskgraph.State) error { return st.RunSerial() })
	if err != nil {
		return nil, err
	}
	out.Serial = serial

	delta := int(autoThreshold(g))
	for _, p := range cfg.Workers {
		d, err := measure(func(st *taskgraph.State) error {
			_, err := sched.Run(st, sched.Options{Workers: p, Threshold: delta})
			return err
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, RealRow{
			Method: "collaborative", Workers: p, Best: d,
			Speedup: float64(serial) / float64(d),
		})
	}
	for _, p := range cfg.Workers {
		d, err := measure(func(st *taskgraph.State) error {
			_, err := baseline.LevelSync(st, p)
			return err
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, RealRow{
			Method: "levelsync", Workers: p, Best: d,
			Speedup: float64(serial) / float64(d),
		})
	}
	return out, nil
}

// Write prints the real-execution rows.
func (r *RealResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Real goroutine execution (wall clock; needs a multicore host for speedup)")
	fmt.Fprintf(w, "serial: %v\n", r.Serial)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-14s P=%d  %10v  speedup %.2f\n", row.Method, row.Workers, row.Best, row.Speedup)
	}
}

// EvidenceCountResult checks the paper's Section 3 claim that the method's
// performance "does not depend on the number of evidence cliques": wall
// times of real propagations under increasing evidence counts.
type EvidenceCountResult struct {
	Counts []int
	Times  []time.Duration
}

// EvidenceCount measures real propagation time on a fixed junction tree
// while the number of instantiated variables grows.
func EvidenceCount(cfg RealConfig) (*EvidenceCountResult, error) {
	tr, err := jtree.Random(jtree.RandomConfig{
		N: cfg.Cliques, Width: cfg.Width, States: cfg.States, Degree: cfg.Degree, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := tr.MaterializeRandom(cfg.Seed + 1); err != nil {
		return nil, err
	}
	g := taskgraph.Build(tr)
	vars, cardOf := tr.Variables()
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	out := &EvidenceCountResult{}
	for _, count := range []int{0, 1, 4, 16, 64} {
		if count > len(vars) {
			break
		}
		ev := potential.Evidence{}
		for i := 0; i < count; i++ {
			v := vars[(i*37)%len(vars)]
			ev[v] = i % cardOf[v]
		}
		best := time.Duration(1 << 62)
		for r := 0; r < repeats; r++ {
			st, err := g.NewState()
			if err != nil {
				return nil, err
			}
			if err := st.AbsorbEvidence(ev); err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := sched.Run(st, sched.Options{Workers: 4, Threshold: int(autoThreshold(g))}); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		out.Counts = append(out.Counts, count)
		out.Times = append(out.Times, best)
	}
	return out, nil
}

// Write prints the evidence-count rows.
func (r *EvidenceCountResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Evidence-count independence (paper §3 claim; real execution)")
	for i, c := range r.Counts {
		fmt.Fprintf(w, "  %3d evidence variables: %v\n", c, r.Times[i])
	}
}
