package experiments

import (
	"fmt"
	"io"

	"evprop/internal/jtree"
	"evprop/internal/machine"
	"evprop/internal/taskgraph"
)

// This file contains experiments beyond the paper's figures: ablations of
// the design choices the paper makes without measuring (the least-loaded
// allocation rule, the δ threshold, the Algorithm 1 balance rule) and the
// many-core projection the paper's Section 8 poses as future work.

// --- Allocation-policy ablation --------------------------------------------

// AblationAllocationResult compares the least-loaded allocation rule of
// Algorithm 2 (line 7) against blind round-robin allocation.
type AblationAllocationResult struct {
	Cores      []int
	LeastLoad  []float64 // speedups
	RoundRobin []float64
}

// AblationAllocation runs both allocation policies on Junction tree 1.
func AblationAllocation(cm machine.CostModel) (*AblationAllocationResult, error) {
	g, err := mustGraph(jtree.JT1())
	if err != nil {
		return nil, err
	}
	serial := machine.SerialTime(g, cm)
	out := &AblationAllocationResult{Cores: Cores}
	for _, p := range Cores {
		ll, err := machine.SimulateCollaborativeOpts(g, p, cm,
			machine.CollabOptions{Threshold: autoThreshold(g)})
		if err != nil {
			return nil, err
		}
		rr, err := machine.SimulateCollaborativeOpts(g, p, cm,
			machine.CollabOptions{Threshold: autoThreshold(g), RoundRobinAlloc: true})
		if err != nil {
			return nil, err
		}
		out.LeastLoad = append(out.LeastLoad, serial/ll.Makespan)
		out.RoundRobin = append(out.RoundRobin, serial/rr.Makespan)
	}
	return out, nil
}

// Write prints the allocation ablation.
func (r *AblationAllocationResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Ablation — allocation policy (JT1, collaborative scheduler)")
	fmt.Fprint(w, "policy       ")
	for _, p := range r.Cores {
		fmt.Fprintf(w, "  P=%d ", p)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "least-loaded ")
	for _, s := range r.LeastLoad {
		fmt.Fprintf(w, " %5.2f", s)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "round-robin  ")
	for _, s := range r.RoundRobin {
		fmt.Fprintf(w, " %5.2f", s)
	}
	fmt.Fprintln(w)
}

// --- δ-threshold ablation ---------------------------------------------------

// AblationThresholdResult sweeps the partition threshold δ.
type AblationThresholdResult struct {
	Labels   []string
	Speedup8 []float64 // 8-core speedup per δ setting
	Pieces   []int
}

// AblationThreshold sweeps δ on Junction tree 1 from "partitioning off"
// down to aggressive splitting, reporting the 8-core speedup.
func AblationThreshold(cm machine.CostModel) (*AblationThresholdResult, error) {
	g, err := mustGraph(jtree.JT1())
	if err != nil {
		return nil, err
	}
	serial := machine.SerialTime(g, cm)
	mean := g.TotalWeight() / float64(g.N())
	out := &AblationThresholdResult{}
	for _, tc := range []struct {
		label string
		delta float64
	}{
		{"off", 0},
		{"4·mean", 4 * mean},
		{"mean", mean},
		{"mean/4", mean / 4},
		{"mean/16", mean / 16},
		{"mean/64", mean / 64},
	} {
		res, err := machine.SimulateCollaborative(g, 8, tc.delta, cm)
		if err != nil {
			return nil, err
		}
		out.Labels = append(out.Labels, tc.label)
		out.Speedup8 = append(out.Speedup8, serial/res.Makespan)
		out.Pieces = append(out.Pieces, res.Pieces)
	}
	return out, nil
}

// Write prints the threshold ablation.
func (r *AblationThresholdResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Ablation — partition threshold δ (JT1, 8 cores)")
	fmt.Fprintln(w, "δ          speedup@8   pieces")
	for i, l := range r.Labels {
		fmt.Fprintf(w, "%-10s %8.2f %8d\n", l, r.Speedup8[i], r.Pieces[i])
	}
}

// --- Root-selection ablation -------------------------------------------------

// AblationRootRow compares root-selection rules on one tree.
type AblationRootRow struct {
	Seed          int64
	OriginalCP    float64 // critical-path weight, original root
	Algorithm1CP  float64 // after Algorithm 1 (abs-diff balance rule)
	ExactRuleCP   float64 // after the exact min–max balance rule
	BruteForceCP  float64 // optimum over all roots (O(N²) oracle)
	Algorithm1Opt bool    // Algorithm 1 found the optimum
}

// AblationRootResult collects root-selection comparisons over random trees.
type AblationRootResult struct {
	Rows []AblationRootRow
}

// AblationRoot compares the paper's Algorithm 1 balance rule (argmin
// |L(Cx,Ci) − L(Ci,Cy)|) against the exact min–max rule and the brute-force
// optimum on a set of random junction trees.
func AblationRoot() (*AblationRootResult, error) {
	out := &AblationRootResult{}
	for seed := int64(0); seed < 12; seed++ {
		tr, err := jtree.Random(jtree.RandomConfig{
			N: 96, Width: 6, States: 2, Degree: 3, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		row := AblationRootRow{Seed: seed}
		row.OriginalCP, _ = tr.CriticalPath()
		a1, err := tr.Reroot(tr.SelectRoot())
		if err != nil {
			return nil, err
		}
		row.Algorithm1CP, _ = a1.CriticalPath()
		ex, err := tr.Reroot(tr.SelectRootExact())
		if err != nil {
			return nil, err
		}
		row.ExactRuleCP, _ = ex.CriticalPath()
		_, row.BruteForceCP = tr.BestRootBrute()
		row.Algorithm1Opt = row.Algorithm1CP <= row.BruteForceCP+1e-9
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Write prints the root-selection ablation.
func (r *AblationRootResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Ablation — root selection rule (critical-path weight, random trees)")
	fmt.Fprintln(w, "seed   original    Alg.1     exact    brute   Alg.1 optimal?")
	opt := 0
	for _, row := range r.Rows {
		mark := "no"
		if row.Algorithm1Opt {
			mark = "yes"
			opt++
		}
		fmt.Fprintf(w, "%4d %9.0f %9.0f %9.0f %9.0f   %s\n",
			row.Seed, row.OriginalCP, row.Algorithm1CP, row.ExactRuleCP, row.BruteForceCP, mark)
	}
	fmt.Fprintf(w, "Algorithm 1 optimal on %d/%d trees (exact rule always optimal)\n", opt, len(r.Rows))
}

// --- Many-core projection (Section 8) ----------------------------------------

// ManyCoreResult projects the collaborative scheduler to core counts beyond
// the paper's 8, under several lock-contention severities — the overhead
// the paper's conclusion predicts "will increase dramatically" in the
// many-core era.
type ManyCoreResult struct {
	Cores      []int
	Contention []float64   // LockContention values
	Speedups   [][]float64 // [contention][core] speedups
}

// ManyCore sweeps P up to 64 for three lock-contention settings on JT1.
func ManyCore(cm machine.CostModel) (*ManyCoreResult, error) {
	g, err := mustGraph(jtree.JT1())
	if err != nil {
		return nil, err
	}
	serial := machine.SerialTime(g, cm)
	out := &ManyCoreResult{
		Cores:      []int{1, 2, 4, 8, 16, 32, 64},
		Contention: []float64{0.04, 0.2, 1.0},
	}
	for _, lc := range out.Contention {
		cmi := cm
		cmi.LockContention = lc
		row := make([]float64, 0, len(out.Cores))
		for _, p := range out.Cores {
			res, err := machine.SimulateCollaborative(g, p, autoThreshold(g), cmi)
			if err != nil {
				return nil, err
			}
			row = append(row, serial/res.Makespan)
		}
		out.Speedups = append(out.Speedups, row)
	}
	return out, nil
}

// Write prints the many-core projection.
func (r *ManyCoreResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Many-core projection (JT1, collaborative; paper §8 future work)")
	fmt.Fprint(w, "lock contention")
	for _, p := range r.Cores {
		fmt.Fprintf(w, "   P=%-3d", p)
	}
	fmt.Fprintln(w)
	for i, lc := range r.Contention {
		fmt.Fprintf(w, "%15.2f", lc)
		for _, s := range r.Speedups[i] {
			fmt.Fprintf(w, " %7.2f", s)
		}
		fmt.Fprintln(w)
	}
}

// --- Scheduler roster comparison ---------------------------------------------

// SchedulerRosterResult compares every implemented scheduler on one tree.
type SchedulerRosterResult struct {
	Names    []string
	Speedup8 []float64
}

// SchedulerRoster runs every scheduling strategy on Junction tree 1 at
// 8 cores, the one-glance summary of the design space.
func SchedulerRoster(cm machine.CostModel) (*SchedulerRosterResult, error) {
	g, err := mustGraph(jtree.JT1())
	if err != nil {
		return nil, err
	}
	serial := machine.SerialTime(g, cm)
	thr := autoThreshold(g)
	sims := []struct {
		name string
		run  func() (*machine.Result, error)
	}{
		{"collaborative", func() (*machine.Result, error) { return machine.SimulateCollaborative(g, 8, thr, cm) }},
		{"centralized", func() (*machine.Result, error) { return machine.SimulateCentralized(g, 8, thr, cm) }},
		{"levelsync", func() (*machine.Result, error) { return machine.SimulateLevelSync(g, 8, cm) }},
		{"dataparallel", func() (*machine.Result, error) { return machine.SimulateDataParallel(g, 8, cm) }},
		{"openmp", func() (*machine.Result, error) { return machine.SimulateOpenMP(g, 8, cm) }},
		{"distributed", func() (*machine.Result, error) { return machine.SimulateDistributed(g, 8, cm) }},
	}
	out := &SchedulerRosterResult{}
	for _, s := range sims {
		res, err := s.run()
		if err != nil {
			return nil, err
		}
		out.Names = append(out.Names, s.name)
		out.Speedup8 = append(out.Speedup8, serial/res.Makespan)
	}
	return out, nil
}

// Write prints the roster.
func (r *SchedulerRosterResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Scheduler roster (JT1, 8 cores)")
	for i, n := range r.Names {
		fmt.Fprintf(w, "  %-14s %5.2f×\n", n, r.Speedup8[i])
	}
}

// CollectOnlyResult compares full two-pass propagation against the
// collection-only half used by targeted single-marginal queries.
type CollectOnlyResult struct {
	Cores       []int
	FullSeconds []float64
	CollectSecs []float64
	TaskRatio   float64 // collect-only tasks / full tasks (0.5 by construction)
}

// CollectOnly measures, on the simulated machine, how much of a full
// propagation a collection-only pass costs across core counts (JT1).
func CollectOnly(cm machine.CostModel) (*CollectOnlyResult, error) {
	tr, err := jtree.Random(jtree.JT1())
	if err != nil {
		return nil, err
	}
	full := taskgraph.Build(tr)
	half := taskgraph.BuildCollectOnly(tr)
	out := &CollectOnlyResult{
		Cores:     Cores,
		TaskRatio: float64(half.N()) / float64(full.N()),
	}
	for _, p := range Cores {
		f, err := machine.SimulateCollaborative(full, p, autoThreshold(full), cm)
		if err != nil {
			return nil, err
		}
		c, err := machine.SimulateCollaborative(half, p, autoThreshold(half), cm)
		if err != nil {
			return nil, err
		}
		out.FullSeconds = append(out.FullSeconds, f.Makespan)
		out.CollectSecs = append(out.CollectSecs, c.Makespan)
	}
	return out, nil
}

// Write prints the collect-only comparison.
func (r *CollectOnlyResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Collection-only vs full propagation (JT1; task ratio %.2f)\n", r.TaskRatio)
	fmt.Fprintln(w, "P    full(s)   collect(s)   fraction")
	for i, p := range r.Cores {
		fmt.Fprintf(w, "%-4d %8.4f   %8.4f   %8.2f\n",
			p, r.FullSeconds[i], r.CollectSecs[i], r.CollectSecs[i]/r.FullSeconds[i])
	}
}

// DecompositionResult quantifies the paper's §3 argument against
// junction-tree decomposition on shared memory: the duplicated
// potential-table entries (memory all cores share) grow with the block
// count while the balance stays roughly constant.
type DecompositionResult struct {
	Blocks     []int
	Duplicated []int // duplicated entries
	CrossEdges []int
	Imbalance  []float64
}

// Decomposition decomposes JT1 into increasing block counts.
func Decomposition() (*DecompositionResult, error) {
	tr, err := jtree.Random(jtree.JT1())
	if err != nil {
		return nil, err
	}
	out := &DecompositionResult{}
	for _, k := range []int{2, 4, 8, 16, 32} {
		d, err := tr.Decompose(k)
		if err != nil {
			return nil, err
		}
		out.Blocks = append(out.Blocks, len(d.Blocks))
		out.Duplicated = append(out.Duplicated, d.DuplicatedEntries)
		out.CrossEdges = append(out.CrossEdges, d.CrossEdges)
		out.Imbalance = append(out.Imbalance, d.Imbalance())
	}
	return out, nil
}

// Write prints the decomposition rows.
func (r *DecompositionResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Junction-tree decomposition (paper §3, ref [10]) — duplication cost on JT1")
	fmt.Fprintln(w, "blocks  duplicated-entries  cross-edges  imbalance")
	for i := range r.Blocks {
		fmt.Fprintf(w, "%6d  %18d  %11d  %9.2f\n",
			r.Blocks[i], r.Duplicated[i], r.CrossEdges[i], r.Imbalance[i])
	}
}
