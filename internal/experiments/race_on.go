//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this build;
// wall-clock timing assertions are relaxed under its overhead.
const raceEnabled = true
