package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"evprop/internal/machine"
)

func TestFig5ShapesMatchPaper(t *testing.T) {
	r, err := Fig5(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("%d series, want 4", len(r.Series))
	}
	for _, s := range r.Series {
		last := s.Speedup[len(s.Speedup)-1]
		// Paper: speedup around 1.9 at 8 cores for every b.
		if last < 1.6 || last > 2.1 {
			t.Errorf("b=%d: 8-core rerooting speedup %.2f, want ≈1.9", s.Branches, last)
		}
		// Paper: with P < b some branches serialize, so Sp < 2 well before
		// the plateau; speedup at P=1 must be ≈1 (same serial work).
		if s.Speedup[0] < 0.9 || s.Speedup[0] > 1.3 {
			t.Errorf("b=%d: P=1 speedup %.2f, want ≈1", s.Branches, s.Speedup[0])
		}
	}
	// Larger b needs more threads to reach maximum speedup: at P=2 the
	// b=1 tree is closer to its plateau than the b=8 tree.
	b1, b8 := r.Series[0], r.Series[3]
	if b1.Speedup[1] < b8.Speedup[1] {
		t.Errorf("at P=2, b=1 speedup %.2f below b=8's %.2f", b1.Speedup[1], b8.Speedup[1])
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "Fig. 5") {
		t.Error("Write output malformed")
	}
}

func TestRerootOverheadNegligible(t *testing.T) {
	r, err := RerootOverhead(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 24 µs vs ~1e5 µs (< 0.1%). Our Algorithm 1 runs in a few
	// hundred µs (Go, deep-copy reroot); require clear negligibility with
	// margin for wall-clock noise. The race detector slows the measured
	// reroot several-fold while the simulated denominator stays fixed, so
	// the bound is relaxed under -race.
	bound := 2.0
	if raceEnabled {
		bound = 10.0
	}
	if r.FractionPercent > bound {
		t.Errorf("rerooting overhead %.3f%% of propagation, want ≪ %.0f%%", r.FractionPercent, bound)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "overhead fraction") {
		t.Error("Write output malformed")
	}
}

func TestFig6UShape(t *testing.T) {
	r, err := Fig6(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("%d series, want 3", len(r.Series))
	}
	for _, s := range r.Series {
		t1, t4 := s.Seconds[0], s.Seconds[2]
		t16 := s.Seconds[len(s.Seconds)-1]
		if t4 >= t1 {
			t.Errorf("%s: no speedup at 4 procs: %.3f vs %.3f", s.Name, t4, t1)
		}
		if t16 <= t4 {
			t.Errorf("%s: time does not increase beyond 4 procs: t4=%.3f t16=%.3f", s.Name, t4, t16)
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "Junction tree 3") {
		t.Error("Write output malformed")
	}
}

func TestFig7MatchesPaperNumbers(t *testing.T) {
	r, err := Fig7(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 9 {
		t.Fatalf("%d series, want 9", len(r.Series))
	}
	at8 := map[string]map[string]float64{}
	for _, s := range r.Series {
		if at8[s.Tree] == nil {
			at8[s.Tree] = map[string]float64{}
		}
		at8[s.Tree][s.Method] = s.Speedup[len(s.Speedup)-1]
		// Every method must show monotone non-trivial scaling up to 4.
		if s.Speedup[0] < 0.85 || s.Speedup[0] > 1.1 {
			t.Errorf("%s/%s: P=1 speedup %.2f", s.Tree, s.Method, s.Speedup[0])
		}
	}
	for tree, m := range at8 {
		co, dp, om := m["collaborative"], m["dataparallel"], m["openmp"]
		// Paper: 7.4 on Xeon / 7.1 on Opteron for the proposed method.
		if co < 6.5 || co > 8 {
			t.Errorf("%s: collaborative 8-core speedup %.2f, want ≈7.4", tree, co)
		}
		if !(co > dp && dp > om) {
			t.Errorf("%s: ordering violated: co=%.2f dp=%.2f omp=%.2f", tree, co, dp, om)
		}
		if ratio := co / om; ratio < 1.5 {
			t.Errorf("%s: collaborative/openmp = %.2f, want clearly above 1.5", tree, ratio)
		}
	}
	// The paper's headline ratios are reported for the flagship tree:
	// 2.1× over OpenMP and 1.8× over data-parallel at 8 cores.
	if ratio := at8["JT1"]["collaborative"] / at8["JT1"]["openmp"]; ratio < 1.7 || ratio > 2.6 {
		t.Errorf("JT1: collaborative/openmp = %.2f, paper ≈2.1", ratio)
	}
	if ratio := at8["JT1"]["collaborative"] / at8["JT1"]["dataparallel"]; ratio < 1.4 || ratio > 2.3 {
		t.Errorf("JT1: collaborative/dataparallel = %.2f, paper ≈1.8", ratio)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "collaborative") {
		t.Error("Write output malformed")
	}
}

func TestFig8LoadBalanceAndOverhead(t *testing.T) {
	r, err := Fig8(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(Cores) {
		t.Fatalf("%d points", len(r.Points))
	}
	for _, pt := range r.Points {
		if len(pt.BusySeconds) != pt.P {
			t.Fatalf("P=%d has %d busy entries", pt.P, len(pt.BusySeconds))
		}
		minB, maxB := pt.BusySeconds[0], pt.BusySeconds[0]
		for _, b := range pt.BusySeconds {
			if b < minB {
				minB = b
			}
			if b > maxB {
				maxB = b
			}
		}
		if pt.P > 1 && (maxB-minB)/maxB > 0.2 {
			t.Errorf("P=%d: busy imbalance %.1f%%", pt.P, 100*(maxB-minB)/maxB)
		}
		// Paper: scheduling ≤ 0.9% of execution time for all threads.
		for c, o := range pt.OverheadPct {
			if o > 0.9 {
				t.Errorf("P=%d thread %d: scheduling %.3f%% exceeds 0.9%%", pt.P, c, o)
			}
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "sched(%)") {
		t.Error("Write output malformed")
	}
}

func TestFig9LinearSpeedupsExceptSmallTables(t *testing.T) {
	r, err := Fig9(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4+3+2+3 {
		t.Fatalf("%d series", len(r.Series))
	}
	for _, s := range r.Series {
		last := s.Speedup[len(s.Speedup)-1]
		if s.Label == "wC=10" {
			// Paper: the wC=10, r=2 tables are tiny (1024 entries) so
			// scheduling overhead bites and speedup drops below 7.
			if last >= 7 {
				t.Errorf("wC=10 speedup %.2f, expected the paper's dip below 7", last)
			}
			continue
		}
		if s.Panel == "N" || s.Panel == "k" {
			// Paper Fig. 9 (a)/(d): all above 7 at 8 cores.
			if last < 7 {
				t.Errorf("%s: 8-core speedup %.2f, want > 7", s.Label, last)
			}
		}
		if last > 8.05 {
			t.Errorf("%s: superlinear speedup %.2f", s.Label, last)
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "panel (k)") {
		t.Error("Write output malformed")
	}
}

func TestFig7BothPlatforms(t *testing.T) {
	xeon, opteron, err := Fig7Both()
	if err != nil {
		t.Fatal(err)
	}
	at8 := func(r *Fig7Result, tree, method string) float64 {
		for _, s := range r.Series {
			if s.Tree == tree && s.Method == method {
				return s.Speedup[len(s.Speedup)-1]
			}
		}
		t.Fatalf("missing series %s/%s", tree, method)
		return 0
	}
	// Paper: 7.4× on Xeon, 7.1× on Opteron; 1.8× over data-parallel on
	// Opteron.
	xe := at8(xeon, "JT1", "collaborative")
	op := at8(opteron, "JT1", "collaborative")
	if math.Abs(xe-7.4) > 0.4 {
		t.Errorf("Xeon 8-core speedup %.2f, paper 7.4", xe)
	}
	if math.Abs(op-7.1) > 0.4 {
		t.Errorf("Opteron 8-core speedup %.2f, paper 7.1", op)
	}
	if op >= xe {
		t.Errorf("Opteron (%.2f) should trail Xeon (%.2f) slightly", op, xe)
	}
	ratio := op / at8(opteron, "JT1", "dataparallel")
	if math.Abs(ratio-1.8) > 0.25 {
		t.Errorf("Opteron collaborative/dataparallel = %.2f, paper 1.8", ratio)
	}
	var buf bytes.Buffer
	opteron.Write(&buf)
	if !strings.Contains(buf.String(), "Opteron") {
		t.Error("platform label missing")
	}
}

func TestFig5BothPlatforms(t *testing.T) {
	xeon, opteron, err := Fig5Both()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Fig5Result{xeon, opteron} {
		for _, s := range r.Series {
			last := s.Speedup[len(s.Speedup)-1]
			if last < 1.6 || last > 2.1 {
				t.Errorf("%s b=%d: 8-core rerooting speedup %.2f", r.Platform, s.Branches, last)
			}
		}
	}
}
