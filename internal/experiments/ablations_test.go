package experiments

import (
	"bytes"
	"strings"
	"testing"

	"evprop/internal/machine"
)

func TestAblationAllocation(t *testing.T) {
	r, err := AblationAllocation(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Least-loaded allocation must never be (meaningfully) worse than
	// round-robin, and at 8 cores it should win visibly.
	for i := range r.Cores {
		if r.LeastLoad[i] < r.RoundRobin[i]*0.98 {
			t.Errorf("P=%d: least-loaded %.2f below round-robin %.2f", r.Cores[i], r.LeastLoad[i], r.RoundRobin[i])
		}
	}
	last := len(r.Cores) - 1
	if r.LeastLoad[last] <= r.RoundRobin[last] {
		t.Errorf("at 8 cores least-loaded (%.2f) does not beat round-robin (%.2f)",
			r.LeastLoad[last], r.RoundRobin[last])
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "round-robin") {
		t.Error("Write malformed")
	}
}

func TestAblationThreshold(t *testing.T) {
	r, err := AblationThreshold(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 6 {
		t.Fatalf("%d settings", len(r.Labels))
	}
	// Partitioning off must produce zero pieces; finer δ more pieces.
	if r.Pieces[0] != 0 {
		t.Errorf("δ=off produced %d pieces", r.Pieces[0])
	}
	for i := 1; i < len(r.Pieces); i++ {
		if r.Pieces[i] < r.Pieces[i-1] {
			t.Errorf("pieces not monotone: %v", r.Pieces)
			break
		}
	}
	// Some partitioned setting must beat partitioning-off (the point of
	// the Partition module).
	best := 0.0
	for _, s := range r.Speedup8[1:] {
		if s > best {
			best = s
		}
	}
	if best <= r.Speedup8[0] {
		t.Errorf("no δ beats partitioning off: off=%.2f best=%.2f", r.Speedup8[0], best)
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "speedup@8") {
		t.Error("Write malformed")
	}
}

func TestAblationRoot(t *testing.T) {
	r, err := AblationRoot()
	if err != nil {
		t.Fatal(err)
	}
	optA1, optExact := 0, 0
	for _, row := range r.Rows {
		if row.Algorithm1CP > row.OriginalCP+1e-9 {
			t.Errorf("seed %d: Algorithm 1 worsened the critical path", row.Seed)
		}
		if row.ExactRuleCP > row.BruteForceCP+1e-9 {
			t.Errorf("seed %d: exact rule (%v) not optimal (%v)", row.Seed, row.ExactRuleCP, row.BruteForceCP)
		} else {
			optExact++
		}
		if row.Algorithm1Opt {
			optA1++
		}
	}
	if optExact != len(r.Rows) {
		t.Errorf("exact rule optimal on %d/%d", optExact, len(r.Rows))
	}
	// The paper's balance rule is a good heuristic: it should be optimal
	// on a clear majority of random trees.
	if optA1 < len(r.Rows)*2/3 {
		t.Errorf("Algorithm 1 optimal on only %d/%d trees", optA1, len(r.Rows))
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "brute") {
		t.Error("Write malformed")
	}
}

func TestManyCore(t *testing.T) {
	r, err := ManyCore(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Speedups) != len(r.Contention) {
		t.Fatal("shape wrong")
	}
	// Higher lock contention must never scale better.
	for c := 1; c < len(r.Contention); c++ {
		for i := range r.Cores {
			if r.Speedups[c][i] > r.Speedups[c-1][i]+0.05 {
				t.Errorf("contention %.2f beats %.2f at P=%d",
					r.Contention[c], r.Contention[c-1], r.Cores[i])
			}
		}
	}
	// At 64 cores even the default contention must be clearly sublinear —
	// the §8 motivation.
	last := len(r.Cores) - 1
	if r.Speedups[0][last] > 60 {
		t.Errorf("64-core speedup %.1f implausibly near-linear", r.Speedups[0][last])
	}
	if r.Speedups[0][last] < r.Speedups[0][last-1]*0.8 {
		// Default contention shouldn't collapse either.
		t.Errorf("64-core speedup %.1f collapsed below 32-core %.1f",
			r.Speedups[0][last], r.Speedups[0][last-1])
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "P=64") {
		t.Error("Write malformed")
	}
}

func TestSchedulerRoster(t *testing.T) {
	r, err := SchedulerRoster(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 6 {
		t.Fatalf("%d schedulers", len(r.Names))
	}
	byName := map[string]float64{}
	for i, n := range r.Names {
		byName[n] = r.Speedup8[i]
	}
	if byName["collaborative"] <= byName["centralized"] {
		t.Error("collaborative does not beat centralized")
	}
	if byName["collaborative"] <= byName["distributed"] {
		t.Error("collaborative does not beat distributed")
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "collaborative") {
		t.Error("Write malformed")
	}
}

func TestRealExecution(t *testing.T) {
	cfg := DefaultRealConfig()
	cfg.Cliques, cfg.Width = 16, 8 // keep the test fast
	cfg.Workers = []int{1, 2}
	cfg.Repeats = 1
	r, err := Real(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Serial <= 0 {
		t.Error("serial time not positive")
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Best <= 0 || row.Speedup <= 0 {
			t.Errorf("row %+v not positive", row)
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "collaborative") {
		t.Error("Write malformed")
	}
}

func TestHeuristics(t *testing.T) {
	r, err := Heuristics()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MinFillState <= 0 || row.MinDegState <= 0 {
			t.Errorf("%s: zero state space", row.Network)
		}
		if row.MinFillWidth < 1 || row.MinDegWidth < 1 {
			t.Errorf("%s: zero width", row.Network)
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "min-fill") {
		t.Error("Write malformed")
	}
}

func TestEvidenceCountIndependence(t *testing.T) {
	cfg := DefaultRealConfig()
	cfg.Cliques, cfg.Width = 32, 10
	cfg.Repeats = 3
	r, err := EvidenceCount(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Counts) < 4 {
		t.Fatalf("only %d evidence counts measured", len(r.Counts))
	}
	// The paper's claim: propagation time does not grow with evidence
	// count. Allow generous wall-clock noise on a busy host.
	base := float64(r.Times[0])
	for i, d := range r.Times {
		if float64(d) > base*2.5 {
			t.Errorf("time at %d evidence vars (%v) far above baseline (%v)", r.Counts[i], d, r.Times[0])
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "evidence variables") {
		t.Error("Write malformed")
	}
}

func TestCollectOnly(t *testing.T) {
	r, err := CollectOnly(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.TaskRatio != 0.5 {
		t.Errorf("task ratio = %v, want 0.5", r.TaskRatio)
	}
	for i := range r.Cores {
		frac := r.CollectSecs[i] / r.FullSeconds[i]
		if frac < 0.35 || frac > 0.75 {
			t.Errorf("P=%d: collect-only fraction %.2f outside [0.35, 0.75]", r.Cores[i], frac)
		}
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "task ratio") {
		t.Error("Write malformed")
	}
}

func TestDecompositionExperiment(t *testing.T) {
	r, err := Decomposition()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Blocks) != 5 {
		t.Fatalf("%d rows", len(r.Blocks))
	}
	for i := 1; i < len(r.Duplicated); i++ {
		if r.Duplicated[i] < r.Duplicated[i-1] {
			t.Errorf("duplication not monotone: %v", r.Duplicated)
			break
		}
	}
	if r.Duplicated[len(r.Duplicated)-1] == 0 {
		t.Error("no duplication at 32 blocks")
	}
	var buf bytes.Buffer
	r.Write(&buf)
	if !strings.Contains(buf.String(), "duplicated-entries") {
		t.Error("Write malformed")
	}
}
