// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7). Each Fig* function builds the paper's workload at
// the paper's exact parameters, runs the appropriate scheduler on the
// simulated multicore machine (see internal/machine for why simulation
// substitutes for the 8-core testbeds), and returns the series the figure
// plots. The Write methods print rows in the shape the paper reports;
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"time"

	"evprop/internal/jtree"
	"evprop/internal/machine"
	"evprop/internal/obs"
	"evprop/internal/taskgraph"
)

// Cores is the processor range of the paper's plots (two quad-core chips).
var Cores = []int{1, 2, 3, 4, 5, 6, 7, 8}

// autoThreshold is the harness's δ: a quarter of the mean task weight —
// so the dominant clique-sized operations split roughly eight ways while
// separator-sized tasks run whole — floored at 4096 entries, because
// splitting tables that already fit in L1 only buys scheduling overhead
// (the paper's δ is likewise an absolute table-size threshold).
func autoThreshold(g *taskgraph.Graph) float64 {
	if g.N() == 0 {
		return 0
	}
	d := g.TotalWeight() / float64(g.N()) / 4
	if d < 4096 {
		d = 4096
	}
	return d
}

// mustGraph builds the task graph for a junction-tree config.
func mustGraph(cfg jtree.RandomConfig) (*taskgraph.Graph, error) {
	tr, err := jtree.Random(cfg)
	if err != nil {
		return nil, err
	}
	return taskgraph.Build(tr), nil
}

// --- Fig. 5: speedup from junction-tree rerooting -------------------------

// Fig5Series is one curve of Fig. 5: the rerooting speedup of one template
// tree across core counts.
type Fig5Series struct {
	Branches int       // b (the template has b+1 branches)
	Speedup  []float64 // indexed parallel to Cores
}

// Fig5Result reproduces Fig. 5. Each platform panel of the paper maps to
// one cost model (machine.Xeon / machine.Opteron); Fig5 runs the model it
// is given and Fig5Both produces the two panels.
type Fig5Result struct {
	Platform string
	Series   []Fig5Series
}

// Fig5Both regenerates both panels of Fig. 5.
func Fig5Both() (xeon, opteron *Fig5Result, err error) {
	if xeon, err = Fig5(machine.Xeon()); err != nil {
		return nil, nil, err
	}
	xeon.Platform = "Intel Xeon (panel a)"
	if opteron, err = Fig5(machine.Opteron()); err != nil {
		return nil, nil, err
	}
	opteron.Platform = "AMD Opteron (panel b)"
	return xeon, opteron, nil
}

// Fig5 runs the rerooting experiment: template junction trees (Fig. 4) with
// b ∈ {1,2,4,8}, 512 cliques of 15 binary variables, task partitioning
// disabled, measuring Sp = t_original / t_rerooted.
func Fig5(cm machine.CostModel) (*Fig5Result, error) {
	out := &Fig5Result{}
	for _, b := range []int{1, 2, 4, 8} {
		tr, err := jtree.Template(jtree.TemplateConfig{
			Branches: b, TotalCliques: 512, Width: 15, States: 2,
		})
		if err != nil {
			return nil, err
		}
		orig := taskgraph.Build(tr)
		rerooted, _, _, err := tr.RerootMinimal()
		if err != nil {
			return nil, err
		}
		rg := taskgraph.Build(rerooted)
		s := Fig5Series{Branches: b}
		for _, p := range Cores {
			ro, err := machine.SimulateCollaborative(orig, p, 0, cm)
			if err != nil {
				return nil, err
			}
			rr, err := machine.SimulateCollaborative(rg, p, 0, cm)
			if err != nil {
				return nil, err
			}
			s.Speedup = append(s.Speedup, ro.Makespan/rr.Makespan)
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// Write prints the Fig. 5 rows.
func (r *Fig5Result) Write(w io.Writer) {
	platform := r.Platform
	if platform == "" {
		platform = "default platform"
	}
	fmt.Fprintf(w, "Fig. 5 — speedup from rerooting (template trees, partitioning off) — %s\n", platform)
	fmt.Fprint(w, "branches(b+1)")
	for _, p := range Cores {
		fmt.Fprintf(w, "  P=%d", p)
	}
	fmt.Fprintln(w)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%13d", s.Branches+1)
		for _, sp := range s.Speedup {
			fmt.Fprintf(w, " %4.2f", sp)
		}
		fmt.Fprintln(w)
	}
}

// --- Rerooting overhead (Section 7 text) ----------------------------------

// RerootOverheadResult compares the measured wall-clock cost of Algorithm 1
// against the simulated propagation time for a 512-clique tree — the
// paper reports 24 µs vs ~1e5 µs.
type RerootOverheadResult struct {
	RerootWall      time.Duration
	PropagationSim  time.Duration
	FractionPercent float64
}

// RerootOverhead measures Algorithm 1's cost (real wall clock — the
// algorithm is sequential, so the 1-core host measures it faithfully).
func RerootOverhead(cm machine.CostModel) (*RerootOverheadResult, error) {
	tr, err := jtree.Random(jtree.RandomConfig{N: 512, Width: 15, States: 2, Degree: 4, Seed: 7})
	if err != nil {
		return nil, err
	}
	// Warm once, then time the best of several runs to suppress noise.
	best := time.Duration(1 << 62)
	for i := 0; i < 10; i++ {
		start := time.Now()
		r := tr.SelectRoot()
		if _, err := tr.Reroot(r); err != nil {
			return nil, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	g := taskgraph.Build(tr)
	sim, err := machine.SimulateCollaborative(g, 8, autoThreshold(g), cm)
	if err != nil {
		return nil, err
	}
	prop := time.Duration(sim.Makespan * float64(time.Second))
	return &RerootOverheadResult{
		RerootWall:      best,
		PropagationSim:  prop,
		FractionPercent: 100 * float64(best) / float64(prop),
	}, nil
}

// Write prints the overhead comparison.
func (r *RerootOverheadResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Rerooting overhead (512-clique junction tree)")
	fmt.Fprintf(w, "  Algorithm 1 wall clock: %v\n", r.RerootWall)
	fmt.Fprintf(w, "  evidence propagation (8 cores, simulated): %v\n", r.PropagationSim)
	fmt.Fprintf(w, "  overhead fraction: %.4f%%\n", r.FractionPercent)
}

// --- Fig. 6: PNL-style distributed baseline --------------------------------

// Fig6Procs is the processor range of Fig. 6.
var Fig6Procs = []int{1, 2, 4, 8, 12, 16}

// Fig6Series is one junction tree's execution-time curve.
type Fig6Series struct {
	Name    string
	Seconds []float64 // indexed parallel to Fig6Procs
}

// Fig6Result reproduces Fig. 6: the distributed-memory (PNL-like) baseline
// whose execution time rises beyond 4 processors.
type Fig6Result struct {
	Series []Fig6Series
}

// Fig6 runs the distributed baseline over the paper's three junction trees.
func Fig6(cm machine.CostModel) (*Fig6Result, error) {
	out := &Fig6Result{}
	for _, tc := range []struct {
		name string
		cfg  jtree.RandomConfig
	}{
		{"Junction tree 1", jtree.JT1()},
		{"Junction tree 2", jtree.JT2()},
		{"Junction tree 3", jtree.JT3()},
	} {
		g, err := mustGraph(tc.cfg)
		if err != nil {
			return nil, err
		}
		s := Fig6Series{Name: tc.name}
		for _, p := range Fig6Procs {
			res, err := machine.SimulateDistributed(g, p, cm)
			if err != nil {
				return nil, err
			}
			s.Seconds = append(s.Seconds, res.Makespan)
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// Write prints the Fig. 6 rows.
func (r *Fig6Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Fig. 6 — PNL-style distributed baseline, execution time (s)")
	fmt.Fprint(w, "                ")
	for _, p := range Fig6Procs {
		fmt.Fprintf(w, "     P=%-2d", p)
	}
	fmt.Fprintln(w)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-16s", s.Name)
		for _, t := range s.Seconds {
			fmt.Fprintf(w, " %8.3f", t)
		}
		fmt.Fprintln(w)
	}
}

// --- Fig. 7: scalability of the three shared-memory methods ---------------

// Fig7Methods names the compared methods in plot order.
var Fig7Methods = []string{"openmp", "dataparallel", "collaborative"}

// Fig7Series is one (junction tree, method) speedup curve.
type Fig7Series struct {
	Tree    string
	Method  string
	Speedup []float64 // indexed parallel to Cores
}

// Fig7Result reproduces Fig. 7: speedups of the OpenMP baseline, the
// data-parallel baseline and the proposed collaborative scheduler on the
// paper's three junction trees.
type Fig7Result struct {
	Platform string
	Series   []Fig7Series
}

// Fig7Both regenerates both platform panels of Fig. 7.
func Fig7Both() (xeon, opteron *Fig7Result, err error) {
	if xeon, err = Fig7(machine.Xeon()); err != nil {
		return nil, nil, err
	}
	xeon.Platform = "Intel Xeon (panel a)"
	if opteron, err = Fig7(machine.Opteron()); err != nil {
		return nil, nil, err
	}
	opteron.Platform = "AMD Opteron (panel b)"
	return xeon, opteron, nil
}

// Fig7 runs all three methods over JT1–JT3.
func Fig7(cm machine.CostModel) (*Fig7Result, error) {
	out := &Fig7Result{}
	for _, tc := range []struct {
		name string
		cfg  jtree.RandomConfig
	}{
		{"JT1", jtree.JT1()},
		{"JT2", jtree.JT2()},
		{"JT3", jtree.JT3()},
	} {
		g, err := mustGraph(tc.cfg)
		if err != nil {
			return nil, err
		}
		serial := machine.SerialTime(g, cm)
		for _, method := range Fig7Methods {
			s := Fig7Series{Tree: tc.name, Method: method}
			for _, p := range Cores {
				var res *machine.Result
				switch method {
				case "openmp":
					res, err = machine.SimulateOpenMP(g, p, cm)
				case "dataparallel":
					res, err = machine.SimulateDataParallel(g, p, cm)
				case "collaborative":
					res, err = machine.SimulateCollaborative(g, p, autoThreshold(g), cm)
				}
				if err != nil {
					return nil, err
				}
				s.Speedup = append(s.Speedup, serial/res.Makespan)
			}
			out.Series = append(out.Series, s)
		}
	}
	return out, nil
}

// Write prints the Fig. 7 rows.
func (r *Fig7Result) Write(w io.Writer) {
	platform := r.Platform
	if platform == "" {
		platform = "default platform"
	}
	fmt.Fprintf(w, "Fig. 7 — speedup of evidence propagation methods — %s\n", platform)
	fmt.Fprint(w, "tree method        ")
	for _, p := range Cores {
		fmt.Fprintf(w, "  P=%d ", p)
	}
	fmt.Fprintln(w)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-4s %-14s", s.Tree, s.Method)
		for _, sp := range s.Speedup {
			fmt.Fprintf(w, " %5.2f", sp)
		}
		fmt.Fprintln(w)
	}
}

// --- Fig. 8: load balance and scheduler overhead ---------------------------

// Fig8Point is one (thread count) measurement.
type Fig8Point struct {
	P            int
	BusySeconds  []float64 // per-thread computation time
	OverheadPct  []float64 // per-thread scheduling time / makespan
	MakespanSecs float64
	// LoadBalance and OverheadFrac are the figure's two summary gauges,
	// computed by internal/obs with the same definitions used for real
	// runs: max/mean per-thread busy time, and scheduling time over total
	// worker time.
	LoadBalance  float64
	OverheadFrac float64
}

// Fig8Result reproduces Fig. 8 on Junction tree 1.
type Fig8Result struct {
	Points []Fig8Point
}

// Fig8 measures per-thread computation time and scheduler overhead for the
// collaborative scheduler on JT1.
func Fig8(cm machine.CostModel) (*Fig8Result, error) {
	g, err := mustGraph(jtree.JT1())
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{}
	for _, p := range Cores {
		res, err := machine.SimulateCollaborative(g, p, autoThreshold(g), cm)
		if err != nil {
			return nil, err
		}
		pt := Fig8Point{P: p, MakespanSecs: res.Makespan}
		for c := 0; c < p; c++ {
			pt.BusySeconds = append(pt.BusySeconds, res.Busy[c])
			pt.OverheadPct = append(pt.OverheadPct, 100*res.Overhead[c]/res.Makespan)
		}
		rep := obs.FromSim(pt.BusySeconds, res.Overhead[:p], res.Makespan)
		pt.LoadBalance = rep.LoadBalance
		pt.OverheadFrac = rep.OverheadFraction
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Write prints the Fig. 8 rows.
func (r *Fig8Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Fig. 8 — load balance and scheduling overhead (Junction tree 1)")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "P=%d makespan=%.4fs load-balance=%.3f sched-frac=%.5f\n",
			pt.P, pt.MakespanSecs, pt.LoadBalance, pt.OverheadFrac)
		fmt.Fprint(w, "  busy(s):   ")
		for _, b := range pt.BusySeconds {
			fmt.Fprintf(w, " %7.4f", b)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, "  sched(%):  ")
		for _, o := range pt.OverheadPct {
			fmt.Fprintf(w, " %7.4f", o)
		}
		fmt.Fprintln(w)
	}
}

// --- Fig. 9: parameter sensitivity ----------------------------------------

// Fig9Series is one parameter setting's speedup curve.
type Fig9Series struct {
	Panel   string // "N", "wC", "r", "k"
	Label   string
	Speedup []float64
}

// Fig9Result reproduces Fig. 9: speedups while varying the number of
// cliques N, the clique width w_C, the variable states r and the clique
// degree k around the Junction tree 1 configuration.
type Fig9Result struct {
	Series []Fig9Series
}

// Fig9 sweeps the four junction-tree parameters.
func Fig9(cm machine.CostModel) (*Fig9Result, error) {
	base := jtree.JT1()
	out := &Fig9Result{}
	add := func(panel, label string, cfg jtree.RandomConfig) error {
		g, err := mustGraph(cfg)
		if err != nil {
			return err
		}
		serial := machine.SerialTime(g, cm)
		s := Fig9Series{Panel: panel, Label: label}
		for _, p := range Cores {
			res, err := machine.SimulateCollaborative(g, p, autoThreshold(g), cm)
			if err != nil {
				return err
			}
			s.Speedup = append(s.Speedup, serial/res.Makespan)
		}
		out.Series = append(out.Series, s)
		return nil
	}
	for _, n := range []int{128, 256, 512, 1024} {
		cfg := base
		cfg.N = n
		if err := add("N", fmt.Sprintf("N=%d", n), cfg); err != nil {
			return nil, err
		}
	}
	for _, wc := range []int{10, 15, 20} {
		cfg := base
		cfg.Width = wc
		if err := add("wC", fmt.Sprintf("wC=%d", wc), cfg); err != nil {
			return nil, err
		}
	}
	for _, r := range []int{2, 3} {
		cfg := base
		cfg.States = r
		cfg.Width = 15 // r=3 at width 20 is beyond even the skeleton limit
		if err := add("r", fmt.Sprintf("r=%d (wC=15)", r), cfg); err != nil {
			return nil, err
		}
	}
	for _, k := range []int{2, 4, 8} {
		cfg := base
		cfg.Degree = k
		if err := add("k", fmt.Sprintf("k=%d", k), cfg); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Write prints the Fig. 9 rows grouped by panel.
func (r *Fig9Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Fig. 9 — speedup vs junction tree parameters (collaborative, 8 cores max)")
	last := ""
	for _, s := range r.Series {
		if s.Panel != last {
			fmt.Fprintf(w, " panel (%s):\n", s.Panel)
			last = s.Panel
		}
		fmt.Fprintf(w, "  %-12s", s.Label)
		for _, sp := range s.Speedup {
			fmt.Fprintf(w, " %5.2f", sp)
		}
		fmt.Fprintln(w)
	}
}
