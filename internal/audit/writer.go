package audit

import (
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// Writer drains audit records from a wait-free ring into Merkle-chained
// batches on a Store.
//
// The contract mirrors the flight recorder's: Enqueue never blocks and
// never takes a lock — one atomic fetch-add claims a slot, one atomic
// pointer store publishes the record — so the serving hot path pays the
// same ~0.1% budget whether the ring is empty or saturated. When
// producers outrun the drainer the ring overwrites; the drainer detects
// every overwritten slot by its sequence number and counts it in Dropped.
// Losing records under backpressure is the designed failure mode; losing
// them silently is not.
//
// One background goroutine drains the ring, accumulates a batch, and
// flushes to the store when the batch fills (Config.BatchSize) or ages
// out (Config.FlushAge). Each flush computes the batch's Merkle root over
// the canonical record encodings and chains it to the previous root.
type Writer struct {
	store Store
	cfg   Config

	ring []atomic.Pointer[Record]
	mask uint64
	// head is the producers' ticket counter: record i of this process
	// gets sequence seqBase+i. tail is owned by the drainer.
	head    atomic.Uint64
	seqBase uint64
	tail    uint64

	// Stats. dropped/batches/records/flushes/storeErrors and the flush
	// latency pair are written by the drainer and read by Stats callers.
	dropped      atomic.Uint64
	batches      atomic.Uint64
	records      atomic.Uint64
	storeErrors  atomic.Uint64
	flushNsTotal atomic.Int64
	flushNsMax   atomic.Int64
	lastErr      atomic.Pointer[string]
	lastRoot     atomic.Pointer[[HashSize]byte]

	// Drainer state.
	batchSeq  uint64
	prevRoot  [HashSize]byte
	pending   []*Record
	pendingAt time.Time // when pending[0] was drained
	flushReq  chan chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce atomic.Bool
}

// Config tunes the writer. Zero values select the defaults.
type Config struct {
	// BatchSize flushes a batch once it holds this many records
	// (default 64).
	BatchSize int
	// FlushAge flushes a partial batch once its oldest record has waited
	// this long (default 1s), bounding how much a crash can lose.
	FlushAge time.Duration
	// RingSize is the enqueue ring capacity, rounded up to a power of two
	// (default 4096). Producers more than RingSize records ahead of the
	// drainer overwrite; overwritten records count as dropped.
	RingSize int
}

const (
	defaultBatchSize = 64
	defaultFlushAge  = time.Second
	defaultRingSize  = 4096
)

// NewWriter starts a writer over the store. If the store can Resume, the
// writer continues the persisted chain: batch and record sequences and
// the previous root carry on where the last run stopped.
func NewWriter(store Store, cfg Config) (*Writer, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = defaultBatchSize
	}
	if cfg.FlushAge <= 0 {
		cfg.FlushAge = defaultFlushAge
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = defaultRingSize
	}
	size := 1
	for size < cfg.RingSize {
		size <<= 1
	}
	w := &Writer{
		store:    store,
		cfg:      cfg,
		ring:     make([]atomic.Pointer[Record], size),
		mask:     uint64(size - 1),
		flushReq: make(chan chan struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if r, ok := store.(Resumer); ok {
		prevRoot, nextBatch, nextRecord, err := r.Resume()
		if err != nil {
			return nil, fmt.Errorf("audit: resume: %w", err)
		}
		w.prevRoot, w.batchSeq, w.seqBase = prevRoot, nextBatch, nextRecord
		if nextBatch > 0 {
			root := prevRoot
			w.lastRoot.Store(&root)
		}
	}
	go w.drainLoop()
	return w, nil
}

// Enqueue publishes one record for spilling. It is wait-free and safe
// from any number of goroutines: one fetch-add, one pointer store. The
// writer owns the record afterwards; callers must not mutate it. Records
// enqueued when producers are a full ring ahead of the drainer replace
// older undrained records, which the drainer counts as dropped.
func (w *Writer) Enqueue(r *Record) {
	ticket := w.head.Add(1) - 1
	r.Seq = w.seqBase + ticket
	w.ring[ticket&w.mask].Store(r)
}

// Flush drains everything currently enqueued and flushes any pending
// batch, blocking until the store append completes — the determinism
// hook for tests and for scrape-consistent stats.
func (w *Writer) Flush() {
	ack := make(chan struct{})
	select {
	case w.flushReq <- ack:
		<-ack
	case <-w.done:
	}
}

// Close drains outstanding records, flushes the final batch, and closes
// the store. Records enqueued concurrently with Close may be dropped
// (and counted); callers should stop producers first — evserve closes
// the writer only after the HTTP server has drained.
func (w *Writer) Close() error {
	if w.closeOnce.Swap(true) {
		<-w.done
		return nil
	}
	close(w.stop)
	<-w.done
	return w.store.Close()
}

// WriterStats is a point-in-time snapshot of the writer's counters.
type WriterStats struct {
	// Enqueued counts records handed to Enqueue; Dropped the subset lost
	// to ring overwrite backpressure (Spilled = Enqueued - Dropped -
	// in-flight).
	Enqueued uint64 `json:"enqueued"`
	Dropped  uint64 `json:"dropped"`
	// Spilled counts records flushed into batches, and Batches the
	// batches appended to the store.
	Spilled uint64 `json:"spilled"`
	Batches uint64 `json:"batches"`
	// StoreErrors counts failed appends (those batches are lost and their
	// records counted dropped); LastError is the most recent failure.
	StoreErrors uint64 `json:"store_errors"`
	LastError   string `json:"last_error,omitempty"`
	// FlushTotalUsec and FlushMaxUsec aggregate store-append latency.
	FlushTotalUsec float64 `json:"flush_total_usec"`
	FlushMaxUsec   float64 `json:"flush_max_usec"`
	// LastRoot is the chain head — the most recently flushed batch's
	// Merkle root, hex-encoded ("" before the first flush).
	LastRoot string `json:"last_root,omitempty"`
}

// Stats snapshots the writer's counters. Safe concurrently with Enqueue
// and the drainer.
func (w *Writer) Stats() WriterStats {
	st := WriterStats{
		Enqueued:       w.head.Load(),
		Dropped:        w.dropped.Load(),
		Spilled:        w.records.Load(),
		Batches:        w.batches.Load(),
		StoreErrors:    w.storeErrors.Load(),
		FlushTotalUsec: float64(w.flushNsTotal.Load()) / 1e3,
		FlushMaxUsec:   float64(w.flushNsMax.Load()) / 1e3,
	}
	if p := w.lastErr.Load(); p != nil {
		st.LastError = *p
	}
	if p := w.lastRoot.Load(); p != nil {
		st.LastRoot = hex.EncodeToString(p[:])
	}
	return st
}

// drainLoop is the single consumer: poll the ring, batch, flush.
func (w *Writer) drainLoop() {
	defer close(w.done)
	interval := w.cfg.FlushAge / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if interval > 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.drain()
			if len(w.pending) > 0 && time.Since(w.pendingAt) >= w.cfg.FlushAge {
				w.flush()
			}
		case ack := <-w.flushReq:
			w.drain()
			if len(w.pending) > 0 {
				w.flush()
			}
			close(ack)
		case <-w.stop:
			w.finalDrain()
			if len(w.pending) > 0 {
				w.flush()
			}
			return
		}
	}
}

// drain consumes published records from tail toward head, stopping at
// the first slot whose record has not been published yet (order is
// preserved; the producer holding that ticket is mid-store). A slot
// holding a *newer* sequence than expected means the expected record was
// overwritten before it could be read: it is counted dropped and the
// scan continues.
func (w *Writer) drain() {
	for {
		head := w.head.Load()
		if w.tail == head {
			return
		}
		// Producers a full lap ahead have already overwritten everything
		// below head-ring: fast-forward instead of inspecting doomed slots
		// one by one.
		if head-w.tail > uint64(len(w.ring)) {
			skip := head - uint64(len(w.ring)) - w.tail
			w.dropped.Add(skip)
			w.tail += skip
		}
		r := w.ring[w.tail&w.mask].Load()
		if r == nil {
			return // slot never published
		}
		expect := w.seqBase + w.tail
		switch {
		case r.Seq < expect:
			// A previous lap's record: this lap's producer claimed the
			// ticket but has not stored yet. Wait for it.
			return
		case r.Seq > expect:
			// Our record was overwritten by a later lap before we got here.
			w.dropped.Add(1)
			w.tail++
			continue
		}
		if len(w.pending) == 0 {
			w.pendingAt = time.Now()
		}
		w.pending = append(w.pending, r)
		w.tail++
		if len(w.pending) >= w.cfg.BatchSize {
			w.flush()
		}
	}
}

// finalDrain is drain for shutdown: a slot that stays unpublished is a
// producer that died between claiming a ticket and storing — after a
// bounded wait the remaining claims are counted dropped rather than
// stalling Close forever.
func (w *Writer) finalDrain() {
	deadline := time.Now().Add(50 * time.Millisecond)
	for {
		w.drain()
		head := w.head.Load()
		if w.tail == head {
			return
		}
		if time.Now().After(deadline) {
			w.dropped.Add(head - w.tail)
			w.tail = head
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// flush encodes the pending records, roots and chains the batch, and
// appends it to the store. A failed append drops the batch and counts
// its records: the next batch reuses this sequence number and prev-root,
// keeping the persisted chain contiguous.
func (w *Writer) flush() {
	payloads := make([][]byte, len(w.pending))
	for i, r := range w.pending {
		payloads[i] = r.Encode()
	}
	b := &Batch{
		Seq:          w.batchSeq,
		TimeUnixNano: time.Now().UnixNano(),
		FirstSeq:     w.pending[0].Seq,
		LastSeq:      w.pending[len(w.pending)-1].Seq,
		PrevRoot:     w.prevRoot,
		Records:      payloads,
	}
	b.Root = BatchRoot(b)
	root := b.Root
	n := len(w.pending)
	w.pending = w.pending[:0]
	start := time.Now()
	err := w.store.Append(b)
	ns := time.Since(start).Nanoseconds()
	w.flushNsTotal.Add(ns)
	if ns > w.flushNsMax.Load() {
		w.flushNsMax.Store(ns)
	}
	if err != nil {
		w.storeErrors.Add(1)
		w.dropped.Add(uint64(n))
		msg := err.Error()
		w.lastErr.Store(&msg)
		return
	}
	w.prevRoot = root
	w.batchSeq++
	w.batches.Add(1)
	w.records.Add(uint64(n))
	rootCopy := root
	w.lastRoot.Store(&rootCopy)
}
