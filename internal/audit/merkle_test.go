package audit

import "testing"

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		r := &Record{Seq: uint64(i), Model: "m", PEvidence: float64(i) / 7}
		out[i] = r.Encode()
	}
	return out
}

func chainOf(t *testing.T, sizes ...int) []*Batch {
	t.Helper()
	var prev [HashSize]byte
	var batches []*Batch
	seq := uint64(0)
	for i, n := range sizes {
		ps := payloads(n)
		b := &Batch{
			Seq:      uint64(i),
			FirstSeq: seq,
			LastSeq:  seq + uint64(n) - 1,
			PrevRoot: prev,
			Records:  ps,
		}
		b.Root = BatchRoot(b)
		seq += uint64(n)
		prev = b.Root
		batches = append(batches, b)
	}
	return batches
}

func TestMerkleRootShape(t *testing.T) {
	// Roots over different leaf counts (odd promotion path included)
	// must all differ and be stable.
	seen := map[[HashSize]byte]int{}
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		root := MerkleRoot(payloads(n))
		if again := MerkleRoot(payloads(n)); again != root {
			t.Fatalf("root over %d leaves not deterministic", n)
		}
		if prev, dup := seen[root]; dup {
			t.Fatalf("roots over %d and %d leaves collide", n, prev)
		}
		seen[root] = n
	}
	if MerkleRoot(nil) != ([HashSize]byte{}) {
		t.Fatal("empty root not zero")
	}
}

func TestVerifyChainOK(t *testing.T) {
	if err := VerifyChain(chainOf(t, 4, 1, 3, 8)); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChain(nil); err != nil {
		t.Fatal(err)
	}
	// A chain opened mid-stream (older segments pruned) still verifies.
	if err := VerifyChain(chainOf(t, 2, 2, 2)[1:]); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyChainTamper: flipping any single byte of any record payload,
// any root, or any prev-root must fail verification.
func TestVerifyChainTamper(t *testing.T) {
	base := func() []*Batch { return chainOf(t, 3, 2, 4) }

	t.Run("record-byte", func(t *testing.T) {
		for bi, b := range base() {
			for ri := range b.Records {
				for off := range b.Records[ri] {
					batches := base()
					batches[bi].Records[ri][off] ^= 0x01
					if err := VerifyChain(batches); err == nil {
						t.Fatalf("flip batch %d record %d byte %d undetected", bi, ri, off)
					}
				}
			}
		}
	})
	t.Run("root", func(t *testing.T) {
		batches := base()
		batches[1].Root[5] ^= 0x80
		if err := VerifyChain(batches); err == nil {
			t.Fatal("flipped root undetected")
		}
	})
	t.Run("prev-root", func(t *testing.T) {
		batches := base()
		batches[2].PrevRoot[0] ^= 0x01
		if err := VerifyChain(batches); err == nil {
			t.Fatal("flipped prev-root undetected")
		}
	})
	t.Run("dropped-batch", func(t *testing.T) {
		batches := base()
		if err := VerifyChain(append(batches[:1], batches[2:]...)); err == nil {
			t.Fatal("removed middle batch undetected")
		}
	})
	t.Run("swapped-records", func(t *testing.T) {
		batches := base()
		rs := batches[0].Records
		rs[0], rs[1] = rs[1], rs[0]
		if err := VerifyChain(batches); err == nil {
			t.Fatal("reordered records undetected")
		}
	})
}

func TestDecodeBatch(t *testing.T) {
	b := chainOf(t, 5)[0]
	recs, err := DecodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) || r.Model != "m" {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	b.Records[2] = b.Records[2][:3]
	if _, err := DecodeBatch(b); err == nil {
		t.Fatal("truncated record decoded without error")
	}
}
