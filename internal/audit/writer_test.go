package audit

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestWriterSpillsInOrder(t *testing.T) {
	store := NewMemStore()
	w, err := NewWriter(store, Config{BatchSize: 8, FlushAge: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		w.Enqueue(&Record{Model: "m", ID: fmt.Sprintf("q-%d", i)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Enqueued != n || st.Dropped != 0 || st.Spilled != n {
		t.Fatalf("stats: %+v", st)
	}
	batches := store.Batches()
	if err := VerifyChain(batches); err != nil {
		t.Fatal(err)
	}
	var seq uint64
	for _, b := range batches {
		recs, err := DecodeBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Seq != seq {
				t.Fatalf("record seq %d, want %d", r.Seq, seq)
			}
			seq++
		}
	}
	if seq != n {
		t.Fatalf("recovered %d records, want %d", seq, n)
	}
}

// TestWriterConcurrentSpill is the -race spill-under-load test: many
// producers hammer Enqueue while the drainer flushes. Every record must
// be either spilled or counted dropped — none lost silently — and the
// persisted chain must verify.
func TestWriterConcurrentSpill(t *testing.T) {
	store := NewMemStore()
	w, err := NewWriter(store, Config{BatchSize: 32, FlushAge: time.Millisecond, RingSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	const producers = 8
	const perProducer = 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				w.Enqueue(&Record{Model: "m", Version: int64(p), PEvidence: float64(i)})
			}
		}(p)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Enqueued != producers*perProducer {
		t.Fatalf("enqueued %d, want %d", st.Enqueued, producers*perProducer)
	}
	if st.Spilled+st.Dropped != st.Enqueued {
		t.Fatalf("spilled %d + dropped %d != enqueued %d", st.Spilled, st.Dropped, st.Enqueued)
	}
	batches := store.Batches()
	if err := VerifyChain(batches); err != nil {
		t.Fatal(err)
	}
	var total, prevSeq uint64
	first := true
	for _, b := range batches {
		recs, err := DecodeBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		total += uint64(len(recs))
		for _, r := range recs {
			if !first && r.Seq <= prevSeq {
				t.Fatalf("record seq %d after %d: order violated", r.Seq, prevSeq)
			}
			prevSeq, first = r.Seq, false
		}
	}
	if total != st.Spilled {
		t.Fatalf("store holds %d records, stats say %d", total, st.Spilled)
	}
}

// TestWriterBackpressureDrops: a ring much smaller than the burst, with
// the drainer unable to keep up, must drop — and count every drop.
func TestWriterBackpressureDrops(t *testing.T) {
	store := &slowStore{MemStore: NewMemStore(), delay: 5 * time.Millisecond}
	w, err := NewWriter(store, Config{BatchSize: 4, FlushAge: time.Millisecond, RingSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		w.Enqueue(&Record{ID: fmt.Sprintf("q-%d", i)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Dropped == 0 {
		t.Fatal("expected drops under backpressure")
	}
	if st.Spilled+st.Dropped != n {
		t.Fatalf("spilled %d + dropped %d != %d", st.Spilled, st.Dropped, n)
	}
	if err := VerifyChain(store.Batches()); err != nil {
		t.Fatal(err)
	}
}

type slowStore struct {
	*MemStore
	delay time.Duration
}

func (s *slowStore) Append(b *Batch) error {
	time.Sleep(s.delay)
	return s.MemStore.Append(b)
}

// TestWriterFlushAge: a partial batch must flush once it ages out, not
// wait for BatchSize.
func TestWriterFlushAge(t *testing.T) {
	store := NewMemStore()
	w, err := NewWriter(store, Config{BatchSize: 1 << 20, FlushAge: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Enqueue(&Record{ID: "lonely"})
	deadline := time.Now().Add(2 * time.Second)
	for len(store.Batches()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("aged batch never flushed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWriterStoreError: failed appends surface in stats, count their
// records dropped, and keep the chain contiguous for later batches.
func TestWriterStoreError(t *testing.T) {
	store := &flakyStore{MemStore: NewMemStore(), failures: 1}
	w, err := NewWriter(store, Config{BatchSize: 2, FlushAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	w.Enqueue(&Record{ID: "a"})
	w.Enqueue(&Record{ID: "b"})
	w.Flush() // first batch: append fails
	w.Enqueue(&Record{ID: "c"})
	w.Enqueue(&Record{ID: "d"})
	w.Flush() // second batch: append succeeds
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.StoreErrors != 1 || st.LastError == "" {
		t.Fatalf("stats: %+v", st)
	}
	if st.Dropped != 2 || st.Spilled != 2 {
		t.Fatalf("stats: %+v", st)
	}
	batches := store.Batches()
	if len(batches) != 1 || batches[0].Seq != 0 {
		t.Fatalf("batches: %+v", batches)
	}
	if err := VerifyChain(batches); err != nil {
		t.Fatal(err)
	}
}

type flakyStore struct {
	*MemStore
	failures int
}

func (s *flakyStore) Append(b *Batch) error {
	if s.failures > 0 {
		s.failures--
		return errors.New("disk on fire")
	}
	return s.MemStore.Append(b)
}

func TestWriterFlushIdleAndAfterClose(t *testing.T) {
	w, err := NewWriter(NewMemStore(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	w.Flush() // nothing pending: must not deadlock
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Flush() // after close: must not deadlock
	if err := w.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}
