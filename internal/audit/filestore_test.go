package audit

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func fileBatches(t *testing.T, dir string) []*Batch {
	t.Helper()
	batches, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return batches
}

func writeThrough(t *testing.T, dir string, cfg Config, fsOpts FileStoreOptions, ids ...string) {
	t.Helper()
	fs, err := OpenFileStore(dir, fsOpts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		w.Enqueue(&Record{ID: id, Model: "m"})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func idsOf(t *testing.T, batches []*Batch) []string {
	t.Helper()
	var out []string
	for _, b := range batches {
		recs, err := DecodeBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			out = append(out, r.ID)
		}
	}
	return out
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeThrough(t, dir, Config{BatchSize: 3, FlushAge: time.Hour}, FileStoreOptions{}, "a", "b", "c", "d", "e", "f", "g")
	batches := fileBatches(t, dir)
	if err := VerifyChain(batches); err != nil {
		t.Fatal(err)
	}
	got := idsOf(t, batches)
	want := []string{"a", "b", "c", "d", "e", "f", "g"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestFileStoreRotationBoundary: a tiny size bound must split batches
// across segment files exactly at append boundaries, with the chain
// verifying across the segment split and every batch recovered.
func TestFileStoreRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir, FileStoreOptions{MaxSegmentBytes: 1}) // rotate after every batch
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(fs, Config{BatchSize: 2, FlushAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Enqueue(&Record{ID: string(rune('a' + i))})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 {
		t.Fatalf("got %d segments (%v), want 5", len(names), names)
	}
	batches := fileBatches(t, dir)
	if len(batches) != 5 {
		t.Fatalf("got %d batches", len(batches))
	}
	if err := VerifyChain(batches); err != nil {
		t.Fatal(err)
	}
	if got := idsOf(t, batches); len(got) != 10 {
		t.Fatalf("recovered %d records", len(got))
	}
}

// TestFileStoreResume: reopening a directory continues the chain — batch
// sequences, record sequences and the prev-root all carry on, and the
// combined log verifies end to end.
func TestFileStoreResume(t *testing.T) {
	dir := t.TempDir()
	writeThrough(t, dir, Config{BatchSize: 2, FlushAge: time.Hour}, FileStoreOptions{}, "a", "b", "c", "d")
	writeThrough(t, dir, Config{BatchSize: 2, FlushAge: time.Hour}, FileStoreOptions{}, "e", "f")
	batches := fileBatches(t, dir)
	if err := VerifyChain(batches); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("got %d batches", len(batches))
	}
	for i, b := range batches {
		if b.Seq != uint64(i) {
			t.Fatalf("batch %d has seq %d", i, b.Seq)
		}
	}
	ids := idsOf(t, batches)
	if len(ids) != 6 || ids[4] != "e" || ids[5] != "f" {
		t.Fatalf("ids: %v", ids)
	}
	last := batches[2]
	recs, err := DecodeBatch(last)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Seq != 4 {
		t.Fatalf("resumed record seq %d, want 4", recs[0].Seq)
	}
}

// TestFileStoreCrashRecovery: a torn tail frame (crash mid-write) is
// truncated on reopen; every batch whose append completed survives, and
// the writer resumes cleanly after the truncation.
func TestFileStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	writeThrough(t, dir, Config{BatchSize: 2, FlushAge: time.Hour}, FileStoreOptions{}, "a", "b", "c", "d", "e", "f")
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: keep its length prefix and half its body.
	batches := fileBatches(t, dir)
	if len(batches) != 3 {
		t.Fatalf("setup: %d batches", len(batches))
	}
	lastFrame := len(encodeFrame(batches[2]))
	if err := os.WriteFile(path, data[:len(data)-lastFrame/2], 0o644); err != nil {
		t.Fatal(err)
	}

	fs, err := OpenFileStore(dir, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, nextBatch, nextRecord, err := fs.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if nextBatch != 2 || nextRecord != 4 {
		t.Fatalf("resume: nextBatch %d nextRecord %d", nextBatch, nextRecord)
	}
	w, err := NewWriter(fs, Config{BatchSize: 2, FlushAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	w.Enqueue(&Record{ID: "g"})
	w.Enqueue(&Record{ID: "h"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := fileBatches(t, dir)
	if err := VerifyChain(recovered); err != nil {
		t.Fatal(err)
	}
	ids := idsOf(t, recovered)
	want := []string{"a", "b", "c", "d", "g", "h"}
	if len(ids) != len(want) {
		t.Fatalf("ids: %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids: %v, want %v", ids, want)
		}
	}
}

// TestFileStoreTamper: flipping a single byte anywhere in a stored
// record, root or prev-root must fail offline verification; flipping
// framing bytes must fail the read or lose batches (never read back a
// chain that claims the original, complete content).
func TestFileStoreTamper(t *testing.T) {
	dir := t.TempDir()
	writeThrough(t, dir, Config{BatchSize: 2, FlushAge: time.Hour}, FileStoreOptions{}, "a", "b", "c", "d")
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, names[0])
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantBatches := len(fileBatches(t, dir))
	wantIDs := idsOf(t, fileBatches(t, dir))
	detected := 0
	for off := 0; off < len(orig); off++ {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x01
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		batches, err := ReadDir(dir)
		if err != nil {
			detected++ // structural damage: read refuses
			continue
		}
		if err := VerifyChain(batches); err != nil {
			detected++ // content damage: chain refuses
			continue
		}
		// The read succeeded and the chain verified: the only acceptable
		// outcome is a shorter log (framing flip read as a torn tail —
		// indistinguishable from a crash, and visibly missing batches).
		if len(batches) >= wantBatches {
			ids := idsOf(t, batches)
			same := len(ids) == len(wantIDs)
			for i := 0; same && i < len(ids); i++ {
				same = ids[i] == wantIDs[i]
			}
			if same {
				t.Fatalf("flip at offset %d fully undetected", off)
			}
		}
	}
	if detected == 0 {
		t.Fatal("no flip was detected by verification")
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
}
