package audit

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Tamper evidence: each flushed batch carries a root binding the Merkle
// tree over its canonically-encoded records to its header (which embeds
// the previous batch's root), so the whole log is one hash chain.
// Flipping any byte of any stored record or batch header changes the
// batch root, therefore every later batch's expected PrevRoot — an
// offline verifier detects it without trusting the process that wrote
// the log. What the chain cannot prove is that the log
// is complete at the tail: truncating whole trailing batches is
// indistinguishable from a crash before they were written (the usual
// limit of crash-tolerant append-only logs).

// HashSize is the byte length of leaf, node and root hashes (SHA-256).
const HashSize = sha256.Size

// Domain-separation prefixes: leaves and interior nodes hash under
// different tags so an interior node can never be replayed as a leaf
// (the classic second-preimage trick against naive Merkle trees).
const (
	leafTag = 0x00
	nodeTag = 0x01
)

// leafHash hashes one record payload into a tree leaf.
func leafHash(payload []byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{leafTag})
	h.Write(payload)
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two child hashes into their parent.
func nodeHash(l, r [HashSize]byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{nodeTag})
	h.Write(l[:])
	h.Write(r[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// MerkleRoot computes the root over the payloads in order. Odd nodes are
// promoted unpaired (never duplicated — duplication lets two different
// leaf sets share a root). The root of zero payloads is the zero hash.
func MerkleRoot(payloads [][]byte) [HashSize]byte {
	if len(payloads) == 0 {
		return [HashSize]byte{}
	}
	level := make([][HashSize]byte, len(payloads))
	for i, p := range payloads {
		level[i] = leafHash(p)
	}
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// Batch is one flushed group of records: the unit of storage, hashing and
// chaining.
type Batch struct {
	// Seq numbers batches contiguously from 0 (or the resume point);
	// verification rejects gaps and reordering.
	Seq uint64
	// TimeUnixNano is the flush time.
	TimeUnixNano int64
	// FirstSeq and LastSeq are the record sequence range. The range may
	// contain gaps: records dropped under backpressure keep their sequence
	// numbers, so gaps are visible and accounted, never silent.
	FirstSeq, LastSeq uint64
	// PrevRoot is the previous batch's Root (zero for the first batch) and
	// Root the batch root (see BatchRoot) — the chain links.
	PrevRoot, Root [HashSize]byte
	// Records holds the canonically-encoded record payloads in sequence
	// order.
	Records [][]byte
}

// BatchRoot computes the batch's chained root: the Merkle root over the
// record payloads, bound to a canonical encoding of the batch header
// (sequence, flush time, record range, previous root). Binding the header
// makes batch metadata tamper-evident too — and because PrevRoot is part
// of the header, each root transitively commits to the entire chain
// before it.
func BatchRoot(b *Batch) [HashSize]byte {
	hdr := make([]byte, 0, 4*8+HashSize)
	hdr = binary.LittleEndian.AppendUint64(hdr, b.Seq)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(b.TimeUnixNano))
	hdr = binary.LittleEndian.AppendUint64(hdr, b.FirstSeq)
	hdr = binary.LittleEndian.AppendUint64(hdr, b.LastSeq)
	hdr = append(hdr, b.PrevRoot[:]...)
	return nodeHash(leafHash(hdr), MerkleRoot(b.Records))
}

// VerifyChain checks a batch sequence read from a store: every batch's
// root must recompute from its header and records, roots must chain, and
// batch sequence numbers must be contiguous. It returns the first
// violation with enough context to locate the tampered batch.
func VerifyChain(batches []*Batch) error {
	var prev [HashSize]byte
	for i, b := range batches {
		if i > 0 && b.Seq != batches[i-1].Seq+1 {
			return fmt.Errorf("audit: batch %d follows batch %d: chain gap or reorder", b.Seq, batches[i-1].Seq)
		}
		if b.PrevRoot != prev {
			if i == 0 {
				// A log opened mid-chain (earlier segments pruned) is still
				// internally verifiable; only a genuinely broken link fails.
				prev = b.PrevRoot
			} else {
				return fmt.Errorf("audit: batch %d prev-root mismatch: have %s, chain says %s",
					b.Seq, hex.EncodeToString(b.PrevRoot[:8]), hex.EncodeToString(prev[:8]))
			}
		}
		root := BatchRoot(b)
		if !bytes.Equal(root[:], b.Root[:]) {
			return fmt.Errorf("audit: batch %d root mismatch: contents hash to %s, header says %s",
				b.Seq, hex.EncodeToString(root[:8]), hex.EncodeToString(b.Root[:8]))
		}
		prev = b.Root
	}
	return nil
}

// DecodeBatch parses every record payload of a verified batch.
func DecodeBatch(b *Batch) ([]*Record, error) {
	out := make([]*Record, 0, len(b.Records))
	for i, payload := range b.Records {
		r, err := DecodeRecord(payload)
		if err != nil {
			return nil, fmt.Errorf("audit: batch %d record %d: %w", b.Seq, i, err)
		}
		out = append(out, r)
	}
	return out, nil
}
