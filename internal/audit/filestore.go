package audit

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FileStore is the append-only segment backend: a directory of files
//
//	audit-000000000000.seg   (named by the first batch sequence inside)
//	audit-000000000042.seg
//
// each holding length-prefixed batch frames after an 8-byte magic. A
// frame is fully self-contained:
//
//	u32 bodyLen
//	body: u64 batchSeq | u64 flushUnixNano | u64 firstSeq | u64 lastSeq
//	      u32 count | 32B prevRoot | 32B root | count × (u32 len | payload)
//
// (all little-endian). Segments rotate by size and age, every append is
// fsynced, and reopening a directory truncates a torn tail frame (a crash
// mid-write) back to the last complete batch — recovery never loses a
// batch whose Append returned.
type FileStore struct {
	dir      string
	maxBytes int64
	maxAge   time.Duration

	mu        sync.Mutex
	cur       *os.File
	curSize   int64
	curOpened time.Time
	segments  int   // total segment files, including the current one
	bytes     int64 // total bytes across all segments
	resume    resumeState
}

// resumeState is the chain position recovered at open time.
type resumeState struct {
	prevRoot   [HashSize]byte
	nextBatch  uint64
	nextRecord uint64
}

// FileStoreOptions bound segment growth. Zero values select the defaults.
type FileStoreOptions struct {
	// MaxSegmentBytes rotates the current segment once it exceeds this
	// size (default 8 MiB).
	MaxSegmentBytes int64
	// MaxSegmentAge rotates the current segment once it has been open
	// this long (default 1 hour), so quiet servers still produce
	// time-bounded files.
	MaxSegmentAge time.Duration
}

const (
	segMagic        = "EVAUDIT1"
	segPrefix       = "audit-"
	segSuffix       = ".seg"
	frameHeaderSize = 8 + 8 + 8 + 8 + 4 + HashSize + HashSize
	// maxFrameLen rejects absurd frame lengths during recovery — a
	// corrupted length prefix must not read as a multi-gigabyte frame.
	maxFrameLen = 1 << 30

	defaultMaxSegmentBytes = 8 << 20
	defaultMaxSegmentAge   = time.Hour
)

// OpenFileStore opens (or creates) an audit directory and recovers the
// chain position: the last segment's torn tail, if any, is truncated to
// the last complete frame.
func OpenFileStore(dir string, opts FileStoreOptions) (*FileStore, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = defaultMaxSegmentBytes
	}
	if opts.MaxSegmentAge <= 0 {
		opts.MaxSegmentAge = defaultMaxSegmentAge
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &FileStore{dir: dir, maxBytes: opts.MaxSegmentBytes, maxAge: opts.MaxSegmentAge}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		path := filepath.Join(dir, name)
		last := i == len(names)-1
		st, err := recoverSegment(path, last)
		if err != nil {
			return nil, err
		}
		s.bytes += st.goodSize
		s.segments++
		if st.frames > 0 {
			s.resume = resumeState{prevRoot: st.lastRoot, nextBatch: st.lastBatch + 1, nextRecord: st.lastRecord + 1}
		}
		if last {
			// Continue appending to the tail segment unless it is already
			// over the size bound.
			if st.goodSize < s.maxBytes {
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return nil, err
				}
				s.cur, s.curSize, s.curOpened = f, st.goodSize, time.Now()
			}
		}
	}
	return s, nil
}

// Resume implements Resumer.
func (s *FileStore) Resume() (prevRoot [HashSize]byte, nextBatch, nextRecord uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resume.prevRoot, s.resume.nextBatch, s.resume.nextRecord, nil
}

// Append implements Store: rotate if due, write one frame, fsync.
func (s *FileStore) Append(b *Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != nil && (s.curSize >= s.maxBytes || time.Since(s.curOpened) >= s.maxAge) {
		if err := s.cur.Close(); err != nil {
			return err
		}
		s.cur = nil
	}
	if s.cur == nil {
		path := filepath.Join(s.dir, fmt.Sprintf("%s%012d%s", segPrefix, b.Seq, segSuffix))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return err
		}
		s.cur, s.curSize, s.curOpened = f, int64(len(segMagic)), time.Now()
		s.segments++
		s.bytes += int64(len(segMagic))
	}
	frame := encodeFrame(b)
	if _, err := s.cur.Write(frame); err != nil {
		return err
	}
	if err := s.cur.Sync(); err != nil {
		return err
	}
	s.curSize += int64(len(frame))
	s.bytes += int64(len(frame))
	s.resume = resumeState{prevRoot: b.Root, nextBatch: b.Seq + 1, nextRecord: b.LastSeq + 1}
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil {
		return nil
	}
	err := s.cur.Close()
	s.cur = nil
	return err
}

// FileStoreStatus describes the store for /v1/audit.
type FileStoreStatus struct {
	Dir      string `json:"dir"`
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"`
}

// Status snapshots the store's segment count and total size.
func (s *FileStore) Status() FileStoreStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return FileStoreStatus{Dir: s.dir, Segments: s.segments, Bytes: s.bytes}
}

func encodeFrame(b *Batch) []byte {
	bodyLen := frameHeaderSize
	for _, p := range b.Records {
		bodyLen += 4 + len(p)
	}
	buf := make([]byte, 0, 4+bodyLen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyLen))
	buf = binary.LittleEndian.AppendUint64(buf, b.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.TimeUnixNano))
	buf = binary.LittleEndian.AppendUint64(buf, b.FirstSeq)
	buf = binary.LittleEndian.AppendUint64(buf, b.LastSeq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Records)))
	buf = append(buf, b.PrevRoot[:]...)
	buf = append(buf, b.Root[:]...)
	for _, p := range b.Records {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

func decodeFrameBody(body []byte) (*Batch, error) {
	if len(body) < frameHeaderSize {
		return nil, fmt.Errorf("audit: frame body %d bytes, header needs %d", len(body), frameHeaderSize)
	}
	b := &Batch{
		Seq:          binary.LittleEndian.Uint64(body[0:]),
		TimeUnixNano: int64(binary.LittleEndian.Uint64(body[8:])),
		FirstSeq:     binary.LittleEndian.Uint64(body[16:]),
		LastSeq:      binary.LittleEndian.Uint64(body[24:]),
	}
	count := binary.LittleEndian.Uint32(body[32:])
	copy(b.PrevRoot[:], body[36:36+HashSize])
	copy(b.Root[:], body[36+HashSize:36+2*HashSize])
	off := frameHeaderSize
	b.Records = make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+4 > len(body) {
			return nil, fmt.Errorf("audit: frame truncated inside record %d length", i)
		}
		n := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if n > len(body)-off {
			return nil, fmt.Errorf("audit: frame record %d overruns body (%d > %d)", i, n, len(body)-off)
		}
		b.Records = append(b.Records, body[off:off+n])
		off += n
	}
	if off != len(body) {
		return nil, fmt.Errorf("audit: %d trailing bytes in frame", len(body)-off)
	}
	return b, nil
}

// segmentNames lists the directory's segment files in sequence order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), segPrefix) && strings.HasSuffix(e.Name(), segSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// segmentScan is what recovery learned about one segment.
type segmentScan struct {
	frames     int
	goodSize   int64 // offset past the last complete frame
	lastBatch  uint64
	lastRecord uint64
	lastRoot   [HashSize]byte
}

// recoverSegment scans a segment's frames. A short tail in the last
// segment is a torn write from a crash: the file is truncated back to the
// last complete frame. The same condition in any earlier segment — or a
// frame that parses but is malformed — is corruption and fails the open.
func recoverSegment(path string, last bool) (segmentScan, error) {
	var scan segmentScan
	batches, goodSize, torn, err := readSegment(path)
	if err != nil {
		return scan, err
	}
	if torn && !last {
		return scan, fmt.Errorf("audit: segment %s has a torn frame but is not the tail segment", path)
	}
	if torn {
		if err := os.Truncate(path, goodSize); err != nil {
			return scan, err
		}
	}
	scan.frames = len(batches)
	scan.goodSize = goodSize
	if n := len(batches); n > 0 {
		b := batches[n-1]
		scan.lastBatch, scan.lastRecord, scan.lastRoot = b.Seq, b.LastSeq, b.Root
	}
	return scan, nil
}

// readSegment reads every complete frame of one segment. torn reports a
// trailing incomplete frame; goodSize is the offset just past the last
// complete one. Frames that are present but malformed return an error.
func readSegment(path string) (batches []*Batch, goodSize int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, 0, false, fmt.Errorf("audit: %s: bad segment magic", path)
	}
	off := int64(len(segMagic))
	for {
		if off == int64(len(data)) {
			return batches, off, false, nil
		}
		if int64(len(data))-off < 4 {
			return batches, off, true, nil
		}
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		if n > maxFrameLen {
			return nil, 0, false, fmt.Errorf("audit: %s: frame length %d at offset %d exceeds limit", path, n, off)
		}
		if off+4+n > int64(len(data)) {
			return batches, off, true, nil
		}
		b, err := decodeFrameBody(data[off+4 : off+4+n])
		if err != nil {
			return nil, 0, false, fmt.Errorf("audit: %s: offset %d: %w", path, off, err)
		}
		batches = append(batches, b)
		off += 4 + n
	}
}

// ReadDir reads every batch from an audit directory in chain order. A
// torn tail frame in the final segment (a crash mid-write) is skipped;
// any other structural damage is an error. Callers pass the result to
// VerifyChain before trusting or replaying it.
func ReadDir(dir string) ([]*Batch, error) {
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	var all []*Batch
	for i, name := range names {
		batches, _, torn, err := readSegment(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if torn && i != len(names)-1 {
			return nil, fmt.Errorf("audit: segment %s has a torn frame but is not the tail segment", name)
		}
		all = append(all, batches...)
	}
	return all, nil
}

// Interface conformance, checked at compile time.
var (
	_ Store   = (*FileStore)(nil)
	_ Resumer = (*FileStore)(nil)
	_ Store   = (*MemStore)(nil)
)
