package audit

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

func sampleRecord() *Record {
	return &Record{
		Seq:          42,
		TimeUnixNano: 1723100000123456789,
		Kind:         KindQuery,
		ID:           "q-9f2c41d3-17",
		Model:        "alarm",
		Version:      3,
		Cached:       true,
		ElapsedUsec:  812.25,
		Evidence:     map[string]int{"XRay": 1, "Asia": 0},
		Query:        []string{"Lung", "Bronc"},
		PEvidence:    0.112233,
		Posteriors: map[string][]float64{
			"Lung":  {0.5125, 0.4875},
			"Bronc": {0.3333333333333333, 0.6666666666666667},
		},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []*Record{
		sampleRecord(),
		{}, // zero record must survive too
		{
			Kind:        KindMPE,
			Model:       "default",
			Assignment:  map[string]int{"A": 1, "B": 0},
			Probability: 0.25,
		},
		{Error: "evprop: unknown variable \"Zz\"", Evidence: map[string]int{"Zz": 1}},
		{PEvidence: math.Float64frombits(0x3fd5555555555555)}, // exact bit pattern
	}
	for i, want := range cases {
		got, err := DecodeRecord(want.Encode())
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestRecordEncodeCanonical: semantically equal records encode to
// identical bytes regardless of map construction order — the property
// the Merkle leaves require.
func TestRecordEncodeCanonical(t *testing.T) {
	a := sampleRecord()
	b := sampleRecord()
	b.Evidence = map[string]int{}
	b.Evidence["Asia"] = 0 // reversed insertion order
	b.Evidence["XRay"] = 1
	b.Posteriors = map[string][]float64{
		"Bronc": {0.3333333333333333, 0.6666666666666667},
		"Lung":  {0.5125, 0.4875},
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("equal records encoded differently")
	}
}

// TestRecordFloatBitExact: float fields survive encode/decode with their
// exact bit patterns, including negative zero and NaN payloads.
func TestRecordFloatBitExact(t *testing.T) {
	specials := []uint64{
		math.Float64bits(math.Copysign(0, -1)),
		0x7ff8000000000001, // NaN with payload
		math.Float64bits(math.Inf(1)),
		math.Float64bits(5e-324), // smallest denormal
	}
	for _, bits := range specials {
		r := &Record{PEvidence: math.Float64frombits(bits), Posteriors: map[string][]float64{"X": {math.Float64frombits(bits)}}}
		got, err := DecodeRecord(r.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.PEvidence) != bits {
			t.Fatalf("p_evidence bits %x != %x", math.Float64bits(got.PEvidence), bits)
		}
		if math.Float64bits(got.Posteriors["X"][0]) != bits {
			t.Fatalf("posterior bits changed")
		}
	}
}

// TestDecodeRecordCorrupt: arbitrary prefixes and bit flips must fail
// cleanly (error), never panic or silently decode to a wrong record that
// still matches the original.
func TestDecodeRecordCorrupt(t *testing.T) {
	payload := sampleRecord().Encode()
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeRecord(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := DecodeRecord(append([]byte(nil), append(payload, 0xff)...)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	if _, err := DecodeRecord([]byte{recordVersion + 1}); err == nil {
		t.Fatal("unknown version decoded without error")
	}
}
