// Package audit is the durable half of the observability stack: a
// wait-free batching writer that spills completed queries — evidence,
// requested variables, the model build they ran against, and the answer
// they got — into tamper-evident, Merkle-chained batches on a pluggable
// store. Segments written by one process are verifiable and replayable
// offline (cmd/evreplay): the chain proves no record was altered, dropped
// or reordered after the fact, and each record carries everything needed
// to re-execute its query against a live server or a fresh engine build.
//
// The package is deliberately engine-agnostic: records are plain data,
// stores are byte sinks, and the writer never blocks a producer — the
// serving hot path pays one atomic fetch-add and one atomic pointer store
// per query, the same budget as the in-memory flight recorder.
package audit

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Record kinds. A query record replays as POST /v1/models/{m}/query and
// compares P(e) + posteriors; an MPE record replays as /mpe and compares
// the assignment and its probability.
const (
	KindQuery = uint8(iota)
	KindMPE
)

// recordVersion is the canonical encoding's format version byte. Decoders
// reject other versions instead of guessing.
const recordVersion = 1

// Record is one audited query: the request (evidence, requested
// variables), the engine build that answered (model name + version), and
// the recorded answer. It is self-contained — replaying a record needs
// nothing but the record and a server holding the same model.
type Record struct {
	// Seq is the record's position in the writer's lifetime sequence,
	// assigned at enqueue. Gaps in a segment's sequence are records the
	// ring dropped under backpressure (counted, never silent).
	Seq uint64 `json:"seq"`
	// TimeUnixNano is when the query completed; load-mode replay paces
	// itself from consecutive records' timestamps.
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Kind is KindQuery or KindMPE.
	Kind uint8 `json:"kind"`
	// ID is the query ID the request ran under (X-Query-ID).
	ID string `json:"id"`
	// Model and Version name the engine build that answered.
	Model   string `json:"model"`
	Version int64  `json:"version"`
	// Cached marks answers served without their own propagation (result
	// cache, singleflight, or a coalesced batch rider).
	Cached bool `json:"cached"`
	// ElapsedUsec is the recorded serving latency.
	ElapsedUsec float64 `json:"elapsed_usec"`
	// Evidence is the query's hard evidence by variable name.
	Evidence map[string]int `json:"evidence,omitempty"`
	// Query lists the requested posterior variables in request order
	// (empty = every non-evidence variable).
	Query []string `json:"query,omitempty"`
	// Error is the recorded failure ("" on success). Replay expects the
	// same query to fail again; a now-succeeding query is a divergence.
	Error string `json:"error,omitempty"`
	// PEvidence and Posteriors are a query record's recorded answer.
	PEvidence  float64              `json:"p_evidence"`
	Posteriors map[string][]float64 `json:"posteriors,omitempty"`
	// Assignment and Probability are an MPE record's recorded answer.
	Assignment  map[string]int `json:"assignment,omitempty"`
	Probability float64        `json:"probability,omitempty"`
}

// Encode returns the record's canonical binary form: a fixed field order,
// map keys sorted, strings length-prefixed, and floats as their exact
// IEEE-754 bit patterns. Two semantically equal records always encode to
// identical bytes (the Merkle leaves hash these bytes), and every float
// round-trips bit-exactly — the property evreplay's differential mode
// rests on.
func (r *Record) Encode() []byte {
	buf := make([]byte, 0, 128+16*len(r.Evidence)+32*len(r.Posteriors))
	buf = append(buf, recordVersion, r.Kind)
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = binary.AppendVarint(buf, r.TimeUnixNano)
	buf = appendString(buf, r.ID)
	buf = appendString(buf, r.Model)
	buf = binary.AppendVarint(buf, r.Version)
	buf = append(buf, b2u8(r.Cached))
	buf = appendFloat(buf, r.ElapsedUsec)
	buf = binary.AppendUvarint(buf, uint64(len(r.Evidence)))
	for _, name := range sortedKeys(r.Evidence) {
		buf = appendString(buf, name)
		buf = binary.AppendUvarint(buf, uint64(r.Evidence[name]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Query)))
	for _, name := range r.Query {
		buf = appendString(buf, name)
	}
	buf = appendString(buf, r.Error)
	buf = appendFloat(buf, r.PEvidence)
	buf = binary.AppendUvarint(buf, uint64(len(r.Posteriors)))
	for _, name := range sortedFloatKeys(r.Posteriors) {
		buf = appendString(buf, name)
		p := r.Posteriors[name]
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		for _, x := range p {
			buf = appendFloat(buf, x)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Assignment)))
	for _, name := range sortedKeys(r.Assignment) {
		buf = appendString(buf, name)
		buf = binary.AppendUvarint(buf, uint64(r.Assignment[name]))
	}
	buf = appendFloat(buf, r.Probability)
	return buf
}

// DecodeRecord parses one canonically-encoded record. Every length is
// bounds-checked against the remaining input, so corrupted or truncated
// payloads fail cleanly instead of panicking or over-allocating.
func DecodeRecord(data []byte) (*Record, error) {
	d := &decoder{data: data}
	if v := d.byte(); v != recordVersion {
		if d.err == nil {
			d.err = fmt.Errorf("audit: unsupported record version %d", v)
		}
		return nil, d.err
	}
	r := &Record{}
	r.Kind = d.byte()
	r.Seq = d.uvarint()
	r.TimeUnixNano = d.varint()
	r.ID = d.string()
	r.Model = d.string()
	r.Version = d.varint()
	r.Cached = d.byte() != 0
	r.ElapsedUsec = d.float()
	if n := d.count(); n > 0 {
		r.Evidence = make(map[string]int, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			name := d.string()
			r.Evidence[name] = int(d.uvarint())
		}
	}
	if n := d.count(); n > 0 {
		r.Query = make([]string, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			r.Query = append(r.Query, d.string())
		}
	}
	r.Error = d.string()
	r.PEvidence = d.float()
	if n := d.count(); n > 0 {
		r.Posteriors = make(map[string][]float64, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			name := d.string()
			m := d.count()
			p := make([]float64, 0, m)
			for j := uint64(0); j < m && d.err == nil; j++ {
				p = append(p, d.float())
			}
			r.Posteriors[name] = p
		}
	}
	if n := d.count(); n > 0 {
		r.Assignment = make(map[string]int, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			name := d.string()
			r.Assignment[name] = int(d.uvarint())
		}
	}
	r.Probability = d.float()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != d.off {
		return nil, fmt.Errorf("audit: %d trailing bytes after record", len(d.data)-d.off)
	}
	return r, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, x float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedFloatKeys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// decoder is a cursor over one record's bytes; the first failure sticks
// and every later read returns zeros, so call sites stay linear.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("audit: truncated record: %s at offset %d", what, d.off)
	}
}

func (d *decoder) byte() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.fail("byte")
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

// count reads a collection length and bounds it by the bytes remaining
// (every element costs at least one byte), so a corrupted length cannot
// drive a huge allocation.
func (d *decoder) count() uint64 {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.data)-d.off) {
		d.fail("length")
		return 0
	}
	return n
}

func (d *decoder) string() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}
