package audit

import "sync"

// Store is where the writer appends flushed batches. Implementations own
// durability; the writer owns batching, hashing and chaining. Append is
// called from the writer's single drainer goroutine, never concurrently.
type Store interface {
	// Append persists one batch. An error is surfaced in the writer's
	// stats and the batch is dropped (the chain skips nothing: the next
	// flush reuses the same batch sequence and prev-root).
	Append(b *Batch) error
	// Close flushes and releases the store.
	Close() error
}

// Resumer is the optional store capability of continuing an existing
// chain: a writer over a Resumer picks up the previous run's last root
// and sequence numbers instead of restarting from zero.
type Resumer interface {
	// Resume reports the chain state to continue from: the last persisted
	// batch's root and the next batch and record sequence numbers (all
	// zero for an empty store).
	Resume() (prevRoot [HashSize]byte, nextBatch, nextRecord uint64, err error)
}

// MemStore retains batches in memory — the test backend, and the
// benchmark backend when measuring writer overhead apart from disk.
type MemStore struct {
	mu      sync.Mutex
	batches []*Batch
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (s *MemStore) Append(b *Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches = append(s.batches, b)
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// Batches snapshots the appended batches in order.
func (s *MemStore) Batches() []*Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Batch(nil), s.batches...)
}
