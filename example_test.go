package evprop_test

import (
	"fmt"
	"strings"

	"evprop"
)

// ExampleNetwork_Compile builds a two-variable network and queries it.
func ExampleNetwork_Compile() {
	net := evprop.NewNetwork()
	net.MustAddVariable("Rain", 2, nil, []float64{0.8, 0.2})
	net.MustAddVariable("Wet", 2, []string{"Rain"}, []float64{
		0.9, 0.1, // Rain = no
		0.2, 0.8, // Rain = yes
	})
	eng, err := net.Compile(evprop.Options{})
	if err != nil {
		panic(err)
	}
	post, err := eng.Query(evprop.Evidence{"Wet": 1}, "Rain")
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(Rain | Wet) = %.4f\n", post["Rain"][1])
	// Output: P(Rain | Wet) = 0.6667
}

// ExampleEngine_ProbabilityOfEvidence shows evidence likelihoods.
func ExampleEngine_ProbabilityOfEvidence() {
	eng, err := evprop.Sprinkler().Compile(evprop.Options{})
	if err != nil {
		panic(err)
	}
	p, err := eng.ProbabilityOfEvidence(evprop.Evidence{"WetGrass": 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(WetGrass = 1) = %.4f\n", p)
	// Output: P(WetGrass = 1) = 0.6471
}

// ExampleEngine_MostProbableExplanation decodes the most probable joint
// state.
func ExampleEngine_MostProbableExplanation() {
	eng, err := evprop.Sprinkler().Compile(evprop.Options{})
	if err != nil {
		panic(err)
	}
	mpe, _, err := eng.MostProbableExplanation(evprop.Evidence{"WetGrass": 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("Rain=%d Sprinkler=%d\n", mpe["Rain"], mpe["Sprinkler"])
	// Output: Rain=1 Sprinkler=0
}

// ExampleParseBIF loads a network from the Bayesian Interchange Format.
func ExampleParseBIF() {
	src := `
network coin { }
variable Flip { type discrete [ 2 ] { heads, tails }; }
probability ( Flip ) { table 0.5, 0.5; }
`
	net, states, err := evprop.ParseBIF(strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	fmt.Println(net.Variables()[0], states["Flip"][0])
	// Output: Flip heads
}

// ExampleEngine_QueryJoint computes a posterior over variables that share
// no clique.
func ExampleEngine_QueryJoint() {
	eng, err := evprop.Asia().Compile(evprop.Options{})
	if err != nil {
		panic(err)
	}
	j, err := eng.QueryJoint(nil, "Asia", "XRay")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s %s: %d entries\n", j.Vars[0], j.Vars[1], len(j.P))
	// Output: Asia XRay: 4 entries
}

// ExampleNetwork_DSeparated checks structural independence without
// inference.
func ExampleNetwork_DSeparated() {
	net := evprop.Asia()
	marginal, _ := net.DSeparated([]string{"Asia"}, []string{"Smoke"}, nil)
	givenDysp, _ := net.DSeparated([]string{"Asia"}, []string{"Smoke"}, []string{"Dysp"})
	fmt.Println(marginal, givenDysp)
	// Output: true false
}

// ExampleEngine_BestObservation ranks candidate tests by expected
// information.
func ExampleEngine_BestObservation() {
	eng, err := evprop.Asia().Compile(evprop.Options{})
	if err != nil {
		panic(err)
	}
	names, _, err := eng.BestObservation(nil, "TbOrCa", "Asia", "XRay")
	if err != nil {
		panic(err)
	}
	fmt.Println(names[0])
	// Output: XRay
}

// ExampleNetwork_SampleN draws reproducible synthetic data.
func ExampleNetwork_SampleN() {
	data, err := evprop.Sprinkler().SampleN(3, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(data), len(data[0]))
	// Output: 3 4
}
