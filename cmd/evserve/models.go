package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"evprop/internal/registry"
)

// Model management: the /v1/models resource tree.
//
//	GET    /v1/models               list models and their lifecycle state
//	GET    /v1/models/{name}        one model: info + variable schema
//	PUT    /v1/models/{name}        upload (create or replace) from a BIF
//	                                or XMLBIF document; ?wait=1 blocks for
//	                                the compile
//	DELETE /v1/models/{name}        remove; drains in-flight queries
//	POST   /v1/models/{name}/reload recompile from the retained source
//
// Uploads and reloads compile in the background and publish by atomic
// swap, so serving never pauses: queries keep answering on the old
// version until the new one is ready.

// maxUploadBytes bounds a PUT /v1/models/{name} document.
const maxUploadBytes = 32 << 20

// listResponse is the GET /v1/models body.
type listResponse struct {
	Models []registry.Info `json:"models"`
}

func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	s.writeJSON(w, listResponse{Models: s.reg.List()})
}

// handleModelByName dispatches the /v1/models/{name} resource.
func (s *server) handleModelByName(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleModelGet(w, r)
	case http.MethodPut:
		s.handleModelPut(w, r)
	case http.MethodDelete:
		s.handleModelDelete(w, r)
	default:
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET, PUT or DELETE")
	}
}

// handleModelGet answers GET /v1/models/{name}: registry info plus the
// variable schema of the current version.
func (s *server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	v, release, _, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	info, _ := s.modelInfo(modelFor(r))
	s.writeJSON(w, modelSchema(info, v.Net))
}

// handleModelPut uploads a model document. The format is sniffed from the
// payload (leading '<' → XMLBIF, otherwise textual BIF). The compile runs
// in the background; `?wait=1` blocks until it publishes (or fails), which
// is what the smoke test and synchronous clients use.
func (s *server) handleModelPut(w http.ResponseWriter, r *http.Request) {
	name := modelFor(r)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		s.writeErrorCode(w, r, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("model document exceeds %d bytes", maxUploadBytes))
		return
	}
	if len(bytes.TrimSpace(body)) == 0 {
		s.writeErrorCode(w, r, http.StatusBadRequest, "bad_request", "empty model document")
		return
	}
	isXML := bytes.TrimSpace(body)[0] == '<'
	src := registry.InlineSource(body, isXML)
	done, err := s.reg.Load(name, src)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	reqInfoFrom(r.Context()).noteModel(name, s.modelStatsFor(name))
	if r.URL.Query().Get("wait") != "" {
		if err := <-done; err != nil {
			s.writeError(w, r, err)
			return
		}
		info, _ := s.modelInfo(name)
		s.writeJSON(w, info)
		return
	}
	info, _ := s.modelInfo(name)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(info)
}

// handleModelDelete removes a model. In-flight queries drain on the
// version they pinned; the engine is released after the last one.
func (s *server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	name := modelFor(r)
	if err := s.reg.Delete(name); err != nil {
		s.writeError(w, r, err)
		return
	}
	s.perModel.Delete(name)
	s.writeJSON(w, map[string]string{"deleted": name})
}

// handleModelReload recompiles a model from its retained source — for
// file-backed models this re-reads the file, so an edited BIF goes live
// without restarting the server. `?wait=1` blocks for the publish.
func (s *server) handleModelReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	name := modelFor(r)
	done, err := s.reg.Reload(name)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	reqInfoFrom(r.Context()).noteModel(name, s.modelStatsFor(name))
	if r.URL.Query().Get("wait") != "" {
		if err := <-done; err != nil {
			s.writeError(w, r, err)
			return
		}
		info, _ := s.modelInfo(name)
		s.writeJSON(w, info)
		return
	}
	info, _ := s.modelInfo(name)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(info)
}

// readJSON decodes a POST body into dst; on failure it has already
// answered the request (405 on wrong method, 400 envelope on bad JSON).
func (s *server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		s.writeErrorCode(w, r, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return false
	}
	return true
}

// writeJSON answers 200 with a JSON body.
func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Error("encode response", "err", err)
	}
}
