package main

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"evprop"
	"evprop/internal/audit"
	"evprop/internal/obs"
	"evprop/internal/obs/trace"
	"evprop/internal/registry"
)

// defaultModel is the model the single-model routes (versioned and
// legacy) alias onto; a server always tries to serve one.
const defaultModel = "default"

// server routes HTTP requests onto a registry of compiled models. Handlers
// run lock-free: every request pins its model's current version with one
// atomic acquire, propagates on that engine, and releases it — a version
// swapped out mid-request drains gracefully under the requests still
// holding it.
type server struct {
	// reg holds every model; compiles happen in the background and publish
	// by atomic pointer swap.
	reg *registry.Registry
	// opts is the compile-options template shared by every model.
	opts  evprop.Options
	stats serverStats
	// perModel maps model name → its request counters and traffic window.
	// Entries are created lazily on first use and dropped on model delete.
	perModel sync.Map // map[string]*modelStats
	// log receives one access-log record per request (see instrument).
	log *slog.Logger
	// window aggregates the last 60 seconds of traffic for /v1/stats,
	// across all models; each model also has its own window in perModel.
	window *obs.Window
	// timeout, when non-zero, bounds every request with a deadline that the
	// engine observes mid-propagation.
	timeout time.Duration
	// maxInflight, when non-zero, bounds concurrently admitted
	// propagating requests; excess requests get 429 overloaded.
	maxInflight int64
	inflight    atomic.Int64
	// pprofEnabled wires net/http/pprof under /debug/pprof/ (opt-in via
	// the -pprof flag: profiling endpoints expose internals and should not
	// be on by default).
	pprofEnabled bool
	// co coalesces same-model same-evidence /v1/batch sub-queries inside a
	// micro-batch window (the -batch-window flag); nil when the window is
	// off.
	co *coalescer
	// cacheOn mirrors the engines' cache configuration so the hot path can
	// skip cache accounting without asking an engine each time.
	cacheOn bool
	// aud, when non-nil, receives one durable audit record per completed
	// query/MPE (the -audit-dir pipeline; see audit.go). audStore is its
	// file-segment backend and auditDir the configured directory.
	aud      *audit.Writer
	audStore *audit.FileStore
	auditDir string
	// tracer owns distributed tracing (the -trace flags): per-request span
	// arenas, tail sampling into the debug store, optional OTLP export. nil
	// when tracing is off — every consumer nil-checks.
	tracer *trace.Tracer
	// sampler takes the 1 s snapshots behind /v1/stream; started is the
	// uptime epoch reported by /v1/healthz and every snapshot.
	sampler *obs.Sampler[streamSnapshot]
	started time.Time
	// ready gates /v1/readyz: false until the listener is up, false again
	// once drain begins. drain is closed by beginDrain (via drainOnce) so
	// every in-flight /v1/stream handler unblocks during graceful shutdown.
	ready     atomic.Bool
	drain     chan struct{}
	drainOnce sync.Once
}

// serverStats aggregates request counters and propagation latency with
// atomics and a lock-free histogram so concurrent handlers never serialize.
type serverStats struct {
	queries atomic.Int64
	batches atomic.Int64
	mpes    atomic.Int64
	// legacy counts requests through the deprecated unversioned aliases
	// (/query, /mpe, /dsep, /model), so operators can measure remaining
	// pre-/v1 traffic before removal.
	legacy atomic.Int64
	// errors counts HTTP error responses, incremented exactly once per
	// request inside writeErrorCode (the single choke point). Per-query
	// failures inside a /v1/batch body are reported in place and are not
	// HTTP errors.
	errors  atomic.Int64
	latency obs.Histogram
}

func (st *serverStats) observe(d time.Duration, traceID string) {
	st.latency.ObserveExemplar(d, traceID)
}

// traceIDFrom returns the hex trace ID of the request's active span, "" for
// untraced requests. Latency observations pass it down so the histograms'
// OpenMetrics exemplars link slow buckets to their traces.
func traceIDFrom(ctx context.Context) string {
	if id := trace.FromContext(ctx).TraceID(); id.IsValid() {
		return id.String()
	}
	return ""
}

// modelStats is one model's slice of the serving counters: request counts
// by kind, error count, latency histogram, and a 60 s traffic window.
// Stats outlive version swaps (they belong to the model, not the version)
// and are dropped when the model is deleted.
type modelStats struct {
	queries atomic.Int64
	batches atomic.Int64
	mpes    atomic.Int64
	errors  atomic.Int64
	latency obs.Histogram
	window  *obs.Window
}

// modelStatsFor returns the named model's stats, creating them on first
// use.
func (s *server) modelStatsFor(name string) *modelStats {
	if v, ok := s.perModel.Load(name); ok {
		return v.(*modelStats)
	}
	v, _ := s.perModel.LoadOrStore(name, &modelStats{window: obs.NewWindow()})
	return v.(*modelStats)
}

// newMultiServer builds a server over an empty registry; models are added
// with addModel / the registry's LoadDir.
func newMultiServer(opts evprop.Options) *server {
	s := &server{
		reg:     registry.New(opts),
		opts:    opts,
		log:     slog.Default(),
		window:  obs.NewWindow(),
		cacheOn: opts.CacheSize > 0,
		started: time.Now(),
		drain:   make(chan struct{}),
	}
	s.sampler = obs.NewSampler(streamInterval, 60, s.snapshotNow)
	return s
}

// newServer builds a server whose "default" model is the given network —
// the single-model boot path and the test constructor.
func newServer(net *evprop.Network, opts evprop.Options) (*server, error) {
	s := newMultiServer(opts)
	if err := s.reg.LoadSync(defaultModel, registry.LiteralSource(net, "boot")); err != nil {
		s.close()
		return nil, err
	}
	return s, nil
}

// close releases every model's engine; for shutdown and failed boots.
func (s *server) close() { s.reg.Close() }

// defaultEngine returns the default model's live engine, nil when absent.
// evprop.Engine methods are nil-safe, so stats paths use it directly.
func (s *server) defaultEngine() *evprop.Engine {
	if v, err := s.reg.Current(defaultModel); err == nil {
		return v.Engine
	}
	return nil
}

// mux routes the model-scoped /v1 API. Single-model routes (/v1/query,
// /v1/model, …) alias onto the "default" model, and the original
// unversioned paths remain too, marked with Deprecation/Sunset headers.
// Every route goes through instrument, so each request carries a query ID
// and emits one access-log record; only the pprof endpoints, the stream
// and the health probes bypass it.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	route := func(pattern, endpoint string, h http.HandlerFunc) {
		m.HandleFunc(pattern, s.instrument(endpoint, h))
	}
	// Model management.
	route("/v1/models", "/v1/models", s.handleModels)
	route("/v1/models/{name}", "/v1/models/{name}", s.handleModelByName)
	route("/v1/models/{name}/reload", "/v1/models/{name}/reload", s.handleModelReload)
	route("/v1/models/{name}/stats", "/v1/models/{name}/stats", s.handleModelStats)
	// Model-scoped queries.
	route("/v1/models/{name}/query", "/v1/models/{name}/query", s.handleQuery)
	route("/v1/models/{name}/batch", "/v1/models/{name}/batch", s.handleBatch)
	route("/v1/models/{name}/mpe", "/v1/models/{name}/mpe", s.handleMPE)
	route("/v1/models/{name}/dsep", "/v1/models/{name}/dsep", s.handleDSep)
	// Single-model aliases onto "default" — the pre-registry /v1 API,
	// fully supported.
	route("/v1/model", "/v1/model", s.handleModelSchema)
	route("/v1/query", "/v1/query", s.handleQuery)
	route("/v1/batch", "/v1/batch", s.handleBatch)
	route("/v1/mpe", "/v1/mpe", s.handleMPE)
	route("/v1/dsep", "/v1/dsep", s.handleDSep)
	// Unversioned legacy aliases: still served, but deprecated (headers +
	// the legacy_requests counter announce the sunset).
	route("/model", "/model", s.deprecated(s.handleModelSchema))
	route("/query", "/query", s.deprecated(s.handleQuery))
	route("/mpe", "/mpe", s.deprecated(s.handleMPE))
	route("/dsep", "/dsep", s.deprecated(s.handleDSep))
	// Introspection.
	route("/v1/stats", "/v1/stats", s.handleStats)
	route("/v1/metrics", "/v1/metrics", s.handleMetrics)
	route("/v1/audit", "/v1/audit", s.handleAudit)
	route("/v1/debug/flightrecorder", "/v1/debug/flightrecorder", s.handleFlightRecorder)
	route("/v1/debug/trace", "/v1/debug/trace", s.handleTrace)
	// The stream and the health probes stay outside instrument: probes fire
	// every few seconds and a stream lives for minutes — folding either into
	// the QPS window or the access log would drown the real traffic signal.
	m.HandleFunc("/v1/stream", s.handleStream)
	m.HandleFunc("/v1/healthz", s.handleHealthz)
	m.HandleFunc("/v1/readyz", s.handleReadyz)
	if s.pprofEnabled {
		m.HandleFunc("/debug/pprof/", pprof.Index)
		m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		m.HandleFunc("/debug/pprof/profile", pprof.Profile)
		m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return m
}

// modelFor names the request's model: the {name} path segment on scoped
// routes, the default model on alias routes.
func modelFor(r *http.Request) string {
	if name := r.PathValue("name"); name != "" {
		return name
	}
	return defaultModel
}

// acquire pins the request's model version and notes the model into the
// request annotations. On failure it has already answered the request.
func (s *server) acquire(w http.ResponseWriter, r *http.Request) (*registry.Version, func(), *modelStats, bool) {
	name := modelFor(r)
	v, release, err := s.reg.Acquire(name)
	if err != nil {
		s.writeError(w, r, err)
		return nil, nil, nil, false
	}
	ms := s.modelStatsFor(name)
	reqInfoFrom(r.Context()).noteModel(name, ms)
	return v, release, ms, true
}

type modelVariable struct {
	Name   string `json:"name"`
	States int    `json:"states"`
}

// modelResponse is the GET /v1/models/{name} (and /v1/model alias) body:
// the registry's lifecycle info plus the variable schema.
type modelResponse struct {
	registry.Info
	Variables []modelVariable `json:"variables"`
}

func modelSchema(info registry.Info, net *evprop.Network) modelResponse {
	resp := modelResponse{Info: info}
	for _, name := range net.Variables() {
		resp.Variables = append(resp.Variables, modelVariable{Name: name, States: net.States(name)})
	}
	return resp
}

// handleModelSchema answers the single-model schema aliases (GET
// /v1/model, GET /model) against the default model.
func (s *server) handleModelSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	v, release, _, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	info, _ := s.modelInfo(modelFor(r))
	s.writeJSON(w, modelSchema(info, v.Net))
}

// modelInfo finds one model's registry Info.
func (s *server) modelInfo(name string) (registry.Info, bool) {
	for _, info := range s.reg.List() {
		if info.Name == name {
			return info, true
		}
	}
	return registry.Info{Name: name}, false
}

type queryRequest struct {
	Evidence evprop.Evidence `json:"evidence"`
	Query    []string        `json:"query"`
}

type queryResponse struct {
	PEvidence  float64              `json:"p_evidence"`
	Posteriors map[string][]float64 `json:"posteriors"`
	// Model and Version name the engine build that answered, so clients
	// can detect hot reloads.
	Model   string `json:"model,omitempty"`
	Version int64  `json:"version,omitempty"`
}

// runQuery answers one query on the pinned version with exactly one
// evidence propagation: P(e) and the posteriors both derive from the same
// QueryResult.
func (s *server) runQuery(ctx context.Context, v *registry.Version, ms *modelStats, req queryRequest) (*queryResponse, error) {
	start := time.Now()
	ri := reqInfoFrom(ctx)
	ri.noteQuery(len(req.Evidence))
	res, err := v.Engine.PropagateContext(ctx, req.Evidence)
	if err != nil {
		s.auditQuery(ctx, v, req, nil, false, time.Since(start), err)
		return nil, err
	}
	defer res.Close()
	ri.noteRun(res.Metrics())
	if s.cacheOn {
		ri.noteCache(res.Cached())
	}
	resp := &queryResponse{PEvidence: res.ProbabilityOfEvidence(), Posteriors: map[string][]float64{}}
	if resp.PEvidence > 0 {
		post, err := res.Posteriors(req.Query...)
		if err != nil {
			s.auditQuery(ctx, v, req, nil, res.Cached(), time.Since(start), err)
			return nil, err
		}
		resp.Posteriors = post
	}
	elapsed := time.Since(start)
	tid := traceIDFrom(ctx)
	s.stats.observe(elapsed, tid)
	ms.latency.ObserveExemplar(elapsed, tid)
	s.auditQuery(ctx, v, req, resp, res.Cached(), elapsed, nil)
	return resp, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.inflight.Add(-1)
	v, release, ms, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	s.stats.queries.Add(1)
	ms.queries.Add(1)
	resp, err := s.runQuery(r.Context(), v, ms, req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp.Model, resp.Version = modelFor(r), v.ID
	s.writeJSON(w, resp)
}

// admit applies -max-inflight admission control to the propagating
// routes. On rejection it has already answered 429.
func (s *server) admit(w http.ResponseWriter, r *http.Request) bool {
	if n := s.inflight.Add(1); s.maxInflight > 0 && n > s.maxInflight {
		s.inflight.Add(-1)
		s.writeError(w, r, fmt.Errorf("%w: %d in flight", errOverloaded, s.maxInflight))
		return false
	}
	return true
}

type batchRequest struct {
	Queries []queryRequest `json:"queries"`
}

type batchResponse struct {
	Results []batchResult `json:"results"`
	// Model and Version name the engine build the whole batch ran on (a
	// batch pins one version — sub-queries are never split across a hot
	// reload).
	Model   string `json:"model,omitempty"`
	Version int64  `json:"version,omitempty"`
}

// batchResult is one query's outcome; exactly one of Error or the query
// fields is meaningful. Failures are reported in place so one bad query
// does not void its siblings.
type batchResult struct {
	PEvidence  float64              `json:"p_evidence,omitempty"`
	Posteriors map[string][]float64 `json:"posteriors,omitempty"`
	Error      string               `json:"error,omitempty"`
}

// handleBatch answers many queries in one round trip, propagating them
// concurrently on the batch's pinned version. With -batch-window set,
// sub-queries sharing an evidence signature are coalesced into one
// propagation (see coalesce.go); otherwise each sub-query propagates
// independently.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.inflight.Add(-1)
	v, release, ms, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	s.stats.batches.Add(1)
	ms.batches.Add(1)
	name := modelFor(r)
	run := s.runQuery
	if s.co != nil {
		run = func(ctx context.Context, v *registry.Version, ms *modelStats, q queryRequest) (*queryResponse, error) {
			return s.coalescedQuery(ctx, name, v, ms, q)
		}
	}
	results := make([]batchResult, len(req.Queries))
	var wg sync.WaitGroup
	for i, q := range req.Queries {
		wg.Add(1)
		go func(i int, q queryRequest) {
			defer wg.Done()
			// Each sub-query runs under its own child span, so the trace
			// shows the batch fanning out (and coalesced riders link to
			// their leader's item; see coalesce.go).
			isp := trace.FromContext(r.Context()).StartChild("batch.item",
				trace.Int("batch.index", int64(i)))
			ctx := trace.ContextWith(r.Context(), isp)
			resp, err := run(ctx, v, ms, q)
			if err != nil {
				isp.Fail(err.Error())
				isp.End()
				results[i] = batchResult{Error: err.Error()}
				return
			}
			isp.End()
			results[i] = batchResult{PEvidence: resp.PEvidence, Posteriors: resp.Posteriors}
		}(i, q)
	}
	wg.Wait()
	s.writeJSON(w, batchResponse{Results: results, Model: name, Version: v.ID})
}

type mpeRequest struct {
	Evidence evprop.Evidence `json:"evidence"`
}

type mpeResponse struct {
	Assignment  map[string]int `json:"assignment"`
	Probability float64        `json:"probability"`
	Model       string         `json:"model,omitempty"`
	Version     int64          `json:"version,omitempty"`
}

func (s *server) handleMPE(w http.ResponseWriter, r *http.Request) {
	var req mpeRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.inflight.Add(-1)
	v, release, ms, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	s.stats.mpes.Add(1)
	ms.mpes.Add(1)
	start := time.Now()
	ri := reqInfoFrom(r.Context())
	ri.noteQuery(len(req.Evidence))
	res, err := v.Engine.PropagateContext(r.Context(), req.Evidence)
	if err != nil {
		s.auditMPE(r.Context(), v, req.Evidence, nil, 0, time.Since(start), err)
		s.writeError(w, r, err)
		return
	}
	defer res.Close()
	ri.noteRun(res.Metrics())
	assignment, p, err := res.MPE()
	if err != nil {
		s.auditMPE(r.Context(), v, req.Evidence, nil, 0, time.Since(start), err)
		s.writeError(w, r, err)
		return
	}
	elapsed := time.Since(start)
	tid := traceIDFrom(r.Context())
	s.stats.observe(elapsed, tid)
	ms.latency.ObserveExemplar(elapsed, tid)
	s.auditMPE(r.Context(), v, req.Evidence, assignment, p, elapsed, nil)
	s.writeJSON(w, mpeResponse{Assignment: assignment, Probability: p, Model: modelFor(r), Version: v.ID})
}

type dsepRequest struct {
	X []string `json:"x"`
	Y []string `json:"y"`
	Z []string `json:"z"`
}

type dsepResponse struct {
	Separated bool `json:"separated"`
}

func (s *server) handleDSep(w http.ResponseWriter, r *http.Request) {
	var req dsepRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	v, release, _, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	sep, err := v.Net.DSeparated(req.X, req.Y, req.Z)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, dsepResponse{Separated: sep})
}

type statsResponse struct {
	Queries int64 `json:"queries"`
	Batches int64 `json:"batches"`
	MPEs    int64 `json:"mpes"`
	Errors  int64 `json:"errors"`
	// LegacyRequests counts traffic on the deprecated unversioned aliases.
	LegacyRequests int64   `json:"legacy_requests"`
	Propagations   int64   `json:"propagations"`
	Workers        int     `json:"workers"`
	Scheduler      string  `json:"scheduler"`
	Observed       int64   `json:"observed"`
	AvgLatencyUsec float64 `json:"avg_latency_usec"`
	MaxLatencyUsec float64 `json:"max_latency_usec"`
	P50LatencyUsec float64 `json:"p50_latency_usec"`
	P95LatencyUsec float64 `json:"p95_latency_usec"`
	P99LatencyUsec float64 `json:"p99_latency_usec"`
	// LoadBalance and SchedOverheadFrac are the default model's most
	// recent propagation's Fig. 8 gauges (max/mean per-worker busy time;
	// scheduling fraction of total worker time).
	LoadBalance       float64 `json:"load_balance"`
	SchedOverheadFrac float64 `json:"sched_overhead_fraction"`
	// Window covers only the last 60 seconds of traffic, where the fields
	// above aggregate over the whole process lifetime.
	Window windowStats `json:"window"`
	// Cache reports the default model's shared-evidence result cache plus
	// the server-side batch coalescer; per-model caches are in Models and
	// /v1/models/{name}/stats.
	Cache cacheStats `json:"cache"`
	// Gauges is the default model's live scheduler surface (GL depth,
	// active runs, per-worker state/queue/steal gauges) — the same data
	// /v1/stream pushes.
	Gauges evprop.SchedulerGauges `json:"scheduler_gauges"`
	// Models summarizes every registered model: lifecycle state, version,
	// and per-model request counters.
	Models []modelStatsSummary `json:"models"`
	// Audit reports the durable query-audit pipeline (-audit-dir): spill,
	// drop and flush counters plus on-disk segment totals.
	Audit auditStats `json:"audit"`
	// Trace reports the distributed-tracing pipeline: traced requests,
	// tail-sampling keeps, store fill, and OTLP export counters.
	Trace traceStatsSummary `json:"trace"`
}

// modelStatsSummary is one model's row in /v1/stats.
type modelStatsSummary struct {
	registry.Info
	Queries      int64 `json:"queries"`
	Batches      int64 `json:"batches"`
	MPEs         int64 `json:"mpes"`
	Errors       int64 `json:"errors"`
	Propagations int64 `json:"propagations"`
	CacheHits    int64 `json:"cache_hits"`
}

// cacheStats is the engine's cache snapshot plus the server-side coalescer
// counter (sub-queries answered by another sub-query's window-mate run).
type cacheStats struct {
	evprop.CacheStats
	BatchWindowUsec float64 `json:"batch_window_usec"`
	BatchCoalesced  int64   `json:"batch_coalesced"`
}

func (s *server) cacheStats() cacheStats {
	cs := cacheStats{CacheStats: s.defaultEngine().CacheStats()}
	if s.co != nil {
		cs.BatchWindowUsec = float64(s.co.window.Nanoseconds()) / 1e3
		cs.BatchCoalesced = s.co.coalesced.Load()
	}
	return cs
}

// windowStats is the JSON shape of the 60-second sliding window.
type windowStats struct {
	Seconds        int     `json:"seconds"`
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	QPS            float64 `json:"qps"`
	ErrorRate      float64 `json:"error_rate"`
	P50LatencyUsec float64 `json:"p50_latency_usec"`
	P99LatencyUsec float64 `json:"p99_latency_usec"`
	LoadBalance    float64 `json:"load_balance"`
	// QPSSeries is per-second request counts, oldest first; the last entry
	// is the current (incomplete) second.
	QPSSeries []int64 `json:"qps_series"`
	// CacheHitRate is the result-cache hit fraction over the window, and
	// CacheHitRateSeries its per-second trajectory aligned with QPSSeries
	// (both all-zero when the cache is off or idle).
	CacheHitRate       float64   `json:"cache_hit_rate"`
	CacheHitRateSeries []float64 `json:"cache_hit_rate_series"`
}

func toWindowStats(ws obs.WindowSnapshot) windowStats {
	return windowStats{
		Seconds:            ws.Seconds,
		Requests:           ws.Requests,
		Errors:             ws.Errors,
		QPS:                ws.QPS,
		ErrorRate:          ws.ErrorRate,
		P50LatencyUsec:     float64(ws.P50.Nanoseconds()) / 1e3,
		P99LatencyUsec:     float64(ws.P99.Nanoseconds()) / 1e3,
		LoadBalance:        ws.LoadBalance,
		QPSSeries:          ws.QPSSeries,
		CacheHitRate:       ws.CacheHitRate,
		CacheHitRateSeries: ws.CacheHitRateSeries,
	}
}

func (s *server) windowStats() windowStats { return toWindowStats(s.window.Snapshot()) }

// propagationsTotal sums completed scheduler invocations across every
// live model version.
func (s *server) propagationsTotal() int64 {
	var total int64
	for _, v := range s.reg.CurrentVersions() {
		total += v.Engine.Stats().Propagations
	}
	return total
}

// modelSummaries builds the per-model stats rows, sorted by name.
func (s *server) modelSummaries() []modelStatsSummary {
	infos := s.reg.List()
	versions := s.reg.CurrentVersions()
	out := make([]modelStatsSummary, 0, len(infos))
	for _, info := range infos {
		row := modelStatsSummary{Info: info}
		if ms, ok := s.perModel.Load(info.Name); ok {
			m := ms.(*modelStats)
			row.Queries = m.queries.Load()
			row.Batches = m.batches.Load()
			row.MPEs = m.mpes.Load()
			row.Errors = m.errors.Load()
		}
		if v, ok := versions[info.Name]; ok {
			row.Propagations = v.Engine.Stats().Propagations
			row.CacheHits = v.Engine.CacheStats().Hits
		}
		out = append(out, row)
	}
	return out
}

// handleStats reports request counters, per-model summaries, the default
// model's scheduler surface, and propagation latency aggregates. Every
// latency field derives from the histogram, and the observed == 0 case
// yields plain zeros — never a 0/0 NaN, which would be invalid JSON.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	eng := s.defaultEngine()
	es := eng.Stats()
	sr := eng.SchedulerReport()
	if es.Workers == 0 {
		// No default model: borrow the shared configuration from any live
		// version so workers/scheduler stay meaningful.
		for _, v := range s.reg.CurrentVersions() {
			es.Workers = v.Engine.Stats().Workers
			es.Scheduler = v.Engine.Stats().Scheduler
			break
		}
	}
	h := &s.stats.latency
	resp := statsResponse{
		Queries:           s.stats.queries.Load(),
		Batches:           s.stats.batches.Load(),
		MPEs:              s.stats.mpes.Load(),
		Errors:            s.stats.errors.Load(),
		LegacyRequests:    s.stats.legacy.Load(),
		Propagations:      s.propagationsTotal(),
		Workers:           es.Workers,
		Scheduler:         es.Scheduler,
		Observed:          h.Count(),
		LoadBalance:       sr.LastLoadBalance,
		SchedOverheadFrac: sr.LastOverheadFraction,
		Window:            s.windowStats(),
		Cache:             s.cacheStats(),
		Gauges:            eng.SchedulerGauges(),
		Models:            s.modelSummaries(),
		Audit:             s.auditStats(),
		Trace:             s.traceStats(),
	}
	if resp.Observed > 0 {
		resp.AvgLatencyUsec = float64(h.Mean()) / 1e3
		resp.MaxLatencyUsec = float64(h.Max()) / 1e3
		resp.P50LatencyUsec = float64(h.Quantile(0.50)) / 1e3
		resp.P95LatencyUsec = float64(h.Quantile(0.95)) / 1e3
		resp.P99LatencyUsec = float64(h.Quantile(0.99)) / 1e3
	}
	s.writeJSON(w, resp)
}

// handleModelStats serves GET /v1/models/{name}/stats: the model's own
// request counters, latency, window, cache and scheduler gauges.
func (s *server) handleModelStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	name := modelFor(r)
	info, ok := s.modelInfo(name)
	if !ok {
		s.writeError(w, r, fmt.Errorf("%w: %q", registry.ErrNotFound, name))
		return
	}
	ms := s.modelStatsFor(name)
	resp := modelStatsResponse{
		Info:    info,
		Queries: ms.queries.Load(),
		Batches: ms.batches.Load(),
		MPEs:    ms.mpes.Load(),
		Errors:  ms.errors.Load(),
		Window:  toWindowStats(ms.window.Snapshot()),
	}
	if h := &ms.latency; h.Count() > 0 {
		resp.Observed = h.Count()
		resp.AvgLatencyUsec = float64(h.Mean()) / 1e3
		resp.P50LatencyUsec = float64(h.Quantile(0.50)) / 1e3
		resp.P99LatencyUsec = float64(h.Quantile(0.99)) / 1e3
	}
	if v, err := s.reg.Current(name); err == nil {
		resp.Propagations = v.Engine.Stats().Propagations
		resp.Cache = v.Engine.CacheStats()
		resp.Gauges = v.Engine.SchedulerGauges()
	}
	s.writeJSON(w, resp)
}

// modelStatsResponse is the GET /v1/models/{name}/stats body.
type modelStatsResponse struct {
	registry.Info
	Queries        int64                  `json:"queries"`
	Batches        int64                  `json:"batches"`
	MPEs           int64                  `json:"mpes"`
	Errors         int64                  `json:"errors"`
	Propagations   int64                  `json:"propagations"`
	Observed       int64                  `json:"observed"`
	AvgLatencyUsec float64                `json:"avg_latency_usec"`
	P50LatencyUsec float64                `json:"p50_latency_usec"`
	P99LatencyUsec float64                `json:"p99_latency_usec"`
	Window         windowStats            `json:"window"`
	Cache          evprop.CacheStats      `json:"cache"`
	Gauges         evprop.SchedulerGauges `json:"scheduler_gauges"`
}

// handleMetrics serves the Prometheus text exposition: request counters,
// the latency histogram, the default model's scheduler observability, and
// per-model labeled series for every registered model.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteHeader(w, "evprop_http_requests_total", "HTTP requests by kind.", "counter")
	obs.WriteSample(w, "evprop_http_requests_total", map[string]string{"kind": "query"}, float64(s.stats.queries.Load()))
	obs.WriteSample(w, "evprop_http_requests_total", map[string]string{"kind": "batch"}, float64(s.stats.batches.Load()))
	obs.WriteSample(w, "evprop_http_requests_total", map[string]string{"kind": "mpe"}, float64(s.stats.mpes.Load()))
	obs.WriteHeader(w, "evprop_http_errors_total", "HTTP error responses.", "counter")
	obs.WriteSample(w, "evprop_http_errors_total", nil, float64(s.stats.errors.Load()))
	obs.WriteHeader(w, "evprop_legacy_requests_total", "Requests through the deprecated unversioned aliases.", "counter")
	obs.WriteSample(w, "evprop_legacy_requests_total", nil, float64(s.stats.legacy.Load()))
	eng := s.defaultEngine()
	es := eng.Stats()
	obs.WriteHeader(w, "evprop_propagations_total", "Completed scheduler invocations across all models.", "counter")
	obs.WriteSample(w, "evprop_propagations_total", nil, float64(s.propagationsTotal()))
	obs.WriteHeader(w, "evprop_workers", "Configured propagation workers per model.", "gauge")
	obs.WriteSample(w, "evprop_workers", nil, float64(es.Workers))
	s.stats.latency.WritePrometheus(w, "evprop_request_duration_seconds", "End-to-end propagation latency of successful requests.")
	eng.WriteSchedulerMetrics(w, "evprop_sched")
	ws := s.window.Snapshot()
	obs.WriteHeader(w, "evprop_window_requests", "Requests in the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_requests", nil, float64(ws.Requests))
	obs.WriteHeader(w, "evprop_window_qps", "Mean requests/second over the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_qps", nil, ws.QPS)
	obs.WriteHeader(w, "evprop_window_error_rate", "Error fraction over the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_error_rate", nil, ws.ErrorRate)
	obs.WriteHeader(w, "evprop_window_latency_seconds", "Latency quantiles over the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_latency_seconds", map[string]string{"quantile": "0.5"}, ws.P50.Seconds())
	obs.WriteSample(w, "evprop_window_latency_seconds", map[string]string{"quantile": "0.99"}, ws.P99.Seconds())
	obs.WriteHeader(w, "evprop_window_load_balance", "Mean load-balance factor over the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_load_balance", nil, ws.LoadBalance)
	cs := s.cacheStats()
	obs.WriteHeader(w, "evprop_cache_hits_total", "Result-cache hits (default model).", "counter")
	obs.WriteSample(w, "evprop_cache_hits_total", nil, float64(cs.Hits))
	obs.WriteHeader(w, "evprop_cache_misses_total", "Result-cache misses (default model).", "counter")
	obs.WriteSample(w, "evprop_cache_misses_total", nil, float64(cs.Misses))
	obs.WriteHeader(w, "evprop_cache_collapsed_total", "Queries collapsed onto another caller's in-flight propagation (default model).", "counter")
	obs.WriteSample(w, "evprop_cache_collapsed_total", nil, float64(cs.Collapsed))
	obs.WriteHeader(w, "evprop_cache_entries", "Result-cache entries currently held (default model).", "gauge")
	obs.WriteSample(w, "evprop_cache_entries", nil, float64(cs.Entries))
	obs.WriteHeader(w, "evprop_cache_capacity", "Result-cache configured capacity (default model).", "gauge")
	obs.WriteSample(w, "evprop_cache_capacity", nil, float64(cs.Capacity))
	obs.WriteHeader(w, "evprop_batch_coalesced_total", "Batch sub-queries coalesced into a window-mate's propagation.", "counter")
	obs.WriteSample(w, "evprop_batch_coalesced_total", nil, float64(cs.BatchCoalesced))
	obs.WriteHeader(w, "evprop_window_cache_hit_rate", "Result-cache hit fraction over the last 60 seconds.", "gauge")
	obs.WriteSample(w, "evprop_window_cache_hit_rate", nil, ws.CacheHitRate)
	fs := eng.FlightRecorderStats()
	obs.WriteHeader(w, "evprop_flightrecorder_recorded_total", "Propagations seen by the flight recorder (default model).", "counter")
	obs.WriteSample(w, "evprop_flightrecorder_recorded_total", nil, float64(fs.Recorded))
	obs.WriteHeader(w, "evprop_flightrecorder_slow_total", "Slow-query captures taken by the flight recorder (default model).", "counter")
	obs.WriteSample(w, "evprop_flightrecorder_slow_total", nil, float64(fs.SlowCaptured))
	obs.WriteHeader(w, "evprop_flightrecorder_slow_threshold_seconds", "Current slow-query capture threshold (0 while calibrating).", "gauge")
	obs.WriteSample(w, "evprop_flightrecorder_slow_threshold_seconds", nil, fs.SlowThresholdUsec/1e6)
	s.writeAuditMetrics(w)
	s.writeTraceMetrics(w)
	s.writeGaugeMetrics(w)
	s.writeModelMetrics(w)
}

// writeModelMetrics renders the per-model labeled series: lifecycle info,
// request counters by kind, propagations, cache counters and window QPS,
// one series per model.
func (s *server) writeModelMetrics(w http.ResponseWriter) {
	infos := s.reg.List()
	if len(infos) == 0 {
		return
	}
	versions := s.reg.CurrentVersions()
	label := func(name string) map[string]string { return map[string]string{"model": name} }
	obs.WriteHeader(w, "evprop_model_info", "Registered models: state and current version as labels, value 1.", "gauge")
	for _, info := range infos {
		obs.WriteSample(w, "evprop_model_info", map[string]string{
			"model": info.Name, "state": string(info.State), "version": fmt.Sprintf("%d", info.Version),
		}, 1)
	}
	obs.WriteHeader(w, "evprop_model_requests_total", "HTTP requests by model and kind.", "counter")
	for _, info := range infos {
		ms := s.modelStatsFor(info.Name)
		obs.WriteSample(w, "evprop_model_requests_total", map[string]string{"model": info.Name, "kind": "query"}, float64(ms.queries.Load()))
		obs.WriteSample(w, "evprop_model_requests_total", map[string]string{"model": info.Name, "kind": "batch"}, float64(ms.batches.Load()))
		obs.WriteSample(w, "evprop_model_requests_total", map[string]string{"model": info.Name, "kind": "mpe"}, float64(ms.mpes.Load()))
	}
	obs.WriteHeader(w, "evprop_model_errors_total", "HTTP error responses by model.", "counter")
	for _, info := range infos {
		obs.WriteSample(w, "evprop_model_errors_total", label(info.Name), float64(s.modelStatsFor(info.Name).errors.Load()))
	}
	obs.WriteHeader(w, "evprop_model_propagations_total", "Completed scheduler invocations by model (current version).", "counter")
	for _, info := range infos {
		if v, ok := versions[info.Name]; ok {
			obs.WriteSample(w, "evprop_model_propagations_total", label(info.Name), float64(v.Engine.Stats().Propagations))
		}
	}
	obs.WriteHeader(w, "evprop_model_cache_hits_total", "Result-cache hits by model (current version).", "counter")
	for _, info := range infos {
		if v, ok := versions[info.Name]; ok {
			obs.WriteSample(w, "evprop_model_cache_hits_total", label(info.Name), float64(v.Engine.CacheStats().Hits))
		}
	}
	obs.WriteHeader(w, "evprop_model_window_qps", "Mean requests/second over the last 60 seconds, by model.", "gauge")
	for _, info := range infos {
		obs.WriteSample(w, "evprop_model_window_qps", label(info.Name), s.modelStatsFor(info.Name).window.Snapshot().QPS)
	}
}

// flightRecorderResponse is the /v1/debug/flightrecorder payload: one
// model's recorder counters, its ring of recent queries, and its retained
// slow-query captures (full scheduler traces).
type flightRecorderResponse struct {
	Model    string                     `json:"model"`
	Recorder evprop.FlightRecorderStats `json:"recorder"`
	Records  []evprop.FlightRecord      `json:"records"`
	Slow     []evprop.SlowQueryCapture  `json:"slow"`
	// NextSince is the pagination cursor: pass it back as ?since= to
	// receive only records newer than this page. It repeats the request's
	// since value when no records matched.
	NextSince uint64 `json:"next_since"`
}

// handleFlightRecorder dumps a model's flight recorder (the recorder is
// scoped per model version — `?model=` selects one, default "default").
// `?id=q-…` filters both the ring and the slow captures to one query ID —
// the lookup used to correlate an X-Query-ID response header or
// access-log line with its scheduler run. `?since=<seq>` returns only
// records with a strictly greater sequence number and `&limit=N` caps the
// page (oldest first); together with the response's next_since cursor a
// poller tails the ring without re-reading records it has already seen.
// Slow captures are not paginated — the slow ring is small and keyed by
// its own capture order.
func (s *server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErrorCode(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	q := r.URL.Query()
	var since uint64
	haveSince := false
	if raw := q.Get("since"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.writeErrorCode(w, r, http.StatusBadRequest, "bad_request", "since must be a non-negative integer")
			return
		}
		since, haveSince = n, true
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			s.writeErrorCode(w, r, http.StatusBadRequest, "bad_request", "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	name := q.Get("model")
	if name == "" {
		name = defaultModel
	}
	v, err := s.reg.Current(name)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp := flightRecorderResponse{
		Model:     name,
		Recorder:  v.Engine.FlightRecorderStats(),
		Records:   v.Engine.RecentQueries(),
		Slow:      v.Engine.SlowQueryCaptures(),
		NextSince: since,
	}
	if id := q.Get("id"); id != "" {
		var recs []evprop.FlightRecord
		for _, rec := range resp.Records {
			if rec.ID == id {
				recs = append(recs, rec)
			}
		}
		var slow []evprop.SlowQueryCapture
		for _, c := range resp.Slow {
			if c.Record.ID == id {
				slow = append(slow, c)
			}
		}
		resp.Records, resp.Slow = recs, slow
	}
	if haveSince {
		// Records arrive sorted by Seq; keep the strictly-newer suffix.
		cut := len(resp.Records)
		for i, rec := range resp.Records {
			if rec.Seq > since {
				cut = i
				break
			}
		}
		resp.Records = resp.Records[cut:]
	}
	if limit > 0 && len(resp.Records) > limit {
		resp.Records = resp.Records[:limit]
	}
	if n := len(resp.Records); n > 0 {
		resp.NextSince = resp.Records[n-1].Seq
	}
	s.writeJSON(w, resp)
}

// sortedModelNames returns the model names with live stats entries.
func (s *server) sortedModelNames() []string {
	var names []string
	s.perModel.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}
