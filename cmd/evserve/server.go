package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"evprop"
)

// server wraps one compiled engine behind HTTP handlers. Propagations are
// independent per request; the mutex only guards the engine's lazily built
// per-target caches against the CLI's unknown concurrency expectations.
type server struct {
	net *evprop.Network
	eng *evprop.Engine
	mu  sync.Mutex
}

func newServer(net *evprop.Network, opts evprop.Options) (*server, error) {
	eng, err := net.Compile(opts)
	if err != nil {
		return nil, err
	}
	return &server{net: net, eng: eng}, nil
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/model", s.handleModel)
	m.HandleFunc("/query", s.handleQuery)
	m.HandleFunc("/mpe", s.handleMPE)
	m.HandleFunc("/dsep", s.handleDSep)
	return m
}

type modelResponse struct {
	Variables []modelVariable `json:"variables"`
}

type modelVariable struct {
	Name   string `json:"name"`
	States int    `json:"states"`
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := modelResponse{}
	for _, name := range s.net.Variables() {
		resp.Variables = append(resp.Variables, modelVariable{Name: name, States: s.net.States(name)})
	}
	writeJSON(w, resp)
}

type queryRequest struct {
	Evidence evprop.Evidence `json:"evidence"`
	Query    []string        `json:"query"`
}

type queryResponse struct {
	PEvidence  float64              `json:"p_evidence"`
	Posteriors map[string][]float64 `json:"posteriors"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pe, err := s.eng.ProbabilityOfEvidence(req.Evidence)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := queryResponse{PEvidence: pe, Posteriors: map[string][]float64{}}
	if pe > 0 {
		var post map[string][]float64
		if len(req.Query) == 0 {
			post, err = s.eng.QueryAll(req.Evidence)
		} else {
			post, err = s.eng.Query(req.Evidence, req.Query...)
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		resp.Posteriors = post
	}
	writeJSON(w, resp)
}

type mpeRequest struct {
	Evidence evprop.Evidence `json:"evidence"`
}

type mpeResponse struct {
	Assignment  map[string]int `json:"assignment"`
	Probability float64        `json:"probability"`
}

func (s *server) handleMPE(w http.ResponseWriter, r *http.Request) {
	var req mpeRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	assignment, p, err := s.eng.MostProbableExplanation(req.Evidence)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, mpeResponse{Assignment: assignment, Probability: p})
}

type dsepRequest struct {
	X []string `json:"x"`
	Y []string `json:"y"`
	Z []string `json:"z"`
}

type dsepResponse struct {
	Separated bool `json:"separated"`
}

func (s *server) handleDSep(w http.ResponseWriter, r *http.Request) {
	var req dsepRequest
	if !readJSON(w, r, &req) {
		return
	}
	sep, err := s.net.DSeparated(req.X, req.Y, req.Z)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, dsepResponse{Separated: sep})
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
