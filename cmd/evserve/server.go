package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"evprop"
)

// server wraps one compiled engine behind HTTP handlers. The engine is safe
// for fully concurrent propagation, so handlers run lock-free: every request
// propagates independently on the shared engine, and request cancellation
// propagates into the scheduler via the request context.
type server struct {
	net   *evprop.Network
	eng   *evprop.Engine
	stats serverStats
}

// serverStats aggregates request counters and propagation latency with
// atomics so concurrent handlers never serialize on a lock.
type serverStats struct {
	queries      atomic.Int64
	batches      atomic.Int64
	mpes         atomic.Int64
	errors       atomic.Int64
	observed     atomic.Int64
	latencyNsSum atomic.Int64
	latencyNsMax atomic.Int64
}

func (st *serverStats) observe(d time.Duration) {
	ns := d.Nanoseconds()
	st.observed.Add(1)
	st.latencyNsSum.Add(ns)
	for {
		cur := st.latencyNsMax.Load()
		if ns <= cur || st.latencyNsMax.CompareAndSwap(cur, ns) {
			return
		}
	}
}

func newServer(net *evprop.Network, opts evprop.Options) (*server, error) {
	eng, err := net.Compile(opts)
	if err != nil {
		return nil, err
	}
	return &server{net: net, eng: eng}, nil
}

// mux routes the versioned /v1 API plus the original unversioned paths,
// kept as aliases so pre-/v1 clients keep working.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/v1/model", s.handleModel)
	m.HandleFunc("/v1/query", s.handleQuery)
	m.HandleFunc("/v1/batch", s.handleBatch)
	m.HandleFunc("/v1/mpe", s.handleMPE)
	m.HandleFunc("/v1/dsep", s.handleDSep)
	m.HandleFunc("/v1/stats", s.handleStats)
	m.HandleFunc("/model", s.handleModel)
	m.HandleFunc("/query", s.handleQuery)
	m.HandleFunc("/mpe", s.handleMPE)
	m.HandleFunc("/dsep", s.handleDSep)
	return m
}

// statusFor maps engine errors onto HTTP statuses via errors.Is.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, evprop.ErrZeroProbabilityEvidence):
		return http.StatusUnprocessableEntity
	case errors.Is(err, evprop.ErrUncompiled), errors.Is(err, evprop.ErrResultClosed):
		return http.StatusInternalServerError
	default:
		// ErrUnknownVariable, ErrBadState and remaining input problems.
		return http.StatusBadRequest
	}
}

type modelResponse struct {
	Variables []modelVariable `json:"variables"`
}

type modelVariable struct {
	Name   string `json:"name"`
	States int    `json:"states"`
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := modelResponse{}
	for _, name := range s.net.Variables() {
		resp.Variables = append(resp.Variables, modelVariable{Name: name, States: s.net.States(name)})
	}
	writeJSON(w, resp)
}

type queryRequest struct {
	Evidence evprop.Evidence `json:"evidence"`
	Query    []string        `json:"query"`
}

type queryResponse struct {
	PEvidence  float64              `json:"p_evidence"`
	Posteriors map[string][]float64 `json:"posteriors"`
}

// runQuery answers one query with exactly one evidence propagation: P(e)
// and the posteriors both derive from the same QueryResult.
func (s *server) runQuery(ctx context.Context, req queryRequest) (*queryResponse, error) {
	start := time.Now()
	res, err := s.eng.PropagateContext(ctx, req.Evidence)
	if err != nil {
		return nil, err
	}
	defer res.Close()
	resp := &queryResponse{PEvidence: res.ProbabilityOfEvidence(), Posteriors: map[string][]float64{}}
	if resp.PEvidence > 0 {
		post, err := res.Posteriors(req.Query...)
		if err != nil {
			return nil, err
		}
		resp.Posteriors = post
	}
	s.stats.observe(time.Since(start))
	return resp, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.stats.queries.Add(1)
	resp, err := s.runQuery(r.Context(), req)
	if err != nil {
		s.stats.errors.Add(1)
		httpError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, resp)
}

type batchRequest struct {
	Queries []queryRequest `json:"queries"`
}

type batchResponse struct {
	Results []batchResult `json:"results"`
}

// batchResult is one query's outcome; exactly one of Error or the query
// fields is meaningful. Failures are reported in place so one bad query
// does not void its siblings.
type batchResult struct {
	PEvidence  float64              `json:"p_evidence,omitempty"`
	Posteriors map[string][]float64 `json:"posteriors,omitempty"`
	Error      string               `json:"error,omitempty"`
}

// handleBatch answers many queries in one round trip, propagating them
// concurrently on the shared engine (one propagation per query).
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.stats.batches.Add(1)
	results := make([]batchResult, len(req.Queries))
	var wg sync.WaitGroup
	for i, q := range req.Queries {
		wg.Add(1)
		go func(i int, q queryRequest) {
			defer wg.Done()
			resp, err := s.runQuery(r.Context(), q)
			if err != nil {
				s.stats.errors.Add(1)
				results[i] = batchResult{Error: err.Error()}
				return
			}
			results[i] = batchResult{PEvidence: resp.PEvidence, Posteriors: resp.Posteriors}
		}(i, q)
	}
	wg.Wait()
	writeJSON(w, batchResponse{Results: results})
}

type mpeRequest struct {
	Evidence evprop.Evidence `json:"evidence"`
}

type mpeResponse struct {
	Assignment  map[string]int `json:"assignment"`
	Probability float64        `json:"probability"`
}

func (s *server) handleMPE(w http.ResponseWriter, r *http.Request) {
	var req mpeRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.stats.mpes.Add(1)
	start := time.Now()
	res, err := s.eng.PropagateContext(r.Context(), req.Evidence)
	if err != nil {
		s.stats.errors.Add(1)
		httpError(w, statusFor(err), err.Error())
		return
	}
	defer res.Close()
	assignment, p, err := res.MPE()
	if err != nil {
		s.stats.errors.Add(1)
		httpError(w, statusFor(err), err.Error())
		return
	}
	s.stats.observe(time.Since(start))
	writeJSON(w, mpeResponse{Assignment: assignment, Probability: p})
}

type dsepRequest struct {
	X []string `json:"x"`
	Y []string `json:"y"`
	Z []string `json:"z"`
}

type dsepResponse struct {
	Separated bool `json:"separated"`
}

func (s *server) handleDSep(w http.ResponseWriter, r *http.Request) {
	var req dsepRequest
	if !readJSON(w, r, &req) {
		return
	}
	sep, err := s.net.DSeparated(req.X, req.Y, req.Z)
	if err != nil {
		s.stats.errors.Add(1)
		httpError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, dsepResponse{Separated: sep})
}

type statsResponse struct {
	Queries        int64   `json:"queries"`
	Batches        int64   `json:"batches"`
	MPEs           int64   `json:"mpes"`
	Errors         int64   `json:"errors"`
	Propagations   int64   `json:"propagations"`
	Workers        int     `json:"workers"`
	Scheduler      string  `json:"scheduler"`
	AvgLatencyUsec float64 `json:"avg_latency_usec"`
	MaxLatencyUsec float64 `json:"max_latency_usec"`
}

// handleStats reports request counters, the engine's scheduler invocation
// count, and propagation latency aggregates.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	es := s.eng.Stats()
	resp := statsResponse{
		Queries:      s.stats.queries.Load(),
		Batches:      s.stats.batches.Load(),
		MPEs:         s.stats.mpes.Load(),
		Errors:       s.stats.errors.Load(),
		Propagations: es.Propagations,
		Workers:      es.Workers,
		Scheduler:    es.Scheduler,
	}
	if n := s.stats.observed.Load(); n > 0 {
		resp.AvgLatencyUsec = float64(s.stats.latencyNsSum.Load()) / float64(n) / 1e3
	}
	resp.MaxLatencyUsec = float64(s.stats.latencyNsMax.Load()) / 1e3
	writeJSON(w, resp)
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
